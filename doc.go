// Package hddcart is a from-scratch Go reproduction of
//
//	Li, Ji, Jia, Zhu, Wang, Li, Liu.
//	"Hard Drive Failure Prediction Using Classification and Regression
//	Trees", DSN 2014.
//
// It provides, behind one facade:
//
//   - classification trees (CT) and regression trees (RT) trained on SMART
//     attributes, with the paper's information-gain/sum-of-squares splits,
//     Minsplit/Minbucket stopping, complexity-parameter pruning, class
//     boosting and asymmetric false-alarm losses (internal/cart);
//   - the Backpropagation artificial neural network baseline (internal/ann);
//   - the statistical feature selection of §IV-B — rank-sum,
//     reverse-arrangements and z-score tests (internal/stats,
//     internal/featsel);
//   - drive-level detection: the voting-based algorithm and the
//     health-degree mean-threshold detector (internal/detect), plus an
//     online Monitor for streaming deployments;
//   - health-degree machinery: personalized deterioration windows and a
//     priority queue that processes warnings worst-health-first
//     (internal/health);
//   - a synthetic datacenter SMART trace generator standing in for the
//     paper's proprietary 25,792-drive dataset (internal/simulate);
//   - reliability models: Eckart's Eq. 7, Gibson's Eq. 8 and the Fig. 11
//     RAID Markov chains solved exactly (internal/reliability);
//   - runners regenerating every table and figure of the paper's
//     evaluation (internal/experiments; see cmd/experiments).
//
// # Quick start
//
//	fleet, _ := hddcart.GenerateFleet(hddcart.FleetConfig{Seed: 1, GoodScale: 0.05, FailedScale: 0.5})
//	features := hddcart.CriticalFeatures()
//	// ... build a training set, train, detect (see examples/quickstart).
//
// The examples/ directory contains four runnable programs; DESIGN.md maps
// every paper experiment to the module and benchmark that regenerates it,
// and EXPERIMENTS.md records paper-versus-measured results.
package hddcart
