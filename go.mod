module hddcart

go 1.22
