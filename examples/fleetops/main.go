// Fleetops: long-term operation of a prediction model over the full 8-week
// observation period, comparing "train once, use forever" against weekly
// retraining on the most recent week (the paper's fixed vs 1-week
// replacing strategies, §V-B3). The fleet's SMART baselines drift as it
// ages, so the fixed model's false alarm rate decays while the retrained
// model tracks the drift.
package main

import (
	"fmt"
	"log"

	"hddcart"
)

const hoursPerWeek = 168

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetops: ")

	fleet, err := hddcart.GenerateFleet(hddcart.FleetConfig{
		Seed: 21, GoodScale: 0.03, FailedScale: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	features := hddcart.CriticalFeatures()

	// Pre-generate traces once; the example sweeps them repeatedly.
	traces := make(map[int][]hddcart.Record)
	for _, d := range fleet.Drives() {
		traces[d.Index] = fleet.Trace(d.Index)
	}

	trainOn := func(startWeek, endWeek int) *hddcart.Tree {
		builder, err := hddcart.NewDatasetBuilder(hddcart.DatasetConfig{
			Features:            features,
			PeriodStart:         (startWeek - 1) * hoursPerWeek,
			PeriodEnd:           endWeek * hoursPerWeek,
			SamplesPerGoodDrive: 6,
			FailedWindowHours:   168,
			FailedShare:         0.2,
			Seed:                21,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range fleet.Drives() {
			if d.Failed {
				builder.AddFailedDrive(d.Index, d.FailHour, traces[d.Index])
			} else {
				builder.AddGoodDrive(d.Index, traces[d.Index])
			}
		}
		ds, err := builder.Finalize()
		if err != nil {
			log.Fatal(err)
		}
		tree, err := hddcart.TrainClassificationTree(ds, hddcart.TreeParams{LossFA: 10})
		if err != nil {
			log.Fatal(err)
		}
		return tree
	}

	farOn := func(tree *hddcart.Tree, week int) float64 {
		det := &hddcart.VotingDetector{Model: tree, Voters: 11}
		var c hddcart.Counter
		start, end := (week-1)*hoursPerWeek, week*hoursPerWeek
		for _, d := range fleet.Drives() {
			if d.Failed {
				continue
			}
			from, to, ok := hddcart.TestStart(traces[d.Index], start, end, 0.7)
			if !ok {
				continue
			}
			s := hddcart.ExtractSeries(features, traces[d.Index], from, to)
			c.AddGood(hddcart.Scan(det, s, -1).Alarmed)
		}
		return c.Result().FAR()
	}

	fixed := trainOn(1, 1)
	fmt.Printf("%-6s %14s %18s\n", "week", "fixed FAR(%)", "replacing FAR(%)")
	for week := 2; week <= 8; week++ {
		replacing := trainOn(week-1, week-1) // retrain on the latest week
		fmt.Printf("%-6d %14.3f %18.3f\n",
			week, farOn(fixed, week)*100, farOn(replacing, week)*100)
	}
	fmt.Println("\nthe paper's conclusion: update your models — the 1-week replacing")
	fmt.Println("strategy keeps the false alarm rate flat while the fixed model decays.")
}
