// Quickstart: generate a small synthetic fleet, train the paper's
// classification-tree model on week-1 SMART data, and evaluate it with
// voting-based detection — the end-to-end pipeline of §V-A in ~100 lines.
package main

import (
	"fmt"
	"log"

	"hddcart"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// A small fleet: 2% of the paper's good drives, 25% of its failed
	// drives (the class imbalance stays heavy either way).
	fleet, err := hddcart.GenerateFleet(hddcart.FleetConfig{
		Seed: 7, GoodScale: 0.02, FailedScale: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's 13 statistically selected features (§IV-B).
	features := hddcart.CriticalFeatures()

	// Training set: 3 random samples per good drive from the earlier
	// 70% of week 1; the last 168 h of each training-split failed
	// drive; failed class boosted to 20% of the training weight.
	builder, err := hddcart.NewDatasetBuilder(hddcart.DatasetConfig{
		Features:          features,
		PeriodStart:       0,
		PeriodEnd:         168,
		FailedWindowHours: 168,
		FailedShare:       0.2,
		Seed:              7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range fleet.Drives() {
		trace := fleet.Trace(d.Index)
		if d.Failed {
			builder.AddFailedDrive(d.Index, d.FailHour, trace)
		} else {
			builder.AddGoodDrive(d.Index, trace)
		}
	}
	ds, err := builder.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	good, failed := ds.Counts()
	fmt.Printf("training set: %d good + %d failed samples\n", good, failed)

	// The CT model: information-gain splits, 10× false-alarm loss.
	tree, err := hddcart.TrainClassificationTree(ds, hddcart.TreeParams{LossFA: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained tree: %d nodes, depth %d\n\n", tree.NumNodes(), tree.Depth())

	// Interpretability: the failure rules operators read off the tree.
	fmt.Println("failure rules:")
	for i, rule := range tree.Rules(true) {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + rule.String(tree.FeatureNames))
	}

	// Evaluate with the voting-based detector (11 voters): good drives
	// are scanned over the later 30% of week 1, failed test drives over
	// their recorded 20 days.
	detector := &hddcart.VotingDetector{Model: tree, Voters: 11}
	var counter hddcart.Counter
	for _, d := range fleet.Drives() {
		trace := fleet.Trace(d.Index)
		if d.Failed {
			// Skip the drives used for training (70% split).
			if hddcart.IsTrainFailedDrive(7, d.Index, 0.7) {
				continue
			}
			s := hddcart.ExtractSeries(features, trace, 0, len(trace))
			counter.AddFailed(hddcart.Scan(detector, s, d.FailHour))
			continue
		}
		from, to, ok := hddcart.TestStart(trace, 0, 168, 0.7)
		if !ok {
			continue
		}
		s := hddcart.ExtractSeries(features, trace, from, to)
		counter.AddGood(hddcart.Scan(detector, s, -1).Alarmed)
	}
	fmt.Printf("\nevaluation: %s\n", counter.Result().String())
}
