// Raidplanner: the paper's §VI argument as a capacity-planning tool. Given
// a target system size, compare the reliability (MTTDL) and relative cost
// of RAID configurations with and without CT-model failure prediction —
// showing that prediction lets cheap SATA drives and/or reduced redundancy
// match expensive configurations.
package main

import (
	"fmt"
	"log"

	"hddcart"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("raidplanner: ")

	sas := hddcart.DriveParams{MTTFHours: 1990000, MTTRHours: 8}
	sata := hddcart.DriveParams{MTTFHours: 1390000, MTTRHours: 8}
	// The CT model's operating point (paper §VI): 95.49% of failures
	// predicted, 355 h of warning.
	ct := hddcart.PredictionParams{FDR: 0.9549, TIAHours: 355}

	fmt.Println("single-drive MTTDL with proactive replacement (Eq. 7):")
	fmt.Printf("  SATA, no prediction: %10.0f years\n",
		hddcart.SingleDriveMTTDL(sata, hddcart.PredictionParams{})/8760)
	fmt.Printf("  SATA, CT prediction: %10.0f years\n\n",
		hddcart.SingleDriveMTTDL(sata, ct)/8760)

	// Cost model: a SAS drive at ~2.5× the price of a SATA drive;
	// RAID-5 needs one parity drive per group of 10, RAID-6 two.
	const (
		sataPrice = 1.0
		sasPrice  = 2.5
		groupSize = 10
	)
	configs := []struct {
		name   string
		level  int
		drive  hddcart.DriveParams
		pred   hddcart.PredictionParams
		price  float64
		parity int
	}{
		{"SAS   RAID-6, no prediction", 6, sas, hddcart.PredictionParams{}, sasPrice, 2},
		{"SATA  RAID-6, no prediction", 6, sata, hddcart.PredictionParams{}, sataPrice, 2},
		{"SATA  RAID-6 + CT model", 6, sata, ct, sataPrice, 2},
		{"SATA  RAID-5 + CT model", 5, sata, ct, sataPrice, 1},
	}

	for _, dataDrives := range []int{100, 1000} {
		fmt.Printf("system with %d data drives (groups of %d):\n", dataDrives, groupSize)
		fmt.Printf("  %-30s %16s %12s\n", "configuration", "MTTDL (years)", "rel. cost")
		baseCost := float64(dataDrives) * (1 + 2.0/groupSize) * sataPrice
		for _, cfg := range configs {
			total := dataDrives + dataDrives/groupSize*cfg.parity
			var mttdl float64
			var err error
			switch {
			case cfg.pred.FDR == 0 && cfg.level == 6:
				// Gibson closed form for the unpredicted baseline.
				mttdl, err = hddcart.RAID6MTTDL(total, cfg.drive, cfg.pred)
			case cfg.level == 6:
				mttdl, err = hddcart.RAID6MTTDL(total, cfg.drive, cfg.pred)
			default:
				mttdl, err = hddcart.RAID5MTTDL(total, cfg.drive, cfg.pred)
			}
			if err != nil {
				log.Fatal(err)
			}
			cost := float64(total) * cfg.price / baseCost
			fmt.Printf("  %-30s %16.4g %12.2f\n", cfg.name, mttdl/8760, cost)
		}
		fmt.Println()
	}
	fmt.Println("prediction lets the all-SATA RAID-5 system match or beat the")
	fmt.Println("unpredicted RAID-6 systems at a fraction of the hardware cost.")
}
