// Healthmonitor: stream SMART records through an online Monitor driven by
// the regression-tree health-degree model, and process the resulting
// warnings in order of health degree (worst first) — the deployment story
// of the paper's §III-B: a finite operations team migrates the most
// endangered drives first.
package main

import (
	"fmt"
	"log"
	"sort"

	"hddcart"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("healthmonitor: ")

	fleet, err := hddcart.GenerateFleet(hddcart.FleetConfig{
		Seed: 11, GoodScale: 0.01, FailedScale: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	features := hddcart.CriticalFeatures()

	// Train the RT health-degree model on week 1: good samples target
	// +1; failed samples i hours before failure target −1 + i/w with a
	// global 72 h deterioration window.
	builder, err := hddcart.NewDatasetBuilder(hddcart.DatasetConfig{
		Features:              features,
		PeriodStart:           0,
		PeriodEnd:             168,
		FailedWindowHours:     168,
		FailedSamplesPerDrive: 12,
		FailedShare:           0.2,
		Seed:                  11,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range fleet.Drives() {
		trace := fleet.Trace(d.Index)
		if d.Failed {
			builder.AddFailedDrive(d.Index, d.FailHour, trace)
		} else {
			builder.AddGoodDrive(d.Index, trace)
		}
	}
	ds, err := builder.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.SetHealthTargets(nil, 72); err != nil {
		log.Fatal(err)
	}
	rt, err := hddcart.TrainRegressionTree(ds, hddcart.TreeParams{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("health-degree RT: %d nodes\n", rt.NumNodes())

	// Online monitoring: replay weeks 2-3 hour by hour through the
	// Monitor. Real deployments would call Observe from the SMART
	// collector.
	monitor, err := hddcart.NewMonitor(hddcart.MonitorConfig{
		Features:  features,
		Model:     rt,
		Voters:    11,
		Threshold: -0.2,
		UseMean:   true,
	})
	if err != nil {
		log.Fatal(err)
	}

	type event struct {
		hour  int
		drive hddcart.Drive
		rec   hddcart.Record
	}
	var events []event
	for _, d := range fleet.Drives() {
		for _, rec := range fleet.Trace(d.Index) {
			if rec.Hour >= 168 && rec.Hour < 3*168 {
				events = append(events, event{rec.Hour, d, rec})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].hour < events[j].hour })

	bySerial := make(map[string]hddcart.Drive)
	for _, d := range fleet.Drives() {
		bySerial[d.Serial] = d
	}
	for _, ev := range events {
		monitor.Observe(ev.drive.Serial, ev.rec)
	}
	fmt.Printf("replayed %d records; %d warnings outstanding\n", len(events), monitor.Outstanding())

	// Drain the warning queue: worst health first. With a capacity of a
	// few migrations per day, this ordering is what saves the drives
	// that are actually about to die.
	fmt.Println("\nprocessing order (worst health first):")
	rank := 0
	for {
		w, ok := monitor.NextWarning()
		if !ok {
			break
		}
		rank++
		truth := "false alarm"
		if d := bySerial[w.Serial]; d.Failed {
			truth = fmt.Sprintf("fails at hour %d (%s)", d.FailHour, d.Mode)
		}
		if rank <= 12 {
			fmt.Printf("  %2d. %-10s health %+.3f raised at hour %4d — %s\n",
				rank, w.Serial, w.Health, w.Hour, truth)
		}
	}
	if rank > 12 {
		fmt.Printf("  ... and %d more\n", rank-12)
	}
}
