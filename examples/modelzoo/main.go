// Modelzoo: train every model family this library implements — the
// paper's CT and RT, the BP ANN baseline, and the future-work random
// forest and AdaBoost ensembles — on identical data, and line up their
// FDR/FAR/TIA under the same voting detector.
package main

import (
	"fmt"
	"log"
	"time"

	"hddcart"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("modelzoo: ")

	fleet, err := hddcart.GenerateFleet(hddcart.FleetConfig{
		Seed: 31, GoodScale: 0.03, FailedScale: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	features := hddcart.CriticalFeatures()

	build := func(window int) *hddcart.Dataset {
		b, err := hddcart.NewDatasetBuilder(hddcart.DatasetConfig{
			Features:            features,
			PeriodStart:         0,
			PeriodEnd:           168,
			SamplesPerGoodDrive: 10,
			FailedWindowHours:   window,
			FailedShare:         0.2,
			Seed:                31,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range fleet.Drives() {
			trace := fleet.Trace(d.Index)
			if d.Failed {
				b.AddFailedDrive(d.Index, d.FailHour, trace)
			} else {
				b.AddGoodDrive(d.Index, trace)
			}
		}
		ds, err := b.Finalize()
		if err != nil {
			log.Fatal(err)
		}
		return ds
	}
	dsLong := build(168) // trees & ensembles (paper's best CT window)
	dsShort := build(12) // the ANN's window (paper §V-A)

	type entry struct {
		name  string
		model hddcart.Predictor
		cost  time.Duration
	}
	var zoo []entry
	timed := func(name string, train func() (hddcart.Predictor, error)) {
		start := time.Now()
		m, err := train()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		zoo = append(zoo, entry{name, m, time.Since(start)})
	}
	timed("CT", func() (hddcart.Predictor, error) {
		return hddcart.TrainClassificationTree(dsLong, hddcart.TreeParams{LossFA: 10})
	})
	timed("BP ANN", func() (hddcart.Predictor, error) {
		return hddcart.TrainNeuralNetwork(dsShort, hddcart.NetworkConfig{Epochs: 100, Patience: 8, Seed: 31})
	})
	timed("forest", func() (hddcart.Predictor, error) {
		return hddcart.TrainRandomForest(dsLong, hddcart.ForestConfig{
			Trees: 40, Params: hddcart.TreeParams{LossFA: 10}, Seed: 31,
		})
	})
	timed("AdaBoost", func() (hddcart.Predictor, error) {
		return hddcart.TrainAdaBoost(dsLong, hddcart.BoostConfig{Rounds: 15, MaxDepth: 5})
	})

	fmt.Printf("%-10s %12s %9s %9s %9s\n", "model", "train time", "FAR(%)", "FDR(%)", "TIA(h)")
	for _, e := range zoo {
		det := &hddcart.VotingDetector{Model: e.model, Voters: 11}
		var c hddcart.Counter
		for _, d := range fleet.Drives() {
			trace := fleet.Trace(d.Index)
			if d.Failed {
				if hddcart.IsTrainFailedDrive(31, d.Index, 0.7) {
					continue
				}
				s := hddcart.ExtractSeries(features, trace, 0, len(trace))
				c.AddFailed(hddcart.Scan(det, s, d.FailHour))
				continue
			}
			from, to, ok := hddcart.TestStart(trace, 0, 168, 0.7)
			if !ok {
				continue
			}
			s := hddcart.ExtractSeries(features, trace, from, to)
			c.AddGood(hddcart.Scan(det, s, -1).Alarmed)
		}
		r := c.Result()
		fmt.Printf("%-10s %12s %9.3f %9.2f %9.1f\n",
			e.name, e.cost.Round(time.Millisecond), r.FAR()*100, r.FDR()*100, r.MeanTIA())
	}
}
