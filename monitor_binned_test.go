package hddcart

import (
	"testing"

	"hddcart/internal/cart"
)

// trainMonitorTree fits a single-feature classifier labelling values
// below the offset (health < 0 on the test scale) as failed. The corpus
// has three distinct values, so a 32-bin matrix is singleton-binned and
// the binned compilation is Exact.
func trainMonitorTree(t *testing.T) (*Tree, *BinnedMatrix) {
	t.Helper()
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		v := float64(monitorScoreOffset + i%3 - 1) // offset-1, offset, offset+1
		x = append(x, []float64{v})
		label := 1.0
		if v < monitorScoreOffset {
			label = -1
		}
		y = append(y, label)
	}
	tree, err := cart.TrainClassifier(x, y, nil, cart.Params{MinSplit: 2, MinBucket: 1, CP: 1e-9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := BinFeatureMatrix(x, 32)
	if err != nil {
		t.Fatal(err)
	}
	return tree, bm
}

// TestMonitorBinnedMatchesFloat runs the same observation stream through
// a float-scoring and a binned-scoring monitor: warnings, hours and
// stats must be identical (the stream's feature values are all values
// the bins represent, where binned scores are bit-identical).
func TestMonitorBinnedMatchesFloat(t *testing.T) {
	tree, bm := trainMonitorTree(t)
	newM := func(bins *BinnedMatrix) *Monitor {
		m, err := NewMonitor(MonitorConfig{
			Features: monitorFeatures,
			Model:    tree,
			Voters:   3,
			Bins:     bins,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	float, binned := newM(nil), newM(bm)
	inputs := []float64{1, 1, 0, -1, -1, 1, -1, -1, -1, 1, 1}
	for h, v := range inputs {
		for _, drive := range []string{"d1", "d2"} {
			fw, fok := float.Observe(drive, recAt(h, v))
			bw, bok := binned.Observe(drive, recAt(h, v))
			if fok != bok || fw != bw {
				t.Fatalf("hour %d drive %s: float (%+v,%v) vs binned (%+v,%v)", h, drive, fw, fok, bw, bok)
			}
		}
	}
	if float.Stats() != binned.Stats() {
		t.Fatalf("stats diverged: float %+v vs binned %+v", float.Stats(), binned.Stats())
	}
	if float.Outstanding() != binned.Outstanding() {
		t.Fatalf("outstanding diverged: %d vs %d", float.Outstanding(), binned.Outstanding())
	}
	for float.Outstanding() > 0 {
		fw, _ := float.NextWarning()
		bw, _ := binned.NextWarning()
		if fw != bw {
			t.Fatalf("warning queue diverged: %+v vs %+v", fw, bw)
		}
	}
}

// TestMonitorBinnedValidation pins the construction-time rejections of
// the binned scoring path.
func TestMonitorBinnedValidation(t *testing.T) {
	tree, bm := trainMonitorTree(t)
	// Matrix width must match the feature count.
	wide, err := BinFeatureMatrix([][]float64{{1, 2}, {3, 4}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures, Model: tree, Voters: 3, Bins: wide,
	}); err == nil {
		t.Error("bin matrix wider than the feature set accepted")
	}
	// Models without a binned form are rejected up front, not at scoring
	// time.
	if _, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures, Model: firstFeatureModel{}, Voters: 3, Bins: bm,
	}); err == nil {
		t.Error("unbinnable model accepted with Bins set")
	}
}
