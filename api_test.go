package hddcart

import (
	"math"
	"reflect"
	"testing"
)

// buildSmallDataset assembles a training set from a tiny fleet.
func buildSmallDataset(t *testing.T, seed int64) (*Fleet, *Dataset) {
	t.Helper()
	fleet, err := GenerateFleet(FleetConfig{Seed: seed, GoodScale: 0.004, FailedScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDatasetBuilder(DatasetConfig{
		Features:          CriticalFeatures(),
		PeriodStart:       0,
		PeriodEnd:         168,
		FailedWindowHours: 168,
		FailedShare:       0.2,
		Seed:              seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Drives() {
		trace := fleet.Trace(d.Index)
		if d.Failed {
			b.AddFailedDrive(d.Index, d.FailHour, trace)
		} else {
			b.AddGoodDrive(d.Index, trace)
		}
	}
	ds, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return fleet, ds
}

func TestEndToEndClassification(t *testing.T) {
	fleet, ds := buildSmallDataset(t, 5)
	good, failed := ds.Counts()
	if good == 0 || failed == 0 {
		t.Fatalf("degenerate dataset: %d good, %d failed", good, failed)
	}
	tree, err := TrainClassificationTree(ds, TreeParams{LossFA: 10})
	if err != nil {
		t.Fatal(err)
	}
	det := &VotingDetector{Model: tree, Voters: 11}
	var c Counter
	for _, d := range fleet.Drives() {
		trace := fleet.Trace(d.Index)
		if d.Failed {
			if IsTrainFailedDrive(5, d.Index, 0.7) {
				continue
			}
			s := ExtractSeries(CriticalFeatures(), trace, 0, len(trace))
			c.AddFailed(Scan(det, s, d.FailHour))
			continue
		}
		from, to, ok := TestStart(trace, 0, 168, 0.7)
		if !ok {
			continue
		}
		s := ExtractSeries(CriticalFeatures(), trace, from, to)
		c.AddGood(Scan(det, s, -1).Alarmed)
	}
	res := c.Result()
	if res.FDR() < 0.7 {
		t.Errorf("end-to-end FDR = %.2f%%, want ≥ 70%%", res.FDR()*100)
	}
	if res.FAR() > 0.05 {
		t.Errorf("end-to-end FAR = %.2f%%, want ≤ 5%%", res.FAR()*100)
	}
}

func TestEndToEndRegression(t *testing.T) {
	_, ds := buildSmallDataset(t, 6)
	if err := ds.SetHealthTargets(nil, 72); err != nil {
		t.Fatal(err)
	}
	rt, err := TrainRegressionTree(ds, TreeParams{})
	if err != nil {
		t.Fatal(err)
	}
	// Health predictions must stay in a sane range.
	for _, s := range ds.Samples[:50] {
		h := rt.Predict(s.X)
		if h < -1.2 || h > 1.2 || math.IsNaN(h) {
			t.Fatalf("health prediction %v out of range", h)
		}
	}
}

func TestEndToEndNeuralNetwork(t *testing.T) {
	_, ds := buildSmallDataset(t, 7)
	net, err := TrainNeuralNetwork(ds, NetworkConfig{Hidden: 8, Epochs: 20, Patience: 5})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, s := range ds.Samples {
		total++
		if (net.Predict(s.X) < 0) == s.Failed {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Errorf("training accuracy = %.2f, want ≥ 0.8", acc)
	}
}

func TestSelectFeaturesFacade(t *testing.T) {
	candidates := FeatureSet{CriticalFeatures()[0], CriticalFeatures()[1]}
	good := [][]float64{{100, 97}, {101, 96}, {99, 98}, {100, 97}}
	failed := [][]float64{{70, 97}, {72, 96}, {69, 98}, {71, 97}}
	sel, err := SelectFeatures(candidates, good, failed, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0] != candidates[0] {
		t.Errorf("selected %v, want the separating feature", sel)
	}
	if _, err := SelectFeatures(nil, nil, nil, nil, 1); err == nil {
		t.Error("empty candidates accepted")
	}
}

func TestReliabilityFacade(t *testing.T) {
	sata := DriveParams{MTTFHours: 1390000, MTTRHours: 8}
	ct := PredictionParams{FDR: 0.9549, TIAHours: 355}
	years := SingleDriveMTTDL(sata, ct) / 8760
	if math.Abs(years-2398.92) > 15 {
		t.Errorf("Eq.7 MTTDL = %.2f years, want ≈ 2398.92 (paper Table VI)", years)
	}
	r6, err := RAID6MTTDL(50, sata, ct)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := RAID5MTTDL(50, sata, ct)
	if err != nil {
		t.Fatal(err)
	}
	if r6 <= r5 {
		t.Errorf("RAID-6 MTTDL %.3g should exceed RAID-5 %.3g", r6, r5)
	}
}

func TestDetectorConstructors(t *testing.T) {
	model := firstFeatureModel{}
	v, err := NewVotingDetector(model, 5, 0)
	if err != nil || v.Voters != 5 {
		t.Fatalf("valid voting detector rejected: %v", err)
	}
	m, err := NewMeanThresholdDetector(model, 3, -0.3)
	if err != nil || m.Voters != 3 {
		t.Fatalf("valid mean detector rejected: %v", err)
	}
	cases := []struct {
		name      string
		model     Predictor
		voters    int
		threshold float64
	}{
		{"nil model", nil, 5, 0},
		{"zero window", model, 0, 0},
		{"negative window", model, -1, 0},
		{"threshold above 1", model, 5, 1.5},
		{"threshold below -1", model, 5, -2},
		{"NaN threshold", model, 5, math.NaN()},
	}
	for _, c := range cases {
		if _, err := NewVotingDetector(c.model, c.voters, c.threshold); err == nil {
			t.Errorf("voting: %s accepted", c.name)
		}
		if _, err := NewMeanThresholdDetector(c.model, c.voters, c.threshold); err == nil {
			t.Errorf("mean-threshold: %s accepted", c.name)
		}
	}
}

// TestFleetSweepFacade drives the sweep surface end to end through the
// facade: quantize the evaluation fleet with QuantizeFleet, sweep it
// with SweepFleet, and require outcomes identical to the per-drive
// binned scan — the invariant the sweep engine is built around.
func TestFleetSweepFacade(t *testing.T) {
	fleet, ds := buildSmallDataset(t, 8)
	tree, err := TrainClassificationTree(ds, TreeParams{LossFA: 10})
	if err != nil {
		t.Fatal(err)
	}
	x, _, _ := ds.XMatrix()
	bm, err := BinFeatureMatrix(x, 255)
	if err != nil {
		t.Fatal(err)
	}
	model, err := CompileModelBinned(tree, bm)
	if err != nil {
		t.Fatal(err)
	}
	tiled, ok := model.(TiledPredictor)
	if !ok {
		t.Fatalf("%T does not implement TiledPredictor", model)
	}
	var series []Series
	var failHours []int
	for _, d := range fleet.Drives() {
		trace := fleet.Trace(d.Index)
		series = append(series, ExtractSeries(CriticalFeatures(), trace, 0, len(trace)))
		fh := -1
		if d.Failed {
			fh = d.FailHour
		}
		failHours = append(failHours, fh)
	}
	var fc FleetCodes
	binned, err := QuantizeFleet(bm, series, &fc)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewBinnedVotingDetector(model, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ScanBatchBinned(det, binned, failHours, 1)
	res, err := SweepFleet(tiled, bm, series, failHours, SweepConfig{Voters: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Outcomes, want) {
		t.Fatal("SweepFleet outcomes diverged from ScanBatchBinned")
	}
	if res.Total.Drives != int64(len(series)) {
		t.Fatalf("sweep scanned %d drives, fleet has %d", res.Total.Drives, len(series))
	}
	// The prepared-fleet form must land on the same outcomes.
	pf, err := PrepareSweepBinned(binned, 4)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunSweep(tiled, pf, failHours, SweepConfig{Voters: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Outcomes, want) {
		t.Fatal("RunSweep outcomes diverged from ScanBatchBinned")
	}
}
