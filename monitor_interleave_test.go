package hddcart

import (
	"math/rand"
	"testing"

	"hddcart/internal/cart"
)

// TestMonitorQueueOrderInterleaved drives several drives' observation
// streams interleaved hour by hour and checks the warning queue hands the
// operator drives most-critical-first (paper §III-B), including after
// later observations revise an already-warned drive's health.
func TestMonitorQueueOrderInterleaved(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures,
		Model:    firstFeatureModel{},
		Voters:   3,
		UseMean:  true,
		// Mean-mode threshold: a drive warns when its 3-sample mean
		// health drops below -0.05.
		Threshold: -0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Per-drive health trajectories, observed interleaved: worst ends far
	// below mid, which ends below mild; healthy never trips.
	streams := map[string][]float64{
		"worst":   {0.5, -0.6, -0.9, -0.95, -0.99},
		"mid":     {0.5, -0.2, -0.5, -0.55, -0.6},
		"mild":    {0.5, 0.1, -0.3, -0.32, -0.3},
		"healthy": {0.9, 0.8, 0.9, 0.85, 0.9},
	}
	order := []string{"mid", "worst", "healthy", "mild"}
	for h := 0; h < 5; h++ {
		for _, serial := range order {
			m.Observe(serial, recAt(h, streams[serial][h]))
		}
	}
	if got := m.Outstanding(); got != 3 {
		t.Fatalf("outstanding = %d, want 3", got)
	}
	var popped []string
	prev := -2.0
	for {
		w, ok := m.NextWarning()
		if !ok {
			break
		}
		if w.Health < prev {
			t.Fatalf("queue out of order: %q health %v after %v", w.Serial, w.Health, prev)
		}
		prev = w.Health
		popped = append(popped, w.Serial)
	}
	want := []string{"worst", "mid", "mild"}
	for i, serial := range want {
		if i >= len(popped) || popped[i] != serial {
			t.Fatalf("pop order = %v, want %v", popped, want)
		}
	}
}

// plainTreeModel hides a tree's concrete type from CompileModel so a
// monitor can be forced onto the pointer-tree scoring path.
type plainTreeModel struct{ t *cart.Tree }

func (p plainTreeModel) Predict(x []float64) float64 { return p.t.Predict(x) }

// TestMonitorCompiledModelEquivalence feeds identical interleaved streams
// to a monitor scoring through the compiled tree (the default) and one
// pinned to the pointer tree, and requires identical warnings — the
// end-to-end form of the compiled engine's bit-identical guarantee.
func TestMonitorCompiledModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		v := rng.Float64()*2 - 1
		// Train in the same offset domain recAt feeds the monitor.
		x = append(x, []float64{v + monitorScoreOffset})
		if v < -0.2 {
			y = append(y, -1)
		} else {
			y = append(y, 1)
		}
	}
	tree, err := cart.TrainClassifier(x, y, nil, cart.Params{MinSplit: 4, MinBucket: 2, CP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(model Predictor) *Monitor {
		m, err := NewMonitor(MonitorConfig{
			Features: monitorFeatures, Model: model, Voters: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	compiled := mk(tree) // NewMonitor compiles *cart.Tree automatically
	pointer := mk(plainTreeModel{tree})

	serials := []string{"a", "b", "c"}
	for h := 0; h < 200; h++ {
		for _, serial := range serials {
			v := rng.Float64()*2 - 1
			w1, ok1 := compiled.Observe(serial, recAt(h, v))
			w2, ok2 := pointer.Observe(serial, recAt(h, v))
			if ok1 != ok2 || w1 != w2 {
				t.Fatalf("hour %d drive %s: compiled warning (%+v,%v) vs pointer (%+v,%v)",
					h, serial, w1, ok1, w2, ok2)
			}
		}
	}
	for {
		w1, ok1 := compiled.NextWarning()
		w2, ok2 := pointer.NextWarning()
		if ok1 != ok2 || w1 != w2 {
			t.Fatalf("queues diverged: (%+v,%v) vs (%+v,%v)", w1, ok1, w2, ok2)
		}
		if !ok1 {
			break
		}
	}
}
