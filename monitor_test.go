package hddcart

import (
	"math"
	"testing"

	"hddcart/internal/smart"
)

// monitorScoreOffset shifts test scores into the valid normalized SMART
// domain [0,255]: recAt stores score+offset and firstFeatureModel subtracts
// it again, so tests can speak in health degrees (±1) without the records
// being rejected as out-of-domain by the degradation policy.
const monitorScoreOffset = 100

// firstFeatureModel maps the first feature back to the test's score scale.
type firstFeatureModel struct{}

func (firstFeatureModel) Predict(x []float64) float64 { return x[0] - monitorScoreOffset }

// monitorFeatures is a single-attribute feature set.
var monitorFeatures = FeatureSet{{Attr: smart.RawReadErrorRate, Kind: smart.Normalized}}

func recAt(hour int, v float64) Record {
	var r Record
	r.Hour = hour
	i, _ := smart.Index(smart.RawReadErrorRate)
	r.Normalized[i] = v + monitorScoreOffset
	return r
}

func newTestMonitor(t *testing.T, voters int, useMean bool) *Monitor {
	t.Helper()
	m, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures,
		Model:    firstFeatureModel{},
		Voters:   voters,
		UseMean:  useMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(MonitorConfig{Model: firstFeatureModel{}}); err == nil {
		t.Error("missing features accepted")
	}
	if _, err := NewMonitor(MonitorConfig{Features: monitorFeatures}); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := NewMonitor(MonitorConfig{
		Features: CriticalFeatures(), Model: firstFeatureModel{}, Voters: 1, HistoryHours: 2,
	}); err == nil {
		t.Error("history shorter than lookback accepted")
	}
	// Degenerate windows, thresholds and timeouts are construction-time
	// errors, not silently clamped defaults.
	if _, err := NewMonitor(MonitorConfig{Features: monitorFeatures, Model: firstFeatureModel{}}); err == nil {
		t.Error("zero voting window accepted")
	}
	if _, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures, Model: firstFeatureModel{}, Voters: -3,
	}); err == nil {
		t.Error("negative voting window accepted")
	}
	if _, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures, Model: firstFeatureModel{}, Voters: 1, Threshold: -2,
	}); err == nil {
		t.Error("threshold outside [-1,1] accepted")
	}
	if _, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures, Model: firstFeatureModel{}, Voters: 1, StaleAfterHours: -1,
	}); err == nil {
		t.Error("negative stale timeout accepted")
	}
	if _, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures, Model: firstFeatureModel{}, Voters: 1, HistoryHours: -5,
	}); err == nil {
		t.Error("negative history accepted")
	}
}

func TestMonitorVotingWarns(t *testing.T) {
	m := newTestMonitor(t, 3, false)
	// Healthy, then persistent degradation: warn once 2 of last 3 are
	// negative.
	inputs := []float64{1, 1, 1, -1, -1, -1}
	var warnHour = -1
	for h, v := range inputs {
		if w, ok := m.Observe("d1", recAt(h, v)); ok {
			warnHour = w.Hour
		}
	}
	if warnHour != 4 {
		t.Errorf("warned at hour %d, want 4", warnHour)
	}
	if m.Outstanding() != 1 {
		t.Errorf("outstanding = %d, want 1", m.Outstanding())
	}
	// No duplicate warning for the same drive.
	if _, ok := m.Observe("d1", recAt(10, -1)); ok {
		t.Error("duplicate warning raised")
	}
}

func TestMonitorSuppressesBlips(t *testing.T) {
	m := newTestMonitor(t, 5, false)
	inputs := []float64{1, 1, -1, 1, 1, 1, 1, 1}
	for h, v := range inputs {
		if _, ok := m.Observe("d1", recAt(h, v)); ok {
			t.Fatalf("warned on a transient blip at hour %d", h)
		}
	}
}

func TestMonitorMeanMode(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures, Model: firstFeatureModel{},
		Voters: 2, Threshold: -0.25, UseMean: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Means over windows of 2: (0.9,-0.2)/2=0.35, (-0.2,-0.4)/2=-0.3 < -0.25.
	if _, ok := m.Observe("d", recAt(0, 0.9)); ok {
		t.Error("warned too early")
	}
	if _, ok := m.Observe("d", recAt(1, -0.2)); ok {
		t.Error("warned above threshold")
	}
	w, ok := m.Observe("d", recAt(2, -0.4))
	if !ok || w.Hour != 2 {
		t.Errorf("mean-mode warning = %+v, %v", w, ok)
	}
}

func TestMonitorQueueOrderAndSerials(t *testing.T) {
	m := newTestMonitor(t, 1, false)
	m.Observe("mild", recAt(0, -0.1))
	m.Observe("bad", recAt(0, -0.9))
	w1, ok := m.NextWarning()
	if !ok || w1.Serial != "bad" {
		t.Errorf("first warning = %+v, want drive 'bad'", w1)
	}
	w2, _ := m.NextWarning()
	if w2.Serial != "mild" {
		t.Errorf("second warning = %+v", w2)
	}
	if _, ok := m.NextWarning(); ok {
		t.Error("queue should be empty")
	}
}

func TestMonitorDropsOutOfOrderRecords(t *testing.T) {
	m := newTestMonitor(t, 1, false)
	m.Observe("d", recAt(5, 1))
	if _, ok := m.Observe("d", recAt(4, -1)); ok {
		t.Error("out-of-order record triggered a warning")
	}
	if m.Outstanding() != 0 {
		t.Error("out-of-order record was processed")
	}
}

func TestMonitorResolve(t *testing.T) {
	m := newTestMonitor(t, 1, false)
	m.Observe("d", recAt(0, -1))
	if m.Outstanding() != 1 {
		t.Fatal("no warning raised")
	}
	m.NextWarning()
	m.Resolve("d")
	// After replacement the (new) drive can warn again.
	if _, ok := m.Observe("d", recAt(100, -1)); !ok {
		t.Error("resolved drive cannot warn again")
	}
}

// rateModel scores the first feature as-is (change rates carry no offset:
// the recAt shift cancels in the difference).
type rateModel struct{}

func (rateModel) Predict(x []float64) float64 { return x[0] }

func TestMonitorChangeRateLookback(t *testing.T) {
	// With a change-rate feature the monitor needs history before it can
	// score at all.
	features := FeatureSet{{Attr: smart.RawReadErrorRate, Kind: smart.ChangeRate, IntervalHours: 6}}
	m, err := NewMonitor(MonitorConfig{
		Features: features, Model: rateModel{}, Voters: 1, Threshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Declining value: rate −1/h → Δ6h = −6 < −1 once lookback exists.
	warned := false
	for h := 0; h < 10; h++ {
		if _, ok := m.Observe("d", recAt(h, float64(100-h))); ok {
			if h < 6 {
				t.Errorf("warned at hour %d before lookback possible", h)
			}
			warned = true
		}
	}
	if !warned {
		t.Error("never warned despite steady decline")
	}
}

// corruptAt builds a record whose first attribute is NaN (invalid domain).
func corruptAt(hour int) Record {
	var r Record
	r.Hour = hour
	i, _ := smart.Index(smart.RawReadErrorRate)
	r.Normalized[i] = math.NaN()
	return r
}

func TestMonitorDegradationCounters(t *testing.T) {
	m := newTestMonitor(t, 3, false)
	m.Observe("d", recAt(0, 1))
	m.Observe("d", recAt(0, 1))  // duplicate hour
	m.Observe("d", recAt(-1, 1)) // negative hour after history → out of order
	m.Observe("d", recAt(3, 1))
	m.Observe("d", recAt(2, 1)) // out of order
	st := m.Stats()
	if st.Observed != 5 || st.Scored != 2 {
		t.Errorf("observed/scored = %d/%d, want 5/2", st.Observed, st.Scored)
	}
	if st.DroppedDuplicate != 1 || st.DroppedOutOfOrder != 2 {
		t.Errorf("dup/ooo = %d/%d, want 1/2", st.DroppedDuplicate, st.DroppedOutOfOrder)
	}
}

func TestMonitorRepairsCorruptByCarryForward(t *testing.T) {
	m := newTestMonitor(t, 3, false)
	// Corrupt with no history: dropped outright.
	if _, ok := m.Observe("d", corruptAt(0)); ok {
		t.Error("corrupt first sample warned")
	}
	if st := m.Stats(); st.DroppedInvalid != 1 {
		t.Errorf("DroppedInvalid = %d, want 1", st.DroppedInvalid)
	}
	// Healthy history, then corrupt samples: repaired by carrying the last
	// good (healthy) value forward, so no warning can fire.
	m.Observe("d", recAt(1, 1))
	for h := 2; h < 6; h++ {
		if _, ok := m.Observe("d", corruptAt(h)); ok {
			t.Fatalf("repaired sample warned at hour %d", h)
		}
	}
	if st := m.Stats(); st.Repaired != 4 {
		t.Errorf("Repaired = %d, want 4", st.Repaired)
	}
}

func TestMonitorQuarantineAfterBudget(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures, Model: firstFeatureModel{},
		Voters: 1, BadSampleBudget: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe("d", recAt(0, 1))
	for h := 1; h <= 3; h++ {
		m.Observe("d", corruptAt(h))
	}
	if !m.Quarantined("d") {
		t.Fatal("drive not quarantined after exhausting its error budget")
	}
	// Further observations — even clean, failing ones — are rejected.
	if _, ok := m.Observe("d", recAt(10, -1)); ok {
		t.Error("quarantined drive warned")
	}
	st := m.Stats()
	if st.QuarantineEvents != 1 || st.Quarantined != 1 || st.DroppedQuarantined != 1 {
		t.Errorf("quarantine stats = %+v", st)
	}
	// A clean run below the budget resets it: no quarantine.
	m.Observe("e", recAt(0, 1))
	m.Observe("e", corruptAt(1))
	m.Observe("e", corruptAt(2))
	m.Observe("e", recAt(3, 1)) // resets badRun
	m.Observe("e", corruptAt(4))
	m.Observe("e", corruptAt(5))
	if m.Quarantined("e") {
		t.Error("interrupted bad run quarantined the drive")
	}
	// Resolve lifts the quarantine; the (repaired/replaced) drive warns again.
	m.Resolve("d")
	if m.Quarantined("d") {
		t.Error("Resolve did not lift quarantine")
	}
	if m.Stats().Quarantined != 0 {
		t.Errorf("Quarantined gauge = %d after Resolve, want 0", m.Stats().Quarantined)
	}
	if _, ok := m.Observe("d", recAt(20, -1)); !ok {
		t.Error("resolved drive cannot warn")
	}
}

func TestMonitorStaleWindowReset(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures, Model: firstFeatureModel{},
		Voters: 3, StaleAfterHours: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two failed votes, then a telemetry blackout longer than 24 h: the old
	// votes must not combine with one fresh failed vote into an alarm.
	m.Observe("d", recAt(0, -1))
	m.Observe("d", recAt(1, -1))
	if _, ok := m.Observe("d", recAt(100, -1)); ok {
		t.Error("stale votes survived the blackout and alarmed")
	}
	if st := m.Stats(); st.StaleResets != 1 {
		t.Errorf("StaleResets = %d, want 1", st.StaleResets)
	}
	// After the reset a full fresh window still alarms.
	warned := false
	for h := 101; h < 104; h++ {
		if _, ok := m.Observe("d", recAt(h, -1)); ok {
			warned = true
		}
	}
	if !warned {
		t.Error("drive never re-alarmed on fresh post-blackout evidence")
	}
}

// nanModel poisons the score for a marker value and is healthy otherwise.
type nanModel struct{}

func (nanModel) Predict(x []float64) float64 {
	if x[0] == 0 { // marker: recAt(h, -monitorScoreOffset)
		return math.NaN()
	}
	return x[0] - monitorScoreOffset
}

func TestMonitorExcludesInvalidPredictions(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures, Model: nanModel{}, Voters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// NaN scores must be excluded from the window — not counted as healthy
	// votes — so two failed votes plus a NaN is not yet a full window.
	m.Observe("d", recAt(0, -1))
	m.Observe("d", recAt(1, -monitorScoreOffset)) // scores NaN
	if _, ok := m.Observe("d", recAt(2, -1)); ok {
		t.Error("alarmed on a window padded with an invalid prediction")
	}
	if st := m.Stats(); st.DroppedInvalid != 1 || st.Scored != 2 {
		t.Errorf("stats = %+v, want DroppedInvalid=1 Scored=2", st)
	}
	if _, ok := m.Observe("d", recAt(3, -1)); !ok {
		t.Error("third valid failed vote did not alarm")
	}
}
