package hddcart

import (
	"testing"

	"hddcart/internal/smart"
)

// constModel returns the first feature as the score.
type firstFeatureModel struct{}

func (firstFeatureModel) Predict(x []float64) float64 { return x[0] }

// monitorFeatures is a single-attribute feature set.
var monitorFeatures = FeatureSet{{Attr: smart.RawReadErrorRate, Kind: smart.Normalized}}

func recAt(hour int, v float64) Record {
	var r Record
	r.Hour = hour
	i, _ := smart.Index(smart.RawReadErrorRate)
	r.Normalized[i] = v
	return r
}

func newTestMonitor(t *testing.T, voters int, useMean bool) *Monitor {
	t.Helper()
	m, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures,
		Model:    firstFeatureModel{},
		Voters:   voters,
		UseMean:  useMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(MonitorConfig{Model: firstFeatureModel{}}); err == nil {
		t.Error("missing features accepted")
	}
	if _, err := NewMonitor(MonitorConfig{Features: monitorFeatures}); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := NewMonitor(MonitorConfig{
		Features: CriticalFeatures(), Model: firstFeatureModel{}, HistoryHours: 2,
	}); err == nil {
		t.Error("history shorter than lookback accepted")
	}
}

func TestMonitorVotingWarns(t *testing.T) {
	m := newTestMonitor(t, 3, false)
	// Healthy, then persistent degradation: warn once 2 of last 3 are
	// negative.
	inputs := []float64{1, 1, 1, -1, -1, -1}
	var warnHour = -1
	for h, v := range inputs {
		if w, ok := m.Observe("d1", recAt(h, v)); ok {
			warnHour = w.Hour
		}
	}
	if warnHour != 4 {
		t.Errorf("warned at hour %d, want 4", warnHour)
	}
	if m.Outstanding() != 1 {
		t.Errorf("outstanding = %d, want 1", m.Outstanding())
	}
	// No duplicate warning for the same drive.
	if _, ok := m.Observe("d1", recAt(10, -1)); ok {
		t.Error("duplicate warning raised")
	}
}

func TestMonitorSuppressesBlips(t *testing.T) {
	m := newTestMonitor(t, 5, false)
	inputs := []float64{1, 1, -1, 1, 1, 1, 1, 1}
	for h, v := range inputs {
		if _, ok := m.Observe("d1", recAt(h, v)); ok {
			t.Fatalf("warned on a transient blip at hour %d", h)
		}
	}
}

func TestMonitorMeanMode(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{
		Features: monitorFeatures, Model: firstFeatureModel{},
		Voters: 2, Threshold: -0.25, UseMean: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Means over windows of 2: (0.9,-0.2)/2=0.35, (-0.2,-0.4)/2=-0.3 < -0.25.
	if _, ok := m.Observe("d", recAt(0, 0.9)); ok {
		t.Error("warned too early")
	}
	if _, ok := m.Observe("d", recAt(1, -0.2)); ok {
		t.Error("warned above threshold")
	}
	w, ok := m.Observe("d", recAt(2, -0.4))
	if !ok || w.Hour != 2 {
		t.Errorf("mean-mode warning = %+v, %v", w, ok)
	}
}

func TestMonitorQueueOrderAndSerials(t *testing.T) {
	m := newTestMonitor(t, 1, false)
	m.Observe("mild", recAt(0, -0.1))
	m.Observe("bad", recAt(0, -0.9))
	w1, ok := m.NextWarning()
	if !ok || w1.Serial != "bad" {
		t.Errorf("first warning = %+v, want drive 'bad'", w1)
	}
	w2, _ := m.NextWarning()
	if w2.Serial != "mild" {
		t.Errorf("second warning = %+v", w2)
	}
	if _, ok := m.NextWarning(); ok {
		t.Error("queue should be empty")
	}
}

func TestMonitorDropsOutOfOrderRecords(t *testing.T) {
	m := newTestMonitor(t, 1, false)
	m.Observe("d", recAt(5, 1))
	if _, ok := m.Observe("d", recAt(4, -1)); ok {
		t.Error("out-of-order record triggered a warning")
	}
	if m.Outstanding() != 0 {
		t.Error("out-of-order record was processed")
	}
}

func TestMonitorResolve(t *testing.T) {
	m := newTestMonitor(t, 1, false)
	m.Observe("d", recAt(0, -1))
	if m.Outstanding() != 1 {
		t.Fatal("no warning raised")
	}
	m.NextWarning()
	m.Resolve("d")
	// After replacement the (new) drive can warn again.
	if _, ok := m.Observe("d", recAt(100, -1)); !ok {
		t.Error("resolved drive cannot warn again")
	}
}

func TestMonitorChangeRateLookback(t *testing.T) {
	// With a change-rate feature the monitor needs history before it can
	// score at all.
	features := FeatureSet{{Attr: smart.RawReadErrorRate, Kind: smart.ChangeRate, IntervalHours: 6}}
	m, err := NewMonitor(MonitorConfig{
		Features: features, Model: firstFeatureModel{}, Voters: 1, Threshold: -2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Declining value: rate −1/h → Δ6h = −6 < −2 once lookback exists.
	warned := false
	for h := 0; h < 10; h++ {
		if _, ok := m.Observe("d", recAt(h, float64(100-h))); ok {
			if h < 6 {
				t.Errorf("warned at hour %d before lookback possible", h)
			}
			warned = true
		}
	}
	if !warned {
		t.Error("never warned despite steady decline")
	}
}
