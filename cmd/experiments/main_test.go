package main

import "testing"

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOneExperiment(t *testing.T) {
	if err := run([]string{"-scale", "0.001", "-failed-scale", "0.02", "-run", "table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{"-run", "tableXX", "-scale", "0.001", "-failed-scale", "0.02"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-notaflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
