// Command experiments regenerates every table and figure of the paper's
// evaluation on the synthetic fleet.
//
// Usage:
//
//	experiments [-scale 0.2] [-failed-scale 0.5] [-seed 1] [-ann-epochs 150] [-run table3,figure2]
//
// -run selects a comma-separated subset (default: everything, in paper
// order). -scale scales the good-drive population relative to the paper's
// 25,792-drive dataset; -failed-scale the failed population. The defaults
// run the full suite in tens of minutes on a laptop; -scale 1 reproduces
// the full population.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hddcart/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.2, "good-drive population scale (1 = paper's dataset)")
	failedScale := fs.Float64("failed-scale", 0.5, "failed-drive population scale")
	seed := fs.Int64("seed", 1, "fleet seed")
	workers := fs.Int("workers", 0, "worker-pool size for training and evaluation (0 = all cores); results are identical for any value")
	annEpochs := fs.Int("ann-epochs", 150, "BP ANN training epoch budget")
	maxBins := fs.Int("max-bins", 0, "histogram-binned tree training with this bin budget (0 = exact split search, max 255); results are bit-identical for any worker count at a fixed value")
	runList := fs.String("run", "", "comma-separated experiment ids (default: all); known: "+
		strings.Join(experiments.IDs(), ","))
	svgDir := fs.String("svg-dir", "", "also render figure charts as SVG files into this directory")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	var ids []string
	if *runList != "" {
		ids = strings.Split(*runList, ",")
	}
	cfg := experiments.Config{
		Seed:        *seed,
		GoodScale:   *scale,
		FailedScale: *failedScale,
		Workers:     *workers,
		ANNEpochs:   *annEpochs,
		MaxBins:     *maxBins,
	}
	fmt.Printf("# hddcart experiment suite: seed %d, good ×%g, failed ×%g\n\n",
		cfg.Seed, cfg.GoodScale, cfg.FailedScale)
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		return err
	}
	return env.RunWithCharts(ids, os.Stdout, *svgDir)
}
