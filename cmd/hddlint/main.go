// Command hddlint is hddcart's multichecker. A full run drives both
// tiers of internal/lint: the AST/type analyzers (maporder, seededrand,
// hotalloc, floateq, nakedgo, bincmp, shardmerge, atomicmix,
// asmfallback) and the
// compiler-contract tier (escapecheck, bcecheck), which shells out to
// `go build -gcflags='-m=2 -d=ssa/check_bce'` per annotated package and
// fails on any heap escape in a //hddlint:noalloc function or retained
// bounds check in a //hddlint:nobc function. Full runs also enforce
// directive hygiene: an //hddlint:ignore that suppresses nothing is an
// ignoredrift finding. The command exits nonzero on any finding.
//
// Usage:
//
//	go run ./cmd/hddlint ./...
//	go run ./cmd/hddlint -vet ./...
//	go run ./cmd/hddlint -fast ./...   # AST tier only: no compiler runs, no drift check
//	go run ./cmd/hddlint -json ./...   # machine-readable findings (CI annotations)
//
// Package patterns are accepted for familiarity but the whole module is
// always linted: the invariants are global properties (a nondeterministic
// merge in any package breaks every downstream consumer), so there is no
// meaningful partial run.
//
// Compiler diagnostics are cached under -diagcache (default: the user
// cache dir) keyed on the toolchain, the flag string, and the content of
// the package plus its module-internal dependency closure, so unchanged
// packages cost no subprocess on re-runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"hddcart/internal/lint"
)

// pseudoAnalyzers are the checks that run outside the Analyzer roster: the
// compiler-contract tier, directive hygiene, and malformed directives.
var pseudoAnalyzers = []struct{ name, doc string }{
	{lint.EscapeCheckName, "compiler tier: escape analysis proves a heap allocation in a //hddlint:noalloc function"},
	{lint.BCECheckName, "compiler tier: a //hddlint:nobc function retains an IsInBounds/IsSliceInBounds check"},
	{lint.IgnoreDriftName, "full runs: an //hddlint:ignore directive that suppresses zero diagnostics"},
	{"directive", "an //hddlint:ignore missing its analyzer name or justification"},
}

// jsonDiag is the -json output form of one finding. File is root-relative
// so CI annotations resolve against the checkout.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	vet := flag.Bool("vet", false, "also run `go vet ./...` before the hddlint analyzers")
	list := flag.Bool("list", false, "list the analyzers and exit")
	fast := flag.Bool("fast", false, "AST tier only: skip the compiler-contract tier and the ignoredrift check")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout instead of vet-style lines")
	diagCache := flag.String("diagcache", "", "directory caching compiler diagnostics (default: <user cache dir>/hddlint; empty string with the flag unset)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, p := range pseudoAnalyzers {
			fmt.Printf("%-12s %s\n", p.name, p.doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", "vet", "./...")
		cmd.Dir = root
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	diags := lint.Collect(pkgs, lint.All())
	if !*fast {
		compiler, err := lint.RunCompilerChecks(root, pkgs, cacheDir(*diagCache))
		if err != nil {
			fatal(err)
		}
		diags = append(diags, compiler...)
	}
	// The drift check needs the full suite's suppression picture; a -fast
	// run would miscount directives aimed at the compiler tier.
	out := lint.Finish(pkgs, diags, !*fast)

	if *jsonOut {
		printJSON(root, out)
	} else {
		for _, d := range out {
			fmt.Println(d)
		}
	}
	if len(out) > 0 || failed {
		os.Exit(1)
	}
}

// cacheDir resolves the diagnostics cache directory: the flag value if
// set, else a hddlint subdirectory of the user cache dir, else "" (which
// disables caching) when no user cache dir exists.
func cacheDir(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "hddlint")
}

// printJSON emits the findings as one JSON array with root-relative
// paths (falling back to the absolute path outside the module).
func printJSON(root string, diags []lint.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonDiag{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// moduleRoot walks up from the working directory to the directory
// holding go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("hddlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hddlint:", err)
	os.Exit(1)
}
