// Command hddlint is hddcart's multichecker: it runs the internal/lint
// analyzers — maporder, seededrand, hotalloc, floateq, nakedgo — over
// every non-test package of the module and exits nonzero on any
// finding. With -vet it also runs `go vet ./...` first, so one command
// covers both the stock and the repo-specific invariants.
//
// Usage:
//
//	go run ./cmd/hddlint ./...
//	go run ./cmd/hddlint -vet ./...
//
// Package patterns are accepted for familiarity but the whole module is
// always linted: the invariants are global properties (a nondeterministic
// merge in any package breaks every downstream consumer), so there is no
// meaningful partial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"hddcart/internal/lint"
)

func main() {
	vet := flag.Bool("vet", false, "also run `go vet ./...` before the hddlint analyzers")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", "vet", "./...")
		cmd.Dir = root
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	diags := lint.RunAll(pkgs, lint.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 || failed {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the directory
// holding go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("hddlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hddlint:", err)
	os.Exit(1)
}
