package main

import (
	"sort"
	"strings"
	"testing"
)

func report(entries map[string]float64) *Report {
	r := &Report{}
	// Insertion order doesn't matter for Diff; build deterministically
	// anyway so test failures print stably.
	for _, name := range sortedKeys(entries) {
		r.Benchmarks = append(r.Benchmarks, Benchmark{
			Name: name, Runs: 1, Iterations: 1,
			Metrics: map[string]float64{"ns/op": entries[name]},
		})
	}
	return r
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestDiffFlagsRegressions(t *testing.T) {
	base := report(map[string]float64{
		"Train/exact":  1000,
		"Train/binned": 100,
		"Predict":      50,
	})
	fresh := report(map[string]float64{
		"Train/exact":  1050, // +5%: within tolerance
		"Train/binned": 140,  // +40%: regression
		"Predict":      40,   // improvement: never flagged
	})
	regs := Diff(base, fresh, 0.10)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	r := regs[0]
	if r.Name != "Train/binned" || r.Baseline != 100 || r.Fresh != 140 {
		t.Errorf("regression = %+v", r)
	}
	if r.Ratio < 1.39 || r.Ratio > 1.41 {
		t.Errorf("ratio = %v, want 1.4", r.Ratio)
	}
}

func TestDiffSkipsUnsharedBenchmarks(t *testing.T) {
	base := report(map[string]float64{"Old": 100, "Shared": 100})
	fresh := report(map[string]float64{"New": 1e9, "Shared": 105})
	if regs := Diff(base, fresh, 0.10); len(regs) != 0 {
		t.Errorf("unshared benchmarks produced regressions: %+v", regs)
	}
	if n := comparedCount(base, fresh); n != 1 {
		t.Errorf("comparedCount = %d, want 1", n)
	}
}

func TestDiffSortsWorstFirst(t *testing.T) {
	base := report(map[string]float64{"A": 100, "B": 100, "C": 100})
	fresh := report(map[string]float64{"A": 150, "B": 300, "C": 200})
	regs := Diff(base, fresh, 0.10)
	if len(regs) != 3 {
		t.Fatalf("got %d regressions, want 3", len(regs))
	}
	if regs[0].Name != "B" || regs[1].Name != "C" || regs[2].Name != "A" {
		t.Errorf("order = %s,%s,%s; want B,C,A", regs[0].Name, regs[1].Name, regs[2].Name)
	}
}

func TestDiffZeroToleranceFlagsAnySlowdown(t *testing.T) {
	base := report(map[string]float64{"A": 100})
	fresh := report(map[string]float64{"A": 101})
	if regs := Diff(base, fresh, 0); len(regs) != 1 {
		t.Errorf("1%% slowdown at zero tolerance not flagged: %+v", regs)
	}
}

func TestWriteDiffRendersBothOutcomes(t *testing.T) {
	base := report(map[string]float64{"A": 100})
	fresh := report(map[string]float64{"A": 500})
	var clean strings.Builder
	writeDiff(&clean, fresh, nil, 1, 0.10)
	if !strings.Contains(clean.String(), "within 10% of baseline") {
		t.Errorf("clean output = %q", clean.String())
	}
	var bad strings.Builder
	writeDiff(&bad, fresh, Diff(base, fresh, 0.10), 1, 0.10)
	out := bad.String()
	if !strings.Contains(out, "regressed beyond 10%") || !strings.Contains(out, "5.00x") {
		t.Errorf("regression output = %q", out)
	}
}
