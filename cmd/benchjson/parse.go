package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Report is the JSON document benchjson emits.
type Report struct {
	// Context echoes the `go test` environment lines (goos, goarch, pkg,
	// cpu) when present in the input.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks holds one entry per distinct benchmark name, in input
	// order of first appearance.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark aggregates every run of one benchmark name.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// trailing -GOMAXPROCS suffix (e.g. "PredictCompiledTree/pointer").
	Name string `json:"name"`
	// Runs is how many result lines were folded into this entry.
	Runs int `json:"runs"`
	// Iterations is the median b.N across runs.
	Iterations int64 `json:"iterations"`
	// Metrics maps each reported unit (ns/op, ns/sample, B/op, allocs/op,
	// Msamples/s, ...) to its median value across runs.
	Metrics map[string]float64 `json:"metrics"`
}

// Parse reads `go test -bench` output and aggregates the result lines.
// Unrecognized lines (PASS, ok, test logs) are ignored.
func Parse(r io.Reader) (*Report, error) {
	report := &Report{}
	index := map[string]int{}          // name → position in report.Benchmarks
	samples := map[string]*benchRuns{} // name → accumulated runs
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if name, ok := strings.CutPrefix(line, "Benchmark"); ok && name != "" {
			runs, err := parseBenchLine(name)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if _, seen := index[runs.name]; !seen {
				index[runs.name] = len(report.Benchmarks)
				report.Benchmarks = append(report.Benchmarks, Benchmark{Name: runs.name})
				samples[runs.name] = &benchRuns{metrics: map[string][]float64{}}
			}
			acc := samples[runs.name]
			acc.iterations = append(acc.iterations, runs.iterations)
			for unit, v := range runs.metrics {
				acc.metrics[unit] = append(acc.metrics[unit], v)
			}
			continue
		}
		// Context lines look like "goos: linux" / "cpu: ...".
		if k, v, ok := strings.Cut(line, ": "); ok && !strings.ContainsAny(k, " \t") {
			switch k {
			case "goos", "goarch", "pkg", "cpu":
				if report.Context == nil {
					report.Context = map[string]string{}
				}
				report.Context[k] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range report.Benchmarks {
		acc := samples[report.Benchmarks[i].Name]
		report.Benchmarks[i].Runs = len(acc.iterations)
		report.Benchmarks[i].Iterations = int64(median(toFloats(acc.iterations)))
		report.Benchmarks[i].Metrics = map[string]float64{}
		for unit, vs := range acc.metrics {
			report.Benchmarks[i].Metrics[unit] = median(vs)
		}
	}
	return report, nil
}

// benchRuns accumulates the repeated runs of one benchmark.
type benchRuns struct {
	iterations []int64
	metrics    map[string][]float64
}

// oneRun is a single parsed benchmark result line.
type oneRun struct {
	name       string
	iterations int64
	metrics    map[string]float64
}

// parseBenchLine parses one result line (with the "Benchmark" prefix
// already stripped): `Name[-P]   N   value unit   value unit ...`.
func parseBenchLine(line string) (*oneRun, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return nil, fmt.Errorf("malformed benchmark line %q", "Benchmark"+line)
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends when procs > 1.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad iteration count %q: %w", fields[1], err)
	}
	if iters <= 0 {
		// A zero or negative b.N never comes out of a healthy `go test`
		// run (-count=0 produces no lines at all); folding it into the
		// medians would silently skew them.
		return nil, fmt.Errorf("non-positive iteration count %d", iters)
	}
	run := &oneRun{name: name, iterations: iters, metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad metric value %q: %w", fields[i], err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// ParseFloat accepts "NaN" and "Inf", but a non-finite metric
			// would poison the medians and make the JSON encoder fail far
			// from the offending line.
			return nil, fmt.Errorf("non-finite metric value %q %s", fields[i], fields[i+1])
		}
		run.metrics[fields[i+1]] = v
	}
	return run, nil
}

// median returns the middle value (mean of the middle two for even
// counts); 0 for an empty slice.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// toFloats widens int64 samples for the shared median helper.
func toFloats(vs []int64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}
