package main

import (
	"fmt"
	"io"
	"sort"
)

// Regression is one benchmark whose fresh ns/op exceeds the committed
// baseline by more than the tolerance.
type Regression struct {
	// Name is the benchmark name shared by both reports.
	Name string
	// Baseline and Fresh are the median ns/op of each report.
	Baseline, Fresh float64
	// Ratio is Fresh/Baseline (> 1+tolerance, or it wouldn't be here).
	Ratio float64
}

// Diff compares a fresh report against a committed baseline and returns
// the ns/op regressions beyond tolerance (0.10 = fail when a benchmark
// got more than 10% slower), sorted worst first. Benchmarks present in
// only one report are skipped: CI runs bench subsets, and a brand-new
// benchmark has nothing to regress against. Improvements never fail the
// diff — the gate exists to stop slowdowns, not to force baseline churn.
func Diff(baseline, fresh *Report, tolerance float64) []Regression {
	base := map[string]float64{}
	for _, b := range baseline.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
			base[b.Name] = ns
		}
	}
	var regs []Regression
	for _, b := range fresh.Benchmarks {
		ns, ok := b.Metrics["ns/op"]
		if !ok || ns <= 0 {
			continue
		}
		ref, ok := base[b.Name]
		if !ok {
			continue
		}
		if ratio := ns / ref; ratio > 1+tolerance {
			regs = append(regs, Regression{Name: b.Name, Baseline: ref, Fresh: ns, Ratio: ratio})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Ratio != regs[j].Ratio {
			return regs[i].Ratio > regs[j].Ratio
		}
		return regs[i].Name < regs[j].Name
	})
	return regs
}

// writeDiff renders the comparison outcome for humans (the CI log).
func writeDiff(w io.Writer, fresh *Report, regs []Regression, compared int, tolerance float64) {
	if len(regs) == 0 {
		fmt.Fprintf(w, "benchjson: %d benchmarks within %.0f%% of baseline\n", compared, tolerance*100)
		return
	}
	fmt.Fprintf(w, "benchjson: %d of %d benchmarks regressed beyond %.0f%%:\n",
		len(regs), compared, tolerance*100)
	for _, r := range regs {
		fmt.Fprintf(w, "  %-60s %12.0f ns/op -> %12.0f ns/op (%.2fx)\n",
			r.Name, r.Baseline, r.Fresh, r.Ratio)
	}
}

// comparedCount reports how many fresh benchmarks had a baseline ns/op to
// compare against (the denominator writeDiff shows).
func comparedCount(baseline, fresh *Report) int {
	base := map[string]bool{}
	for _, b := range baseline.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
			base[b.Name] = true
		}
	}
	n := 0
	for _, b := range fresh.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 && base[b.Name] {
			n++
		}
	}
	return n
}
