// Command benchjson converts `go test -bench` text output into a stable
// JSON report, so performance numbers (ns/op, ns/sample, allocs/op,
// fleet-scan Msamples/s) can be committed and diffed across changes.
// Repeated runs of the same benchmark (-count > 1) are collapsed to their
// per-metric medians, which resists the odd noisy run.
//
// With -baseline it instead gates against a committed report: the fresh
// run's ns/op medians are compared to the baseline's and the process
// exits non-zero when any shared benchmark regressed beyond -tolerance
// (default 0.10 = 10%). Benchmarks without a baseline entry are skipped,
// so CI may run any subset.
//
// Usage:
//
//	go test -bench 'Predict|FleetScan' -count 3 . | benchjson -o BENCH_inference.json
//	go test -bench 'Train' -benchtime 1x . | benchjson -baseline BENCH_training.json -tolerance 2.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	in := flag.String("i", "", "benchmark output to read (default stdin)")
	out := flag.String("o", "", "JSON file to write (default stdout)")
	baseline := flag.String("baseline", "", "committed BENCH_*.json to diff against; exit non-zero on ns/op regressions beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op slowdown vs -baseline (0.10 = 10%)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	report, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	if *baseline != "" {
		if *tolerance < 0 {
			fatal(fmt.Errorf("negative -tolerance %v", *tolerance))
		}
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("parse baseline %s: %w", *baseline, err))
		}
		regs := Diff(&base, report, *tolerance)
		writeDiff(os.Stdout, report, regs, comparedCount(&base, report), *tolerance)
		if len(regs) > 0 {
			os.Exit(1)
		}
		if *out == "" {
			return
		}
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
