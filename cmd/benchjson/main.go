// Command benchjson converts `go test -bench` text output into a stable
// JSON report, so inference-performance numbers (ns/op, ns/sample,
// allocs/op, fleet-scan Msamples/s) can be committed and diffed across
// changes. Repeated runs of the same benchmark (-count > 1) are collapsed
// to their per-metric medians, which resists the odd noisy run.
//
// Usage:
//
//	go test -bench 'Predict|FleetScan' -count 3 . | benchjson -o BENCH_inference.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	in := flag.String("i", "", "benchmark output to read (default stdin)")
	out := flag.String("o", "", "JSON file to write (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	report, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
