package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: hddcart
cpu: AMD EPYC 7B13
BenchmarkPredictCompiledTree/pointer         	   18258	    130729 ns/op	         7.535 ns/sample
BenchmarkPredictCompiledTree/pointer         	   20084	    122395 ns/op	         7.055 ns/sample
BenchmarkPredictCompiledTree/pointer         	   19150	    123434 ns/op	         7.115 ns/sample
BenchmarkPredictCompiledTree/compiledBatch-8 	   16047	    166104 ns/op	         9.574 ns/sample	       0 B/op	       0 allocs/op
BenchmarkFleetScan/compiled/workers=4        	    5025	    483888 ns/op	        67.96 Msamples/s
PASS
ok  	hddcart	37.958s
`

func TestParseAggregatesRuns(t *testing.T) {
	report, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := report.Context["goos"]; got != "linux" {
		t.Errorf("context goos = %q, want linux", got)
	}
	if got := report.Context["cpu"]; got != "AMD EPYC 7B13" {
		t.Errorf("context cpu = %q", got)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(report.Benchmarks), report.Benchmarks)
	}

	ptr := report.Benchmarks[0]
	if ptr.Name != "PredictCompiledTree/pointer" {
		t.Errorf("name = %q", ptr.Name)
	}
	if ptr.Runs != 3 {
		t.Errorf("runs = %d, want 3", ptr.Runs)
	}
	// Median of three runs, not mean: 123434 ns/op and 7.115 ns/sample.
	if got := ptr.Metrics["ns/op"]; got != 123434 {
		t.Errorf("ns/op median = %v, want 123434", got)
	}
	if got := ptr.Metrics["ns/sample"]; got != 7.115 {
		t.Errorf("ns/sample median = %v, want 7.115", got)
	}
	if ptr.Iterations != 19150 {
		t.Errorf("iterations median = %d, want 19150", ptr.Iterations)
	}

	// The -8 GOMAXPROCS suffix is stripped; alloc metrics survive.
	batch := report.Benchmarks[1]
	if batch.Name != "PredictCompiledTree/compiledBatch" {
		t.Errorf("name = %q", batch.Name)
	}
	if got, ok := batch.Metrics["allocs/op"]; !ok || got != 0 {
		t.Errorf("allocs/op = %v (present=%v), want 0", got, ok)
	}

	fleet := report.Benchmarks[2]
	if fleet.Name != "FleetScan/compiled/workers=4" {
		t.Errorf("name = %q", fleet.Name)
	}
	if got := fleet.Metrics["Msamples/s"]; got != 67.96 {
		t.Errorf("Msamples/s = %v, want 67.96", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 12 34",            // odd trailing fields
		"BenchmarkX notanint 1 ns/op", // bad iteration count
		"BenchmarkX 12 nan? ns/op no", // bad metric value arity
		// Truncated result lines, as left by a killed `go test` or a cut
		// pipe: name only, name+count only, and a dangling metric value.
		"BenchmarkX",
		"BenchmarkX 12",
		"BenchmarkX 12 34.5",
		// Non-finite metric values: ParseFloat accepts these spellings,
		// but they must not reach the medians or the JSON encoder.
		"BenchmarkX 12 NaN ns/op",
		"BenchmarkX 12 Inf ns/op",
		"BenchmarkX 12 -Inf ns/op",
		"BenchmarkX 12 34 ns/op\nBenchmarkX 15 nan ns/op",
		// Zero or negative b.N (never produced by a healthy run).
		"BenchmarkX 0 34 ns/op",
		"BenchmarkX -3 34 ns/op",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

// TestParseErrorsCarryLineNumbers pins the error form: a malformed line
// deep in a file must be reported by its line number, not by a panic or
// a downstream JSON failure.
func TestParseErrorsCarryLineNumbers(t *testing.T) {
	in := "goos: linux\nBenchmarkOK 10 5.0 ns/op\nBenchmarkBad 10 NaN ns/op\n"
	_, err := Parse(strings.NewReader(in))
	if err == nil {
		t.Fatal("expected error for NaN metric")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
	if !strings.Contains(err.Error(), "NaN") {
		t.Errorf("error %q does not name the offending value", err)
	}
}

func TestParseEmptyInput(t *testing.T) {
	report, err := Parse(strings.NewReader("PASS\nok x 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("got %d benchmarks, want 0", len(report.Benchmarks))
	}
}
