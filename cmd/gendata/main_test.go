package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hddcart/internal/trace"
)

func TestGendataWritesReadableCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "traces.csv")
	err := run([]string{"-scale", "0.0005", "-failed-scale", "0.02", "-seed", "3", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	drives, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(drives) < 10 {
		t.Fatalf("only %d drives written", len(drives))
	}
	var goodSeen, failedSeen bool
	for _, d := range drives {
		if d.Meta.Failed {
			failedSeen = true
			if d.Meta.FailHour <= 0 {
				t.Errorf("failed drive %s without fail hour", d.Meta.Serial)
			}
		} else {
			goodSeen = true
		}
		if len(d.Records) == 0 {
			t.Errorf("drive %s has no records", d.Meta.Serial)
		}
	}
	if !goodSeen || !failedSeen {
		t.Error("output missing a drive class")
	}
}

func TestGendataFamilyFilter(t *testing.T) {
	out := filepath.Join(t.TempDir(), "q.csv")
	if err := run([]string{"-scale", "0.002", "-failed-scale", "0.05", "-family", "Q", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	drives, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range drives {
		if d.Meta.Family != "Q" || !strings.HasPrefix(d.Meta.Serial, "Q-") {
			t.Fatalf("family filter leaked drive %s (%s)", d.Meta.Serial, d.Meta.Family)
		}
	}
}

func TestGendataBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestDumpAndLoadFamilies(t *testing.T) {
	dir := t.TempDir()
	famPath := filepath.Join(dir, "fams.json")
	if err := run([]string{"-dump-families", famPath}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(famPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "\"Name\": \"W\"") {
		t.Errorf("dumped families missing W: %s", raw[:100])
	}
	// Custom family file: shrink to a tiny single family and generate.
	custom := strings.Replace(string(raw), `"GoodCount": 22790`, `"GoodCount": 5`, 1)
	custom = strings.Replace(custom, `"FailedCount": 434`, `"FailedCount": 2`, 1)
	if err := os.WriteFile(famPath, []byte(custom), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.csv")
	if err := run([]string{"-families", famPath, "-family", "W", "-scale", "1", "-failed-scale", "1", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	drives, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(drives) != 7 {
		t.Errorf("custom family produced %d drives, want 7", len(drives))
	}
	// Broken families file errors out.
	if err := os.WriteFile(famPath, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-families", famPath, "-o", out}); err == nil {
		t.Error("broken families JSON accepted")
	}
}
