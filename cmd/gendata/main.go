// Command gendata generates a synthetic SMART dataset to CSV (the format
// read back by cmd/hddpred and internal/trace).
//
// Usage:
//
//	gendata [-scale 0.01] [-failed-scale 0.1] [-seed 1] [-family W|Q|all] [-o traces.csv]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"hddcart/internal/simulate"
	"hddcart/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendata", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.01, "good-drive population scale (1 = paper's dataset)")
	failedScale := fs.Float64("failed-scale", 0.1, "failed-drive population scale")
	seed := fs.Int64("seed", 1, "fleet seed")
	family := fs.String("family", "all", "drive family to emit: W, Q or all")
	out := fs.String("o", "-", "output file (- = stdout)")
	familiesPath := fs.String("families", "", "JSON file with custom simulate.FamilyParams (see -dump-families)")
	dumpFamilies := fs.String("dump-families", "", "write the default family parameters to this JSON file and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dumpFamilies != "" {
		defaults := []simulate.FamilyParams{simulate.FamilyW(), simulate.FamilyQ()}
		data, err := json.MarshalIndent(defaults, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*dumpFamilies, data, 0o644)
	}

	cfg := simulate.Config{Seed: *seed, GoodScale: *scale, FailedScale: *failedScale}
	if *familiesPath != "" {
		data, err := os.ReadFile(*familiesPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &cfg.Families); err != nil {
			return fmt.Errorf("parse %s: %w", *familiesPath, err)
		}
	}
	fleet, err := simulate.New(cfg)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		w = bw
	}
	tw := trace.NewWriter(w)
	drives := 0
	for _, d := range fleet.Drives() {
		if *family != "all" && d.Family != *family {
			continue
		}
		meta := trace.DriveMeta{
			Serial: d.Serial, Family: d.Family,
			Failed: d.Failed, FailHour: d.FailHour,
		}
		if err := tw.WriteDrive(meta, fleet.Trace(d.Index)); err != nil {
			return err
		}
		drives++
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gendata: wrote %d drives\n", drives)
	return nil
}
