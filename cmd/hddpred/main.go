// Command hddpred trains and applies hard-drive failure prediction models
// on CSV SMART traces (as produced by cmd/gendata or converted from a real
// SMART collector).
//
// Subcommands:
//
//	hddpred train    -data traces.csv -model ct|rt|ann -o model.json
//	hddpred evaluate -data traces.csv -m model.json [-voters 11]
//	hddpred predict  -data traces.csv -m model.json [-voters 11]
//	hddpred inspect  -m model.json
//	hddpred serve    -m model.json [-addr :9130] [-shards 8] [-snapshot state.snap]
//
// Training follows the paper's setup: a few random samples per good drive
// from the earlier 70% of the observation window, failed-window samples of
// a 70% drive split, failed class boosted to 20%, 10× false-alarm loss for
// the CT model.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"hddcart/internal/ann"
	"hddcart/internal/cart"
	"hddcart/internal/dataset"
	"hddcart/internal/detect"
	"hddcart/internal/eval"
	"hddcart/internal/featsel"
	"hddcart/internal/health"
	"hddcart/internal/smart"
	"hddcart/internal/sweep"
	"hddcart/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hddpred:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: hddpred <train|evaluate|predict|inspect|featsel|serve> [flags]")
	}
	switch args[0] {
	case "train":
		return cmdTrain(args[1:])
	case "evaluate":
		return cmdEvaluate(args[1:])
	case "predict":
		return cmdPredict(args[1:])
	case "inspect":
		return cmdInspect(args[1:])
	case "featsel":
		return cmdFeatsel(args[1:])
	case "serve":
		return cmdServe(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// modelFile is the on-disk model envelope.
type modelFile struct {
	Type    string          `json:"type"` // "ct", "rt" or "ann"
	Tree    *cart.Tree      `json:"tree,omitempty"`
	Network json.RawMessage `json:"network,omitempty"`
}

// loadModel reads a model envelope and returns a predictor.
func loadModel(path string) (detect.Predictor, *modelFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var mf modelFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, nil, fmt.Errorf("decode model: %w", err)
	}
	switch mf.Type {
	case "ct", "rt":
		if mf.Tree == nil {
			return nil, nil, errors.New("model file missing tree")
		}
		return mf.Tree, &mf, nil
	case "ann":
		net, err := ann.Unmarshal(mf.Network)
		if err != nil {
			return nil, nil, err
		}
		return net, &mf, nil
	default:
		return nil, nil, fmt.Errorf("unknown model type %q", mf.Type)
	}
}

// loadTraces reads every drive from a CSV file. format selects the native
// trace layout ("hddcart") or Backblaze drive-stats snapshots
// ("backblaze").
func loadTraces(path, format string) ([]trace.DriveTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "", "hddcart":
		r, err := trace.NewReader(f)
		if err != nil {
			return nil, err
		}
		return r.ReadAll()
	case "backblaze":
		drives, stats, err := trace.ReadBackblazeStats(f, trace.BackblazeOptions{})
		if err != nil {
			return nil, err
		}
		// Real snapshot dumps are routinely dirty; make every dropped or
		// repaired row visible instead of silently training on less data.
		if stats.Dropped > 0 || stats.Repaired > 0 {
			fmt.Fprintf(os.Stderr, "hddpred: %s: %s\n", path, stats.String())
			for i, re := range stats.Errors {
				if i == 5 {
					fmt.Fprintf(os.Stderr, "hddpred:   ... %d more\n", len(stats.Errors)-i+stats.Truncated)
					break
				}
				fmt.Fprintf(os.Stderr, "hddpred:   %s\n", re.Error())
			}
		}
		return drives, nil
	default:
		return nil, fmt.Errorf("unknown data format %q (want hddcart or backblaze)", format)
	}
}

// dataFlags registers the shared -data/-format flags.
func dataFlags(fs *flag.FlagSet) (data, format *string) {
	data = fs.String("data", "", "input CSV traces (required)")
	format = fs.String("format", "hddcart", "input format: hddcart or backblaze")
	return data, format
}

// cmdFeatsel runs the §IV-B statistical feature selection over a CSV
// dataset and prints the ranking.
func cmdFeatsel(args []string) error {
	fs := flag.NewFlagSet("featsel", flag.ContinueOnError)
	data, format := dataFlags(fs)
	window := fs.Int("window", 168, "failed window (hours) defining failed samples")
	interval := fs.Int("rate-interval", 6, "change-rate interval (hours) to evaluate")
	top := fs.Int("top", 13, "print a suggested top-k selection")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return errors.New("featsel: -data is required")
	}
	drives, err := loadTraces(*data, *format)
	if err != nil {
		return err
	}
	pool := featsel.CandidateFeatures(*interval)
	fsData := featsel.Data{Features: pool}
	for _, d := range drives {
		if len(d.Records) == 0 {
			continue
		}
		s := detect.ExtractSeries(pool, d.Records, 0, len(d.Records))
		if d.Meta.Failed {
			var windowed [][]float64
			for i, h := range s.Hours {
				if d.Meta.FailHour-h <= *window {
					windowed = append(windowed, s.X[i])
				}
			}
			fsData.Failed = append(fsData.Failed, windowed...)
			fsData.FailedSeries = append(fsData.FailedSeries, windowed)
		} else {
			// Subsample good rows to keep the test balanced.
			for i := 0; i < len(s.X); i += 8 {
				fsData.Good = append(fsData.Good, s.X[i])
			}
		}
	}
	scores, err := featsel.Evaluate(fsData)
	if err != nil {
		return err
	}
	for _, s := range scores {
		fmt.Println(s.String())
	}
	fmt.Println("\nsuggested selection:")
	for _, f := range featsel.SelectTop(scores, *top) {
		fmt.Println("  " + f.String())
	}
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	data, format := dataFlags(fs)
	kind := fs.String("model", "ct", "model type: ct, rt or ann")
	out := fs.String("o", "model.json", "output model file")
	periodStart := fs.Int("period-start", 0, "good-sample window start hour")
	periodEnd := fs.Int("period-end", 168, "good-sample window end hour")
	window := fs.Int("window", 168, "failed time window (hours)")
	seed := fs.Int64("seed", 1, "sampling seed")
	epochs := fs.Int("ann-epochs", 400, "ANN epochs")
	workers := fs.Int("workers", 0, "tree-training worker-pool size (0 = all cores); the trained model is identical for any value")
	maxBins := fs.Int("max-bins", 0, "histogram-binned tree training with this bin budget (0 = exact split search, max 255)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return errors.New("train: -data is required")
	}
	drives, err := loadTraces(*data, *format)
	if err != nil {
		return err
	}

	features := smart.CriticalFeatures()
	failedWindow := *window
	if *kind == "ann" {
		failedWindow = 12 // the paper's ANN window
	}
	cfg := dataset.Config{
		Features:          features,
		PeriodStart:       *periodStart,
		PeriodEnd:         *periodEnd,
		FailedWindowHours: failedWindow,
		FailedShare:       0.2,
		Seed:              *seed,
	}
	if *kind == "rt" {
		cfg.FailedSamplesPerDrive = 12
	}
	b, err := dataset.NewBuilder(cfg)
	if err != nil {
		return err
	}
	for i, d := range drives {
		if d.Meta.Failed {
			b.AddFailedDrive(i, d.Meta.FailHour, d.Records)
		} else {
			b.AddGoodDrive(i, d.Records)
		}
	}
	ds, err := b.Finalize()
	if err != nil {
		return err
	}
	good, failed := ds.Counts()
	fmt.Fprintf(os.Stderr, "train: %d good + %d failed samples\n", good, failed)
	if good == 0 || failed == 0 {
		return errors.New("train: need both good and failed training samples")
	}

	var mf modelFile
	switch *kind {
	case "ct":
		x, y, w := ds.XMatrix()
		tree, err := cart.TrainClassifier(x, y, w, cart.Params{LossFA: 10, Workers: *workers, MaxBins: *maxBins})
		if err != nil {
			return err
		}
		tree.FeatureNames = features.Names()
		mf = modelFile{Type: "ct", Tree: tree}
	case "rt":
		// Health-degree targets with the global window (personalized
		// windows need a first-pass CT model; see the library API).
		if err := ds.SetHealthTargets(nil, health.DefaultWindowHours); err != nil {
			return err
		}
		x, y, w := ds.XMatrix()
		tree, err := cart.TrainRegressor(x, y, w, cart.Params{Workers: *workers, MaxBins: *maxBins})
		if err != nil {
			return err
		}
		tree.FeatureNames = features.Names()
		mf = modelFile{Type: "rt", Tree: tree}
	case "ann":
		x, y, w := ds.XMatrix()
		net, err := ann.Train(x, y, w, ann.Config{Hidden: 13, Epochs: *epochs, Patience: 10, Seed: *seed})
		if err != nil {
			return err
		}
		raw, err := net.Marshal()
		if err != nil {
			return err
		}
		mf = modelFile{Type: "ann", Network: raw}
	default:
		return fmt.Errorf("train: unknown model type %q", *kind)
	}
	enc, err := json.Marshal(mf)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "train: wrote %s model to %s\n", mf.Type, *out)
	return nil
}

// detectorFor builds the right detector for a model type.
func detectorFor(mf *modelFile, model detect.Predictor, voters int, threshold float64) detect.Detector {
	if mf.Type == "rt" {
		return &detect.MeanThreshold{Model: model, Voters: voters, Threshold: threshold}
	}
	return &detect.Voting{Model: model, Voters: voters, Threshold: 0}
}

// compiledModel returns the inference-optimized form of a loaded model:
// trees are flattened into their compiled representation (bit-identical
// predictions, so evaluation results are unchanged); the ANN already
// batches and is returned as-is.
func compiledModel(model detect.Predictor, mf *modelFile) detect.Predictor {
	if mf.Type == "ct" || mf.Type == "rt" {
		return mf.Tree.Compile()
	}
	return model
}

// profileFlags registers the shared -cpuprofile/-memprofile flags on a
// subcommand's flag set. Pair with startProfiles after parsing.
func profileFlags(fs *flag.FlagSet) (cpuprofile, memprofile *string) {
	cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
	memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	return cpuprofile, memprofile
}

// startProfiles begins CPU profiling when requested and returns the stop
// hook that finishes the CPU profile and writes the heap profile. The
// hook is safe to defer unconditionally — with both paths empty it does
// nothing. Profiles taken around a sweep carry the sweep_phase and
// kernel pprof labels, so `go tool pprof -tagfocus sweep_phase:partition`
// isolates the scoring phase under the dispatch tier that actually ran.
func startProfiles(cmd, cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("%s: -cpuprofile: %w", cmd, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: -cpuprofile: %w", cmd, err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("%s: -cpuprofile: %w", cmd, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("%s: -memprofile: %w", cmd, err)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("%s: -memprofile: %w", cmd, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("%s: -memprofile: %w", cmd, err)
			}
		}
		return nil
	}, nil
}

// scanWorkers validates a -workers flag for the scan paths (mirroring the
// training-side validation in cart.Params) and resolves 0 to all cores.
func scanWorkers(cmd string, workers int) (int, error) {
	if workers < 0 {
		return 0, fmt.Errorf("%s: negative Workers %d", cmd, workers)
	}
	if workers == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return workers, nil
}

func cmdEvaluate(args []string) (err error) {
	fs := flag.NewFlagSet("evaluate", flag.ContinueOnError)
	data, format := dataFlags(fs)
	modelPath := fs.String("m", "model.json", "model file")
	voters := fs.Int("voters", 11, "voting/averaging window N")
	threshold := fs.Float64("threshold", -0.3, "health-degree alarm threshold (rt models)")
	periodStart := fs.Int("period-start", 0, "good test window start hour")
	periodEnd := fs.Int("period-end", 168, "good test window end hour")
	seed := fs.Int64("seed", 1, "failed-drive split seed (must match training)")
	workers := fs.Int("workers", 0, "scan worker-pool size (0 = all cores); results are identical for any value")
	useSweep := fs.Bool("sweep", false, "scan through the sharded fleet-sweep engine (tree models): quantize once, score feature-major tiles")
	shards := fs.Int("shards", 0, "sweep shard count (0 = engine default); outcomes are identical for any value")
	cpuProf, memProf := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return errors.New("evaluate: -data is required")
	}
	stopProf, err := startProfiles("evaluate", *cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, stopProf()) }()
	w, err := scanWorkers("evaluate", *workers)
	if err != nil {
		return err
	}
	model, mf, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	drives, err := loadTraces(*data, *format)
	if err != nil {
		return err
	}
	features := smart.CriticalFeatures()
	det := detectorFor(mf, compiledModel(model, mf), *voters, *threshold)
	var series []detect.Series
	var failHours []int
	var isFailed []bool
	for i, d := range drives {
		if d.Meta.Failed {
			if dataset.IsTrainFailedDrive(*seed, i, 0.7) {
				continue
			}
			series = append(series, detect.ExtractSeries(features, d.Records, 0, len(d.Records)))
			failHours = append(failHours, d.Meta.FailHour)
			isFailed = append(isFailed, true)
			continue
		}
		from, to, ok := dataset.TestStart(d.Records, *periodStart, *periodEnd, 0.7)
		if !ok {
			continue
		}
		series = append(series, detect.ExtractSeries(features, d.Records, from, to))
		failHours = append(failHours, -1)
		isFailed = append(isFailed, false)
	}
	// Drives scan on w goroutines; each outcome lands at its drive's own
	// index, so the counts below are identical for every worker count.
	var outcomes []detect.Outcome
	if *useSweep {
		outcomes, err = sweepEvaluate(mf, series, failHours, *voters, *threshold, *shards, w)
		if err != nil {
			return err
		}
	} else {
		outcomes = detect.ScanBatch(det, series, failHours, w)
	}
	var c eval.Counter
	for i, out := range outcomes {
		if isFailed[i] {
			c.AddFailed(out)
		} else {
			c.AddGood(out.Alarmed)
		}
	}
	fmt.Println(c.Result().String())
	return nil
}

// sweepEvaluate scans the evaluation fleet through the sharded sweep
// engine: the series' own rows are binned (255 bins, enough for every
// split threshold the tree carries), the tree is remapped onto that code
// space, and the whole fleet sweeps through the feature-major tiled
// kernels. Scores are quantized where ScanBatch's are float, so
// straddled thresholds may verdict individual samples differently; the
// -sweep flag trades that for fleet-scale throughput.
func sweepEvaluate(mf *modelFile, series []detect.Series, failHours []int,
	voters int, threshold float64, shards, workers int) ([]detect.Outcome, error) {
	if mf.Type != "ct" && mf.Type != "rt" {
		return nil, fmt.Errorf("evaluate: -sweep needs a tree model, not %q", mf.Type)
	}
	var rows [][]float64
	for i := range series {
		rows = append(rows, series[i].X...)
	}
	if len(rows) == 0 {
		return nil, errors.New("evaluate: -sweep found no samples to scan")
	}
	bm, err := dataset.BinMatrix(rows, dataset.MaxBinsLimit)
	if err != nil {
		return nil, err
	}
	bt, err := mf.Tree.Compile().CompileBinned(bm)
	if err != nil {
		return nil, err
	}
	cfg := sweep.Config{Voters: voters, Shards: shards, Workers: workers}
	if mf.Type == "rt" {
		cfg.Mean = true
		cfg.Threshold = threshold
	}
	res, err := sweep.SweepFleet(bt, bm, series, failHours, cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "evaluate: sweep scanned %d drives (%d samples, %d shards): %d alarms, %d NaN-excluded, %d steals\n",
		res.Total.Drives, res.Total.Samples, len(res.Shards), res.Total.Alarms, res.Total.NaNExcluded, res.Total.Steals)
	return res.Outcomes, nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	data, format := dataFlags(fs)
	modelPath := fs.String("m", "model.json", "model file")
	voters := fs.Int("voters", 11, "voting/averaging window N")
	threshold := fs.Float64("threshold", -0.3, "health-degree alarm threshold (rt models)")
	workers := fs.Int("workers", 0, "scan worker-pool size (0 = all cores); results are identical for any value")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return errors.New("predict: -data is required")
	}
	w, err := scanWorkers("predict", *workers)
	if err != nil {
		return err
	}
	model, mf, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	drives, err := loadTraces(*data, *format)
	if err != nil {
		return err
	}
	features := smart.CriticalFeatures()
	det := detectorFor(mf, compiledModel(model, mf), *voters, *threshold)
	series := make([]detect.Series, len(drives))
	for i, d := range drives {
		series[i] = detect.ExtractSeries(features, d.Records, 0, len(d.Records))
	}
	// Scans fan out across w goroutines; outcomes land at each drive's own
	// index, so the report below is printed in input order regardless of
	// the worker count.
	outs := detect.ScanBatch(det, series, nil, w)
	warnings := 0
	for i, d := range drives {
		if outs[i].Alarmed {
			warnings++
			fmt.Printf("%s\tWARNING at hour %d\n", d.Meta.Serial, outs[i].AlarmHour)
		} else {
			fmt.Printf("%s\thealthy\n", d.Meta.Serial)
		}
	}
	fmt.Fprintf(os.Stderr, "predict: %d warnings across %d drives\n", warnings, len(drives))
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	modelPath := fs.String("m", "model.json", "model file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, mf, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	switch mf.Type {
	case "ct", "rt":
		tree := mf.Tree
		fmt.Printf("%s tree: %d nodes, %d leaves, depth %d\n",
			mf.Type, tree.NumNodes(), tree.NumLeaves(), tree.Depth())
		fmt.Println("\nfailure rules:")
		for _, rule := range tree.Rules(true) {
			fmt.Println("  " + rule.String(tree.FeatureNames))
		}
		fmt.Println("\nvariable importance:")
		imp := tree.VariableImportance()
		for i, v := range imp {
			if v > 0 {
				name := fmt.Sprintf("x[%d]", i)
				if i < len(tree.FeatureNames) {
					name = tree.FeatureNames[i]
				}
				fmt.Printf("  %-44s %.4f\n", name, v)
			}
		}
	case "ann":
		net, err := ann.Unmarshal(mf.Network)
		if err != nil {
			return err
		}
		fmt.Printf("BP ANN: %d inputs, %d hidden units (a black box — the paper's point)\n",
			net.NumInputs, net.Hidden)
	}
	return nil
}
