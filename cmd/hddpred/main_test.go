package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hddcart/internal/simulate"
	"hddcart/internal/trace"
)

// writeFixture generates a small CSV dataset for the CLI tests.
func writeFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "traces.csv")
	fleet, err := simulate.New(simulate.Config{Seed: 9, GoodScale: 0.003, FailedScale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	defer bw.Flush()
	tw := trace.NewWriter(bw)
	for _, d := range fleet.Drives() {
		meta := trace.DriveMeta{Serial: d.Serial, Family: d.Family, Failed: d.Failed, FailHour: d.FailHour}
		if err := tw.WriteDrive(meta, fleet.Trace(d.Index)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrainEvaluatePredictInspectCT(t *testing.T) {
	data := writeFixture(t)
	model := filepath.Join(t.TempDir(), "ct.json")
	if err := run([]string{"train", "-data", data, "-model", "ct", "-o", model}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"evaluate", "-data", data, "-m", model, "-voters", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"predict", "-data", data, "-m", model}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"inspect", "-m", model}); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluateProfileFlags pins the -cpuprofile/-memprofile plumbing:
// both files must exist and be non-empty after an evaluate run, and a
// bad profile path must fail before any scanning starts.
func TestEvaluateProfileFlags(t *testing.T) {
	data := writeFixture(t)
	dir := t.TempDir()
	model := filepath.Join(dir, "ct.json")
	if err := run([]string{"train", "-data", data, "-model", "ct", "-o", model}); err != nil {
		t.Fatal(err)
	}
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	if err := run([]string{"evaluate", "-data", data, "-m", model, "-sweep",
		"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s: empty profile", p)
		}
	}
	if err := run([]string{"evaluate", "-data", data, "-m", model,
		"-cpuprofile", filepath.Join(dir, "no", "such", "dir", "cpu.prof")}); err == nil {
		t.Fatal("unwritable -cpuprofile path did not fail")
	}
}

func TestTrainRT(t *testing.T) {
	data := writeFixture(t)
	model := filepath.Join(t.TempDir(), "rt.json")
	if err := run([]string{"train", "-data", data, "-model", "rt", "-o", model}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"evaluate", "-data", data, "-m", model, "-threshold", "-0.3"}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainANN(t *testing.T) {
	data := writeFixture(t)
	model := filepath.Join(t.TempDir(), "ann.json")
	if err := run([]string{"train", "-data", data, "-model", "ann", "-o", model, "-ann-epochs", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"evaluate", "-data", data, "-m", model}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"inspect", "-m", model}); err != nil {
		t.Fatal(err)
	}
}

// TestScanWorkersFlag covers the -workers flag on the scan paths: negative
// values are rejected with the training-side message, and positive worker
// counts run cleanly (per-drive outcomes are index-addressed, so any count
// yields identical results — the detect package's batch tests enforce it).
func TestScanWorkersFlag(t *testing.T) {
	data := writeFixture(t)
	model := filepath.Join(t.TempDir(), "ct.json")
	if err := run([]string{"train", "-data", data, "-model", "ct", "-o", model}); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"evaluate", "predict"} {
		err := run([]string{sub, "-data", data, "-m", model, "-workers", "-1"})
		if err == nil || !strings.Contains(err.Error(), "negative Workers") {
			t.Errorf("%s -workers -1: got %v, want negative Workers error", sub, err)
		}
		if err := run([]string{sub, "-data", data, "-m", model, "-workers", "3"}); err != nil {
			t.Errorf("%s -workers 3: %v", sub, err)
		}
	}
}

// TestTrainMaxBinsFlag covers the -max-bins flag on the train path: a
// valid bin budget trains a usable model through the histogram grower,
// and out-of-range budgets surface cart's validation error.
func TestTrainMaxBinsFlag(t *testing.T) {
	data := writeFixture(t)
	model := filepath.Join(t.TempDir(), "ct.json")
	if err := run([]string{"train", "-data", data, "-model", "ct", "-o", model, "-max-bins", "64"}); err != nil {
		t.Fatalf("-max-bins 64: %v", err)
	}
	if err := run([]string{"evaluate", "-data", data, "-m", model, "-voters", "5"}); err != nil {
		t.Fatalf("evaluate binned model: %v", err)
	}
	for _, kind := range []string{"ct", "rt"} {
		err := run([]string{"train", "-data", data, "-model", kind, "-o", model, "-max-bins", "256"})
		if err == nil || !strings.Contains(err.Error(), "MaxBins") {
			t.Errorf("%s -max-bins 256: got %v, want MaxBins range error", kind, err)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		nil,                        // no subcommand
		{"frobnicate"},             // unknown subcommand
		{"train"},                  // missing -data
		{"train", "-data", "nope"}, // unreadable data
		{"evaluate"},               // missing -data
		{"predict"},                // missing -data
		{"inspect", "-m", "missing.json"},
		{"train", "-data", "x", "-model", "svm"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"type":"ct"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadModel(bad); err == nil {
		t.Error("model without tree accepted")
	}
	if err := os.WriteFile(bad, []byte(`{"type":"alien"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadModel(bad); err == nil {
		t.Error("unknown model type accepted")
	}
	if err := os.WriteFile(bad, []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadModel(bad); err == nil {
		t.Error("non-JSON model accepted")
	}
}

func TestFeatselSubcommand(t *testing.T) {
	data := writeFixture(t)
	if err := run([]string{"featsel", "-data", data, "-top", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestBackblazeFormat(t *testing.T) {
	// A minimal Backblaze-format file flows through train (it will fail
	// for lack of failed samples, which is the expected, explicit error).
	path := filepath.Join(t.TempDir(), "bb.csv")
	raw := "date,serial_number,model,failure,smart_1_normalized,smart_1_raw\n" +
		"2024-01-01,X,M,0,100,1\n2024-01-02,X,M,0,99,2\n"
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"train", "-data", path, "-format", "backblaze", "-period-end", "96",
		"-o", filepath.Join(t.TempDir(), "m.json")})
	if err == nil || !strings.Contains(err.Error(), "need both good and failed") {
		t.Errorf("err = %v, want missing-failed-samples error", err)
	}
	if err := run([]string{"train", "-data", path, "-format", "alien"}); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestEvaluateSweepFlag covers the -sweep path on both tree model kinds:
// the sharded fleet-sweep engine must evaluate cleanly at several shard
// counts, and non-tree models are rejected up front.
func TestEvaluateSweepFlag(t *testing.T) {
	data := writeFixture(t)
	for _, kind := range []string{"ct", "rt"} {
		model := filepath.Join(t.TempDir(), kind+".json")
		if err := run([]string{"train", "-data", data, "-model", kind, "-o", model}); err != nil {
			t.Fatal(err)
		}
		for _, shards := range []string{"0", "1", "4"} {
			if err := run([]string{"evaluate", "-data", data, "-m", model, "-sweep", "-shards", shards, "-workers", "2"}); err != nil {
				t.Errorf("%s -sweep -shards %s: %v", kind, shards, err)
			}
		}
	}
	ann := filepath.Join(t.TempDir(), "ann.json")
	if err := run([]string{"train", "-data", data, "-model", "ann", "-o", ann, "-ann-epochs", "5"}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"evaluate", "-data", data, "-m", ann, "-sweep"})
	if err == nil || !strings.Contains(err.Error(), "tree model") {
		t.Errorf("ann -sweep: got %v, want tree-model error", err)
	}
}
