package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestServeCLIErrors(t *testing.T) {
	data := writeFixture(t)
	model := filepath.Join(t.TempDir(), "ct.json")
	if err := run([]string{"train", "-data", data, "-model", "ct", "-o", model}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"serve"},                                // missing -m
		{"serve", "-m", "missing.json"},          // unreadable model
		{"serve", "-m", model, "-policy", "eat"}, // unknown policy
		{"serve", "-m", model, "-shards", "-1"},
		{"serve", "-m", model, "-snapshot-every", "5s"}, // interval without path
		{"serve", "-m", model, "-voters", "0"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

// TestServeSmoke boots the full service on a local port, ingests a
// tiny batch over HTTP, then shuts it down with SIGINT and checks the
// final state snapshot landed.
func TestServeSmoke(t *testing.T) {
	data := writeFixture(t)
	model := filepath.Join(t.TempDir(), "ct.json")
	if err := run([]string{"train", "-data", data, "-model", "ct", "-o", model}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	snap := filepath.Join(t.TempDir(), "state.snap")

	var wg sync.WaitGroup
	var serveErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr = run([]string{"serve", "-m", model, "-addr", addr, "-shards", "2", "-snapshot", snap})
	}()
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never came up on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	zeros := strings.Repeat(",0", 22)
	body := fmt.Sprintf(`{"serial":"smoke-1","hour":0,"normalized":[0%s],"raw":[0%s]}`+"\n", zeros, zeros)
	resp, err := http.Post(base+"/ingest", "application/jsonl", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("serve exited with: %v", serveErr)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Errorf("no final snapshot: %v", err)
	}
}
