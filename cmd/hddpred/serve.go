package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hddcart"
	"hddcart/internal/serve"
	"hddcart/internal/smart"
)

// cmdServe runs the long-lived fleet-monitoring service: SMART batches
// in over HTTP, routed to serial-sharded monitors, warnings out through
// the merged feed, state snapshotted across restarts.
func cmdServe(args []string) (err error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	modelPath := fs.String("m", "", "model file (required)")
	addr := fs.String("addr", ":9130", "HTTP listen address")
	shards := fs.Int("shards", 0, "monitor shard count (0 = default)")
	queueDepth := fs.Int("queue-depth", 0, "per-shard ingest queue bound (0 = default)")
	policyFlag := fs.String("policy", "reject", "full-queue policy: reject (backpressure, 429) or shed (evict oldest)")
	voters := fs.Int("voters", 11, "voting/averaging window N")
	threshold := fs.Float64("threshold", -0.3, "health-degree alarm threshold (rt models)")
	staleAfter := fs.Int("stale-after", 0, "reset a drive's vote window after a telemetry gap this long (hours; 0 disables)")
	badBudget := fs.Int("bad-budget", 0, "per-drive corrupt-sample budget before quarantine (0 = default, negative disables)")
	snapshot := fs.String("snapshot", "", "state snapshot file: restored on start, written on shutdown")
	snapshotEvery := fs.Duration("snapshot-every", 0, "periodic snapshot interval (requires -snapshot)")
	cpuProf, memProf := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return errors.New("serve: -m model file is required")
	}
	stopProf, err := startProfiles("serve", *cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, stopProf()) }()
	policy, err := serve.ParsePolicy(*policyFlag)
	if err != nil {
		return err
	}
	model, mf, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	// Mirror the evaluate/predict detection rules: regression trees
	// alarm on the window's mean health degree against -threshold,
	// classifiers by majority vote at the ±1 cut.
	mcfg := hddcart.MonitorConfig{
		Features:        smart.CriticalFeatures(),
		Model:           model,
		Voters:          *voters,
		StaleAfterHours: *staleAfter,
		BadSampleBudget: *badBudget,
	}
	if mf.Type == "rt" {
		mcfg.UseMean = true
		mcfg.Threshold = *threshold
	}
	cfg := serve.Config{
		Shards:        *shards,
		QueueDepth:    *queueDepth,
		Policy:        policy,
		NewMonitor:    func() (*hddcart.Monitor, error) { return hddcart.NewMonitor(mcfg) },
		SnapshotPath:  *snapshot,
		SnapshotEvery: *snapshotEvery,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	m := s.Metrics()
	fmt.Fprintf(os.Stderr, "serve: %s model, %d shards, policy %s, listening on %s\n",
		mf.Type, s.Shards(), policy, *addr)
	if m.SnapshotRestored {
		fmt.Fprintf(os.Stderr, "serve: restored state from %s (%d drives observed)\n",
			*snapshot, m.Totals.Monitor.Observed)
	} else if m.SnapshotErrors > 0 {
		fmt.Fprintf(os.Stderr, "serve: snapshot %s unusable, cold start (counted)\n", *snapshot)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	//hddlint:ignore nakedgo the listener goroutine lives for the whole process; it is joined below through errCh (ListenAndServe only returns on Shutdown or a fatal listen error)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-errCh:
		// The listener died on its own (port in use, ...): still drain
		// the shards and write the final snapshot before reporting.
		if closeErr := s.Close(); closeErr != nil {
			return errors.Join(err, closeErr)
		}
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "serve: %v, shutting down\n", got)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "serve: http shutdown: %v\n", err)
	}
	<-errCh // join the listener goroutine (returns ErrServerClosed)
	if err := s.Close(); err != nil {
		return fmt.Errorf("serve: final snapshot: %w", err)
	}
	if *snapshot != "" {
		fmt.Fprintf(os.Stderr, "serve: state snapshotted to %s\n", *snapshot)
	}
	return nil
}
