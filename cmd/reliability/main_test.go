package main

import "testing"

func TestSingle(t *testing.T) {
	if err := run([]string{"single"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"single", "-fdr", "0", "-mttf", "1000000"}); err != nil {
		t.Fatal(err)
	}
}

func TestRAID(t *testing.T) {
	if err := run([]string{"raid", "-level", "6", "-drives", "20"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"raid", "-level", "5", "-drives", "10"}); err != nil {
		t.Fatal(err)
	}
	// Monte-Carlo path with accelerated parameters.
	if err := run([]string{"raid", "-drives", "5", "-mttf", "1000", "-mttr", "50",
		"-tia", "100", "-montecarlo", "-trials", "200"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweep(t *testing.T) {
	if err := run([]string{"sweep", "-max", "100"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"what"},
		{"raid", "-level", "7"},
		{"single", "-badflag"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
