// Command reliability runs the paper's §VI analysis: single-drive MTTDL
// under Eckart's Eq. 7 and RAID-group MTTDL under Gibson's closed forms
// and the Fig. 11 Markov models.
//
// Usage:
//
//	reliability single [-mttf 1390000] [-mttr 8] [-fdr 0.9549] [-tia 355]
//	reliability raid   [-level 5|6] [-drives 100] [-mttf ...] [-fdr ...] [-montecarlo]
//	reliability sweep  [-max 2500]   # the four Fig. 12 curves
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"hddcart/internal/reliability"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reliability:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: reliability <single|raid|sweep> [flags]")
	}
	switch args[0] {
	case "single":
		return cmdSingle(args[1:])
	case "raid":
		return cmdRAID(args[1:])
	case "sweep":
		return cmdSweep(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func driveFlags(fs *flag.FlagSet) (*float64, *float64) {
	mttf := fs.Float64("mttf", 1390000, "drive MTTF (hours); paper: 1.39e6 SATA, 1.99e6 SAS")
	mttr := fs.Float64("mttr", 8, "repair/rebuild time (hours)")
	return mttf, mttr
}

func predFlags(fs *flag.FlagSet) (*float64, *float64) {
	fdr := fs.Float64("fdr", 0.9549, "prediction model detection rate k (0 = no prediction)")
	tia := fs.Float64("tia", 355, "mean warning lead time (hours)")
	return fdr, tia
}

func cmdSingle(args []string) error {
	fs := flag.NewFlagSet("single", flag.ContinueOnError)
	mttf, mttr := driveFlags(fs)
	fdr, tia := predFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	d := reliability.DriveParams{MTTFHours: *mttf, MTTRHours: *mttr}
	p := reliability.Prediction{FDR: *fdr, TIAHours: *tia}
	base := reliability.SingleDriveMTTDL(d, reliability.NoPrediction) / reliability.HoursPerYear
	with := reliability.SingleDriveMTTDL(d, p) / reliability.HoursPerYear
	fmt.Printf("single drive MTTDL (Eq. 7):\n")
	fmt.Printf("  no prediction:   %12.2f years\n", base)
	fmt.Printf("  with prediction: %12.2f years (%.2f%% increase)\n", with, (with/base-1)*100)
	return nil
}

func cmdRAID(args []string) error {
	fs := flag.NewFlagSet("raid", flag.ContinueOnError)
	level := fs.Int("level", 6, "RAID level (5 or 6)")
	n := fs.Int("drives", 100, "drives in the group")
	mttf, mttr := driveFlags(fs)
	fdr, tia := predFlags(fs)
	mc := fs.Bool("montecarlo", false, "cross-check with Monte-Carlo simulation")
	trials := fs.Int("trials", 2000, "Monte-Carlo trials")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d := reliability.DriveParams{MTTFHours: *mttf, MTTRHours: *mttr}
	p := reliability.Prediction{FDR: *fdr, TIAHours: *tia}

	var noPred float64
	var chainMTTDL func() (float64, error)
	var chain *reliability.Chain
	var start int
	var err error
	switch *level {
	case 5:
		noPred = reliability.RAID5MTTDLNoPrediction(d, *n)
		chain, start, err = reliability.RAID5PredictionChain(*n, d, p)
		chainMTTDL = func() (float64, error) { return chain.MeanTimeToAbsorption(start) }
	case 6:
		noPred = reliability.RAID6MTTDLNoPrediction(d, *n)
		chain, start, err = reliability.RAID6PredictionChain(*n, d, p)
		chainMTTDL = func() (float64, error) { return chain.MeanTimeToAbsorption(start) }
	default:
		return fmt.Errorf("raid: unsupported level %d", *level)
	}
	if err != nil {
		return err
	}
	exact, err := chainMTTDL()
	if err != nil {
		return err
	}
	years := func(h float64) float64 { return h / reliability.HoursPerYear }
	fmt.Printf("RAID-%d, %d drives:\n", *level, *n)
	fmt.Printf("  closed form w/o prediction:  %14.4g years\n", years(noPred))
	fmt.Printf("  Markov model w/ prediction:  %14.4g years (%d states)\n", years(exact), chain.NumStates())
	if *mc {
		est, err := chain.EstimateMTTA(start, *trials, 42)
		if err != nil {
			return err
		}
		fmt.Printf("  Monte-Carlo (%d trials):     %14.4g years\n", *trials, years(est))
	}
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	maxN := fs.Int("max", 2500, "largest system size")
	fdr, tia := predFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := reliability.Prediction{FDR: *fdr, TIAHours: *tia}
	sas, sata := reliability.SASDrive(), reliability.SATADrive()
	fmt.Printf("%8s %16s %16s %16s %16s  (million years)\n",
		"drives", "SAS R6 w/o", "SATA R6 w/o", "SATA R6 w/CT", "SATA R5 w/CT")
	for _, n := range []int{10, 50, 100, 250, 500, 1000, 1500, 2000, 2500} {
		if n > *maxN {
			break
		}
		r6, err := reliability.RAID6PredictionMTTDL(n, sata, p)
		if err != nil {
			return err
		}
		r5, err := reliability.RAID5PredictionMTTDL(n, sata, p)
		if err != nil {
			return err
		}
		toM := func(h float64) float64 { return h / reliability.HoursPerYear / 1e6 }
		fmt.Printf("%8d %16.6g %16.6g %16.6g %16.6g\n", n,
			toM(reliability.RAID6MTTDLNoPrediction(sas, n)),
			toM(reliability.RAID6MTTDLNoPrediction(sata, n)),
			toM(r6), toM(r5))
	}
	return nil
}
