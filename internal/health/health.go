// Package health implements the paper's health-degree machinery (§III-B,
// §V-C): personalized deterioration windows derived from a first-pass CT
// model, a priority queue that orders outstanding warnings by predicted
// health (worst first), and a triage simulation quantifying why ordering
// warnings by health degree reduces processing cost.
package health

import (
	"container/heap"
	"errors"
	"sort"

	"hddcart/internal/detect"
)

// DefaultWindowHours is the fallback deterioration window for failed
// drives the first-pass model missed (the paper uses 24 h).
const DefaultWindowHours = 24

// PersonalizedWindows derives per-drive deterioration windows w_d by
// applying a trained first-pass detector to each failed training drive's
// series: w_d is the achieved time in advance (§III-B, Eq. 6). Drives the
// detector misses are absent from the result (callers fall back to
// DefaultWindowHours).
//
// series maps drive ID to its chronological sample series; failHours maps
// drive ID to its failure instant.
func PersonalizedWindows(d detect.Detector, series map[int]detect.Series, failHours map[int]int) (map[int]int, error) {
	if d == nil {
		return nil, errors.New("health: nil detector")
	}
	out := make(map[int]int, len(series))
	for id, s := range series {
		fh, ok := failHours[id]
		if !ok {
			return nil, errors.New("health: series without fail hour")
		}
		res := detect.Scan(d, s, fh)
		if res.Alarmed && res.LeadHours > 0 {
			out[id] = res.LeadHours
		}
	}
	return out, nil
}

// Warning is one outstanding drive-failure warning.
type Warning struct {
	// Drive identifies the drive.
	Drive int
	// Health is the predicted health degree in [−1, +1]; lower is closer
	// to failure.
	Health float64
	// Hour is when the warning was raised.
	Hour int
}

// Queue is a priority queue of warnings ordered by health degree, worst
// (lowest) first; ties break on older warnings. The zero value is ready to
// use. Queue is not safe for concurrent use.
type Queue struct {
	h warningHeap
}

// Len returns the number of outstanding warnings.
func (q *Queue) Len() int { return len(q.h) }

// Push adds a warning.
func (q *Queue) Push(w Warning) { heap.Push(&q.h, w) }

// Pop removes and returns the most urgent warning; ok is false when empty.
func (q *Queue) Pop() (Warning, bool) {
	if len(q.h) == 0 {
		return Warning{}, false
	}
	return heap.Pop(&q.h).(Warning), true
}

// Peek returns the most urgent warning without removing it.
func (q *Queue) Peek() (Warning, bool) {
	if len(q.h) == 0 {
		return Warning{}, false
	}
	return q.h[0], true
}

// Update re-prioritizes a drive's outstanding warning to the new health
// degree (e.g. after a fresh sample); it reports whether the drive was
// found.
func (q *Queue) Update(drive int, health float64) bool {
	for i := range q.h {
		if q.h[i].Drive == drive {
			q.h[i].Health = health
			heap.Fix(&q.h, i)
			return true
		}
	}
	return false
}

// Items returns a copy of every outstanding warning, sorted by drive ID
// (not by urgency — use Pop for triage order). It exists for state
// serialization: a snapshot needs the queue's contents in an order that
// is a pure function of the warnings, independent of the heap's
// insertion history.
func (q *Queue) Items() []Warning {
	items := make([]Warning, len(q.h))
	copy(items, q.h)
	sort.Slice(items, func(i, j int) bool { return items[i].Drive < items[j].Drive })
	return items
}

// warningHeap implements heap.Interface.
type warningHeap []Warning

func (h warningHeap) Len() int { return len(h) }
func (h warningHeap) Less(i, j int) bool {
	if h[i].Health != h[j].Health {
		return h[i].Health < h[j].Health
	}
	return h[i].Hour < h[j].Hour
}
func (h warningHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *warningHeap) Push(x any)   { *h = append(*h, x.(Warning)) }
func (h *warningHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TriageWarning is one warning fed to the triage simulation, together with
// ground truth for scoring.
type TriageWarning struct {
	Warning
	// WillFail reports whether the drive really fails (false alarm
	// otherwise).
	WillFail bool
	// FailHour is the true failure instant (ignored unless WillFail).
	FailHour int
}

// TriageResult summarizes a triage simulation run.
type TriageResult struct {
	// Processed counts warnings handled before their deadline.
	Processed int
	// SavedFailures counts truly failing drives migrated before failure.
	SavedFailures int
	// LostFailures counts truly failing drives that failed before being
	// handled.
	LostFailures int
	// WastedWork counts false alarms processed.
	WastedWork int
}

// Triage simulates an operations team working through warnings with a
// fixed processing capacity (drives per hour). Policy "health" pops the
// priority queue (worst health first); policy "fifo" processes in arrival
// order. Handling a truly failing drive before its failure hour saves it.
//
// The simulation is the quantitative backing for the paper's claim that a
// health-degree ordering lets a storage system "deal with warnings in
// order of their health degrees to reduce processing overhead": with tight
// capacity the health policy saves more drives from the same warning
// stream.
func Triage(warnings []TriageWarning, perHour int, healthPolicy bool) (TriageResult, error) {
	if perHour <= 0 {
		return TriageResult{}, errors.New("health: capacity must be positive")
	}
	sorted := append([]TriageWarning(nil), warnings...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Hour < sorted[j].Hour })

	var res TriageResult
	var q Queue
	fifo := make([]TriageWarning, 0, len(sorted))
	byDrive := make(map[int]TriageWarning, len(sorted))
	next := 0
	hour := 0
	if len(sorted) > 0 {
		hour = sorted[0].Hour
	}
	pending := func() int { return len(fifo) + q.Len() }
	for next < len(sorted) || pending() > 0 {
		// Admit warnings that have arrived by this hour.
		for next < len(sorted) && sorted[next].Hour <= hour {
			w := sorted[next]
			byDrive[w.Drive] = w
			if healthPolicy {
				q.Push(w.Warning)
			} else {
				fifo = append(fifo, w)
			}
			next++
		}
		// Process up to perHour warnings this hour.
		for c := 0; c < perHour && pending() > 0; c++ {
			var tw TriageWarning
			if healthPolicy {
				w, _ := q.Pop()
				tw = byDrive[w.Drive]
			} else {
				tw = fifo[0]
				fifo = fifo[1:]
			}
			if tw.WillFail && hour >= tw.FailHour {
				res.LostFailures++
				continue
			}
			res.Processed++
			if tw.WillFail {
				res.SavedFailures++
			} else {
				res.WastedWork++
			}
		}
		hour++
		// Drives that failed while still queued are lost; account for
		// them lazily when popped (above) — but if the queue drains
		// only after all arrivals, the loop still terminates because
		// every element is popped exactly once.
	}
	return res, nil
}
