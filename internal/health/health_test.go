package health

import (
	"math/rand"
	"testing"

	"hddcart/internal/detect"
)

// thresholdModel alarms when the single feature drops below zero.
type thresholdModel struct{}

func (thresholdModel) Predict(x []float64) float64 { return x[0] }

func seriesFrom(hours []int, scores []float64) detect.Series {
	s := detect.Series{Hours: hours}
	for _, v := range scores {
		s.X = append(s.X, []float64{v})
	}
	return s
}

func TestPersonalizedWindows(t *testing.T) {
	det := &detect.Voting{Model: thresholdModel{}, Voters: 1}
	series := map[int]detect.Series{
		1: seriesFrom([]int{100, 101, 102}, []float64{1, -1, -1}), // alarm at 101
		2: seriesFrom([]int{100, 101, 102}, []float64{1, 1, 1}),   // missed
	}
	failHours := map[int]int{1: 400, 2: 400}
	win, err := PersonalizedWindows(det, series, failHours)
	if err != nil {
		t.Fatal(err)
	}
	if got := win[1]; got != 299 {
		t.Errorf("w_1 = %d, want 299", got)
	}
	if _, ok := win[2]; ok {
		t.Error("missed drive must not get a window")
	}
}

func TestPersonalizedWindowsErrors(t *testing.T) {
	if _, err := PersonalizedWindows(nil, nil, nil); err == nil {
		t.Error("nil detector should error")
	}
	det := &detect.Voting{Model: thresholdModel{}, Voters: 1}
	series := map[int]detect.Series{1: seriesFrom([]int{1}, []float64{1})}
	if _, err := PersonalizedWindows(det, series, map[int]int{}); err == nil {
		t.Error("missing fail hour should error")
	}
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	q.Push(Warning{Drive: 1, Health: -0.2, Hour: 10})
	q.Push(Warning{Drive: 2, Health: -0.9, Hour: 11})
	q.Push(Warning{Drive: 3, Health: 0.1, Hour: 9})
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	if w, _ := q.Peek(); w.Drive != 2 {
		t.Errorf("Peek = drive %d, want 2 (worst health)", w.Drive)
	}
	order := []int{2, 1, 3}
	for _, want := range order {
		w, ok := q.Pop()
		if !ok || w.Drive != want {
			t.Fatalf("Pop = %+v, want drive %d", w, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("empty Pop should report !ok")
	}
	if _, ok := q.Peek(); ok {
		t.Error("empty Peek should report !ok")
	}
}

func TestQueueTieBreaksOnAge(t *testing.T) {
	var q Queue
	q.Push(Warning{Drive: 1, Health: -0.5, Hour: 20})
	q.Push(Warning{Drive: 2, Health: -0.5, Hour: 10})
	if w, _ := q.Pop(); w.Drive != 2 {
		t.Errorf("tie should pop older warning, got drive %d", w.Drive)
	}
}

func TestQueueUpdate(t *testing.T) {
	var q Queue
	q.Push(Warning{Drive: 1, Health: -0.1})
	q.Push(Warning{Drive: 2, Health: -0.2})
	if !q.Update(1, -0.9) {
		t.Fatal("Update did not find drive 1")
	}
	if w, _ := q.Peek(); w.Drive != 1 {
		t.Error("updated drive should be most urgent")
	}
	if q.Update(99, 0) {
		t.Error("Update of unknown drive should report false")
	}
}

func TestQueueHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q Queue
	for i := 0; i < 500; i++ {
		q.Push(Warning{Drive: i, Health: rng.Float64()*2 - 1, Hour: rng.Intn(100)})
	}
	prev := -2.0
	for q.Len() > 0 {
		w, _ := q.Pop()
		if w.Health < prev {
			t.Fatalf("heap order violated: %v after %v", w.Health, prev)
		}
		prev = w.Health
	}
}

func TestTriageHealthBeatsFIFOUnderPressure(t *testing.T) {
	// A burst of warnings: most are mild false alarms raised first; the
	// genuinely dying drives (worse health) arrive slightly later with
	// tight deadlines. FIFO wastes its capacity on the false alarms.
	var ws []TriageWarning
	for i := 0; i < 30; i++ {
		ws = append(ws, TriageWarning{
			Warning:  Warning{Drive: i, Health: -0.05, Hour: 0},
			WillFail: false,
		})
	}
	for i := 30; i < 40; i++ {
		ws = append(ws, TriageWarning{
			Warning:  Warning{Drive: i, Health: -0.95, Hour: 1},
			WillFail: true,
			FailHour: 8,
		})
	}
	fifo, err := Triage(ws, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	prio, err := Triage(ws, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if prio.SavedFailures <= fifo.SavedFailures {
		t.Errorf("health policy saved %d, FIFO saved %d; want strict improvement",
			prio.SavedFailures, fifo.SavedFailures)
	}
	if prio.SavedFailures+prio.LostFailures != 10 {
		t.Errorf("failing drives accounted = %d, want 10", prio.SavedFailures+prio.LostFailures)
	}
}

func TestTriageAmpleCapacity(t *testing.T) {
	ws := []TriageWarning{
		{Warning: Warning{Drive: 1, Health: -0.5, Hour: 0}, WillFail: true, FailHour: 100},
		{Warning: Warning{Drive: 2, Health: -0.1, Hour: 0}, WillFail: false},
	}
	for _, policy := range []bool{false, true} {
		res, err := Triage(ws, 10, policy)
		if err != nil {
			t.Fatal(err)
		}
		if res.SavedFailures != 1 || res.LostFailures != 0 || res.WastedWork != 1 {
			t.Errorf("policy %v: %+v", policy, res)
		}
	}
}

func TestTriageValidation(t *testing.T) {
	if _, err := Triage(nil, 0, true); err == nil {
		t.Error("zero capacity should error")
	}
	res, err := Triage(nil, 1, true)
	if err != nil || res.Processed != 0 {
		t.Errorf("empty triage = %+v, %v", res, err)
	}
}
