// Package reliability implements the paper's §VI: Eckart's single-drive
// MTTDL formula with failure prediction (Eq. 7), Gibson's RAID MTTDL
// approximations (Eq. 8), and continuous-time Markov models of RAID groups
// with proactive fault tolerance (the Fig. 11 RAID-6 model and its RAID-5
// counterpart), solved exactly via expected time to absorption. A
// Monte-Carlo lifetime simulator cross-validates the analytic solutions.
package reliability

import (
	"errors"
	"fmt"
	"math/rand"

	"hddcart/internal/linalg"
)

// Absorb is the pseudo-state index representing data loss (the absorbing
// state F).
const Absorb = -1

// edge is one transition of the chain.
type edge struct {
	from, to int // to == Absorb for transitions into F
	rate     float64
}

// Chain is a continuous-time Markov chain over n transient states plus one
// absorbing failure state.
type Chain struct {
	n     int
	edges []edge
}

// NewChain creates a chain with n transient states (indexed 0..n-1).
func NewChain(n int) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("reliability: chain needs ≥ 1 state, got %d", n)
	}
	return &Chain{n: n}, nil
}

// NumStates returns the number of transient states.
func (c *Chain) NumStates() int { return c.n }

// Add registers a transition with the given rate (per hour). Use
// to == Absorb for transitions into the absorbing state. Zero-rate
// transitions are ignored.
func (c *Chain) Add(from, to int, rate float64) error {
	if from < 0 || from >= c.n {
		return fmt.Errorf("reliability: bad source state %d", from)
	}
	if to != Absorb && (to < 0 || to >= c.n) {
		return fmt.Errorf("reliability: bad target state %d", to)
	}
	if rate < 0 {
		return fmt.Errorf("reliability: negative rate %v", rate)
	}
	if rate == 0 || from == to {
		return nil
	}
	c.edges = append(c.edges, edge{from, to, rate})
	return nil
}

// MeanTimeToAbsorption returns the expected hours from start until
// absorption, solving Q_T·t = −1 over the transient generator. The
// transient system is banded under the interleaved state orderings used by
// the RAID models, so the solve is O(n·band²).
func (c *Chain) MeanTimeToAbsorption(start int) (float64, error) {
	if start < 0 || start >= c.n {
		return 0, fmt.Errorf("reliability: bad start state %d", start)
	}
	// Bandwidth from the actual transitions.
	kl, ku := 0, 0
	for _, e := range c.edges {
		if e.to == Absorb {
			continue
		}
		if d := e.to - e.from; d > ku {
			ku = d
		} else if -d > kl {
			kl = -d
		}
	}
	m, err := linalg.NewBand(c.n, kl, ku)
	if err != nil {
		return 0, err
	}
	for _, e := range c.edges {
		if err := m.Add(e.from, e.from, -e.rate); err != nil {
			return 0, err
		}
		if e.to != Absorb {
			if err := m.Add(e.from, e.to, e.rate); err != nil {
				return 0, err
			}
		}
	}
	rhs := make([]float64, c.n)
	for i := range rhs {
		rhs[i] = -1
	}
	t, err := m.Solve(rhs)
	if err != nil {
		if errors.Is(err, linalg.ErrSingular) {
			return 0, fmt.Errorf("reliability: absorption unreachable from some state: %w", err)
		}
		return 0, err
	}
	return t[start], nil
}

// SimulateAbsorption draws one absorption time (hours) from start by
// simulating the embedded jump process. maxHops bounds runaway chains;
// exceeding it returns an error.
func (c *Chain) SimulateAbsorption(start int, rng *rand.Rand, maxHops int) (float64, error) {
	// Index transitions by source.
	bySrc := make([][]edge, c.n)
	for _, e := range c.edges {
		bySrc[e.from] = append(bySrc[e.from], e)
	}
	return c.simulateIndexed(start, rng, maxHops, bySrc)
}

func (c *Chain) simulateIndexed(start int, rng *rand.Rand, maxHops int, bySrc [][]edge) (float64, error) {
	state := start
	time := 0.0
	for hop := 0; hop < maxHops; hop++ {
		out := bySrc[state]
		total := 0.0
		for _, e := range out {
			total += e.rate
		}
		if total == 0 {
			return 0, fmt.Errorf("reliability: state %d has no outgoing transitions", state)
		}
		time += rng.ExpFloat64() / total
		x := rng.Float64() * total
		next := Absorb
		for _, e := range out {
			x -= e.rate
			if x < 0 {
				next = e.to
				break
			}
		}
		if next == Absorb {
			return time, nil
		}
		state = next
	}
	return 0, fmt.Errorf("reliability: no absorption within %d hops", maxHops)
}

// EstimateMTTA Monte-Carlo-estimates the mean time to absorption from
// start over the given number of trials.
func (c *Chain) EstimateMTTA(start int, trials int, seed int64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("reliability: trials must be positive, got %d", trials)
	}
	bySrc := make([][]edge, c.n)
	for _, e := range c.edges {
		bySrc[e.from] = append(bySrc[e.from], e)
	}
	rng := rand.New(rand.NewSource(seed))
	sum := 0.0
	for i := 0; i < trials; i++ {
		t, err := c.simulateIndexed(start, rng, 1<<30, bySrc)
		if err != nil {
			return 0, err
		}
		sum += t
	}
	return sum / float64(trials), nil
}
