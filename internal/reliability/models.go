package reliability

import "fmt"

// HoursPerYear converts MTTDL hours to years.
const HoursPerYear = 24 * 365

// DriveParams characterizes one drive population.
type DriveParams struct {
	// MTTFHours is the drive's mean time to failure. The paper uses
	// 1,990,000 h for SAS and 1,390,000 h for SATA drives.
	MTTFHours float64
	// MTTRHours is the mean time to repair/rebuild (8 h in the paper).
	MTTRHours float64
}

// SASDrive and SATADrive return the paper's Table VI / Fig. 12 parameters.
func SASDrive() DriveParams  { return DriveParams{MTTFHours: 1990000, MTTRHours: 8} }
func SATADrive() DriveParams { return DriveParams{MTTFHours: 1390000, MTTRHours: 8} }

// Prediction characterizes a failure-prediction model for reliability
// analysis: k (the FDR) and γ = 1/TIA. The zero value means no prediction.
type Prediction struct {
	// FDR is the failure detection rate k ∈ [0,1].
	FDR float64
	// TIAHours is the mean time in advance of warnings.
	TIAHours float64
}

// NoPrediction is the zero Prediction.
var NoPrediction = Prediction{}

// SingleDriveMTTDL evaluates Eckart's formula (the paper's Eq. 7):
//
//	MTTDL ≈ MTTF / (1 − k·µ/(µ+γ))
//
// where µ = 1/MTTR and γ = 1/TIA. With no prediction (k = 0) it reduces to
// the drive's MTTF. The result is in hours.
func SingleDriveMTTDL(d DriveParams, p Prediction) float64 {
	if p.FDR == 0 || p.TIAHours == 0 {
		return d.MTTFHours
	}
	mu := 1 / d.MTTRHours
	gamma := 1 / p.TIAHours
	return d.MTTFHours / (1 - p.FDR*mu/(mu+gamma))
}

// RAID5MTTDLNoPrediction is Gibson's closed-form approximation for an
// N-drive RAID-5 group: MTTF²/(N(N−1)·MTTR). Hours.
func RAID5MTTDLNoPrediction(d DriveParams, n int) float64 {
	if n < 2 {
		return d.MTTFHours
	}
	fn := float64(n)
	return d.MTTFHours * d.MTTFHours / (fn * (fn - 1) * d.MTTRHours)
}

// RAID6MTTDLNoPrediction is Gibson's approximation for RAID-6 (the paper's
// Eq. 8): MTTF³/(N(N−1)(N−2)·MTTR²). Hours.
func RAID6MTTDLNoPrediction(d DriveParams, n int) float64 {
	if n < 3 {
		return RAID5MTTDLNoPrediction(d, n)
	}
	fn := float64(n)
	return d.MTTFHours * d.MTTFHours * d.MTTFHours /
		(fn * (fn - 1) * (fn - 2) * d.MTTRHours * d.MTTRHours)
}

// RAID6PredictionChain builds the paper's Fig. 11 Markov model for an
// N-drive RAID-6 group with proactive fault tolerance. The 3N transient
// states are: P_i (no erasures, i drives currently predicted to fail,
// 0 ≤ i ≤ N), SP_i (one erasure, 0 ≤ i ≤ N−1) and DP_i (two erasures,
// 0 ≤ i ≤ N−2); F (data loss, any third concurrent erasure) is absorbing.
//
// Rates: healthy drives fail at λ = 1/MTTF; a failing drive is predicted
// with probability k (entering a predicted state) or missed with l = 1−k
// (an immediate erasure). Predicted drives are proactively replaced at
// rate µ = 1/MTTR each, or truly die at rate γ = 1/TIA. Failed drives
// rebuild at rate µ (two in parallel in DP states). DESIGN.md documents
// the full rate table; the paper prints the state diagram only.
//
// It returns the chain and the start state (P_0).
func RAID6PredictionChain(n int, d DriveParams, p Prediction) (*Chain, int, error) {
	if n < 3 {
		return nil, 0, fmt.Errorf("reliability: RAID-6 needs ≥ 3 drives, got %d", n)
	}
	if p.FDR < 0 || p.FDR > 1 {
		return nil, 0, fmt.Errorf("reliability: FDR %v outside [0,1]", p.FDR)
	}
	lambda := 1 / d.MTTFHours
	mu := 1 / d.MTTRHours
	gamma := 0.0
	if p.TIAHours > 0 {
		gamma = 1 / p.TIAHours
	}
	k := p.FDR
	if gamma == 0 {
		// Without a lead-time model, predictions are meaningless;
		// treat as no prediction.
		k = 0
	}
	l := 1 - k

	// Interleaved indexing keeps the generator banded (bandwidth ≤ 3):
	// P_i→3i, SP_i→3i+1, DP_i→3i+2 for i ≤ N−2; then SP_{N−1}, P_{N−1},
	// P_N occupy the tail.
	pIdx := func(i int) int {
		switch {
		case i <= n-2:
			return 3 * i
		case i == n-1:
			return 3 * (n - 1)
		default: // i == n
			return 3*n - 1
		}
	}
	spIdx := func(i int) int {
		if i <= n-2 {
			return 3*i + 1
		}
		return 3*(n-1) + 1 // i == n-1
	}
	dpIdx := func(i int) int { return 3*i + 2 } // i ≤ n-2

	c, err := NewChain(3 * n)
	if err != nil {
		return nil, 0, err
	}
	add := func(from, to int, rate float64) {
		if err == nil {
			err = c.Add(from, to, rate)
		}
	}

	for i := 0; i <= n; i++ {
		healthy := float64(n - i)
		fi := float64(i)
		if i < n {
			add(pIdx(i), pIdx(i+1), healthy*lambda*k)
			add(pIdx(i), spIdx(i), healthy*lambda*l)
		}
		if i > 0 {
			add(pIdx(i), pIdx(i-1), fi*mu)
			add(pIdx(i), spIdx(i-1), fi*gamma)
		}
	}
	for i := 0; i <= n-1; i++ {
		healthy := float64(n - 1 - i)
		fi := float64(i)
		add(spIdx(i), pIdx(i), mu)
		if i < n-1 {
			add(spIdx(i), spIdx(i+1), healthy*lambda*k)
			add(spIdx(i), dpIdx(i), healthy*lambda*l)
		}
		if i > 0 {
			add(spIdx(i), spIdx(i-1), fi*mu)
			add(spIdx(i), dpIdx(i-1), fi*gamma)
		}
	}
	for i := 0; i <= n-2; i++ {
		healthy := float64(n - 2 - i)
		fi := float64(i)
		add(dpIdx(i), spIdx(i), 2*mu)
		if i < n-2 {
			add(dpIdx(i), dpIdx(i+1), healthy*lambda*k)
		}
		if i > 0 {
			add(dpIdx(i), dpIdx(i-1), fi*mu)
		}
		// Any third concurrent erasure loses data: a missed failure of
		// a healthy drive, or a predicted drive dying before
		// replacement.
		add(dpIdx(i), Absorb, healthy*lambda*l+fi*gamma)
	}
	if err != nil {
		return nil, 0, err
	}
	return c, pIdx(0), nil
}

// RAID5PredictionChain builds the analogous 2N-state model for RAID-5 with
// proactive fault tolerance (after Eckart et al. [17]): states P_i
// (0 ≤ i ≤ N) and SP_i (one erasure, 0 ≤ i ≤ N−1); any second concurrent
// erasure is data loss.
func RAID5PredictionChain(n int, d DriveParams, p Prediction) (*Chain, int, error) {
	if n < 2 {
		return nil, 0, fmt.Errorf("reliability: RAID-5 needs ≥ 2 drives, got %d", n)
	}
	if p.FDR < 0 || p.FDR > 1 {
		return nil, 0, fmt.Errorf("reliability: FDR %v outside [0,1]", p.FDR)
	}
	lambda := 1 / d.MTTFHours
	mu := 1 / d.MTTRHours
	gamma := 0.0
	if p.TIAHours > 0 {
		gamma = 1 / p.TIAHours
	}
	k := p.FDR
	if gamma == 0 {
		k = 0
	}
	l := 1 - k

	// Interleaved indexing: P_i→2i (i ≤ N−1), SP_i→2i+1, and P_N in the
	// dedicated last slot 2N.
	total := 2*n + 1 // P_0..P_N (n+1) + SP_0..SP_{n-1} (n)
	pIdx := func(i int) int {
		if i <= n-1 {
			return 2 * i
		}
		return 2 * n // P_N last
	}
	spIdx := func(i int) int { return 2*i + 1 }

	c, err := NewChain(total)
	if err != nil {
		return nil, 0, err
	}
	add := func(from, to int, rate float64) {
		if err == nil {
			err = c.Add(from, to, rate)
		}
	}
	for i := 0; i <= n; i++ {
		healthy := float64(n - i)
		fi := float64(i)
		if i < n {
			add(pIdx(i), pIdx(i+1), healthy*lambda*k)
			add(pIdx(i), spIdx(i), healthy*lambda*l)
		}
		if i > 0 {
			add(pIdx(i), pIdx(i-1), fi*mu)
			add(pIdx(i), spIdx(i-1), fi*gamma)
		}
	}
	for i := 0; i <= n-1; i++ {
		healthy := float64(n - 1 - i)
		fi := float64(i)
		add(spIdx(i), pIdx(i), mu)
		if i < n-1 {
			add(spIdx(i), spIdx(i+1), healthy*lambda*k)
		}
		if i > 0 {
			add(spIdx(i), spIdx(i-1), fi*mu)
		}
		add(spIdx(i), Absorb, healthy*lambda*l+fi*gamma)
	}
	if err != nil {
		return nil, 0, err
	}
	return c, pIdx(0), nil
}

// RAID6PredictionMTTDL solves the Fig. 11 model for its MTTDL (hours).
func RAID6PredictionMTTDL(n int, d DriveParams, p Prediction) (float64, error) {
	c, start, err := RAID6PredictionChain(n, d, p)
	if err != nil {
		return 0, err
	}
	return c.MeanTimeToAbsorption(start)
}

// RAID5PredictionMTTDL solves the RAID-5 proactive model for its MTTDL
// (hours).
func RAID5PredictionMTTDL(n int, d DriveParams, p Prediction) (float64, error) {
	c, start, err := RAID5PredictionChain(n, d, p)
	if err != nil {
		return 0, err
	}
	return c.MeanTimeToAbsorption(start)
}
