package reliability

import (
	"math"
	"math/rand"
	"testing"
)

// Paper Table VI prediction parameters.
var (
	ctPred  = Prediction{FDR: 0.9549, TIAHours: 355}
	rtPred  = Prediction{FDR: 0.9624, TIAHours: 351}
	annPred = Prediction{FDR: 0.9098, TIAHours: 343}
)

func years(h float64) float64 { return h / HoursPerYear }

func TestSingleDriveMTTDLTableVI(t *testing.T) {
	// The paper's Table VI values (years): reproduce Eq. 7 exactly.
	d := SATADrive()
	tests := []struct {
		name string
		p    Prediction
		want float64
	}{
		{"no prediction", NoPrediction, 158.67},
		{"BP ANN", annPred, 1430.33},
		{"CT", ctPred, 2398.92},
		{"RT", rtPred, 2687.31},
	}
	for _, tt := range tests {
		got := years(SingleDriveMTTDL(d, tt.p))
		if math.Abs(got-tt.want)/tt.want > 0.005 {
			t.Errorf("%s: MTTDL = %.2f years, want ≈ %.2f", tt.name, got, tt.want)
		}
	}
}

func TestSingleDriveSuperlinearInFDR(t *testing.T) {
	// The paper notes a small FDR advantage makes a ~2× MTTDL gap.
	d := SATADrive()
	ct := SingleDriveMTTDL(d, ctPred)
	ann := SingleDriveMTTDL(d, annPred)
	if ct/ann < 1.5 {
		t.Errorf("CT/ANN MTTDL ratio = %.2f, want > 1.5 (superlinear growth)", ct/ann)
	}
}

func TestGibsonFormulas(t *testing.T) {
	d := DriveParams{MTTFHours: 1e6, MTTRHours: 10}
	if got := RAID5MTTDLNoPrediction(d, 10); math.Abs(got-1e12/900) > 1 {
		t.Errorf("RAID5 = %v, want %v", got, 1e12/900)
	}
	want6 := 1e18 / (10 * 9 * 8 * 100)
	if got := RAID6MTTDLNoPrediction(d, 10); math.Abs(got-want6)/want6 > 1e-12 {
		t.Errorf("RAID6 = %v, want %v", got, want6)
	}
	// Degenerate group sizes fall back gracefully.
	if got := RAID5MTTDLNoPrediction(d, 1); got != d.MTTFHours {
		t.Errorf("RAID5 n=1 = %v", got)
	}
	if got := RAID6MTTDLNoPrediction(d, 2); got != RAID5MTTDLNoPrediction(d, 2) {
		t.Errorf("RAID6 n=2 should fall back to RAID5 formula")
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := NewChain(0); err == nil {
		t.Error("NewChain(0) should fail")
	}
	c, _ := NewChain(2)
	if err := c.Add(-1, 0, 1); err == nil {
		t.Error("bad source should fail")
	}
	if err := c.Add(0, 5, 1); err == nil {
		t.Error("bad target should fail")
	}
	if err := c.Add(0, 1, -1); err == nil {
		t.Error("negative rate should fail")
	}
	if err := c.Add(0, 0, 5); err != nil {
		t.Error("self loop should be silently ignored")
	}
	if _, err := c.MeanTimeToAbsorption(9); err == nil {
		t.Error("bad start should fail")
	}
}

func TestChainSingleState(t *testing.T) {
	// One state absorbing at rate r: MTTA = 1/r.
	c, _ := NewChain(1)
	if err := c.Add(0, Absorb, 0.25); err != nil {
		t.Fatal(err)
	}
	got, err := c.MeanTimeToAbsorption(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("MTTA = %v, want 4", got)
	}
}

func TestChainTwoStateKnown(t *testing.T) {
	// 0 →(a)→ 1 →(b)→ F, 1 →(c)→ 0.
	// t1 = (1 + c·t0)/(b+c); t0 = 1/a + t1.
	a, b, cRate := 2.0, 0.5, 3.0
	c, _ := NewChain(2)
	_ = c.Add(0, 1, a)
	_ = c.Add(1, Absorb, b)
	_ = c.Add(1, 0, cRate)
	got, err := c.MeanTimeToAbsorption(0)
	if err != nil {
		t.Fatal(err)
	}
	// Solve by hand: t0 = 1/a + t1; t1 = (1 + c·t0)/(b+c)
	// t1 = (1 + c/a)/(b) ... derive numerically instead:
	t1 := (1 + cRate/a) / b
	t0 := 1/a + t1
	if math.Abs(got-t0) > 1e-9 {
		t.Errorf("MTTA = %v, want %v", got, t0)
	}
}

func TestChainUnreachableAbsorptionFails(t *testing.T) {
	c, _ := NewChain(2)
	_ = c.Add(0, 1, 1)
	_ = c.Add(1, 0, 1) // no path to F
	if _, err := c.MeanTimeToAbsorption(0); err == nil {
		t.Error("expected singular-system error")
	}
}

func TestRAID6NoPredictionMatchesClassicChain(t *testing.T) {
	// With k=0 the Fig. 11 model must collapse to the classic 3-state
	// RAID-6 birth-death chain.
	d := DriveParams{MTTFHours: 1e5, MTTRHours: 10}
	n := 8
	got, err := RAID6PredictionMTTDL(n, d, NoPrediction)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 1 / d.MTTFHours
	mu := 1 / d.MTTRHours
	c, _ := NewChain(3)
	_ = c.Add(0, 1, float64(n)*lambda)
	_ = c.Add(1, 0, mu)
	_ = c.Add(1, 2, float64(n-1)*lambda)
	_ = c.Add(2, 1, 2*mu)
	_ = c.Add(2, Absorb, float64(n-2)*lambda)
	want, err := c.MeanTimeToAbsorption(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("RAID6 k=0 MTTDL = %v, want %v", got, want)
	}
}

func TestRAID6NoPredictionNearGibson(t *testing.T) {
	// The exact chain and Gibson's approximation agree within a small
	// factor when λ·MTTR ≪ 1 (here the chain uses 2µ in double-erasure
	// states, so it sits above the single-repair approximation).
	d := SATADrive()
	for _, n := range []int{8, 64, 256} {
		exact, err := RAID6PredictionMTTDL(n, d, NoPrediction)
		if err != nil {
			t.Fatal(err)
		}
		approx := RAID6MTTDLNoPrediction(d, n)
		ratio := exact / approx
		if ratio < 0.5 || ratio > 4 {
			t.Errorf("n=%d: exact/approx = %.2f, want O(1)", n, ratio)
		}
	}
}

func TestRAID6PredictionImproves(t *testing.T) {
	d := SATADrive()
	for _, n := range []int{16, 100} {
		none, err := RAID6PredictionMTTDL(n, d, NoPrediction)
		if err != nil {
			t.Fatal(err)
		}
		withCT, err := RAID6PredictionMTTDL(n, d, ctPred)
		if err != nil {
			t.Fatal(err)
		}
		if withCT < none*10 {
			t.Errorf("n=%d: CT MTTDL %.3g vs none %.3g; want ≥ 10× improvement", n, withCT, none)
		}
	}
}

func TestRAID6MTTDLMonotoneInFDR(t *testing.T) {
	d := SATADrive()
	prev := 0.0
	for _, k := range []float64{0, 0.5, 0.9, 0.95, 0.99} {
		mttdl, err := RAID6PredictionMTTDL(20, d, Prediction{FDR: k, TIAHours: 355})
		if err != nil {
			t.Fatal(err)
		}
		if mttdl <= prev {
			t.Errorf("MTTDL not increasing at k=%v: %v after %v", k, mttdl, prev)
		}
		prev = mttdl
	}
}

func TestRAID6MTTDLDecreasesWithSize(t *testing.T) {
	d := SATADrive()
	prev := math.Inf(1)
	for _, n := range []int{10, 50, 200, 1000} {
		mttdl, err := RAID6PredictionMTTDL(n, d, ctPred)
		if err != nil {
			t.Fatal(err)
		}
		if mttdl >= prev {
			t.Errorf("MTTDL not decreasing at n=%d", n)
		}
		prev = mttdl
	}
}

func TestPaperFig12Shape(t *testing.T) {
	// The paper's headline claims:
	// (1) SATA RAID-6 with CT prediction beats SAS RAID-6 without
	//     prediction by orders of magnitude;
	// (2) SATA RAID-5 with CT is in the same ballpark as RAID-6 setups
	//     without prediction for large systems.
	n := 500
	sataCT6, err := RAID6PredictionMTTDL(n, SATADrive(), ctPred)
	if err != nil {
		t.Fatal(err)
	}
	sas6 := RAID6MTTDLNoPrediction(SASDrive(), n)
	if sataCT6 < 100*sas6 {
		t.Errorf("SATA RAID-6 w/ CT = %.3g h vs SAS RAID-6 w/o = %.3g h; want ≥ 100×", sataCT6, sas6)
	}
	sataCT5, err := RAID5PredictionMTTDL(n, SATADrive(), ctPred)
	if err != nil {
		t.Fatal(err)
	}
	sata6 := RAID6MTTDLNoPrediction(SATADrive(), n)
	ratio := sataCT5 / sata6
	if ratio < 1.0/300 || ratio > 300 {
		t.Errorf("SATA RAID-5 w/ CT vs SATA RAID-6 w/o ratio = %.3g, want same ballpark", ratio)
	}
}

func TestRAIDChainValidation(t *testing.T) {
	if _, _, err := RAID6PredictionChain(2, SATADrive(), NoPrediction); err == nil {
		t.Error("RAID-6 with 2 drives should fail")
	}
	if _, _, err := RAID5PredictionChain(1, SATADrive(), NoPrediction); err == nil {
		t.Error("RAID-5 with 1 drive should fail")
	}
	if _, _, err := RAID6PredictionChain(5, SATADrive(), Prediction{FDR: 1.5, TIAHours: 10}); err == nil {
		t.Error("FDR > 1 should fail")
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	// Fast-mixing small chain so simulation is cheap: exaggerated rates.
	d := DriveParams{MTTFHours: 100, MTTRHours: 20}
	p := Prediction{FDR: 0.8, TIAHours: 50}
	c, start, err := RAID6PredictionChain(4, d, p)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := c.MeanTimeToAbsorption(start)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := c.EstimateMTTA(start, 4000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-analytic)/analytic > 0.1 {
		t.Errorf("MC = %v vs analytic = %v (>10%% apart)", mc, analytic)
	}
}

func TestMonteCarloRAID5MatchesAnalytic(t *testing.T) {
	d := DriveParams{MTTFHours: 50, MTTRHours: 10}
	c, start, err := RAID5PredictionChain(3, d, Prediction{FDR: 0.5, TIAHours: 20})
	if err != nil {
		t.Fatal(err)
	}
	analytic, _ := c.MeanTimeToAbsorption(start)
	mc, err := c.EstimateMTTA(start, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-analytic)/analytic > 0.1 {
		t.Errorf("MC = %v vs analytic = %v", mc, analytic)
	}
}

func TestSimulateDeadEnd(t *testing.T) {
	c, _ := NewChain(2)
	_ = c.Add(0, 1, 1) // state 1 has no way out
	rng := rand.New(rand.NewSource(1))
	if _, err := c.SimulateAbsorption(0, rng, 100); err == nil {
		t.Error("dead-end state should error")
	}
	if _, err := c.EstimateMTTA(0, 0, 1); err == nil {
		t.Error("zero trials should error")
	}
}

func TestLargeSystemSolves(t *testing.T) {
	// Fig. 12 goes to 2500 drives (7500 states): must solve quickly.
	mttdl, err := RAID6PredictionMTTDL(2500, SATADrive(), ctPred)
	if err != nil {
		t.Fatal(err)
	}
	if mttdl <= 0 || math.IsNaN(mttdl) || math.IsInf(mttdl, 0) {
		t.Errorf("MTTDL = %v", mttdl)
	}
}

func TestRAID6MTTDLMonotoneInTIA(t *testing.T) {
	d := SATADrive()
	prev := 0.0
	for _, tia := range []float64{10, 50, 150, 355, 1000} {
		mttdl, err := RAID6PredictionMTTDL(20, d, Prediction{FDR: 0.95, TIAHours: tia})
		if err != nil {
			t.Fatal(err)
		}
		if mttdl <= prev {
			t.Errorf("MTTDL not increasing at TIA=%v", tia)
		}
		prev = mttdl
	}
}

func TestPredictionZeroTIADegradesToNone(t *testing.T) {
	// k > 0 with no lead-time model must behave as no prediction.
	d := SATADrive()
	withZeroTIA, err := RAID6PredictionMTTDL(10, d, Prediction{FDR: 0.9, TIAHours: 0})
	if err != nil {
		t.Fatal(err)
	}
	none, err := RAID6PredictionMTTDL(10, d, NoPrediction)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withZeroTIA-none)/none > 1e-9 {
		t.Errorf("zero-TIA prediction = %v, want %v", withZeroTIA, none)
	}
}
