// Package linalg provides the small dense and banded linear solvers used by
// the reliability Markov models. The banded solver is what makes the
// Fig. 12 reproduction fast: the interleaved state ordering of the RAID
// Markov chains yields a bandwidth ≤ 4, so expected-time-to-absorption
// systems with thousands of states solve in O(n·band²).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when elimination encounters an (effectively)
// zero pivot.
var ErrSingular = errors.New("linalg: singular matrix")

// SolveDense solves a·x = b by Gaussian elimination with partial pivoting.
// Both a and b are modified in place; the solution is returned in b's
// storage.
func SolveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("linalg: bad system shape (%d rows, %d rhs)", n, len(b))
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(a[i]), n)
		}
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(a[i][k]) > math.Abs(a[p][k]) {
				p = i
			}
		}
		if math.Abs(a[p][k]) < 1e-300 {
			return nil, ErrSingular
		}
		a[k], a[p] = a[p], a[k]
		b[k], b[p] = b[p], b[k]
		for i := k + 1; i < n; i++ {
			m := a[i][k] / a[k][k]
			if m == 0 {
				continue
			}
			for j := k; j < n; j++ {
				a[i][j] -= m * a[k][j]
			}
			b[i] -= m * b[k]
		}
	}
	for k := n - 1; k >= 0; k-- {
		sum := b[k]
		for j := k + 1; j < n; j++ {
			sum -= a[k][j] * b[j]
		}
		b[k] = sum / a[k][k]
	}
	return b, nil
}

// Band is an n×n banded matrix with kl subdiagonals and ku superdiagonals.
// Entry (i,j) is stored only when −kl ≤ j−i ≤ ku; reads outside the band
// return 0 and writes outside the band are an error.
type Band struct {
	n, kl, ku int
	// data holds band row r = ku + i − j at data[r*n + j].
	data []float64
}

// NewBand allocates a zero banded matrix.
func NewBand(n, kl, ku int) (*Band, error) {
	if n <= 0 || kl < 0 || ku < 0 {
		return nil, fmt.Errorf("linalg: bad band shape n=%d kl=%d ku=%d", n, kl, ku)
	}
	return &Band{n: n, kl: kl, ku: ku, data: make([]float64, (kl+ku+1)*n)}, nil
}

// N returns the matrix dimension.
func (b *Band) N() int { return b.n }

// inBand reports whether (i,j) lies inside the band.
func (b *Band) inBand(i, j int) bool {
	d := j - i
	return i >= 0 && i < b.n && j >= 0 && j < b.n && d >= -b.kl && d <= b.ku
}

// At returns entry (i,j) (0 outside the band).
func (b *Band) At(i, j int) float64 {
	if !b.inBand(i, j) {
		return 0
	}
	return b.data[(b.ku+i-j)*b.n+j]
}

// Set stores entry (i,j); it returns an error outside the band.
func (b *Band) Set(i, j int, v float64) error {
	if !b.inBand(i, j) {
		return fmt.Errorf("linalg: (%d,%d) outside band kl=%d ku=%d n=%d", i, j, b.kl, b.ku, b.n)
	}
	b.data[(b.ku+i-j)*b.n+j] = v
	return nil
}

// Add accumulates v into entry (i,j).
func (b *Band) Add(i, j int, v float64) error {
	if !b.inBand(i, j) {
		return fmt.Errorf("linalg: (%d,%d) outside band kl=%d ku=%d n=%d", i, j, b.kl, b.ku, b.n)
	}
	b.data[(b.ku+i-j)*b.n+j] += v
	return nil
}

// Solve solves b·x = rhs by banded Gaussian elimination WITHOUT pivoting,
// which is numerically safe for the (weakly chained) diagonally dominant
// systems produced by CTMC time-to-absorption problems — the only use in
// this library. The matrix and rhs are modified in place; the solution is
// returned in rhs's storage.
func (b *Band) Solve(rhs []float64) ([]float64, error) {
	n := b.n
	if len(rhs) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(rhs), n)
	}
	for k := 0; k < n; k++ {
		piv := b.At(k, k)
		if math.Abs(piv) < 1e-300 {
			return nil, ErrSingular
		}
		iMax := k + b.kl
		if iMax > n-1 {
			iMax = n - 1
		}
		jMax := k + b.ku
		if jMax > n-1 {
			jMax = n - 1
		}
		for i := k + 1; i <= iMax; i++ {
			m := b.At(i, k) / piv
			if m == 0 {
				continue
			}
			for j := k; j <= jMax; j++ {
				// Fill stays inside the band without pivoting:
				// j − i ≤ (k+ku) − (k+1) < ku and j − i ≥ k − (k+kl) = −kl.
				b.data[(b.ku+i-j)*n+j] -= m * b.At(k, j)
			}
			rhs[i] -= m * rhs[k]
		}
	}
	for k := n - 1; k >= 0; k-- {
		sum := rhs[k]
		jMax := k + b.ku
		if jMax > n-1 {
			jMax = n - 1
		}
		for j := k + 1; j <= jMax; j++ {
			sum -= b.At(k, j) * rhs[j]
		}
		rhs[k] = sum / b.At(k, k)
	}
	return rhs, nil
}

// Dense expands the band matrix to dense form (for tests and debugging).
func (b *Band) Dense() [][]float64 {
	out := make([][]float64, b.n)
	for i := range out {
		out[i] = make([]float64, b.n)
		for j := range out[i] {
			out[i][j] = b.At(i, j)
		}
	}
	return out
}
