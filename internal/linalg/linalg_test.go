package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSolveDenseKnown(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveDenseNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	b := []float64{3, 5}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 5 || x[1] != 3 {
		t.Errorf("x = %v, want [5 3]", x)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := SolveDense(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDenseShapeErrors(t *testing.T) {
	if _, err := SolveDense(nil, nil); err == nil {
		t.Error("empty system should error")
	}
	if _, err := SolveDense([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square system should error")
	}
	if _, err := SolveDense([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("rhs mismatch should error")
	}
}

func TestBandAccessors(t *testing.T) {
	b, err := NewBand(5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 5 {
		t.Errorf("N = %d", b.N())
	}
	if err := b.Set(0, 0, 7); err != nil {
		t.Fatal(err)
	}
	if err := b.Set(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Set(2, 1, -4); err != nil {
		t.Fatal(err)
	}
	if b.At(0, 0) != 7 || b.At(0, 2) != 3 || b.At(2, 1) != -4 {
		t.Error("stored values not read back")
	}
	if b.At(0, 4) != 0 || b.At(4, 0) != 0 {
		t.Error("outside-band reads should be 0")
	}
	if err := b.Set(0, 3, 1); err == nil {
		t.Error("outside-band write should error")
	}
	if err := b.Set(3, 0, 1); err == nil {
		t.Error("below-band write should error")
	}
	if err := b.Add(0, 0, 1); err != nil || b.At(0, 0) != 8 {
		t.Error("Add failed")
	}
	if err := b.Add(4, 0, 1); err == nil {
		t.Error("outside-band Add should error")
	}
}

func TestNewBandValidation(t *testing.T) {
	if _, err := NewBand(0, 1, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := NewBand(3, -1, 0); err == nil {
		t.Error("negative kl should error")
	}
}

// randomDominantBand builds a random strictly diagonally dominant band
// matrix and a random solution, returning the matrix, rhs and solution.
func randomDominantBand(rng *rand.Rand, n, kl, ku int) (*Band, []float64, []float64) {
	b, _ := NewBand(n, kl, ku)
	for i := 0; i < n; i++ {
		var off float64
		for j := i - kl; j <= i+ku; j++ {
			if j < 0 || j >= n || j == i {
				continue
			}
			v := rng.NormFloat64()
			_ = b.Set(i, j, v)
			off += math.Abs(v)
		}
		_ = b.Set(i, i, off+1+rng.Float64())
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i - kl; j <= i+ku; j++ {
			if j < 0 || j >= n {
				continue
			}
			rhs[i] += b.At(i, j) * x[j]
		}
	}
	return b, rhs, x
}

func TestBandSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		kl := rng.Intn(4)
		ku := rng.Intn(4)
		b, rhs, want := randomDominantBand(rng, n, kl, ku)
		dense := b.Dense()
		denseRHS := append([]float64(nil), rhs...)
		xd, err := SolveDense(dense, denseRHS)
		if err != nil {
			t.Fatal(err)
		}
		xb, err := b.Solve(rhs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(xb[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: band x[%d]=%v, want %v", trial, i, xb[i], want[i])
			}
			if math.Abs(xb[i]-xd[i]) > 1e-8 {
				t.Fatalf("trial %d: band and dense disagree at %d", trial, i)
			}
		}
	}
}

func TestBandSolveTridiagonalKnown(t *testing.T) {
	// [2 -1 0; -1 2 -1; 0 -1 2] x = [1 0 1] → x = [1 1 1]
	b, _ := NewBand(3, 1, 1)
	_ = b.Set(0, 0, 2)
	_ = b.Set(0, 1, -1)
	_ = b.Set(1, 0, -1)
	_ = b.Set(1, 1, 2)
	_ = b.Set(1, 2, -1)
	_ = b.Set(2, 1, -1)
	_ = b.Set(2, 2, 2)
	x, err := b.Solve([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-12 {
			t.Fatalf("x = %v, want ones", x)
		}
	}
}

func TestBandSolveSingular(t *testing.T) {
	b, _ := NewBand(2, 0, 0) // diagonal matrix with a zero
	_ = b.Set(0, 0, 1)
	if _, err := b.Solve([]float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestBandSolveRHSMismatch(t *testing.T) {
	b, _ := NewBand(3, 1, 1)
	if _, err := b.Solve([]float64{1}); err == nil {
		t.Error("rhs length mismatch should error")
	}
}

func TestBandLargeSystem(t *testing.T) {
	// The reliability use case: thousands of states, tiny bandwidth.
	rng := rand.New(rand.NewSource(2))
	n := 7501
	b, rhs, want := randomDominantBand(rng, n, 4, 4)
	x, err := b.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range want {
		if d := math.Abs(x[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-7 {
		t.Errorf("max error = %v", worst)
	}
}
