package storagesim

import (
	"math"
	"testing"

	"hddcart/internal/reliability"
)

// fastConfig is an accelerated system (short MTTF) so losses happen within
// test budgets.
func fastConfig() Config {
	return Config{
		Groups:         40,
		DrivesPerGroup: 8,
		Parity:         2,
		MTTFHours:      400,
		RepairHours:    24,
		MigrateHours:   12,
		HorizonHours:   40000,
		Seed:           1,
	}
}

func TestValidation(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.Groups = 0 },
		func(c *Config) { c.Parity = 0 },
		func(c *Config) { c.DrivesPerGroup = 2 },
		func(c *Config) { c.MTTFHours = 0 },
		func(c *Config) { c.RepairHours = -1 },
		func(c *Config) { c.FDR = 1.5 },
		func(c *Config) { c.FDR = 0.5; c.TIAMeanHours = 0 },
		func(c *Config) { c.HorizonHours = 0 },
	}
	for i, m := range mut {
		cfg := fastConfig()
		m(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLossesMatchMarkovWithoutPrediction(t *testing.T) {
	cfg := fastConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataLossEvents < 10 {
		t.Fatalf("only %d losses; horizon too short for a statistical check", res.DataLossEvents)
	}
	chain, start, err := reliability.RAID6PredictionChain(cfg.DrivesPerGroup,
		reliability.DriveParams{MTTFHours: cfg.MTTFHours, MTTRHours: cfg.RepairHours},
		reliability.NoPrediction)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := chain.MeanTimeToAbsorption(start)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.MTTDLHours / analytic
	// The renewal estimate is biased slightly low (losses reset groups),
	// but must agree within a modest factor.
	if ratio < 0.6 || ratio > 1.7 {
		t.Errorf("DES MTTDL %.0f vs Markov %.0f (ratio %.2f)", res.MTTDLHours, analytic, ratio)
	}
}

func TestPredictionImprovesReliability(t *testing.T) {
	base := fastConfig()
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	pred := fastConfig()
	pred.FDR = 0.95
	pred.TIAMeanHours = 100
	predRes, err := Run(pred)
	if err != nil {
		t.Fatal(err)
	}
	if predRes.DataLossEvents*3 >= baseRes.DataLossEvents {
		t.Errorf("prediction losses %d vs baseline %d; want ≥ 3× reduction",
			predRes.DataLossEvents, baseRes.DataLossEvents)
	}
	if predRes.SavedByMigration == 0 {
		t.Error("no drives saved by migration")
	}
	// Most failures should be intercepted: saved / (saved + failures).
	caught := float64(predRes.SavedByMigration) /
		float64(predRes.SavedByMigration+predRes.DriveFailures)
	if caught < 0.6 {
		t.Errorf("migration interception rate = %.2f, want ≥ 0.6", caught)
	}
}

func TestTightCrewDegradesReliability(t *testing.T) {
	ample := fastConfig()
	ample.FDR = 0.9
	ample.TIAMeanHours = 60
	ample.FalseAlarmsPerDriveYear = 4
	ampleRes, err := Run(ample)
	if err != nil {
		t.Fatal(err)
	}
	tight := ample
	tight.Crew = 1
	tightRes, err := Run(tight)
	if err != nil {
		t.Fatal(err)
	}
	if tightRes.DataLossEvents <= ampleRes.DataLossEvents {
		t.Errorf("crew=1 losses %d vs unlimited %d; contention should hurt",
			tightRes.DataLossEvents, ampleRes.DataLossEvents)
	}
	if tightRes.MaxBacklog == 0 {
		t.Error("crew=1 never queued work")
	}
	if ampleRes.MaxBacklog != 0 {
		t.Error("unlimited crew should never queue")
	}
}

func TestFalseAlarmsCounted(t *testing.T) {
	cfg := fastConfig()
	cfg.MTTFHours = 1e9 // effectively no real failures
	cfg.FalseAlarmsPerDriveYear = 2
	cfg.FDR = 0.9
	cfg.TIAMeanHours = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 320 drives × (40000/8760) years × 2/yr ≈ 2900 false alarms.
	expected := float64(cfg.Groups*cfg.DrivesPerGroup) * cfg.HorizonHours / 8760 * 2
	if math.Abs(float64(res.FalseAlarms)-expected) > expected*0.15 {
		t.Errorf("false alarms = %d, want ≈ %.0f", res.FalseAlarms, expected)
	}
	if res.DataLossEvents != 0 || res.DriveFailures != 0 {
		t.Errorf("spurious failures: %+v", res)
	}
	if !math.IsInf(res.MTTDLHours, 1) {
		t.Error("no losses should give +Inf MTTDL")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := fastConfig()
	cfg.FDR = 0.8
	cfg.TIAMeanHours = 60
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical results")
	}
}

func TestPredictedFailuresAreSubset(t *testing.T) {
	cfg := fastConfig()
	cfg.FDR = 0.5
	cfg.TIAMeanHours = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedFailures > res.DriveFailures {
		t.Errorf("predicted deaths %d exceed total deaths %d",
			res.PredictedFailures, res.DriveFailures)
	}
	if res.CrewBusyHours <= 0 {
		t.Error("crew never worked")
	}
}

func TestRAID5LosesMoreThanRAID6(t *testing.T) {
	r6 := fastConfig()
	r6res, err := Run(r6)
	if err != nil {
		t.Fatal(err)
	}
	r5 := fastConfig()
	r5.Parity = 1
	r5res, err := Run(r5)
	if err != nil {
		t.Fatal(err)
	}
	if r5res.DataLossEvents <= r6res.DataLossEvents {
		t.Errorf("RAID-5 losses %d vs RAID-6 %d", r5res.DataLossEvents, r6res.DataLossEvents)
	}
}
