// Package storagesim is a discrete-event simulator of a RAID-based storage
// system with proactive fault tolerance. It closes the loop on the paper's
// §VI: where the Fig. 11 Markov model assumes unlimited maintenance
// capacity and exponential rates, the simulator injects drive failures,
// prediction warnings (with a configurable detection rate, lead-time
// distribution and false alarm rate) and a *finite* maintenance crew, and
// measures data-loss events directly. It both cross-validates the Markov
// results and answers the operational question the paper leaves open: how
// much maintenance capacity does proactive fault tolerance actually need?
package storagesim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config parameterizes one simulation run.
type Config struct {
	// Groups is the number of independent RAID groups.
	Groups int
	// DrivesPerGroup is the group width N.
	DrivesPerGroup int
	// Parity is the number of erasures a group tolerates (2 = RAID-6,
	// 1 = RAID-5): one more concurrent erasure loses the group's data.
	Parity int

	// MTTFHours is each drive's mean time to failure (exponential).
	MTTFHours float64
	// RepairHours is the mean rebuild time of a failed drive
	// (exponential).
	RepairHours float64
	// MigrateHours is the mean time to proactively copy a predicted
	// drive off and replace it (exponential; 0 = same as RepairHours).
	MigrateHours float64

	// FDR is the probability a failure is predicted in advance.
	FDR float64
	// TIAMeanHours is the mean warning lead time (exponential). A
	// predicted drive fails TIA hours after its warning unless its
	// migration completes first.
	TIAMeanHours float64
	// FalseAlarmsPerDriveYear is the rate of spurious warnings, each of
	// which occupies the maintenance crew for a migration.
	FalseAlarmsPerDriveYear float64

	// Crew is the maximum number of concurrent repairs+migrations
	// (0 = unlimited, matching the Markov model's assumption).
	Crew int

	// HorizonHours is the simulated time span.
	HorizonHours float64
	// Seed drives all randomness.
	Seed int64
}

func (c Config) validate() error {
	switch {
	case c.Groups <= 0:
		return errors.New("storagesim: need ≥ 1 group")
	case c.Parity < 1:
		return errors.New("storagesim: parity must be ≥ 1")
	case c.DrivesPerGroup <= c.Parity:
		return fmt.Errorf("storagesim: group width %d must exceed parity %d", c.DrivesPerGroup, c.Parity)
	case c.MTTFHours <= 0 || c.RepairHours <= 0:
		return errors.New("storagesim: MTTF and repair time must be positive")
	case c.FDR < 0 || c.FDR > 1:
		return fmt.Errorf("storagesim: FDR %v outside [0,1]", c.FDR)
	case c.FDR > 0 && c.TIAMeanHours <= 0:
		return errors.New("storagesim: prediction needs a positive TIA")
	case c.HorizonHours <= 0:
		return errors.New("storagesim: horizon must be positive")
	}
	return nil
}

// Result aggregates one run.
type Result struct {
	// DataLossEvents counts group losses (a lost group resets and keeps
	// running, so long horizons estimate a loss rate).
	DataLossEvents int
	// DriveFailures counts actual drive deaths.
	DriveFailures int
	// PredictedFailures counts deaths that had a prior warning.
	PredictedFailures int
	// SavedByMigration counts predicted drives migrated before death.
	SavedByMigration int
	// FalseAlarms counts spurious warnings raised.
	FalseAlarms int
	// MaxBacklog is the worst crew queue length observed.
	MaxBacklog int
	// CrewBusyHours accumulates crew-occupied time.
	CrewBusyHours float64
	// MTTDLHours estimates the per-group mean time to data loss:
	// groups·horizon / losses (+Inf when no loss occurred).
	MTTDLHours float64
}

// event kinds.
const (
	evFailure = iota // an unpredicted drive dies
	evWarning        // a warning fires (real or false)
	evDeath          // a predicted drive dies unless migrated first
	evService        // the crew finishes a repair or migration
)

// event is one scheduled occurrence.
type event struct {
	at    float64
	kind  int
	group int
	drive int
	// epoch validates failure-related events: a slot's epoch increments
	// whenever its physical drive is replaced, invalidating the old
	// drive's scheduled events. −1 means "always valid".
	epoch int
	// real marks warnings backed by an actual upcoming failure.
	real bool
	// deathAt is the predicted drive's failure instant (real warnings).
	deathAt float64
	// repair distinguishes service completions: true = rebuild of a
	// failed drive, false = proactive migration.
	repair bool
	seq    int
}

// eventQueue is a time-ordered heap.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// driveState tracks one drive slot.
type driveState int

const (
	healthy driveState = iota
	predicted
	failed
)

// serviceRequest is a pending crew job.
type serviceRequest struct {
	group, drive int
	repair       bool
}

// sim is the running simulation.
type sim struct {
	cfg Config
	rng *rand.Rand
	q   eventQueue
	seq int

	state   [][]driveState
	epoch   [][]int
	erased  []int // current erasures per group
	busy    int
	backlog []serviceRequest
	res     Result
}

// Run executes the simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	s := &sim{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		state:  make([][]driveState, cfg.Groups),
		epoch:  make([][]int, cfg.Groups),
		erased: make([]int, cfg.Groups),
	}
	for g := 0; g < cfg.Groups; g++ {
		s.state[g] = make([]driveState, cfg.DrivesPerGroup)
		s.epoch[g] = make([]int, cfg.DrivesPerGroup)
		for d := 0; d < cfg.DrivesPerGroup; d++ {
			s.scheduleNextFailure(0, g, d)
			s.scheduleFalseAlarms(g, d)
		}
	}
	s.loop()
	if s.res.DataLossEvents > 0 {
		s.res.MTTDLHours = float64(cfg.Groups) * cfg.HorizonHours / float64(s.res.DataLossEvents)
	} else {
		s.res.MTTDLHours = math.Inf(1)
	}
	return s.res, nil
}

func (s *sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.q, e)
}

// exp draws an exponential with the given mean.
func (s *sim) exp(mean float64) float64 { return s.rng.ExpFloat64() * mean }

// scheduleNextFailure draws the slot's next organic failure and, with
// probability FDR, a warning TIA hours before it.
func (s *sim) scheduleNextFailure(now float64, g, d int) {
	failAt := now + s.exp(s.cfg.MTTFHours)
	if failAt > s.cfg.HorizonHours {
		return
	}
	ep := s.epoch[g][d]
	if s.cfg.FDR > 0 && s.rng.Float64() < s.cfg.FDR {
		warnAt := failAt - s.exp(s.cfg.TIAMeanHours)
		if warnAt < now {
			warnAt = now
		}
		s.push(&event{at: warnAt, kind: evWarning, group: g, drive: d, epoch: ep, real: true, deathAt: failAt})
	} else {
		s.push(&event{at: failAt, kind: evFailure, group: g, drive: d, epoch: ep})
	}
}

// scheduleFalseAlarms lays out a slot's spurious warnings over the whole
// horizon; they are epoch-independent (any drive in the slot can trigger
// one).
func (s *sim) scheduleFalseAlarms(g, d int) {
	if s.cfg.FalseAlarmsPerDriveYear <= 0 {
		return
	}
	mean := 24 * 365 / s.cfg.FalseAlarmsPerDriveYear
	for t := s.exp(mean); t < s.cfg.HorizonHours; t += s.exp(mean) {
		s.push(&event{at: t, kind: evWarning, group: g, drive: d, epoch: -1, real: false})
	}
}

// requestService queues a repair/migration with the crew.
func (s *sim) requestService(now float64, g, d int, repair bool) {
	req := serviceRequest{g, d, repair}
	if s.cfg.Crew > 0 && s.busy >= s.cfg.Crew {
		s.backlog = append(s.backlog, req)
		if len(s.backlog) > s.res.MaxBacklog {
			s.res.MaxBacklog = len(s.backlog)
		}
		return
	}
	s.startService(now, req)
}

func (s *sim) startService(now float64, req serviceRequest) {
	s.busy++
	mean := s.cfg.RepairHours
	if !req.repair {
		if s.cfg.MigrateHours > 0 {
			mean = s.cfg.MigrateHours
		}
	}
	dur := s.exp(mean)
	s.res.CrewBusyHours += dur
	s.push(&event{
		at: now + dur, kind: evService,
		group: req.group, drive: req.drive, epoch: -1, repair: req.repair,
	})
}

// stillWanted reports whether a service request is still meaningful.
func (s *sim) stillWanted(req serviceRequest) bool {
	st := s.state[req.group][req.drive]
	return (req.repair && st == failed) || (!req.repair && st == predicted)
}

// finishService releases a crew member and dispatches the next still-valid
// backlog entry.
func (s *sim) finishService(now float64) {
	s.busy--
	for len(s.backlog) > 0 {
		req := s.backlog[0]
		s.backlog = s.backlog[1:]
		if s.stillWanted(req) {
			s.startService(now, req)
			return
		}
	}
}

// replaceDrive installs a fresh drive in the slot: epoch bump invalidates
// the old drive's scheduled failure/death, and a new failure is drawn.
func (s *sim) replaceDrive(now float64, g, d int) {
	s.state[g][d] = healthy
	s.epoch[g][d]++
	s.scheduleNextFailure(now, g, d)
}

// loseGroup records a data loss and restarts the group from all-healthy.
func (s *sim) loseGroup(now float64, g int) {
	s.res.DataLossEvents++
	s.erased[g] = 0
	for d := range s.state[g] {
		s.state[g][d] = healthy
		s.epoch[g][d]++
		s.scheduleNextFailure(now, g, d)
	}
}

func (s *sim) loop() {
	for s.q.Len() > 0 {
		e := heap.Pop(&s.q).(*event)
		if e.at > s.cfg.HorizonHours {
			break
		}
		g, d := e.group, e.drive
		if e.epoch != -1 && e.epoch != s.epoch[g][d] {
			continue // event of an already-replaced drive
		}
		switch e.kind {
		case evWarning:
			if e.real {
				// The death happens regardless of what the warning
				// triggers; carry the slot's current epoch so a
				// completed migration cancels it.
				s.push(&event{at: e.deathAt, kind: evDeath, group: g, drive: d, epoch: s.epoch[g][d]})
			} else {
				s.res.FalseAlarms++
			}
			if s.state[g][d] != healthy {
				continue // already failed or being handled
			}
			s.state[g][d] = predicted
			s.requestService(e.at, g, d, false)

		case evFailure, evDeath:
			if s.state[g][d] == failed {
				continue // defensive: already down
			}
			s.res.DriveFailures++
			if e.kind == evDeath {
				s.res.PredictedFailures++
			}
			s.state[g][d] = failed
			s.erased[g]++
			if s.erased[g] > s.cfg.Parity {
				s.loseGroup(e.at, g)
				continue
			}
			s.requestService(e.at, g, d, true)

		case evService:
			if s.stillWanted(serviceRequest{g, d, e.repair}) {
				if e.repair {
					s.erased[g]--
				} else {
					s.res.SavedByMigration++
				}
				s.replaceDrive(e.at, g, d)
			}
			s.finishService(e.at)
		}
	}
}
