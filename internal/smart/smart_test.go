package smart

import (
	"math"
	"strings"
	"testing"
)

func TestCatalogueSize(t *testing.T) {
	// Record fixes the attribute arrays at 23 entries; the catalogue must
	// match exactly.
	if len(Catalogue) != 23 {
		t.Fatalf("len(Catalogue) = %d, want 23", len(Catalogue))
	}
	if NumAttrs != 23 {
		t.Fatalf("NumAttrs = %d, want 23", NumAttrs)
	}
}

func TestCatalogueIDsUnique(t *testing.T) {
	seen := make(map[AttrID]bool)
	for _, a := range Catalogue {
		if seen[a.ID] {
			t.Errorf("duplicate attribute ID %d", a.ID)
		}
		seen[a.ID] = true
		if a.Name == "" {
			t.Errorf("attribute %d has empty name", a.ID)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	for i, a := range Catalogue {
		got, ok := Index(a.ID)
		if !ok || got != i {
			t.Errorf("Index(%d) = %d, %v; want %d, true", a.ID, got, ok, i)
		}
		info, ok := Info(a.ID)
		if !ok || info.ID != a.ID {
			t.Errorf("Info(%d) = %+v, %v", a.ID, info, ok)
		}
	}
	if _, ok := Index(AttrID(999)); ok {
		t.Error("Index(999) should not be found")
	}
	if _, ok := Info(AttrID(999)); ok {
		t.Error("Info(999) should not be found")
	}
}

func TestName(t *testing.T) {
	if got := Name(ReallocatedSectors); got != "Reallocated Sectors Count" {
		t.Errorf("Name(5) = %q", got)
	}
	if got := Name(AttrID(250)); got != "SMART 250" {
		t.Errorf("Name(250) = %q", got)
	}
}

func TestRecordAccessors(t *testing.T) {
	var r Record
	i, _ := Index(TemperatureCelsius)
	r.Normalized[i] = 80
	r.Raw[i] = 41
	if got := r.NormalizedOf(TemperatureCelsius); got != 80 {
		t.Errorf("NormalizedOf = %v, want 80", got)
	}
	if got := r.RawOf(TemperatureCelsius); got != 41 {
		t.Errorf("RawOf = %v, want 41", got)
	}
	if got := r.NormalizedOf(AttrID(999)); got != 0 {
		t.Errorf("NormalizedOf(unknown) = %v, want 0", got)
	}
	if got := r.RawOf(AttrID(999)); got != 0 {
		t.Errorf("RawOf(unknown) = %v, want 0", got)
	}
}

func TestFeatureSetSizesMatchPaper(t *testing.T) {
	if n := len(BasicFeatures()); n != 12 {
		t.Errorf("basic feature set has %d features, want 12 (Table II)", n)
	}
	if n := len(CriticalFeatures()); n != 13 {
		t.Errorf("critical feature set has %d features, want 13 (§IV-B)", n)
	}
	if n := len(ExpertFeatures()); n != 19 {
		t.Errorf("expert feature set has %d features, want 19 ([11])", n)
	}
}

func TestCriticalFeatureComposition(t *testing.T) {
	// §IV-B: 9 normalized values, 1 raw value and 3 change rates.
	var norm, raw, rate int
	for _, f := range CriticalFeatures() {
		switch f.Kind {
		case Normalized:
			norm++
		case Raw:
			raw++
		case ChangeRate:
			rate++
			if f.IntervalHours != 6 {
				t.Errorf("change rate %v uses %dh interval, want 6h", f, f.IntervalHours)
			}
		}
	}
	if norm != 9 || raw != 1 || rate != 3 {
		t.Errorf("critical composition = %d norm, %d raw, %d rates; want 9/1/3", norm, raw, rate)
	}
	// Current Pending Sector Count must be excluded entirely.
	for _, f := range CriticalFeatures() {
		if f.Attr == CurrentPendingSectors {
			t.Errorf("critical set must not contain Current Pending Sector Count, has %v", f)
		}
	}
}

func TestFeatureString(t *testing.T) {
	tests := []struct {
		f    Feature
		want string
	}{
		{Feature{Attr: PowerOnHours, Kind: Normalized}, "Power On Hours"},
		{Feature{Attr: ReallocatedSectors, Kind: Raw}, "Reallocated Sectors Count (raw)"},
		{Feature{Attr: HardwareECCRecovered, Kind: ChangeRate, IntervalHours: 6}, "Δ6h Hardware ECC Recovered"},
		{Feature{Attr: ReallocatedSectors, Kind: ChangeRate, IntervalHours: 6, RateOfRaw: true}, "Δ6h Reallocated Sectors Count (raw)"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Normalized.String() != "normalized" || Raw.String() != "raw" || ChangeRate.String() != "rate" {
		t.Error("Kind.String mismatch")
	}
	if !strings.HasPrefix(Kind(9).String(), "Kind(") {
		t.Error("unknown Kind should format as Kind(n)")
	}
}

func TestMaxInterval(t *testing.T) {
	if got := BasicFeatures().MaxInterval(); got != 0 {
		t.Errorf("basic MaxInterval = %d, want 0", got)
	}
	if got := CriticalFeatures().MaxInterval(); got != 6 {
		t.Errorf("critical MaxInterval = %d, want 6", got)
	}
	if got := ExpertFeatures().MaxInterval(); got != 24 {
		t.Errorf("expert MaxInterval = %d, want 24", got)
	}
}

func TestNames(t *testing.T) {
	names := CriticalFeatures().Names()
	if len(names) != 13 {
		t.Fatalf("Names returned %d entries", len(names))
	}
	for i, n := range names {
		if n == "" {
			t.Errorf("name %d is empty", i)
		}
	}
}

// traceWithHours builds a trace with the given hours, where attribute values
// ramp linearly with the hour so change rates are predictable.
func traceWithHours(hours ...int) []Record {
	trace := make([]Record, len(hours))
	ri, _ := Index(RawReadErrorRate)
	hi, _ := Index(HardwareECCRecovered)
	si, _ := Index(ReallocatedSectors)
	for i, h := range hours {
		trace[i].Hour = h
		trace[i].Normalized[ri] = float64(100 + h) // slope 1 per hour
		trace[i].Normalized[hi] = float64(200 - 2*h)
		trace[i].Raw[si] = float64(3 * h)
	}
	return trace
}

func TestExtractChangeRates(t *testing.T) {
	fs := FeatureSet{
		{Attr: RawReadErrorRate, Kind: ChangeRate, IntervalHours: 6},
		{Attr: HardwareECCRecovered, Kind: ChangeRate, IntervalHours: 6},
		{Attr: ReallocatedSectors, Kind: ChangeRate, IntervalHours: 6, RateOfRaw: true},
	}
	trace := traceWithHours(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	dst := make([]float64, len(fs))

	// Index 12 (hour 12) can look back exactly 6 hours.
	if !fs.Extract(trace, 12, dst) {
		t.Fatal("Extract failed at i=12")
	}
	if dst[0] != 6 { // slope 1/h over 6h
		t.Errorf("Δ6h RRER = %v, want 6", dst[0])
	}
	if dst[1] != -12 { // slope -2/h over 6h
		t.Errorf("Δ6h HEC = %v, want -12", dst[1])
	}
	if dst[2] != 18 { // slope 3/h over 6h (raw)
		t.Errorf("Δ6h RSC raw = %v, want 18", dst[2])
	}
}

func TestExtractTooEarly(t *testing.T) {
	fs := FeatureSet{{Attr: RawReadErrorRate, Kind: ChangeRate, IntervalHours: 6}}
	trace := traceWithHours(0, 1, 2, 3)
	dst := make([]float64, 1)
	if fs.Extract(trace, 3, dst) {
		t.Error("Extract should fail when history is shallower than the interval")
	}
	if fs.Extract(trace, 0, dst) {
		t.Error("Extract should fail at the first record")
	}
}

func TestExtractScalesAcrossGaps(t *testing.T) {
	// A missing-sample gap: looking back 6h from hour 20 finds hour 8,
	// so the delta must be rescaled from 12h of elapsed time to the 6h
	// interval.
	fs := FeatureSet{{Attr: RawReadErrorRate, Kind: ChangeRate, IntervalHours: 6}}
	trace := traceWithHours(0, 8, 20)
	dst := make([]float64, 1)
	if !fs.Extract(trace, 2, dst) {
		t.Fatal("Extract failed")
	}
	if dst[0] != 6 { // true slope is 1/h, so the 6h-rate is 6 regardless of gap
		t.Errorf("gap-scaled rate = %v, want 6", dst[0])
	}
}

func TestExtractPlainValues(t *testing.T) {
	fs := FeatureSet{
		{Attr: RawReadErrorRate, Kind: Normalized},
		{Attr: ReallocatedSectors, Kind: Raw},
	}
	trace := traceWithHours(0, 1, 2)
	dst := make([]float64, 2)
	if !fs.Extract(trace, 2, dst) {
		t.Fatal("Extract failed")
	}
	if dst[0] != 102 || dst[1] != 6 {
		t.Errorf("Extract = %v, want [102 6]", dst)
	}
}

func TestExtractShortDst(t *testing.T) {
	fs := BasicFeatures()
	trace := traceWithHours(0)
	if fs.Extract(trace, 0, make([]float64, 3)) {
		t.Error("Extract should fail when dst is too short")
	}
}

func TestValidValueDomains(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		v         float64
		norm, raw bool
	}{
		{0, true, true},
		{100, true, true},
		{253, true, true},
		{255, true, true},
		{256, false, true},
		{-1, false, false},
		{nan, false, false},
		{math.Inf(1), false, false},
		{math.Inf(-1), false, false},
		{2.8e14, false, true}, // 48-bit raw counter
		{1e16, false, false},
	}
	for _, c := range cases {
		if got := ValidNormalized(c.v); got != c.norm {
			t.Errorf("ValidNormalized(%v) = %v, want %v", c.v, got, c.norm)
		}
		if got := ValidRaw(c.v); got != c.raw {
			t.Errorf("ValidRaw(%v) = %v, want %v", c.v, got, c.raw)
		}
	}
}

func TestCorruptValuesAndRepair(t *testing.T) {
	var prev, rec Record
	for i := 0; i < NumAttrs; i++ {
		prev.Normalized[i] = 100
		prev.Raw[i] = float64(i)
		rec.Normalized[i] = 90
		rec.Raw[i] = float64(2 * i)
	}
	if n := rec.CorruptValues(); n != 0 {
		t.Fatalf("clean record reports %d corrupt values", n)
	}
	rec.Normalized[3] = math.NaN()
	rec.Raw[5] = math.Inf(1)
	rec.Raw[7] = -4
	if n := rec.CorruptValues(); n != 3 {
		t.Fatalf("CorruptValues = %d, want 3", n)
	}
	if n := rec.Repair(&prev); n != 3 {
		t.Fatalf("Repair = %d, want 3", n)
	}
	if rec.Normalized[3] != 100 || rec.Raw[5] != 5 || rec.Raw[7] != 7 {
		t.Errorf("repair carried wrong values: %v %v %v",
			rec.Normalized[3], rec.Raw[5], rec.Raw[7])
	}
	if rec.CorruptValues() != 0 {
		t.Error("repaired record still corrupt")
	}
	// Untouched values survive.
	if rec.Normalized[0] != 90 || rec.Raw[0] != 0 {
		t.Error("repair touched clean values")
	}
}

func TestSanitizeTraceCleanIsFree(t *testing.T) {
	recs := traceWithHours(0, 1, 2, 3)
	out, dropped := SanitizeTrace(recs)
	if dropped != 0 {
		t.Fatalf("dropped = %d on a clean trace", dropped)
	}
	if &out[0] != &recs[0] {
		t.Error("clean trace was copied")
	}
}

func TestSanitizeTraceDrops(t *testing.T) {
	recs := traceWithHours(0, 1, 2, 3, 4, 5)
	recs[1].Normalized[0] = math.NaN() // corrupt values
	recs[3].Hour = 2                   // duplicate hour vs. surviving predecessor
	recs[4].Hour = 1                   // out of order
	out, dropped := SanitizeTrace(recs)
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	if len(out) != 3 || out[0].Hour != 0 || out[1].Hour != 2 || out[2].Hour != 5 {
		hours := make([]int, len(out))
		for i := range out {
			hours[i] = out[i].Hour
		}
		t.Errorf("surviving hours = %v, want [0 2 5]", hours)
	}
	// The input is never mutated.
	if recs[1].Hour != 1 {
		t.Error("SanitizeTrace mutated its input")
	}
}
