// Package smart defines the SMART (Self-Monitoring, Analysis and Reporting
// Technology) attribute catalogue, the sample/record types shared by the
// whole library, and the feature sets used by the DSN'14 CART paper:
// the 12 "basic" features of Table II, the 19-feature set selected by
// expertise in the authors' earlier work, and the 13 "critical" features
// selected by non-parametric statistics in §IV-B.
package smart

import (
	"fmt"
	"math"
)

// AttrID is a SMART attribute identifier as reported by drives
// (e.g. 5 = Reallocated Sectors Count, 194 = Temperature Celsius).
type AttrID int

// The SMART attributes modelled by this library. The set mirrors the 23
// "meaningful" attributes the paper reads out of each SMART record (§IV-A).
const (
	RawReadErrorRate      AttrID = 1
	ThroughputPerformance AttrID = 2
	SpinUpTime            AttrID = 3
	StartStopCount        AttrID = 4
	ReallocatedSectors    AttrID = 5
	SeekErrorRate         AttrID = 7
	SeekTimePerformance   AttrID = 8
	PowerOnHours          AttrID = 9
	SpinRetryCount        AttrID = 10
	PowerCycleCount       AttrID = 12
	SATADownshiftErrors   AttrID = 183
	EndToEndError         AttrID = 184
	ReportedUncorrectable AttrID = 187
	CommandTimeout        AttrID = 188
	HighFlyWrites         AttrID = 189
	AirflowTemperature    AttrID = 190
	PowerOffRetractCount  AttrID = 192
	LoadCycleCount        AttrID = 193
	TemperatureCelsius    AttrID = 194
	HardwareECCRecovered  AttrID = 195
	CurrentPendingSectors AttrID = 197
	OfflineUncorrectable  AttrID = 198
	UDMACRCErrorCount     AttrID = 199
)

// AttrInfo describes one catalogued SMART attribute.
type AttrInfo struct {
	ID   AttrID
	Name string
	// HigherIsBetter reports whether larger normalized values indicate a
	// healthier drive. This holds for every attribute in the catalogue
	// (normalized SMART values decay from ~100/200 toward the threshold),
	// but raw values move the other way for error counters.
	HigherIsBetter bool
	// Counter reports whether the raw value is a monotonically
	// non-decreasing event counter (e.g. reallocated sectors) as opposed
	// to an instantaneous measurement (e.g. temperature).
	Counter bool
}

// Catalogue lists, in canonical order, every attribute carried by a Record.
// The order defines the layout of Record.Normalized and Record.Raw.
var Catalogue = []AttrInfo{
	{RawReadErrorRate, "Raw Read Error Rate", true, true},
	{ThroughputPerformance, "Throughput Performance", true, false},
	{SpinUpTime, "Spin Up Time", true, false},
	{StartStopCount, "Start/Stop Count", true, true},
	{ReallocatedSectors, "Reallocated Sectors Count", true, true},
	{SeekErrorRate, "Seek Error Rate", true, true},
	{SeekTimePerformance, "Seek Time Performance", true, false},
	{PowerOnHours, "Power On Hours", true, true},
	{SpinRetryCount, "Spin Retry Count", true, true},
	{PowerCycleCount, "Power Cycle Count", true, true},
	{SATADownshiftErrors, "SATA Downshift Error Count", true, true},
	{EndToEndError, "End-to-End Error", true, true},
	{ReportedUncorrectable, "Reported Uncorrectable Errors", true, true},
	{CommandTimeout, "Command Timeout", true, true},
	{HighFlyWrites, "High Fly Writes", true, true},
	{AirflowTemperature, "Airflow Temperature", true, false},
	{PowerOffRetractCount, "Power-off Retract Count", true, true},
	{LoadCycleCount, "Load Cycle Count", true, true},
	{TemperatureCelsius, "Temperature Celsius", true, false},
	{HardwareECCRecovered, "Hardware ECC Recovered", true, true},
	{CurrentPendingSectors, "Current Pending Sector Count", true, true},
	{OfflineUncorrectable, "Offline Uncorrectable Sector Count", true, true},
	{UDMACRCErrorCount, "UltraDMA CRC Error Count", true, true},
}

// NumAttrs is the number of catalogued attributes carried by each Record.
var NumAttrs = len(Catalogue)

// indexOf maps an AttrID to its position in Catalogue.
var indexOf = func() map[AttrID]int {
	m := make(map[AttrID]int, len(Catalogue))
	for i, a := range Catalogue {
		m[a.ID] = i
	}
	return m
}()

// Index returns the position of id within the Catalogue (and therefore
// within Record.Normalized / Record.Raw). The second result is false if the
// attribute is not catalogued.
func Index(id AttrID) (int, bool) {
	i, ok := indexOf[id]
	return i, ok
}

// Info returns the catalogue entry for id.
func Info(id AttrID) (AttrInfo, bool) {
	i, ok := indexOf[id]
	if !ok {
		return AttrInfo{}, false
	}
	return Catalogue[i], true
}

// Name returns the human-readable attribute name, or "SMART <id>" for
// attributes outside the catalogue.
func Name(id AttrID) string {
	if info, ok := Info(id); ok {
		return info.Name
	}
	return fmt.Sprintf("SMART %d", int(id))
}

// Record is one hourly SMART reading of one drive. Normalized values follow
// the SMART convention of ranging over 1..253 (larger is healthier); raw
// values are vendor-specific counters or measurements. Both slices use the
// Catalogue order.
type Record struct {
	// Hour is the absolute sample time, in hours since the observation
	// period began.
	Hour int
	// Normalized holds the 1..253 normalized attribute values.
	Normalized [23]float64
	// Raw holds the vendor raw values.
	Raw [23]float64
}

// NormalizedOf returns the normalized value of attribute id.
func (r *Record) NormalizedOf(id AttrID) float64 {
	i, ok := indexOf[id]
	if !ok {
		return 0
	}
	return r.Normalized[i]
}

// RawOf returns the raw value of attribute id.
func (r *Record) RawOf(id AttrID) float64 {
	i, ok := indexOf[id]
	if !ok {
		return 0
	}
	return r.Raw[i]
}

// Kind distinguishes the three feature kinds a model input can draw from a
// SMART record stream.
type Kind int

const (
	// Normalized selects the 1..253 normalized attribute value.
	Normalized Kind = iota + 1
	// Raw selects the vendor raw value.
	Raw
	// ChangeRate selects the difference between the current value and the
	// value IntervalHours earlier (normalized or raw according to
	// RateOfRaw). The paper uses 6-hour change rates (§IV-B).
	ChangeRate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Normalized:
		return "normalized"
	case Raw:
		return "raw"
	case ChangeRate:
		return "rate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Feature describes one model input column.
type Feature struct {
	Attr AttrID
	Kind Kind
	// IntervalHours is the change-rate interval; meaningful only when
	// Kind == ChangeRate.
	IntervalHours int
	// RateOfRaw selects the raw (rather than normalized) value stream for
	// a ChangeRate feature.
	RateOfRaw bool
}

// String returns a compact human-readable description such as
// "Reported Uncorrectable Errors", "Reallocated Sectors Count (raw)" or
// "Δ6h Hardware ECC Recovered".
func (f Feature) String() string {
	switch f.Kind {
	case Raw:
		return Name(f.Attr) + " (raw)"
	case ChangeRate:
		src := ""
		if f.RateOfRaw {
			src = " (raw)"
		}
		return fmt.Sprintf("Δ%dh %s%s", f.IntervalHours, Name(f.Attr), src)
	default:
		return Name(f.Attr)
	}
}

// FeatureSet is an ordered list of model input columns.
type FeatureSet []Feature

// Names returns the String() form of every feature, in order.
func (fs FeatureSet) Names() []string {
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.String()
	}
	return names
}

// MaxInterval returns the largest change-rate interval used by the set,
// i.e. the history depth (in hours) needed before the first feature vector
// can be extracted. It returns 0 when the set uses no change rates.
func (fs FeatureSet) MaxInterval() int {
	maxIv := 0
	for _, f := range fs {
		if f.Kind == ChangeRate && f.IntervalHours > maxIv {
			maxIv = f.IntervalHours
		}
	}
	return maxIv
}

// BasicFeatures returns the 12 preliminarily selected features of the
// paper's Table II: ten normalized values plus the raw values of
// Reallocated Sectors Count and Current Pending Sector Count.
func BasicFeatures() FeatureSet {
	return FeatureSet{
		{Attr: RawReadErrorRate, Kind: Normalized},
		{Attr: SpinUpTime, Kind: Normalized},
		{Attr: ReallocatedSectors, Kind: Normalized},
		{Attr: SeekErrorRate, Kind: Normalized},
		{Attr: PowerOnHours, Kind: Normalized},
		{Attr: ReportedUncorrectable, Kind: Normalized},
		{Attr: HighFlyWrites, Kind: Normalized},
		{Attr: TemperatureCelsius, Kind: Normalized},
		{Attr: HardwareECCRecovered, Kind: Normalized},
		{Attr: CurrentPendingSectors, Kind: Normalized},
		{Attr: ReallocatedSectors, Kind: Raw},
		{Attr: CurrentPendingSectors, Kind: Raw},
	}
}

// CriticalFeatures returns the 13 features the paper selects with
// non-parametric statistics (§IV-B): the basic set minus both Current
// Pending Sector Count columns, plus the 6-hour change rates of Raw Read
// Error Rate, Hardware ECC Recovered and the raw Reallocated Sectors Count.
//
// This is the paper's published outcome; the featsel package re-derives a
// selection of this shape from data.
func CriticalFeatures() FeatureSet {
	return FeatureSet{
		{Attr: RawReadErrorRate, Kind: Normalized},
		{Attr: SpinUpTime, Kind: Normalized},
		{Attr: ReallocatedSectors, Kind: Normalized},
		{Attr: SeekErrorRate, Kind: Normalized},
		{Attr: PowerOnHours, Kind: Normalized},
		{Attr: ReportedUncorrectable, Kind: Normalized},
		{Attr: HighFlyWrites, Kind: Normalized},
		{Attr: TemperatureCelsius, Kind: Normalized},
		{Attr: HardwareECCRecovered, Kind: Normalized},
		{Attr: ReallocatedSectors, Kind: Raw},
		{Attr: RawReadErrorRate, Kind: ChangeRate, IntervalHours: 6},
		{Attr: HardwareECCRecovered, Kind: ChangeRate, IntervalHours: 6},
		{Attr: ReallocatedSectors, Kind: ChangeRate, IntervalHours: 6, RateOfRaw: true},
	}
}

// ExpertFeatures returns the 19-feature set "selected by expertise" in the
// authors' earlier BP ANN work [11], used as one of the three comparison
// sets in Table III. The DSN'14 paper does not enumerate it, so this is our
// instantiation (documented in DESIGN.md): the 12 basic features plus four
// additional normalized attributes and three 24-hour change rates.
func ExpertFeatures() FeatureSet {
	return append(BasicFeatures(),
		Feature{Attr: SpinRetryCount, Kind: Normalized},
		Feature{Attr: OfflineUncorrectable, Kind: Normalized},
		Feature{Attr: UDMACRCErrorCount, Kind: Normalized},
		Feature{Attr: CommandTimeout, Kind: Normalized},
		Feature{Attr: SeekErrorRate, Kind: ChangeRate, IntervalHours: 24},
		Feature{Attr: TemperatureCelsius, Kind: ChangeRate, IntervalHours: 24},
		Feature{Attr: CurrentPendingSectors, Kind: ChangeRate, IntervalHours: 24, RateOfRaw: true},
	)
}

// Extract computes the feature vector for the record at index i of a
// chronological per-drive trace. It returns false when i is too early in
// the trace for the deepest change-rate interval: change rates need the
// value IntervalHours earlier, which Extract locates by Hour (traces may
// have missing samples; the closest record at or before Hour-Interval is
// used, and the rate is scaled to the actual elapsed time).
func (fs FeatureSet) Extract(trace []Record, i int, dst []float64) bool {
	if len(dst) < len(fs) {
		return false
	}
	cur := &trace[i]
	for k, f := range fs {
		switch f.Kind {
		case Normalized:
			dst[k] = cur.NormalizedOf(f.Attr)
		case Raw:
			dst[k] = cur.RawOf(f.Attr)
		case ChangeRate:
			j, ok := lookback(trace, i, f.IntervalHours)
			if !ok {
				return false
			}
			prev := &trace[j]
			elapsed := float64(cur.Hour - prev.Hour)
			if elapsed <= 0 {
				return false
			}
			var delta float64
			if f.RateOfRaw {
				delta = cur.RawOf(f.Attr) - prev.RawOf(f.Attr)
			} else {
				delta = cur.NormalizedOf(f.Attr) - prev.NormalizedOf(f.Attr)
			}
			// Scale to a per-interval rate so gaps from missing
			// samples do not inflate the feature.
			dst[k] = delta * float64(f.IntervalHours) / elapsed
		}
	}
	return true
}

// lookback finds the most recent record at or before trace[i].Hour-interval.
func lookback(trace []Record, i, interval int) (int, bool) {
	target := trace[i].Hour - interval
	for j := i - 1; j >= 0; j-- {
		if trace[j].Hour <= target {
			return j, true
		}
	}
	return 0, false
}

// Value-domain bounds for corruption checks. Normalized SMART values live
// in 1..253 by convention, with 0 and 254/255 appearing as sentinel or
// vendor quirks; raw values are non-negative counters/measurements that fit
// in 48 bits on every real drive. Anything outside these bounds (or
// non-finite) is telemetry corruption, not drive state.
const (
	// MaxNormalized is the largest normalized value a collector can emit.
	MaxNormalized = 255
	// MaxRaw bounds raw counters (48-bit SMART raw fields < 2.9e14).
	MaxRaw = 1e15
)

// ValidNormalized reports whether v is a plausible normalized SMART value:
// finite and within [0, MaxNormalized].
func ValidNormalized(v float64) bool {
	return !math.IsNaN(v) && v >= 0 && v <= MaxNormalized
}

// ValidRaw reports whether v is a plausible raw SMART value: finite and
// within [0, MaxRaw].
func ValidRaw(v float64) bool {
	return !math.IsNaN(v) && v >= 0 && v <= MaxRaw
}

// CorruptValues counts the attribute values of r that no healthy collector
// emits: NaN, ±Inf, negative, or outside the attribute domain. A zero
// return means the record is clean.
func (r *Record) CorruptValues() int {
	bad := 0
	for i := 0; i < NumAttrs; i++ {
		if !ValidNormalized(r.Normalized[i]) {
			bad++
		}
		if !ValidRaw(r.Raw[i]) {
			bad++
		}
	}
	return bad
}

// Repair overwrites every corrupt value of r with the corresponding value
// from prev — last-observation-carried-forward, the standard repair for
// point corruption in slowly-varying SMART streams — and returns how many
// values it replaced. prev must itself be clean (e.g. the drive's last
// accepted record) for the result to be clean.
func (r *Record) Repair(prev *Record) int {
	repaired := 0
	for i := 0; i < NumAttrs; i++ {
		if !ValidNormalized(r.Normalized[i]) {
			r.Normalized[i] = prev.Normalized[i]
			repaired++
		}
		if !ValidRaw(r.Raw[i]) {
			r.Raw[i] = prev.Raw[i]
			repaired++
		}
	}
	return repaired
}

// SanitizeTrace drops the records of a chronological per-drive trace that
// offline pipelines must not score: records carrying corrupt values and
// records whose Hour does not strictly advance (duplicates and
// out-of-order arrivals). It returns the surviving records and the number
// dropped. A clean trace is returned as-is with no copy, so sanitizing
// well-formed data is free.
func SanitizeTrace(recs []Record) ([]Record, int) {
	for i := range recs {
		if badSample(recs, i) {
			// First offender: copy the clean prefix, then filter the rest.
			out := make([]Record, i, len(recs))
			copy(out, recs[:i])
			for j := i; j < len(recs); j++ {
				r := recs[j]
				if r.CorruptValues() > 0 {
					continue
				}
				if n := len(out); n > 0 && r.Hour <= out[n-1].Hour {
					continue
				}
				out = append(out, r)
			}
			return out, len(recs) - len(out)
		}
	}
	return recs, 0
}

// badSample reports whether recs[i] would be dropped by SanitizeTrace
// given that recs[:i] is clean.
func badSample(recs []Record, i int) bool {
	if recs[i].CorruptValues() > 0 {
		return true
	}
	return i > 0 && recs[i].Hour <= recs[i-1].Hour
}
