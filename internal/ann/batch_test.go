package ann

import (
	"math/rand"
	"testing"
)

// TestPredictBatchBitIdentical proves the batch forward pass matches the
// per-sample path exactly and reuses a caller-provided output buffer.
func TestPredictBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		x = append(x, []float64{a, b, c})
		if a+b-c > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	n, err := Train(x, y, nil, Config{Hidden: 6, Epochs: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(x))
	out := n.PredictBatch(x, dst)
	if &out[0] != &dst[0] {
		t.Fatal("PredictBatch did not reuse the provided buffer")
	}
	for i := range x {
		if want := n.Predict(x[i]); out[i] != want {
			t.Fatalf("PredictBatch[%d] = %v, want %v", i, out[i], want)
		}
	}
	// nil dst allocates a correctly sized result.
	out2 := n.PredictBatch(x[:7], nil)
	if len(out2) != 7 {
		t.Fatalf("PredictBatch(nil dst) returned %d results, want 7", len(out2))
	}
	for i := range out2 {
		if out2[i] != out[i] {
			t.Fatalf("PredictBatch(nil dst)[%d] diverged", i)
		}
	}
}
