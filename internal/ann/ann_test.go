package ann

import (
	"math"
	"math/rand"
	"testing"
)

func TestLearnsLinearlySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x = append(x, []float64{a, b})
		if a+b > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	n, err := Train(x, y, nil, Config{Hidden: 4, Epochs: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range x {
		if (n.Predict(x[i]) < 0) != (y[i] < 0) {
			errs++
		}
	}
	if errs > 12 { // 3%
		t.Errorf("separable errors = %d/400", errs)
	}
}

func TestLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x = append(x, []float64{a, b})
		if (a < 0) != (b < 0) {
			y = append(y, -1)
		} else {
			y = append(y, 1)
		}
	}
	n, err := Train(x, y, nil, Config{Hidden: 8, Epochs: 400, LearningRate: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range x {
		if (n.Predict(x[i]) < 0) != (y[i] < 0) {
			errs++
		}
	}
	if errs > 60 { // 10%: XOR is the classic non-linear benchmark
		t.Errorf("XOR errors = %d/600", errs)
	}
}

func TestOutputsBounded(t *testing.T) {
	x := [][]float64{{1, 2}, {-1, 0}, {3, -3}, {0, 0}}
	y := []float64{1, -1, 1, -1}
	n, err := Train(x, y, nil, Config{Epochs: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := -10; i <= 10; i++ {
		out := n.Predict([]float64{float64(i), float64(-i)})
		if out <= -1 || out >= 1 || math.IsNaN(out) {
			t.Fatalf("Predict out of (-1,1): %v", out)
		}
	}
}

func TestSampleWeightsMatter(t *testing.T) {
	// A single ambiguous cluster: 30% failed. Unweighted, the net should
	// call it good; with failed samples weighted 10×, failed.
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		x = append(x, []float64{rng.NormFloat64() * 0.01})
		if i < 90 {
			y = append(y, -1)
		} else {
			y = append(y, 1)
		}
	}
	plain, err := Train(x, y, nil, Config{Hidden: 3, Epochs: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Predict([]float64{0}) < 0 {
		t.Error("unweighted net should predict the majority class (good)")
	}
	w := make([]float64, len(x))
	for i := range w {
		if y[i] < 0 {
			w[i] = 10
		} else {
			w[i] = 1
		}
	}
	boosted, err := Train(x, y, w, Config{Hidden: 3, Epochs: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if boosted.Predict([]float64{0}) > 0 {
		t.Error("10×-weighted failed class should flip the prediction")
	}
}

func TestTrainValidation(t *testing.T) {
	ok := [][]float64{{1}, {2}}
	cases := []struct {
		name string
		x    [][]float64
		y, w []float64
	}{
		{"empty", nil, nil, nil},
		{"target mismatch", ok, []float64{1}, nil},
		{"weight mismatch", ok, []float64{1, -1}, []float64{1}},
		{"ragged", [][]float64{{1}, {2, 3}}, []float64{1, -1}, nil},
		{"zero features", [][]float64{{}, {}}, []float64{1, -1}, nil},
	}
	for _, tc := range cases {
		if _, err := Train(tc.x, tc.y, tc.w, Config{Epochs: 1}); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x = append(x, []float64{rng.NormFloat64()})
		y = append(y, float64(1-2*(i%2)))
	}
	a, _ := Train(x, y, nil, Config{Epochs: 5, Seed: 9})
	b, _ := Train(x, y, nil, Config{Epochs: 5, Seed: 9})
	for i := range x {
		if a.Predict(x[i]) != b.Predict(x[i]) {
			t.Fatal("same seed produced different networks")
		}
	}
	c, _ := Train(x, y, nil, Config{Epochs: 5, Seed: 10})
	diff := false
	for i := range x {
		if a.Predict(x[i]) != c.Predict(x[i]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical networks")
	}
}

func TestEarlyStopping(t *testing.T) {
	// Trivial data converges immediately; with patience set, training
	// must not take the full epoch budget (observable only indirectly —
	// we assert it still learns).
	x := [][]float64{{-1}, {-0.9}, {0.9}, {1}}
	y := []float64{-1, -1, 1, 1}
	n, err := Train(x, y, nil, Config{Hidden: 2, Epochs: 10000, Patience: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if n.Predict([]float64{-1}) > 0 || n.Predict([]float64{1}) < 0 {
		t.Error("early-stopped net failed to learn trivial data")
	}
}

func TestStandardizationHandlesConstantFeature(t *testing.T) {
	x := [][]float64{{5, -1}, {5, -0.5}, {5, 0.5}, {5, 1}}
	y := []float64{-1, -1, 1, 1}
	n, err := Train(x, y, nil, Config{Hidden: 2, Epochs: 200, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if n.Predict([]float64{5, 1}) < 0 || n.Predict([]float64{5, -1}) > 0 {
		t.Error("constant feature broke learning")
	}
	for _, s := range n.Std {
		if s <= 0 || math.IsNaN(s) {
			t.Errorf("bad std %v", s)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	x := [][]float64{{0, 1}, {1, 0}, {1, 1}, {0, 0}}
	y := []float64{1, 1, -1, -1}
	n, err := Train(x, y, nil, Config{Hidden: 3, Epochs: 20, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	data, err := n.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if back.Predict(x[i]) != n.Predict(x[i]) {
			t.Fatal("round-tripped network predicts differently")
		}
	}
}

func TestUnmarshalRejectsBadNetworks(t *testing.T) {
	cases := []string{
		`not json`,
		`{"numInputs":0,"hidden":1,"w1":[],"w2":[],"mean":[],"std":[]}`,
		`{"numInputs":1,"hidden":2,"w1":[[1,1]],"w2":[1,1,1],"mean":[0],"std":[1]}`,
		`{"numInputs":2,"hidden":1,"w1":[[1,1]],"w2":[1,1],"mean":[0,0],"std":[1,1]}`,
	}
	for i, raw := range cases {
		if _, err := Unmarshal([]byte(raw)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPredictFailed(t *testing.T) {
	x := [][]float64{{-1}, {-0.9}, {0.9}, {1}}
	y := []float64{-1, -1, 1, 1}
	n, _ := Train(x, y, nil, Config{Hidden: 2, Epochs: 500, Seed: 14})
	if !n.PredictFailed([]float64{-1}) {
		t.Error("PredictFailed(-1) = false")
	}
	if n.PredictFailed([]float64{1}) {
		t.Error("PredictFailed(1) = true")
	}
}
