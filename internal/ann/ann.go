// Package ann implements the Backpropagation artificial neural network
// used by the paper as the state-of-the-art control model (from the
// authors' earlier MSST'13 work [11]): a three-layer feed-forward network
// with one hidden layer, trained by stochastic gradient descent on a
// squared-error loss with ±1 targets. The paper's configurations use
// hidden sizes 30/13/20 for the 19/13/12-feature sets, a 0.1 learning rate
// and at most 400 iterations.
package ann

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config holds the training hyper-parameters. Zero fields take the paper's
// defaults.
type Config struct {
	// Hidden is the hidden-layer size. Default: same as the input size
	// (the paper's 13-feature configuration).
	Hidden int
	// LearningRate is the SGD step. Default 0.1.
	LearningRate float64
	// Epochs is the maximum number of passes over the data. Default 400.
	Epochs int
	// Patience stops training early when the epoch loss has not improved
	// by Tolerance for this many consecutive epochs. 0 disables early
	// stopping.
	Patience int
	// Tolerance is the minimum relative loss improvement counted as
	// progress. Default 1e-4 (only meaningful with Patience > 0).
	Tolerance float64
	// Seed drives weight initialization and sample shuffling.
	Seed int64
}

func (c Config) withDefaults(nin int) Config {
	if c.Hidden == 0 {
		c.Hidden = nin
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.Epochs == 0 {
		c.Epochs = 400
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-4
	}
	return c
}

// Network is a trained feed-forward network. Inputs are standardized with
// the training set's per-feature mean and deviation; both layers use tanh,
// so outputs lie in (−1, +1) matching the ±1 targets.
type Network struct {
	// NumInputs and Hidden are the layer sizes.
	NumInputs int `json:"numInputs"`
	Hidden    int `json:"hidden"`
	// W1 holds hidden×(inputs+1) first-layer weights (last column bias);
	// W2 holds hidden+1 output weights (last element bias).
	W1 [][]float64 `json:"w1"`
	W2 []float64   `json:"w2"`
	// Mean and Std are the standardization parameters.
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// Train fits a network on feature matrix x with ±1 targets y and optional
// per-sample weights w (nil = all 1); weights scale each sample's gradient,
// which is how the failed-class boost enters the baseline model.
func Train(x [][]float64, y, w []float64, cfg Config) (*Network, error) {
	if len(x) == 0 {
		return nil, errors.New("ann: empty training set")
	}
	if len(y) != len(x) {
		return nil, fmt.Errorf("ann: %d samples but %d targets", len(x), len(y))
	}
	if w != nil && len(w) != len(x) {
		return nil, fmt.Errorf("ann: %d samples but %d weights", len(x), len(w))
	}
	nin := len(x[0])
	if nin == 0 {
		return nil, errors.New("ann: zero-length feature vectors")
	}
	for i := range x {
		if len(x[i]) != nin {
			return nil, fmt.Errorf("ann: ragged feature matrix at row %d", i)
		}
	}
	cfg = cfg.withDefaults(nin)
	rng := rand.New(rand.NewSource(cfg.Seed))

	n := &Network{NumInputs: nin, Hidden: cfg.Hidden}
	n.Mean, n.Std = standardization(x)
	n.W1 = make([][]float64, cfg.Hidden)
	scale1 := 1 / math.Sqrt(float64(nin+1))
	for h := range n.W1 {
		n.W1[h] = make([]float64, nin+1)
		for j := range n.W1[h] {
			n.W1[h][j] = rng.NormFloat64() * scale1
		}
	}
	n.W2 = make([]float64, cfg.Hidden+1)
	scale2 := 1 / math.Sqrt(float64(cfg.Hidden+1))
	for j := range n.W2 {
		n.W2[j] = rng.NormFloat64() * scale2
	}

	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	xi := make([]float64, nin) // standardized input
	hid := make([]float64, cfg.Hidden)

	bestLoss := math.Inf(1)
	stall := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var loss, wsum float64
		for _, i := range order {
			sw := 1.0
			if w != nil {
				sw = w[i]
			}
			if sw == 0 {
				continue
			}
			n.standardize(x[i], xi)
			out := n.forward(xi, hid)
			err := out - y[i]
			loss += sw * err * err
			wsum += sw

			// Backpropagate the weighted squared error.
			lr := cfg.LearningRate * sw
			dOut := err * (1 - out*out) // tanh'
			for h := 0; h < cfg.Hidden; h++ {
				dHid := dOut * n.W2[h] * (1 - hid[h]*hid[h])
				n.W2[h] -= lr * dOut * hid[h]
				w1h := n.W1[h]
				for j := 0; j < nin; j++ {
					w1h[j] -= lr * dHid * xi[j]
				}
				w1h[nin] -= lr * dHid
			}
			n.W2[cfg.Hidden] -= lr * dOut
		}
		if cfg.Patience > 0 && wsum > 0 {
			loss /= wsum
			if loss < bestLoss*(1-cfg.Tolerance) {
				bestLoss = loss
				stall = 0
			} else if stall++; stall >= cfg.Patience {
				break
			}
		}
	}
	return n, nil
}

// standardization computes per-feature mean and deviation (deviation floors
// at a tiny epsilon so constant features stay harmless).
func standardization(x [][]float64) (mean, std []float64) {
	nf := len(x[0])
	mean = make([]float64, nf)
	std = make([]float64, nf)
	for _, row := range x {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(x))
	}
	for _, row := range x {
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(x)))
		if std[j] < 1e-9 {
			std[j] = 1
		}
	}
	return mean, std
}

func (n *Network) standardize(x, dst []float64) {
	for j := range dst {
		dst[j] = (x[j] - n.Mean[j]) / n.Std[j]
	}
}

// forward computes the network output for a standardized input, filling
// hid with hidden activations.
func (n *Network) forward(xi, hid []float64) float64 {
	for h := 0; h < n.Hidden; h++ {
		w1h := n.W1[h]
		sum := w1h[n.NumInputs]
		for j := 0; j < n.NumInputs; j++ {
			sum += w1h[j] * xi[j]
		}
		hid[h] = math.Tanh(sum)
	}
	out := n.W2[n.Hidden]
	for h := 0; h < n.Hidden; h++ {
		out += n.W2[h] * hid[h]
	}
	return math.Tanh(out)
}

// Predict returns the network output in (−1, +1): positive means good,
// negative failed.
func (n *Network) Predict(x []float64) float64 {
	xi := make([]float64, n.NumInputs)
	hid := make([]float64, n.Hidden)
	n.standardize(x, xi)
	return n.forward(xi, hid)
}

// PredictFailed reports whether the network classifies x as failed.
func (n *Network) PredictFailed(x []float64) bool { return n.Predict(x) < 0 }

// PredictBatch scores a block of inputs into dst and returns it (nil or
// short dst allocates a fresh slice). Unlike per-sample Predict, the
// standardized-input and hidden-layer scratch is allocated once for the
// whole block and reused across samples, so large scans amortize the two
// small buffers instead of paying them per call. dst[i] equals
// Predict(xs[i]) bit for bit: each sample runs the exact same standardize
// + forward arithmetic.
func (n *Network) PredictBatch(xs [][]float64, dst []float64) []float64 {
	if cap(dst) < len(xs) {
		dst = make([]float64, len(xs))
	}
	dst = dst[:len(xs)]
	xi := make([]float64, n.NumInputs)
	hid := make([]float64, n.Hidden)
	for i, x := range xs {
		n.standardize(x, xi)
		dst[i] = n.forward(xi, hid)
	}
	return dst
}

// Marshal serializes the network to JSON.
func (n *Network) Marshal() ([]byte, error) { return json.Marshal(n) }

// Unmarshal deserializes a network and validates its shape.
func Unmarshal(data []byte) (*Network, error) {
	var n Network
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("ann: decode network: %w", err)
	}
	if n.NumInputs <= 0 || n.Hidden <= 0 {
		return nil, errors.New("ann: bad layer sizes")
	}
	if len(n.W1) != n.Hidden || len(n.W2) != n.Hidden+1 ||
		len(n.Mean) != n.NumInputs || len(n.Std) != n.NumInputs {
		return nil, errors.New("ann: inconsistent weight shapes")
	}
	for _, row := range n.W1 {
		if len(row) != n.NumInputs+1 {
			return nil, errors.New("ann: inconsistent first-layer shape")
		}
	}
	return &n, nil
}
