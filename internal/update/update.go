// Package update implements the paper's model-updating strategies
// (§V-B3): fixed ("train once, use forever"), accumulation (retrain weekly
// on all history) and replacing (retrain on the most recent c-week block
// and use the model for the next c weeks). The package decides which weeks
// of good samples train the model applied to any given prediction week;
// the experiments layer does the actual training.
package update

import (
	"fmt"
)

// Strategy enumerates the updating strategies.
type Strategy int

const (
	// Fixed trains once on week 1 and never updates.
	Fixed Strategy = iota + 1
	// Accumulation retrains every week on all weeks seen so far.
	Accumulation
	// Replacing retrains on the latest complete c-week block and applies
	// the model to the following c weeks.
	Replacing
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Fixed:
		return "fixed"
	case Accumulation:
		return "accumulation"
	case Replacing:
		return "replacing"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Plan is a concrete updating plan.
type Plan struct {
	// Strategy selects the scheme.
	Strategy Strategy
	// CycleWeeks is the replacing cycle length c (paper tries 1, 2, 3);
	// ignored by the other strategies.
	CycleWeeks int
}

// String renders the plan like the paper's figure legends.
func (p Plan) String() string {
	if p.Strategy == Replacing {
		unit := "weeks"
		if p.CycleWeeks == 1 {
			unit = "week"
		}
		return fmt.Sprintf("%d-%s replacing", p.CycleWeeks, unit)
	}
	return p.Strategy.String()
}

// Validate checks the plan.
func (p Plan) Validate() error {
	switch p.Strategy {
	case Fixed, Accumulation:
		return nil
	case Replacing:
		if p.CycleWeeks < 1 {
			return fmt.Errorf("update: replacing needs a cycle ≥ 1 week, got %d", p.CycleWeeks)
		}
		return nil
	default:
		return fmt.Errorf("update: unknown strategy %d", int(p.Strategy))
	}
}

// TrainWeeks returns the 1-based inclusive week range [start, end] whose
// good samples train the model applied to prediction week w (w ≥ 2), and
// whether that differs from the range for week w−1 (i.e. whether a retrain
// happens at the start of week w).
//
//   - Fixed: always week 1.
//   - Accumulation: weeks 1..w−1, retraining every week.
//   - Replacing with cycle c: the latest complete c-week block, i.e. weeks
//     (i−1)c+1 .. ic with i = ⌊(w−1)/c⌋; for early weeks without a complete
//     block it falls back to week 1.
func (p Plan) TrainWeeks(w int) (start, end int, retrain bool, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, false, err
	}
	if w < 2 {
		return 0, 0, false, fmt.Errorf("update: prediction starts at week 2, got %d", w)
	}
	switch p.Strategy {
	case Fixed:
		return 1, 1, w == 2, nil
	case Accumulation:
		return 1, w - 1, true, nil
	default: // Replacing
		c := p.CycleWeeks
		i := (w - 1) / c
		if i < 1 {
			return 1, 1, w == 2, nil
		}
		start = (i-1)*c + 1
		end = i * c
		// A retrain happens when this week starts a new prediction
		// block (or is the very first prediction week).
		prevI := (w - 2) / c
		return start, end, w == 2 || i != prevI, nil
	}
}

// Plans returns the five plans evaluated in the paper's Figures 6–9:
// 1-, 2- and 3-week replacing, fixed, and accumulation.
func Plans() []Plan {
	return []Plan{
		{Strategy: Replacing, CycleWeeks: 1},
		{Strategy: Replacing, CycleWeeks: 2},
		{Strategy: Replacing, CycleWeeks: 3},
		{Strategy: Fixed},
		{Strategy: Accumulation},
	}
}
