package update

import "testing"

func TestFixed(t *testing.T) {
	p := Plan{Strategy: Fixed}
	for w := 2; w <= 8; w++ {
		start, end, retrain, err := p.TrainWeeks(w)
		if err != nil {
			t.Fatal(err)
		}
		if start != 1 || end != 1 {
			t.Errorf("week %d: train weeks [%d,%d], want [1,1]", w, start, end)
		}
		if retrain != (w == 2) {
			t.Errorf("week %d: retrain = %v", w, retrain)
		}
	}
}

func TestAccumulation(t *testing.T) {
	p := Plan{Strategy: Accumulation}
	for w := 2; w <= 8; w++ {
		start, end, retrain, err := p.TrainWeeks(w)
		if err != nil {
			t.Fatal(err)
		}
		if start != 1 || end != w-1 || !retrain {
			t.Errorf("week %d: [%d,%d] retrain=%v, want [1,%d] true", w, start, end, retrain, w-1)
		}
	}
}

func TestReplacingOneWeek(t *testing.T) {
	p := Plan{Strategy: Replacing, CycleWeeks: 1}
	for w := 2; w <= 8; w++ {
		start, end, retrain, err := p.TrainWeeks(w)
		if err != nil {
			t.Fatal(err)
		}
		if start != w-1 || end != w-1 || !retrain {
			t.Errorf("week %d: [%d,%d] retrain=%v, want [%d,%d] true", w, start, end, retrain, w-1, w-1)
		}
	}
}

func TestReplacingTwoWeeks(t *testing.T) {
	p := Plan{Strategy: Replacing, CycleWeeks: 2}
	// Paper semantics: block i = weeks (i−1)c+1..ic predicts weeks
	// ic+1..(i+1)c.
	cases := []struct {
		week       int
		start, end int
		retrain    bool
	}{
		{2, 1, 1, true}, // no complete block yet → fall back to week 1
		{3, 1, 2, true}, // block 1 (weeks 1-2) predicts weeks 3-4
		{4, 1, 2, false},
		{5, 3, 4, true}, // block 2 predicts weeks 5-6
		{6, 3, 4, false},
		{7, 5, 6, true},
		{8, 5, 6, false},
	}
	for _, tc := range cases {
		start, end, retrain, err := p.TrainWeeks(tc.week)
		if err != nil {
			t.Fatal(err)
		}
		if start != tc.start || end != tc.end || retrain != tc.retrain {
			t.Errorf("week %d: [%d,%d] retrain=%v, want [%d,%d] %v",
				tc.week, start, end, retrain, tc.start, tc.end, tc.retrain)
		}
	}
}

func TestReplacingThreeWeeks(t *testing.T) {
	p := Plan{Strategy: Replacing, CycleWeeks: 3}
	start, end, _, err := p.TrainWeeks(7) // block 2 = weeks 4-6 predicts 7-9
	if err != nil {
		t.Fatal(err)
	}
	if start != 4 || end != 6 {
		t.Errorf("week 7: [%d,%d], want [4,6]", start, end)
	}
	start, end, _, err = p.TrainWeeks(4) // block 1 = weeks 1-3 predicts 4-6
	if err != nil {
		t.Fatal(err)
	}
	if start != 1 || end != 3 {
		t.Errorf("week 4: [%d,%d], want [1,3]", start, end)
	}
}

func TestValidation(t *testing.T) {
	if err := (Plan{Strategy: Replacing}).Validate(); err == nil {
		t.Error("replacing without cycle should fail")
	}
	if err := (Plan{Strategy: Strategy(9)}).Validate(); err == nil {
		t.Error("unknown strategy should fail")
	}
	if _, _, _, err := (Plan{Strategy: Fixed}).TrainWeeks(1); err == nil {
		t.Error("week 1 prediction should fail")
	}
	if _, _, _, err := (Plan{Strategy: Strategy(9)}).TrainWeeks(3); err == nil {
		t.Error("invalid plan should fail TrainWeeks")
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		p    Plan
		want string
	}{
		{Plan{Strategy: Fixed}, "fixed"},
		{Plan{Strategy: Accumulation}, "accumulation"},
		{Plan{Strategy: Replacing, CycleWeeks: 1}, "1-week replacing"},
		{Plan{Strategy: Replacing, CycleWeeks: 3}, "3-weeks replacing"},
	}
	for _, tc := range cases {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy string")
	}
}

func TestPlans(t *testing.T) {
	plans := Plans()
	if len(plans) != 5 {
		t.Fatalf("Plans = %d entries, want 5 (paper Figs. 6-9)", len(plans))
	}
	for _, p := range plans {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %v invalid: %v", p, err)
		}
	}
}

// TestTrainWeeksUnderWeekGaps injects telemetry blackouts — prediction
// weeks with no data at all — into every plan's schedule and checks the
// training alignment of the surviving weeks is unchanged. TrainWeeks is a
// pure function of the absolute (calendar) week number, so a missing week
// must never shift the replacing-block alignment of the weeks after it:
// a consumer that counted observed weeks instead would slide its blocks
// after every gap and train on the wrong data.
func TestTrainWeeksUnderWeekGaps(t *testing.T) {
	gaps := [][]int{
		{},           // no gap: the reference schedule itself
		{3},          // single missing week
		{4, 5},       // blackout across a block boundary
		{2, 3, 4, 5}, // long outage from the very first prediction week
		{7},          // gap at the end
	}
	for _, plan := range Plans() {
		// Dense reference alignment, computed with every week present.
		type align struct{ start, end int }
		ref := make(map[int]align)
		for w := 2; w <= 12; w++ {
			s, e, _, err := plan.TrainWeeks(w)
			if err != nil {
				t.Fatal(err)
			}
			ref[w] = align{s, e}
		}
		for _, gap := range gaps {
			missing := make(map[int]bool, len(gap))
			for _, w := range gap {
				missing[w] = true
			}
			for w := 2; w <= 12; w++ {
				if missing[w] {
					continue
				}
				s, e, _, err := plan.TrainWeeks(w)
				if err != nil {
					t.Fatal(err)
				}
				if (align{s, e}) != ref[w] {
					t.Errorf("%v: week %d with gap %v trains on [%d,%d], want [%d,%d]",
						plan, w, gap, s, e, ref[w].start, ref[w].end)
				}
			}
		}
	}
}

// TestReplacingBlockInvariants pins the block geometry for every cycle over
// a long horizon: once complete blocks exist, training ranges are exactly c
// weeks, end on block boundaries, and never touch the prediction week.
func TestReplacingBlockInvariants(t *testing.T) {
	for c := 1; c <= 4; c++ {
		p := Plan{Strategy: Replacing, CycleWeeks: c}
		prevStart, prevEnd := 0, 0
		for w := 2; w <= 40; w++ {
			start, end, retrain, err := p.TrainWeeks(w)
			if err != nil {
				t.Fatal(err)
			}
			if start < 1 || end < start || end >= w {
				t.Fatalf("c=%d week %d: impossible range [%d,%d]", c, w, start, end)
			}
			if w > c { // a complete block exists
				if end-start+1 != c {
					t.Errorf("c=%d week %d: block [%d,%d] is not %d weeks", c, w, start, end, c)
				}
				if end%c != 0 {
					t.Errorf("c=%d week %d: block [%d,%d] not aligned to the cycle", c, w, start, end)
				}
			}
			// The retrain flag must fire exactly when the range changes
			// along the dense schedule.
			changed := start != prevStart || end != prevEnd
			if w > 2 && retrain != changed {
				t.Errorf("c=%d week %d: retrain=%v but range change=%v", c, w, retrain, changed)
			}
			prevStart, prevEnd = start, end
		}
	}
}

// TestTrainWeeksRejectsBadWeeks pins the error cases: prediction before
// week 2 and invalid plans are construction-time errors, not clamps.
func TestTrainWeeksRejectsBadWeeks(t *testing.T) {
	for _, w := range []int{-1, 0, 1} {
		if _, _, _, err := (Plan{Strategy: Accumulation}).TrainWeeks(w); err == nil {
			t.Errorf("week %d accepted", w)
		}
	}
	if _, _, _, err := (Plan{Strategy: Replacing}).TrainWeeks(3); err == nil {
		t.Error("replacing with no cycle accepted")
	}
	if _, _, _, err := (Plan{Strategy: Strategy(99)}).TrainWeeks(3); err == nil {
		t.Error("unknown strategy accepted")
	}
}
