package detect

import (
	"sync"
	"sync/atomic"
)

// BatchPredictor is the optional extension of Predictor implemented by the
// compiled models (cart.CompiledTree, forest.Compiled, boost.Compiled) and
// ann.Network: it scores a whole block of feature vectors into dst,
// reusing it when large enough, and returns the scored slice. dst[i] must
// equal Predict(xs[i]) bit for bit — detectors rely on that to keep batch
// and streaming scans interchangeable.
type BatchPredictor interface {
	Predictor
	PredictBatch(xs [][]float64, dst []float64) []float64
}

// minScoreChunk bounds how finely scoreInto splits a block: chunks smaller
// than this cost more in goroutine churn than they save in scoring time.
const minScoreChunk = 256

// scoreInto fills dst[i] with model's score of xs[i], using the batch path
// when the model supports it and splitting the block into contiguous
// chunks across up to workers goroutines. Every sample's score lands at
// its own index, so the result is identical for every worker count.
func scoreInto(model Predictor, xs [][]float64, dst []float64, workers int) {
	bp, batched := model.(BatchPredictor)
	if workers <= 1 || len(xs) < 2*minScoreChunk {
		scoreChunk(model, bp, batched, xs, dst)
		return
	}
	chunks := (len(xs) + minScoreChunk - 1) / minScoreChunk
	if chunks > workers {
		chunks = workers
	}
	size := (len(xs) + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < len(xs); lo += size {
		hi := lo + size
		if hi > len(xs) {
			hi = len(xs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scoreChunk(model, bp, batched, xs[lo:hi], dst[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
}

// scoreChunk scores one contiguous chunk through the batch path when
// available, else sample by sample; with a caller-provided dst it is
// allocation-free either way.
//
//hddlint:noalloc
func scoreChunk(model Predictor, bp BatchPredictor, batched bool, xs [][]float64, dst []float64) {
	if batched {
		bp.PredictBatch(xs, dst)
		return
	}
	for i, x := range xs {
		dst[i] = model.Predict(x)
	}
}

// scanStride is how many consecutive drives a fleet-scan worker claims
// per atomic bump. Outcome is 24 bytes, so 8 drives ≥ three full cache
// lines of out: the claim counter is hit once per stride instead of once
// per drive, and two workers never interleave writes within one line
// (the only possibly-shared lines are the stride's edges). Results stay
// index-addressed and therefore identical for every worker count.
const scanStride = 8

// ScanBatch runs a detector over many drives' series on up to workers
// goroutines (≤ 1 scans serially). failHours[i] is drive i's failure
// instant, -1 (or a nil slice) for good drives. Outcomes are written at
// each drive's own index, so the result is identical for every worker
// count. The detector is shared across goroutines and must therefore be
// stateless across Detect calls, as Voting, MeanThreshold and MultiVoting
// are.
func ScanBatch(d Detector, series []Series, failHours []int, workers int) []Outcome {
	out := make([]Outcome, len(series))
	failHour := func(i int) int {
		if failHours == nil {
			return -1
		}
		return failHours[i]
	}
	if workers <= 1 || len(series) < 2 {
		for i := range series {
			out[i] = Scan(d, series[i], failHour(i))
		}
		return out
	}
	if workers > len(series) {
		workers = len(series)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := (int(next.Add(1)) - 1) * scanStride
				if lo >= len(series) {
					return
				}
				hi := min(lo+scanStride, len(series))
				for i := lo; i < hi; i++ {
					out[i] = Scan(d, series[i], failHour(i))
				}
			}
		}()
	}
	wg.Wait()
	return out
}
