//go:build race

package detect

// raceEnabled reports that this build runs under the race detector, whose
// instrumentation perturbs sync.Pool reuse and allocation counts.
const raceEnabled = true
