package detect

// The chunked detectors — float and binned alike — interleave scoring
// with a NaN-excluding window sweep so an early alarm stops scoring the
// rest of a series. The sweep state lives here, shared by both input
// types: valid scores are compacted in place into scores[:m] as the
// sweep advances (m never catches up with the chunk being scored), so
// the window arithmetic runs on valid samples only while the alarm index
// stays in series coordinates. Keeping one implementation is what makes
// the binned detectors' alarm indexes identical to the float ones by
// construction rather than by parallel maintenance.

// votingSweep is the voting-window state: alarm at the first index where
// more than n/2 of the last n valid scores fall below threshold.
type votingSweep struct {
	scores    []float64
	threshold float64
	n         int
	votes     int
	m         int
}

// feed sweeps scores[lo:hi] (just scored by the model) and returns the
// alarm index, or -1 to continue with the next chunk.
func (sw *votingSweep) feed(lo, hi int) int {
	idx, m, votes := voteFeed(sw.scores, sw.threshold, sw.n, sw.m, sw.votes, lo, hi)
	sw.m, sw.votes = m, votes
	return idx
}

// voteFeed is the voting sweep over explicit state: feed's body lifted
// to a free function so the per-drive whole-series sweeps (VoteAlarm)
// run it without materializing a votingSweep on the stack — the struct
// build-and-copy around the method call costs more than a short series'
// sweep. Returns the alarm index (or -1) plus the advanced cursor state.
//
//hddlint:noalloc //hddlint:nobc
func voteFeed(buf []float64, thr float64, n, m0, votes0, lo, hi int) (idx, m, votes int) {
	// The sweep is ~1/5 of fleet-scan time, so the loop keeps its state in
	// locals (the compiler would otherwise spill every sw field store) and
	// writes back only at the exits. Reslicing to hi makes the loop bound
	// the slice length, and the lo clamp proves the read index
	// non-negative; together they kill the checks on every i/j-indexed
	// load. The reslice keeps its own one-per-call check — it is the guard
	// that validates hi against the buffer.
	if lo < 0 {
		lo = 0
	}
	//hddlint:ignore bcecheck the reslice is the per-call hi guard; one check per feed, none per sample
	scores := buf[:hi]
	m, votes = m0, votes0
	// Bulk skip: across a run of ≥ n clean non-fails (s ≥ thr excludes
	// fails and NaN alike), the vote count only decays, so if the window
	// enters the run below alarm level (2·votes ≤ n) no alarm can fire
	// inside it, and the window leaves holding n clean samples: m jumps to
	// the run's end, votes to 0. That replaces the full sweep with one
	// predictable compare per sample on healthy stretches — which dominate
	// a fleet — while fail clusters take the exact per-sample path. The
	// skip needs m == i (no NaN was ever compacted away, so window
	// positions equal series positions); tryBulk stops a short clean gap
	// from being re-scanned once per sample between two fails.
	tryBulk := true
	i := lo
	for i < hi {
		if tryBulk && m == i && 2*votes <= n {
			j := i
			// The i = j hop below makes i and j mutually-recursive φs, which
			// defeats prove's constant-step induction (verified: even a
			// range-over-subslice rewrite keeps the check), so the two loads
			// on this path carry their checks by justified exception.
			//hddlint:ignore bcecheck lo ≤ i ≤ j < hi; the i=j hop is beyond prove's induction
			for j < hi && scores[j] >= thr {
				j++
			}
			if j-i >= n {
				m, votes = j, 0
				i = j
				continue
			}
			tryBulk = false
		}
		//hddlint:ignore bcecheck lo ≤ i < hi; same mutually-recursive induction limit as the bulk scan
		s := scores[i]
		i++
		if s != s {
			continue // invalid prediction: excluded, not counted
		}
		// The compaction cursor trails the read index (m ≤ i < hi always:
		// m advances at most once per sample), an invariant the prove pass
		// cannot see, so the m-indexed stores keep their checks.
		//hddlint:ignore bcecheck m ≤ i < hi is a sweep invariant invisible to the prove pass
		scores[m] = s
		m++
		if s < thr {
			votes++
			tryBulk = true // the blocking fail is behind us now
		}
		//hddlint:ignore bcecheck m-n-1 < m ≤ hi is the same cursor invariant
		if m > n && scores[m-n-1] < thr {
			votes--
		}
		if m >= n && 2*votes > n {
			return i - 1, m, votes
		}
	}
	return -1, m, votes
}

// meanSweep is the health-degree state: alarm at the first index where
// the mean of the last n valid scores drops below threshold. The rolling
// sum adds and subtracts the same scores in the same order as the
// streaming path, so the mean comparison is bit-identical.
type meanSweep struct {
	scores    []float64
	threshold float64
	n         int
	sum       float64
	cnt       int
}

// feed sweeps scores[lo:hi] and returns the alarm index, or -1.
func (sw *meanSweep) feed(lo, hi int) int {
	idx, cnt, sum := meanFeed(sw.scores, sw.threshold, sw.n, sw.cnt, sw.sum, lo, hi)
	sw.cnt, sw.sum = cnt, sum
	return idx
}

// meanFeed is the mean sweep over explicit state, lifted out of the
// method for the same per-drive call economy as voteFeed.
//
//hddlint:noalloc //hddlint:nobc
func meanFeed(buf []float64, thr float64, n, cnt0 int, sum0 float64, lo, hi int) (idx, cnt int, sum float64) {
	// Resliced to hi (and lo clamped) for the same bounds-check elision
	// as voteFeed.
	if lo < 0 {
		lo = 0
	}
	//hddlint:ignore bcecheck the reslice is the per-call hi guard; one check per feed, none per sample
	scores := buf[:hi]
	cnt, sum = cnt0, sum0
	for i := lo; i < hi; i++ {
		s := scores[i]
		if s != s {
			continue // invalid prediction: excluded, not counted
		}
		// cnt trails i exactly as votingSweep's m does.
		//hddlint:ignore bcecheck cnt ≤ i < hi is a sweep invariant invisible to the prove pass
		scores[cnt] = s
		cnt++
		sum += s
		if cnt > n {
			//hddlint:ignore bcecheck cnt-n-1 < cnt ≤ hi is the same cursor invariant
			sum -= scores[cnt-n-1]
		}
		if cnt >= n && sum/float64(n) < thr {
			return i, cnt, sum
		}
	}
	return -1, cnt, sum
}

// VoteAlarm sweeps one fully scored series through the voting window
// state machine and returns the alarm index in series coordinates (-1 =
// no alarm) plus the number of NaN scores the sweep excluded before
// stopping. It is exactly VotingBinned.Detect's sweep on a pre-scored
// series — a single feed over the whole slice is bit-identical to the
// detector's chunked feeds — exported so internal/sweep can score whole
// work items through the tiled kernels and still alarm at the same
// indexes. voters < 1 acts as 1, as the detectors do. scores is mutated:
// valid samples are compacted toward the front as the sweep advances.
func VoteAlarm(scores []float64, voters int, threshold float64) (idx, excluded int) {
	if voters < 1 {
		voters = 1
	}
	idx, m, _ := voteFeed(scores, threshold, voters, 0, 0, 0, len(scores))
	swept := len(scores)
	if idx >= 0 {
		swept = idx + 1
	}
	return idx, swept - m
}

// MeanAlarm is VoteAlarm for the health-degree (mean-threshold) sweep:
// alarm at the first index where the mean of the last voters valid
// scores drops below threshold, bit-identical to
// MeanThresholdBinned.Detect on the same scores. scores is mutated as in
// VoteAlarm.
func MeanAlarm(scores []float64, voters int, threshold float64) (idx, excluded int) {
	if voters < 1 {
		voters = 1
	}
	idx, cnt, _ := meanFeed(scores, threshold, voters, 0, 0, 0, len(scores))
	swept := len(scores)
	if idx >= 0 {
		swept = idx + 1
	}
	return idx, swept - cnt
}

// multiVoteAlarms turns one fully scored series into per-window alarm
// indexes: invalid scores are compacted away (remembering each valid
// score's series index), failed votes become prefix counts, and every
// window size reads the same counts — identical to running Voting per
// window size, at one scoring pass.
func multiVoteAlarms(scores []float64, voters []int, threshold float64) []int {
	out := make([]int, len(voters))
	for i := range out {
		out[i] = -1
	}
	orig := make([]int, 0, len(scores))
	valid := scores[:0]
	for i, s := range scores {
		if s != s {
			continue
		}
		valid = append(valid, s)
		orig = append(orig, i)
	}
	// Prefix counts of failed votes: fails[i] = #failed among valid[:i].
	fails := make([]int, len(valid)+1)
	for i, s := range valid {
		fails[i+1] = fails[i]
		if s < threshold {
			fails[i+1]++
		}
	}
	for vi, n := range voters {
		if n < 1 {
			n = 1
		}
		for i := n - 1; i < len(valid); i++ {
			if 2*(fails[i+1]-fails[i+1-n]) > n {
				out[vi] = orig[i]
				break
			}
		}
	}
	return out
}
