//go:build !race

package detect

// raceEnabled mirrors race_test.go for regular builds.
const raceEnabled = false
