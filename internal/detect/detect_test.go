package detect

import (
	"testing"

	"hddcart/internal/smart"
)

// scoreModel predicts the single feature value itself.
type scoreModel struct{}

func (scoreModel) Predict(x []float64) float64 { return x[0] }

// series turns scores into single-feature vectors.
func series(scores ...float64) [][]float64 {
	xs := make([][]float64, len(scores))
	for i, s := range scores {
		xs[i] = []float64{s}
	}
	return xs
}

func TestVotingSingleVoter(t *testing.T) {
	v := &Voting{Model: scoreModel{}, Voters: 1}
	if got := v.Detect(series(1, 1, -1, 1)); got != 2 {
		t.Errorf("Detect = %d, want 2", got)
	}
	if got := v.Detect(series(1, 1, 1)); got != -1 {
		t.Errorf("clean drive Detect = %d, want -1", got)
	}
}

func TestVotingZeroVotersBehavesAsOne(t *testing.T) {
	v := &Voting{Model: scoreModel{}}
	if got := v.Detect(series(1, -1)); got != 1 {
		t.Errorf("Detect = %d, want 1", got)
	}
}

func TestVotingMajority(t *testing.T) {
	v := &Voting{Model: scoreModel{}, Voters: 3}
	// Needs >1.5 (i.e. ≥2) failed among last 3.
	if got := v.Detect(series(-1, 1, -1, 1)); got != 2 {
		t.Errorf("Detect = %d, want 2", got)
	}
	// A lone failed sample must not alarm.
	if got := v.Detect(series(1, -1, 1, 1, 1)); got != -1 {
		t.Errorf("transient blip alarmed at %d", got)
	}
}

func TestVotingSuppressesShortEpisodes(t *testing.T) {
	// 3-hour episode in an otherwise healthy drive: N=7 must not alarm,
	// N=1 must.
	s := series(1, 1, 1, -1, -1, -1, 1, 1, 1, 1, 1)
	if got := (&Voting{Model: scoreModel{}, Voters: 7}).Detect(s); got != -1 {
		t.Errorf("N=7 alarmed at %d", got)
	}
	if got := (&Voting{Model: scoreModel{}, Voters: 1}).Detect(s); got != 3 {
		t.Errorf("N=1 Detect = %d, want 3", got)
	}
}

func TestVotingCatchesPersistentDegradation(t *testing.T) {
	scores := make([]float64, 40)
	for i := range scores {
		if i < 20 {
			scores[i] = 1
		} else {
			scores[i] = -1
		}
	}
	v := &Voting{Model: scoreModel{}, Voters: 11}
	got := v.Detect(series(scores...))
	// Majority (6 of 11) reached at index 25.
	if got != 25 {
		t.Errorf("Detect = %d, want 25", got)
	}
}

func TestVotingNeedsFullWindow(t *testing.T) {
	v := &Voting{Model: scoreModel{}, Voters: 5}
	// 3 failed samples but fewer than N samples total: no alarm.
	if got := v.Detect(series(-1, -1, -1)); got != -1 {
		t.Errorf("short trace alarmed at %d", got)
	}
}

func TestVotingThreshold(t *testing.T) {
	v := &Voting{Model: scoreModel{}, Voters: 1, Threshold: 0.5}
	if got := v.Detect(series(0.6, 0.4)); got != 1 {
		t.Errorf("Detect = %d, want 1 (0.4 < 0.5)", got)
	}
}

func TestMeanThreshold(t *testing.T) {
	m := &MeanThreshold{Model: scoreModel{}, Voters: 3, Threshold: 0}
	// Means: idx2 (1-1+1)/3>0, idx3 (-1+1-1)/3<0 → alarm at 3.
	if got := m.Detect(series(1, -1, 1, -1)); got != 3 {
		t.Errorf("Detect = %d, want 3", got)
	}
	if got := m.Detect(series(1, 1, 1, 1)); got != -1 {
		t.Errorf("healthy Detect = %d, want -1", got)
	}
}

func TestMeanThresholdGradualDecline(t *testing.T) {
	// Health degrades linearly from +1 to −1; with threshold −0.5 the
	// alarm comes later than with threshold 0.
	scores := make([]float64, 21)
	for i := range scores {
		scores[i] = 1 - float64(i)/10
	}
	at0 := (&MeanThreshold{Model: scoreModel{}, Voters: 3, Threshold: 0}).Detect(series(scores...))
	atNeg := (&MeanThreshold{Model: scoreModel{}, Voters: 3, Threshold: -0.5}).Detect(series(scores...))
	if at0 < 0 || atNeg < 0 {
		t.Fatalf("no alarms: %d %d", at0, atNeg)
	}
	if atNeg <= at0 {
		t.Errorf("lower threshold alarmed earlier: %d vs %d", atNeg, at0)
	}
}

func TestMeanThresholdZeroVoters(t *testing.T) {
	m := &MeanThreshold{Model: scoreModel{}, Threshold: 0}
	if got := m.Detect(series(1, -0.1)); got != 1 {
		t.Errorf("Detect = %d, want 1", got)
	}
}

func makeTrace(hours ...int) []smart.Record {
	out := make([]smart.Record, len(hours))
	for i, h := range hours {
		out[i].Hour = h
		out[i].Normalized[0] = float64(h)
	}
	return out
}

func TestExtractSeries(t *testing.T) {
	fs := smart.FeatureSet{{Attr: smart.Catalogue[0].ID, Kind: smart.Normalized}}
	trace := makeTrace(0, 1, 2, 3, 4)
	s := ExtractSeries(fs, trace, 2, 4)
	if len(s.X) != 2 || len(s.Hours) != 2 {
		t.Fatalf("series sizes = %d/%d", len(s.X), len(s.Hours))
	}
	if s.Hours[0] != 2 || s.X[1][0] != 3 {
		t.Errorf("series content wrong: %+v", s)
	}
	// Clamping.
	s = ExtractSeries(fs, trace, -5, 99)
	if len(s.X) != 5 {
		t.Errorf("clamped series size = %d", len(s.X))
	}
}

func TestExtractSeriesSkipsShallowLookback(t *testing.T) {
	fs := smart.FeatureSet{{Attr: smart.Catalogue[0].ID, Kind: smart.ChangeRate, IntervalHours: 2}}
	trace := makeTrace(0, 1, 2, 3)
	s := ExtractSeries(fs, trace, 0, 4)
	// Hours 2 and 3 can look back 2h; 0 and 1 cannot.
	if len(s.X) != 2 || s.Hours[0] != 2 {
		t.Errorf("lookback filtering wrong: %+v", s.Hours)
	}
}

func TestScan(t *testing.T) {
	v := &Voting{Model: scoreModel{}, Voters: 1}
	s := Series{X: series(1, 1, -1), Hours: []int{10, 11, 12}}

	out := Scan(v, s, 100)
	if !out.Alarmed || out.AlarmHour != 12 || out.LeadHours != 88 {
		t.Errorf("failed-drive Scan = %+v", out)
	}

	out = Scan(v, s, -1)
	if !out.Alarmed || out.LeadHours != -1 {
		t.Errorf("good-drive Scan = %+v", out)
	}

	out = Scan(v, Series{X: series(1, 1), Hours: []int{1, 2}}, 100)
	if out.Alarmed || out.LeadHours != -1 {
		t.Errorf("clean Scan = %+v", out)
	}
}
