package detect

import (
	"math"
	"math/rand"
	"testing"

	"hddcart/internal/cart"
	"hddcart/internal/dataset"
)

// binnedDetectFixture trains a classifier on dyadic data (≤ 32 distinct
// values per feature, so a 32-bin matrix is singleton-binned and the
// binned compile is Exact), and builds a deterministic set of drive
// series from bin-representative rows.
func binnedDetectFixture(t *testing.T, seed int64) (*cart.CompiledTree, *cart.BinnedTree, *dataset.BinnedMatrix, []Series) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n, nf = 800, 4
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, nf)
		for f := range row {
			row[f] = math.Floor(rng.Float64()*32) / 32
		}
		x[i] = row
		y[i] = 1
		if row[0]-row[1] > 0.2 {
			y[i] = -1
		}
		if rng.Float64() < 0.08 {
			y[i] = -y[i]
		}
	}
	tree, err := cart.TrainClassifier(x, y, nil, cart.Params{LossFA: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ct := tree.Compile()
	bm, err := dataset.BinMatrix(x, 32)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := ct.CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	if !bt.Exact {
		t.Fatal("fixture compile should be Exact")
	}
	series := make([]Series, 20)
	for d := range series {
		m := 50 + rng.Intn(1200)
		s := Series{X: make([][]float64, m), Hours: make([]int, m)}
		for i := range s.X {
			s.X[i] = x[rng.Intn(len(x))]
			s.Hours[i] = i * 8
		}
		series[d] = s
	}
	return ct, bt, bm, series
}

// quantizeAll maps every fixture series onto the matrix's code space.
func quantizeAll(t *testing.T, bm *dataset.BinnedMatrix, series []Series) []BinnedSeries {
	t.Helper()
	out := make([]BinnedSeries, len(series))
	for i, s := range series {
		bs, err := QuantizeSeries(bm, s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = bs
	}
	return out
}

// TestBinnedDetectorsMatchFloat checks that every binned detector alarms
// at exactly the float detector's index on quantized input — the
// detect-level half of the cross-path equivalence contract.
func TestBinnedDetectorsMatchFloat(t *testing.T) {
	ct, bt, bm, series := binnedDetectFixture(t, 51)
	binned := quantizeAll(t, bm, series)
	for _, voters := range []int{1, 3, 7, 16} {
		fv := &Voting{Model: ct, Voters: voters}
		bv := &VotingBinned{Model: bt, Voters: voters}
		fm := &MeanThreshold{Model: ct, Voters: voters, Threshold: -0.1}
		bmn := &MeanThresholdBinned{Model: bt, Voters: voters, Threshold: -0.1}
		for i := range series {
			if want, got := fv.Detect(series[i].X), bv.Detect(binned[i].Codes); want != got {
				t.Fatalf("voters=%d drive %d: Voting %d vs VotingBinned %d", voters, i, want, got)
			}
			if want, got := fm.Detect(series[i].X), bmn.Detect(binned[i].Codes); want != got {
				t.Fatalf("voters=%d drive %d: MeanThreshold %d vs binned %d", voters, i, want, got)
			}
		}
	}
}

// TestMultiVotingBinnedMatchesFloat checks the multi-window sweep across
// worker counts: alarms must be identical to the float MultiVoting and
// independent of Workers.
func TestMultiVotingBinnedMatchesFloat(t *testing.T) {
	ct, bt, bm, series := binnedDetectFixture(t, 77)
	binned := quantizeAll(t, bm, series)
	voters := []int{1, 2, 5, 9, 32}
	ref := &MultiVoting{Model: ct, Voters: voters, Workers: 1}
	for _, workers := range []int{0, 1, 3} {
		mv := &MultiVotingBinned{Model: bt, Voters: voters, Workers: workers}
		for i := range series {
			want := ref.DetectAll(series[i].X)
			got := mv.DetectAll(binned[i].Codes)
			for k := range want {
				if want[k] != got[k] {
					t.Fatalf("workers=%d drive %d window %d: float %d vs binned %d",
						workers, i, voters[k], want[k], got[k])
				}
			}
		}
		if got := mv.DetectAll(nil); len(got) != len(voters) {
			t.Fatalf("empty series: got %d alarms, want %d", len(got), len(voters))
		}
	}
	empty := &MultiVotingBinned{Model: bt}
	if got := empty.DetectAll(binned[0].Codes); len(got) != 0 {
		t.Fatalf("no windows: got %v", got)
	}
	// ScanAll mirrors the float conversion of indexes to outcomes.
	fo := ref.ScanAll(series[0], series[0].Hours[len(series[0].Hours)-1])
	bo := (&MultiVotingBinned{Model: bt, Voters: voters, Workers: 1}).
		ScanAll(binned[0], series[0].Hours[len(series[0].Hours)-1])
	for k := range fo {
		if fo[k] != bo[k] {
			t.Fatalf("ScanAll window %d: float %+v vs binned %+v", voters[k], fo[k], bo[k])
		}
	}
}

// TestScanBatchBinnedMatchesFloat checks the fleet path: outcomes equal
// the float ScanBatch outcome for every drive, at every worker count.
func TestScanBatchBinnedMatchesFloat(t *testing.T) {
	ct, bt, bm, series := binnedDetectFixture(t, 90)
	binned := quantizeAll(t, bm, series)
	failHours := make([]int, len(series))
	for i := range failHours {
		failHours[i] = -1
		if i%3 == 0 {
			failHours[i] = series[i].Hours[len(series[i].Hours)-1] + 24
		}
	}
	want := ScanBatch(&Voting{Model: ct, Voters: 5}, series, failHours, 1)
	for _, workers := range []int{0, 1, 4, 64} {
		got := ScanBatchBinned(&VotingBinned{Model: bt, Voters: 5}, binned, failHours, workers)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("workers=%d drive %d: float %+v vs binned %+v", workers, i, want[i], got[i])
			}
		}
	}
	// nil failHours treats every drive as good.
	out := ScanBatchBinned(&VotingBinned{Model: bt, Voters: 5}, binned, nil, 2)
	for i, o := range out {
		if o.Alarmed && o.LeadHours != -1 {
			t.Fatalf("drive %d: good drive got lead hours %d", i, o.LeadHours)
		}
	}
}

// TestQuantizeSeries pins the metadata carry-over and the ragged-row
// error path.
func TestQuantizeSeries(t *testing.T) {
	bm, err := dataset.BinMatrix([][]float64{{1, 2}, {3, 4}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := Series{X: [][]float64{{1, 2}, {3, 4}}, Hours: []int{8, 16}, Dropped: 3}
	bs, err := QuantizeSeries(bm, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Codes) != 2 || bs.Dropped != 3 || bs.Hours[1] != 16 {
		t.Fatalf("QuantizeSeries lost metadata: %+v", bs)
	}
	if _, err := QuantizeSeries(bm, Series{X: [][]float64{{1}}}); err == nil {
		t.Fatal("ragged row accepted")
	}
}

// TestBinnedDetectorValidation mirrors the float constructors' rejection
// cases.
func TestBinnedDetectorValidation(t *testing.T) {
	_, bt, _, _ := binnedDetectFixture(t, 11)
	if _, err := NewVotingBinned(nil, 3, 0); err == nil {
		t.Error("nil model accepted by NewVotingBinned")
	}
	if _, err := NewVotingBinned(bt, 0, 0); err == nil {
		t.Error("zero voters accepted by NewVotingBinned")
	}
	if _, err := NewVotingBinned(bt, 3, 2); err == nil {
		t.Error("out-of-range threshold accepted by NewVotingBinned")
	}
	if _, err := NewMeanThresholdBinned(nil, 3, 0); err == nil {
		t.Error("nil model accepted by NewMeanThresholdBinned")
	}
	if _, err := NewMeanThresholdBinned(bt, 3, math.NaN()); err == nil {
		t.Error("NaN threshold accepted by NewMeanThresholdBinned")
	}
	if _, err := NewMultiVotingBinned(bt, []int{3, 0}, 0, 1); err == nil {
		t.Error("zero window accepted by NewMultiVotingBinned")
	}
	if _, err := NewMultiVotingBinned(bt, []int{3}, 0, -1); err == nil {
		t.Error("negative workers accepted by NewMultiVotingBinned")
	}
	if v, err := NewVotingBinned(bt, 3, 0); err != nil || v == nil {
		t.Errorf("valid binned voting rejected: %v", err)
	}
	if m, err := NewMeanThresholdBinned(bt, 3, -0.5); err != nil || m == nil {
		t.Errorf("valid binned mean-threshold rejected: %v", err)
	}
	if m, err := NewMultiVotingBinned(bt, []int{1, 3}, 0, 2); err != nil || m == nil {
		t.Errorf("valid binned multi-voting rejected: %v", err)
	}
}
