package detect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hddcart/internal/smart"
)

// bruteVoting is a reference implementation of the voting rule.
func bruteVoting(scores []float64, n int, threshold float64) int {
	if n < 1 {
		n = 1
	}
	for i := n - 1; i < len(scores); i++ {
		votes := 0
		for j := i - n + 1; j <= i; j++ {
			if scores[j] < threshold {
				votes++
			}
		}
		if 2*votes > n {
			return i
		}
	}
	return -1
}

// bruteMean is a reference implementation of the mean-threshold rule.
func bruteMean(scores []float64, n int, threshold float64) int {
	if n < 1 {
		n = 1
	}
	for i := n - 1; i < len(scores); i++ {
		sum := 0.0
		for j := i - n + 1; j <= i; j++ {
			sum += scores[j]
		}
		if sum/float64(n) < threshold {
			return i
		}
	}
	return -1
}

func TestVotingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(15)
		length := rng.Intn(60)
		scores := make([]float64, length)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		th := rng.NormFloat64() * 0.5
		det := &Voting{Model: scoreModel{}, Voters: n, Threshold: th}
		got := det.Detect(series(scores...))
		want := bruteVoting(scores, n, th)
		if got != want {
			t.Fatalf("trial %d (n=%d): Detect=%d, brute=%d, scores=%v", trial, n, got, want, scores)
		}
	}
}

func TestMeanThresholdMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(15)
		length := rng.Intn(60)
		scores := make([]float64, length)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		th := rng.NormFloat64() * 0.5
		det := &MeanThreshold{Model: scoreModel{}, Voters: n, Threshold: th}
		got := det.Detect(series(scores...))
		want := bruteMean(scores, n, th)
		// Floating-point summation order can differ at exact
		// boundaries; tolerate only exact agreement of indices, which
		// random continuous scores make safe.
		if got != want {
			t.Fatalf("trial %d (n=%d): Detect=%d, brute=%d", trial, n, got, want)
		}
	}
}

// TestMeanThresholdMonotoneInThreshold: raising the threshold can only
// move the alarm earlier (or create one).
func TestMeanThresholdMonotoneInThreshold(t *testing.T) {
	err := quick.Check(func(raw []int8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = float64(v) / 32
		}
		lo := &MeanThreshold{Model: scoreModel{}, Voters: 5, Threshold: -0.5}
		hi := &MeanThreshold{Model: scoreModel{}, Voters: 5, Threshold: 0.5}
		li := lo.Detect(series(scores...))
		hiIdx := hi.Detect(series(scores...))
		if li == -1 {
			return true // nothing to compare
		}
		return hiIdx != -1 && hiIdx <= li
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// TestVotingMonotoneInVoters: with a persistently failed tail, larger N
// alarms later but still alarms.
func TestVotingMonotoneInVoters(t *testing.T) {
	scores := make([]float64, 60)
	for i := range scores {
		if i < 30 {
			scores[i] = 1
		} else {
			scores[i] = -1
		}
	}
	prev := -1
	for _, n := range []int{1, 3, 7, 11, 21} {
		det := &Voting{Model: scoreModel{}, Voters: n}
		idx := det.Detect(series(scores...))
		if idx == -1 {
			t.Fatalf("N=%d missed a persistent failure", n)
		}
		if idx < prev {
			t.Fatalf("N=%d alarmed earlier (%d) than a smaller window (%d)", n, idx, prev)
		}
		prev = idx
	}
}

func TestMultiVotingMatchesSingleDetectors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	voters := []int{1, 3, 5, 7, 11, 0}
	for trial := 0; trial < 200; trial++ {
		length := rng.Intn(80)
		scores := make([]float64, length)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		th := rng.NormFloat64() * 0.3
		multi := &MultiVoting{Model: scoreModel{}, Voters: voters, Threshold: th}
		got := multi.DetectAll(series(scores...))
		for vi, n := range voters {
			single := &Voting{Model: scoreModel{}, Voters: n, Threshold: th}
			want := single.Detect(series(scores...))
			if got[vi] != want {
				t.Fatalf("trial %d N=%d: multi=%d single=%d", trial, n, got[vi], want)
			}
		}
	}
}

func TestMultiVotingScanAll(t *testing.T) {
	s := Series{X: series(1, -1, -1, -1), Hours: []int{10, 11, 12, 13}}
	m := &MultiVoting{Model: scoreModel{}, Voters: []int{1, 3}}
	outs := m.ScanAll(s, 100)
	if !outs[0].Alarmed || outs[0].AlarmHour != 11 || outs[0].LeadHours != 89 {
		t.Errorf("N=1 outcome = %+v", outs[0])
	}
	if !outs[1].Alarmed || outs[1].AlarmHour != 12 {
		t.Errorf("N=3 outcome = %+v", outs[1])
	}
	outs = m.ScanAll(Series{X: series(1, 1), Hours: []int{1, 2}}, -1)
	if outs[0].Alarmed || outs[1].Alarmed {
		t.Error("clean drive alarmed")
	}
	if outs[0].LeadHours != -1 {
		t.Error("good drive lead hours should be -1")
	}
}

func TestMultiVotingEmpty(t *testing.T) {
	m := &MultiVoting{Model: scoreModel{}}
	if got := m.DetectAll(series(1, -1)); len(got) != 0 {
		t.Errorf("no voters should give empty result, got %v", got)
	}
}

// compactNaN removes NaN scores, returning the survivors and their
// original indexes — the reference semantics of NaN exclusion.
func compactNaN(scores []float64) (valid []float64, orig []int) {
	for i, s := range scores {
		if math.IsNaN(s) {
			continue
		}
		valid = append(valid, s)
		orig = append(orig, i)
	}
	return valid, orig
}

// saltNaN deterministically replaces ~frac of scores with NaN.
func saltNaN(rng *rand.Rand, scores []float64, frac float64) []float64 {
	out := append([]float64(nil), scores...)
	for i := range out {
		if rng.Float64() < frac {
			out[i] = math.NaN()
		}
	}
	return out
}

// TestVotingExcludesNaN: a series with NaN scores must alarm exactly where
// the same series with those samples deleted alarms (mapped back to series
// coordinates) — invalid predictions are excluded, never counted as
// healthy votes. Streaming, batch and multi paths must all agree.
func TestVotingExcludesNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(9)
		scores := make([]float64, rng.Intn(80))
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		th := rng.NormFloat64() * 0.4
		salted := saltNaN(rng, scores, 0.3)
		valid, orig := compactNaN(salted)
		want := bruteVoting(valid, n, th)
		if want >= 0 {
			want = orig[want]
		}
		stream := (&Voting{Model: scoreModel{}, Voters: n, Threshold: th}).Detect(series(salted...))
		batch := (&Voting{Model: batchScoreModel{}, Voters: n, Threshold: th}).Detect(series(salted...))
		multi := (&MultiVoting{Model: scoreModel{}, Voters: []int{n}, Threshold: th}).DetectAll(series(salted...))
		if stream != want || batch != want || multi[0] != want {
			t.Fatalf("trial %d (n=%d): stream=%d batch=%d multi=%d, want %d",
				trial, n, stream, batch, multi[0], want)
		}
	}
}

// TestMeanThresholdExcludesNaN: same exclusion contract for the
// health-degree detector.
func TestMeanThresholdExcludesNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(9)
		scores := make([]float64, rng.Intn(80))
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		th := rng.NormFloat64() * 0.4
		salted := saltNaN(rng, scores, 0.3)
		valid, orig := compactNaN(salted)
		want := bruteMean(valid, n, th)
		if want >= 0 {
			want = orig[want]
		}
		stream := (&MeanThreshold{Model: scoreModel{}, Voters: n, Threshold: th}).Detect(series(salted...))
		batch := (&MeanThreshold{Model: batchScoreModel{}, Voters: n, Threshold: th}).Detect(series(salted...))
		if stream != want || batch != want {
			t.Fatalf("trial %d (n=%d): stream=%d batch=%d, want %d", trial, n, stream, batch, want)
		}
	}
}

// TestVotingAllNaNNeverAlarms: a fully corrupt series has no valid window
// and must pass clean.
func TestVotingAllNaNNeverAlarms(t *testing.T) {
	nan := math.NaN()
	s := series(nan, nan, nan, nan)
	if got := (&Voting{Model: scoreModel{}, Voters: 1}).Detect(s); got != -1 {
		t.Errorf("Voting on all-NaN series alarmed at %d", got)
	}
	if got := (&MeanThreshold{Model: scoreModel{}, Voters: 1}).Detect(s); got != -1 {
		t.Errorf("MeanThreshold on all-NaN series alarmed at %d", got)
	}
}

// TestVotingVerdictMonotoneInFailedVotes: over a full window of exactly N
// samples, the verdict depends monotonically on the number of failed
// votes — turning any healthy vote failed can never clear an alarm.
func TestVotingVerdictMonotoneInFailedVotes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(15)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		det := &Voting{Model: scoreModel{}, Voters: n}
		before := det.Detect(series(scores...)) >= 0
		// Flip one healthy sample to failed.
		flipped := append([]float64(nil), scores...)
		idx := rng.Intn(n)
		flipped[idx] = -math.Abs(flipped[idx]) - 1
		after := det.Detect(series(flipped...)) >= 0
		if before && !after {
			t.Fatalf("trial %d: adding a failed vote cleared the alarm (n=%d, scores=%v)", trial, n, scores)
		}
	}
}

// TestVotingVerdictPermutationInvariant: the verdict over a full window of
// exactly N samples depends only on the multiset of scores, not their
// order (equal-health histories are interchangeable).
func TestVotingVerdictPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		det := &Voting{Model: scoreModel{}, Voters: n}
		want := det.Detect(series(scores...)) >= 0
		perm := append([]float64(nil), scores...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if got := det.Detect(series(perm...)) >= 0; got != want {
			t.Fatalf("trial %d: verdict changed under permutation (n=%d, %v vs %v)", trial, n, scores, perm)
		}
	}
}

// TestMeanThresholdMonotoneInThresholdPairs: for any thresholds t1 ≤ t2,
// the t2 detector alarms no later than the t1 detector (the existing
// fixed-pair test, generalized to random pairs).
func TestMeanThresholdMonotoneInThresholdPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(9)
		scores := make([]float64, 5+rng.Intn(60))
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		t1 := rng.NormFloat64() * 0.5
		t2 := rng.NormFloat64() * 0.5
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		lo := (&MeanThreshold{Model: scoreModel{}, Voters: n, Threshold: t1}).Detect(series(scores...))
		hi := (&MeanThreshold{Model: scoreModel{}, Voters: n, Threshold: t2}).Detect(series(scores...))
		if lo >= 0 && (hi < 0 || hi > lo) {
			t.Fatalf("trial %d: threshold %v alarmed at %d but %v at %d", trial, t1, lo, t2, hi)
		}
	}
}

func TestDetectorValidation(t *testing.T) {
	if _, err := NewVoting(scoreModel{}, 7, 0); err != nil {
		t.Errorf("valid voting config rejected: %v", err)
	}
	if _, err := NewMeanThreshold(scoreModel{}, 3, -0.3); err != nil {
		t.Errorf("valid mean-threshold config rejected: %v", err)
	}
	if _, err := NewMultiVoting(scoreModel{}, []int{1, 3}, 0, 4); err != nil {
		t.Errorf("valid multi-voting config rejected: %v", err)
	}
	bad := []struct {
		name string
		err  error
	}{
		{"voting nil model", func() error { _, err := NewVoting(nil, 1, 0); return err }()},
		{"voting N=0", func() error { _, err := NewVoting(scoreModel{}, 0, 0); return err }()},
		{"voting N<0", func() error { _, err := NewVoting(scoreModel{}, -3, 0); return err }()},
		{"voting threshold 1.5", func() error { _, err := NewVoting(scoreModel{}, 1, 1.5); return err }()},
		{"voting threshold NaN", func() error { _, err := NewVoting(scoreModel{}, 1, math.NaN()); return err }()},
		{"mean N=0", func() error { _, err := NewMeanThreshold(scoreModel{}, 0, 0); return err }()},
		{"mean threshold -2", func() error { _, err := NewMeanThreshold(scoreModel{}, 1, -2); return err }()},
		{"multi N=0 entry", func() error { _, err := NewMultiVoting(scoreModel{}, []int{3, 0}, 0, 1); return err }()},
		{"multi negative workers", func() error { _, err := NewMultiVoting(scoreModel{}, []int{3}, 0, -1); return err }()},
	}
	for _, c := range bad {
		if c.err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestExtractSeriesDropsNonFiniteVectors(t *testing.T) {
	fs := smart.FeatureSet{{Attr: smart.Catalogue[0].ID, Kind: smart.Normalized}}
	trace := make([]smart.Record, 4)
	for i := range trace {
		trace[i].Hour = i
		trace[i].Normalized[0] = 100
	}
	trace[2].Normalized[0] = math.NaN()
	s := ExtractSeries(fs, trace, 0, len(trace))
	if len(s.X) != 3 || s.Dropped != 1 {
		t.Fatalf("len=%d dropped=%d, want 3/1", len(s.X), s.Dropped)
	}
	if s.Hours[2] != 3 {
		t.Errorf("surviving hours = %v", s.Hours)
	}
}
