package detect

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteVoting is a reference implementation of the voting rule.
func bruteVoting(scores []float64, n int, threshold float64) int {
	if n < 1 {
		n = 1
	}
	for i := n - 1; i < len(scores); i++ {
		votes := 0
		for j := i - n + 1; j <= i; j++ {
			if scores[j] < threshold {
				votes++
			}
		}
		if 2*votes > n {
			return i
		}
	}
	return -1
}

// bruteMean is a reference implementation of the mean-threshold rule.
func bruteMean(scores []float64, n int, threshold float64) int {
	if n < 1 {
		n = 1
	}
	for i := n - 1; i < len(scores); i++ {
		sum := 0.0
		for j := i - n + 1; j <= i; j++ {
			sum += scores[j]
		}
		if sum/float64(n) < threshold {
			return i
		}
	}
	return -1
}

func TestVotingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(15)
		length := rng.Intn(60)
		scores := make([]float64, length)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		th := rng.NormFloat64() * 0.5
		det := &Voting{Model: scoreModel{}, Voters: n, Threshold: th}
		got := det.Detect(series(scores...))
		want := bruteVoting(scores, n, th)
		if got != want {
			t.Fatalf("trial %d (n=%d): Detect=%d, brute=%d, scores=%v", trial, n, got, want, scores)
		}
	}
}

func TestMeanThresholdMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(15)
		length := rng.Intn(60)
		scores := make([]float64, length)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		th := rng.NormFloat64() * 0.5
		det := &MeanThreshold{Model: scoreModel{}, Voters: n, Threshold: th}
		got := det.Detect(series(scores...))
		want := bruteMean(scores, n, th)
		// Floating-point summation order can differ at exact
		// boundaries; tolerate only exact agreement of indices, which
		// random continuous scores make safe.
		if got != want {
			t.Fatalf("trial %d (n=%d): Detect=%d, brute=%d", trial, n, got, want)
		}
	}
}

// TestMeanThresholdMonotoneInThreshold: raising the threshold can only
// move the alarm earlier (or create one).
func TestMeanThresholdMonotoneInThreshold(t *testing.T) {
	err := quick.Check(func(raw []int8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = float64(v) / 32
		}
		lo := &MeanThreshold{Model: scoreModel{}, Voters: 5, Threshold: -0.5}
		hi := &MeanThreshold{Model: scoreModel{}, Voters: 5, Threshold: 0.5}
		li := lo.Detect(series(scores...))
		hiIdx := hi.Detect(series(scores...))
		if li == -1 {
			return true // nothing to compare
		}
		return hiIdx != -1 && hiIdx <= li
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// TestVotingMonotoneInVoters: with a persistently failed tail, larger N
// alarms later but still alarms.
func TestVotingMonotoneInVoters(t *testing.T) {
	scores := make([]float64, 60)
	for i := range scores {
		if i < 30 {
			scores[i] = 1
		} else {
			scores[i] = -1
		}
	}
	prev := -1
	for _, n := range []int{1, 3, 7, 11, 21} {
		det := &Voting{Model: scoreModel{}, Voters: n}
		idx := det.Detect(series(scores...))
		if idx == -1 {
			t.Fatalf("N=%d missed a persistent failure", n)
		}
		if idx < prev {
			t.Fatalf("N=%d alarmed earlier (%d) than a smaller window (%d)", n, idx, prev)
		}
		prev = idx
	}
}

func TestMultiVotingMatchesSingleDetectors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	voters := []int{1, 3, 5, 7, 11, 0}
	for trial := 0; trial < 200; trial++ {
		length := rng.Intn(80)
		scores := make([]float64, length)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		th := rng.NormFloat64() * 0.3
		multi := &MultiVoting{Model: scoreModel{}, Voters: voters, Threshold: th}
		got := multi.DetectAll(series(scores...))
		for vi, n := range voters {
			single := &Voting{Model: scoreModel{}, Voters: n, Threshold: th}
			want := single.Detect(series(scores...))
			if got[vi] != want {
				t.Fatalf("trial %d N=%d: multi=%d single=%d", trial, n, got[vi], want)
			}
		}
	}
}

func TestMultiVotingScanAll(t *testing.T) {
	s := Series{X: series(1, -1, -1, -1), Hours: []int{10, 11, 12, 13}}
	m := &MultiVoting{Model: scoreModel{}, Voters: []int{1, 3}}
	outs := m.ScanAll(s, 100)
	if !outs[0].Alarmed || outs[0].AlarmHour != 11 || outs[0].LeadHours != 89 {
		t.Errorf("N=1 outcome = %+v", outs[0])
	}
	if !outs[1].Alarmed || outs[1].AlarmHour != 12 {
		t.Errorf("N=3 outcome = %+v", outs[1])
	}
	outs = m.ScanAll(Series{X: series(1, 1), Hours: []int{1, 2}}, -1)
	if outs[0].Alarmed || outs[1].Alarmed {
		t.Error("clean drive alarmed")
	}
	if outs[0].LeadHours != -1 {
		t.Error("good drive lead hours should be -1")
	}
}

func TestMultiVotingEmpty(t *testing.T) {
	m := &MultiVoting{Model: scoreModel{}}
	if got := m.DetectAll(series(1, -1)); len(got) != 0 {
		t.Errorf("no voters should give empty result, got %v", got)
	}
}
