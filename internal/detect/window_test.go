package detect

import (
	"math"
	"testing"
)

// naiveWindow recomputes the window state from scratch: the last ≤ n
// scores and the count below threshold. Window.Push must match it after
// every push.
func naiveWindow(scores []float64, n int, threshold float64) ([]float64, int) {
	if len(scores) > n {
		scores = scores[len(scores)-n:]
	}
	votes := 0
	for _, s := range scores {
		if s < threshold {
			votes++
		}
	}
	return scores, votes
}

func TestWindowPushMatchesNaive(t *testing.T) {
	const n = 4
	const threshold = -0.1
	stream := []float64{0.5, -0.3, -0.2, 0.9, -0.15, -0.5, 0.1, -0.9, -0.11, 0.3, -0.4}
	var w Window
	for i := range stream {
		w.Push(stream[i], n, threshold)
		wantScores, wantVotes := naiveWindow(stream[:i+1], n, threshold)
		if len(w.Scores) != len(wantScores) {
			t.Fatalf("push %d: window holds %d scores, want %d", i, len(w.Scores), len(wantScores))
		}
		for j := range wantScores {
			if w.Scores[j] != wantScores[j] {
				t.Fatalf("push %d: score[%d] = %v, want %v", i, j, w.Scores[j], wantScores[j])
			}
		}
		if w.Votes != wantVotes {
			t.Fatalf("push %d: votes = %d, want %d", i, w.Votes, wantVotes)
		}
		if w.Full(n) != (i+1 >= n) {
			t.Fatalf("push %d: Full = %v", i, w.Full(n))
		}
	}
}

func TestWindowTripped(t *testing.T) {
	const n = 3
	var w Window
	w.Push(-0.5, n, 0)
	w.Push(-0.5, n, 0)
	if w.Tripped(n, 0, false) {
		t.Error("partial window tripped")
	}
	w.Push(0.5, n, 0)
	if !w.Tripped(n, 0, false) {
		t.Error("2-of-3 failing votes did not trip voting rule")
	}
	// Mean rule: mean = (−0.5 −0.5 +0.5)/3 < 0 trips; against a −0.3
	// threshold it does not.
	if !w.Tripped(n, 0, true) {
		t.Error("negative mean did not trip mean rule at threshold 0")
	}
	if w.Tripped(n, -0.3, true) {
		// mean is −1/6 ≈ −0.167 > −0.3
		t.Error("mean above threshold tripped")
	}
}

// TestWindowMeanOrder pins the summation order: oldest-first, the order
// every consumer (Monitor, serve shards, batch sweeps) must share for
// bit-identical health degrees.
func TestWindowMeanOrder(t *testing.T) {
	vals := []float64{0.1, 0.2, 0.3}
	var w Window
	for _, v := range vals {
		w.Push(v, 3, 0)
	}
	// Built with runtime float adds (a constant expression would fold in
	// exact precision and miss the rounding the window actually does).
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	want := sum / float64(len(vals))
	if w.Mean() != want {
		t.Errorf("mean %v, want oldest-first sum %v", w.Mean(), want)
	}
	var empty Window
	if !math.IsNaN(empty.Mean()) {
		t.Errorf("empty mean = %v, want NaN", empty.Mean())
	}
}

func TestWindowReset(t *testing.T) {
	var w Window
	for i := 0; i < 5; i++ {
		w.Push(-1, 3, 0)
	}
	w.Reset()
	if len(w.Scores) != 0 || w.Votes != 0 {
		t.Errorf("reset left %d scores, %d votes", len(w.Scores), w.Votes)
	}
	if w.Tripped(3, 0, false) {
		t.Error("reset window tripped")
	}
	// Capacity is retained for reuse.
	if cap(w.Scores) == 0 {
		t.Error("reset released the window's capacity")
	}
}
