// Package detect turns per-sample model outputs into drive-level failure
// warnings. It implements the paper's two detection schemes:
//
//   - the voting-based algorithm (§V-A3): a drive raises an alarm at the
//     first time point where more than N/2 of its last N consecutive
//     samples are classified failed;
//   - the health-degree scheme (§V-C): a drive raises an alarm when the
//     average predicted health of its last N samples falls below a
//     threshold.
//
// With N = 1 voting degenerates to the plain sequential scan used before
// §V-A3 ("predict the drive is going to break down if any sample is
// classified as failed").
//
// Invalid predictions — NaN scores from corrupt feature vectors — are
// excluded from every window rather than miscounted: a NaN compares false
// against any threshold, so counting it would silently turn a corrupt
// sample into a "healthy" vote. Both detectors behave exactly as if the
// invalid samples were absent from the series, and the alarm index still
// refers to the original series.
package detect

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"hddcart/internal/smart"
)

// detectChunk is how many samples the batch detection paths score per model
// call: big enough to amortize batch setup, small enough that a drive
// alarming early doesn't pay for scoring its whole series.
const detectChunk = 512

// scoreBuf pools per-series score buffers so the batch detection paths
// stay allocation-free across drives in steady state.
var scoreBuf = sync.Pool{New: func() any { return new([]float64) }}

// Predictor scores one feature vector: positive values mean healthy,
// negative values mean failing. Both cart.Tree and ann.Network satisfy it.
type Predictor interface {
	Predict(x []float64) float64
}

// Detector scans a drive's chronological per-sample feature vectors and
// returns the index of the first alarm, or -1 when the drive passes.
type Detector interface {
	Detect(xs [][]float64) int
}

// validThreshold reports whether t is a usable alarm cut: scores live on
// the ±1 classifier / health-degree scale, so any finite cut outside
// [-1, 1] either always or never trips and is a configuration bug.
func validThreshold(t float64) bool {
	return !math.IsNaN(t) && t >= -1 && t <= 1
}

// Voting is the paper's voting-based detector over a binary classifier.
// The zero-configuration escape hatches (Voters < 1 acting as 1) exist for
// literal construction in tests and experiments; production callers should
// build detectors with NewVoting, which rejects degenerate configurations
// outright.
type Voting struct {
	// Model scores samples; a sample votes "failed" when its score is
	// below Threshold.
	Model Predictor
	// Voters is N, the window size. Values < 1 behave as 1.
	Voters int
	// Threshold is the per-sample vote cut (0 for ±1 classifiers).
	Threshold float64
}

var _ Detector = (*Voting)(nil)

// NewVoting validates the configuration and returns the detector.
func NewVoting(model Predictor, voters int, threshold float64) (*Voting, error) {
	v := &Voting{Model: model, Voters: voters, Threshold: threshold}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// Validate rejects configurations that would silently degenerate: a nil
// model, a non-positive window, or a threshold outside [-1, 1].
func (v *Voting) Validate() error {
	if v.Model == nil {
		return errors.New("detect: voting needs a model")
	}
	if v.Voters < 1 {
		return fmt.Errorf("detect: voting window N must be positive, got %d", v.Voters)
	}
	if !validThreshold(v.Threshold) {
		return fmt.Errorf("detect: voting threshold %v outside [-1, 1]", v.Threshold)
	}
	return nil
}

// Detect implements Detector: the first index i where more than N/2 of the
// last N valid samples up to i vote failed (and at least N valid samples
// exist), else -1. NaN scores are excluded from the window. When Model
// also implements BatchPredictor the series is scored in pooled,
// allocation-free chunks interleaved with the vote sweep (so an early
// alarm stops scoring, like the streaming path); the per-sample
// comparisons are unchanged, so both paths alarm at the same index.
func (v *Voting) Detect(xs [][]float64) int {
	n := v.Voters
	if n < 1 {
		n = 1
	}
	if bp, ok := v.Model.(BatchPredictor); ok {
		bufp := scoreBuf.Get().(*[]float64)
		scores := *bufp
		if cap(scores) < len(xs) {
			scores = make([]float64, len(xs))
		}
		scores = scores[:len(xs)]
		sw := votingSweep{scores: scores, threshold: v.Threshold, n: n}
		idx := -1
		for lo := 0; lo < len(xs) && idx < 0; lo += detectChunk {
			hi := min(lo+detectChunk, len(xs))
			bp.PredictBatch(xs[lo:hi], scores[lo:hi])
			idx = sw.feed(lo, hi)
		}
		*bufp = scores
		scoreBuf.Put(bufp)
		return idx
	}
	votes := 0
	window := make([]bool, 0, n)
	for i, x := range xs {
		s := v.Model.Predict(x)
		if s != s {
			continue // invalid prediction: excluded, not counted
		}
		failed := s < v.Threshold
		window = append(window, failed)
		if failed {
			votes++
		}
		if len(window) > n {
			if window[len(window)-n-1] {
				votes--
			}
		}
		if len(window) >= n && 2*votes > n {
			return i
		}
	}
	return -1
}

// MeanThreshold is the health-degree detector: it alarms when the mean of
// the last N predicted health degrees drops below Threshold. As with
// Voting, literal construction tolerates Voters < 1; NewMeanThreshold is
// the validating path.
type MeanThreshold struct {
	// Model predicts health degrees in [−1, +1].
	Model Predictor
	// Voters is N, the averaging window. Values < 1 behave as 1.
	Voters int
	// Threshold is the alarm cut on the window mean.
	Threshold float64
}

var _ Detector = (*MeanThreshold)(nil)

// NewMeanThreshold validates the configuration and returns the detector.
func NewMeanThreshold(model Predictor, voters int, threshold float64) (*MeanThreshold, error) {
	m := &MeanThreshold{Model: model, Voters: voters, Threshold: threshold}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate rejects configurations that would silently degenerate: a nil
// model, a non-positive window, or a threshold outside [-1, 1].
func (m *MeanThreshold) Validate() error {
	if m.Model == nil {
		return errors.New("detect: mean-threshold needs a model")
	}
	if m.Voters < 1 {
		return fmt.Errorf("detect: mean-threshold window N must be positive, got %d", m.Voters)
	}
	if !validThreshold(m.Threshold) {
		return fmt.Errorf("detect: mean-threshold %v outside [-1, 1]", m.Threshold)
	}
	return nil
}

// Detect implements Detector. NaN scores are excluded from the rolling
// window. When Model also implements BatchPredictor the series is scored
// in pooled, allocation-free chunks interleaved with the window sweep; the
// rolling sum adds and subtracts the same scores in the same order as the
// streaming path, so the mean comparison is bit-identical.
func (m *MeanThreshold) Detect(xs [][]float64) int {
	n := m.Voters
	if n < 1 {
		n = 1
	}
	if bp, ok := m.Model.(BatchPredictor); ok {
		bufp := scoreBuf.Get().(*[]float64)
		scores := *bufp
		if cap(scores) < len(xs) {
			scores = make([]float64, len(xs))
		}
		scores = scores[:len(xs)]
		sw := meanSweep{scores: scores, threshold: m.Threshold, n: n}
		idx := -1
		for lo := 0; lo < len(xs) && idx < 0; lo += detectChunk {
			hi := min(lo+detectChunk, len(xs))
			bp.PredictBatch(xs[lo:hi], scores[lo:hi])
			idx = sw.feed(lo, hi)
		}
		*bufp = scores
		scoreBuf.Put(bufp)
		return idx
	}
	sum := 0.0
	scores := make([]float64, 0, len(xs))
	for i, x := range xs {
		s := m.Model.Predict(x)
		if s != s {
			continue // invalid prediction: excluded, not counted
		}
		scores = append(scores, s)
		sum += s
		if len(scores) > n {
			sum -= scores[len(scores)-n-1]
		}
		if len(scores) >= n && sum/float64(n) < m.Threshold {
			return i
		}
	}
	return -1
}

// Series is a drive's scored sample sequence: the feature vectors of the
// records eligible for detection together with their sample hours.
type Series struct {
	X     [][]float64
	Hours []int
	// Dropped counts records excluded while building the series because
	// their feature vectors were not finite (corrupt telemetry that
	// survived upstream repair).
	Dropped int
}

// ExtractSeries computes the feature vectors of trace[from:to]. The full
// trace is retained for change-rate lookback, so records whose lookback
// reaches before the trace start are skipped. Records whose extracted
// feature vector contains a non-finite value are excluded and counted in
// Series.Dropped — scoring them would hand the model NaN inputs. from/to
// are clamped.
func ExtractSeries(features smart.FeatureSet, trace []smart.Record, from, to int) Series {
	if from < 0 {
		from = 0
	}
	if to > len(trace) {
		to = len(trace)
	}
	var s Series
	if to <= from {
		return s
	}
	s.X = make([][]float64, 0, to-from)
	s.Hours = make([]int, 0, to-from)
	var x []float64
	for i := from; i < to; i++ {
		if x == nil {
			x = make([]float64, len(features))
		}
		if !features.Extract(trace, i, x) {
			continue // reuse the buffer for the next record
		}
		if !finiteVector(x) {
			s.Dropped++
			continue
		}
		s.X = append(s.X, x)
		s.Hours = append(s.Hours, trace[i].Hour)
		x = nil
	}
	return s
}

// finiteVector reports whether every component of x is a real number.
func finiteVector(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Outcome is the result of scanning one drive.
type Outcome struct {
	// Alarmed reports whether the detector raised a warning.
	Alarmed bool
	// AlarmHour is the sample hour of the alarm (valid when Alarmed).
	AlarmHour int
	// LeadHours is the time in advance of the failure (failed drives
	// with an alarm only; -1 otherwise).
	LeadHours int
}

// Scan runs a detector over a drive's series. failHour is the drive's
// failure instant, or -1 for good drives.
func Scan(d Detector, s Series, failHour int) Outcome {
	idx := d.Detect(s.X)
	if idx < 0 {
		return Outcome{LeadHours: -1}
	}
	out := Outcome{Alarmed: true, AlarmHour: s.Hours[idx], LeadHours: -1}
	if failHour >= 0 {
		out.LeadHours = failHour - out.AlarmHour
	}
	return out
}

// MultiVoting evaluates the voting detector for several window sizes in a
// single pass over a drive's samples, scoring each sample exactly once.
// ROC sweeps over N (the paper's Figs. 2 and 5) are ~|N| times cheaper
// this way than running independent detectors.
type MultiVoting struct {
	// Model scores samples; a sample votes "failed" below Threshold.
	Model Predictor
	// Voters lists the window sizes to evaluate (values < 1 act as 1).
	Voters []int
	// Threshold is the per-sample vote cut.
	Threshold float64
	// Workers caps the goroutines used to score the samples (≤ 1 scores
	// serially). Any worker count yields identical alarms: every sample's
	// score lands at its own index before the vote sweep runs.
	Workers int
}

// NewMultiVoting validates the configuration and returns the detector.
func NewMultiVoting(model Predictor, voters []int, threshold float64, workers int) (*MultiVoting, error) {
	m := &MultiVoting{Model: model, Voters: voters, Threshold: threshold, Workers: workers}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate rejects a nil model, non-positive window sizes, thresholds
// outside [-1, 1] and negative worker counts.
func (m *MultiVoting) Validate() error {
	if m.Model == nil {
		return errors.New("detect: multi-voting needs a model")
	}
	for _, n := range m.Voters {
		if n < 1 {
			return fmt.Errorf("detect: multi-voting window N must be positive, got %d", n)
		}
	}
	if !validThreshold(m.Threshold) {
		return fmt.Errorf("detect: multi-voting threshold %v outside [-1, 1]", m.Threshold)
	}
	if m.Workers < 0 {
		return fmt.Errorf("detect: multi-voting workers must be non-negative, got %d", m.Workers)
	}
	return nil
}

// DetectAll returns, for each configured window size, the index of the
// first alarm (-1 = none), in the same order as Voters. Samples are
// scored through the model's batch path when available, fanned across up
// to Workers goroutines. NaN scores are excluded from every window, with
// alarm indexes reported in series coordinates — identical to running
// Voting per window size.
func (m *MultiVoting) DetectAll(xs [][]float64) []int {
	if len(m.Voters) == 0 {
		return []int{}
	}
	scores := make([]float64, len(xs))
	scoreInto(m.Model, xs, scores, m.Workers)
	return multiVoteAlarms(scores, m.Voters, m.Threshold)
}

// ScanAll runs DetectAll and converts each alarm into an Outcome (as Scan
// does for a single detector).
func (m *MultiVoting) ScanAll(s Series, failHour int) []Outcome {
	idxs := m.DetectAll(s.X)
	out := make([]Outcome, len(idxs))
	for i, idx := range idxs {
		if idx < 0 {
			out[i] = Outcome{LeadHours: -1}
			continue
		}
		o := Outcome{Alarmed: true, AlarmHour: s.Hours[idx], LeadHours: -1}
		if failHour >= 0 {
			o.LeadHours = failHour - o.AlarmHour
		}
		out[i] = o
	}
	return out
}
