package detect

// Window is the incremental per-drive detection state shared by the
// online paths: the root Monitor and the serve ingest shards both push
// one valid score per accepted sample and ask whether the paper's
// detection rule tripped. It is the streaming twin of the batch sweeps
// in sweep.go — Push maintains exactly the sliding window votingSweep
// and meanSweep reconstruct over a fully scored series, so a drive
// observed online alarms at the same sample it would in a fleet scan.
//
// The caller owns NaN exclusion (invalid predictions must not be
// pushed) and must use one fixed (n, threshold) pair per window; both
// are parameters rather than fields so the struct stays two words of
// state and serializes trivially (snapshot encode/decode round-trips
// Scores and Votes verbatim).
type Window struct {
	// Scores holds the last ≤ n valid scores, oldest first.
	Scores []float64
	// Votes counts the scores in Scores below the push threshold.
	Votes int
}

// Push appends a valid score and slides the window to the last n
// scores, maintaining Votes incrementally. n must be ≥ 1 and threshold
// fixed across the window's lifetime.
func (w *Window) Push(score float64, n int, threshold float64) {
	w.Scores = append(w.Scores, score)
	if score < threshold {
		w.Votes++
	}
	if len(w.Scores) > n {
		if w.Scores[len(w.Scores)-n-1] < threshold {
			w.Votes--
		}
		w.Scores = w.Scores[len(w.Scores)-n:]
	}
}

// Full reports whether the window holds at least n scores — the
// detection rule never trips on a partial window.
func (w *Window) Full(n int) bool { return len(w.Scores) >= n }

// Mean returns the mean of the windowed scores (NaN when empty). The
// sum runs oldest-first, the same order every observer of the window
// uses, so the value is bit-identical across paths.
func (w *Window) Mean() float64 {
	m := 0.0
	for _, s := range w.Scores {
		m += s
	}
	return m / float64(len(w.Scores))
}

// Tripped reports whether the window trips the detection rule: with
// useMean, the mean of the last n scores falls below threshold (paper
// §V-C); otherwise more than n/2 of the last n scores do (§V-A3).
// Partial windows never trip.
func (w *Window) Tripped(n int, threshold float64, useMean bool) bool {
	if len(w.Scores) < n {
		return false
	}
	if useMean {
		return w.Mean() < threshold
	}
	return 2*w.Votes > n
}

// Reset empties the window, keeping its capacity for reuse (telemetry
// blackouts reset windows without releasing per-drive buffers).
func (w *Window) Reset() {
	w.Scores = w.Scores[:0]
	w.Votes = 0
}
