package detect

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// alarmScores builds a deterministic score sequence with fail clusters
// and injected NaN, exercising the sweeps' compaction and bulk-skip.
func alarmScores(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.NormFloat64()*0.3 + 0.5
		if rng.Float64() < 0.15 {
			scores[i] = -0.8 + rng.NormFloat64()*0.2
		}
		if rng.Float64() < 0.05 {
			scores[i] = math.NaN()
		}
	}
	return scores
}

// TestVoteAlarmMatchesDetector proves the exported single-feed sweeps
// equal the chunked detectors on the same scores: same alarm index, and
// the excluded count equals the NaN count in the swept prefix.
func TestVoteAlarmMatchesDetector(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		for _, n := range []int{0, 1, 5, 40, detectChunk + 77, 3000} {
			scores := alarmScores(seed, n)
			xs := make([][]float64, n)
			for i := range xs {
				xs[i] = []float64{scores[i]}
			}
			for _, voters := range []int{1, 3, 11} {
				for _, thr := range []float64{0, -0.3} {
					vIdx := (&Voting{Model: scoreModel{}, Voters: voters, Threshold: thr}).Detect(xs)
					gotIdx, gotExcl := VoteAlarm(append([]float64(nil), scores...), voters, thr)
					if gotIdx != vIdx {
						t.Fatalf("seed=%d n=%d voters=%d thr=%v: VoteAlarm %d, Voting %d",
							seed, n, voters, thr, gotIdx, vIdx)
					}
					checkExcluded(t, scores, gotIdx, gotExcl)

					mIdx := (&MeanThreshold{Model: scoreModel{}, Voters: voters, Threshold: thr}).Detect(xs)
					gotIdx, gotExcl = MeanAlarm(append([]float64(nil), scores...), voters, thr)
					if gotIdx != mIdx {
						t.Fatalf("seed=%d n=%d voters=%d thr=%v: MeanAlarm %d, MeanThreshold %d",
							seed, n, voters, thr, gotIdx, mIdx)
					}
					checkExcluded(t, scores, gotIdx, gotExcl)
				}
			}
		}
	}
	// voters < 1 behaves as 1, as the detectors' Detect does.
	if idx, _ := VoteAlarm([]float64{-1}, 0, 0); idx != 0 {
		t.Fatalf("voters=0: VoteAlarm = %d, want 0", idx)
	}
}

// checkExcluded verifies the excluded count equals the NaN count in the
// swept prefix (through the alarm, or the whole series without one).
func checkExcluded(t *testing.T, scores []float64, idx, excluded int) {
	t.Helper()
	hi := len(scores)
	if idx >= 0 {
		hi = idx + 1
	}
	want := 0
	for _, s := range scores[:hi] {
		if math.IsNaN(s) {
			want++
		}
	}
	if excluded != want {
		t.Fatalf("excluded = %d, want %d (idx %d)", excluded, want, idx)
	}
}

// TestQuantizeFleet checks the pooled batch quantizer against the
// per-series path, row for row, metadata included.
func TestQuantizeFleet(t *testing.T) {
	_, _, bm, series := binnedDetectFixture(t, 33)
	series[2].Dropped = 7
	series[4].X = nil // empty drive stays a drive
	series[4].Hours = nil
	want := quantizeAll(t, bm, series)
	var fc FleetCodes
	got, err := QuantizeFleet(bm, series, &fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d series, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Dropped != want[i].Dropped || !reflect.DeepEqual(got[i].Hours, want[i].Hours) {
			t.Fatalf("drive %d: metadata diverged", i)
		}
		if len(got[i].Codes) != len(want[i].Codes) {
			t.Fatalf("drive %d: %d rows, want %d", i, len(got[i].Codes), len(want[i].Codes))
		}
		for r := range want[i].Codes {
			if !reflect.DeepEqual(got[i].Codes[r], want[i].Codes[r]) {
				t.Fatalf("drive %d row %d: codes diverged", i, r)
			}
		}
	}
	// Error paths.
	if _, err := QuantizeFleet(nil, series, &fc); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := QuantizeFleet(bm, series, nil); err == nil {
		t.Error("nil FleetCodes accepted")
	}
	ragged := []Series{{X: [][]float64{{1}}}}
	if _, err := QuantizeFleet(bm, ragged, &fc); err == nil {
		t.Error("short row accepted")
	}
}

// TestQuantizeFleetNoAllocSteadyState is the satellite's AllocsPerRun
// assertion: once the FleetCodes backing has grown to the fleet size,
// re-quantizing allocates nothing.
func TestQuantizeFleetNoAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	_, _, bm, series := binnedDetectFixture(t, 44)
	var fc FleetCodes
	if _, err := QuantizeFleet(bm, series, &fc); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := QuantizeFleet(bm, series, &fc); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state QuantizeFleet allocated %.0f times per run", allocs)
	}
}

// TestScanBatchStrideSeams pins the strided drive pickup at sizes around
// the stride boundary: results must equal the serial scan for every
// worker count, including fleets not divisible by the stride.
func TestScanBatchStrideSeams(t *testing.T) {
	_, bt, bm, series := binnedDetectFixture(t, 55)
	binned := quantizeAll(t, bm, series)
	det := &VotingBinned{Model: bt, Voters: 3}
	for _, n := range []int{2, scanStride - 1, scanStride, scanStride + 1, 2*scanStride + 3, len(binned)} {
		want := ScanBatchBinnedDirect(det, binned[:n], nil, 1)
		for _, workers := range []int{2, 3, 64} {
			got := ScanBatchBinnedDirect(det, binned[:n], nil, workers)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("n=%d workers=%d: outcomes diverged from serial scan", n, workers)
			}
		}
	}
}

// TestRegisterFleetSweeper covers the delegation seam without a real
// engine: above the threshold a registered sweeper takes the scan; a
// declining sweeper falls back to the direct path.
func TestRegisterFleetSweeper(t *testing.T) {
	prev := fleetSweeper
	defer RegisterFleetSweeper(prev)

	series := make([]BinnedSeries, SweepDelegateMin)
	marker := []Outcome{{AlarmHour: 424242}}
	RegisterFleetSweeper(func(d BinnedDetector, s []BinnedSeries, fh []int, w int) ([]Outcome, bool) {
		if len(s) != len(series) {
			t.Fatalf("sweeper saw %d series", len(s))
		}
		return marker, true
	})
	got := ScanBatchBinned(nil, series, nil, 1)
	if len(got) != 1 || got[0].AlarmHour != 424242 {
		t.Fatal("registered sweeper did not take the scan")
	}
	// Below the threshold the sweeper must not be consulted.
	RegisterFleetSweeper(func(BinnedDetector, []BinnedSeries, []int, int) ([]Outcome, bool) {
		t.Fatal("sweeper consulted below SweepDelegateMin")
		return nil, false
	})
	small := make([]BinnedSeries, 3)
	if got := ScanBatchBinned(&VotingBinned{Model: nil, Voters: 1}, small, nil, 1); len(got) != 3 {
		t.Fatalf("direct path returned %d outcomes", len(got))
	}
}
