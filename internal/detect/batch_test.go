package detect

import (
	"math/rand"
	"reflect"
	"testing"
)

// batchScoreModel is scoreModel plus the batch path, so tests can compare
// the streaming and batch detector code against the same scores.
type batchScoreModel struct{ scoreModel }

func (m batchScoreModel) PredictBatch(xs [][]float64, dst []float64) []float64 {
	if cap(dst) < len(xs) {
		dst = make([]float64, len(xs))
	}
	dst = dst[:len(xs)]
	for i, x := range xs {
		dst[i] = m.Predict(x)
	}
	return dst
}

var _ BatchPredictor = batchScoreModel{}

// randomSeries builds a deterministic noisy score sequence.
func randomSeries(seed int64, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.NormFloat64()}
	}
	return xs
}

func TestVotingBatchMatchesStreaming(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		xs := randomSeries(seed, 120)
		for _, n := range []int{0, 1, 3, 7, 12} {
			stream := &Voting{Model: scoreModel{}, Voters: n, Threshold: 0.1}
			batch := &Voting{Model: batchScoreModel{}, Voters: n, Threshold: 0.1}
			if a, b := stream.Detect(xs), batch.Detect(xs); a != b {
				t.Fatalf("seed %d N=%d: streaming %d vs batch %d", seed, n, a, b)
			}
		}
	}
}

func TestMeanThresholdBatchMatchesStreaming(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		xs := randomSeries(seed, 120)
		for _, n := range []int{0, 1, 4, 9} {
			stream := &MeanThreshold{Model: scoreModel{}, Voters: n, Threshold: -0.2}
			batch := &MeanThreshold{Model: batchScoreModel{}, Voters: n, Threshold: -0.2}
			if a, b := stream.Detect(xs), batch.Detect(xs); a != b {
				t.Fatalf("seed %d N=%d: streaming %d vs batch %d", seed, n, a, b)
			}
		}
	}
}

func TestMultiVotingWorkersDeterministic(t *testing.T) {
	// Long enough to split into several scoring chunks.
	xs := randomSeries(5, 3*minScoreChunk+17)
	voters := []int{1, 3, 5, 9, 15}
	base := (&MultiVoting{Model: scoreModel{}, Voters: voters, Threshold: 0.05}).DetectAll(xs)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, model := range []Predictor{scoreModel{}, batchScoreModel{}} {
			m := &MultiVoting{Model: model, Voters: voters, Threshold: 0.05, Workers: workers}
			if got := m.DetectAll(xs); !reflect.DeepEqual(got, base) {
				t.Fatalf("workers=%d model=%T: DetectAll = %v, want %v", workers, model, got, base)
			}
		}
	}
}

func TestScanBatchDeterministic(t *testing.T) {
	series := make([]Series, 60)
	failHours := make([]int, len(series))
	for i := range series {
		xs := randomSeries(int64(100+i), 40+i)
		for _, x := range xs {
			x[0] += 2 // healthy baseline: scores well above the vote cut
		}
		failHours[i] = -1
		if i%3 == 0 {
			// Failing drive: a degrading tail that trips the vote window.
			for j := len(xs) - 4; j < len(xs); j++ {
				xs[j][0] = -1
			}
			failHours[i] = 6 * len(xs)
		}
		hours := make([]int, len(xs))
		for h := range hours {
			hours[h] = 6 * h
		}
		series[i] = Series{X: xs, Hours: hours}
	}
	det := &Voting{Model: batchScoreModel{}, Voters: 3, Threshold: 0}
	base := ScanBatch(det, series, failHours, 1)
	alarmed := 0
	for _, o := range base {
		if o.Alarmed {
			alarmed++
		}
	}
	if alarmed == 0 || alarmed == len(base) {
		t.Fatalf("degenerate fixture: %d/%d alarms", alarmed, len(base))
	}
	for _, workers := range []int{0, 2, 4, 8} {
		if got := ScanBatch(det, series, failHours, workers); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: ScanBatch diverged", workers)
		}
	}
	// nil failHours treats every drive as good.
	good := ScanBatch(det, series, nil, 4)
	for i, o := range good {
		if o.LeadHours != -1 {
			t.Fatalf("drive %d: nil failHours produced LeadHours %d", i, o.LeadHours)
		}
	}
}

// TestScoreChunkNoAlloc proves the //hddlint:noalloc contract for the
// chunk scorer: with a caller-supplied dst, both the batch and the
// streaming paths score without allocating.
func TestScoreChunkNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	xs := randomSeries(5, 1024)
	dst := make([]float64, len(xs))
	bm := batchScoreModel{}
	allocs := testing.AllocsPerRun(50, func() { scoreChunk(bm, bm, true, xs, dst) })
	if allocs != 0 {
		t.Fatalf("batched scoreChunk allocated %.0f times per run", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() { scoreChunk(scoreModel{}, nil, false, xs, dst) })
	if allocs != 0 {
		t.Fatalf("streaming scoreChunk allocated %.0f times per run", allocs)
	}
}
