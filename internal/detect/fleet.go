package detect

import (
	"errors"
	"fmt"

	"hddcart/internal/dataset"
)

// FleetCodes is the reusable backing QuantizeFleet fills: one contiguous
// code allocation spanning every drive's rows, plus the per-row headers
// and per-drive BinnedSeries views into it. Per-series QuantizeSeries
// pays one allocation per drive — at fleet scale that is millions of
// small allocations per sweep. Reusing one FleetCodes across sweeps
// amortizes the backing to zero steady-state allocations (asserted by
// test) while producing codes identical to QuantizeSeries row for row.
//
// The returned series alias the FleetCodes buffers: the next
// QuantizeFleet call into the same FleetCodes invalidates them.
type FleetCodes struct {
	flat   []uint8
	rows   [][]uint8
	series []BinnedSeries
}

// QuantizeFleet maps every drive's series onto bm's code space in one
// pass over one contiguous backing. Hours and Dropped carry over
// unchanged; row codes equal QuantizeSeries' exactly. fc must be
// non-nil; its buffers grow to the fleet's high-water size once and are
// reused afterwards.
//
//hddlint:noalloc
func QuantizeFleet(bm *dataset.BinnedMatrix, series []Series, fc *FleetCodes) ([]BinnedSeries, error) {
	if bm == nil {
		//hddlint:ignore hotalloc error path only
		return nil, errors.New("detect: QuantizeFleet needs a binned matrix")
	}
	if fc == nil {
		//hddlint:ignore hotalloc error path only
		return nil, errors.New("detect: QuantizeFleet needs a FleetCodes to fill")
	}
	nf := bm.NumFeatures
	total := 0
	for di := range series {
		for ri, row := range series[di].X {
			if len(row) < nf {
				// The call must stay on the ignore's line: fmt.Errorf boxes its
				// arguments where they appear, and escapecheck reports each box
				// at the argument line.
				//hddlint:ignore hotalloc error path only
				return nil, fmt.Errorf("detect: QuantizeFleet drive %d row %d has %d of %d features", di, ri, len(row), nf)
			}
		}
		total += len(series[di].X)
	}
	if cap(fc.flat) < total*nf {
		//hddlint:ignore hotalloc cold path: the backing grows to the fleet's high-water size once, then every sweep reuses it
		fc.flat = make([]uint8, total*nf)
	}
	if cap(fc.rows) < total {
		//hddlint:ignore hotalloc cold path: grows once
		fc.rows = make([][]uint8, total)
	}
	if cap(fc.series) < len(series) {
		//hddlint:ignore hotalloc cold path: grows once
		fc.series = make([]BinnedSeries, len(series))
	}
	flat := fc.flat[:total*nf]
	rows := fc.rows[:total]
	out := fc.series[:len(series)]
	r := 0
	for di := range series {
		s := &series[di]
		lo := r
		for _, x := range s.X {
			dst := flat[r*nf : (r+1)*nf : (r+1)*nf]
			bm.QuantizeRow(x, dst)
			rows[r] = dst
			r++
		}
		out[di] = BinnedSeries{Codes: rows[lo:r:r], Hours: s.Hours, Dropped: s.Dropped}
	}
	return out, nil
}
