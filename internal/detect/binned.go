package detect

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hddcart/internal/dataset"
)

// BinnedPredictor scores one quantized code row: positive values mean
// healthy, negative values mean failing. cart.BinnedTree, forest.Binned
// and boost.Binned satisfy it.
type BinnedPredictor interface {
	Predict(codes []uint8) float64
}

// BinnedBatchPredictor is the batch extension every binned model
// implements; dst[i] must equal Predict(xs[i]) bit for bit, like
// BatchPredictor on the float side.
type BinnedBatchPredictor interface {
	BinnedPredictor
	PredictBatch(xs [][]uint8, dst []float64) []float64
}

// BinnedDetector scans a drive's chronological quantized rows and returns
// the index of the first alarm, or -1 when the drive passes.
type BinnedDetector interface {
	Detect(xs [][]uint8) int
}

// BinnedSeries is a drive's quantized sample sequence: Series with the
// feature vectors replaced by their bin codes, one byte per feature.
type BinnedSeries struct {
	Codes [][]uint8
	Hours []int
	// Dropped carries over the source series' dropped-record count.
	Dropped int
}

// QuantizeSeries maps a drive's series onto bm's code space
// (dataset.BinnedMatrix.Quantize): the rows land in one contiguous
// allocation, Hours and Dropped carry over unchanged. ExtractSeries has
// already excluded non-finite vectors, so quantization never manufactures
// the reserved missing code from corrupt telemetry here — but detectors
// still exclude NaN scores defensively, exactly as the float ones do.
func QuantizeSeries(bm *dataset.BinnedMatrix, s Series) (BinnedSeries, error) {
	codes, err := bm.Quantize(s.X)
	if err != nil {
		return BinnedSeries{}, err
	}
	return BinnedSeries{Codes: codes, Hours: s.Hours, Dropped: s.Dropped}, nil
}

// VotingBinned is the voting-based detector over a binned model — the
// binned-input form of Voting, alarming at the same index wherever the
// two models score alike (both run the shared votingSweep).
type VotingBinned struct {
	// Model scores quantized rows; a row votes "failed" below Threshold.
	Model BinnedBatchPredictor
	// Voters is N, the window size. Values < 1 behave as 1.
	Voters int
	// Threshold is the per-sample vote cut (0 for ±1 classifiers).
	Threshold float64
}

var _ BinnedDetector = (*VotingBinned)(nil)

// NewVotingBinned validates the configuration and returns the detector.
func NewVotingBinned(model BinnedBatchPredictor, voters int, threshold float64) (*VotingBinned, error) {
	v := &VotingBinned{Model: model, Voters: voters, Threshold: threshold}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// Validate rejects a nil model, a non-positive window, or a threshold
// outside [-1, 1].
func (v *VotingBinned) Validate() error {
	if v.Model == nil {
		return errors.New("detect: binned voting needs a model")
	}
	if v.Voters < 1 {
		return fmt.Errorf("detect: binned voting window N must be positive, got %d", v.Voters)
	}
	if !validThreshold(v.Threshold) {
		return fmt.Errorf("detect: binned voting threshold %v outside [-1, 1]", v.Threshold)
	}
	return nil
}

// Detect implements BinnedDetector: the series is scored in pooled,
// allocation-free chunks interleaved with the shared voting sweep, so an
// early alarm stops scoring — Voting.Detect's batch path on code rows.
func (v *VotingBinned) Detect(xs [][]uint8) int {
	n := v.Voters
	if n < 1 {
		n = 1
	}
	bufp := scoreBuf.Get().(*[]float64)
	scores := *bufp
	if cap(scores) < len(xs) {
		scores = make([]float64, len(xs))
	}
	scores = scores[:len(xs)]
	sw := votingSweep{scores: scores, threshold: v.Threshold, n: n}
	idx := -1
	for lo := 0; lo < len(xs) && idx < 0; lo += detectChunk {
		hi := min(lo+detectChunk, len(xs))
		v.Model.PredictBatch(xs[lo:hi], scores[lo:hi])
		idx = sw.feed(lo, hi)
	}
	*bufp = scores
	scoreBuf.Put(bufp)
	return idx
}

// MeanThresholdBinned is the health-degree detector over a binned model —
// the binned-input form of MeanThreshold, sharing its meanSweep.
type MeanThresholdBinned struct {
	// Model predicts health degrees in [−1, +1] from quantized rows.
	Model BinnedBatchPredictor
	// Voters is N, the averaging window. Values < 1 behave as 1.
	Voters int
	// Threshold is the alarm cut on the window mean.
	Threshold float64
}

var _ BinnedDetector = (*MeanThresholdBinned)(nil)

// NewMeanThresholdBinned validates the configuration and returns the
// detector.
func NewMeanThresholdBinned(model BinnedBatchPredictor, voters int, threshold float64) (*MeanThresholdBinned, error) {
	m := &MeanThresholdBinned{Model: model, Voters: voters, Threshold: threshold}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate rejects a nil model, a non-positive window, or a threshold
// outside [-1, 1].
func (m *MeanThresholdBinned) Validate() error {
	if m.Model == nil {
		return errors.New("detect: binned mean-threshold needs a model")
	}
	if m.Voters < 1 {
		return fmt.Errorf("detect: binned mean-threshold window N must be positive, got %d", m.Voters)
	}
	if !validThreshold(m.Threshold) {
		return fmt.Errorf("detect: binned mean-threshold %v outside [-1, 1]", m.Threshold)
	}
	return nil
}

// Detect implements BinnedDetector, chunk-scored like the float batch
// path and swept by the shared meanSweep.
func (m *MeanThresholdBinned) Detect(xs [][]uint8) int {
	n := m.Voters
	if n < 1 {
		n = 1
	}
	bufp := scoreBuf.Get().(*[]float64)
	scores := *bufp
	if cap(scores) < len(xs) {
		scores = make([]float64, len(xs))
	}
	scores = scores[:len(xs)]
	sw := meanSweep{scores: scores, threshold: m.Threshold, n: n}
	idx := -1
	for lo := 0; lo < len(xs) && idx < 0; lo += detectChunk {
		hi := min(lo+detectChunk, len(xs))
		m.Model.PredictBatch(xs[lo:hi], scores[lo:hi])
		idx = sw.feed(lo, hi)
	}
	*bufp = scores
	scoreBuf.Put(bufp)
	return idx
}

// MultiVotingBinned evaluates the voting detector for several window
// sizes in a single pass over a drive's quantized samples — MultiVoting
// on code rows, sharing its prefix-count alarm computation.
type MultiVotingBinned struct {
	// Model scores quantized rows; a row votes "failed" below Threshold.
	Model BinnedBatchPredictor
	// Voters lists the window sizes to evaluate (values < 1 act as 1).
	Voters []int
	// Threshold is the per-sample vote cut.
	Threshold float64
	// Workers caps the goroutines used to score the samples (≤ 1 scores
	// serially). Any worker count yields identical alarms: every sample's
	// score lands at its own index before the vote sweep runs.
	Workers int
}

// NewMultiVotingBinned validates the configuration and returns the
// detector.
func NewMultiVotingBinned(model BinnedBatchPredictor, voters []int, threshold float64, workers int) (*MultiVotingBinned, error) {
	m := &MultiVotingBinned{Model: model, Voters: voters, Threshold: threshold, Workers: workers}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate rejects a nil model, non-positive window sizes, thresholds
// outside [-1, 1] and negative worker counts.
func (m *MultiVotingBinned) Validate() error {
	if m.Model == nil {
		return errors.New("detect: binned multi-voting needs a model")
	}
	for _, n := range m.Voters {
		if n < 1 {
			return fmt.Errorf("detect: binned multi-voting window N must be positive, got %d", n)
		}
	}
	if !validThreshold(m.Threshold) {
		return fmt.Errorf("detect: binned multi-voting threshold %v outside [-1, 1]", m.Threshold)
	}
	if m.Workers < 0 {
		return fmt.Errorf("detect: binned multi-voting workers must be non-negative, got %d", m.Workers)
	}
	return nil
}

// DetectAll returns, for each configured window size, the index of the
// first alarm (-1 = none), in the same order as Voters — identical to
// running VotingBinned per window size.
func (m *MultiVotingBinned) DetectAll(xs [][]uint8) []int {
	if len(m.Voters) == 0 {
		return []int{}
	}
	scores := make([]float64, len(xs))
	scoreIntoBinned(m.Model, xs, scores, m.Workers)
	return multiVoteAlarms(scores, m.Voters, m.Threshold)
}

// ScanAll runs DetectAll and converts each alarm into an Outcome.
func (m *MultiVotingBinned) ScanAll(s BinnedSeries, failHour int) []Outcome {
	idxs := m.DetectAll(s.Codes)
	out := make([]Outcome, len(idxs))
	for i, idx := range idxs {
		out[i] = AlarmOutcome(s.Hours, idx, failHour)
	}
	return out
}

// scoreIntoBinned fills dst[i] with model's score of xs[i], splitting the
// block into contiguous chunks across up to workers goroutines — the
// binned form of scoreInto (binned models always batch).
func scoreIntoBinned(model BinnedBatchPredictor, xs [][]uint8, dst []float64, workers int) {
	if workers <= 1 || len(xs) < 2*minScoreChunk {
		model.PredictBatch(xs, dst)
		return
	}
	chunks := (len(xs) + minScoreChunk - 1) / minScoreChunk
	if chunks > workers {
		chunks = workers
	}
	size := (len(xs) + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < len(xs); lo += size {
		hi := min(lo+size, len(xs))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			model.PredictBatch(xs[lo:hi], dst[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
}

// AlarmOutcome converts an alarm index (-1 = none) into an Outcome
// against the drive's sample hours and failure instant — the shared
// conversion every scan path (ScanBinned, internal/sweep) applies so a
// given alarm index always yields the same Outcome.
func AlarmOutcome(hours []int, idx, failHour int) Outcome {
	if idx < 0 {
		return Outcome{LeadHours: -1}
	}
	out := Outcome{Alarmed: true, AlarmHour: hours[idx], LeadHours: -1}
	if failHour >= 0 {
		out.LeadHours = failHour - out.AlarmHour
	}
	return out
}

// ScanBinned runs a binned detector over a drive's quantized series.
// failHour is the drive's failure instant, or -1 for good drives.
func ScanBinned(d BinnedDetector, s BinnedSeries, failHour int) Outcome {
	return AlarmOutcome(s.Hours, d.Detect(s.Codes), failHour)
}

// SweepDelegateMin is the fleet size at which ScanBatchBinned hands the
// scan to a registered fleet sweeper (internal/sweep): below it, the
// sharded engine's tiling and scheduling setup outweighs its locality
// wins over the per-drive path.
const SweepDelegateMin = 4096

// fleetSweeper, when registered, may take over a whole ScanBatchBinned
// call. It must return outcomes identical to the per-drive path or
// (nil, false) to decline.
var fleetSweeper func(d BinnedDetector, series []BinnedSeries, failHours []int, workers int) ([]Outcome, bool)

// RegisterFleetSweeper installs the fleet-sweep delegation hook.
// internal/sweep registers itself from an init function, so importing it
// (directly or through the root package) is what turns delegation on;
// the hook must not be swapped while scans are running.
func RegisterFleetSweeper(fn func(d BinnedDetector, series []BinnedSeries, failHours []int, workers int) ([]Outcome, bool)) {
	fleetSweeper = fn
}

// ScanBatchBinned runs a binned detector over many drives' series on up
// to workers goroutines (≤ 1 scans serially), exactly as ScanBatch does
// for float series: outcomes land at each drive's own index, so the
// result is identical for every worker count. The detector must be
// stateless across Detect calls, as VotingBinned and MeanThresholdBinned
// are. At SweepDelegateMin drives and above, a registered fleet sweeper
// (internal/sweep) takes the scan through its tiled sharded engine; the
// sweeper's outcomes are identical to the per-drive path, so delegation
// is invisible apart from speed.
func ScanBatchBinned(d BinnedDetector, series []BinnedSeries, failHours []int, workers int) []Outcome {
	if len(series) >= SweepDelegateMin && fleetSweeper != nil {
		if out, ok := fleetSweeper(d, series, failHours, workers); ok {
			return out
		}
	}
	return ScanBatchBinnedDirect(d, series, failHours, workers)
}

// ScanBatchBinnedDirect is ScanBatchBinned without the fleet-sweep
// delegation: always the per-drive chunked path. It exists so benchmarks
// and equivalence tests can pin the sweep engine against the direct path
// even when a sweeper is registered.
func ScanBatchBinnedDirect(d BinnedDetector, series []BinnedSeries, failHours []int, workers int) []Outcome {
	out := make([]Outcome, len(series))
	failHour := func(i int) int {
		if failHours == nil {
			return -1
		}
		return failHours[i]
	}
	if workers <= 1 || len(series) < 2 {
		for i := range series {
			out[i] = ScanBinned(d, series[i], failHour(i))
		}
		return out
	}
	if workers > len(series) {
		workers = len(series)
	}
	// Claim scanStride drives per atomic bump (see batch.go): one
	// contended Add per stride instead of per drive, and a worker's
	// adjacent out[i] writes cover whole cache lines instead of
	// interleaving with other workers' drives.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := (int(next.Add(1)) - 1) * scanStride
				if lo >= len(series) {
					return
				}
				hi := min(lo+scanStride, len(series))
				for i := lo; i < hi; i++ {
					out[i] = ScanBinned(d, series[i], failHour(i))
				}
			}
		}()
	}
	wg.Wait()
	return out
}
