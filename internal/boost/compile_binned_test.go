package boost

import (
	"math"
	"math/rand"
	"testing"

	"hddcart/internal/dataset"
)

// TestBinnedBoostBitIdentical checks the binned ensemble against the
// float compiled path. boostData features take ≤ 32 distinct values, so
// a 32-bin matrix is singleton-binned, the compile is Exact, and every
// bin-representative probe (corpus rows, feature mix-and-match, NaN
// injections) must score bit-identically.
func TestBinnedBoostBitIdentical(t *testing.T) {
	x, y := boostData(13, 1000)
	e, err := Train(x, y, nil, Config{Rounds: 8, MaxDepth: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := e.Compile()
	bm, err := dataset.BinMatrix(x, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Exact {
		t.Fatal("singleton-bin boost compile should be Exact")
	}
	rng := rand.New(rand.NewSource(31))
	probes := append([][]float64(nil), x...)
	for i := 0; i < 128; i++ {
		p := []float64{x[rng.Intn(len(x))][0], x[rng.Intn(len(x))][1], x[rng.Intn(len(x))][2]}
		if i%3 == 0 {
			p[rng.Intn(3)] = math.NaN()
		}
		probes = append(probes, p)
	}
	codes, err := bm.Quantize(probes)
	if err != nil {
		t.Fatal(err)
	}
	preds := b.PredictBatch(codes, nil)
	for i, p := range probes {
		want := c.Predict(p)
		if got := b.Predict(codes[i]); got != want {
			t.Fatalf("Predict diverged at %d: float %v, binned %v", i, want, got)
		}
		if preds[i] != want {
			t.Fatalf("PredictBatch diverged at %d: %v vs %v", i, preds[i], want)
		}
		if c.PredictFailed(p) != b.PredictFailed(codes[i]) {
			t.Fatalf("PredictFailed diverged at %d", i)
		}
	}
}

// TestBinnedBoostCoarseCorpus pins the training-corpus half of the
// contract at ensemble level: boosting reweights but never resamples, so
// every round's learner bins the full corpus exactly as BinMatrix does —
// at a matching MaxBins the corpus scores match to the bit even when
// thresholds straddle the coarse bins.
func TestBinnedBoostCoarseCorpus(t *testing.T) {
	x, y := boostData(29, 800)
	cfg := Config{Rounds: 6, MaxDepth: 3, Workers: 1}
	cfg.Params.MaxBins = 8
	e, err := Train(x, y, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := e.Compile()
	bm, err := dataset.BinMatrix(x, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := bm.Quantize(x)
	if err != nil {
		t.Fatal(err)
	}
	preds := b.PredictBatch(codes, nil)
	for i, row := range x {
		want := c.Predict(row)
		if got := b.Predict(codes[i]); got != want {
			t.Fatalf("corpus row %d diverged: float %v, binned %v", i, want, got)
		}
		if preds[i] != want {
			t.Fatalf("corpus PredictBatch[%d] diverged", i)
		}
	}
}

func TestBinnedBoostBatchNoAlloc(t *testing.T) {
	x, y := boostData(17, 600)
	e, err := Train(x, y, nil, Config{Rounds: 5, MaxDepth: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := dataset.BinMatrix(x, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Compile().CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := bm.Quantize(x)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(codes))
	if allocs := testing.AllocsPerRun(10, func() { b.PredictBatch(codes, dst) }); allocs != 0 {
		t.Fatalf("PredictBatch with caller buffer allocated %.0f times per run", allocs)
	}
}

func TestBinnedBoostEmpty(t *testing.T) {
	bm, err := dataset.BinMatrix([][]float64{{1}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Ensemble{}).Compile().CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Predict([]uint8{0}); got != 0 {
		t.Fatalf("empty binned ensemble Predict = %v, want 0", got)
	}
}
