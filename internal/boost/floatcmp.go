package boost

// Naked float equality is banned here by hddlint's floateq analyzer;
// the comparisons where exact equality is the semantics funnel through
// these annotated helpers (see cart/floatcmp.go for the rationale).

// sameLabel reports whether two classification labels are the same
// class.
//
//hddlint:floatcmp class labels are stored and predicted as exactly ±1, never computed, so equality is exact by construction
func sameLabel(a, b float64) bool { return a == b }

// exactZero reports whether v is exactly zero — the guard against
// dividing by an all-zero alpha total.
//
//hddlint:floatcmp alphas are nonnegative, so a zero total means "no weighted learners", a sentinel rather than a near-zero accumulation
func exactZero(v float64) bool { return v == 0 }
