package boost

import (
	"testing"

	"hddcart/internal/dataset"
)

// TestBinnedBoostTiledRange checks PredictTiledRange against PredictBatch
// bit for bit over ranges crossing tile boundaries — the TiledPredictor
// contract the sweep engine relies on. The alpha-weighted fold happens in
// learner order per sample on both paths, so equality is exact.
func TestBinnedBoostTiledRange(t *testing.T) {
	x, y := boostData(13, 1000)
	e, err := Train(x, y, nil, Config{Rounds: 8, MaxDepth: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := dataset.BinMatrix(x, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Compile().CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := bm.Quantize(x)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dataset.TileCodes(codes, bm.NumFeatures)
	if err != nil {
		t.Fatal(err)
	}
	want := b.PredictBatch(codes, nil)
	dst := make([]float64, len(codes))
	for _, r := range [][2]int{{0, len(codes)}, {0, 0}, {5, 40},
		{dataset.TileRows - 7, dataset.TileRows + 9}, {200, len(codes)}} {
		lo, hi := r[0], r[1]
		b.PredictTiledRange(tm, lo, hi, dst)
		for i := lo; i < hi; i++ {
			if dst[i-lo] != want[i] {
				t.Fatalf("range [%d,%d): row %d = %v, want %v", lo, hi, i, dst[i-lo], want[i])
			}
		}
	}
	// Empty ensemble: the alpha total is exactly zero, so every row is 0.
	empty, err := (&Ensemble{}).Compile().CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	dst[0] = 7
	empty.PredictTiledRange(tm, 0, 1, dst)
	if dst[0] != 0 {
		t.Fatalf("empty boost tiled = %v, want 0", dst[0])
	}
}

// TestBinnedBoostTiledNoAlloc proves the tiled path stays allocation-free
// with a caller buffer once the pooled per-learner scratch has grown.
func TestBinnedBoostTiledNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool sheds items under the race detector")
	}
	x, y := boostData(5, 600)
	e, err := Train(x, y, nil, Config{Rounds: 6, MaxDepth: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := dataset.BinMatrix(x, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Compile().CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := bm.Quantize(x)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dataset.TileCodes(codes, bm.NumFeatures)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(codes))
	if allocs := testing.AllocsPerRun(10, func() {
		b.PredictTiledRange(tm, 0, len(codes), dst)
	}); allocs != 0 {
		t.Fatalf("PredictTiledRange allocated %.0f times per run", allocs)
	}
}
