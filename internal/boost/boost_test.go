package boost

import (
	"math"
	"math/rand"
	"testing"

	"hddcart/internal/cart"
)

func TestBoostLearnsXOR(t *testing.T) {
	// XOR defeats a depth-2 stump but not a boosted committee of
	// depth-3 trees.
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 800; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x = append(x, []float64{a, b})
		if (a < 0) != (b < 0) {
			y = append(y, -1)
		} else {
			y = append(y, 1)
		}
	}
	// XOR's first split carries ~zero information gain, so greedy weak
	// learners need enough depth to carve their way in (a known CART
	// property); depth 6 committees solve it comfortably.
	e, err := Train(x, y, nil, Config{Rounds: 20, MaxDepth: 6,
		Params: cart.Params{MinSplit: 4, MinBucket: 2, CP: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range x {
		if (e.Predict(x[i]) < 0) != (y[i] < 0) {
			errs++
		}
	}
	if errs > 40 { // 5%
		t.Errorf("boosted XOR errors = %d/800 with %d rounds", errs, e.Rounds())
	}
}

func TestBoostImprovesOverSingleWeakLearner(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 1000; i++ {
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		x = append(x, []float64{a, b, c})
		if a+0.7*b-0.5*c > 0 { // oblique boundary: hard for one shallow tree
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	weak := cart.Params{MinSplit: 10, MinBucket: 5, MaxDepth: 2, CP: 1e-9}
	single, err := cart.TrainClassifier(x, y, nil, weak)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := Train(x, y, nil, Config{Rounds: 40, MaxDepth: 2,
		Params: cart.Params{MinSplit: 10, MinBucket: 5, CP: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	singleErrs, boostErrs := 0, 0
	for i := range x {
		if single.Predict(x[i]) != y[i] {
			singleErrs++
		}
		if (boosted.Predict(x[i]) < 0) != (y[i] < 0) {
			boostErrs++
		}
	}
	if boostErrs >= singleErrs {
		t.Errorf("boosting did not improve: %d vs %d errors", boostErrs, singleErrs)
	}
}

func TestBoostSeparableStopsEarly(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		v := float64(i) - 50
		if v >= 0 {
			v++
		}
		x = append(x, []float64{v})
		if v < 0 {
			y = append(y, -1)
		} else {
			y = append(y, 1)
		}
	}
	e, err := Train(x, y, nil, Config{Rounds: 50, MaxDepth: 2,
		Params: cart.Params{MinSplit: 2, MinBucket: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Rounds() > 2 {
		t.Errorf("separable data trained %d rounds, want early stop", e.Rounds())
	}
	for i := range x {
		if (e.Predict(x[i]) < 0) != (y[i] < 0) {
			t.Fatal("separable data misclassified")
		}
	}
}

func TestBoostPureNoiseStops(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		x = append(x, []float64{rng.Float64()})
		y = append(y, float64(1-2*rng.Intn(2)))
	}
	// Unsplittable learners (MinSplit > n) predict the majority class;
	// after one reweighting the distribution is balanced and the next
	// learner has ε = 0.5, so boosting must stall almost immediately.
	e, err := Train(x, y, nil, Config{Rounds: 50, MaxDepth: 1,
		Params: cart.Params{MinSplit: 1000, MinBucket: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Rounds() > 3 {
		t.Errorf("pure noise trained %d rounds, want quick stall", e.Rounds())
	}
}

func TestBoostScoresBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		x = append(x, []float64{rng.NormFloat64()})
		if x[i][0] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
		if rng.Float64() < 0.1 {
			y[i] = -y[i]
		}
	}
	e, err := Train(x, y, nil, Config{Rounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		s := e.Predict(x[i])
		if s < -1-1e-9 || s > 1+1e-9 || math.IsNaN(s) {
			t.Fatalf("score %v outside [-1,1]", s)
		}
	}
	if !e.PredictFailed([]float64{-3}) || e.PredictFailed([]float64{3}) {
		t.Error("PredictFailed direction wrong")
	}
}

func TestBoostInitialWeights(t *testing.T) {
	// Identical inputs; the 10×-weighted minority class should win.
	x := make([][]float64, 50)
	y := make([]float64, 50)
	w := make([]float64, 50)
	for i := range x {
		x[i] = []float64{0}
		if i < 15 {
			y[i], w[i] = -1, 10
		} else {
			y[i], w[i] = 1, 1
		}
	}
	e, err := Train(x, y, w, Config{Rounds: 5, Params: cart.Params{MinSplit: 2, MinBucket: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Predict([]float64{0}) >= 0 {
		t.Error("weighted minority should win")
	}
}

func TestBoostValidation(t *testing.T) {
	if _, err := Train(nil, nil, nil, Config{}); err == nil {
		t.Error("empty set accepted")
	}
	x := [][]float64{{1}, {2}}
	if _, err := Train(x, []float64{1}, nil, Config{}); err == nil {
		t.Error("target mismatch accepted")
	}
	if _, err := Train(x, []float64{1, -1}, []float64{1}, Config{}); err == nil {
		t.Error("weight mismatch accepted")
	}
	if _, err := Train(x, []float64{1, -1}, []float64{0, 0}, Config{}); err == nil {
		t.Error("zero weights accepted")
	}
}
