package boost

import (
	"math"
	"math/rand"
	"testing"
)

// boostData builds a deterministic noisy two-class dataset.
func boostData(seed int64, n int) (x [][]float64, y []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := range x {
		row := []float64{
			math.Floor(rng.Float64()*32) / 32,
			math.Floor(rng.Float64()*32) / 32,
			math.Floor(rng.Float64()*32) / 32,
		}
		x[i] = row
		y[i] = 1
		if row[0]-row[1]+0.5*row[2] > 0.4 {
			y[i] = -1
		}
		if rng.Float64() < 0.1 {
			y[i] = -y[i]
		}
	}
	return x, y
}

func TestCompiledBoostBitIdentical(t *testing.T) {
	x, y := boostData(13, 1000)
	e, err := Train(x, y, nil, Config{Rounds: 8, MaxDepth: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Rounds() < 2 {
		t.Fatalf("want a multi-round ensemble, got %d rounds", e.Rounds())
	}
	c := e.Compile()
	rng := rand.New(rand.NewSource(31))
	probes := append([][]float64(nil), x...)
	for i := 0; i < 64; i++ {
		probes = append(probes, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
	}
	preds := c.PredictBatch(probes, nil)
	for i, p := range probes {
		want := e.Predict(p)
		if got := c.Predict(p); got != want {
			t.Fatalf("Predict diverged at %d: %v vs %v", i, got, want)
		}
		if preds[i] != want {
			t.Fatalf("PredictBatch diverged at %d: %v vs %v", i, preds[i], want)
		}
		if e.PredictFailed(p) != c.PredictFailed(p) {
			t.Fatalf("PredictFailed diverged at %d", i)
		}
	}
}

func TestCompiledBoostBatchNoAlloc(t *testing.T) {
	x, y := boostData(17, 600)
	e, err := Train(x, y, nil, Config{Rounds: 5, MaxDepth: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := e.Compile()
	dst := make([]float64, len(x))
	if allocs := testing.AllocsPerRun(10, func() { c.PredictBatch(x, dst) }); allocs != 0 {
		t.Fatalf("PredictBatch with caller buffer allocated %.0f times per run", allocs)
	}
}

func TestCompiledBoostEmpty(t *testing.T) {
	c := (&Ensemble{}).Compile()
	if got := c.Predict([]float64{1, 2, 3}); got != 0 {
		t.Fatalf("empty compiled ensemble Predict = %v, want 0", got)
	}
}
