package boost

import "hddcart/internal/cart"

// Compiled is the inference-optimized form of an Ensemble: every weak
// learner flattened into its cart.CompiledTree representation, plus
// allocation-free batch scoring. Outputs are bit-identical to
// Ensemble.Predict: per sample the alpha-weighted scores and the alpha
// total accumulate in learner order, exactly as the pointer path does.
// Compiled is immutable and safe for concurrent use.
type Compiled struct {
	// Trees are the compiled weak learners, in training order.
	Trees []*cart.CompiledTree
	// Alphas are the learner weights.
	Alphas []float64
}

// Compile flattens every weak learner.
func (e *Ensemble) Compile() *Compiled {
	c := &Compiled{
		Trees:  make([]*cart.CompiledTree, len(e.Trees)),
		Alphas: append([]float64(nil), e.Alphas...),
	}
	for i, t := range e.Trees {
		c.Trees[i] = t.Compile()
	}
	return c
}

// Predict returns the weighted vote balance in [−1, +1] (negative =
// failed), bit-identical to Ensemble.Predict.
func (c *Compiled) Predict(x []float64) float64 {
	var score, total float64
	for i, t := range c.Trees {
		score += c.Alphas[i] * t.Predict(x)
		total += c.Alphas[i]
	}
	if exactZero(total) {
		return 0
	}
	return score / total
}

// PredictFailed reports whether the ensemble classifies x as failed.
func (c *Compiled) PredictFailed(x []float64) bool { return c.Predict(x) < 0 }

// PredictBatch scores a block of feature vectors into dst and returns it
// (nil or short dst allocates; a caller-provided len(xs) buffer keeps the
// path allocation-free). dst[i] equals Predict(xs[i]) exactly.
//
//hddlint:noalloc
func (c *Compiled) PredictBatch(xs [][]float64, dst []float64) []float64 {
	if cap(dst) < len(xs) {
		//hddlint:ignore hotalloc cold path: a nil or short dst allocates once; callers pass a len(xs) buffer to stay allocation-free
		dst = make([]float64, len(xs))
	}
	dst = dst[:len(xs)]
	for i, x := range xs {
		dst[i] = c.Predict(x)
	}
	return dst
}
