package boost

import (
	"fmt"
	"sync"

	"hddcart/internal/cart"
	"hddcart/internal/dataset"
)

// Binned is the binned-code inference form of a Compiled ensemble: every
// weak learner remapped onto one dataset.BinnedMatrix's code space
// (cart.CompiledTree.CompileBinned), scoring quantized uint8 rows. Per
// sample the alpha-weighted scores and the alpha total accumulate in
// learner order exactly as the float paths do, so wherever the learners'
// binned scores match their float scores (see the BinnedTree equivalence
// contract) the ensemble outputs are bit-identical too. Binned is
// immutable and safe for concurrent use.
type Binned struct {
	// Trees are the binned weak learners, in training order.
	Trees []*cart.BinnedTree
	// Alphas are the learner weights.
	Alphas []float64
	// Exact reports whether every learner compiled exactly (no split
	// threshold straddles a bin's value range).
	Exact bool
}

// CompileBinned remaps every weak learner onto bm's code space.
func (c *Compiled) CompileBinned(bm *dataset.BinnedMatrix) (*Binned, error) {
	b := &Binned{
		Trees:  make([]*cart.BinnedTree, len(c.Trees)),
		Alphas: append([]float64(nil), c.Alphas...),
		Exact:  true,
	}
	for i, t := range c.Trees {
		bt, err := t.CompileBinned(bm)
		if err != nil {
			return nil, fmt.Errorf("boost: learner %d: %w", i, err)
		}
		if !bt.Exact {
			b.Exact = false
		}
		b.Trees[i] = bt
	}
	return b, nil
}

// Predict returns the weighted vote balance in [−1, +1] (negative =
// failed) for one quantized row, folding in learner order like
// Compiled.Predict.
func (b *Binned) Predict(codes []uint8) float64 {
	var score, total float64
	for i, t := range b.Trees {
		score += b.Alphas[i] * t.Predict(codes)
		total += b.Alphas[i]
	}
	if exactZero(total) {
		return 0
	}
	return score / total
}

// PredictFailed reports whether the ensemble classifies the row as failed.
func (b *Binned) PredictFailed(codes []uint8) bool { return b.Predict(codes) < 0 }

// PredictBatch scores a block of quantized rows into dst and returns it
// (nil or short dst allocates; a caller-provided len(xs) buffer keeps the
// path allocation-free). dst[i] equals Predict(xs[i]) exactly.
//
//hddlint:noalloc
func (b *Binned) PredictBatch(xs [][]uint8, dst []float64) []float64 {
	if cap(dst) < len(xs) {
		//hddlint:ignore hotalloc cold path: a nil or short dst allocates once; callers pass a len(xs) buffer to stay allocation-free
		dst = make([]float64, len(xs))
	}
	dst = dst[:len(xs)]
	for i, codes := range xs {
		dst[i] = b.Predict(codes)
	}
	return dst
}

// binnedTileScores pools the per-learner scratch PredictTiledRange folds
// through, keyed to the caller's range length.
var binnedTileScores = sync.Pool{New: func() any { return new([]float64) }}

// PredictTiledRange scores rows [lo, hi) of a feature-major tiled code
// matrix into dst[:hi-lo], bit-identical to Predict on each row: every
// learner's alpha-weighted score and the alpha total fold in learner
// order per sample. dst must hold at least hi-lo entries. This makes
// Binned an internal/sweep TiledPredictor.
//
//hddlint:noalloc
func (b *Binned) PredictTiledRange(tm *dataset.TiledMatrix, lo, hi int, dst []float64) {
	dst = dst[:hi-lo]
	for i := range dst {
		dst[i] = 0
	}
	if len(dst) == 0 {
		return
	}
	var total float64
	tp := binnedTileScores.Get().(*[]float64)
	if cap(*tp) < len(dst) {
		//hddlint:ignore hotalloc cold path: pooled scratch grows to the high-water range length once, then every Get reuses it
		*tp = make([]float64, len(dst))
	}
	tmp := (*tp)[:len(dst)]
	for j, t := range b.Trees {
		t.PredictTiledRange(tm, lo, hi, tmp)
		a := b.Alphas[j]
		for i, v := range tmp {
			dst[i] += a * v
		}
		total += a
	}
	binnedTileScores.Put(tp)
	if exactZero(total) {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i := range dst {
		dst[i] /= total
	}
}
