// Package boost implements AdaBoost.M1 over shallow CART trees. The
// paper's §V cites the authors' earlier finding that AdaBoost "does not
// provide significant performance improvement and is much more
// computationally expensive" than the plain model — this package lets the
// reproduction test that claim on the synthetic fleet (see the boost
// experiment and benchmark).
package boost

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"hddcart/internal/cart"
)

// Config holds the boosting hyper-parameters.
type Config struct {
	// Rounds is the number of boosting iterations. Default 30.
	Rounds int
	// MaxDepth bounds each weak learner (default 3 — stumps are too weak
	// for 13-feature SMART data, full trees defeat boosting).
	MaxDepth int
	// Params are the remaining CART parameters for the weak learners.
	// Params.MaxBins selects histogram-binned growth for every round's
	// tree (the bins are recomputed per round because boosting reweights
	// samples, but quantization depends only on feature values).
	Params cart.Params
	// Workers bounds the per-round parallelism: each round's tree grows
	// on a cart worker pool of this size and the round's training-set
	// scoring fans out across it. Rounds themselves are inherently
	// sequential (each reweights from the last). 0 = runtime.NumCPU().
	// The ensemble is bit-identical for any worker count: per-sample
	// predictions parallelize but the weighted-error and reweighting
	// sums always accumulate in sample order.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Rounds == 0 {
		c.Rounds = 30
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	return c
}

// Ensemble is a trained AdaBoost classifier.
type Ensemble struct {
	// Trees are the weak learners.
	Trees []*cart.Tree
	// Alphas are the learner weights.
	Alphas []float64
}

// Train fits AdaBoost.M1 on ±1 targets. Initial sample weights (nil = all
// 1) let callers keep the paper's failed-class boosting. Training stops
// early when a learner reaches zero weighted error (the data is separable)
// or when the weighted error hits 0.5 (no learnable signal remains).
func Train(x [][]float64, y, w []float64, cfg Config) (*Ensemble, error) {
	if len(x) == 0 {
		return nil, errors.New("boost: empty training set")
	}
	if len(y) != len(x) {
		return nil, fmt.Errorf("boost: %d samples but %d targets", len(x), len(y))
	}
	if w != nil && len(w) != len(x) {
		return nil, fmt.Errorf("boost: %d samples but %d weights", len(x), len(w))
	}
	cfg = cfg.withDefaults()
	params := cfg.Params
	params.MaxDepth = cfg.MaxDepth
	params.Workers = cfg.Workers

	n := len(x)
	dist := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		if w != nil {
			dist[i] = w[i]
		} else {
			dist[i] = 1
		}
		total += dist[i]
	}
	if total <= 0 {
		return nil, errors.New("boost: zero total weight")
	}
	for i := range dist {
		dist[i] /= total
	}

	e := &Ensemble{}
	mis := make([]bool, n)
	for round := 0; round < cfg.Rounds; round++ {
		tree, err := cart.TrainClassifier(x, y, dist, params)
		if err != nil {
			return nil, fmt.Errorf("boost: round %d: %w", round, err)
		}
		// Score the round's learner over the whole training set on the
		// worker pool; the per-sample mispredict flags are independent,
		// so chunking cannot change them.
		parallelChunks(n, cfg.Workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				mis[i] = !sameLabel(tree.Predict(x[i]), y[i])
			}
		})
		// Weighted error of this learner, summed serially in sample
		// order so eps is identical for every worker count.
		eps := 0.0
		for i := 0; i < n; i++ {
			if mis[i] {
				eps += dist[i]
			}
		}
		if eps >= 0.5-1e-9 {
			// No better than chance under the current distribution.
			if len(e.Trees) == 0 {
				// Keep one learner so the ensemble is usable.
				e.Trees = append(e.Trees, tree)
				e.Alphas = append(e.Alphas, 1)
			}
			break
		}
		if eps <= 1e-12 {
			// Perfect learner: give it a large but finite weight.
			e.Trees = append(e.Trees, tree)
			e.Alphas = append(e.Alphas, 12)
			break
		}
		alpha := 0.5 * math.Log((1-eps)/eps)
		e.Trees = append(e.Trees, tree)
		e.Alphas = append(e.Alphas, alpha)

		// Reweight: mistakes up, hits down; renormalize. Reuses the
		// mispredict flags instead of predicting every sample a second
		// time.
		up, down := math.Exp(alpha), math.Exp(-alpha)
		sum := 0.0
		for i := 0; i < n; i++ {
			if mis[i] {
				dist[i] *= up
			} else {
				dist[i] *= down
			}
			sum += dist[i]
		}
		for i := range dist {
			dist[i] /= sum
		}
	}
	if len(e.Trees) == 0 {
		return nil, errors.New("boost: no learners trained")
	}
	return e, nil
}

// parallelChunks runs fn over contiguous [lo, hi) ranges covering [0, n)
// on up to workers goroutines. fn must confine writes to its own range;
// results are then independent of the chunking and worker count. Small
// inputs run inline — goroutine overhead would dominate.
func parallelChunks(n, workers int, fn func(lo, hi int)) {
	const minChunk = 1024
	if workers <= 1 || n < 2*minChunk {
		fn(0, n)
		return
	}
	chunks := (n + minChunk - 1) / minChunk
	if chunks > workers {
		chunks = workers
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Predict returns the weighted vote balance in [−1, +1] (negative =
// failed).
func (e *Ensemble) Predict(x []float64) float64 {
	var score, total float64
	for i, t := range e.Trees {
		score += e.Alphas[i] * t.Predict(x)
		total += e.Alphas[i]
	}
	if exactZero(total) {
		return 0
	}
	return score / total
}

// PredictFailed reports whether the ensemble classifies x as failed.
func (e *Ensemble) PredictFailed(x []float64) bool { return e.Predict(x) < 0 }

// Rounds returns the number of trained learners.
func (e *Ensemble) Rounds() int { return len(e.Trees) }
