package boost

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestParallelDeterminismBoost proves the AdaBoost ensemble — every weak
// learner and every alpha — is identical for any worker count: per-round
// scoring parallelizes but the weighted-error and reweighting sums always
// accumulate in sample order.
func TestParallelDeterminismBoost(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 1500
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := []float64{
			math.Floor(rng.Float64()*32) / 32,
			math.Floor(rng.Float64()*32) / 32,
			math.Floor(rng.Float64()*32) / 32,
		}
		x[i] = row
		y[i] = 1
		if row[0]-row[1]+0.5*row[2] > 0.4 {
			y[i] = -1
		}
		if rng.Float64() < 0.1 {
			y[i] = -y[i]
		}
	}
	// MaxBins sweeps the weak learners' grower: 0 exact, 32 coarse
	// histogram bins, 255 the uint8 ceiling. Every fixed value must keep
	// the worker-count bit-identity guarantee.
	for _, maxBins := range []int{0, 32, 255} {
		t.Run(fmt.Sprintf("maxbins=%d", maxBins), func(t *testing.T) {
			var refTrees []byte
			var refAlphas []float64
			for _, workers := range []int{1, 2, 4, 8} {
				cfg := Config{Rounds: 8, MaxDepth: 3, Workers: workers}
				cfg.Params.MaxBins = maxBins
				e, err := Train(x, y, nil, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				enc, err := json.Marshal(e.Trees)
				if err != nil {
					t.Fatal(err)
				}
				if workers == 1 {
					refTrees, refAlphas = enc, e.Alphas
					if e.Rounds() < 2 {
						t.Fatalf("reference ensemble trained only %d rounds", e.Rounds())
					}
					continue
				}
				if string(enc) != string(refTrees) {
					t.Errorf("workers=%d learners differ from serial result", workers)
				}
				if len(e.Alphas) != len(refAlphas) {
					t.Fatalf("workers=%d trained %d rounds, serial %d", workers, len(e.Alphas), len(refAlphas))
				}
				for i := range e.Alphas {
					if e.Alphas[i] != refAlphas[i] {
						t.Errorf("workers=%d alpha[%d] = %v, serial %v", workers, i, e.Alphas[i], refAlphas[i])
					}
				}
			}
		})
	}
}
