//go:build !race

package boost

// raceEnabled mirrors race_test.go for regular builds.
const raceEnabled = false
