package cart

import (
	"math"
	"math/rand"
	"testing"
)

// perfFixture trains a deep tree over a wide random matrix — enough
// nodes that the walk's memory behavior, not the branch predictor,
// decides the ranking.
func perfFixture(t *testing.T) (*CompiledTree, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	const n, nf = 4000, 13
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, nf)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = float64(rng.Intn(2)*2 - 1)
	}
	tree, err := TrainClassifier(x, y, nil, Params{MinSplit: 4, MinBucket: 2, CP: 1e-9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tree.Compile(), x
}

// TestBatchPathIsFastPath pins the performance contract DESIGN.md §12
// documents: for bulk scoring, the partitioned batch engine is the fast
// path — per-sample cost at or below the scalar compiled walk. Callers
// scoring one sample at a time should use the pointer tree (or the
// binned scalar walk); callers with matrices must get PredictBatch, and
// this test fails if a regression ever inverts that ranking. Timing
// comparisons are noisy on shared machines, so the test takes the best
// of several rounds and allows the batch path a generous margin before
// declaring the contract broken.
func TestBatchPathIsFastPath(t *testing.T) {
	if raceEnabled {
		t.Skip("timing test is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test skipped in short mode")
	}
	c, x := perfFixture(t)
	dst := make([]float64, len(x))
	scalar := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, row := range x {
				c.Predict(row)
			}
		}
	})
	batch := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.PredictBatch(x, dst)
		}
	})
	best := func(r testing.BenchmarkResult, again func() testing.BenchmarkResult) float64 {
		ns := float64(r.NsPerOp())
		for i := 0; i < 2; i++ {
			if v := float64(again().NsPerOp()); v < ns {
				ns = v
			}
		}
		return ns
	}
	scalarNs := best(scalar, func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, row := range x {
					c.Predict(row)
				}
			}
		})
	})
	batchNs := best(batch, func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.PredictBatch(x, dst)
			}
		})
	})
	// The real ratio is ~0.7 on the reference machine; 1.15 tolerates a
	// noisy neighbor without tolerating an actual inversion.
	if math.IsNaN(batchNs) || batchNs > scalarNs*1.15 {
		t.Fatalf("batch path is no longer the fast path: batch %.0f ns vs scalar %.0f ns per matrix", batchNs, scalarNs)
	}
	t.Logf("batch %.0f ns vs scalar %.0f ns per matrix pass (ratio %.2f)", batchNs, scalarNs, batchNs/scalarNs)
}
