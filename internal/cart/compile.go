package cart

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"unsafe"
)

// CompiledTree is the inference-optimized form of a Tree: the nodes
// flattened breadth-first into parallel struct-of-arrays storage (int32
// feature and child indices, float64 thresholds and leaf payloads) so a
// prediction is an iterative walk over a few contiguous cache lines
// instead of a pointer chase through heap-scattered Node structs, with no
// per-call allocation.
//
// Compilation never changes results: a CompiledTree evaluates exactly the
// comparisons of the source tree (x[feature] < threshold, in the same
// order) and returns the same leaf's Value/PFailed, so Predict, ProbFailed
// and the batch variants are bit-identical to the pointer path for every
// input. The equivalence tests and FuzzCompiledTreeEquivalence enforce
// this.
//
// CompiledTree is immutable after Compile and safe for concurrent use.
type CompiledTree struct {
	// Kind records classification vs regression.
	Kind Kind
	// NumFeatures is the expected feature-vector length.
	NumFeatures int
	// FeatureNames optionally labels features (copied from the source).
	FeatureNames []string

	// Node arrays, root at index 0, children after their parent
	// (breadth-first). Feature[i] is the split feature of node i, or -1
	// for a leaf; Left/Right are node indices (valid only for internal
	// nodes); Threshold, Value and PFailed mirror the Node fields.
	Feature   []int32
	Left      []int32
	Right     []int32
	Threshold []float64
	Value     []float64
	PFailed   []float64

	// nodes is the packed hot-path mirror of the arrays above: one
	// 16-byte record per node, so each traversal step is a single cache
	// line touch instead of four bounds-checked array loads. It requires
	// the breadth-first sibling layout (Right[i] == Left[i]+1); Compile
	// always produces it, and Validate rebuilds it for hand-assembled
	// trees. leaf() falls back to the plain arrays when it is absent.
	nodes []packedNode
	// depth is the maximum number of splits on any root-to-leaf path.
	depth int
	// needLen is 1 + the largest feature index any split reads: a row at
	// least this long can be scored without bounds checks, which the
	// partitioned batch kernel verifies up front for every row.
	needLen int
}

// packedNode is one node of the hot traversal path. The right child is
// implicitly left+1 (breadth-first sibling adjacency). Every step is
// branch-free: i = left + (0 if x[feature] < threshold else 1). Leaves are
// encoded as self-loops — threshold NaN (every comparison is false, so the
// step always "goes right") with left = self−1, landing back on the leaf —
// so the traversal needs no leaf branch at all; a NaN threshold is also
// what marks arrival.
type packedNode struct {
	threshold float64
	feature   int32
	left      int32
}

// seal builds the packed hot-path mirror when the layout supports it
// (Compile output always does): sibling adjacency and no NaN thresholds on
// internal nodes, which would collide with the leaf encoding.
func (c *CompiledTree) seal() {
	for i := range c.Feature {
		if c.Feature[i] >= 0 && (c.Right[i] != c.Left[i]+1 || math.IsNaN(c.Threshold[i])) {
			return // keep the slow path for exotic hand-built layouts
		}
	}
	nodes := make([]packedNode, len(c.Feature))
	depths := make([]int, len(c.Feature))
	c.depth = 0
	c.needLen = 0
	for i := range nodes {
		if c.Feature[i] < 0 {
			nodes[i] = packedNode{threshold: math.NaN(), feature: 0, left: int32(i) - 1}
			continue
		}
		nodes[i] = packedNode{threshold: c.Threshold[i], feature: c.Feature[i], left: c.Left[i]}
		if int(c.Feature[i]) >= c.needLen {
			c.needLen = int(c.Feature[i]) + 1
		}
		// Children come after their parent, so their depth is final by
		// the time the forward pass reaches them.
		d := depths[i] + 1
		depths[c.Left[i]] = d
		depths[c.Right[i]] = d
		if d > c.depth {
			c.depth = d
		}
	}
	c.nodes = nodes
}

// Compile flattens the tree into its inference-optimized form.
func (t *Tree) Compile() *CompiledTree {
	n := t.NumNodes()
	c := &CompiledTree{
		Kind:         t.Kind,
		NumFeatures:  t.NumFeatures,
		FeatureNames: t.FeatureNames,
		Feature:      make([]int32, 0, n),
		Left:         make([]int32, 0, n),
		Right:        make([]int32, 0, n),
		Threshold:    make([]float64, 0, n),
		Value:        make([]float64, 0, n),
		PFailed:      make([]float64, 0, n),
	}
	if t.Root == nil {
		return c
	}
	// Breadth-first layout keeps the heavily-traversed top levels of the
	// tree adjacent in memory.
	queue := make([]*Node, 0, n)
	queue = append(queue, t.Root)
	for at := 0; at < len(queue); at++ {
		nd := queue[at]
		feat := int32(-1)
		if !nd.IsLeaf() {
			feat = int32(nd.Feature)
		}
		c.Feature = append(c.Feature, feat)
		c.Left = append(c.Left, -1)
		c.Right = append(c.Right, -1)
		c.Threshold = append(c.Threshold, nd.Threshold)
		c.Value = append(c.Value, nd.Value)
		c.PFailed = append(c.PFailed, nd.PFailed)
		if !nd.IsLeaf() {
			c.Left[at] = int32(len(queue))
			queue = append(queue, nd.Left)
			c.Right[at] = int32(len(queue))
			queue = append(queue, nd.Right)
		}
	}
	c.seal()
	return c
}

// NumNodes returns the node count.
func (c *CompiledTree) NumNodes() int { return len(c.Feature) }

// leaf returns the index of the leaf x falls into. The packed walk is
// the scalar hot path; bcecheck holds it to the hand-elided contract
// (the PR that introduced the unsafe walk bought ~12% on it), so
// reintroducing a checked node load fails the lint run.
//
//hddlint:nobc
func (c *CompiledTree) leaf(x []float64) int {
	// len > 0 (not just non-nil) so the prove pass can kill the
	// &nodes[0] bounds check.
	if nodes := c.nodes; len(nodes) > 0 {
		base := unsafe.Pointer(&nodes[0])
		i := 0
		for {
			// Indexes come from the sealed layout (seal verified every
			// left/right child is in range), so the node load's bounds check
			// is provably dead and elided by hand.
			nd := (*packedNode)(unsafe.Add(base, uintptr(i)*unsafe.Sizeof(packedNode{})))
			thr := nd.threshold
			if thr != thr { // NaN: the leaf self-loop encoding
				return i
			}
			// Mirrors the pointer tree's x[f] < threshold branch exactly
			// (NaN inputs compare false, so they descend right there and
			// here alike). The feature load's check is load-bearing: x is
			// caller data, and eliding it by hand would turn a short row
			// into an out-of-bounds unsafe read instead of a panic.
			//hddlint:ignore bcecheck x[nd.feature] guards caller-provided rows; eliding it trades a panic for an OOB read
			if x[nd.feature] < thr {
				i = int(nd.left)
			} else {
				i = int(nd.left) + 1
			}
		}
	}
	// Inlining attributes the fallback's checks to this call line; they
	// are deliberate, so the contract exempts the call.
	//hddlint:ignore bcecheck the fallback array walk keeps every check on purpose; it is off the hot path
	return c.leafArrays(x)
}

// leafArrays is the fallback walk for hand-assembled trees without the
// packed mirror. It is off the hot path and carries no bounds-check
// contract: every index here is checked.
func (c *CompiledTree) leafArrays(x []float64) int {
	feat, thr := c.Feature, c.Threshold
	left, right := c.Left, c.Right
	i := 0
	for {
		f := feat[i]
		if f < 0 {
			return i
		}
		if x[f] < thr[i] {
			i = int(left[i])
		} else {
			i = int(right[i])
		}
	}
}

// Predict returns the tree's output for x, bit-identical to the source
// Tree.Predict.
func (c *CompiledTree) Predict(x []float64) float64 {
	return c.Value[c.leaf(x)]
}

// PredictFailed reports whether the tree labels x failed.
func (c *CompiledTree) PredictFailed(x []float64) bool { return c.Predict(x) < 0 }

// ProbFailed returns the weighted failed-class probability of x's leaf
// (classification trees; regression trees return NaN, as Tree.ProbFailed
// does).
func (c *CompiledTree) ProbFailed(x []float64) float64 {
	if c.Kind != Classification {
		return math.NaN()
	}
	return c.PFailed[c.leaf(x)]
}

// minPartitionBatch is the block size below which a partitioned traversal's
// per-node bookkeeping outweighs its per-sample savings and scoreBatch walks
// samples one at a time instead.
const minPartitionBatch = 32

// partitionBlock caps how many samples one partitioned traversal handles.
// Each tree level touches every row in the block, so the block's rows must
// stay cache-resident across levels — blocking bounds the working set
// (~1024 rows of ≤ a few hundred bytes plus index buffers) to L2 instead of
// re-streaming the whole matrix from memory once per level.
const partitionBlock = 1024

// minSegPartition is the segment size below which the partitioned
// traversal stops splitting and walks each sample down the remaining
// subtree instead. The walk's per-level child select is a data-dependent
// branch, so it pays a misprediction about every other level; the
// partition path is branch-free (fused-cursor scalar tail below the
// vector width) and keeps winning down to two-sample segments — only a
// single sample, where partitioning cannot split anything, walks.
// Lowering this from 16 was worth ~10% of single-thread fleet-sweep
// throughput on every kernel tier. Output-invariant: each sample writes
// its own dst row exactly once either way.
const minSegPartition = 2

// batchScratch holds the reusable buffers of a partitioned batch
// traversal; pooled so steady-state batch scoring never allocates.
type batchScratch struct {
	cur, next []int32
	rows      []unsafe.Pointer
	stack     []segment
	// order is the identity permutation 0..n-1, kept so ensemble scoring
	// can root-partition every tree from the same source buffer without
	// re-gathering rows per tree. Lazily sized by accumulatePartitioned.
	order []int32
}

// segment is one pending unit of partitioned traversal: the samples in
// buf[lo:hi] (cur or next, by flipped) have all reached node.
type segment struct {
	node    int32
	lo, hi  int32
	flipped bool
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// scoreBatch fills dst[i] with payload[leaf(xs[i])] (or accumulates it,
// when add is set), bit-identical to a per-sample walk: every sample still
// sees exactly the comparisons x[feature] < threshold along its own
// root-to-leaf path (NaN inputs compare false and descend right, as in the
// pointer tree), and each dst[i] is touched exactly once.
//
//hddlint:noalloc
func (c *CompiledTree) scoreBatch(xs [][]float64, dst, payload []float64, add bool) {
	if c.nodes == nil || len(xs) < minPartitionBatch {
		// Hand-assembled trees without the sealed layout walk the arrays;
		// small batches aren't worth the partition setup either way.
		if add {
			for i, x := range xs {
				dst[i] += payload[c.leaf(x)]
			}
		} else {
			for i, x := range xs {
				dst[i] = payload[c.leaf(x)]
			}
		}
		return
	}
	for lo := 0; lo < len(xs); lo += partitionBlock {
		hi := min(lo+partitionBlock, len(xs))
		if !c.scorePartitioned(xs[lo:hi], dst[lo:hi], payload, add) {
			if add {
				for i, x := range xs[lo:hi] {
					dst[lo+i] += payload[c.leaf(x)]
				}
			} else {
				for i, x := range xs[lo:hi] {
					dst[lo+i] = payload[c.leaf(x)]
				}
			}
		}
	}
}

// scorePartitioned is the batch engine: a tree-major traversal that sweeps
// each node's block of samples in one tight loop. Instead of walking every
// sample root-to-leaf (a dependent node load per step), it partitions the
// sample indices at each split — left-goers packed from the front of the
// output buffer, right-goers from the back — and recurses on the two
// halves, ping-ponging between two index buffers. The split's feature and
// threshold stay in registers across the whole block and there are no node
// loads or branches inside the loop, so throughput is bounded by the
// x[feature] loads rather than by branch mispredictions or pointer-chase
// latency. Total work is proportional to the samples' actual path lengths:
// exactly the comparisons a per-sample walk does, grouped by node rather
// than by sample, so results are bit-identical.
//
// The kernel indexes raw row pointers to keep bounds checks out of the hot
// loop. That is safe because (a) the sealed layout (Compile, or Validate
// on hand-assembled trees) guarantees every child and payload index is in
// range, (b) partition positions stay within each segment by construction,
// and (c) every row is checked against needLen — the largest feature any
// split reads — up front. A batch with a too-short row reports false and
// the caller re-runs it through the per-sample walk, which panics on the
// short row only if a sample actually routes through the big split,
// exactly as the pointer tree would.
//
//hddlint:noalloc
func (c *CompiledTree) scorePartitioned(xs [][]float64, dst, payload []float64, add bool) bool {
	n := len(xs)
	feat, thr := c.Feature, c.Threshold
	if feat[0] < 0 { // single-leaf tree
		p := payload[0]
		if add {
			for i := range dst {
				dst[i] += p
			}
		} else {
			for i := range dst {
				dst[i] = p
			}
		}
		return true
	}

	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.cur) < n {
		//hddlint:ignore hotalloc cold path: pooled scratch grows to the high-water batch size once, then every Get reuses it
		sc.cur = make([]int32, n)
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.next = make([]int32, n)
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.rows = make([]unsafe.Pointer, n)
	}
	rows := sc.rows[:n]
	rp := unsafe.Pointer(&rows[0])

	// Root level: gather the row pointers and partition the implicit
	// 0..n-1 index order directly into cur in a single fused pass.
	l, ok := partitionRoot(xs, rows, unsafe.Pointer(&sc.cur[0]), c.needLen,
		uintptr(feat[0])*8, thr[0])
	if !ok {
		batchScratchPool.Put(sc)
		return false
	}
	c.runSegments(sc, rp, dst, payload, l, n, add)
	batchScratchPool.Put(sc)
	return true
}

// runSegments drains the partitioned traversal below an already-split
// root: cur[:rootLeft] holds the left-goers, cur[rootLeft:n] the
// right-goers, and rows (via rp) the validated row pointers. It delivers
// (or accumulates, with add) every sample's leaf payload into dst.
//
//hddlint:noalloc
func (c *CompiledTree) runSegments(sc *batchScratch, rp unsafe.Pointer,
	dst, payload []float64, rootLeft, n int, add bool) {
	feat, thr := c.Feature, c.Threshold
	left, right := c.Left, c.Right
	cur, next := sc.cur[:n], sc.next[:n]
	stack := sc.stack[:0]
	//hddlint:ignore hotalloc append targets pooled scratch that grows to the tree depth once, then stays within capacity
	stack = append(stack,
		segment{node: right[0], lo: int32(rootLeft), hi: int32(n)},
		segment{node: left[0], lo: 0, hi: int32(rootLeft)})
	for len(stack) > 0 {
		sg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if sg.lo == sg.hi {
			continue
		}
		src, out := cur, next
		if sg.flipped {
			src, out = next, cur
		}
		node := sg.node
		seg := src[sg.lo:sg.hi]
		if feat[node] < 0 { // leaf: deliver the payload to every sample here
			p := payload[node]
			if add {
				for _, idx := range seg {
					dst[idx] += p
				}
			} else {
				for _, idx := range seg {
					dst[idx] = p
				}
			}
			continue
		}
		if ln := left[node]; feat[ln] < 0 && feat[ln+1] < 0 {
			// Both children are leaves: fuse the final split and the leaf
			// delivery into one pass — the comparison picks the child's
			// payload directly, so the segment is never partitioned and the
			// two leaf segments never exist.
			leafPairSeg(unsafe.Pointer(&src[sg.lo]), len(seg), rp,
				uintptr(feat[node])*8, thr[node],
				unsafe.Pointer(&dst[0]), unsafe.Pointer(&payload[ln]), add)
			continue
		}
		if len(seg) < minSegPartition {
			// Tiny segment: partitioning it would spawn a pair of segments
			// per remaining subtree node, and on large trees that per-node
			// bookkeeping swamps the per-sample work. Walk each sample down
			// the subtree instead — the exact same comparisons in the exact
			// same order, just grouped by sample again.
			walkSeg(c.nodes, seg, rp, dst, payload, node, add)
			continue
		}
		nl := partitionSeg(unsafe.Pointer(&src[sg.lo]), unsafe.Pointer(&out[sg.lo]),
			len(seg), rp, uintptr(feat[node])*8, thr[node])
		mid := sg.lo + int32(nl)
		//hddlint:ignore hotalloc append targets pooled scratch that grows to the tree depth once, then stays within capacity
		stack = append(stack,
			segment{node: right[node], lo: mid, hi: sg.hi, flipped: !sg.flipped},
			segment{node: left[node], lo: sg.lo, hi: mid, flipped: !sg.flipped})
	}
	sc.stack = stack[:0]
}

// partitionRoot splits the implicit sample order 0..n-1 on x[f] < t:
// left-goers pack outp from the front, right-goers from the back, and the
// left count is returned. Fused into the same pass, it validates each row
// against need and records its data pointer in rows for the deeper levels;
// a short row aborts with ok=false (partial scratch writes are harmless).
// foff is the byte offset of the split feature within a row.
//
// Both partition kernels are standalone, never-inlined functions: inlined
// into the segment driver their loop counters spill to the stack, roughly
// doubling the per-sample cost.
//
//go:noinline
//hddlint:noalloc
func partitionRoot(xs [][]float64, rows []unsafe.Pointer, outp unsafe.Pointer,
	need int, foff uintptr, t float64) (int, bool) {
	l, m := 0, len(xs)-1
	for k, row := range xs {
		if len(row) < need {
			return 0, false
		}
		p := unsafe.Pointer(&row[0])
		rows[k] = p
		xv := *(*float64)(unsafe.Add(p, foff))
		// off selects the front (left) or back (right) slot; off and w
		// compile to conditional moves, mirroring x[f] < threshold exactly
		// (NaN inputs compare false and go right, as in the pointer tree).
		off, w := m, 0
		if xv < t {
			off, w = 0, 1
		}
		*(*int32)(unsafe.Add(outp, uintptr(l+off)*4)) = int32(k)
		l += w
		m--
	}
	return l, true
}

// partitionSeg is partitionRoot for an interior node: the segment's sample
// indices are read from srcp instead of being implicit, and the rows were
// validated and gathered at the root.
//
//go:noinline
//hddlint:noalloc
func partitionSeg(srcp, outp unsafe.Pointer, n int, rp unsafe.Pointer, foff uintptr, t float64) int {
	l, m := 0, n-1
	for k := 0; k < n; k++ {
		idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
		xv := *(*float64)(unsafe.Add(*(*unsafe.Pointer)(unsafe.Add(rp, uintptr(uint32(idx))*8)), foff))
		off, w := m, 0
		if xv < t {
			off, w = 0, 1
		}
		*(*int32)(unsafe.Add(outp, uintptr(l+off)*4)) = idx
		l += w
		m--
	}
	return l
}

// leafPairSeg finishes a segment whose node has two leaf children: one
// pass compares each sample and delivers the chosen child's payload (payp
// points at the left child's payload; the right sibling's follows it, by
// the sealed sibling adjacency). The child pick is an integer select, so
// the loop stays branch-free like the partition kernels.
//
//go:noinline
//hddlint:noalloc
func leafPairSeg(srcp unsafe.Pointer, n int, rp unsafe.Pointer, foff uintptr, t float64,
	dstp, payp unsafe.Pointer, add bool) {
	if add {
		for k := 0; k < n; k++ {
			idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
			xv := *(*float64)(unsafe.Add(*(*unsafe.Pointer)(unsafe.Add(rp, uintptr(uint32(idx))*8)), foff))
			off := uintptr(8)
			if xv < t {
				off = 0
			}
			*(*float64)(unsafe.Add(dstp, uintptr(uint32(idx))*8)) += *(*float64)(unsafe.Add(payp, off))
		}
		return
	}
	for k := 0; k < n; k++ {
		idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
		xv := *(*float64)(unsafe.Add(*(*unsafe.Pointer)(unsafe.Add(rp, uintptr(uint32(idx))*8)), foff))
		off := uintptr(8)
		if xv < t {
			off = 0
		}
		*(*float64)(unsafe.Add(dstp, uintptr(uint32(idx))*8)) = *(*float64)(unsafe.Add(payp, off))
	}
}

// walkSeg finishes a small segment sample-major: each listed sample walks
// the packed subtree rooted at node to its leaf, whose payload is stored
// into (or, with add, accumulated onto) its dst slot. The unchecked
// feature loads are safe for the same reason the partition kernels' are:
// every row was validated against needLen at the root, and needLen covers
// every feature any split reads.
//
//hddlint:noalloc
func walkSeg(nodes []packedNode, seg []int32, rp unsafe.Pointer,
	dst, payload []float64, node int32, add bool) {
	for _, idx := range seg {
		row := *(*unsafe.Pointer)(unsafe.Add(rp, uintptr(uint32(idx))*8))
		i := node
		for {
			nd := &nodes[i]
			t := nd.threshold
			if t != t { // NaN threshold marks a leaf
				break
			}
			if *(*float64)(unsafe.Add(row, uintptr(nd.feature)*8)) < t {
				i = nd.left
			} else {
				i = nd.left + 1
			}
		}
		if add {
			dst[idx] += payload[i]
		} else {
			dst[idx] = payload[i]
		}
	}
}

// PredictBatch scores a block of feature vectors into dst and returns it.
// A nil or short dst is replaced by a fresh slice; passing a len(xs)
// buffer makes the steady-state path allocation-free. dst[i] equals
// Predict(xs[i]) exactly.
//
//hddlint:noalloc
func (c *CompiledTree) PredictBatch(xs [][]float64, dst []float64) []float64 {
	//hddlint:ignore hotalloc nil/short-dst convenience path allocates by contract; a len(xs) dst is allocation-free
	dst = sizeBuf(dst, len(xs))
	c.scoreBatch(xs, dst, c.Value, false)
	return dst
}

// PredictBatchAdd accumulates Predict(xs[i]) onto dst[i] for every sample.
// dst must already hold len(xs) partial sums. Ensemble scorers use it to
// fold per-tree contributions directly in the leaf-delivery pass instead
// of materializing a per-tree score slice and adding it separately; each
// dst[i] receives exactly one += per call, so calling it once per tree in
// ensemble order reproduces the pointer ensemble's sample-major sum to the
// last bit.
//
//hddlint:noalloc
func (c *CompiledTree) PredictBatchAdd(xs [][]float64, dst []float64) {
	c.scoreBatch(xs, dst[:len(xs)], c.Value, true)
}

// AccumulateBatch accumulates every tree's Predict(xs[i]) onto dst[i], in
// tree order per sample — the shared inner loop of ensemble batch scoring.
// dst must already hold len(xs) partial sums. Compared with calling
// PredictBatchAdd per tree it validates and gathers each block's row
// pointers once for the whole ensemble instead of once per tree. The
// accumulation order per sample is identical, so results still match the
// pointer ensemble bit for bit.
//
//hddlint:noalloc
func AccumulateBatch(trees []*CompiledTree, xs [][]float64, dst []float64) {
	if len(trees) == 0 || len(xs) == 0 {
		return
	}
	dst = dst[:len(xs)]
	need := 0
	shared := len(xs) >= minPartitionBatch
	for _, t := range trees {
		if t.nodes == nil {
			shared = false
			break
		}
		need = max(need, t.needLen)
	}
	if !shared {
		for _, t := range trees {
			t.scoreBatch(xs, dst, t.Value, true)
		}
		return
	}
	for lo := 0; lo < len(xs); lo += partitionBlock {
		hi := min(lo+partitionBlock, len(xs))
		if !accumulatePartitioned(trees, xs[lo:hi], dst[lo:hi], need) {
			for _, t := range trees {
				t.scoreBatch(xs[lo:hi], dst[lo:hi], t.Value, true)
			}
		}
	}
}

// accumulatePartitioned runs one cache-resident block through every tree:
// rows are validated and gathered once, then each tree root-partitions the
// shared identity order and drains its segments, folding leaf values onto
// dst inside the delivery pass.
//
//hddlint:noalloc
func accumulatePartitioned(trees []*CompiledTree, xs [][]float64, dst []float64, need int) bool {
	n := len(xs)
	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.cur) < n {
		//hddlint:ignore hotalloc cold path: pooled scratch grows to the high-water batch size once, then every Get reuses it
		sc.cur = make([]int32, n)
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.next = make([]int32, n)
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.rows = make([]unsafe.Pointer, n)
	}
	if cap(sc.order) < n {
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.order = make([]int32, n)
		for i := range sc.order {
			sc.order[i] = int32(i)
		}
	}
	rows := sc.rows[:n]
	if !gatherRows(xs, rows, need) {
		batchScratchPool.Put(sc)
		return false
	}
	rp := unsafe.Pointer(&rows[0])
	op := unsafe.Pointer(&sc.order[0])
	for _, t := range trees {
		if t.Feature[0] < 0 { // single-leaf tree
			p := t.Value[0]
			for i := range dst {
				dst[i] += p
			}
			continue
		}
		l := partitionSeg(op, unsafe.Pointer(&sc.cur[0]), n, rp,
			uintptr(t.Feature[0])*8, t.Threshold[0])
		t.runSegments(sc, rp, dst, t.Value, l, n, true)
	}
	batchScratchPool.Put(sc)
	return true
}

// gatherRows validates every row of a block against the ensemble-wide
// need (1 + the largest feature index any tree reads) and records the row
// data pointers; a short row aborts with false.
//
//go:noinline
//hddlint:noalloc
func gatherRows(xs [][]float64, rows []unsafe.Pointer, need int) bool {
	for k, row := range xs {
		if len(row) < need {
			return false
		}
		rows[k] = unsafe.Pointer(&row[0])
	}
	return true
}

// ProbFailedBatch fills dst with per-sample failed probabilities (NaN for
// regression trees), matching ProbFailed exactly.
//
//hddlint:noalloc
func (c *CompiledTree) ProbFailedBatch(xs [][]float64, dst []float64) []float64 {
	//hddlint:ignore hotalloc nil/short-dst convenience path allocates by contract; a len(xs) dst is allocation-free
	dst = sizeBuf(dst, len(xs))
	if c.Kind != Classification {
		for i := range dst {
			dst[i] = math.NaN()
		}
		return dst
	}
	c.scoreBatch(xs, dst, c.PFailed, false)
	return dst
}

// sizeBuf returns dst truncated/grown to length n, reusing its storage
// when capacity allows.
func sizeBuf(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// Validate checks the structural invariants a CompiledTree needs for safe
// traversal (children in range and after their parent, feature indices
// within NumFeatures). Compile always produces a valid tree; Validate
// guards trees assembled by hand or decoded from external data.
func (c *CompiledTree) Validate() error {
	n := len(c.Feature)
	if len(c.Left) != n || len(c.Right) != n || len(c.Threshold) != n ||
		len(c.Value) != n || len(c.PFailed) != n {
		return errors.New("cart: compiled tree has ragged node arrays")
	}
	if n == 0 {
		return errors.New("cart: compiled tree has no nodes")
	}
	for i := 0; i < n; i++ {
		if c.Feature[i] < 0 {
			continue // leaf
		}
		if int(c.Feature[i]) >= c.NumFeatures {
			return fmt.Errorf("cart: compiled node %d splits on feature %d of %d",
				i, c.Feature[i], c.NumFeatures)
		}
		for _, child := range [2]int32{c.Left[i], c.Right[i]} {
			if child <= int32(i) || child >= int32(n) {
				return fmt.Errorf("cart: compiled node %d has bad child index %d", i, child)
			}
		}
	}
	if c.nodes == nil {
		c.seal()
	}
	return nil
}
