//go:build amd64 && !noasm

package cart

import "unsafe"

// AVX2 tier: hand-written kernels in partition_avx2_amd64.s. Both use
// the unsigned-compare trick (XOR 0x80 on both sides, then a signed
// VPCMPGTB) and VPMOVMSKB to turn eight codes into a compare mask, then
// compact order-preservingly through the permTabL/permTabR VPERMD
// tables built in partition_swar.go — the same blind-write window
// contract as the SWAR tier (vector loop while 16 or more elements
// remain, branch-free scalar tail on the shared cursors).
//
// The segment kernel gathers its eight code bytes with scalar VPINSRB
// loads rather than VPGATHERDD: a dword gather on the last byte of the
// matrix would read up to three bytes past the allocation.

// partitionRootTiledAVX2 is the AVX2 tier of partitionRootBinnedTiled.
//
//go:noescape
func partitionRootTiledAVX2(colp unsafe.Pointer, n int, outp unsafe.Pointer, cut uint8) int

// partitionSegTiledAVX2 is the AVX2 tier of partitionSegBinnedTiled.
//
//go:noescape
func partitionSegTiledAVX2(srcp, outp unsafe.Pointer, n int, colp unsafe.Pointer, cut uint8) int

// asmKernelRegistry pairs every assembly-backed kernel in this package
// with its pure-Go fallback and the internal/equiv path family that
// pins both bit-identical. The hddlint asmfallback analyzer fails the
// build if a body-less kernel declaration is missing from this table,
// and the equiv dispatch-matrix test fails if a named path family does
// not exist in the harness.
var asmKernelRegistry = []asmKernel{
	{asm: partitionRootTiledAVX2, fallback: partitionRootTiledSWAR, equivPath: "tiled-range"},
	{asm: partitionSegTiledAVX2, fallback: partitionSegTiledSWAR, equivPath: "tiled-range"},
}
