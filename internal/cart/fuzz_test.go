package cart

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// fuzzNumFeatures is the feature-vector width of every fuzz-built tree.
const fuzzNumFeatures = 4

// treeFromBytes deterministically decodes an arbitrary byte string into a
// structurally valid tree: each step consumes a control byte (grow an
// internal node vs. emit a leaf) plus split/leaf payload bytes. Depth and
// node count are bounded by the input length, so every input terminates.
func treeFromBytes(data []byte) *Tree {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	var build func(depth int) *Node
	build = func(depth int) *Node {
		ctrl := next()
		n := &Node{
			Value:   float64(int(next())-128) / 16,
			PFailed: float64(next()) / 255,
			N:       int(next()) + 1,
			W:       float64(next())/8 + 0.5,
		}
		if depth >= 12 || ctrl < 128 || pos >= len(data) {
			return n // leaf
		}
		n.Feature = int(next()) % fuzzNumFeatures
		n.Threshold = float64(int(next())-128) / 10
		n.Gain = float64(next()) / 512
		n.Left = build(depth + 1)
		n.Right = build(depth + 1)
		return n
	}
	kind := Classification
	if next()%2 == 1 {
		kind = Regression
	}
	return &Tree{Root: build(0), Kind: kind, NumFeatures: fuzzNumFeatures}
}

// FuzzTreeJSONRoundTrip guards the serialization the parallel-determinism
// tests compare against: any tree must survive Marshal→Unmarshal with its
// predictions intact, and a second Marshal must reproduce the first byte
// for byte (so byte comparison of trees is a sound equality test).
func FuzzTreeJSONRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{200, 10, 20, 30, 40, 1, 50, 3, 0, 0, 0, 0, 0, 255, 1, 2, 3, 4, 5})
	f.Add(bytes.Repeat([]byte{0xC8, 0x55, 0x10, 0x99, 0x42}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		orig := treeFromBytes(data)
		enc, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Tree
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("unmarshal own output: %v\n%s", err, enc)
		}
		reenc, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(enc, reenc) {
			t.Fatalf("round-trip not byte-stable:\n%s\n%s", enc, reenc)
		}
		// Predictions must be preserved at a probe grid plus every
		// split threshold (both sides of each boundary).
		probes := [][]float64{
			{0, 0, 0, 0},
			{1, 1, 1, 1},
			{-12.8, 12.7, -1, 1},
		}
		var collect func(n *Node)
		collect = func(n *Node) {
			if n == nil || n.IsLeaf() {
				return
			}
			lo, hi := make([]float64, fuzzNumFeatures), make([]float64, fuzzNumFeatures)
			for i := range lo {
				lo[i] = n.Threshold - 0.01
				hi[i] = n.Threshold + 0.01
			}
			probes = append(probes, lo, hi)
			collect(n.Left)
			collect(n.Right)
		}
		collect(orig.Root)
		for _, p := range probes {
			a, b := orig.Predict(p), back.Predict(p)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("prediction changed after round-trip: %v vs %v at %v", a, b, p)
			}
			if orig.Kind == Classification {
				pa, pb := orig.ProbFailed(p), back.ProbFailed(p)
				if pa != pb && !(math.IsNaN(pa) && math.IsNaN(pb)) {
					t.Fatalf("ProbFailed changed after round-trip: %v vs %v", pa, pb)
				}
			}
		}
		if orig.NumNodes() != back.NumNodes() || orig.NumLeaves() != back.NumLeaves() ||
			orig.Depth() != back.Depth() {
			t.Fatalf("tree shape changed: %d/%d/%d vs %d/%d/%d nodes/leaves/depth",
				orig.NumNodes(), orig.NumLeaves(), orig.Depth(),
				back.NumNodes(), back.NumLeaves(), back.Depth())
		}
	})
}
