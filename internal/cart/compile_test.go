package cart

import (
	"math"
	"math/rand"
	"testing"
)

// probeGrid returns deterministic probe inputs spanning the training rows
// plus perturbations that straddle every split threshold of the tree.
func probeGrid(tree *Tree, x [][]float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	probes := append([][]float64(nil), x...)
	var collect func(n *Node)
	collect = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		base := x[rng.Intn(len(x))]
		lo := append([]float64(nil), base...)
		hi := append([]float64(nil), base...)
		lo[n.Feature] = n.Threshold - 1e-9
		hi[n.Feature] = n.Threshold + 1e-9
		probes = append(probes, lo, hi)
		collect(n.Left)
		collect(n.Right)
	}
	collect(tree.Root)
	for i := 0; i < 64; i++ {
		p := make([]float64, tree.NumFeatures)
		for j := range p {
			p[j] = rng.NormFloat64() * 10
		}
		probes = append(probes, p)
	}
	return probes
}

// requireBitIdentical checks every prediction surface of the compiled tree
// against the pointer tree on the given probes.
func requireBitIdentical(t *testing.T, tree *Tree, probes [][]float64) {
	t.Helper()
	ct := tree.Compile()
	if err := ct.Validate(); err != nil {
		t.Fatalf("compiled tree invalid: %v", err)
	}
	if ct.NumNodes() != tree.NumNodes() {
		t.Fatalf("node count changed: %d vs %d", ct.NumNodes(), tree.NumNodes())
	}
	for _, p := range probes {
		want, got := tree.Predict(p), ct.Predict(p)
		if want != got {
			t.Fatalf("Predict diverged at %v: pointer %v, compiled %v", p, want, got)
		}
		if tree.PredictFailed(p) != ct.PredictFailed(p) {
			t.Fatalf("PredictFailed diverged at %v", p)
		}
		pw, pg := tree.ProbFailed(p), ct.ProbFailed(p)
		if pw != pg && !(math.IsNaN(pw) && math.IsNaN(pg)) {
			t.Fatalf("ProbFailed diverged at %v: %v vs %v", p, pw, pg)
		}
	}
	// Batch surfaces must match the per-sample path element for element.
	preds := ct.PredictBatch(probes, nil)
	probs := ct.ProbFailedBatch(probes, nil)
	for i, p := range probes {
		if preds[i] != tree.Predict(p) {
			t.Fatalf("PredictBatch[%d] = %v, want %v", i, preds[i], tree.Predict(p))
		}
		pw := tree.ProbFailed(p)
		if probs[i] != pw && !(math.IsNaN(pw) && math.IsNaN(probs[i])) {
			t.Fatalf("ProbFailedBatch[%d] = %v, want %v", i, probs[i], pw)
		}
	}
}

func TestCompiledClassifierBitIdentical(t *testing.T) {
	x, y, w := synthClassification(3, 1200, 6)
	tree, err := TrainClassifier(x, y, w, Params{LossFA: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, tree, probeGrid(tree, x, 17))
}

func TestCompiledRegressorBitIdentical(t *testing.T) {
	x, y, w := synthRegression(5, 900, 5)
	tree, err := TrainRegressor(x, y, w, Params{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, tree, probeGrid(tree, x, 23))
}

func TestCompiledSingleLeaf(t *testing.T) {
	tree := &Tree{
		Root:        &Node{Value: -1, PFailed: 0.9, N: 3, W: 3},
		Kind:        Classification,
		NumFeatures: 2,
	}
	requireBitIdentical(t, tree, [][]float64{{0, 0}, {1e9, -1e9}})
}

// TestPredictBatchReusesBuffer proves the steady-state batch path is
// allocation-free when the caller supplies the output buffer.
func TestPredictBatchReusesBuffer(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool sheds items under the race detector")
	}
	x, y, w := synthClassification(7, 400, 5)
	tree, err := TrainClassifier(x, y, w, Params{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ct := tree.Compile()
	dst := make([]float64, len(x))
	allocs := testing.AllocsPerRun(20, func() {
		out := ct.PredictBatch(x, dst)
		if &out[0] != &dst[0] {
			t.Fatal("PredictBatch did not reuse the provided buffer")
		}
	})
	if allocs != 0 {
		t.Fatalf("PredictBatch with caller buffer allocated %.0f times per run", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() { ct.ProbFailedBatch(x, dst) })
	if allocs != 0 {
		t.Fatalf("ProbFailedBatch with caller buffer allocated %.0f times per run", allocs)
	}
}

func TestCompiledValidate(t *testing.T) {
	bad := []*CompiledTree{
		{}, // no nodes
		{ // ragged arrays
			Feature: []int32{-1}, Left: []int32{-1}, Right: []int32{-1},
			Threshold: []float64{0}, Value: []float64{0}, PFailed: nil,
		},
		{ // child pointing at itself
			NumFeatures: 2,
			Feature:     []int32{0, -1}, Left: []int32{0, -1}, Right: []int32{1, -1},
			Threshold: []float64{0, 0}, Value: []float64{0, 0}, PFailed: []float64{0, 0},
		},
		{ // feature out of range
			NumFeatures: 1,
			Feature:     []int32{3, -1, -1}, Left: []int32{1, -1, -1}, Right: []int32{2, -1, -1},
			Threshold: []float64{0, 0, 0}, Value: []float64{0, 0, 0}, PFailed: []float64{0, 0, 0},
		},
	}
	for i, ct := range bad {
		if err := ct.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted an invalid compiled tree", i)
		}
	}
	x, y, w := synthClassification(11, 300, 4)
	tree, err := TrainClassifier(x, y, w, Params{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Compile().Validate(); err != nil {
		t.Fatalf("Validate rejected a compiled trained tree: %v", err)
	}
}

// FuzzCompiledTreeEquivalence feeds arbitrary trees and inputs through
// both prediction engines and requires bit-identical outputs — the
// compiled representation's core guarantee.
func FuzzCompiledTreeEquivalence(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(2))
	f.Add([]byte{200, 10, 20, 30, 40, 1, 50, 3, 0, 0, 0, 0, 0, 255, 1, 2, 3, 4, 5}, int64(3))
	f.Add([]byte{0xC8, 0x55, 0x10, 0x99, 0x42, 0xC8, 0x55, 0x10, 0x99, 0x42,
		0xC8, 0x55, 0x10, 0x99, 0x42, 0xC8, 0x55, 0x10, 0x99, 0x42}, int64(4))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		tree := treeFromBytes(data)
		ct := tree.Compile()
		if err := ct.Validate(); err != nil {
			t.Fatalf("compiled fuzz tree invalid: %v", err)
		}
		rng := rand.New(rand.NewSource(seed))
		probes := make([][]float64, 128)
		for i := range probes {
			p := make([]float64, fuzzNumFeatures)
			for j := range p {
				// Mix magnitudes so probes land on both sides of the
				// byte-derived thresholds; occasionally inject NaN —
				// both engines must route it the same way (< is false).
				switch rng.Intn(8) {
				case 0:
					p[j] = math.NaN()
				case 1:
					p[j] = float64(rng.Intn(64)-32) / 10
				default:
					p[j] = rng.NormFloat64() * 13
				}
			}
			probes[i] = p
		}
		dst := make([]float64, len(probes))
		ct.PredictBatch(probes, dst)
		for i, p := range probes {
			want := tree.Predict(p)
			if got := ct.Predict(p); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("Predict diverged: %v vs %v at %v", got, want, p)
			}
			if dst[i] != want && !(math.IsNaN(dst[i]) && math.IsNaN(want)) {
				t.Fatalf("PredictBatch diverged: %v vs %v at %v", dst[i], want, p)
			}
			pw := tree.ProbFailed(p)
			if pg := ct.ProbFailed(p); pg != pw && !(math.IsNaN(pg) && math.IsNaN(pw)) {
				t.Fatalf("ProbFailed diverged: %v vs %v at %v", pg, pw, p)
			}
		}
	})
}

// TestAccumulatePathsNoAlloc proves the //hddlint:noalloc contract for
// the ensemble accumulation kernels: with caller-supplied buffers,
// PredictBatchAdd and AccumulateBatch are allocation-free in steady
// state (the pooled scratch grows once, outside the measured runs).
func TestAccumulatePathsNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool sheds items under the race detector")
	}
	x, y, w := synthClassification(9, 400, 5)
	tree, err := TrainClassifier(x, y, w, Params{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ct := tree.Compile()
	trees := []*CompiledTree{ct, ct, ct}
	dst := make([]float64, len(x))
	allocs := testing.AllocsPerRun(20, func() { ct.PredictBatchAdd(x, dst) })
	if allocs != 0 {
		t.Fatalf("PredictBatchAdd allocated %.0f times per run", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() { AccumulateBatch(trees, x, dst) })
	if allocs != 0 {
		t.Fatalf("AccumulateBatch allocated %.0f times per run", allocs)
	}
}
