package cart

import (
	"math/rand"
	"testing"
	"unsafe"
)

// Microbenches for the partition-kernel tiers, recorded in
// BENCH_fleetsweep.json alongside the fleet-sweep numbers they feed.
// Each op partitions one full 256-row tile column — the exact shape
// the sweep engine's root partitions run — with a balanced cut, and
// reports elements per second. The impls are called directly (not
// through dispatch) so each sub-benchmark pins one tier regardless of
// HDDPRED_KERNELS.

const benchPartN = 256

type partBenchData struct {
	col  []uint8
	src  []int32
	out  []int32
	cut  uint8
	colp unsafe.Pointer
	srcp unsafe.Pointer
	outp unsafe.Pointer
}

func newPartBenchData() *partBenchData {
	rng := rand.New(rand.NewSource(7))
	d := &partBenchData{
		col: make([]uint8, benchPartN),
		src: make([]int32, benchPartN),
		out: make([]int32, benchPartN),
		cut: 128,
	}
	for i := range d.col {
		d.col[i] = uint8(rng.Intn(256))
	}
	for i, p := range rng.Perm(benchPartN) {
		d.src[i] = int32(p)
	}
	d.colp = unsafe.Pointer(&d.col[0])
	d.srcp = unsafe.Pointer(&d.src[0])
	d.outp = unsafe.Pointer(&d.out[0])
	return d
}

func reportElems(b *testing.B, n int) {
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Melems/s")
}

func BenchmarkPartitionRootTiled(b *testing.B) {
	d := newPartBenchData()
	kernels := []struct {
		name string
		fn   func(colp unsafe.Pointer, n int, outp unsafe.Pointer, cut uint8) int
	}{
		{"scalar", partitionRootTiledScalar},
		{"swar", partitionRootTiledSWAR},
		{"avx2", partitionRootTiledAVX2},
	}
	for _, k := range kernels {
		b.Run("kernel="+k.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.fn(d.colp, benchPartN, d.outp, d.cut)
			}
			reportElems(b, benchPartN)
		})
	}
}

func BenchmarkPartitionSegTiled(b *testing.B) {
	d := newPartBenchData()
	kernels := []struct {
		name string
		fn   func(srcp, outp unsafe.Pointer, n int, colp unsafe.Pointer, cut uint8) int
	}{
		{"scalar", partitionSegTiledScalar},
		{"swar", partitionSegTiledSWAR},
		{"avx2", partitionSegTiledAVX2},
	}
	for _, k := range kernels {
		b.Run("kernel="+k.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.fn(d.srcp, d.outp, benchPartN, d.colp, d.cut)
			}
			reportElems(b, benchPartN)
		})
	}
}

func BenchmarkPartitionSegFlat(b *testing.B) {
	d := newPartBenchData()
	const stride = 13
	flat := make([]uint8, benchPartN*stride)
	rng := rand.New(rand.NewSource(8))
	for i := range flat {
		flat[i] = uint8(rng.Intn(256))
	}
	base := unsafe.Pointer(&flat[0])
	kernels := []struct {
		name string
		fn   func(srcp, outp unsafe.Pointer, n int, base unsafe.Pointer, stride, foff uintptr, cut uint8) int
	}{
		{"scalar", partitionSegFlatScalar},
		{"swar", partitionSegFlatSWAR},
	}
	for _, k := range kernels {
		b.Run("kernel="+k.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.fn(d.srcp, d.outp, benchPartN, base, stride, 3, d.cut)
			}
			reportElems(b, benchPartN)
		})
	}
}

func BenchmarkPartitionLeafPairTiled(b *testing.B) {
	d := newPartBenchData()
	dst := make([]float64, benchPartN)
	pay := [2]float64{0.25, 0.75}
	dstp, payp := unsafe.Pointer(&dst[0]), unsafe.Pointer(&pay[0])
	kernels := []struct {
		name string
		fn   func(srcp unsafe.Pointer, n int, colp unsafe.Pointer, cut uint8, dstp, payp unsafe.Pointer, add bool)
	}{
		{"scalar", leafPairSegTiledScalar},
		{"swar", leafPairSegTiledSWAR},
	}
	for _, k := range kernels {
		b.Run("kernel="+k.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.fn(d.srcp, benchPartN, d.colp, d.cut, dstp, payp, true)
			}
			reportElems(b, benchPartN)
		})
	}
}
