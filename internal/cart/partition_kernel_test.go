package cart

import (
	"math/rand"
	"testing"
	"unsafe"
)

// Kernel-tier contract tests: every partition tier (scalar, SWAR, AVX2
// where linked) must produce byte-identical output — the same left
// count AND the same index order — because the kernels are
// order-defining: the segment order they emit becomes the next level's
// input order, so any divergence cascades into different (if equally
// valid) trees downstream. The cases pin the seams the vector tiers
// introduce: word (8) and window (16) boundaries, the 256-row tile
// size, degenerate cuts, uniform columns, and the reserved missing
// code.

// kernelSizes crosses the SWAR word (8), the blind-store window (16),
// and the tile row count (256), each with its neighbors, plus the
// empty and single-row cases the vector loops must fall through.
var kernelSizes = []int{0, 1, 7, 8, 9, 15, 16, 17, 255, 256, 257}

// kernelCuts: cut 0 sends everything right (code < 0 is impossible),
// cut 1 splits only code 0 left, cut 255 sends all but code 255 left.
var kernelCuts = []uint8{0, 1, 128, 255}

// kernelColumns generates the structured column fills for size n.
func kernelColumns(n int, rng *rand.Rand) map[string][]uint8 {
	missing := uint8(16) // a small-bin column's reserved NumBins code
	cols := map[string][]uint8{
		"all-left":    make([]uint8, n), // all zeros: every code < any cut ≥ 1
		"all-right":   make([]uint8, n), // all 255: every code ≥ any cut ≤ 255
		"alternating": make([]uint8, n), // 0,255,0,255… flips the mask every lane
		"missing":     make([]uint8, n), // valid codes with reserved-code rows mixed in
		"random":      make([]uint8, n),
	}
	for i := 0; i < n; i++ {
		cols["all-right"][i] = 255
		if i%2 == 1 {
			cols["alternating"][i] = 255
		}
		cols["missing"][i] = uint8(rng.Intn(int(missing)))
		if i%5 == 3 {
			cols["missing"][i] = missing
		}
		cols["random"][i] = uint8(rng.Intn(256))
	}
	return cols
}

func ptrOrNil(b []uint8) unsafe.Pointer {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Pointer(&b[0])
}

// rootKernels/segKernels list every linked tier for the tiled kernels.
// On noasm or non-amd64 builds the AVX2 symbols route to SWAR, so the
// table degrades to re-checking SWAR rather than skipping a tier.
func rootKernels() map[string]func(unsafe.Pointer, int, unsafe.Pointer, uint8) int {
	return map[string]func(unsafe.Pointer, int, unsafe.Pointer, uint8) int{
		"swar": partitionRootTiledSWAR,
		"avx2": partitionRootTiledAVX2,
	}
}

func segKernels() map[string]func(unsafe.Pointer, unsafe.Pointer, int, unsafe.Pointer, uint8) int {
	return map[string]func(unsafe.Pointer, unsafe.Pointer, int, unsafe.Pointer, uint8) int{
		"swar": partitionSegTiledSWAR,
		"avx2": partitionSegTiledAVX2,
	}
}

func TestPartitionKernelTiersEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range kernelSizes {
		for name, col := range kernelColumns(n, rng) {
			for _, cut := range kernelCuts {
				colp := ptrOrNil(col)
				// Root: implicit 0..n-1 order.
				ref := make([]int32, n+1)
				lref := partitionRootTiledScalar(colp, n, unsafe.Pointer(&ref[0]), cut)
				for kname, fn := range rootKernels() {
					got := make([]int32, n+1)
					lgot := fn(colp, n, unsafe.Pointer(&got[0]), cut)
					if lgot != lref {
						t.Fatalf("root %s n=%d col=%s cut=%d: left %d want %d",
							kname, n, name, cut, lgot, lref)
					}
					for i := 0; i < n; i++ {
						if got[i] != ref[i] {
							t.Fatalf("root %s n=%d col=%s cut=%d: out[%d]=%d want %d",
								kname, n, name, cut, i, got[i], ref[i])
						}
					}
				}
				// Seg: scattered indices into a 300-row column.
				wide := make([]uint8, 300)
				for i := range wide {
					wide[i] = uint8(rng.Intn(256))
				}
				copy(wide, col)
				src := make([]int32, n+1)
				for i, p := range rng.Perm(300)[:n] {
					src[i] = int32(p)
				}
				srcp, widep := unsafe.Pointer(&src[0]), unsafe.Pointer(&wide[0])
				lref = partitionSegTiledScalar(srcp, unsafe.Pointer(&ref[0]), n, widep, cut)
				for kname, fn := range segKernels() {
					got := make([]int32, n+1)
					lgot := fn(srcp, unsafe.Pointer(&got[0]), n, widep, cut)
					if lgot != lref {
						t.Fatalf("seg %s n=%d col=%s cut=%d: left %d want %d",
							kname, n, name, cut, lgot, lref)
					}
					for i := 0; i < n; i++ {
						if got[i] != ref[i] {
							t.Fatalf("seg %s n=%d col=%s cut=%d: out[%d]=%d want %d",
								kname, n, name, cut, i, got[i], ref[i])
						}
					}
				}
			}
		}
	}
}

func TestPartitionKernelTiersFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range kernelSizes {
		for _, cut := range kernelCuts {
			stride := uintptr(1 + rng.Intn(5))
			foff := uintptr(rng.Intn(int(stride)))
			flat := make([]uint8, (300)*int(stride)+1)
			for i := range flat {
				flat[i] = uint8(rng.Intn(256))
			}
			fb := unsafe.Pointer(&flat[0])
			ref := make([]int32, n+1)
			got := make([]int32, n+1)
			lref := partitionRootFlatScalar(fb, stride, n, unsafe.Pointer(&ref[0]), foff, cut)
			lgot := partitionRootFlatSWAR(fb, stride, n, unsafe.Pointer(&got[0]), foff, cut)
			if lgot != lref {
				t.Fatalf("flat root swar n=%d cut=%d: left %d want %d", n, cut, lgot, lref)
			}
			for i := 0; i < n; i++ {
				if got[i] != ref[i] {
					t.Fatalf("flat root swar n=%d cut=%d: out[%d]=%d want %d", n, cut, i, got[i], ref[i])
				}
			}
			src := make([]int32, n+1)
			for i, p := range rng.Perm(300)[:n] {
				src[i] = int32(p)
			}
			srcp := unsafe.Pointer(&src[0])
			lref = partitionSegFlatScalar(srcp, unsafe.Pointer(&ref[0]), n, fb, stride, foff, cut)
			lgot = partitionSegFlatSWAR(srcp, unsafe.Pointer(&got[0]), n, fb, stride, foff, cut)
			if lgot != lref {
				t.Fatalf("flat seg swar n=%d cut=%d: left %d want %d", n, cut, lgot, lref)
			}
			for i := 0; i < n; i++ {
				if got[i] != ref[i] {
					t.Fatalf("flat seg swar n=%d cut=%d: out[%d]=%d want %d", n, cut, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestLeafPairKernelTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range kernelSizes {
		if n == 0 {
			continue // leafPair callers never pass empty segments
		}
		for name, col := range kernelColumns(300, rng) {
			for _, cut := range kernelCuts {
				for _, add := range []bool{false, true} {
					src := make([]int32, n)
					for i, p := range rng.Perm(300)[:n] {
						src[i] = int32(p)
					}
					pay := [2]float64{rng.Float64(), rng.Float64()}
					ref := make([]float64, 300)
					got := make([]float64, 300)
					for i := range ref {
						v := rng.Float64()
						ref[i], got[i] = v, v
					}
					srcp, colp := unsafe.Pointer(&src[0]), unsafe.Pointer(&col[0])
					payp := unsafe.Pointer(&pay[0])
					leafPairSegTiledScalar(srcp, n, colp, cut, unsafe.Pointer(&ref[0]), payp, add)
					leafPairSegTiledSWAR(srcp, n, colp, cut, unsafe.Pointer(&got[0]), payp, add)
					for i := range ref {
						if ref[i] != got[i] {
							t.Fatalf("leafpair swar n=%d col=%s cut=%d add=%v: dst[%d]=%v want %v",
								n, name, cut, add, i, got[i], ref[i])
						}
					}
				}
			}
		}
	}
}

// TestLtMask8Exhaustive pins the SWAR compare and the movmask multiply
// against the scalar definition for every (x, cut) byte pair in one
// lane position at a time, plus every possible 8-bit compare mask
// through the posTab compaction tables.
func TestLtMask8Exhaustive(t *testing.T) {
	// Every byte pair, rotated through all 8 lane positions.
	for cut := 0; cut < 256; cut++ {
		nc := ^(uint64(uint8(cut)) * swarL)
		ncm := nc &^ swarH
		for x := 0; x < 256; x++ {
			want := uint64(0)
			if uint8(x) < uint8(cut) {
				want = 1
			}
			m := ltMask8(uint64(x)*swarL, nc, ncm) // all 8 lanes hold x
			if wantMask := want * 0xff; m != wantMask {
				t.Fatalf("ltMask8 x=%#x cut=%#x: mask %#x want %#x", x, cut, m, wantMask)
			}
		}
		if cut == 0 {
			continue
		}
		// Mixed lanes: every mask pattern with below-cut bytes (cut-1) in
		// the set lanes and at-cut bytes elsewhere must reproduce exactly.
		for want := uint64(0); want < 256; want++ {
			var x uint64
			for j := 0; j < 8; j++ {
				b := uint64(uint8(cut))
				if want>>j&1 == 1 {
					b = uint64(uint8(cut) - 1)
				}
				x |= b << (8 * j)
			}
			if m := ltMask8(x, nc, ncm); m != want {
				t.Fatalf("ltMask8 mixed cut=%#x want=%#x: got %#x", cut, want, m)
			}
		}
	}
	// Every 8-bit mask through the compaction tables: posTabL must list
	// set-bit positions ascending, posTabR clear-bit positions ascending.
	for m := 0; m < 256; m++ {
		var wantL, wantR []int
		for j := 0; j < 8; j++ {
			if m>>j&1 == 1 {
				wantL = append(wantL, j)
			} else {
				wantR = append(wantR, j)
			}
		}
		for j, b := range wantL {
			if got := int(posTabL[m] >> (8 * j) & 0xff); got != b {
				t.Fatalf("posTabL[%#x] slot %d = %d want %d", m, j, got, b)
			}
			if got := int(permTabL[m][j]); got != b {
				t.Fatalf("permTabL[%#x] lane %d = %d want %d", m, j, got, b)
			}
		}
		for j, b := range wantR {
			if got := int(posTabR[m] >> (8 * j) & 0xff); got != b {
				t.Fatalf("posTabR[%#x] slot %d = %d want %d", m, j, got, b)
			}
			// permTabR is lane-reversed: the j-th right lands at lane 7-j so
			// one 8-lane store at r-7 leaves rights in descending order.
			if got := int(permTabR[m][7-j]); got != b {
				t.Fatalf("permTabR[%#x] lane %d = %d want %d", m, 7-j, got, b)
			}
		}
	}
}

// TestPartitionKernelRandomized cross-checks all tiers on randomized
// segments, sizes, and cuts — the fuzz-shaped complement to the
// structured edge cases above.
func TestPartitionKernelRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(300)
		cut := uint8(rng.Intn(256))
		col := make([]uint8, 300)
		for i := range col {
			col[i] = uint8(rng.Intn(256))
		}
		colp := unsafe.Pointer(&col[0])
		ref := make([]int32, n+1)
		got := make([]int32, n+1)
		refp, gotp := unsafe.Pointer(&ref[0]), unsafe.Pointer(&got[0])
		lref := partitionRootTiledScalar(colp, n, refp, cut)
		for kname, fn := range rootKernels() {
			if lgot := fn(colp, n, gotp, cut); lgot != lref {
				t.Fatalf("root %s trial=%d: left %d want %d", kname, trial, lgot, lref)
			}
			for i := 0; i < n; i++ {
				if got[i] != ref[i] {
					t.Fatalf("root %s trial=%d: out[%d]=%d want %d", kname, trial, i, got[i], ref[i])
				}
			}
		}
		src := make([]int32, n+1)
		for i, p := range rng.Perm(300)[:n] {
			src[i] = int32(p)
		}
		srcp := unsafe.Pointer(&src[0])
		lref = partitionSegTiledScalar(srcp, refp, n, colp, cut)
		for kname, fn := range segKernels() {
			if lgot := fn(srcp, gotp, n, colp, cut); lgot != lref {
				t.Fatalf("seg %s trial=%d: left %d want %d", kname, trial, lgot, lref)
			}
			for i := 0; i < n; i++ {
				if got[i] != ref[i] {
					t.Fatalf("seg %s trial=%d: out[%d]=%d want %d", kname, trial, i, got[i], ref[i])
				}
			}
		}
	}
}
