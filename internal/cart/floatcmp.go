package cart

// Exact float comparison (==/!=) is banned on the determinism-critical
// paths by hddlint's floateq analyzer: two mathematically equal
// accumulations can differ in the last ulp, so naked equality is almost
// always a latent bug. The few comparisons where exact equality IS the
// semantics funnel through these annotated helpers, keeping every such
// site auditable with one grep for hddlint:floatcmp.

// sameLabel reports whether two classification labels are the same
// class.
//
//hddlint:floatcmp class labels are stored and predicted as exactly ±1 (validated at training time), never computed, so equality is exact by construction
func sameLabel(a, b float64) bool { return a == b }

// sameValue reports whether two stored values are identical — value
// identity, not numeric closeness.
//
//hddlint:floatcmp operands are copies of the same stored values (sorted feature columns, leaf payloads), so this tests identity, not the result of arithmetic
func sameValue(a, b float64) bool { return a == b }

// exactZero reports whether v is exactly zero — the documented "unset"
// sentinel for config fields and the guard against dividing by a zero
// total.
//
//hddlint:floatcmp zero is a sentinel (unset config field / empty total), not the result of arithmetic that could land near zero
func exactZero(v float64) bool { return v == 0 }
