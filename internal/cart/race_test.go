//go:build race

package cart

// raceEnabled reports that this build runs under the race detector, whose
// sync.Pool intentionally drops items to diversify schedules — so pooled
// paths can't promise zero allocations there and the alloc tests skip.
const raceEnabled = true
