// Package cart implements Classification and Regression Trees as described
// in the paper's §III (Algorithms 1 and 2): binary recursive partitioning
// with information-gain splits for classification and sum-of-squares splits
// for regression, Minsplit/Minbucket stopping rules, complexity-parameter
// pruning, per-sample weights (used to boost the failed class to a target
// share) and asymmetric misclassification losses (used to penalize false
// alarms 10×).
//
// Unlike black-box models, trees are interpretable: Rules extracts the
// failure regulations, VariableImportance ranks attributes, and String
// renders the tree like the paper's Figure 1.
package cart

import (
	"fmt"
	"math"
	"runtime"
	"strings"
)

// Kind distinguishes classification from regression trees.
type Kind int

const (
	// Classification trees predict ±1 class labels (+1 good, −1 failed).
	Classification Kind = iota + 1
	// Regression trees predict real-valued targets (health degrees).
	Regression
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Classification:
		return "classification"
	case Regression:
		return "regression"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params are the training hyper-parameters. The zero value is replaced by
// the paper's defaults (§V-A2): MinSplit 20, MinBucket 7, CP 0.001.
type Params struct {
	// MinSplit is the minimum number of samples a node must hold to be
	// considered for splitting.
	MinSplit int
	// MinBucket is the minimum number of samples in any leaf.
	MinBucket int
	// CP is the complexity parameter: the minimum relative gain
	// (node-weighted impurity decrease divided by the root's total
	// impurity) a split must achieve to survive pruning.
	CP float64
	// MaxDepth bounds tree depth as a safety stop. Default 30.
	MaxDepth int
	// LossFA is the misclassification loss of a false alarm (labelling
	// a good sample failed). The paper uses 10 for the CT model.
	// Default 1.
	LossFA float64
	// LossMiss is the loss of a missed detection. Default 1.
	LossMiss float64
	// MTry, when in (0, numFeatures), restricts every split search to a
	// fresh random sample of MTry features — the randomization that
	// turns bagged trees into a random forest (the paper's future work).
	// 0 (the default) searches all features.
	MTry int
	// Seed drives the MTry feature sampling; unused when MTry is 0.
	Seed int64
	// MaxBins, when positive, switches training to the histogram-binned
	// grower: every feature is quantized once into at most MaxBins
	// deterministic quantile bins (≤ 255; NaN/missing values get a
	// reserved bin that always routes right, matching inference), split
	// search scans bin histograms instead of raw samples, and each
	// sibling's histogram is derived from its parent's by subtraction so
	// only the smaller child is re-scanned. 0 (the default) keeps the
	// exact presorted-column search. The binned grower upholds the same
	// determinism guarantee as the exact one — at a fixed MaxBins the
	// grown tree is bit-identical for any Workers count — and whenever a
	// feature has at most MaxBins distinct finite values its bins are
	// singletons, so the binned search evaluates exactly the
	// distinct-value boundaries the exact search evaluates, with
	// bitwise-identical thresholds.
	MaxBins int
	// Workers bounds training parallelism: split searches fan out across
	// features and independent subtrees grow concurrently on a pool of
	// this many goroutines. 0 defaults to runtime.NumCPU(); 1 runs the
	// serial path. Training is deterministic: for any worker count the
	// grown tree (splits, thresholds, leaf values, prune sequence) is
	// bit-identical to the Workers=1 result, because per-feature split
	// searches are independent and the cross-feature reduction breaks
	// ties by feature order exactly as the serial scan does.
	Workers int
}

func (p Params) withDefaults() Params {
	if p.MinSplit == 0 {
		p.MinSplit = 20
	}
	if p.MinBucket == 0 {
		p.MinBucket = 7
	}
	if exactZero(p.CP) {
		p.CP = 0.001
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 30
	}
	if exactZero(p.LossFA) {
		p.LossFA = 1
	}
	if exactZero(p.LossMiss) {
		p.LossMiss = 1
	}
	if p.Workers == 0 {
		p.Workers = runtime.NumCPU()
	}
	return p
}

// Node is one tree node. Leaves have nil children.
type Node struct {
	// Feature and Threshold define the split: samples with
	// x[Feature] < Threshold go Left, the rest go Right. Valid only for
	// internal nodes.
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node

	// Value is the node's prediction: the loss-weighted class label
	// (±1) for classification, the weighted target mean for regression.
	Value float64
	// PFailed is the weighted failed-class probability at the node
	// (classification only).
	PFailed float64
	// N is the unweighted sample count at the node.
	N int
	// W is the total sample weight at the node.
	W float64
	// Gain is the relative impurity decrease achieved by this node's
	// split (0 for leaves); the quantity compared against CP.
	Gain float64
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a trained classification or regression tree.
type Tree struct {
	// Root is the tree's root node.
	Root *Node
	// Kind records whether the tree classifies or regresses.
	Kind Kind
	// NumFeatures is the expected feature-vector length.
	NumFeatures int
	// FeatureNames optionally labels features for printing and rules.
	FeatureNames []string
}

// leaf returns the leaf x falls into.
func (t *Tree) leaf(x []float64) *Node {
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] < n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Predict returns the tree's output for x: the class label (+1 good,
// −1 failed) for classification trees, the predicted target value for
// regression trees.
func (t *Tree) Predict(x []float64) float64 {
	return t.leaf(x).Value
}

// PredictFailed reports whether a classification tree labels x failed.
// For regression trees it reports Predict(x) < 0.
func (t *Tree) PredictFailed(x []float64) bool {
	return t.Predict(x) < 0
}

// ProbFailed returns the weighted failed-class probability of x's leaf
// (classification trees; regression trees return NaN).
func (t *Tree) ProbFailed(x []float64) float64 {
	if t.Kind != Classification {
		return math.NaN()
	}
	return t.leaf(x).PFailed
}

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int { return countLeaves(t.Root) }

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// Depth returns the maximum depth (a lone root has depth 1).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil {
		return 0
	}
	d := depth(n.Left)
	if r := depth(n.Right); r > d {
		d = r
	}
	return d + 1
}

// VariableImportance sums each feature's relative impurity decrease over
// all splits that use it — the standard CART importance measure. The
// result has NumFeatures entries.
func (t *Tree) VariableImportance() []float64 {
	imp := make([]float64, t.NumFeatures)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		imp[n.Feature] += n.Gain
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return imp
}

// Condition is one comparison along a rule path.
type Condition struct {
	Feature   int
	Threshold float64
	// Less is true for "feature < threshold", false for "≥".
	Less bool
}

// String renders the condition using the tree's feature names if present.
func (c Condition) string(names []string) string {
	name := fmt.Sprintf("x[%d]", c.Feature)
	if c.Feature < len(names) {
		name = names[c.Feature]
	}
	op := "≥"
	if c.Less {
		op = "<"
	}
	return fmt.Sprintf("%s %s %.4g", name, op, c.Threshold)
}

// Rule is one root-to-leaf path of the tree: the conjunction of Conditions
// implies the leaf's prediction. Rules are how operators read failure
// causes out of the model (paper §V-B1).
type Rule struct {
	Conditions []Condition
	// Value is the leaf prediction; PFailed its failed probability
	// (classification only); N/W its sample count and weight.
	Value   float64
	PFailed float64
	N       int
	W       float64
}

// String renders the rule using the given feature names.
func (r Rule) String(names []string) string {
	if len(r.Conditions) == 0 {
		return fmt.Sprintf("always → %.3g", r.Value)
	}
	parts := make([]string, len(r.Conditions))
	for i, c := range r.Conditions {
		parts[i] = c.string(names)
	}
	return fmt.Sprintf("%s → %.3g", strings.Join(parts, " ∧ "), r.Value)
}

// Rules returns every root-to-leaf path. With failedOnly, only leaves that
// predict failure (Value < 0) are returned.
func (t *Tree) Rules(failedOnly bool) []Rule {
	var rules []Rule
	var walk func(n *Node, path []Condition)
	walk = func(n *Node, path []Condition) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			if failedOnly && n.Value >= 0 {
				return
			}
			rules = append(rules, Rule{
				Conditions: append([]Condition(nil), path...),
				Value:      n.Value, PFailed: n.PFailed, N: n.N, W: n.W,
			})
			return
		}
		walk(n.Left, append(path, Condition{n.Feature, n.Threshold, true}))
		walk(n.Right, append(path, Condition{n.Feature, n.Threshold, false}))
	}
	walk(t.Root, nil)
	return rules
}

// String renders the tree in an indented form similar to the paper's
// Figure 1.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, prefix string, label string)
	walk = func(n *Node, prefix, label string) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			switch t.Kind {
			case Classification:
				class := "good"
				if n.Value < 0 {
					class = "FAILED"
				}
				fmt.Fprintf(&b, "%s%s%s (p_failed=%.2f, n=%d)\n", prefix, label, class, n.PFailed, n.N)
			default:
				fmt.Fprintf(&b, "%s%svalue=%.3f (n=%d)\n", prefix, label, n.Value, n.N)
			}
			return
		}
		name := fmt.Sprintf("x[%d]", n.Feature)
		if n.Feature < len(t.FeatureNames) {
			name = t.FeatureNames[n.Feature]
		}
		fmt.Fprintf(&b, "%s%s%s < %.4g? (n=%d, gain=%.4f)\n", prefix, label, name, n.Threshold, n.N, n.Gain)
		walk(n.Left, prefix+"  ", "yes: ")
		walk(n.Right, prefix+"  ", "no:  ")
	}
	walk(t.Root, "", "")
	return b.String()
}
