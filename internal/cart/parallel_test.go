package cart

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hddcart/internal/dataset"
	"hddcart/internal/simulate"
	"hddcart/internal/smart"
)

// workerCounts are the pool sizes every determinism test sweeps. 1 is the
// serial reference; the rest must reproduce it byte for byte.
var workerCounts = []int{1, 2, 4, 8}

// maxBinsCases sweeps the grower selection: 0 is the exact presorted
// path, 32 forces coarse multi-value bins, 255 is the uint8 ceiling.
// The bit-identity guarantee must hold at every fixed MaxBins.
var maxBinsCases = []int{0, 32, 255}

// synthClassification builds an n-sample nf-feature ±1 dataset with a few
// informative features, label noise, and duplicated feature values (to
// exercise the equal-value boundary skip). Weights are non-uniform.
func synthClassification(seed int64, n, nf int) (x [][]float64, y, w []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]float64, n)
	w = make([]float64, n)
	for i := range x {
		row := make([]float64, nf)
		for f := range row {
			// Quantize so many samples share exact feature values.
			row[f] = math.Floor(rng.Float64()*32) / 32
		}
		x[i] = row
		score := row[0] + 2*row[1] - row[2]*row[0]
		y[i] = 1
		if score > 0.9 {
			y[i] = -1
		}
		if rng.Float64() < 0.05 { // label noise keeps nodes impure
			y[i] = -y[i]
		}
		w[i] = 0.5 + rng.Float64()
	}
	return x, y, w
}

// synthRegression builds a noisy piecewise target over nf features.
func synthRegression(seed int64, n, nf int) (x [][]float64, y, w []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]float64, n)
	w = make([]float64, n)
	for i := range x {
		row := make([]float64, nf)
		for f := range row {
			row[f] = math.Floor(rng.Float64()*64) / 64
		}
		x[i] = row
		y[i] = 3*row[0] - row[1]*row[1] + 0.1*rng.NormFloat64()
		if row[2] > 0.5 {
			y[i] += 2
		}
		w[i] = 1
	}
	return x, y, w
}

// gendataStyle assembles a training set the way cmd/gendata + cmd/hddpred
// do: a synthetic fleet's SMART traces pushed through the dataset builder
// with the paper's critical features.
func gendataStyle(t testing.TB) (x [][]float64, y, w []float64) {
	t.Helper()
	fleet, err := simulate.New(simulate.Config{Seed: 3, GoodScale: 0.004, FailedScale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dataset.NewBuilder(dataset.Config{
		Features:            smart.CriticalFeatures(),
		PeriodStart:         0,
		PeriodEnd:           simulate.HoursPerWeek,
		SamplesPerGoodDrive: 8,
		FailedWindowHours:   168,
		FailedShare:         0.2,
		Seed:                3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.DrivesOf("W") {
		trace := fleet.Trace(d.Index)
		if d.Failed {
			b.AddFailedDrive(d.Index, d.FailHour, trace)
		} else {
			b.AddGoodDrive(d.Index, trace)
		}
	}
	ds, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return ds.XMatrix()
}

// marshalTree serializes a tree for byte comparison.
func marshalTree(t testing.TB, tree *Tree) []byte {
	t.Helper()
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestParallelDeterminismClassifier proves the tentpole guarantee: for
// every worker count the grown classification tree — splits, thresholds,
// leaf values and the prune sequence baked into Gain — is byte-identical
// to the serial result.
func TestParallelDeterminismClassifier(t *testing.T) {
	cases := []struct {
		name   string
		data   func(t testing.TB) ([][]float64, []float64, []float64)
		params Params
	}{
		{
			name: "synthetic/defaults",
			data: func(testing.TB) ([][]float64, []float64, []float64) {
				return synthClassification(11, 4000, 8)
			},
			params: Params{},
		},
		{
			name: "synthetic/deep-asymmetric",
			data: func(testing.TB) ([][]float64, []float64, []float64) {
				return synthClassification(12, 3000, 6)
			},
			params: Params{MinSplit: 4, MinBucket: 2, CP: 1e-9, LossFA: 10},
		},
		{
			name:   "gendata/paper-ct",
			data:   gendataStyle,
			params: Params{MinSplit: 20, MinBucket: 7, CP: 0.001, LossFA: 10},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, y, w := tc.data(t)
			for _, maxBins := range maxBinsCases {
				t.Run(fmt.Sprintf("maxbins=%d", maxBins), func(t *testing.T) {
					var ref []byte
					for _, workers := range workerCounts {
						p := tc.params
						p.Workers = workers
						p.MaxBins = maxBins
						tree, err := TrainClassifier(x, y, w, p)
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						enc := marshalTree(t, tree)
						if workers == 1 {
							ref = enc
							if tree.NumNodes() < 3 {
								t.Fatalf("degenerate reference tree (%d nodes) proves nothing", tree.NumNodes())
							}
							continue
						}
						if string(enc) != string(ref) {
							t.Errorf("workers=%d tree differs from serial result", workers)
						}
					}
				})
			}
		})
	}
}

// TestParallelDeterminismRegressor is the regression-tree counterpart.
func TestParallelDeterminismRegressor(t *testing.T) {
	x, y, w := synthRegression(21, 4000, 7)
	for _, maxBins := range maxBinsCases {
		t.Run(fmt.Sprintf("maxbins=%d", maxBins), func(t *testing.T) {
			var ref []byte
			for _, workers := range workerCounts {
				tree, err := TrainRegressor(x, y, w, Params{
					MinSplit: 6, MinBucket: 3, CP: 1e-6, Workers: workers, MaxBins: maxBins,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				enc := marshalTree(t, tree)
				if workers == 1 {
					ref = enc
					if tree.NumNodes() < 7 {
						t.Fatalf("reference tree too small: %d nodes", tree.NumNodes())
					}
					continue
				}
				if string(enc) != string(ref) {
					t.Errorf("workers=%d regression tree differs from serial result", workers)
				}
			}
		})
	}
}

// TestParallelDeterminismMTry pins the per-node MTry sampling: randomized
// split searches must draw the same feature subsets wherever the node
// lands in the tree, regardless of which goroutine grows it.
func TestParallelDeterminismMTry(t *testing.T) {
	x, y, w := synthClassification(31, 3000, 10)
	for _, maxBins := range maxBinsCases {
		t.Run(fmt.Sprintf("maxbins=%d", maxBins), func(t *testing.T) {
			var ref []byte
			for _, workers := range workerCounts {
				tree, err := TrainClassifier(x, y, w, Params{
					MinSplit: 4, MinBucket: 2, CP: 1e-9,
					MTry: 3, Seed: 99, Workers: workers, MaxBins: maxBins,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				enc := marshalTree(t, tree)
				if workers == 1 {
					ref = enc
					continue
				}
				if string(enc) != string(ref) {
					t.Errorf("workers=%d MTry tree differs from serial result", workers)
				}
			}
		})
	}
}

// TestParallelDeterminismCV proves cross-validation fold losses merge
// identically for any worker count.
func TestParallelDeterminismCV(t *testing.T) {
	x, y, w := synthClassification(41, 1500, 6)
	cps := []float64{1e-6, 1e-4, 1e-3, 1e-2, 0.1}
	for _, maxBins := range maxBinsCases {
		t.Run(fmt.Sprintf("maxbins=%d", maxBins), func(t *testing.T) {
			var refResults []CVResult
			var refBest float64
			for _, workers := range workerCounts {
				p := Params{MinSplit: 4, MinBucket: 2, LossFA: 10, Workers: workers, MaxBins: maxBins}
				results, best, err := CrossValidateCP(x, y, w, p, Classification, 5, cps, 7)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if workers == 1 {
					refResults, refBest = results, best
					continue
				}
				if best != refBest {
					t.Errorf("workers=%d best CP %v, serial %v", workers, best, refBest)
				}
				for i := range results {
					if results[i] != refResults[i] {
						t.Errorf("workers=%d CV result %d = %+v, serial %+v",
							workers, i, results[i], refResults[i])
					}
				}
			}
		})
	}
}

// TestParallelMatchesKnownSerial re-checks a structural invariant under
// every worker count: parallel growth must still respect MinBucket (a
// regression here would mean a worker saw stale stats).
func TestParallelMatchesKnownSerial(t *testing.T) {
	x, y, w := synthClassification(51, 2500, 5)
	for _, workers := range workerCounts {
		tree, err := TrainClassifier(x, y, w, Params{MinSplit: 10, MinBucket: 5, CP: 1e-9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var walk func(n *Node)
		walk = func(n *Node) {
			if n == nil {
				return
			}
			if n.IsLeaf() {
				if n.N < 5 {
					t.Errorf("workers=%d: leaf with %d < MinBucket samples", workers, n.N)
				}
				return
			}
			walk(n.Left)
			walk(n.Right)
		}
		walk(tree.Root)
	}
}

// TestWorkersValidation rejects negative pool sizes on every entry point.
func TestWorkersValidation(t *testing.T) {
	x, y, _ := synthClassification(61, 100, 3)
	if _, err := TrainClassifier(x, y, nil, Params{Workers: -1}); err == nil {
		t.Error("negative Workers accepted by TrainClassifier")
	}
	if _, _, err := CrossValidateCP(x, y, nil, Params{Workers: -2}, Classification, 2, []float64{0.01}, 1); err == nil {
		t.Error("negative Workers accepted by CrossValidateCP")
	}
}
