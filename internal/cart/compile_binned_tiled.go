package cart

import (
	"math"
	"unsafe"

	"hddcart/internal/cpu"
	"hddcart/internal/dataset"
)

// Tiled fast path for the binned batch engine. A dataset.TiledMatrix
// stores each tile of TileRows rows feature-major, so the code column a
// partition kernel reads at a node is one straight byte run of at most
// TileRows bytes — four cache lines — instead of a stride-NumFeatures
// march across the block. Scoring a row range walks it tile chunk by
// tile chunk (chunks never cross a tile boundary), running the same
// segment-stack traversal as the flat path inside each chunk. Verdicts
// are bit-identical to PredictBatch on the same rows; the internal/equiv
// matrices pit all three layouts against each other.

const tileRows = dataset.TileRows

// Pre-boxed panic values for the guard checks below. panic's argument
// is an interface, so panic("literal") boxes the string at the call
// site — a heap allocation escape analysis reports inside the noalloc
// kernels. Boxing once at package init keeps the guards free; recover
// still sees the same string value.
var (
	errTiledRowRange  any = "cart: tiled row range out of bounds"
	errTiledTreeWidth any = "cart: tree reads features beyond the tiled matrix width"
)

// PredictTiledRange scores rows [lo, hi) of a tiled code matrix into
// dst[:hi-lo], so dst[i] equals Predict of row lo+i. dst must hold at
// least hi-lo entries; the call is allocation-free in steady state. This
// is the kernel internal/sweep work items run on.
//
//hddlint:noalloc //hddlint:nobc
func (bt *BinnedTree) PredictTiledRange(tm *dataset.TiledMatrix, lo, hi int, dst []float64) {
	bt.scoreTiledRange(tm, lo, hi, dst, bt.Value, false)
}

// ProbFailedTiledRange fills dst[:hi-lo] with per-row failed-leaf
// probabilities over rows [lo, hi), matching ProbFailed exactly
// (regression trees fill NaN, as the float paths do).
//
//hddlint:noalloc
func (bt *BinnedTree) ProbFailedTiledRange(tm *dataset.TiledMatrix, lo, hi int, dst []float64) {
	if bt.Kind != Classification {
		dst = dst[:hi-lo]
		for i := range dst {
			dst[i] = math.NaN()
		}
		return
	}
	bt.scoreTiledRange(tm, lo, hi, dst, bt.PFailed, false)
}

// scoreTiledRange drives the per-tile-chunk traversal. The bounds and
// width checks up front are what make the unchecked byte loads in the
// kernels safe: every address they form is basep + f·tileRows + k with
// f < needLen ≤ NumFeatures and r0 + k < tileRows, which stays inside
// the chunk's tile.
//
//hddlint:noalloc
//hddlint:binned
func (bt *BinnedTree) scoreTiledRange(tm *dataset.TiledMatrix, lo, hi int,
	dst, payload []float64, add bool) {
	if lo < 0 || lo > hi || hi > tm.NumRows {
		panic(errTiledRowRange)
	}
	if bt.needLen > tm.NumFeatures {
		panic(errTiledTreeWidth)
	}
	dst = dst[:hi-lo]
	if lo == hi {
		return
	}
	if bt.Feature[0] < 0 { // single-leaf tree
		p := payload[0]
		if add {
			for i := range dst {
				dst[i] += p
			}
		} else {
			for i := range dst {
				dst[i] = p
			}
		}
		return
	}
	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.cur) < tileRows {
		//hddlint:ignore hotalloc cold path: pooled scratch grows to the tile height once, then every Get reuses it
		sc.cur = make([]int32, tileRows)
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.next = make([]int32, tileRows)
	}
	nf := tm.NumFeatures
	for a := lo; a < hi; {
		t := a / tileRows
		b := min(hi, (t+1)*tileRows)
		n := b - a
		basep := unsafe.Pointer(&tm.Data[t*tileRows*nf+(a-t*tileRows)])
		cdst := dst[a-lo : b-lo]
		if n < minPartitionBatch {
			walkRangeTiled(bt.nodes, basep, n, cdst, payload, add)
		} else {
			l := partitionRootBinnedTiled(unsafe.Add(basep, uintptr(bt.Feature[0])*tileRows),
				n, unsafe.Pointer(&sc.cur[0]), bt.Cut[0])
			bt.runSegmentsTiled(sc, basep, cdst, payload, l, n, add)
		}
		a = b
	}
	batchScratchPool.Put(sc)
}

// AccumulateTiledRange accumulates every tree's prediction for rows
// [lo, hi) onto dst[:hi-lo], in tree order per row — the tiled analogue
// of AccumulateBatchBinned for ensemble scorers. All trees share one
// pooled scratch per call.
//
//hddlint:noalloc
//hddlint:binned
func AccumulateTiledRange(trees []*BinnedTree, tm *dataset.TiledMatrix, lo, hi int, dst []float64) {
	if lo < 0 || lo > hi || hi > tm.NumRows {
		panic(errTiledRowRange)
	}
	dst = dst[:hi-lo]
	if lo == hi || len(trees) == 0 {
		return
	}
	need := 0
	for _, t := range trees {
		need = max(need, t.needLen)
	}
	if need > tm.NumFeatures {
		panic(errTiledTreeWidth)
	}
	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.cur) < tileRows {
		//hddlint:ignore hotalloc cold path: pooled scratch grows to the tile height once, then every Get reuses it
		sc.cur = make([]int32, tileRows)
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.next = make([]int32, tileRows)
	}
	nf := tm.NumFeatures
	for a := lo; a < hi; {
		t := a / tileRows
		b := min(hi, (t+1)*tileRows)
		n := b - a
		basep := unsafe.Pointer(&tm.Data[t*tileRows*nf+(a-t*tileRows)])
		cdst := dst[a-lo : b-lo]
		for _, tr := range trees {
			if tr.Feature[0] < 0 { // single-leaf tree
				p := tr.Value[0]
				for i := range cdst {
					cdst[i] += p
				}
				continue
			}
			if n < minPartitionBatch {
				walkRangeTiled(tr.nodes, basep, n, cdst, tr.Value, true)
				continue
			}
			l := partitionRootBinnedTiled(unsafe.Add(basep, uintptr(tr.Feature[0])*tileRows),
				n, unsafe.Pointer(&sc.cur[0]), tr.Cut[0])
			tr.runSegmentsTiled(sc, basep, cdst, tr.Value, l, n, true)
		}
		a = b
	}
	batchScratchPool.Put(sc)
}

// runSegmentsTiled is runSegments over one tile chunk: same segment
// stack and ping-pong index buffers, with each node's feature column
// located at basep + feature·tileRows and indexed directly by the
// chunk-local sample index.
//
//hddlint:noalloc
//hddlint:binned
func (bt *BinnedTree) runSegmentsTiled(sc *batchScratch, basep unsafe.Pointer,
	dst, payload []float64, rootLeft, n int, add bool) {
	feat := bt.Feature
	cut := bt.Cut
	left, right := bt.Left, bt.Right
	cur, next := sc.cur[:n], sc.next[:n]
	stack := sc.stack[:0]
	//hddlint:ignore hotalloc append targets pooled scratch that grows to the tree depth once, then stays within capacity
	stack = append(stack,
		segment{node: right[0], lo: int32(rootLeft), hi: int32(n)},
		segment{node: left[0], lo: 0, hi: int32(rootLeft)})
	for len(stack) > 0 {
		sg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if sg.lo == sg.hi {
			continue
		}
		src, out := cur, next
		if sg.flipped {
			src, out = next, cur
		}
		node := sg.node
		seg := src[sg.lo:sg.hi]
		if feat[node] < 0 { // leaf: deliver the payload to every sample here
			p := payload[node]
			if add {
				for _, idx := range seg {
					dst[idx] += p
				}
			} else {
				for _, idx := range seg {
					dst[idx] = p
				}
			}
			continue
		}
		colp := unsafe.Add(basep, uintptr(feat[node])*tileRows)
		if ln := left[node]; feat[ln] < 0 && feat[ln+1] < 0 {
			leafPairSegBinnedTiled(unsafe.Pointer(&src[sg.lo]), len(seg), colp, cut[node],
				unsafe.Pointer(&dst[0]), unsafe.Pointer(&payload[ln]), add)
			continue
		}
		if len(seg) < minSegPartition {
			walkSegBinnedTiled(bt.nodes, seg, basep, dst, payload, node, add)
			continue
		}
		nl := partitionSegBinnedTiled(unsafe.Pointer(&src[sg.lo]), unsafe.Pointer(&out[sg.lo]),
			len(seg), colp, cut[node])
		mid := sg.lo + int32(nl)
		//hddlint:ignore hotalloc append targets pooled scratch that grows to the tree depth once, then stays within capacity
		stack = append(stack,
			segment{node: right[node], lo: mid, hi: sg.hi, flipped: !sg.flipped},
			segment{node: left[node], lo: sg.lo, hi: mid, flipped: !sg.flipped})
	}
	sc.stack = stack[:0]
}

// partitionRootBinnedTiled splits the implicit chunk order 0..n-1 on
// colp[k] < cut. The feature column is contiguous in the tiled layout —
// no stride, no gather — which is exactly the shape the vector tiers
// want: the dispatch picks the strongest kernel the CPU supports, and
// every tier produces the same bytes in the same order (see
// partition_scalar.go for the order contract).
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionRootBinnedTiled(colp unsafe.Pointer, n int, outp unsafe.Pointer, cut uint8) int {
	switch cpu.Active() {
	case cpu.AVX2:
		return partitionRootTiledAVX2(colp, n, outp, cut)
	case cpu.SWAR:
		return partitionRootTiledSWAR(colp, n, outp, cut)
	}
	return partitionRootTiledScalar(colp, n, outp, cut)
}

// partitionSegBinnedTiled partitions an interior node's segment: sample
// indices come from srcp and index the node's contiguous feature column.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionSegBinnedTiled(srcp, outp unsafe.Pointer, n int, colp unsafe.Pointer, cut uint8) int {
	switch cpu.Active() {
	case cpu.AVX2:
		return partitionSegTiledAVX2(srcp, outp, n, colp, cut)
	case cpu.SWAR:
		return partitionSegTiledSWAR(srcp, outp, n, colp, cut)
	}
	return partitionSegTiledScalar(srcp, outp, n, colp, cut)
}

// leafPairSegBinnedTiled finishes a segment whose node has two leaf
// children in one compare-and-deliver pass over the feature column.
// The AVX2 tier shares the SWAR kernel: the payload delivery scatters
// float64s by sample index either way, so only the 8-wide code compare
// vectorizes and a dedicated assembly body would buy nothing.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func leafPairSegBinnedTiled(srcp unsafe.Pointer, n int, colp unsafe.Pointer, cut uint8,
	dstp, payp unsafe.Pointer, add bool) {
	if cpu.Active() == cpu.Scalar {
		leafPairSegTiledScalar(srcp, n, colp, cut, dstp, payp, add)
		return
	}
	leafPairSegTiledSWAR(srcp, n, colp, cut, dstp, payp, add)
}

// walkSegBinnedTiled finishes a small segment sample-major down the
// packed subtree; a row's feature f lives at basep + f·tileRows + idx.
// With minSegPartition at 2 the partition kernels carry every segment
// that could amortize anything fancier, so this stays the plain
// dependent-load walk.
//
//hddlint:noalloc
//hddlint:binned
func walkSegBinnedTiled(nodes []binnedNode, seg []int32, basep unsafe.Pointer,
	dst, payload []float64, node int32, add bool) {
	for _, idx := range seg {
		rowp := unsafe.Add(basep, uintptr(uint32(idx)))
		i := node
		for {
			nd := &nodes[i]
			f := nd.feature
			if f < 0 {
				break
			}
			if *(*uint8)(unsafe.Add(rowp, uintptr(f)*tileRows)) < nd.cut {
				i = nd.left
			} else {
				i = nd.left + 1
			}
		}
		if add {
			dst[idx] += payload[i]
		} else {
			dst[idx] = payload[i]
		}
	}
}

// walkRangeTiled scores a whole small chunk (implicit order 0..n-1)
// sample-major from the root — the tiled analogue of the small-batch
// per-row walk in scoreBatch.
//
//hddlint:noalloc
//hddlint:binned
func walkRangeTiled(nodes []binnedNode, basep unsafe.Pointer, n int,
	dst, payload []float64, add bool) {
	for k := 0; k < n; k++ {
		rowp := unsafe.Add(basep, uintptr(k))
		i := int32(0)
		for {
			nd := &nodes[i]
			f := nd.feature
			if f < 0 {
				break
			}
			if *(*uint8)(unsafe.Add(rowp, uintptr(f)*tileRows)) < nd.cut {
				i = nd.left
			} else {
				i = nd.left + 1
			}
		}
		if add {
			dst[k] += payload[i]
		} else {
			dst[k] = payload[i]
		}
	}
}
