package cart

import (
	"unsafe"

	"hddcart/internal/cpu"
)

// Flat-matrix fast path for the binned batch engine. Code rows produced
// by dataset.BinnedMatrix.Quantize (and therefore detect.QuantizeSeries)
// are slices of one contiguous backing array with a fixed stride, so a
// row's data pointer is base + idx·stride — no gathered pointer table
// needed. scorePartitioned detects that layout once per block (one
// pointer compare per row, cheaper than the gather it replaces) and
// switches to these kernels, which drop one dependent load per sample
// per tree level. Verdicts are bit-identical to the gathered path; the
// internal/equiv matrices pit both layouts against each other.

// flatRows reports whether every row of the block is a slice of one
// backing array at a fixed stride of at least need bytes, returning the
// base pointer and stride when so. The base stays reachable through xs
// for the duration of the caller, so holding it as an unsafe.Pointer is
// safe.
//
//hddlint:noalloc
func flatRows(xs [][]uint8, need int) (unsafe.Pointer, uintptr, bool) {
	stride := len(xs[0])
	if stride < need {
		return nil, 0, false
	}
	base := unsafe.Pointer(&xs[0][0])
	p := base
	for _, row := range xs {
		if len(row) != stride || unsafe.Pointer(&row[0]) != p {
			return nil, 0, false
		}
		p = unsafe.Add(p, uintptr(stride))
	}
	return base, uintptr(stride), true
}

// runSegmentsFlat is runSegments over a contiguous code matrix: same
// segment stack, same ping-pong index buffers, flat kernels.
//
//hddlint:noalloc
//hddlint:binned
func (bt *BinnedTree) runSegmentsFlat(sc *batchScratch, base unsafe.Pointer, stride uintptr,
	dst, payload []float64, rootLeft, n int, add bool) {
	feat := bt.Feature
	cut := bt.Cut
	left, right := bt.Left, bt.Right
	cur, next := sc.cur[:n], sc.next[:n]
	stack := sc.stack[:0]
	//hddlint:ignore hotalloc append targets pooled scratch that grows to the tree depth once, then stays within capacity
	stack = append(stack,
		segment{node: right[0], lo: int32(rootLeft), hi: int32(n)},
		segment{node: left[0], lo: 0, hi: int32(rootLeft)})
	for len(stack) > 0 {
		sg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if sg.lo == sg.hi {
			continue
		}
		src, out := cur, next
		if sg.flipped {
			src, out = next, cur
		}
		node := sg.node
		seg := src[sg.lo:sg.hi]
		if feat[node] < 0 { // leaf: deliver the payload to every sample here
			p := payload[node]
			if add {
				for _, idx := range seg {
					dst[idx] += p
				}
			} else {
				for _, idx := range seg {
					dst[idx] = p
				}
			}
			continue
		}
		if ln := left[node]; feat[ln] < 0 && feat[ln+1] < 0 {
			leafPairSegBinnedFlat(unsafe.Pointer(&src[sg.lo]), len(seg), base, stride,
				uintptr(feat[node]), cut[node],
				unsafe.Pointer(&dst[0]), unsafe.Pointer(&payload[ln]), add)
			continue
		}
		if len(seg) < minSegPartition {
			walkSegBinnedFlat(bt.nodes, seg, base, stride, dst, payload, node, add)
			continue
		}
		nl := partitionSegBinnedFlat(unsafe.Pointer(&src[sg.lo]), unsafe.Pointer(&out[sg.lo]),
			len(seg), base, stride, uintptr(feat[node]), cut[node])
		mid := sg.lo + int32(nl)
		//hddlint:ignore hotalloc append targets pooled scratch that grows to the tree depth once, then stays within capacity
		stack = append(stack,
			segment{node: right[node], lo: mid, hi: sg.hi, flipped: !sg.flipped},
			segment{node: left[node], lo: sg.lo, hi: mid, flipped: !sg.flipped})
	}
	sc.stack = stack[:0]
}

// partitionRootBinnedFlat splits the implicit sample order 0..n-1 on
// codes[f] < cut. Unlike partitionRootBinned there is nothing to gather
// or validate — flatRows already proved the layout. The flat matrix has
// no contiguous feature column (codes march at the row stride), so the
// strongest tier here is the SWAR gather — the AVX2 byte-run kernels
// need the tiled layout.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionRootBinnedFlat(base unsafe.Pointer, stride uintptr, n int,
	outp unsafe.Pointer, foff uintptr, cut uint8) int {
	if cpu.Active() == cpu.Scalar {
		return partitionRootFlatScalar(base, stride, n, outp, foff, cut)
	}
	return partitionRootFlatSWAR(base, stride, n, outp, foff, cut)
}

// partitionSegBinnedFlat is partitionSegBinned with the row pointer
// computed as base + idx·stride instead of loaded from the gather table.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionSegBinnedFlat(srcp, outp unsafe.Pointer, n int,
	base unsafe.Pointer, stride, foff uintptr, cut uint8) int {
	if cpu.Active() == cpu.Scalar {
		return partitionSegFlatScalar(srcp, outp, n, base, stride, foff, cut)
	}
	return partitionSegFlatSWAR(srcp, outp, n, base, stride, foff, cut)
}

// leafPairSegBinnedFlat finishes a segment whose node has two leaf
// children in one compare-and-deliver pass over the flat matrix.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func leafPairSegBinnedFlat(srcp unsafe.Pointer, n int, base unsafe.Pointer, stride, foff uintptr,
	cut uint8, dstp, payp unsafe.Pointer, add bool) {
	if add {
		for k := 0; k < n; k++ {
			idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
			cv := *(*uint8)(unsafe.Add(base, uintptr(uint32(idx))*stride+foff))
			off := uintptr(8)
			if cv < cut {
				off = 0
			}
			*(*float64)(unsafe.Add(dstp, uintptr(uint32(idx))*8)) += *(*float64)(unsafe.Add(payp, off))
		}
		return
	}
	for k := 0; k < n; k++ {
		idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
		cv := *(*uint8)(unsafe.Add(base, uintptr(uint32(idx))*stride+foff))
		off := uintptr(8)
		if cv < cut {
			off = 0
		}
		*(*float64)(unsafe.Add(dstp, uintptr(uint32(idx))*8)) = *(*float64)(unsafe.Add(payp, off))
	}
}

// walkSegBinnedFlat finishes a small segment sample-major down the
// packed subtree, computing each row's base address by stride. The
// unchecked byte loads are safe because flatRows proved every row spans
// the full stride ≥ needLen.
//
//hddlint:noalloc
//hddlint:binned
func walkSegBinnedFlat(nodes []binnedNode, seg []int32, base unsafe.Pointer, stride uintptr,
	dst, payload []float64, node int32, add bool) {
	for _, idx := range seg {
		row := unsafe.Add(base, uintptr(uint32(idx))*stride)
		i := node
		for {
			nd := &nodes[i]
			f := nd.feature
			if f < 0 {
				break
			}
			if *(*uint8)(unsafe.Add(row, uintptr(f))) < nd.cut {
				i = nd.left
			} else {
				i = nd.left + 1
			}
		}
		if add {
			dst[idx] += payload[i]
		} else {
			dst[idx] = payload[i]
		}
	}
}
