package cart

import (
	"math/rand"
	"testing"
)

func TestClonePredictsIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	x, y := randomDataset(rng, 500)
	tree, err := TrainClassifier(x, y, nil, Params{CP: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	tree.FeatureNames = []string{"a", "b"}
	clone := tree.Clone()
	for trial := 0; trial < 200; trial++ {
		p := []float64{rng.Float64(), rng.Float64()}
		if tree.Predict(p) != clone.Predict(p) {
			t.Fatal("clone predicts differently")
		}
	}
	// Mutating the clone must not touch the original.
	n := tree.NumNodes()
	Prune(clone, 1)
	if tree.NumNodes() != n {
		t.Error("pruning the clone changed the original")
	}
	if clone.NumNodes() >= n {
		t.Error("clone was not pruned")
	}
	clone.FeatureNames[0] = "zzz"
	if tree.FeatureNames[0] != "a" {
		t.Error("feature names are shared")
	}
}

func TestCPTableNested(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x, y := randomDataset(rng, 800)
	tree, err := TrainClassifier(x, y, nil, Params{MinSplit: 4, MinBucket: 2, CP: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	table := tree.CPTable()
	if len(table) < 3 {
		t.Fatalf("CP table too small: %+v", table)
	}
	if table[0].CP != 0 || table[0].Nodes != tree.NumNodes() {
		t.Errorf("first entry should be the unpruned tree: %+v", table[0])
	}
	last := table[len(table)-1]
	if last.Leaves != 1 || last.Nodes != 1 {
		t.Errorf("last entry should be the lone root: %+v", last)
	}
	for i := 1; i < len(table); i++ {
		if table[i].Nodes >= table[i-1].Nodes {
			t.Fatalf("table not strictly shrinking at %d: %+v", i, table)
		}
		if table[i].CP <= table[i-1].CP {
			t.Fatalf("table CPs not increasing at %d: %+v", i, table)
		}
	}
	// The tree itself must be untouched.
	if tree.NumNodes() != table[0].Nodes {
		t.Error("CPTable mutated the tree")
	}
}

func TestCrossValidatePicksReasonableCP(t *testing.T) {
	// Noisy step data: tiny CP overfits, huge CP underfits; CV should
	// pick something in between that beats both extremes on fresh data.
	rng := rand.New(rand.NewSource(32))
	x, y := randomDataset(rng, 1200)
	cps := []float64{1e-9, 1e-4, 1e-3, 1e-2, 0.3}
	results, best, err := CrossValidateCP(x, y, nil, Params{MinSplit: 4, MinBucket: 2}, Classification, 5, cps, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cps) {
		t.Fatalf("results = %d", len(results))
	}
	if best == 0.3 {
		t.Errorf("CV picked the root-only CP; losses: %+v", results)
	}
	// The best CP's loss is minimal by construction; sanity-check it is
	// at most the extremes'.
	var bestLoss, loA, loB float64
	for _, r := range results {
		if r.CP == best {
			bestLoss = r.Loss
		}
		if r.CP == 1e-9 {
			loA = r.Loss
		}
		if r.CP == 0.3 {
			loB = r.Loss
		}
	}
	if bestLoss > loA || bestLoss > loB {
		t.Errorf("best loss %v exceeds an extreme (%v, %v)", bestLoss, loA, loB)
	}
}

func TestCrossValidateRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	var x [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		v := rng.Float64()
		x = append(x, []float64{v})
		target := 0.0
		if v > 0.5 {
			target = 1
		}
		y = append(y, target+rng.NormFloat64()*0.2)
	}
	results, best, err := CrossValidateCP(x, y, nil, Params{}, Regression, 4,
		[]float64{1e-6, 1e-2, 0.9}, 35)
	if err != nil {
		t.Fatal(err)
	}
	if best == 0.9 {
		t.Errorf("regression CV picked the stump CP; %+v", results)
	}
}

func TestCrossValidateValidation(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{1, -1, 1}
	if _, _, err := CrossValidateCP(x, y, nil, Params{}, Classification, 1, []float64{0.1}, 0); err == nil {
		t.Error("folds < 2 accepted")
	}
	if _, _, err := CrossValidateCP(x, y, nil, Params{}, Classification, 2, nil, 0); err == nil {
		t.Error("empty CP list accepted")
	}
	if _, _, err := CrossValidateCP(x, y, nil, Params{}, Classification, 5, []float64{0.1}, 0); err == nil {
		t.Error("more folds than samples accepted")
	}
}
