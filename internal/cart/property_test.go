package cart

import (
	"math"
	"math/rand"
	"testing"
)

// randomDataset draws a dataset with an informative feature and label
// noise.
func randomDataset(rng *rand.Rand, n int) (x [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b})
		label := 1.0
		if a < 0.45 {
			label = -1
		}
		if rng.Float64() < 0.1 {
			label = -label
		}
		y = append(y, label)
	}
	return x, y
}

// TestWeightScalingInvariance: multiplying every sample weight by the same
// positive constant must not change the tree (information gain and loss
// comparisons are scale-free).
func TestWeightScalingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x, y := randomDataset(rng, 600)
	w1 := make([]float64, len(x))
	w2 := make([]float64, len(x))
	for i := range w1 {
		w1[i] = 0.5 + rng.Float64()
		w2[i] = w1[i] * 37.5
	}
	t1, err := TrainClassifier(x, y, w1, Params{LossFA: 10})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := TrainClassifier(x, y, w2, Params{LossFA: 10})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		p := []float64{rng.Float64(), rng.Float64()}
		if t1.Predict(p) != t2.Predict(p) {
			t.Fatalf("weight scaling changed prediction at %v", p)
		}
	}
}

// TestPruningMonotone: a larger CP can only shrink the tree.
func TestPruningMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x, y := randomDataset(rng, 800)
	prev := math.MaxInt
	for _, cp := range []float64{1e-9, 1e-4, 1e-3, 1e-2, 1e-1} {
		tree, err := TrainClassifier(x, y, nil, Params{MinSplit: 4, MinBucket: 2, CP: cp})
		if err != nil {
			t.Fatal(err)
		}
		n := tree.NumNodes()
		if n > prev {
			t.Fatalf("cp=%v grew the tree: %d > %d nodes", cp, n, prev)
		}
		prev = n
	}
}

// TestRegressionPredictionsWithinTargetRange: leaf values are weighted
// means, so every prediction must lie inside [min(y), max(y)].
func TestRegressionPredictionsWithinTargetRange(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var x [][]float64
	var y []float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 700; i++ {
		v := rng.NormFloat64()
		x = append(x, []float64{v, rng.NormFloat64()})
		target := v*v + rng.NormFloat64()
		y = append(y, target)
		lo = math.Min(lo, target)
		hi = math.Max(hi, target)
	}
	tree, err := TrainRegressor(x, y, nil, Params{CP: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 1000; trial++ {
		p := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		got := tree.Predict(p)
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Fatalf("prediction %v outside target range [%v, %v]", got, lo, hi)
		}
	}
}

// TestLeafCountsPartitionSamples: the leaves' sample counts must sum to
// the training-set size (every sample lands in exactly one leaf).
func TestLeafCountsPartitionSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x, y := randomDataset(rng, 900)
	tree, err := TrainClassifier(x, y, nil, Params{CP: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			sum += n.N
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tree.Root)
	if sum != len(x) {
		t.Errorf("leaf counts sum to %d, want %d", sum, len(x))
	}
}

// TestInternalCountsEqualChildren: each internal node's count equals its
// children's sum (split partitions the node).
func TestInternalCountsEqualChildren(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x, y := randomDataset(rng, 900)
	tree, err := TrainClassifier(x, y, nil, Params{CP: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		if n.N != n.Left.N+n.Right.N {
			t.Fatalf("node count %d != %d + %d", n.N, n.Left.N, n.Right.N)
		}
		if math.Abs(n.W-(n.Left.W+n.Right.W)) > 1e-9 {
			t.Fatalf("node weight %v != children sum", n.W)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tree.Root)
}

// TestRulesCoverEveryPoint: exactly one rule matches any input.
func TestRulesCoverEveryPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	x, y := randomDataset(rng, 500)
	tree, err := TrainClassifier(x, y, nil, Params{CP: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	rules := tree.Rules(false)
	matches := func(r Rule, p []float64) bool {
		for _, c := range r.Conditions {
			if c.Less != (p[c.Feature] < c.Threshold) {
				return false
			}
		}
		return true
	}
	for trial := 0; trial < 300; trial++ {
		p := []float64{rng.Float64(), rng.Float64()}
		count := 0
		var val float64
		for _, r := range rules {
			if matches(r, p) {
				count++
				val = r.Value
			}
		}
		if count != 1 {
			t.Fatalf("%d rules match %v, want exactly 1", count, p)
		}
		if val != tree.Predict(p) {
			t.Fatalf("rule value %v disagrees with Predict %v", val, tree.Predict(p))
		}
	}
}
