package cart

import (
	"math"
	"math/rand"
	"testing"

	"hddcart/internal/dataset"
)

// binnedFixture trains a binned classifier, rebuilds the matching
// BinnedMatrix, and quantizes the training corpus — the setup every
// binned-inference test shares.
func binnedFixture(t *testing.T, seed int64, n, nf, maxBins int) (*Tree, *dataset.BinnedMatrix, [][]float64, [][]uint8) {
	t.Helper()
	x, y, w := synthClassification(seed, n, nf)
	tree, err := TrainClassifier(x, y, w, Params{LossFA: 10, MaxBins: maxBins, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := dataset.BinMatrix(x, maxBins)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := bm.Quantize(x)
	if err != nil {
		t.Fatal(err)
	}
	return tree, bm, x, codes
}

// requireBinnedBitIdentical checks every binned prediction surface
// against the float compiled tree, row for row.
func requireBinnedBitIdentical(t *testing.T, ct *CompiledTree, bt *BinnedTree, x [][]float64, codes [][]uint8) {
	t.Helper()
	for i := range x {
		want, got := ct.Predict(x[i]), bt.Predict(codes[i])
		if want != got && !(math.IsNaN(want) && math.IsNaN(got)) {
			t.Fatalf("row %d: Predict diverged: float %v, binned %v", i, want, got)
		}
		if ct.PredictFailed(x[i]) != bt.PredictFailed(codes[i]) {
			t.Fatalf("row %d: PredictFailed diverged", i)
		}
		pw, pg := ct.ProbFailed(x[i]), bt.ProbFailed(codes[i])
		if pw != pg && !(math.IsNaN(pw) && math.IsNaN(pg)) {
			t.Fatalf("row %d: ProbFailed diverged: %v vs %v", i, pw, pg)
		}
	}
	preds := bt.PredictBatch(codes, nil)
	probs := bt.ProbFailedBatch(codes, nil)
	for i := range codes {
		if want := bt.Predict(codes[i]); preds[i] != want && !(math.IsNaN(preds[i]) && math.IsNaN(want)) {
			t.Fatalf("PredictBatch[%d] = %v, want %v", i, preds[i], want)
		}
		pw := bt.ProbFailed(codes[i])
		if probs[i] != pw && !(math.IsNaN(probs[i]) && math.IsNaN(pw)) {
			t.Fatalf("ProbFailedBatch[%d] = %v, want %v", i, probs[i], pw)
		}
	}
}

// TestCompileBinnedCorpusBitIdentical is the training-corpus half of the
// equivalence contract: a binned-trained tree scores every corpus row
// bit-identically through the float and binned engines, at every bin
// budget — including coarse ones where thresholds straddle bins and
// Exact is cleared.
func TestCompileBinnedCorpusBitIdentical(t *testing.T) {
	for _, maxBins := range []int{1, 8, 32, 255} {
		tree, bm, x, codes := binnedFixture(t, 41, 900, 6, maxBins)
		ct := tree.Compile()
		bt, err := ct.CompileBinned(bm)
		if err != nil {
			t.Fatalf("maxBins %d: %v", maxBins, err)
		}
		if bt.NumNodes() != ct.NumNodes() {
			t.Fatalf("maxBins %d: node count changed: %d vs %d", maxBins, bt.NumNodes(), ct.NumNodes())
		}
		requireBinnedBitIdentical(t, ct, bt, x, codes)
	}
}

// TestCompileBinnedExactUniversal is the Exact half of the contract: when
// every threshold cleanly separates bins (singleton-bin fast path), the
// binned tree matches the float path on arbitrary bin-representative
// inputs, not just corpus rows — including rows with injected NaN, which
// must route right through the reserved missing code exactly as the
// float path routes NaN.
func TestCompileBinnedExactUniversal(t *testing.T) {
	x, y, w := synthDyadicClassification(7, 600, 5)
	tree, err := TrainClassifier(x, y, w, Params{LossFA: 10, MaxBins: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := dataset.BinMatrix(x, 64)
	if err != nil {
		t.Fatal(err)
	}
	ct := tree.Compile()
	bt, err := ct.CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	if !bt.Exact {
		t.Fatal("singleton-bin compile should be Exact")
	}
	// Corpus rows with NaN injected feature by feature stay within the
	// bin-representative input set (NaN maps to the reserved code).
	rng := rand.New(rand.NewSource(99))
	probes := append([][]float64(nil), x...)
	for i := 0; i < 200; i++ {
		p := append([]float64(nil), x[rng.Intn(len(x))]...)
		p[rng.Intn(len(p))] = math.NaN()
		probes = append(probes, p)
	}
	codes, err := bm.Quantize(probes)
	if err != nil {
		t.Fatal(err)
	}
	requireBinnedBitIdentical(t, ct, bt, probes, codes)
}

// TestCompileBinnedExactFlag pins the straddle rule: a threshold strictly
// inside a bin's value range clears Exact, and the compiled cut is the
// first bin not entirely below the threshold.
func TestCompileBinnedExactFlag(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	bm, err := dataset.BinMatrix(x, 2) // bins [1,4] and [5,8]
	if err != nil {
		t.Fatal(err)
	}
	build := func(threshold float64) *CompiledTree {
		ct := (&Tree{
			Root: &Node{
				Feature: 0, Threshold: threshold,
				Left:  &Node{Value: -1, PFailed: 1, N: 1, W: 1},
				Right: &Node{Value: 1, PFailed: 0, N: 1, W: 1},
			},
			Kind: Classification, NumFeatures: 1,
		}).Compile()
		if err := ct.Validate(); err != nil {
			t.Fatal(err)
		}
		return ct
	}
	// 4.5 is the edge between the bins: exact, cut 1.
	bt, err := build(4.5).CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	if !bt.Exact || bt.Cut[0] != 1 {
		t.Fatalf("edge threshold: Exact=%v Cut=%d, want true/1", bt.Exact, bt.Cut[0])
	}
	// 2.5 falls strictly inside bin 0's [1,4]: inexact, cut 0 (the whole
	// bin routes right — conservative).
	bt, err = build(2.5).CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Exact || bt.Cut[0] != 0 {
		t.Fatalf("straddling threshold: Exact=%v Cut=%d, want false/0", bt.Exact, bt.Cut[0])
	}
}

func TestCompileBinnedErrors(t *testing.T) {
	x, y, w := synthClassification(3, 200, 4)
	tree, err := TrainClassifier(x, y, w, Params{MaxBins: 16, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ct := tree.Compile()
	if _, err := ct.CompileBinned(nil); err == nil {
		t.Error("nil matrix accepted")
	}
	narrow, err := dataset.BinMatrix([][]float64{{1}, {2}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.CompileBinned(narrow); err == nil {
		t.Error("narrow matrix accepted")
	}
	bad := &CompiledTree{}
	if _, err := bad.CompileBinned(narrow); err == nil {
		t.Error("invalid compiled tree accepted")
	}
}

// TestBinnedSingleLeaf covers the degenerate no-split tree through both
// the scalar and partitioned batch paths.
func TestBinnedSingleLeaf(t *testing.T) {
	ct := (&Tree{
		Root: &Node{Value: -1, PFailed: 0.9, N: 3, W: 3},
		Kind: Classification, NumFeatures: 2,
	}).Compile()
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}
	bm, err := dataset.BinMatrix([][]float64{{0, 1}, {2, 3}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := ct.CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	codes := make([][]uint8, 200)
	for i := range codes {
		codes[i] = []uint8{uint8(i % 3), uint8(i % 2)}
	}
	for _, got := range bt.PredictBatch(codes, nil) {
		if got != -1 {
			t.Fatalf("single-leaf batch predicted %v, want -1", got)
		}
	}
	if bt.ProbFailed(codes[0]) != 0.9 {
		t.Fatalf("ProbFailed = %v, want 0.9", bt.ProbFailed(codes[0]))
	}
}

// TestBinnedBatchBoundaries sweeps batch sizes that straddle the scalar
// cutoff and the block size, proving the partitioned engine is
// bit-identical to the per-row walk at every seam.
func TestBinnedBatchBoundaries(t *testing.T) {
	tree, bm, _, codes := binnedFixture(t, 13, 2600, 5, 24)
	bt, err := tree.Compile().CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, minPartitionBatch - 1, minPartitionBatch, minPartitionBatch + 1,
		partitionBlock - 1, partitionBlock, partitionBlock + 1, len(codes)} {
		batch := codes[:n]
		got := bt.PredictBatch(batch, nil)
		for i := range batch {
			if want := bt.Predict(batch[i]); got[i] != want {
				t.Fatalf("n=%d: PredictBatch[%d] = %v, want %v", n, i, got[i], want)
			}
		}
	}
}

// TestAccumulateBatchBinned checks ensemble accumulation against the
// per-tree scalar sum, in tree order, across the block boundary.
func TestAccumulateBatchBinned(t *testing.T) {
	var trees []*BinnedTree
	var bm *dataset.BinnedMatrix
	var codes [][]uint8
	for i, seed := range []int64{5, 6, 7} {
		tree, m, _, c := binnedFixture(t, seed, 1500, 4, 16)
		if i == 0 {
			bm, codes = m, c
		}
		// All fixtures share the synth distribution; rebuild each tree's
		// cuts against the first fixture's matrix so one code row feeds
		// the whole ensemble.
		bt, err := tree.Compile().CompileBinned(bm)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, bt)
	}
	for _, n := range []int{minPartitionBatch - 1, partitionBlock + 37, len(codes)} {
		batch := codes[:n]
		dst := make([]float64, n)
		AccumulateBatchBinned(trees, batch, dst)
		for i := range batch {
			want := 0.0
			for _, bt := range trees {
				want += bt.Predict(batch[i])
			}
			if dst[i] != want {
				t.Fatalf("n=%d: AccumulateBatchBinned[%d] = %v, want %v", n, i, dst[i], want)
			}
		}
	}
}

// TestBinnedBatchNoAlloc proves the //hddlint:noalloc contract for the
// binned batch kernels with caller-supplied buffers.
func TestBinnedBatchNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool sheds items under the race detector")
	}
	tree, bm, _, codes := binnedFixture(t, 9, 400, 5, 32)
	bt, err := tree.Compile().CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	trees := []*BinnedTree{bt, bt, bt}
	dst := make([]float64, len(codes))
	allocs := testing.AllocsPerRun(20, func() {
		out := bt.PredictBatch(codes, dst)
		if &out[0] != &dst[0] {
			t.Fatal("PredictBatch did not reuse the provided buffer")
		}
	})
	if allocs != 0 {
		t.Fatalf("PredictBatch allocated %.0f times per run", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() { bt.PredictBatchAdd(codes, dst) })
	if allocs != 0 {
		t.Fatalf("PredictBatchAdd allocated %.0f times per run", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() { bt.ProbFailedBatch(codes, dst) })
	if allocs != 0 {
		t.Fatalf("ProbFailedBatch allocated %.0f times per run", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() { AccumulateBatchBinned(trees, codes, dst) })
	if allocs != 0 {
		t.Fatalf("AccumulateBatchBinned allocated %.0f times per run", allocs)
	}
	row := make([]uint8, bm.NumFeatures)
	allocs = testing.AllocsPerRun(20, func() { bm.QuantizeRow([]float64{1, 2, 3, 4, 5}, row) })
	if allocs != 0 {
		t.Fatalf("QuantizeRow allocated %.0f times per run", allocs)
	}
}

// TestBinnedShortRowRejected proves the partitioned path falls back (and
// stays correct) when a code row is shorter than the deepest feature the
// tree reads — the same row-validation contract the float engine has.
// Rows here are exactly needLen long, shorter than NumFeatures.
func TestBinnedShortRowRejected(t *testing.T) {
	tree, bm, _, codes := binnedFixture(t, 21, 800, 6, 16)
	bt, err := tree.Compile().CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	if bt.needLen == 0 {
		t.Skip("degenerate tree")
	}
	short := make([][]uint8, len(codes))
	for i := range codes {
		short[i] = codes[i][:bt.needLen]
	}
	got := bt.PredictBatch(short, nil)
	for i := range short {
		if want := bt.Predict(codes[i]); got[i] != want {
			t.Fatalf("short-row batch[%d] = %v, want %v", i, got[i], want)
		}
	}
}
