package cart

import (
	"math/bits"
	"unsafe"
)

// SWAR tier for the partition kernels: 8 codes per uint64, a carry-free
// bytewise unsigned compare, and a table-driven compaction that
// reproduces the scalar two-cursor output order exactly.
//
// Order preservation is the load-bearing property. The scalar loops
// write lefts ascending from index 0 and rights DESCENDING from n-1,
// both in encounter order, and downstream segments inherit that order —
// so the kernels are order-defining, not just count-defining. The two
// cursors are independent (left advances only on lefts, right only on
// rights), so processing a word's lefts as a group and then its rights
// as a group lands every element at the exact position the interleaved
// scalar loop would have chosen.
//
// Each 8-code word becomes a compare mask; posTabL/posTabR turn the
// mask into packed store positions and the kernel issues eight
// unconditional stores per side (blind writes). Garbage lanes — lanes
// past the side's population count — write into slots that are still
// inside the unwritten window between the cursors and are overwritten
// by later words or the tail. The window is wide enough whenever
// right-left >= 15, which is exactly the vector loop's k+16 <= n bound;
// the branch-free scalar tail finishes the rest on the same cursors.

const (
	swarL = 0x0101010101010101
	swarH = 0x8080808080808080
	// movmaskMul gathers the eight per-byte high bits (positions 8j+7)
	// into the top byte, bit j of the result at bit 56+j. The exponents
	// 7j make every partial product land on a distinct bit, so the
	// multiply never carries; the kernel tests verify all 256 masks.
	movmaskMul = 0x0002040810204081
)

// posTabL[m] packs, in byte j, the lane index of the j-th set bit of
// mask m (garbage lanes hold 0); posTabR[m] does the same for clear
// bits. permTabL/permTabR are the dword-lane equivalents the AVX2
// kernels feed to VPERMD — permTabR is lane-reversed (lane i holds the
// (7-i)-th clear bit) so one 8-lane store lands the rights descending.
var (
	posTabL  [256]uint64
	posTabR  [256]uint64
	permTabL [256][8]uint32
	permTabR [256][8]uint32
)

func init() {
	for m := 0; m < 256; m++ {
		li, ri := 0, 0
		for b := 0; b < 8; b++ {
			if m&(1<<b) != 0 {
				posTabL[m] |= uint64(b) << (8 * li)
				permTabL[m][li] = uint32(b)
				li++
			} else {
				posTabR[m] |= uint64(b) << (8 * ri)
				permTabR[m][7-ri] = uint32(b)
				ri++
			}
		}
	}
}

// le64 assembles eight consecutive bytes into a uint64, byte k in bits
// 8k..8k+7. Written as byte loads so it is alignment- and endian-safe
// everywhere; the compiler's load combining turns it into a single
// 8-byte load on little-endian targets.
func le64(p unsafe.Pointer) uint64 {
	return uint64(*(*uint8)(p)) |
		uint64(*(*uint8)(unsafe.Add(p, 1)))<<8 |
		uint64(*(*uint8)(unsafe.Add(p, 2)))<<16 |
		uint64(*(*uint8)(unsafe.Add(p, 3)))<<24 |
		uint64(*(*uint8)(unsafe.Add(p, 4)))<<32 |
		uint64(*(*uint8)(unsafe.Add(p, 5)))<<40 |
		uint64(*(*uint8)(unsafe.Add(p, 6)))<<48 |
		uint64(*(*uint8)(unsafe.Add(p, 7)))<<56
}

// ltMask8 returns an 8-bit mask with bit j set where byte j of x is
// unsigned-less-than the cut broadcast nc was built from. nc is the
// bytewise complement of the broadcast cut, ncm is nc &^ swarH; both
// are loop invariants the callers hoist. Bytewise x < c is "no carry
// out of x + ^c + 1": s sums the low 7 bits of each byte plus the +1,
// then the per-byte carry-out is majority(x7, ^c7, carry-in) and the
// predicate is its complement.
func ltMask8(x, nc, ncm uint64) uint64 {
	s := (x &^ swarH) + ncm + swarL
	lt := swarH &^ ((x & nc) | ((x | nc) & s))
	return (lt * movmaskMul) >> 56
}

// gather8 packs the codes of eight consecutive segment indices
// starting at sp into a uint64, lane j from index j.
func gather8(sp, colp unsafe.Pointer) uint64 {
	return uint64(*(*uint8)(unsafe.Add(colp, uintptr(uint32(*(*int32)(sp)))))) |
		uint64(*(*uint8)(unsafe.Add(colp, uintptr(uint32(*(*int32)(unsafe.Add(sp, 4)))))))<<8 |
		uint64(*(*uint8)(unsafe.Add(colp, uintptr(uint32(*(*int32)(unsafe.Add(sp, 8)))))))<<16 |
		uint64(*(*uint8)(unsafe.Add(colp, uintptr(uint32(*(*int32)(unsafe.Add(sp, 12)))))))<<24 |
		uint64(*(*uint8)(unsafe.Add(colp, uintptr(uint32(*(*int32)(unsafe.Add(sp, 16)))))))<<32 |
		uint64(*(*uint8)(unsafe.Add(colp, uintptr(uint32(*(*int32)(unsafe.Add(sp, 20)))))))<<40 |
		uint64(*(*uint8)(unsafe.Add(colp, uintptr(uint32(*(*int32)(unsafe.Add(sp, 24)))))))<<48 |
		uint64(*(*uint8)(unsafe.Add(colp, uintptr(uint32(*(*int32)(unsafe.Add(sp, 28)))))))<<56
}

// partitionRootTiledSWAR is the SWAR tier of partitionRootBinnedTiled:
// the output indices are the identity order 0..n-1, so compaction adds
// the word base to the table positions directly.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionRootTiledSWAR(colp unsafe.Pointer, n int, outp unsafe.Pointer, cut uint8) int {
	nc := ^(uint64(cut) * swarL)
	ncm := nc &^ swarH
	l, r := 0, n-1
	k := 0
	for ; k+16 <= n; k += 8 {
		m := ltMask8(le64(unsafe.Add(colp, uintptr(k))), nc, ncm)
		pl, pr := posTabL[uint8(m)], posTabR[uint8(m)]
		pc := bits.OnesCount8(uint8(m))
		base := int32(k)
		lp := unsafe.Add(outp, uintptr(uint(l))*4)
		*(*int32)(lp) = base + int32(pl&7)
		*(*int32)(unsafe.Add(lp, 4)) = base + int32((pl>>8)&7)
		*(*int32)(unsafe.Add(lp, 8)) = base + int32((pl>>16)&7)
		*(*int32)(unsafe.Add(lp, 12)) = base + int32((pl>>24)&7)
		*(*int32)(unsafe.Add(lp, 16)) = base + int32((pl>>32)&7)
		*(*int32)(unsafe.Add(lp, 20)) = base + int32((pl>>40)&7)
		*(*int32)(unsafe.Add(lp, 24)) = base + int32((pl>>48)&7)
		*(*int32)(unsafe.Add(lp, 28)) = base + int32(pl>>56)
		l += pc
		rp := unsafe.Add(outp, uintptr(uint(r))*4)
		*(*int32)(rp) = base + int32(pr&7)
		*(*int32)(unsafe.Add(rp, -4)) = base + int32((pr>>8)&7)
		*(*int32)(unsafe.Add(rp, -8)) = base + int32((pr>>16)&7)
		*(*int32)(unsafe.Add(rp, -12)) = base + int32((pr>>24)&7)
		*(*int32)(unsafe.Add(rp, -16)) = base + int32((pr>>32)&7)
		*(*int32)(unsafe.Add(rp, -20)) = base + int32((pr>>40)&7)
		*(*int32)(unsafe.Add(rp, -24)) = base + int32((pr>>48)&7)
		*(*int32)(unsafe.Add(rp, -28)) = base + int32(pr>>56)
		r -= 8 - pc
	}
	for ; k < n; k++ {
		cv := *(*uint8)(unsafe.Add(colp, uintptr(k)))
		w := int(ltBit(cv, cut))
		pos := r ^ ((r ^ l) & -w)
		*(*int32)(unsafe.Add(outp, uintptr(uint(pos))*4)) = int32(k)
		l += w
		r -= 1 - w
	}
	return l
}

// partitionSegTiledSWAR is the SWAR tier of partitionSegBinnedTiled:
// codes are gathered by segment index, and compaction re-reads the
// chosen source indices through the position tables.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionSegTiledSWAR(srcp, outp unsafe.Pointer, n int, colp unsafe.Pointer, cut uint8) int {
	nc := ^(uint64(cut) * swarL)
	ncm := nc &^ swarH
	l, r := 0, n-1
	k := 0
	for ; k+16 <= n; k += 8 {
		sp := unsafe.Add(srcp, uintptr(k)*4)
		m := ltMask8(gather8(sp, colp), nc, ncm)
		pl, pr := posTabL[uint8(m)], posTabR[uint8(m)]
		pc := bits.OnesCount8(uint8(m))
		lp := unsafe.Add(outp, uintptr(uint(l))*4)
		*(*int32)(lp) = *(*int32)(unsafe.Add(sp, uintptr(pl&7)*4))
		*(*int32)(unsafe.Add(lp, 4)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>8)&7)*4))
		*(*int32)(unsafe.Add(lp, 8)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>16)&7)*4))
		*(*int32)(unsafe.Add(lp, 12)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>24)&7)*4))
		*(*int32)(unsafe.Add(lp, 16)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>32)&7)*4))
		*(*int32)(unsafe.Add(lp, 20)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>40)&7)*4))
		*(*int32)(unsafe.Add(lp, 24)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>48)&7)*4))
		*(*int32)(unsafe.Add(lp, 28)) = *(*int32)(unsafe.Add(sp, uintptr(pl>>56)*4))
		l += pc
		rp := unsafe.Add(outp, uintptr(uint(r))*4)
		*(*int32)(rp) = *(*int32)(unsafe.Add(sp, uintptr(pr&7)*4))
		*(*int32)(unsafe.Add(rp, -4)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>8)&7)*4))
		*(*int32)(unsafe.Add(rp, -8)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>16)&7)*4))
		*(*int32)(unsafe.Add(rp, -12)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>24)&7)*4))
		*(*int32)(unsafe.Add(rp, -16)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>32)&7)*4))
		*(*int32)(unsafe.Add(rp, -20)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>40)&7)*4))
		*(*int32)(unsafe.Add(rp, -24)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>48)&7)*4))
		*(*int32)(unsafe.Add(rp, -28)) = *(*int32)(unsafe.Add(sp, uintptr(pr>>56)*4))
		r -= 8 - pc
	}
	for ; k < n; k++ {
		idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
		cv := *(*uint8)(unsafe.Add(colp, uintptr(uint32(idx))))
		w := int(ltBit(cv, cut))
		pos := r ^ ((r ^ l) & -w)
		*(*int32)(unsafe.Add(outp, uintptr(uint(pos))*4)) = idx
		l += w
		r -= 1 - w
	}
	return l
}

// leafPairSegTiledSWAR finishes a two-leaf-children segment with the
// 8-wide SWAR compare; the float64 payload delivery stays scalar
// because it scatters by sample index. Delivery has no blind-write
// window, so the vector loop runs to the last full word.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func leafPairSegTiledSWAR(srcp unsafe.Pointer, n int, colp unsafe.Pointer, cut uint8,
	dstp, payp unsafe.Pointer, add bool) {
	nc := ^(uint64(cut) * swarL)
	ncm := nc &^ swarH
	k := 0
	if add {
		for ; k+8 <= n; k += 8 {
			sp := unsafe.Add(srcp, uintptr(k)*4)
			m := ltMask8(gather8(sp, colp), nc, ncm)
			i0 := uintptr(uint32(*(*int32)(sp)))
			i1 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 4))))
			i2 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 8))))
			i3 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 12))))
			i4 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 16))))
			i5 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 20))))
			i6 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 24))))
			i7 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 28))))
			*(*float64)(unsafe.Add(dstp, i0*8)) += *(*float64)(unsafe.Add(payp, (uintptr(m)&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i1*8)) += *(*float64)(unsafe.Add(payp, (uintptr(m)>>1&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i2*8)) += *(*float64)(unsafe.Add(payp, (uintptr(m)>>2&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i3*8)) += *(*float64)(unsafe.Add(payp, (uintptr(m)>>3&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i4*8)) += *(*float64)(unsafe.Add(payp, (uintptr(m)>>4&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i5*8)) += *(*float64)(unsafe.Add(payp, (uintptr(m)>>5&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i6*8)) += *(*float64)(unsafe.Add(payp, (uintptr(m)>>6&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i7*8)) += *(*float64)(unsafe.Add(payp, (uintptr(m)>>7&1^1)*8))
		}
	} else {
		for ; k+8 <= n; k += 8 {
			sp := unsafe.Add(srcp, uintptr(k)*4)
			m := ltMask8(gather8(sp, colp), nc, ncm)
			i0 := uintptr(uint32(*(*int32)(sp)))
			i1 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 4))))
			i2 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 8))))
			i3 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 12))))
			i4 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 16))))
			i5 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 20))))
			i6 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 24))))
			i7 := uintptr(uint32(*(*int32)(unsafe.Add(sp, 28))))
			*(*float64)(unsafe.Add(dstp, i0*8)) = *(*float64)(unsafe.Add(payp, (uintptr(m)&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i1*8)) = *(*float64)(unsafe.Add(payp, (uintptr(m)>>1&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i2*8)) = *(*float64)(unsafe.Add(payp, (uintptr(m)>>2&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i3*8)) = *(*float64)(unsafe.Add(payp, (uintptr(m)>>3&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i4*8)) = *(*float64)(unsafe.Add(payp, (uintptr(m)>>4&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i5*8)) = *(*float64)(unsafe.Add(payp, (uintptr(m)>>5&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i6*8)) = *(*float64)(unsafe.Add(payp, (uintptr(m)>>6&1^1)*8))
			*(*float64)(unsafe.Add(dstp, i7*8)) = *(*float64)(unsafe.Add(payp, (uintptr(m)>>7&1^1)*8))
		}
	}
	leafPairSegTiledScalar(unsafe.Add(srcp, uintptr(k)*4), n-k, colp, cut, dstp, payp, add)
}

// partitionRootFlatSWAR gathers the feature column at the matrix
// stride — the flat layout has no contiguous column, so the compare is
// SWAR over strided loads and the identity-order compaction matches
// partitionRootTiledSWAR.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionRootFlatSWAR(base unsafe.Pointer, stride uintptr, n int,
	outp unsafe.Pointer, foff uintptr, cut uint8) int {
	nc := ^(uint64(cut) * swarL)
	ncm := nc &^ swarH
	p := unsafe.Add(base, foff)
	l, r := 0, n-1
	k := 0
	for ; k+16 <= n; k += 8 {
		x := uint64(*(*uint8)(p)) |
			uint64(*(*uint8)(unsafe.Add(p, stride)))<<8 |
			uint64(*(*uint8)(unsafe.Add(p, 2*stride)))<<16 |
			uint64(*(*uint8)(unsafe.Add(p, 3*stride)))<<24 |
			uint64(*(*uint8)(unsafe.Add(p, 4*stride)))<<32 |
			uint64(*(*uint8)(unsafe.Add(p, 5*stride)))<<40 |
			uint64(*(*uint8)(unsafe.Add(p, 6*stride)))<<48 |
			uint64(*(*uint8)(unsafe.Add(p, 7*stride)))<<56
		p = unsafe.Add(p, 8*stride)
		m := ltMask8(x, nc, ncm)
		pl, pr := posTabL[uint8(m)], posTabR[uint8(m)]
		pc := bits.OnesCount8(uint8(m))
		base := int32(k)
		lp := unsafe.Add(outp, uintptr(uint(l))*4)
		*(*int32)(lp) = base + int32(pl&7)
		*(*int32)(unsafe.Add(lp, 4)) = base + int32((pl>>8)&7)
		*(*int32)(unsafe.Add(lp, 8)) = base + int32((pl>>16)&7)
		*(*int32)(unsafe.Add(lp, 12)) = base + int32((pl>>24)&7)
		*(*int32)(unsafe.Add(lp, 16)) = base + int32((pl>>32)&7)
		*(*int32)(unsafe.Add(lp, 20)) = base + int32((pl>>40)&7)
		*(*int32)(unsafe.Add(lp, 24)) = base + int32((pl>>48)&7)
		*(*int32)(unsafe.Add(lp, 28)) = base + int32(pl>>56)
		l += pc
		rp := unsafe.Add(outp, uintptr(uint(r))*4)
		*(*int32)(rp) = base + int32(pr&7)
		*(*int32)(unsafe.Add(rp, -4)) = base + int32((pr>>8)&7)
		*(*int32)(unsafe.Add(rp, -8)) = base + int32((pr>>16)&7)
		*(*int32)(unsafe.Add(rp, -12)) = base + int32((pr>>24)&7)
		*(*int32)(unsafe.Add(rp, -16)) = base + int32((pr>>32)&7)
		*(*int32)(unsafe.Add(rp, -20)) = base + int32((pr>>40)&7)
		*(*int32)(unsafe.Add(rp, -24)) = base + int32((pr>>48)&7)
		*(*int32)(unsafe.Add(rp, -28)) = base + int32(pr>>56)
		r -= 8 - pc
	}
	for ; k < n; k++ {
		cv := *(*uint8)(p)
		p = unsafe.Add(p, stride)
		w := int(ltBit(cv, cut))
		pos := r ^ ((r ^ l) & -w)
		*(*int32)(unsafe.Add(outp, uintptr(uint(pos))*4)) = int32(k)
		l += w
		r -= 1 - w
	}
	return l
}

// partitionSegFlatSWAR is partitionSegTiledSWAR with each code byte at
// base + idx·stride + foff.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionSegFlatSWAR(srcp, outp unsafe.Pointer, n int,
	base unsafe.Pointer, stride, foff uintptr, cut uint8) int {
	nc := ^(uint64(cut) * swarL)
	ncm := nc &^ swarH
	fb := unsafe.Add(base, foff)
	l, r := 0, n-1
	k := 0
	for ; k+16 <= n; k += 8 {
		sp := unsafe.Add(srcp, uintptr(k)*4)
		x := uint64(*(*uint8)(unsafe.Add(fb, uintptr(uint32(*(*int32)(sp)))*stride))) |
			uint64(*(*uint8)(unsafe.Add(fb, uintptr(uint32(*(*int32)(unsafe.Add(sp, 4))))*stride)))<<8 |
			uint64(*(*uint8)(unsafe.Add(fb, uintptr(uint32(*(*int32)(unsafe.Add(sp, 8))))*stride)))<<16 |
			uint64(*(*uint8)(unsafe.Add(fb, uintptr(uint32(*(*int32)(unsafe.Add(sp, 12))))*stride)))<<24 |
			uint64(*(*uint8)(unsafe.Add(fb, uintptr(uint32(*(*int32)(unsafe.Add(sp, 16))))*stride)))<<32 |
			uint64(*(*uint8)(unsafe.Add(fb, uintptr(uint32(*(*int32)(unsafe.Add(sp, 20))))*stride)))<<40 |
			uint64(*(*uint8)(unsafe.Add(fb, uintptr(uint32(*(*int32)(unsafe.Add(sp, 24))))*stride)))<<48 |
			uint64(*(*uint8)(unsafe.Add(fb, uintptr(uint32(*(*int32)(unsafe.Add(sp, 28))))*stride)))<<56
		m := ltMask8(x, nc, ncm)
		pl, pr := posTabL[uint8(m)], posTabR[uint8(m)]
		pc := bits.OnesCount8(uint8(m))
		lp := unsafe.Add(outp, uintptr(uint(l))*4)
		*(*int32)(lp) = *(*int32)(unsafe.Add(sp, uintptr(pl&7)*4))
		*(*int32)(unsafe.Add(lp, 4)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>8)&7)*4))
		*(*int32)(unsafe.Add(lp, 8)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>16)&7)*4))
		*(*int32)(unsafe.Add(lp, 12)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>24)&7)*4))
		*(*int32)(unsafe.Add(lp, 16)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>32)&7)*4))
		*(*int32)(unsafe.Add(lp, 20)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>40)&7)*4))
		*(*int32)(unsafe.Add(lp, 24)) = *(*int32)(unsafe.Add(sp, uintptr((pl>>48)&7)*4))
		*(*int32)(unsafe.Add(lp, 28)) = *(*int32)(unsafe.Add(sp, uintptr(pl>>56)*4))
		l += pc
		rp := unsafe.Add(outp, uintptr(uint(r))*4)
		*(*int32)(rp) = *(*int32)(unsafe.Add(sp, uintptr(pr&7)*4))
		*(*int32)(unsafe.Add(rp, -4)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>8)&7)*4))
		*(*int32)(unsafe.Add(rp, -8)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>16)&7)*4))
		*(*int32)(unsafe.Add(rp, -12)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>24)&7)*4))
		*(*int32)(unsafe.Add(rp, -16)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>32)&7)*4))
		*(*int32)(unsafe.Add(rp, -20)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>40)&7)*4))
		*(*int32)(unsafe.Add(rp, -24)) = *(*int32)(unsafe.Add(sp, uintptr((pr>>48)&7)*4))
		*(*int32)(unsafe.Add(rp, -28)) = *(*int32)(unsafe.Add(sp, uintptr(pr>>56)*4))
		r -= 8 - pc
	}
	for ; k < n; k++ {
		idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
		cv := *(*uint8)(unsafe.Add(fb, uintptr(uint32(idx))*stride))
		w := int(ltBit(cv, cut))
		pos := r ^ ((r ^ l) & -w)
		*(*int32)(unsafe.Add(outp, uintptr(uint(pos))*4)) = idx
		l += w
		r -= 1 - w
	}
	return l
}
