package cart

import (
	"sync"

	"hddcart/internal/dataset"
)

// Histogram-binned growth (Params.MaxBins > 0), LightGBM-style: features
// are quantized once into ≤ MaxBins bins (dataset.BinColumn), each node
// accumulates a per-(feature, bin) statistics histogram, and split search
// scans ≤ MaxBins bin boundaries instead of n samples. After a split only
// the smaller child is re-scanned: the larger child's histogram is the
// parent's minus the smaller's, computed in place, so every sample is
// accumulated at most O(depth·log) times instead of O(depth) full scans
// per feature. Histogram buffers are pooled and reused across nodes and
// across trees.
//
// Determinism contract: at a fixed MaxBins the grown tree is bit-identical
// for any Workers count — bins are a pure function of each column's value
// multiset, per-feature accumulation always folds samples in stored node
// order, and the cross-feature reduction breaks ties exactly like the
// exact path. When every feature has at most MaxBins distinct finite
// values each distinct value gets a singleton bin, so the binned search
// considers exactly the distinct-value boundaries (with bitwise-identical
// midpoint thresholds) the exact search considers.

// histSlots is the per-bin statistics width. Classification uses slots
// {effGood, effFailed, rawFailed, wRaw, count}; regression uses
// {sumW, sumWY, sumWY2, wRaw, count}. Counts are stored as float64
// (exact for any realistic n) so one flat buffer serves both kinds.
const histSlots = 5

// histPool recycles histogram buffers across nodes, trees and training
// runs. Buffers are zeroed on checkout, so reuse never leaks state.
var histPool sync.Pool

// histGrower drives histogram-binned growth for one training run. It
// shares the grower's worker pool, stats helpers and per-node seeding, so
// parallel scheduling and MTry sampling behave exactly like the exact
// path's.
type histGrower struct {
	g  *grower
	bm *dataset.BinnedMatrix
	// featStride is each feature's histogram extent: (MaxBins+1) bins —
	// one extra for the reserved NaN/missing bin — of histSlots floats.
	featStride int
}

// histSplit is the binned analogue of split: the boundary is identified
// by the first right-hand bin rather than a position in a sorted column.
type histSplit struct {
	feature   int
	threshold float64
	gain      float64 // relative to rootTotal
	cutBin    int     // first bin routed right
	leftN     int     // finite samples routed left (presizes partition)
}

// growBinned quantizes the feature matrix and grows the tree from bin
// histograms. It runs after the grower's shared setup (validation,
// effective weights, rootTotal), so gains are normalized identically to
// the exact path.
func (g *grower) growBinned() *Node {
	bm := &dataset.BinnedMatrix{
		NumSamples:  len(g.x),
		NumFeatures: g.nf,
		MaxBins:     g.p.MaxBins,
		Cols:        make([]dataset.BinnedColumn, g.nf),
	}
	// Columns quantize independently (BinColumn only reads x), so the
	// binning pass fans out like the exact path's presort.
	g.parallelFor(g.nf, len(g.x) >= parallelSubtreeMin, func(f int) {
		bm.Cols[f] = dataset.BinColumn(g.x, f, g.p.MaxBins)
	})
	hg := &histGrower{g: g, bm: bm, featStride: (g.p.MaxBins + 1) * histSlots}
	idx := make([]int32, len(g.x))
	for i := range idx {
		idx[i] = int32(i)
	}
	hist := hg.getHist()
	hg.accumulate(idx, *hist)
	return hg.grow(idx, hist, 1, 1)
}

// getHist checks a zeroed histogram buffer out of the shared pool,
// growing it when a smaller training run's buffer comes back first.
func (hg *histGrower) getHist() *[]float64 {
	need := hg.g.nf * hg.featStride
	p, _ := histPool.Get().(*[]float64)
	if p == nil || cap(*p) < need {
		b := make([]float64, need)
		p = &b
	}
	h := (*p)[:need]
	for i := range h {
		h[i] = 0
	}
	*p = h
	return p
}

func (hg *histGrower) putHist(p *[]float64) { histPool.Put(p) }

// accumulate folds the node's samples into hist, one independent segment
// per feature. Per-feature folds always walk idx in stored order, so the
// result is identical for any worker count.
func (hg *histGrower) accumulate(idx []int32, hist []float64) {
	g := hg.g
	par := len(idx)*g.nf >= parallelSplitWork
	g.parallelFor(g.nf, par, func(f int) {
		seg := hist[f*hg.featStride : (f+1)*hg.featStride]
		if g.kind == Classification {
			accumulateHistClass(seg, hg.bm.Cols[f].Codes, idx, g.y, g.w, g.eff)
		} else {
			accumulateHistReg(seg, hg.bm.Cols[f].Codes, idx, g.y, g.w, g.eff)
		}
	})
}

// accumulateHistClass folds classification samples into one feature's
// histogram segment: per bin {effGood, effFailed, rawFailed, wRaw, count}.
//
//hddlint:noalloc
func accumulateHistClass(seg []float64, codes []uint8, idx []int32, y, w, eff []float64) {
	for _, i := range idx {
		o := int(codes[i]) * histSlots
		if y[i] < 0 {
			seg[o+1] += eff[i]
			seg[o+2] += w[i]
		} else {
			seg[o] += eff[i]
		}
		seg[o+3] += w[i]
		seg[o+4]++
	}
}

// accumulateHistReg folds regression samples into one feature's histogram
// segment: per bin {sumW, sumWY, sumWY2, wRaw, count}.
//
//hddlint:noalloc
func accumulateHistReg(seg []float64, codes []uint8, idx []int32, y, w, eff []float64) {
	for _, i := range idx {
		o := int(codes[i]) * histSlots
		wy := eff[i] * y[i]
		seg[o] += eff[i]
		seg[o+1] += wy
		seg[o+2] += wy * y[i]
		seg[o+3] += w[i]
		seg[o+4]++
	}
}

// subtractHistInto turns the parent histogram into the sibling's:
// parent[i] -= child[i] across every feature segment. This is the
// subtraction trick — the larger child is never re-scanned.
//
//hddlint:noalloc
func subtractHistInto(parent, child []float64) {
	for i, v := range child {
		parent[i] -= v
	}
}

// grow is the binned recursive partitioning loop. It owns hist (the
// node's fully-accumulated histogram over all features) and returns it to
// the pool on leaf paths; on split paths the buffer is subtracted in
// place into the larger child's histogram and handed down. Subtree
// scheduling, per-node ids and MTry seeding mirror grower.grow exactly.
func (hg *histGrower) grow(idx []int32, hist *[]float64, depth int, id uint64) *Node {
	g := hg.g
	s := g.statsCol(idx)
	node := g.makeNode(s)
	if s.n < g.p.MinSplit || depth >= g.p.MaxDepth {
		hg.putHist(hist)
		return node
	}
	parentMass := s.impurityMass(g.kind)
	if parentMass <= 1e-12 {
		hg.putHist(hist)
		return node // pure node
	}
	best, ok := hg.bestSplit(idx, s, parentMass, *hist, id)
	if !ok {
		hg.putHist(hist)
		return node
	}
	node.Feature = best.feature
	node.Threshold = best.threshold
	node.Gain = best.gain
	left, right := hg.partition(idx, best)
	// Scan only the smaller child; the larger child's histogram is the
	// parent's minus the smaller's. Ties go to the left child — a fixed
	// rule, so the arithmetic is identical for any worker count.
	leftHist, rightHist := hist, hist
	if len(left) <= len(right) {
		leftHist = hg.getHist()
		hg.accumulate(left, *leftHist)
		subtractHistInto(*hist, *leftHist)
	} else {
		rightHist = hg.getHist()
		hg.accumulate(right, *rightHist)
		subtractHistInto(*hist, *rightHist)
	}
	if len(left) >= parallelSubtreeMin && len(right) >= parallelSubtreeMin && g.tryAcquire() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer g.release()
			node.Left = hg.grow(left, leftHist, depth+1, 2*id)
		}()
		node.Right = hg.grow(right, rightHist, depth+1, 2*id+1)
		wg.Wait()
	} else {
		node.Left = hg.grow(left, leftHist, depth+1, 2*id)
		node.Right = hg.grow(right, rightHist, depth+1, 2*id+1)
	}
	return node
}

// bestSplit scans each (selected) feature's histogram for the best bin
// boundary. Features scan independently — in parallel when the node is
// large enough — and the per-feature winners reduce in feature-scan order
// with a strict greater-than, reproducing the exact path's tie-breaking
// (lowest feature first, then lowest boundary).
func (hg *histGrower) bestSplit(idx []int32, all nodeStats, parentMass float64, hist []float64, id uint64) (histSplit, bool) {
	g := hg.g
	feats := g.splitFeatures(id)
	bests := make([]histSplit, len(feats))
	found := make([]bool, len(feats))
	parallel := len(idx)*len(feats) >= parallelSplitWork
	g.parallelFor(len(feats), parallel, func(i int) {
		if g.kind == Classification {
			bests[i], found[i] = hg.scanFeatureClass(feats[i], all, parentMass, hist)
		} else {
			bests[i], found[i] = hg.scanFeatureReg(feats[i], all, parentMass, hist)
		}
	})
	var best histSplit
	ok := false
	for i := range feats {
		if found[i] && (!ok || bests[i].gain > best.gain) {
			best = bests[i]
			ok = true
		}
	}
	return best, ok
}

// scanFeatureClass walks one feature's bins in value order, maintaining
// running left-side class masses, and evaluates a candidate boundary
// between each pair of consecutive non-empty bins — exactly the
// boundaries between consecutive distinct present values when bins are
// singletons. The reserved NaN bin sits past NumBins and is never added
// to the left side, so missing values always route right, matching
// inference (x < t is false for NaN).
//
//hddlint:noalloc
func (hg *histGrower) scanFeatureClass(f int, all nodeStats, parentMass float64, hist []float64) (histSplit, bool) {
	g := hg.g
	col := &hg.bm.Cols[f]
	base := f * hg.featStride
	var best histSplit
	ok := false
	var left nodeStats
	prev := -1
	for b := 0; b < col.NumBins; b++ {
		o := base + b*histSlots
		cnt := hist[o+4]
		if exactZero(cnt) {
			continue
		}
		if prev >= 0 && left.n >= g.p.MinBucket && all.n-left.n >= g.p.MinBucket {
			right := subtractStats(all, left, Classification)
			gainAbs := parentMass - left.impurityMass(Classification) - right.impurityMass(Classification)
			rel := gainAbs / g.rootTotal
			if rel > 1e-12 && (!ok || rel > best.gain) {
				ok = true
				best.feature = f
				best.threshold = col.EdgeBetween(prev, b)
				best.gain = rel
				best.cutBin = b
				best.leftN = left.n
			}
		}
		left.n += int(cnt)
		left.effGood += hist[o]
		left.effFailed += hist[o+1]
		left.rawFailed += hist[o+2]
		left.wRaw += hist[o+3]
		prev = b
	}
	return best, ok
}

// scanFeatureReg is scanFeatureClass for regression: running left-side
// {sumW, sumWY, sumWY2} instead of class masses.
//
//hddlint:noalloc
func (hg *histGrower) scanFeatureReg(f int, all nodeStats, parentMass float64, hist []float64) (histSplit, bool) {
	g := hg.g
	col := &hg.bm.Cols[f]
	base := f * hg.featStride
	var best histSplit
	ok := false
	var left nodeStats
	prev := -1
	for b := 0; b < col.NumBins; b++ {
		o := base + b*histSlots
		cnt := hist[o+4]
		if exactZero(cnt) {
			continue
		}
		if prev >= 0 && left.n >= g.p.MinBucket && all.n-left.n >= g.p.MinBucket {
			right := subtractStats(all, left, Regression)
			gainAbs := parentMass - left.impurityMass(Regression) - right.impurityMass(Regression)
			rel := gainAbs / g.rootTotal
			if rel > 1e-12 && (!ok || rel > best.gain) {
				ok = true
				best.feature = f
				best.threshold = col.EdgeBetween(prev, b)
				best.gain = rel
				best.cutBin = b
				best.leftN = left.n
			}
		}
		left.n += int(cnt)
		left.sumW += hist[o]
		left.sumWY += hist[o+1]
		left.sumWY2 += hist[o+2]
		left.wRaw += hist[o+3]
		prev = b
	}
	return best, ok
}

// partition routes the node's samples by bin code in one pass, preserving
// stored order so every descendant's accumulation folds samples in the
// same deterministic order. Finite codes below the cut bin go left;
// everything else — including the reserved NaN bin — goes right.
func (hg *histGrower) partition(idx []int32, best histSplit) (left, right []int32) {
	codes := hg.bm.Cols[best.feature].Codes
	left = make([]int32, 0, best.leftN)
	right = make([]int32, 0, len(idx)-best.leftN)
	cut := uint8(best.cutBin)
	for _, i := range idx {
		if codes[i] < cut {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return left, right
}
