package cart

import (
	"math"
	"testing"

	"hddcart/internal/dataset"
)

// tileFixture builds the binned fixture plus its tiled layout.
func tileFixture(t *testing.T, seed int64, n, nf, maxBins int) (*BinnedTree, *dataset.TiledMatrix, [][]uint8) {
	t.Helper()
	tree, bm, _, codes := binnedFixture(t, seed, n, nf, maxBins)
	bt, err := tree.Compile().CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dataset.TileCodes(codes, bm.NumFeatures)
	if err != nil {
		t.Fatal(err)
	}
	return bt, tm, codes
}

// TestPredictTiledRangeBitIdentical sweeps row ranges over every seam the
// tiled path has — sub-scalar chunks, tile-unaligned ends, ranges
// crossing tile boundaries, the full matrix — and requires bit-identity
// with the per-row walk.
func TestPredictTiledRangeBitIdentical(t *testing.T) {
	const tr = dataset.TileRows
	bt, tm, codes := tileFixture(t, 17, 3*tr+41, 6, 24)
	ranges := [][2]int{
		{0, 0}, {0, 1}, {5, 5 + minPartitionBatch - 2}, {0, minPartitionBatch},
		{0, tr}, {tr - 3, tr + 3}, {1, tr - 1}, {tr, 2 * tr},
		{tr + 7, 3*tr + 11}, {0, len(codes)}, {len(codes) - 5, len(codes)},
	}
	dst := make([]float64, len(codes))
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		bt.PredictTiledRange(tm, lo, hi, dst)
		for i := lo; i < hi; i++ {
			if want := bt.Predict(codes[i]); dst[i-lo] != want {
				t.Fatalf("range [%d,%d): row %d = %v, want %v", lo, hi, i, dst[i-lo], want)
			}
		}
		bt.ProbFailedTiledRange(tm, lo, hi, dst)
		for i := lo; i < hi; i++ {
			want := bt.ProbFailed(codes[i])
			if dst[i-lo] != want && !(math.IsNaN(dst[i-lo]) && math.IsNaN(want)) {
				t.Fatalf("range [%d,%d): prob row %d = %v, want %v", lo, hi, i, dst[i-lo], want)
			}
		}
	}
}

// TestPredictTiledRangeMissingCode routes the reserved missing code
// through the tiled kernels: rows carrying it must score exactly as they
// do through PredictBatch (missing descends right at every split).
func TestPredictTiledRangeMissingCode(t *testing.T) {
	tree, bm, _, codes := binnedFixture(t, 29, 1200, 5, 16)
	bt, err := tree.Compile().CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	probes := make([][]uint8, len(codes))
	for i := range codes {
		probes[i] = append([]uint8(nil), codes[i]...)
		probes[i][i%len(codes[i])] = bm.Cols[i%len(codes[i])].MissingCode()
	}
	tm, err := dataset.TileCodes(probes, bm.NumFeatures)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(probes))
	bt.PredictTiledRange(tm, 0, len(probes), dst)
	for i := range probes {
		if want := bt.Predict(probes[i]); dst[i] != want {
			t.Fatalf("row %d with missing code = %v, want %v", i, dst[i], want)
		}
	}
}

// TestPredictTiledRangeSingleLeaf covers the degenerate no-split tree.
func TestPredictTiledRangeSingleLeaf(t *testing.T) {
	ct := (&Tree{
		Root: &Node{Value: -1, PFailed: 0.9, N: 3, W: 3},
		Kind: Classification, NumFeatures: 2,
	}).Compile()
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}
	bm, err := dataset.BinMatrix([][]float64{{0, 1}, {2, 3}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := ct.CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dataset.NewTiledMatrix(600, 2)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 600)
	bt.PredictTiledRange(tm, 0, 600, dst)
	for i, v := range dst {
		if v != -1 {
			t.Fatalf("single-leaf tiled row %d = %v, want -1", i, v)
		}
	}
}

// TestAccumulateTiledRange checks ensemble accumulation in tree order per
// row against the scalar fold, across tile boundaries.
func TestAccumulateTiledRange(t *testing.T) {
	var trees []*BinnedTree
	var bm *dataset.BinnedMatrix
	var codes [][]uint8
	for i, seed := range []int64{5, 6, 7} {
		tree, m, _, c := binnedFixture(t, seed, 1500, 4, 16)
		if i == 0 {
			bm, codes = m, c
		}
		bt, err := tree.Compile().CompileBinned(bm)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, bt)
	}
	tm, err := dataset.TileCodes(codes, bm.NumFeatures)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, len(codes)}, {3, 700}, {250, 270}} {
		lo, hi := r[0], r[1]
		dst := make([]float64, hi-lo)
		AccumulateTiledRange(trees, tm, lo, hi, dst)
		for i := lo; i < hi; i++ {
			want := 0.0
			for _, bt := range trees {
				want += bt.Predict(codes[i])
			}
			if dst[i-lo] != want {
				t.Fatalf("range [%d,%d): row %d = %v, want %v", lo, hi, i, dst[i-lo], want)
			}
		}
	}
}

// TestTiledRangePanics pins the safety contract: out-of-bounds ranges
// and too-narrow matrices panic instead of reading wild memory.
func TestTiledRangePanics(t *testing.T) {
	bt, tm, codes := tileFixture(t, 3, 400, 5, 8)
	dst := make([]float64, len(codes))
	for _, r := range [][2]int{{-1, 10}, {5, 4}, {0, len(codes) + 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range [%d,%d) did not panic", r[0], r[1])
				}
			}()
			bt.PredictTiledRange(tm, r[0], r[1], dst)
		}()
	}
	narrow, err := dataset.NewTiledMatrix(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bt.needLen > 1 {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("narrow matrix did not panic")
				}
			}()
			bt.PredictTiledRange(narrow, 0, 100, dst)
		}()
	}
}

// TestTiledRangeNoAlloc proves the //hddlint:noalloc contract for the
// tiled kernels with caller-supplied buffers.
func TestTiledRangeNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool sheds items under the race detector")
	}
	bt, tm, codes := tileFixture(t, 9, 1100, 5, 32)
	trees := []*BinnedTree{bt, bt, bt}
	dst := make([]float64, len(codes))
	if allocs := testing.AllocsPerRun(20, func() {
		bt.PredictTiledRange(tm, 0, len(codes), dst)
	}); allocs != 0 {
		t.Fatalf("PredictTiledRange allocated %.0f times per run", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		bt.ProbFailedTiledRange(tm, 0, len(codes), dst)
	}); allocs != 0 {
		t.Fatalf("ProbFailedTiledRange allocated %.0f times per run", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		AccumulateTiledRange(trees, tm, 0, len(codes), dst)
	}); allocs != 0 {
		t.Fatalf("AccumulateTiledRange allocated %.0f times per run", allocs)
	}
}
