package cart

import (
	"errors"
	"fmt"
	"math"
	"unsafe"

	"hddcart/internal/dataset"
)

// BinnedTree is the binned-code inference form of a CompiledTree: every
// split threshold remapped onto a dataset.BinnedMatrix's uint8 code space
// (dataset.BinnedColumn.CutFor), so scoring runs entirely on quantized
// rows — one byte per feature instead of eight, byte compares in the
// partition kernels, and the reserved missing code routing right at every
// split exactly as NaN does on the float path.
//
// Equivalence contract: for any input whose finite values lie inside
// their bin's [Lower, Upper] value range ("binned data" — every row of
// the matrix the binning was built from qualifies), a BinnedTree with
// Exact set scores bit-identically to its source CompiledTree, verdicts
// and probabilities alike. Trees trained with Params.MaxBins on the same
// matrix score their whole training corpus bit-identically even when
// Exact is false: a threshold only straddles bins no corpus sample
// carries at that node, so the straddled comparison is never evaluated.
// The internal/equiv harness and FuzzBinnedInferenceEquivalence enforce
// both halves.
//
// BinnedTree is immutable after CompileBinned and safe for concurrent
// use.
type BinnedTree struct {
	// Kind records classification vs regression.
	Kind Kind
	// NumFeatures is the expected code-row length (the matrix width).
	NumFeatures int

	// Node arrays, laid out exactly as the source CompiledTree's (root at
	// 0, breadth-first sibling adjacency). Cut replaces Threshold: node i
	// routes a sample left when codes[Feature[i]] < Cut[i].
	Feature []int32
	Left    []int32
	Right   []int32
	Cut     []uint8
	Value   []float64
	PFailed []float64

	// Exact reports whether every split threshold cleanly separated the
	// matrix's bins (dataset.BinnedColumn.CutFor): when set, binned
	// scores match the float path on all bin-representative inputs, not
	// just the training corpus.
	Exact bool

	// nodes is the packed hot-path mirror: one 12-byte record per node.
	// Leaves carry feature −1; internal nodes rely on the sibling
	// adjacency (right child = left+1) the source layout guarantees.
	nodes []binnedNode
	// needLen is 1 + the largest feature index any split reads.
	needLen int
}

// binnedNode is one node of the binned hot traversal path: the step is
// i = left + (0 if codes[feature] < cut else 1), and feature < 0 marks a
// leaf.
type binnedNode struct {
	left    int32
	feature int32
	cut     uint8
}

// CompileBinned remaps the tree's split thresholds onto bm's code space.
// The tree must have the sealed breadth-first layout Compile produces
// (Validate re-seals hand-assembled trees that conform) and must not
// split on features beyond bm's width. Thresholds that fall strictly
// inside a bin's value range cannot be represented by any cut; they
// compile to the conservative "first bin not entirely below the
// threshold routes right" rule and clear Exact.
func (c *CompiledTree) CompileBinned(bm *dataset.BinnedMatrix) (*BinnedTree, error) {
	if bm == nil {
		return nil, errors.New("cart: CompileBinned needs a binned matrix")
	}
	if c.nodes == nil {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("cart: CompileBinned: %w", err)
		}
		if c.nodes == nil {
			return nil, errors.New("cart: CompileBinned requires the sealed breadth-first layout Compile produces")
		}
	}
	if c.needLen > bm.NumFeatures {
		return nil, fmt.Errorf("cart: tree reads feature %d but matrix has %d columns",
			c.needLen-1, bm.NumFeatures)
	}
	n := len(c.Feature)
	bt := &BinnedTree{
		Kind:        c.Kind,
		NumFeatures: bm.NumFeatures,
		Feature:     c.Feature,
		Left:        c.Left,
		Right:       c.Right,
		Cut:         make([]uint8, n),
		Value:       c.Value,
		PFailed:     c.PFailed,
		Exact:       true,
		nodes:       make([]binnedNode, n),
		needLen:     c.needLen,
	}
	for i := 0; i < n; i++ {
		if c.Feature[i] < 0 {
			bt.nodes[i] = binnedNode{feature: -1}
			continue
		}
		t := c.Threshold[i]
		var cut uint8
		if math.IsNaN(t) {
			// x < NaN is false for every value, so the float node routes
			// everything right; cut 0 reproduces that (no code is < 0).
			cut = 0
		} else {
			var exact bool
			cut, exact = bm.Cols[c.Feature[i]].CutFor(t)
			if !exact {
				bt.Exact = false
			}
		}
		bt.Cut[i] = cut
		bt.nodes[i] = binnedNode{left: c.Left[i], feature: c.Feature[i], cut: cut}
	}
	return bt, nil
}

// NumNodes returns the node count.
func (bt *BinnedTree) NumNodes() int { return len(bt.Feature) }

// leaf returns the index of the leaf the code row falls into.
//
//hddlint:binned
func (bt *BinnedTree) leaf(codes []uint8) int {
	nodes := bt.nodes
	i := 0
	for {
		nd := &nodes[i]
		f := nd.feature
		if f < 0 {
			return i
		}
		// Mirrors the float tree's x[f] < threshold branch in code space:
		// the reserved missing code is ≥ every cut, so it descends right
		// exactly as NaN does there.
		if codes[f] < nd.cut {
			i = int(nd.left)
		} else {
			i = int(nd.left) + 1
		}
	}
}

// Predict returns the tree's output for one quantized row.
func (bt *BinnedTree) Predict(codes []uint8) float64 {
	return bt.Value[bt.leaf(codes)]
}

// PredictFailed reports whether the tree labels the row failed.
func (bt *BinnedTree) PredictFailed(codes []uint8) bool { return bt.Predict(codes) < 0 }

// ProbFailed returns the weighted failed-class probability of the row's
// leaf (classification trees; regression trees return NaN, as the float
// paths do).
func (bt *BinnedTree) ProbFailed(codes []uint8) float64 {
	if bt.Kind != Classification {
		return math.NaN()
	}
	return bt.PFailed[bt.leaf(codes)]
}

// scoreBatch fills dst[i] with payload[leaf(xs[i])] (or accumulates it,
// when add is set), bit-identical to a per-row walk — the binned
// analogue of CompiledTree.scoreBatch, sharing its pooled scratch and
// block structure.
//
//hddlint:noalloc
//hddlint:binned
func (bt *BinnedTree) scoreBatch(xs [][]uint8, dst, payload []float64, add bool) {
	if len(xs) < minPartitionBatch {
		if add {
			for i, codes := range xs {
				dst[i] += payload[bt.leaf(codes)]
			}
		} else {
			for i, codes := range xs {
				dst[i] = payload[bt.leaf(codes)]
			}
		}
		return
	}
	for lo := 0; lo < len(xs); lo += partitionBlock {
		hi := min(lo+partitionBlock, len(xs))
		if !bt.scorePartitioned(xs[lo:hi], dst[lo:hi], payload, add) {
			if add {
				for i, codes := range xs[lo:hi] {
					dst[lo+i] += payload[bt.leaf(codes)]
				}
			} else {
				for i, codes := range xs[lo:hi] {
					dst[lo+i] = payload[bt.leaf(codes)]
				}
			}
		}
	}
}

// scorePartitioned is the binned batch engine: the tree-major partitioned
// traversal of CompiledTree.scorePartitioned with the float compares
// replaced by byte compares against the node's cut code. A block's
// working set is NumFeatures bytes per row instead of 8·NumFeatures, so
// far more rows stay cache-resident across tree levels.
//
//hddlint:noalloc
//hddlint:binned
func (bt *BinnedTree) scorePartitioned(xs [][]uint8, dst, payload []float64, add bool) bool {
	n := len(xs)
	if bt.Feature[0] < 0 { // single-leaf tree
		p := payload[0]
		if add {
			for i := range dst {
				dst[i] += p
			}
		} else {
			for i := range dst {
				dst[i] = p
			}
		}
		return true
	}

	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.cur) < n {
		//hddlint:ignore hotalloc cold path: pooled scratch grows to the high-water batch size once, then every Get reuses it
		sc.cur = make([]int32, n)
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.next = make([]int32, n)
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.rows = make([]unsafe.Pointer, n)
	}
	if base, stride, ok := flatRows(xs, bt.needLen); ok {
		l := partitionRootBinnedFlat(base, stride, n, unsafe.Pointer(&sc.cur[0]),
			uintptr(bt.Feature[0]), bt.Cut[0])
		bt.runSegmentsFlat(sc, base, stride, dst, payload, l, n, add)
		batchScratchPool.Put(sc)
		return true
	}
	rows := sc.rows[:n]
	rp := unsafe.Pointer(&rows[0])

	l, ok := partitionRootBinned(xs, rows, unsafe.Pointer(&sc.cur[0]), bt.needLen,
		uintptr(bt.Feature[0]), bt.Cut[0])
	if !ok {
		batchScratchPool.Put(sc)
		return false
	}
	bt.runSegments(sc, rp, dst, payload, l, n, add)
	batchScratchPool.Put(sc)
	return true
}

// runSegments drains the partitioned traversal below an already-split
// root, exactly as CompiledTree.runSegments does on float rows.
//
//hddlint:noalloc
//hddlint:binned
func (bt *BinnedTree) runSegments(sc *batchScratch, rp unsafe.Pointer,
	dst, payload []float64, rootLeft, n int, add bool) {
	feat := bt.Feature
	cut := bt.Cut
	left, right := bt.Left, bt.Right
	cur, next := sc.cur[:n], sc.next[:n]
	stack := sc.stack[:0]
	//hddlint:ignore hotalloc append targets pooled scratch that grows to the tree depth once, then stays within capacity
	stack = append(stack,
		segment{node: right[0], lo: int32(rootLeft), hi: int32(n)},
		segment{node: left[0], lo: 0, hi: int32(rootLeft)})
	for len(stack) > 0 {
		sg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if sg.lo == sg.hi {
			continue
		}
		src, out := cur, next
		if sg.flipped {
			src, out = next, cur
		}
		node := sg.node
		seg := src[sg.lo:sg.hi]
		if feat[node] < 0 { // leaf: deliver the payload to every sample here
			p := payload[node]
			if add {
				for _, idx := range seg {
					dst[idx] += p
				}
			} else {
				for _, idx := range seg {
					dst[idx] = p
				}
			}
			continue
		}
		if ln := left[node]; feat[ln] < 0 && feat[ln+1] < 0 {
			leafPairSegBinned(unsafe.Pointer(&src[sg.lo]), len(seg), rp,
				uintptr(feat[node]), cut[node],
				unsafe.Pointer(&dst[0]), unsafe.Pointer(&payload[ln]), add)
			continue
		}
		if len(seg) < minSegPartition {
			walkSegBinned(bt.nodes, seg, rp, dst, payload, node, add)
			continue
		}
		nl := partitionSegBinned(unsafe.Pointer(&src[sg.lo]), unsafe.Pointer(&out[sg.lo]),
			len(seg), rp, uintptr(feat[node]), cut[node])
		mid := sg.lo + int32(nl)
		//hddlint:ignore hotalloc append targets pooled scratch that grows to the tree depth once, then stays within capacity
		stack = append(stack,
			segment{node: right[node], lo: mid, hi: sg.hi, flipped: !sg.flipped},
			segment{node: left[node], lo: sg.lo, hi: mid, flipped: !sg.flipped})
	}
	sc.stack = stack[:0]
}

// partitionRootBinned splits the implicit sample order 0..n-1 on
// codes[f] < cut, gathering and validating the row pointers in the same
// fused pass — CompiledTree's partitionRoot with a one-byte feature load.
// foff is the byte offset of the split feature within a code row.
//
//go:noinline
//hddlint:noalloc
//hddlint:binned
func partitionRootBinned(xs [][]uint8, rows []unsafe.Pointer, outp unsafe.Pointer,
	need int, foff uintptr, cut uint8) (int, bool) {
	l, m := 0, len(xs)-1
	for k, row := range xs {
		if len(row) < need {
			return 0, false
		}
		p := unsafe.Pointer(&row[0])
		rows[k] = p
		cv := *(*uint8)(unsafe.Add(p, foff))
		off, w := m, 0
		if cv < cut {
			off, w = 0, 1
		}
		*(*int32)(unsafe.Add(outp, uintptr(l+off)*4)) = int32(k)
		l += w
		m--
	}
	return l, true
}

// partitionSegBinned is partitionRootBinned for an interior node: sample
// indices come from srcp and the rows were gathered at the root.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionSegBinned(srcp, outp unsafe.Pointer, n int, rp unsafe.Pointer, foff uintptr, cut uint8) int {
	l, m := 0, n-1
	for k := 0; k < n; k++ {
		idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
		cv := *(*uint8)(unsafe.Add(*(*unsafe.Pointer)(unsafe.Add(rp, uintptr(uint32(idx))*8)), foff))
		off, w := m, 0
		if cv < cut {
			off, w = 0, 1
		}
		*(*int32)(unsafe.Add(outp, uintptr(l+off)*4)) = idx
		l += w
		m--
	}
	return l
}

// leafPairSegBinned finishes a segment whose node has two leaf children
// in one compare-and-deliver pass, as leafPairSeg does on float rows.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func leafPairSegBinned(srcp unsafe.Pointer, n int, rp unsafe.Pointer, foff uintptr, cut uint8,
	dstp, payp unsafe.Pointer, add bool) {
	if add {
		for k := 0; k < n; k++ {
			idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
			cv := *(*uint8)(unsafe.Add(*(*unsafe.Pointer)(unsafe.Add(rp, uintptr(uint32(idx))*8)), foff))
			off := uintptr(8)
			if cv < cut {
				off = 0
			}
			*(*float64)(unsafe.Add(dstp, uintptr(uint32(idx))*8)) += *(*float64)(unsafe.Add(payp, off))
		}
		return
	}
	for k := 0; k < n; k++ {
		idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
		cv := *(*uint8)(unsafe.Add(*(*unsafe.Pointer)(unsafe.Add(rp, uintptr(uint32(idx))*8)), foff))
		off := uintptr(8)
		if cv < cut {
			off = 0
		}
		*(*float64)(unsafe.Add(dstp, uintptr(uint32(idx))*8)) = *(*float64)(unsafe.Add(payp, off))
	}
}

// walkSegBinned finishes a small segment sample-major down the packed
// subtree, as walkSeg does on float rows. The unchecked byte loads are
// safe because every row was validated against needLen at the root.
//
//hddlint:noalloc
//hddlint:binned
func walkSegBinned(nodes []binnedNode, seg []int32, rp unsafe.Pointer,
	dst, payload []float64, node int32, add bool) {
	for _, idx := range seg {
		row := *(*unsafe.Pointer)(unsafe.Add(rp, uintptr(uint32(idx))*8))
		i := node
		for {
			nd := &nodes[i]
			f := nd.feature
			if f < 0 {
				break
			}
			if *(*uint8)(unsafe.Add(row, uintptr(f))) < nd.cut {
				i = nd.left
			} else {
				i = nd.left + 1
			}
		}
		if add {
			dst[idx] += payload[i]
		} else {
			dst[idx] = payload[i]
		}
	}
}

// PredictBatch scores a block of quantized rows into dst and returns it.
// A nil or short dst is replaced by a fresh slice; passing a len(xs)
// buffer makes the steady-state path allocation-free. dst[i] equals
// Predict(xs[i]) exactly.
//
//hddlint:noalloc
func (bt *BinnedTree) PredictBatch(xs [][]uint8, dst []float64) []float64 {
	//hddlint:ignore hotalloc nil/short-dst convenience path allocates by contract; a len(xs) dst is allocation-free
	dst = sizeBuf(dst, len(xs))
	bt.scoreBatch(xs, dst, bt.Value, false)
	return dst
}

// PredictBatchAdd accumulates Predict(xs[i]) onto dst[i] for every row,
// as CompiledTree.PredictBatchAdd does for ensemble scorers.
//
//hddlint:noalloc
func (bt *BinnedTree) PredictBatchAdd(xs [][]uint8, dst []float64) {
	bt.scoreBatch(xs, dst[:len(xs)], bt.Value, true)
}

// ProbFailedBatch fills dst with per-row failed probabilities (NaN for
// regression trees), matching ProbFailed exactly.
//
//hddlint:noalloc
func (bt *BinnedTree) ProbFailedBatch(xs [][]uint8, dst []float64) []float64 {
	//hddlint:ignore hotalloc nil/short-dst convenience path allocates by contract; a len(xs) dst is allocation-free
	dst = sizeBuf(dst, len(xs))
	if bt.Kind != Classification {
		for i := range dst {
			dst[i] = math.NaN()
		}
		return dst
	}
	bt.scoreBatch(xs, dst, bt.PFailed, false)
	return dst
}

// AccumulateBatchBinned accumulates every tree's Predict(xs[i]) onto
// dst[i], in tree order per row — the binned analogue of
// AccumulateBatch: each block's row pointers are validated and gathered
// once for the whole ensemble, then every tree root-partitions the
// shared identity order.
//
//hddlint:noalloc
func AccumulateBatchBinned(trees []*BinnedTree, xs [][]uint8, dst []float64) {
	if len(trees) == 0 || len(xs) == 0 {
		return
	}
	dst = dst[:len(xs)]
	need := 0
	for _, t := range trees {
		need = max(need, t.needLen)
	}
	if len(xs) < minPartitionBatch {
		for _, t := range trees {
			t.scoreBatch(xs, dst, t.Value, true)
		}
		return
	}
	for lo := 0; lo < len(xs); lo += partitionBlock {
		hi := min(lo+partitionBlock, len(xs))
		if !accumulatePartitionedBinned(trees, xs[lo:hi], dst[lo:hi], need) {
			for _, t := range trees {
				t.scoreBatch(xs[lo:hi], dst[lo:hi], t.Value, true)
			}
		}
	}
}

// accumulatePartitionedBinned runs one cache-resident block of quantized
// rows through every tree, as accumulatePartitioned does on float rows.
//
//hddlint:noalloc
//hddlint:binned
func accumulatePartitionedBinned(trees []*BinnedTree, xs [][]uint8, dst []float64, need int) bool {
	n := len(xs)
	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.cur) < n {
		//hddlint:ignore hotalloc cold path: pooled scratch grows to the high-water batch size once, then every Get reuses it
		sc.cur = make([]int32, n)
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.next = make([]int32, n)
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.rows = make([]unsafe.Pointer, n)
	}
	if cap(sc.order) < n {
		//hddlint:ignore hotalloc cold path: pooled scratch grows once
		sc.order = make([]int32, n)
		for i := range sc.order {
			sc.order[i] = int32(i)
		}
	}
	op := unsafe.Pointer(&sc.order[0])
	if base, stride, ok := flatRows(xs, need); ok {
		for _, t := range trees {
			if t.Feature[0] < 0 { // single-leaf tree
				p := t.Value[0]
				for i := range dst {
					dst[i] += p
				}
				continue
			}
			l := partitionSegBinnedFlat(op, unsafe.Pointer(&sc.cur[0]), n, base, stride,
				uintptr(t.Feature[0]), t.Cut[0])
			t.runSegmentsFlat(sc, base, stride, dst, t.Value, l, n, true)
		}
		batchScratchPool.Put(sc)
		return true
	}
	rows := sc.rows[:n]
	if !gatherRowsBinned(xs, rows, need) {
		batchScratchPool.Put(sc)
		return false
	}
	rp := unsafe.Pointer(&rows[0])
	for _, t := range trees {
		if t.Feature[0] < 0 { // single-leaf tree
			p := t.Value[0]
			for i := range dst {
				dst[i] += p
			}
			continue
		}
		l := partitionSegBinned(op, unsafe.Pointer(&sc.cur[0]), n, rp,
			uintptr(t.Feature[0]), t.Cut[0])
		t.runSegments(sc, rp, dst, t.Value, l, n, true)
	}
	batchScratchPool.Put(sc)
	return true
}

// gatherRowsBinned validates every code row of a block against the
// ensemble-wide need and records the row data pointers.
//
//go:noinline
//hddlint:noalloc
func gatherRowsBinned(xs [][]uint8, rows []unsafe.Pointer, need int) bool {
	for k, row := range xs {
		if len(row) < need {
			return false
		}
		rows[k] = unsafe.Pointer(&row[0])
	}
	return true
}
