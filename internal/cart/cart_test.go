package cart

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// sepData builds a perfectly separable one-feature dataset: x < 0 failed,
// x ≥ 0 good.
func sepData(n int) (x [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		v := float64(i) - float64(n)/2
		if v >= 0 {
			v++ // leave a gap around 0
		}
		x = append(x, []float64{v})
		if v < 0 {
			y = append(y, -1)
		} else {
			y = append(y, 1)
		}
	}
	return x, y
}

func TestEntropy(t *testing.T) {
	if got := entropy(1, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("entropy(1,1) = %v, want 1", got)
	}
	if got := entropy(1, 0); got != 0 {
		t.Errorf("entropy(1,0) = %v, want 0", got)
	}
	if got := entropy(0, 0); got != 0 {
		t.Errorf("entropy(0,0) = %v, want 0", got)
	}
	// entropy(3,1): -(0.75·log2(0.75) + 0.25·log2(0.25)) ≈ 0.8113
	if got := entropy(3, 1); math.Abs(got-0.811278) > 1e-5 {
		t.Errorf("entropy(3,1) = %v, want ≈ 0.8113", got)
	}
}

func TestClassifierSeparable(t *testing.T) {
	x, y := sepData(100)
	tree, err := TrainClassifier(x, y, nil, Params{MinSplit: 2, MinBucket: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got := tree.Predict(x[i]); got != y[i] {
			t.Fatalf("Predict(%v) = %v, want %v", x[i], got, y[i])
		}
	}
	// One split suffices.
	if n := tree.NumNodes(); n != 3 {
		t.Errorf("separable tree has %d nodes, want 3\n%s", n, tree)
	}
	if tree.Root.Feature != 0 {
		t.Errorf("split feature = %d", tree.Root.Feature)
	}
	if tree.Root.Threshold < -1 || tree.Root.Threshold > 1 {
		t.Errorf("threshold = %v, want near 0", tree.Root.Threshold)
	}
}

func TestClassifierXOR(t *testing.T) {
	// Two-feature XOR: needs depth ≥ 3 (two levels of splits).
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x = append(x, []float64{a, b})
		if (a < 0) != (b < 0) {
			y = append(y, -1)
		} else {
			y = append(y, 1)
		}
	}
	tree, err := TrainClassifier(x, y, nil, Params{MinSplit: 4, MinBucket: 2, CP: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range x {
		if tree.Predict(x[i]) != y[i] {
			errs++
		}
	}
	if errs > 8 { // 2%
		t.Errorf("XOR training errors = %d/400", errs)
	}
	if tree.Depth() < 3 {
		t.Errorf("XOR tree depth = %d, want ≥ 3", tree.Depth())
	}
}

func TestMinBucketRespected(t *testing.T) {
	x, y := sepData(100)
	tree, err := TrainClassifier(x, y, nil, Params{MinSplit: 10, MinBucket: 8})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() && n.N < 8 {
			t.Errorf("leaf with %d < MinBucket samples", n.N)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tree.Root)
}

func TestMinSplitStopsGrowth(t *testing.T) {
	x, y := sepData(10)
	tree, err := TrainClassifier(x, y, nil, Params{MinSplit: 50, MinBucket: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Error("node below MinSplit must not be split")
	}
}

func TestMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x = append(x, []float64{rng.Float64()})
		y = append(y, float64(1-2*(rng.Intn(2)))) // random labels: deep tree without limit
	}
	tree, err := TrainClassifier(x, y, nil, Params{MinSplit: 2, MinBucket: 1, MaxDepth: 4, CP: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 4 {
		t.Errorf("depth = %d, want ≤ 4", d)
	}
}

func TestLossWeightSuppressesFalseAlarms(t *testing.T) {
	// A mixed region with 60% failed / 40% good: symmetric loss labels
	// it failed; a 10× false-alarm loss labels it good.
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		x = append(x, []float64{0})
		y = append(y, -1)
	}
	for i := 0; i < 40; i++ {
		x = append(x, []float64{0})
		y = append(y, 1)
	}
	sym, err := TrainClassifier(x, y, nil, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Predict([]float64{0}) != -1 {
		t.Error("symmetric loss should label majority-failed region failed")
	}
	asym, err := TrainClassifier(x, y, nil, Params{LossFA: 10})
	if err != nil {
		t.Fatal(err)
	}
	if asym.Predict([]float64{0}) != 1 {
		t.Error("10× false-alarm loss should label the region good")
	}
}

func TestSampleWeightsShiftLabel(t *testing.T) {
	// 10 failed vs 90 good at the same point: boosting failed weights to
	// parity should not flip the label; boosting beyond should.
	var x [][]float64
	var y []float64
	var w []float64
	for i := 0; i < 10; i++ {
		x, y, w = append(x, []float64{0}), append(y, -1.0), append(w, 20)
	}
	for i := 0; i < 90; i++ {
		x, y, w = append(x, []float64{0}), append(y, 1.0), append(w, 1)
	}
	tree, err := TrainClassifier(x, y, w, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Predict([]float64{0}) != -1 {
		t.Error("weighted failed mass 200 vs 90 should label failed")
	}
}

func TestWeightedSplitChoice(t *testing.T) {
	// Feature 0 separates the heavily weighted samples; feature 1
	// separates the lightly weighted ones. The split must use feature 0.
	x := [][]float64{
		{0, 0}, {0, 1}, {1, 0}, {1, 1},
		{0, 0}, {0, 1}, {1, 0}, {1, 1},
	}
	y := []float64{-1, -1, 1, 1, -1, -1, 1, 1}
	w := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	tree, err := TrainClassifier(x, y, w, Params{MinSplit: 2, MinBucket: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() || tree.Root.Feature != 0 {
		t.Errorf("split should use feature 0:\n%s", tree)
	}
}

func TestPruneCollapsesWeakSplits(t *testing.T) {
	// Nearly pure data with a few noisy labels: with CP=0 the tree
	// overfits; raising CP shrinks it.
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 1000; i++ {
		v := rng.Float64()
		x = append(x, []float64{v})
		label := 1.0
		if v < 0.3 {
			label = -1
		}
		if rng.Float64() < 0.05 {
			label = -label
		}
		y = append(y, label)
	}
	full, err := TrainClassifier(x, y, nil, Params{MinSplit: 4, MinBucket: 2, CP: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := TrainClassifier(x, y, nil, Params{MinSplit: 4, MinBucket: 2, CP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumNodes() >= full.NumNodes() {
		t.Errorf("pruned %d nodes, full %d", pruned.NumNodes(), full.NumNodes())
	}
	// The main split must survive.
	if pruned.Root.IsLeaf() {
		t.Error("CP=0.01 should keep the dominant split")
	}
	if th := pruned.Root.Threshold; th < 0.25 || th > 0.35 {
		t.Errorf("dominant threshold = %v, want ≈ 0.3", th)
	}
}

func TestPruneEverything(t *testing.T) {
	x, y := sepData(100)
	tree, err := TrainClassifier(x, y, nil, Params{MinSplit: 2, MinBucket: 1})
	if err != nil {
		t.Fatal(err)
	}
	Prune(tree, math.Inf(1))
	if !tree.Root.IsLeaf() {
		t.Error("pruning with cp=∞ should leave a lone root")
	}
}

func TestTrainValidation(t *testing.T) {
	ok := [][]float64{{1}, {2}}
	cases := []struct {
		name string
		x    [][]float64
		y, w []float64
	}{
		{"empty", nil, nil, nil},
		{"len mismatch", ok, []float64{1}, nil},
		{"weight mismatch", ok, []float64{1, -1}, []float64{1}},
		{"ragged", [][]float64{{1}, {2, 3}}, []float64{1, -1}, nil},
		{"bad target", ok, []float64{1, 0.5}, nil},
		{"negative weight", ok, []float64{1, -1}, []float64{1, -1}},
		{"zero features", [][]float64{{}, {}}, []float64{1, -1}, nil},
	}
	for _, tc := range cases {
		if _, err := TrainClassifier(tc.x, tc.y, tc.w, Params{}); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Regression accepts non-±1 targets.
	if _, err := TrainRegressor(ok, []float64{0.5, 0.7}, nil, Params{MinSplit: 2, MinBucket: 1}); err != nil {
		t.Errorf("regressor rejected valid targets: %v", err)
	}
}

func TestRegressorPiecewiseConstant(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x = append(x, []float64{float64(i)})
		if i < 25 {
			y = append(y, 2)
		} else {
			y = append(y, 8)
		}
	}
	tree, err := TrainRegressor(x, y, nil, Params{MinSplit: 4, MinBucket: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{3}); got != 2 {
		t.Errorf("Predict(3) = %v, want 2", got)
	}
	if got := tree.Predict([]float64{40}); got != 8 {
		t.Errorf("Predict(40) = %v, want 8", got)
	}
	if n := tree.NumNodes(); n != 3 {
		t.Errorf("piecewise tree has %d nodes, want 3", n)
	}
}

func TestRegressorApproximatesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []float64
	for i := 0; i < 2000; i++ {
		v := rng.Float64()
		x = append(x, []float64{v})
		y = append(y, 3*v+rng.NormFloat64()*0.05)
	}
	tree, err := TrainRegressor(x, y, nil, Params{MinSplit: 20, MinBucket: 7, CP: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	// RMSE of the fit should be well under the signal range.
	var se float64
	for i := range x {
		d := tree.Predict(x[i]) - 3*x[i][0]
		se += d * d
	}
	rmse := math.Sqrt(se / float64(len(x)))
	if rmse > 0.3 {
		t.Errorf("RMSE = %v, want < 0.3", rmse)
	}
}

func TestRegressorLeafIsWeightedMean(t *testing.T) {
	x := [][]float64{{0}, {0}, {0}}
	y := []float64{1, 2, 9}
	w := []float64{1, 1, 2}
	tree, err := TrainRegressor(x, y, w, Params{MinSplit: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + 2 + 18) / 4.0
	if got := tree.Predict([]float64{0}); math.Abs(got-want) > 1e-12 {
		t.Errorf("leaf value = %v, want %v", got, want)
	}
}

func TestPredictFailedAndProb(t *testing.T) {
	x, y := sepData(100)
	tree, _ := TrainClassifier(x, y, nil, Params{MinSplit: 2, MinBucket: 1})
	if !tree.PredictFailed([]float64{-5}) {
		t.Error("PredictFailed(-5) = false")
	}
	if tree.PredictFailed([]float64{5}) {
		t.Error("PredictFailed(5) = true")
	}
	if p := tree.ProbFailed([]float64{-5}); p != 1 {
		t.Errorf("ProbFailed(-5) = %v, want 1", p)
	}
	if p := tree.ProbFailed([]float64{5}); p != 0 {
		t.Errorf("ProbFailed(5) = %v, want 0", p)
	}
	reg, _ := TrainRegressor(x, y, nil, Params{MinSplit: 2, MinBucket: 1})
	if !math.IsNaN(reg.ProbFailed([]float64{0})) {
		t.Error("regression ProbFailed should be NaN")
	}
	if !reg.PredictFailed([]float64{-5}) {
		t.Error("regression PredictFailed should report negative predictions")
	}
}

func TestVariableImportance(t *testing.T) {
	// Feature 1 is informative, features 0 and 2 are noise.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		f1 := rng.Float64()
		x = append(x, []float64{rng.Float64(), f1, rng.Float64()})
		if f1 < 0.5 {
			y = append(y, -1)
		} else {
			y = append(y, 1)
		}
	}
	tree, err := TrainClassifier(x, y, nil, Params{})
	if err != nil {
		t.Fatal(err)
	}
	imp := tree.VariableImportance()
	if len(imp) != 3 {
		t.Fatalf("importance length = %d", len(imp))
	}
	if imp[1] <= imp[0] || imp[1] <= imp[2] {
		t.Errorf("importance = %v, want feature 1 dominant", imp)
	}
}

func TestRules(t *testing.T) {
	x, y := sepData(100)
	tree, _ := TrainClassifier(x, y, nil, Params{MinSplit: 2, MinBucket: 1})
	tree.FeatureNames = []string{"Power On Hours"}
	all := tree.Rules(false)
	failed := tree.Rules(true)
	if len(all) != 2 || len(failed) != 1 {
		t.Fatalf("rules: all=%d failed=%d", len(all), len(failed))
	}
	s := failed[0].String(tree.FeatureNames)
	if !strings.Contains(s, "Power On Hours <") {
		t.Errorf("rule text = %q", s)
	}
	if failed[0].Value != -1 {
		t.Errorf("failed rule value = %v", failed[0].Value)
	}
}

func TestStringRendering(t *testing.T) {
	x, y := sepData(40)
	tree, _ := TrainClassifier(x, y, nil, Params{MinSplit: 2, MinBucket: 1})
	tree.FeatureNames = []string{"POH"}
	s := tree.String()
	for _, want := range []string{"POH <", "FAILED", "good"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	reg, _ := TrainRegressor(x, y, nil, Params{MinSplit: 2, MinBucket: 1})
	if !strings.Contains(reg.String(), "value=") {
		t.Error("regression String() missing value=")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64()})
		if x[i][0]+x[i][1] < 1 {
			y = append(y, -1)
		} else {
			y = append(y, 1)
		}
	}
	tree, err := TrainClassifier(x, y, nil, Params{CP: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	tree.FeatureNames = []string{"a", "b"}
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != tree.Kind || back.NumFeatures != tree.NumFeatures {
		t.Error("metadata lost in round trip")
	}
	if back.NumNodes() != tree.NumNodes() {
		t.Errorf("node count %d vs %d", back.NumNodes(), tree.NumNodes())
	}
	// Property: identical predictions everywhere.
	err = quick.Check(func(a, b float64) bool {
		p := []float64{math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)}
		return tree.Predict(p) == back.Predict(p)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsBadTrees(t *testing.T) {
	cases := []string{
		`{"kind":9,"numFeatures":1,"nodes":[{"left":-1,"right":-1}]}`,
		`{"kind":1,"numFeatures":1,"nodes":[]}`,
		`{"kind":1,"numFeatures":1,"nodes":[{"left":0,"right":-1}]}`,                                                          // self/one-child
		`{"kind":1,"numFeatures":1,"nodes":[{"left":5,"right":6}]}`,                                                           // out of range
		`{"kind":1,"numFeatures":1,"nodes":[{"feature":3,"left":1,"right":2},{"left":-1,"right":-1},{"left":-1,"right":-1}]}`, // bad feature
		`not json`,
	}
	for i, raw := range cases {
		var tr Tree
		if err := json.Unmarshal([]byte(raw), &tr); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTrainingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		if x[i][0] < 0.4 {
			y = append(y, -1)
		} else {
			y = append(y, 1)
		}
	}
	t1, _ := TrainClassifier(x, y, nil, Params{})
	t2, _ := TrainClassifier(x, y, nil, Params{})
	d1, _ := json.Marshal(t1)
	d2, _ := json.Marshal(t2)
	if string(d1) != string(d2) {
		t.Error("training is not deterministic")
	}
}

func TestKindString(t *testing.T) {
	if Classification.String() != "classification" || Regression.String() != "regression" {
		t.Error("Kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown Kind should format numerically")
	}
}

func TestPredictionsPartitionSpace(t *testing.T) {
	// Property: every point lands in exactly one leaf and prediction is
	// one of the leaf values.
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64()})
		if x[i][0]*x[i][1] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	tree, err := TrainClassifier(x, y, nil, Params{CP: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		p := tree.Predict([]float64{a, b})
		return p == 1 || p == -1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMTryValidation(t *testing.T) {
	x, y := sepData(50)
	if _, err := TrainClassifier(x, y, nil, Params{MTry: -1}); err == nil {
		t.Error("negative MTry accepted")
	}
	if _, err := TrainClassifier(x, y, nil, Params{MTry: 5}); err == nil {
		t.Error("MTry larger than feature count accepted")
	}
	// MTry equal to the feature count degenerates to the full search.
	full, err := TrainClassifier(x, y, nil, Params{MinSplit: 2, MinBucket: 1, MTry: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if full.Predict(x[i]) != y[i] {
			t.Fatal("MTry = numFeatures changed the (single-feature) result")
		}
	}
}
