package cart

import (
	"encoding/json"
	"errors"
	"fmt"
)

// jsonTree is the wire form of a Tree. Nodes are flattened pre-order into
// an array with child indices, which keeps decoding non-recursive and
// rejects cycles by construction.
type jsonTree struct {
	Kind         Kind       `json:"kind"`
	NumFeatures  int        `json:"numFeatures"`
	FeatureNames []string   `json:"featureNames,omitempty"`
	Nodes        []jsonNode `json:"nodes"`
}

type jsonNode struct {
	Feature   int     `json:"feature"`
	Threshold float64 `json:"threshold"`
	// Left/Right are node-array indices; -1 marks a leaf.
	Left    int     `json:"left"`
	Right   int     `json:"right"`
	Value   float64 `json:"value"`
	PFailed float64 `json:"pFailed"`
	N       int     `json:"n"`
	W       float64 `json:"w"`
	Gain    float64 `json:"gain"`
}

// MarshalJSON implements json.Marshaler.
func (t *Tree) MarshalJSON() ([]byte, error) {
	jt := jsonTree{Kind: t.Kind, NumFeatures: t.NumFeatures, FeatureNames: t.FeatureNames}
	var flatten func(n *Node) int
	flatten = func(n *Node) int {
		if n == nil {
			return -1
		}
		at := len(jt.Nodes)
		jt.Nodes = append(jt.Nodes, jsonNode{
			Feature: n.Feature, Threshold: n.Threshold,
			Left: -1, Right: -1,
			Value: n.Value, PFailed: n.PFailed, N: n.N, W: n.W, Gain: n.Gain,
		})
		jt.Nodes[at].Left = flatten(n.Left)
		jt.Nodes[at].Right = flatten(n.Right)
		return at
	}
	flatten(t.Root)
	return json.Marshal(jt)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var jt jsonTree
	if err := json.Unmarshal(data, &jt); err != nil {
		return fmt.Errorf("cart: decode tree: %w", err)
	}
	if jt.Kind != Classification && jt.Kind != Regression {
		return fmt.Errorf("cart: bad tree kind %d", jt.Kind)
	}
	if len(jt.Nodes) == 0 {
		return errors.New("cart: tree has no nodes")
	}
	nodes := make([]Node, len(jt.Nodes))
	for i, jn := range jt.Nodes {
		nodes[i] = Node{
			Feature: jn.Feature, Threshold: jn.Threshold,
			Value: jn.Value, PFailed: jn.PFailed, N: jn.N, W: jn.W, Gain: jn.Gain,
		}
		for _, child := range []int{jn.Left, jn.Right} {
			// Pre-order flattening guarantees children come after
			// their parent; enforcing that rejects cycles.
			if child != -1 && (child <= i || child >= len(jt.Nodes)) {
				return fmt.Errorf("cart: node %d has bad child index %d", i, child)
			}
		}
		if (jn.Left == -1) != (jn.Right == -1) {
			return fmt.Errorf("cart: node %d has exactly one child", i)
		}
	}
	for i, jn := range jt.Nodes {
		if jn.Left != -1 {
			nodes[i].Left = &nodes[jn.Left]
			nodes[i].Right = &nodes[jn.Right]
		}
		if jn.Feature < 0 || (jn.Left != -1 && jn.Feature >= jt.NumFeatures) {
			return fmt.Errorf("cart: node %d splits on feature %d of %d", i, jn.Feature, jt.NumFeatures)
		}
	}
	t.Root = &nodes[0]
	t.Kind = jt.Kind
	t.NumFeatures = jt.NumFeatures
	t.FeatureNames = jt.FeatureNames
	return nil
}
