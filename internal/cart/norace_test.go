//go:build !race

package cart

// raceEnabled mirrors race_test.go for regular builds.
const raceEnabled = false
