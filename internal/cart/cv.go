package cart

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	out := &Tree{
		Kind:         t.Kind,
		NumFeatures:  t.NumFeatures,
		FeatureNames: append([]string(nil), t.FeatureNames...),
	}
	var cp func(n *Node) *Node
	cp = func(n *Node) *Node {
		if n == nil {
			return nil
		}
		c := *n
		c.Left = cp(n.Left)
		c.Right = cp(n.Right)
		return &c
	}
	out.Root = cp(t.Root)
	return out
}

// CPEntry is one level of the nested pruning sequence.
type CPEntry struct {
	// CP is the complexity threshold that produces this tree size
	// (pruning with any cp in (CP, nextCP] yields the same tree).
	CP float64
	// Leaves and Nodes are the resulting tree size.
	Leaves, Nodes int
}

// CPTable returns the tree's nested pruning sequence, from the tree as-is
// (CP 0) up to a lone root — the rpart-style table operators use to pick a
// complexity parameter. Entries are strictly decreasing in size.
func (t *Tree) CPTable() []CPEntry {
	// Collect distinct split gains.
	gains := map[float64]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		gains[n.Gain] = true
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	sorted := make([]float64, 0, len(gains))
	for g := range gains {
		sorted = append(sorted, g)
	}
	sort.Float64s(sorted)

	var out []CPEntry
	record := func(cp float64) {
		work := t.Clone()
		Prune(work, cp)
		e := CPEntry{CP: cp, Leaves: work.NumLeaves(), Nodes: work.NumNodes()}
		if len(out) == 0 || out[len(out)-1].Nodes != e.Nodes {
			out = append(out, e)
		}
	}
	record(0)
	for _, g := range sorted {
		record(nextAfter(g))
	}
	return out
}

// nextAfter nudges a gain up so pruning strictly removes splits at that
// gain.
func nextAfter(g float64) float64 {
	return g * (1 + 1e-12)
}

// CVResult is one evaluated complexity parameter.
type CVResult struct {
	// CP is the candidate threshold.
	CP float64
	// Loss is the mean held-out loss: the weighted misclassification
	// cost (classification, honouring the loss matrix) or the weighted
	// squared error (regression), per unit weight.
	Loss float64
}

// CrossValidateCP estimates the held-out loss of each candidate CP by
// k-fold cross-validation and returns the evaluated list (sorted as given)
// plus the best CP. This is how the paper's CP = 0.001 style of setting
// would be derived from data rather than convention.
//
// Folds are independent, so they train and score concurrently on up to
// p.Workers goroutines. Each fold accumulates into its own loss/weight
// arrays which merge in fold order afterwards, so the returned losses are
// bit-identical for every worker count (the serial loop visited folds in
// the same order). Every fold honours p.MaxBins, so binned training can
// be cross-validated exactly like the exact path (each fold re-bins its
// own training split — bins are a function of the split's values).
func CrossValidateCP(x [][]float64, y, w []float64, p Params, kind Kind,
	folds int, cps []float64, seed int64) ([]CVResult, float64, error) {
	if folds < 2 {
		return nil, 0, fmt.Errorf("cart: need ≥ 2 folds, got %d", folds)
	}
	if len(cps) == 0 {
		return nil, 0, errors.New("cart: no candidate CPs")
	}
	if len(x) < folds {
		return nil, 0, fmt.Errorf("cart: %d samples cannot fill %d folds", len(x), folds)
	}
	if w == nil {
		w = make([]float64, len(x))
		for i := range w {
			w[i] = 1
		}
	}
	p = p.withDefaults()
	if p.Workers < 0 {
		return nil, 0, fmt.Errorf("cart: negative Workers %d", p.Workers)
	}

	// Shuffled fold assignment from a single pre-parallel stream; every
	// fold then works from this one immutable array, so no RNG is shared
	// across concurrent work.
	rng := rand.New(rand.NewSource(seed))
	fold := make([]int, len(x))
	for i := range fold {
		fold[i] = i % folds
	}
	rng.Shuffle(len(fold), func(i, j int) { fold[i], fold[j] = fold[j], fold[i] })

	// Concurrent folds split the worker budget so total goroutines stay
	// bounded by p.Workers regardless of fold count.
	outer := p.Workers
	if outer > folds {
		outer = folds
	}
	inner := p.Workers / outer
	if inner < 1 {
		inner = 1
	}

	results := make([]foldResult, folds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, outer)
	for f := 0; f < folds; f++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(f int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[f] = runFold(x, y, w, fold, f, p, kind, cps, inner)
		}(f)
	}
	wg.Wait()

	losses := make([]float64, len(cps))
	weights := make([]float64, len(cps))
	for f := 0; f < folds; f++ {
		if results[f].err != nil {
			return nil, 0, fmt.Errorf("cart: CV fold %d: %w", f, results[f].err)
		}
		for ci := range cps {
			losses[ci] += results[f].losses[ci]
			weights[ci] += results[f].weights[ci]
		}
	}

	out := make([]CVResult, len(cps))
	bestIdx := 0
	for i, cp := range cps {
		loss := losses[i]
		if weights[i] > 0 {
			loss /= weights[i]
		}
		out[i] = CVResult{CP: cp, Loss: loss}
		if loss < out[bestIdx].Loss {
			bestIdx = i
		}
	}
	return out, out[bestIdx].CP, nil
}

// foldResult carries one fold's per-candidate loss and weight partials.
type foldResult struct {
	losses, weights []float64
	err             error
}

// runFold trains one fold's tree and scores every candidate CP on the
// held-out samples. Empty folds (possible with extreme fold counts)
// return zero partials, matching the serial loop's `continue`.
func runFold(x [][]float64, y, w []float64, fold []int, f int,
	p Params, kind Kind, cps []float64, workers int) foldResult {
	res := foldResult{
		losses:  make([]float64, len(cps)),
		weights: make([]float64, len(cps)),
	}
	var tx [][]float64
	var ty, tw []float64
	var vi []int
	for i := range x {
		if fold[i] == f {
			vi = append(vi, i)
		} else {
			tx = append(tx, x[i])
			ty = append(ty, y[i])
			tw = append(tw, w[i])
		}
	}
	if len(vi) == 0 || len(tx) == 0 {
		return res
	}
	// Grow once with minimal pruning, then prune per candidate.
	grow := p
	grow.CP = 1e-12
	grow.Workers = workers
	var full *Tree
	var err error
	if kind == Classification {
		full, err = TrainClassifier(tx, ty, tw, grow)
	} else {
		full, err = TrainRegressor(tx, ty, tw, grow)
	}
	if err != nil {
		res.err = err
		return res
	}
	for ci, cp := range cps {
		work := full.Clone()
		Prune(work, cp)
		for _, i := range vi {
			pred := work.Predict(x[i])
			switch kind {
			case Classification:
				if !sameLabel(pred, y[i]) {
					cost := p.LossMiss
					if y[i] > 0 {
						cost = p.LossFA // good sample flagged failed
					}
					res.losses[ci] += w[i] * cost
				}
			default:
				d := pred - y[i]
				res.losses[ci] += w[i] * d * d
			}
			res.weights[ci] += w[i]
		}
	}
	return res
}
