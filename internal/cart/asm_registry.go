package cart

import (
	"reflect"
	"runtime"
	"strings"
)

// asmKernel is one row of asmKernelRegistry (see
// partition_avx2_amd64.go): an assembly-backed kernel, the pure-Go
// function that must replace it on every other build, and the
// internal/equiv path-name family whose dispatch matrix pins the two
// bit-identical. The fields hold the functions themselves, not names,
// so a renamed or deleted kernel breaks the table at compile time.
type asmKernel struct {
	asm       any
	fallback  any
	equivPath string
}

// AsmKernelInfo is the exported view of one registry row.
type AsmKernelInfo struct {
	// Name and Fallback are the bare function names within this package.
	Name, Fallback string
	// EquivPath is the equiv harness path-name family (a path name or
	// its prefix before the parameter suffix) that exercises the kernel.
	EquivPath string
}

// AsmKernels reports every assembly-backed kernel this build linked,
// with its registered fallback and equiv path family. Builds without
// assembly (noasm, non-amd64) report none. The equiv tests walk this
// to prove each registered path family actually exists in the harness.
func AsmKernels() []AsmKernelInfo {
	out := make([]AsmKernelInfo, len(asmKernelRegistry))
	for i, k := range asmKernelRegistry {
		out[i] = AsmKernelInfo{
			Name:      funcBaseName(k.asm),
			Fallback:  funcBaseName(k.fallback),
			EquivPath: k.equivPath,
		}
	}
	return out
}

func funcBaseName(f any) string {
	fn := runtime.FuncForPC(reflect.ValueOf(f).Pointer())
	if fn == nil {
		return ""
	}
	name := fn.Name()
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}
