package cart

import (
	"math"
	"math/rand"
	"testing"

	"hddcart/internal/dataset"
)

// synthDyadicClassification builds a ±1 dataset whose every accumulation
// is exact in float64: feature values live on the /32 grid (32 distinct
// values), weights on the /8 grid in [1, 2), and the 10× false-alarm loss
// multiplies weights by a small integer. With all sums exact, fold order
// cannot perturb a single bit, so the binned/exact equivalence contract
// ("identical trees when every feature has ≤ MaxBins distinct values")
// is testable as byte equality rather than approximate agreement.
func synthDyadicClassification(seed int64, n, nf int) (x [][]float64, y, w []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]float64, n)
	w = make([]float64, n)
	for i := range x {
		row := make([]float64, nf)
		for f := range row {
			row[f] = math.Floor(rng.Float64()*32) / 32
		}
		x[i] = row
		score := row[0] + 2*row[1] - row[2]*row[0]
		y[i] = 1
		if score > 0.9 {
			y[i] = -1
		}
		if rng.Float64() < 0.05 {
			y[i] = -y[i]
		}
		w[i] = 1 + math.Floor(rng.Float64()*8)/8
	}
	return x, y, w
}

// synthDyadicRegression is the regression counterpart: /64-grid features,
// a piecewise-polynomial dyadic target, unit weights.
func synthDyadicRegression(seed int64, n, nf int) (x [][]float64, y, w []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]float64, n)
	w = make([]float64, n)
	for i := range x {
		row := make([]float64, nf)
		for f := range row {
			row[f] = math.Floor(rng.Float64()*64) / 64
		}
		x[i] = row
		y[i] = 3*row[0] - row[1]*row[1]
		if row[2] > 0.5 {
			y[i] += 2
		}
		w[i] = 1
	}
	return x, y, w
}

// TestBinnedMatchesExactFewDistinct is the equivalence property test: when
// every feature has at most MaxBins distinct values, binning assigns each
// distinct value a singleton bin and the binned grower must produce a
// byte-identical tree (splits, thresholds, gains, leaf stats) to the
// exact presorted-column grower. The datasets are dyadic (see the synth
// helpers) so both growers' accumulations are exact and the comparison is
// legitimate byte equality.
func TestBinnedMatchesExactFewDistinct(t *testing.T) {
	type tc struct {
		name   string
		train  func(p Params) (*Tree, error)
		params Params
	}
	cx, cy, cw := synthDyadicClassification(71, 3000, 6)
	rx, ry, rw := synthDyadicRegression(72, 3000, 6)
	cases := []tc{
		{
			name: "classifier/asymmetric-loss",
			train: func(p Params) (*Tree, error) {
				return TrainClassifier(cx, cy, cw, p)
			},
			params: Params{MinSplit: 4, MinBucket: 2, CP: 1e-9, LossFA: 10},
		},
		{
			name: "classifier/mtry",
			train: func(p Params) (*Tree, error) {
				return TrainClassifier(cx, cy, cw, p)
			},
			params: Params{MinSplit: 4, MinBucket: 2, CP: 1e-9, LossFA: 10, MTry: 3, Seed: 99},
		},
		{
			name: "regressor/deep",
			train: func(p Params) (*Tree, error) {
				return TrainRegressor(rx, ry, rw, p)
			},
			params: Params{MinSplit: 6, MinBucket: 3, CP: 1e-6},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			exact, err := c.train(c.params)
			if err != nil {
				t.Fatal(err)
			}
			if exact.NumNodes() < 7 {
				t.Fatalf("reference tree too small (%d nodes) to prove equivalence", exact.NumNodes())
			}
			ref := marshalTree(t, exact)
			// 64 and 255 both exceed the 32/64 distinct values per
			// feature, so every bin must be a singleton.
			for _, mb := range []int{64, 255} {
				p := c.params
				p.MaxBins = mb
				binned, err := c.train(p)
				if err != nil {
					t.Fatalf("maxBins=%d: %v", mb, err)
				}
				if got := marshalTree(t, binned); string(got) != string(ref) {
					t.Errorf("maxBins=%d tree differs from exact tree", mb)
				}
			}
		})
	}
}

// TestBinnedCoarseBinsStillValid drives MaxBins below the distinct-value
// count, where trees may legitimately differ from the exact path, and
// checks the structural invariants still hold: MinBucket respected at
// every leaf, thresholds finite, and the tree non-degenerate.
func TestBinnedCoarseBinsStillValid(t *testing.T) {
	x, y, w := synthClassification(73, 3000, 6)
	tree, err := TrainClassifier(x, y, w, Params{MinSplit: 4, MinBucket: 2, CP: 1e-9, LossFA: 10, MaxBins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() < 7 {
		t.Fatalf("degenerate coarse-binned tree: %d nodes", tree.NumNodes())
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			if n.N < 2 {
				t.Errorf("leaf with %d < MinBucket samples", n.N)
			}
			return
		}
		if math.IsNaN(n.Threshold) || math.IsInf(n.Threshold, 0) {
			t.Errorf("non-finite threshold %v at feature %d", n.Threshold, n.Feature)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tree.Root)
}

// TestBinnedNaNRoutesRight trains on data with NaN-holed features and
// checks the reserved-bin semantics: training succeeds, every split
// threshold is finite, and NaN routing at inference (x < t false → right)
// is consistent — a sample that is NaN everywhere must land in a leaf
// reachable by always going right.
func TestBinnedNaNRoutesRight(t *testing.T) {
	x, y, w := synthClassification(74, 2000, 5)
	rng := rand.New(rand.NewSource(75))
	for i := range x {
		if rng.Float64() < 0.15 {
			x[i][rng.Intn(5)] = math.NaN()
		}
	}
	tree, err := TrainClassifier(x, y, w, Params{MinSplit: 4, MinBucket: 2, CP: 1e-9, MaxBins: 32})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() < 3 {
		t.Fatalf("degenerate tree: %d nodes", tree.NumNodes())
	}
	allNaN := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	want := tree.Root
	for !want.IsLeaf() {
		want = want.Right
	}
	if got := tree.Predict(allNaN); !sameLabel(got, want.Value) {
		t.Errorf("all-NaN sample predicted %v, want rightmost leaf value %v", got, want.Value)
	}
}

// TestMaxBinsValidation rejects out-of-range MaxBins on every entry point.
func TestMaxBinsValidation(t *testing.T) {
	x, y, _ := synthClassification(76, 100, 3)
	if _, err := TrainClassifier(x, y, nil, Params{MaxBins: -1}); err == nil {
		t.Error("negative MaxBins accepted by TrainClassifier")
	}
	if _, err := TrainRegressor(x, y, nil, Params{MaxBins: 256}); err == nil {
		t.Error("MaxBins 256 accepted by TrainRegressor (255 is the uint8 ceiling)")
	}
	if _, _, err := CrossValidateCP(x, y, nil, Params{MaxBins: 300}, Classification, 2, []float64{0.01}, 1); err == nil {
		t.Error("MaxBins 300 accepted by CrossValidateCP")
	}
}

// newTestHistGrower assembles a histGrower over a small classification
// dataset for kernel-level tests.
func newTestHistGrower(t testing.TB, kind Kind, maxBins int) (*histGrower, []int32) {
	t.Helper()
	// Dyadic data keeps every histogram sum exact, which the subtraction
	// test relies on for bitwise comparison.
	var x [][]float64
	var y, w []float64
	if kind == Classification {
		x, y, w = synthDyadicClassification(77, 512, 4)
	} else {
		x, y, w = synthDyadicRegression(77, 512, 4)
	}
	p := Params{LossFA: 10, MaxBins: maxBins, Workers: 1}.withDefaults()
	g := &grower{x: x, y: y, w: w, p: p, kind: kind, nf: len(x[0])}
	if kind == Classification {
		g.eff = make([]float64, len(w))
		for i := range w {
			if y[i] < 0 {
				g.eff[i] = w[i] * p.LossMiss
			} else {
				g.eff[i] = w[i] * p.LossFA
			}
		}
	} else {
		g.eff = w
	}
	g.rootTotal = 1
	bm := &dataset.BinnedMatrix{NumSamples: len(x), NumFeatures: g.nf, MaxBins: maxBins,
		Cols: make([]dataset.BinnedColumn, g.nf)}
	for f := 0; f < g.nf; f++ {
		bm.Cols[f] = dataset.BinColumn(x, f, maxBins)
	}
	idx := make([]int32, len(x))
	for i := range idx {
		idx[i] = int32(i)
	}
	return &histGrower{g: g, bm: bm, featStride: (maxBins + 1) * histSlots}, idx
}

// TestHistKernelsZeroAlloc pins the //hddlint:noalloc contract at runtime:
// the histogram accumulate, subtract and scan kernels must not allocate.
func TestHistKernelsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	for _, kind := range []Kind{Classification, Regression} {
		hg, idx := newTestHistGrower(t, kind, 32)
		g := hg.g
		hist := make([]float64, g.nf*hg.featStride)
		seg := hist[:hg.featStride]
		child := make([]float64, len(hist))
		hg.accumulate(idx, hist)
		all := g.statsCol(idx)
		parentMass := all.impurityMass(kind)

		if n := testing.AllocsPerRun(100, func() {
			if kind == Classification {
				accumulateHistClass(seg, hg.bm.Cols[0].Codes, idx, g.y, g.w, g.eff)
			} else {
				accumulateHistReg(seg, hg.bm.Cols[0].Codes, idx, g.y, g.w, g.eff)
			}
		}); n != 0 {
			t.Errorf("%v accumulate kernel allocates %v per run", kind, n)
		}
		if n := testing.AllocsPerRun(100, func() {
			subtractHistInto(hist, child)
		}); n != 0 {
			t.Errorf("%v subtractHistInto allocates %v per run", kind, n)
		}
		if n := testing.AllocsPerRun(100, func() {
			if kind == Classification {
				hg.scanFeatureClass(0, all, parentMass, hist)
			} else {
				hg.scanFeatureReg(0, all, parentMass, hist)
			}
		}); n != 0 {
			t.Errorf("%v scan kernel allocates %v per run", kind, n)
		}
	}
}

// TestHistSubtractionMatchesDirect checks the subtraction trick's
// arithmetic on dyadic data: parent − leftChild must equal the directly
// accumulated right child bin for bin, byte for byte.
func TestHistSubtractionMatchesDirect(t *testing.T) {
	hg, idx := newTestHistGrower(t, Classification, 32)
	hist := make([]float64, hg.g.nf*hg.featStride)
	hg.accumulate(idx, hist)
	left, right := idx[:200], idx[200:]
	leftHist := make([]float64, len(hist))
	rightHist := make([]float64, len(hist))
	hg.accumulate(left, leftHist)
	hg.accumulate(right, rightHist)
	subtractHistInto(hist, leftHist)
	for i := range hist {
		// Counts and dyadic-weight masses are exact, so bitwise equality
		// is the correct bar for the subtraction trick here.
		if math.Float64bits(hist[i]) != math.Float64bits(rightHist[i]) {
			t.Fatalf("slot %d: parent-minus-left %v != direct right %v", i, hist[i], rightHist[i])
		}
	}
}
