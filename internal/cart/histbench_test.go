package cart

import "testing"

// Kernel benchmarks for the histogram engine. These run with
// b.ReportAllocs so the recorded allocs/op pins the //hddlint:noalloc
// contract in BENCH_training.json: the steady-state kernels must report 0.

func BenchmarkHistAccumulate(b *testing.B) {
	for _, kind := range []Kind{Classification, Regression} {
		b.Run(kind.String(), func(b *testing.B) {
			hg, idx := newTestHistGrower(b, kind, 255)
			g := hg.g
			seg := make([]float64, hg.featStride)
			codes := hg.bm.Cols[0].Codes
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if kind == Classification {
					accumulateHistClass(seg, codes, idx, g.y, g.w, g.eff)
				} else {
					accumulateHistReg(seg, codes, idx, g.y, g.w, g.eff)
				}
			}
		})
	}
}

func BenchmarkHistScan(b *testing.B) {
	for _, kind := range []Kind{Classification, Regression} {
		b.Run(kind.String(), func(b *testing.B) {
			hg, idx := newTestHistGrower(b, kind, 255)
			g := hg.g
			hist := make([]float64, g.nf*hg.featStride)
			hg.accumulate(idx, hist)
			all := g.statsCol(idx)
			parentMass := all.impurityMass(kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if kind == Classification {
					hg.scanFeatureClass(0, all, parentMass, hist)
				} else {
					hg.scanFeatureReg(0, all, parentMass, hist)
				}
			}
		})
	}
}

func BenchmarkHistSubtract(b *testing.B) {
	hg, idx := newTestHistGrower(b, Classification, 255)
	parent := make([]float64, hg.g.nf*hg.featStride)
	child := make([]float64, len(parent))
	hg.accumulate(idx, parent)
	hg.accumulate(idx[:len(idx)/2], child)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subtractHistInto(parent, child)
	}
}
