//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 compare-and-compress partition kernels. Shared scheme per
// 8-code word (see partition_swar.go for the order/window contract):
//
//	mask  = VPMOVMSKB(VPCMPGTB(cut^80, x^80))      x[j] < cut, bit j
//	left  = VPERMD(src, permTabL[mask])            lefts ascending
//	right = VPERMD(src, permTabR[mask])            rights, lane-reversed
//
// Both sides are stored blind (full 8-lane VMOVDQU); garbage lanes land
// inside the unwritten cursor window. The vector loop runs while
// n-k >= 16 so both blind stores fit the window; the scalar tail
// continues on the same cursors with a CMOV select.
//
// Register plan (both kernels):
//	SI src/col base   DI out base   CX n   R10 k
//	R8 left cursor    R9 right cursor
//	X8 0x80 broadcast X9 (cut^0x80) broadcast

// func partitionRootTiledAVX2(colp unsafe.Pointer, n int, outp unsafe.Pointer, cut uint8) int
TEXT ·partitionRootTiledAVX2(SB), NOSPLIT, $0-40
	MOVQ    colp+0(FP), SI
	MOVQ    n+8(FP), CX
	MOVQ    outp+16(FP), DI
	MOVBLZX cut+24(FP), R14
	MOVL    R14, AX
	XORL    $0x80, AX
	VMOVD   AX, X9
	VPBROADCASTB X9, X9
	MOVL    $0x80, DX
	VMOVD   DX, X8
	VPBROADCASTB X8, X8
	VPXOR   Y10, Y10, Y10       // Y10 = dword broadcast of k (starts 0)
	MOVL    $8, DX
	VMOVD   DX, X11
	VPBROADCASTD X11, Y11       // Y11 = dword broadcast of 8
	XORQ    R8, R8              // l = 0
	LEAQ    -1(CX), R9          // r = n-1
	XORQ    R10, R10            // k = 0
	LEAQ    ·permTabL(SB), R12
	LEAQ    ·permTabR(SB), R13

rootvec:
	MOVQ    CX, DX
	SUBQ    R10, DX
	CMPQ    DX, $16
	JLT     roottail
	VMOVQ   (SI)(R10*1), X0     // 8 codes
	VPXOR   X8, X0, X0          // x ^ 0x80
	VPCMPGTB X0, X9, X1         // lane j = (cut^80 >s x^80) = x < cut
	VPMOVMSKB X1, AX
	ANDL    $0xff, AX
	POPCNTL AX, DX              // pc = left count
	SHLL    $5, AX              // table row offset (32 bytes per mask)
	VMOVDQU (R12)(AX*1), Y2     // left positions as dwords
	VPADDD  Y10, Y2, Y3         // + word base k
	VMOVDQU Y3, (DI)(R8*4)      // blind 8-lane left store
	ADDQ    DX, R8              // l += pc
	VMOVDQU (R13)(AX*1), Y4     // right positions, lane-reversed
	VPADDD  Y10, Y4, Y5
	LEAQ    -7(R9), BX
	VMOVDQU Y5, (DI)(BX*4)      // blind 8-lane right store at r-7..r
	MOVL    $8, BX
	SUBQ    DX, BX
	SUBQ    BX, R9              // r -= 8-pc
	ADDQ    $8, R10
	VPADDD  Y11, Y10, Y10       // advance the broadcast base
	JMP     rootvec

roottail:
	CMPQ    R10, CX
	JGE     rootdone
	MOVBLZX (SI)(R10*1), AX
	SUBL    R14, AX
	SHRL    $31, AX             // w = code < cut
	MOVQ    R9, DX
	TESTL   AX, AX
	CMOVQNE R8, DX              // pos = w ? l : r
	MOVL    R10, (DI)(DX*4)
	ADDQ    AX, R8              // l += w
	SUBQ    $1, R9
	ADDQ    AX, R9              // r -= 1-w
	INCQ    R10
	JMP     roottail

rootdone:
	MOVQ    R8, ret+32(FP)
	VZEROUPPER
	RET

// func partitionSegTiledAVX2(srcp, outp unsafe.Pointer, n int, colp unsafe.Pointer, cut uint8) int
TEXT ·partitionSegTiledAVX2(SB), NOSPLIT, $0-48
	MOVQ    srcp+0(FP), SI
	MOVQ    outp+8(FP), DI
	MOVQ    n+16(FP), CX
	MOVQ    colp+24(FP), R11
	MOVBLZX cut+32(FP), R14
	MOVL    R14, AX
	XORL    $0x80, AX
	VMOVD   AX, X9
	VPBROADCASTB X9, X9
	MOVL    $0x80, DX
	VMOVD   DX, X8
	VPBROADCASTB X8, X8
	XORQ    R8, R8              // l = 0
	LEAQ    -1(CX), R9          // r = n-1
	XORQ    R10, R10            // k = 0
	LEAQ    ·permTabL(SB), R12
	LEAQ    ·permTabR(SB), R13

segvec:
	MOVQ    CX, DX
	SUBQ    R10, DX
	CMPQ    DX, $16
	JLT     segtail
	VMOVDQU (SI)(R10*4), Y0     // 8 segment indices as dwords
	// Gather the 8 code bytes by index. Scalar VPINSRB loads, not
	// VPGATHERDD: a dword gather reads 4 bytes per lane and would run
	// past the matrix end on the last column bytes.
	MOVL    (SI)(R10*4), BX
	VPINSRB $0, (R11)(BX*1), X1, X1
	MOVL    4(SI)(R10*4), BX
	VPINSRB $1, (R11)(BX*1), X1, X1
	MOVL    8(SI)(R10*4), BX
	VPINSRB $2, (R11)(BX*1), X1, X1
	MOVL    12(SI)(R10*4), BX
	VPINSRB $3, (R11)(BX*1), X1, X1
	MOVL    16(SI)(R10*4), BX
	VPINSRB $4, (R11)(BX*1), X1, X1
	MOVL    20(SI)(R10*4), BX
	VPINSRB $5, (R11)(BX*1), X1, X1
	MOVL    24(SI)(R10*4), BX
	VPINSRB $6, (R11)(BX*1), X1, X1
	MOVL    28(SI)(R10*4), BX
	VPINSRB $7, (R11)(BX*1), X1, X1
	VPXOR   X8, X1, X1
	VPCMPGTB X1, X9, X2
	VPMOVMSKB X2, AX
	ANDL    $0xff, AX
	POPCNTL AX, DX              // pc
	SHLL    $5, AX
	VMOVDQU (R12)(AX*1), Y2
	VPERMD  Y0, Y2, Y3          // compact lefts in encounter order
	VMOVDQU Y3, (DI)(R8*4)
	ADDQ    DX, R8
	VMOVDQU (R13)(AX*1), Y4
	VPERMD  Y0, Y4, Y5          // rights, reversed into descending order
	LEAQ    -7(R9), BX
	VMOVDQU Y5, (DI)(BX*4)
	MOVL    $8, BX
	SUBQ    DX, BX
	SUBQ    BX, R9
	ADDQ    $8, R10
	JMP     segvec

segtail:
	CMPQ    R10, CX
	JGE     segdone
	MOVL    (SI)(R10*4), BX     // idx
	MOVBLZX (R11)(BX*1), AX
	SUBL    R14, AX
	SHRL    $31, AX             // w = code < cut
	MOVQ    R9, DX
	TESTL   AX, AX
	CMOVQNE R8, DX
	MOVL    BX, (DI)(DX*4)
	ADDQ    AX, R8
	SUBQ    $1, R9
	ADDQ    AX, R9
	INCQ    R10
	JMP     segtail

segdone:
	MOVQ    R8, ret+40(FP)
	VZEROUPPER
	RET
