package cart

// Prune removes, bottom-up, every subtree whose split gain falls below cp
// (the second phase of the paper's Algorithms 1 and 2: "if the gain induced
// by P's split is less than CP then prune back the entire sub-tree rooted
// at P"). Gains are the relative impurity decreases recorded at training
// time, so Prune can be re-applied with a larger cp to shrink an existing
// tree without retraining.
func Prune(t *Tree, cp float64) {
	pruneNode(t.Root, cp)
}

// pruneNode returns whether n is (now) a leaf.
func pruneNode(n *Node, cp float64) {
	if n == nil || n.IsLeaf() {
		return
	}
	pruneNode(n.Left, cp)
	pruneNode(n.Right, cp)
	if n.Gain < cp {
		// The whole subtree rooted here is not worthwhile.
		n.Left, n.Right = nil, nil
		n.Gain = 0
		return
	}
	// A split whose children both predict the same value adds nothing
	// either (this happens when pruning removed the children's own
	// structure); collapse it to keep trees minimal and readable.
	if n.Left.IsLeaf() && n.Right.IsLeaf() && sameValue(n.Left.Value, n.Right.Value) {
		n.Left, n.Right = nil, nil
		n.Gain = 0
	}
}
