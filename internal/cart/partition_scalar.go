package cart

import "unsafe"

// Scalar reference tier for the partition kernels. Every other tier
// (SWAR, AVX2) is pinned bit-identical to these loops — same left
// count, same output index order — by the internal/equiv dispatch
// matrix and the kernel table tests.
//
// The loops are branch-free: both cursors live in one uint64 (left
// cursor in the low half counting up, right cursor in the high half
// counting down) so each iteration is one predicate, one shift-select
// of the store position, and one fused add that advances exactly one
// of the two cursors. The old form kept `m--` and an off/w pair whose
// recompute was data-dependent per iteration; folding both cursors
// into a single register update removes that dependency chain and
// benchmarks fairly against the vector tiers.

// curStep advances the packed (left | right<<32) cursor pair: adding
// curStep-2^32 bumps left; adding -2^32 drops right.
const curStep = 1<<32 + 1

// ltBit is 1 when cv < cut (unsigned): the uint32 subtraction borrows
// into the sign bit exactly on that predicate.
func ltBit(cv, cut uint8) uint64 {
	return uint64((uint32(cv) - uint32(cut)) >> 31)
}

// partitionRootTiledScalar splits the implicit chunk order 0..n-1 on
// colp[k] < cut; the tiled feature column is one contiguous byte run.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionRootTiledScalar(colp unsafe.Pointer, n int, outp unsafe.Pointer, cut uint8) int {
	cur := uint64(uint32(n-1)) << 32
	for k := 0; k < n; k++ {
		cv := *(*uint8)(unsafe.Add(colp, uintptr(k)))
		w := ltBit(cv, cut)
		pos := uint32(cur >> ((w ^ 1) << 5))
		*(*int32)(unsafe.Add(outp, uintptr(pos)*4)) = int32(k)
		cur += w*curStep - 1<<32
	}
	return int(uint32(cur))
}

// partitionSegTiledScalar partitions an interior node's segment:
// sample indices come from srcp and index the node's contiguous
// feature column.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionSegTiledScalar(srcp, outp unsafe.Pointer, n int, colp unsafe.Pointer, cut uint8) int {
	cur := uint64(uint32(n-1)) << 32
	for k := 0; k < n; k++ {
		idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
		cv := *(*uint8)(unsafe.Add(colp, uintptr(uint32(idx))))
		w := ltBit(cv, cut)
		pos := uint32(cur >> ((w ^ 1) << 5))
		*(*int32)(unsafe.Add(outp, uintptr(pos)*4)) = idx
		cur += w*curStep - 1<<32
	}
	return int(uint32(cur))
}

// leafPairSegTiledScalar finishes a segment whose node has two leaf
// children in one compare-and-deliver pass over the feature column.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func leafPairSegTiledScalar(srcp unsafe.Pointer, n int, colp unsafe.Pointer, cut uint8,
	dstp, payp unsafe.Pointer, add bool) {
	if add {
		for k := 0; k < n; k++ {
			idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
			cv := *(*uint8)(unsafe.Add(colp, uintptr(uint32(idx))))
			off := uintptr(8)
			if cv < cut {
				off = 0
			}
			*(*float64)(unsafe.Add(dstp, uintptr(uint32(idx))*8)) += *(*float64)(unsafe.Add(payp, off))
		}
		return
	}
	for k := 0; k < n; k++ {
		idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
		cv := *(*uint8)(unsafe.Add(colp, uintptr(uint32(idx))))
		off := uintptr(8)
		if cv < cut {
			off = 0
		}
		*(*float64)(unsafe.Add(dstp, uintptr(uint32(idx))*8)) = *(*float64)(unsafe.Add(payp, off))
	}
}

// partitionRootFlatScalar splits the implicit sample order 0..n-1 on
// codes[f] < cut, marching down the feature column at the matrix
// stride.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionRootFlatScalar(base unsafe.Pointer, stride uintptr, n int,
	outp unsafe.Pointer, foff uintptr, cut uint8) int {
	p := unsafe.Add(base, foff)
	cur := uint64(uint32(n-1)) << 32
	for k := 0; k < n; k++ {
		cv := *(*uint8)(p)
		p = unsafe.Add(p, stride)
		w := ltBit(cv, cut)
		pos := uint32(cur >> ((w ^ 1) << 5))
		*(*int32)(unsafe.Add(outp, uintptr(pos)*4)) = int32(k)
		cur += w*curStep - 1<<32
	}
	return int(uint32(cur))
}

// partitionSegFlatScalar is partitionSegTiledScalar with the code byte
// located at base + idx·stride + foff instead of a contiguous column.
//
//go:noinline
//hddlint:noalloc //hddlint:nobc
//hddlint:binned
func partitionSegFlatScalar(srcp, outp unsafe.Pointer, n int,
	base unsafe.Pointer, stride, foff uintptr, cut uint8) int {
	cur := uint64(uint32(n-1)) << 32
	for k := 0; k < n; k++ {
		idx := *(*int32)(unsafe.Add(srcp, uintptr(k)*4))
		cv := *(*uint8)(unsafe.Add(base, uintptr(uint32(idx))*stride+foff))
		w := ltBit(cv, cut)
		pos := uint32(cur >> ((w ^ 1) << 5))
		*(*int32)(unsafe.Add(outp, uintptr(pos)*4)) = idx
		cur += w*curStep - 1<<32
	}
	return int(uint32(cur))
}
