//go:build !amd64 || noasm

package cart

import "unsafe"

// Without the assembly the AVX2 tier cannot be selected — internal/cpu
// reports it unsupported and refuses SetActive — but the dispatch
// switches still link the symbols, so route them to the SWAR tier.

func partitionRootTiledAVX2(colp unsafe.Pointer, n int, outp unsafe.Pointer, cut uint8) int {
	return partitionRootTiledSWAR(colp, n, outp, cut)
}

func partitionSegTiledAVX2(srcp, outp unsafe.Pointer, n int, colp unsafe.Pointer, cut uint8) int {
	return partitionSegTiledSWAR(srcp, outp, n, colp, cut)
}

var asmKernelRegistry []asmKernel
