package cart

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"hddcart/internal/dataset"
)

// Parallelism thresholds. Fanning work out only when a node is large
// enough keeps goroutine overhead off the (many) tiny nodes near the
// leaves; the thresholds affect scheduling only, never results.
const (
	// parallelSplitWork is the minimum samples×features product at a
	// node before the split search fans out across features.
	parallelSplitWork = 8192
	// parallelSubtreeMin is the minimum child sample count before a
	// subtree is handed to another goroutine.
	parallelSubtreeMin = 512
)

// TrainClassifier grows and prunes a classification tree (the paper's
// Algorithm 1). y holds ±1 targets (+1 good, −1 failed); w holds per-sample
// weights (nil means all 1). The loss weights in p implement the paper's
// asymmetric error costs: a node is labelled failed only when the
// loss-weighted failed mass exceeds the loss-weighted good mass, and splits
// optimize information gain over the loss-adjusted distribution (the
// "altered priors" formulation of misclassification costs).
func TrainClassifier(x [][]float64, y, w []float64, p Params) (*Tree, error) {
	return train(x, y, w, p, Classification)
}

// TrainRegressor grows and prunes a regression tree (Algorithm 2). y holds
// real-valued targets (health degrees); splits minimize the within-node sum
// of squares.
func TrainRegressor(x [][]float64, y, w []float64, p Params) (*Tree, error) {
	return train(x, y, w, p, Regression)
}

func train(x [][]float64, y, w []float64, p Params, kind Kind) (*Tree, error) {
	p = p.withDefaults()
	if len(x) == 0 {
		return nil, errors.New("cart: empty training set")
	}
	if len(y) != len(x) {
		return nil, fmt.Errorf("cart: %d samples but %d targets", len(x), len(y))
	}
	if w == nil {
		w = make([]float64, len(x))
		for i := range w {
			w[i] = 1
		}
	} else if len(w) != len(x) {
		return nil, fmt.Errorf("cart: %d samples but %d weights", len(x), len(w))
	}
	nf := len(x[0])
	if nf == 0 {
		return nil, errors.New("cart: zero-length feature vectors")
	}
	for i := range x {
		if len(x[i]) != nf {
			return nil, fmt.Errorf("cart: ragged feature matrix at row %d", i)
		}
		if w[i] < 0 {
			return nil, fmt.Errorf("cart: negative weight at row %d", i)
		}
		if kind == Classification && !sameLabel(y[i], 1) && !sameLabel(y[i], -1) {
			return nil, fmt.Errorf("cart: classification target %v at row %d (want ±1)", y[i], i)
		}
	}

	if p.MTry < 0 || p.MTry > nf {
		return nil, fmt.Errorf("cart: MTry %d outside [0,%d]", p.MTry, nf)
	}
	if p.Workers < 0 {
		return nil, fmt.Errorf("cart: negative Workers %d", p.Workers)
	}
	if p.MaxBins < 0 || p.MaxBins > dataset.MaxBinsLimit {
		return nil, fmt.Errorf("cart: MaxBins %d outside [0,%d]", p.MaxBins, dataset.MaxBinsLimit)
	}
	g := &grower{x: x, y: y, w: w, p: p, kind: kind, nf: nf}
	g.mtry = p.MTry > 0 && p.MTry < nf
	if !g.mtry {
		g.allFeats = make([]int, nf)
		for i := range g.allFeats {
			g.allFeats[i] = i
		}
	}
	if p.Workers > 1 {
		// The calling goroutine is worker 0; tokens admit the rest.
		g.tokens = make(chan struct{}, p.Workers-1)
	}
	g.scratch.New = func() any {
		b := make([]bool, len(x))
		return &b
	}
	if kind == Classification {
		// Loss-adjusted effective weights (altered priors).
		g.eff = make([]float64, len(w))
		for i := range w {
			if y[i] < 0 {
				g.eff[i] = w[i] * p.LossMiss
			} else {
				g.eff[i] = w[i] * p.LossFA
			}
		}
	} else {
		g.eff = w
	}

	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	g.rootTotal = g.totalImpurity(idx)

	var root *Node
	if p.MaxBins > 0 {
		// Histogram-binned growth (histgrow.go): quantize each feature
		// once and split on bin histograms instead of sorted samples.
		root = g.growBinned()
	} else {
		// Presort every feature column once; splits partition the
		// orderings stably, so no node ever sorts again (the classic CART
		// presort optimization: O(F·n·log n) total instead of per node).
		// Columns are independent, so the sorts fan out across the worker
		// pool.
		cols := make([][]int32, nf)
		g.parallelFor(nf, len(x) >= parallelSubtreeMin, func(f int) {
			col := make([]int32, len(x))
			keys := make([]float64, len(x))
			for i := range col {
				col[i] = int32(i)
				keys[i] = x[i][f]
			}
			sort.Stable(&colSorter{keys: keys, idx: col})
			cols[f] = col
		})
		root = g.grow(cols, 1, 1)
	}
	t := &Tree{Root: root, Kind: kind, NumFeatures: nf}
	Prune(t, p.CP)
	return t, nil
}

// colSorter stably sorts one presort column by feature value through a
// concrete sort.Interface: keys are gathered once, so every comparison is
// a direct float64 load instead of a closure call chasing two levels of
// indirection through the feature matrix. The ordering (including the
// placement of NaNs, for which < is always false) is identical to the
// sort.SliceStable form it replaced — stability makes the result unique.
type colSorter struct {
	keys []float64
	idx  []int32
}

func (s *colSorter) Len() int           { return len(s.idx) }
func (s *colSorter) Less(a, b int) bool { return s.keys[a] < s.keys[b] }
func (s *colSorter) Swap(a, b int) {
	s.keys[a], s.keys[b] = s.keys[b], s.keys[a]
	s.idx[a], s.idx[b] = s.idx[b], s.idx[a]
}

// grower holds the shared training state. Everything here is read-only
// during growth except the worker-token channel and the scratch pool, so
// concurrent subtree workers never contend on data.
type grower struct {
	x         [][]float64
	y         []float64
	w         []float64 // raw weights (reporting)
	eff       []float64 // loss-adjusted weights (splitting/labelling)
	p         Params
	kind      Kind
	nf        int
	rootTotal float64 // root impurity mass; normalizes gains
	mtry      bool    // MTry feature sampling active
	allFeats  []int   // 0..nf-1 when MTry is off (shared, read-only)

	// tokens admits up to Workers-1 extra goroutines; nil when serial.
	// Acquisition never blocks (tryAcquire), so nested fan-out — subtree
	// workers parallelizing their own split searches — cannot deadlock.
	tokens chan struct{}
	// scratch pools the per-partition left-membership buffers, one per
	// concurrent worker, so no scratch allocation is shared across
	// goroutines.
	scratch sync.Pool
}

// tryAcquire reserves a worker token without blocking.
func (g *grower) tryAcquire() bool {
	if g.tokens == nil {
		return false
	}
	select {
	case g.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

func (g *grower) release() { <-g.tokens }

// parallelFor runs fn(i) for each i in [0, k), fanning out onto free
// worker tokens and falling back inline when none are available. fn must
// confine its writes to i-indexed slots; then the result is independent of
// scheduling and identical to the serial loop.
func (g *grower) parallelFor(k int, parallel bool, fn func(i int)) {
	if !parallel || g.tokens == nil || k < 2 {
		for i := 0; i < k; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		if g.tryAcquire() {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer g.release()
				fn(i)
			}(i)
		} else {
			fn(i)
		}
	}
	wg.Wait()
}

// nodeSeed derives a per-node RNG seed from the training seed and the
// node's path id (root 1, children 2id and 2id+1) via a splitmix64-style
// mix. Seeding MTry sampling per node — instead of consuming one shared
// stream in traversal order — is what keeps randomized split searches
// bit-identical across worker counts: the sample drawn at a node depends
// only on where the node sits in the tree, never on which goroutine
// reached it first.
func nodeSeed(seed int64, id uint64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + id
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// splitFeatures returns the features to search at one node: all of them,
// or a fresh MTry-sized sample drawn from the node's own seeded stream.
func (g *grower) splitFeatures(id uint64) []int {
	if !g.mtry {
		return g.allFeats
	}
	rng := rand.New(rand.NewSource(nodeSeed(g.p.Seed, id)))
	perm := rng.Perm(g.nf)
	return perm[:g.p.MTry]
}

// nodeStats summarizes the samples at a node.
type nodeStats struct {
	n         int
	wRaw      float64
	effGood   float64 // classification: loss-adjusted class masses
	effFailed float64
	rawFailed float64
	sumW      float64 // regression: Σw, Σwy, Σwy²
	sumWY     float64
	sumWY2    float64
}

func (g *grower) stats(idx []int) nodeStats {
	var s nodeStats
	s.n = len(idx)
	for _, i := range idx {
		s.wRaw += g.w[i]
		if g.kind == Classification {
			if g.y[i] < 0 {
				s.effFailed += g.eff[i]
				s.rawFailed += g.w[i]
			} else {
				s.effGood += g.eff[i]
			}
		} else {
			wy := g.eff[i] * g.y[i]
			s.sumW += g.eff[i]
			s.sumWY += wy
			s.sumWY2 += wy * g.y[i]
		}
	}
	return s
}

// entropy is the paper's Formula (2) over the loss-adjusted two-class
// distribution.
func entropy(a, b float64) float64 {
	total := a + b
	if total <= 0 || a <= 0 || b <= 0 {
		return 0
	}
	p := a / total
	q := b / total
	return -p*math.Log2(p) - q*math.Log2(q)
}

// impurityMass is the node's impurity scaled by its weight: W·info(D) for
// classification, the within-node sum of squares for regression.
func (s nodeStats) impurityMass(kind Kind) float64 {
	if kind == Classification {
		return (s.effGood + s.effFailed) * entropy(s.effGood, s.effFailed)
	}
	if s.sumW <= 0 {
		return 0
	}
	ss := s.sumWY2 - s.sumWY*s.sumWY/s.sumW
	if ss < 0 { // numeric noise
		ss = 0
	}
	return ss
}

func (g *grower) totalImpurity(idx []int) float64 {
	m := g.stats(idx).impurityMass(g.kind)
	if m <= 0 {
		return 1 // pure root: normalization is irrelevant, avoid div-by-0
	}
	return m
}

// makeLeafNode fills prediction fields from stats.
func (g *grower) makeNode(s nodeStats) *Node {
	n := &Node{N: s.n, W: s.wRaw}
	if g.kind == Classification {
		if s.effFailed > s.effGood {
			n.Value = -1
		} else {
			n.Value = +1
		}
		if s.wRaw > 0 {
			n.PFailed = s.rawFailed / s.wRaw
		}
	} else {
		if s.sumW > 0 {
			n.Value = s.sumWY / s.sumW
		}
	}
	return n
}

// split describes the best split found for a node.
type split struct {
	feature   int
	threshold float64
	gain      float64 // relative to rootTotal
	cut       int     // left size within the feature's ordering
}

// grow implements the recursive partitioning loop of Algorithms 1 and 2
// over presorted feature columns: cols[f] lists the node's sample indices
// in increasing order of feature f. id is the node's path id (root 1,
// children 2id/2id+1), used only to seed per-node MTry sampling. Left and
// right subtrees are independent, so when a worker token is free the left
// child grows on its own goroutine; results land in fixed Node fields, so
// the merge order is structural and the tree is identical for any worker
// count.
func (g *grower) grow(cols [][]int32, depth int, id uint64) *Node {
	idx := cols[0]
	s := g.statsCol(idx)
	node := g.makeNode(s)
	if s.n < g.p.MinSplit || depth >= g.p.MaxDepth {
		return node
	}
	parentMass := s.impurityMass(g.kind)
	if parentMass <= 1e-12 {
		return node // pure node
	}
	best := g.bestSplit(cols, s, parentMass, id)
	if best == nil {
		return node
	}
	node.Feature = best.feature
	node.Threshold = best.threshold
	node.Gain = best.gain
	left, right := g.partition(cols, best)
	if len(left[0]) >= parallelSubtreeMin && len(right[0]) >= parallelSubtreeMin && g.tryAcquire() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer g.release()
			node.Left = g.grow(left, depth+1, 2*id)
		}()
		node.Right = g.grow(right, depth+1, 2*id+1)
		wg.Wait()
	} else {
		node.Left = g.grow(left, depth+1, 2*id)
		node.Right = g.grow(right, depth+1, 2*id+1)
	}
	return node
}

// statsCol is stats over an int32 index slice.
func (g *grower) statsCol(idx []int32) nodeStats {
	var s nodeStats
	s.n = len(idx)
	for _, i := range idx {
		s.wRaw += g.w[i]
		if g.kind == Classification {
			if g.y[i] < 0 {
				s.effFailed += g.eff[i]
				s.rawFailed += g.w[i]
			} else {
				s.effGood += g.eff[i]
			}
		} else {
			wy := g.eff[i] * g.y[i]
			s.sumW += g.eff[i]
			s.sumWY += wy
			s.sumWY2 += wy * g.y[i]
		}
	}
	return s
}

// bestSplit searches each (selected) presorted column for the split
// maximizing the impurity decrease, honouring MinBucket. Columns are
// scanned independently — in parallel when the node is large enough — and
// the per-feature winners reduce in feature-scan order with a strict
// greater-than, which reproduces the serial loop's tie-breaking (lowest
// feature first, then lowest cut) bit for bit. It returns nil when no
// split improves impurity.
func (g *grower) bestSplit(cols [][]int32, all nodeStats, parentMass float64, id uint64) *split {
	feats := g.splitFeatures(id)
	bests := make([]split, len(feats))
	found := make([]bool, len(feats))
	parallel := len(cols[0])*len(feats) >= parallelSplitWork
	g.parallelFor(len(feats), parallel, func(i int) {
		bests[i], found[i] = g.bestSplitFeature(cols[feats[i]], feats[i], all, parentMass)
	})
	var best *split
	for i := range feats {
		if found[i] && (best == nil || bests[i].gain > best.gain) {
			best = &bests[i]
		}
	}
	return best
}

// bestSplitFeature scans one presorted column once and returns the
// lowest-cut split achieving the column's maximum gain. It touches only
// read-only grower state and its own accumulator, so any number of columns
// may scan concurrently.
func (g *grower) bestSplitFeature(order []int32, f int, all nodeStats, parentMass float64) (split, bool) {
	var best split
	ok := false
	var left nodeStats
	for cut := 1; cut < len(order); cut++ {
		i := order[cut-1]
		left.n++
		left.wRaw += g.w[i]
		if g.kind == Classification {
			if g.y[i] < 0 {
				left.effFailed += g.eff[i]
				left.rawFailed += g.w[i]
			} else {
				left.effGood += g.eff[i]
			}
		} else {
			wy := g.eff[i] * g.y[i]
			left.sumW += g.eff[i]
			left.sumWY += wy
			left.sumWY2 += wy * g.y[i]
		}
		v, next := g.x[i][f], g.x[order[cut]][f]
		if sameValue(v, next) {
			continue // not a boundary between distinct values
		}
		if left.n < g.p.MinBucket || len(order)-left.n < g.p.MinBucket {
			continue
		}
		right := subtractStats(all, left, g.kind)
		gainAbs := parentMass - left.impurityMass(g.kind) - right.impurityMass(g.kind)
		rel := gainAbs / g.rootTotal
		if rel <= 1e-12 {
			continue
		}
		if !ok || rel > best.gain {
			ok = true
			best.feature = f
			best.threshold = v + (next-v)/2
			best.gain = rel
			best.cut = cut
		}
	}
	return best, ok
}

// partition splits every presorted column stably according to the chosen
// split, so children inherit sorted columns without re-sorting. The
// left-membership scratch comes from a per-worker pool and is returned
// all-false, so concurrent partitions never share a buffer.
func (g *grower) partition(cols [][]int32, best *split) (left, right [][]int32) {
	bufp := g.scratch.Get().(*[]bool)
	inLeft := *bufp
	chosen := cols[best.feature]
	for _, i := range chosen[:best.cut] {
		inLeft[i] = true
	}
	left = make([][]int32, g.nf)
	right = make([][]int32, g.nf)
	nLeft := best.cut
	nRight := len(chosen) - best.cut
	for f := 0; f < g.nf; f++ {
		l := make([]int32, 0, nLeft)
		r := make([]int32, 0, nRight)
		for _, i := range cols[f] {
			if inLeft[i] {
				l = append(l, i)
			} else {
				r = append(r, i)
			}
		}
		left[f], right[f] = l, r
	}
	for _, i := range chosen[:best.cut] {
		inLeft[i] = false
	}
	g.scratch.Put(bufp)
	return left, right
}

// subtractStats computes right = all − left.
func subtractStats(all, left nodeStats, kind Kind) nodeStats {
	r := nodeStats{
		n:    all.n - left.n,
		wRaw: all.wRaw - left.wRaw,
	}
	if kind == Classification {
		r.effGood = all.effGood - left.effGood
		r.effFailed = all.effFailed - left.effFailed
		r.rawFailed = all.rawFailed - left.rawFailed
	} else {
		r.sumW = all.sumW - left.sumW
		r.sumWY = all.sumWY - left.sumWY
		r.sumWY2 = all.sumWY2 - left.sumWY2
	}
	return r
}
