package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hddcart/internal/smart"
)

// Backblaze's public drive-stats dataset is the de-facto standard SMART
// corpus (daily snapshots, one row per drive per day with columns
// smart_<id>_normalized / smart_<id>_raw). This importer converts it into
// the library's trace format so models train on real data: rows are
// grouped by serial, ordered by date, and day indices become trace hours
// (daily sampling instead of the paper's hourly — change-rate intervals
// should be scaled accordingly by the caller).
//
// Real dumps are not clean. Rows arrive with missing serials, duplicated
// (serial, date) snapshots, NaN/Inf/out-of-range attribute values and
// conflicting model strings; the importer never lets any of these corrupt
// a trace and never skips silently — every rejected row and discarded
// value is accounted for in ParseStats with a line-numbered RowError.

// BackblazeOptions controls the import.
type BackblazeOptions struct {
	// ModelFilter, when non-empty, keeps only drives whose model column
	// equals it (the paper separates families; Backblaze models map
	// naturally onto them).
	ModelFilter string
	// HoursPerRow is the time step between consecutive rows of one drive
	// (Backblaze snapshots are daily → 24). 0 means 24.
	HoursPerRow int
}

// ReadBackblaze parses a Backblaze drive-stats CSV stream, discarding the
// row accounting. See ReadBackblazeStats.
func ReadBackblaze(r io.Reader, opts BackblazeOptions) ([]DriveTrace, error) {
	drives, _, err := ReadBackblazeStats(r, opts)
	return drives, err
}

// ReadBackblazeStats parses a Backblaze drive-stats CSV stream. Rows of one
// drive need not be contiguous; the whole stream is materialized, grouped
// by serial and sorted chronologically. A drive is marked failed when any
// of its rows carries failure=1; its FailHour is one time step after its
// last recorded row, matching the paper's "samples before actual failure"
// convention.
//
// Malformed input degrades the import, never the output: rows without a
// serial or date, unparseable CSV records and duplicated (serial, date)
// snapshots are dropped; non-finite or out-of-domain attribute values are
// discarded (the value is treated as missing) and the row kept. The
// returned ParseStats accounts for every such decision with the input line
// it happened on. The error return is reserved for stream-level problems:
// unreadable input, a missing header, or a header without the required
// columns.
func ReadBackblazeStats(r io.Reader, opts BackblazeOptions) ([]DriveTrace, ParseStats, error) {
	var stats ParseStats
	step := opts.HoursPerRow
	if step == 0 {
		step = 24
	}
	if step < 1 {
		return nil, stats, fmt.Errorf("trace: backblaze HoursPerRow %d must be positive", opts.HoursPerRow)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // Backblaze adds columns over the years
	cr.LazyQuotes = true    // stray quotes degrade a row, not the stream
	header, err := cr.Read()
	if err != nil {
		return nil, stats, fmt.Errorf("trace: backblaze header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, name := range header {
		col[strings.TrimSpace(strings.ToLower(name))] = i
	}
	for _, required := range []string{"date", "serial_number", "model", "failure"} {
		if _, ok := col[required]; !ok {
			return nil, stats, fmt.Errorf("trace: backblaze CSV missing column %q", required)
		}
	}
	// Map catalogue attributes onto smart_<id>_normalized / _raw columns.
	type attrCols struct {
		idx       int // position in the Record arrays
		norm, raw int // CSV columns (-1 = absent)
	}
	var attrs []attrCols
	for i, a := range smart.Catalogue {
		ac := attrCols{idx: i, norm: -1, raw: -1}
		if c, ok := col[fmt.Sprintf("smart_%d_normalized", int(a.ID))]; ok {
			ac.norm = c
		}
		if c, ok := col[fmt.Sprintf("smart_%d_raw", int(a.ID))]; ok {
			ac.raw = c
		}
		if ac.norm != -1 || ac.raw != -1 {
			attrs = append(attrs, ac)
		}
	}
	if len(attrs) == 0 {
		return nil, stats, errors.New("trace: backblaze CSV has no catalogued smart_* columns")
	}

	type row struct {
		date   string
		line   int
		rec    smart.Record
		failed bool
	}
	byDrive := make(map[string]*struct {
		model string
		rows  []row
	})
	for {
		fields, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// encoding/csv keeps reading after per-record parse errors;
			// account the row and move on.
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				stats.Rows++
				stats.drop(pe.Line, "", fmt.Sprintf("unparseable CSV record: %v", pe.Err))
				continue
			}
			return nil, stats, fmt.Errorf("trace: backblaze row: %w", err)
		}
		stats.Rows++
		line, _ := cr.FieldPos(0)
		get := func(i int) string {
			if i < 0 || i >= len(fields) {
				return ""
			}
			return strings.TrimSpace(fields[i])
		}
		model := get(col["model"])
		if opts.ModelFilter != "" && model != opts.ModelFilter {
			continue
		}
		serial := get(col["serial_number"])
		if serial == "" {
			stats.drop(line, "", "missing serial_number")
			continue
		}
		var rw row
		rw.line = line
		rw.date = get(col["date"])
		if rw.date == "" {
			stats.drop(line, serial, "missing date")
			continue
		}
		repaired := false
		switch fv := get(col["failure"]); fv {
		case "", "0":
		case "1":
			rw.failed = true
		default:
			repaired = true
			stats.repair(line, serial, fmt.Sprintf("unparseable failure flag %q, treated as healthy", fv))
		}
		for _, ac := range attrs {
			if s := get(ac.norm); s != "" {
				v, err := strconv.ParseFloat(s, 64)
				if err == nil && smart.ValidNormalized(v) {
					rw.rec.Normalized[ac.idx] = v
				} else if !repaired {
					repaired = true
					stats.repair(line, serial,
						fmt.Sprintf("discarded corrupt normalized value %q for smart_%d", s, int(smart.Catalogue[ac.idx].ID)))
				}
			}
			if s := get(ac.raw); s != "" {
				v, err := strconv.ParseFloat(s, 64)
				if err == nil && smart.ValidRaw(v) {
					rw.rec.Raw[ac.idx] = v
				} else if !repaired {
					repaired = true
					stats.repair(line, serial,
						fmt.Sprintf("discarded corrupt raw value %q for smart_%d", s, int(smart.Catalogue[ac.idx].ID)))
				}
			}
		}
		d := byDrive[serial]
		if d == nil {
			d = &struct {
				model string
				rows  []row
			}{model: model}
			byDrive[serial] = d
		} else if model != "" && d.model != "" && model != d.model && !repaired {
			stats.repair(line, serial,
				fmt.Sprintf("conflicting model %q (drive registered as %q)", model, d.model))
		}
		d.rows = append(d.rows, rw)
	}

	serials := make([]string, 0, len(byDrive))
	for s := range byDrive {
		serials = append(serials, s)
	}
	sort.Strings(serials)

	out := make([]DriveTrace, 0, len(byDrive))
	for _, serial := range serials {
		d := byDrive[serial]
		sort.SliceStable(d.rows, func(i, j int) bool { return d.rows[i].date < d.rows[j].date })
		dt := DriveTrace{Meta: DriveMeta{
			Serial: serial, Family: d.model, FailHour: -1,
		}}
		for i := range d.rows {
			if i > 0 && d.rows[i].date == d.rows[i-1].date {
				// Duplicate snapshot: the stable sort kept file order, so
				// the first row wins and later ones are dropped.
				stats.drop(d.rows[i].line, serial,
					fmt.Sprintf("duplicate snapshot for date %s", d.rows[i].date))
				if d.rows[i].failed {
					dt.Meta.Failed = true // never lose a failure marker
				}
				continue
			}
			rec := d.rows[i].rec
			rec.Hour = len(dt.Records) * step
			dt.Records = append(dt.Records, rec)
			if d.rows[i].failed {
				dt.Meta.Failed = true
			}
		}
		if len(dt.Records) == 0 {
			continue
		}
		if dt.Meta.Failed {
			dt.Meta.FailHour = len(dt.Records) * step
		}
		out = append(out, dt)
	}
	stats.Drives = len(out)
	return out, stats, nil
}
