package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hddcart/internal/smart"
)

// Backblaze's public drive-stats dataset is the de-facto standard SMART
// corpus (daily snapshots, one row per drive per day with columns
// smart_<id>_normalized / smart_<id>_raw). This importer converts it into
// the library's trace format so models train on real data: rows are
// grouped by serial, ordered by date, and day indices become trace hours
// (daily sampling instead of the paper's hourly — change-rate intervals
// should be scaled accordingly by the caller).

// BackblazeOptions controls the import.
type BackblazeOptions struct {
	// ModelFilter, when non-empty, keeps only drives whose model column
	// equals it (the paper separates families; Backblaze models map
	// naturally onto them).
	ModelFilter string
	// HoursPerRow is the time step between consecutive rows of one drive
	// (Backblaze snapshots are daily → 24). 0 means 24.
	HoursPerRow int
}

// ReadBackblaze parses a Backblaze drive-stats CSV stream. Rows of one
// drive need not be contiguous; the whole stream is materialized, grouped
// by serial and sorted chronologically. A drive is marked failed when any
// of its rows carries failure=1; its FailHour is one time step after its
// last recorded row, matching the paper's "samples before actual failure"
// convention.
func ReadBackblaze(r io.Reader, opts BackblazeOptions) ([]DriveTrace, error) {
	step := opts.HoursPerRow
	if step == 0 {
		step = 24
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // Backblaze adds columns over the years
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: backblaze header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, name := range header {
		col[strings.TrimSpace(strings.ToLower(name))] = i
	}
	for _, required := range []string{"date", "serial_number", "model", "failure"} {
		if _, ok := col[required]; !ok {
			return nil, fmt.Errorf("trace: backblaze CSV missing column %q", required)
		}
	}
	// Map catalogue attributes onto smart_<id>_normalized / _raw columns.
	type attrCols struct {
		idx       int // position in the Record arrays
		norm, raw int // CSV columns (-1 = absent)
	}
	var attrs []attrCols
	for i, a := range smart.Catalogue {
		ac := attrCols{idx: i, norm: -1, raw: -1}
		if c, ok := col[fmt.Sprintf("smart_%d_normalized", int(a.ID))]; ok {
			ac.norm = c
		}
		if c, ok := col[fmt.Sprintf("smart_%d_raw", int(a.ID))]; ok {
			ac.raw = c
		}
		if ac.norm != -1 || ac.raw != -1 {
			attrs = append(attrs, ac)
		}
	}
	if len(attrs) == 0 {
		return nil, errors.New("trace: backblaze CSV has no catalogued smart_* columns")
	}

	type row struct {
		date   string
		rec    smart.Record
		failed bool
	}
	byDrive := make(map[string]*struct {
		model string
		rows  []row
	})
	for {
		fields, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: backblaze row: %w", err)
		}
		get := func(i int) string {
			if i < 0 || i >= len(fields) {
				return ""
			}
			return strings.TrimSpace(fields[i])
		}
		model := get(col["model"])
		if opts.ModelFilter != "" && model != opts.ModelFilter {
			continue
		}
		serial := get(col["serial_number"])
		if serial == "" {
			continue
		}
		var rw row
		rw.date = get(col["date"])
		rw.failed = get(col["failure"]) == "1"
		for _, ac := range attrs {
			if v, err := strconv.ParseFloat(get(ac.norm), 64); err == nil {
				rw.rec.Normalized[ac.idx] = v
			}
			if v, err := strconv.ParseFloat(get(ac.raw), 64); err == nil {
				rw.rec.Raw[ac.idx] = v
			}
		}
		d := byDrive[serial]
		if d == nil {
			d = &struct {
				model string
				rows  []row
			}{model: model}
			byDrive[serial] = d
		}
		d.rows = append(d.rows, rw)
	}

	serials := make([]string, 0, len(byDrive))
	for s := range byDrive {
		serials = append(serials, s)
	}
	sort.Strings(serials)

	out := make([]DriveTrace, 0, len(byDrive))
	for _, serial := range serials {
		d := byDrive[serial]
		sort.SliceStable(d.rows, func(i, j int) bool { return d.rows[i].date < d.rows[j].date })
		dt := DriveTrace{Meta: DriveMeta{
			Serial: serial, Family: d.model, FailHour: -1,
		}}
		for i := range d.rows {
			rec := d.rows[i].rec
			rec.Hour = i * step
			dt.Records = append(dt.Records, rec)
			if d.rows[i].failed {
				dt.Meta.Failed = true
			}
		}
		if dt.Meta.Failed {
			dt.Meta.FailHour = len(d.rows) * step
		}
		out = append(out, dt)
	}
	return out, nil
}
