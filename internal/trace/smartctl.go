package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hddcart/internal/smart"
)

// maxSmartctlLine bounds one line of smartctl output. Real tables are well
// under 200 bytes per line; the cap keeps a corrupt or adversarial stream
// from ballooning the scanner buffer.
const maxSmartctlLine = 64 * 1024

// ParseSmartctl extracts one SMART record from the output of
// `smartctl -A`, discarding the row accounting. See ParseSmartctlStats.
func ParseSmartctl(r io.Reader, hour int) (smart.Record, error) {
	rec, _, err := ParseSmartctlStats(r, hour)
	return rec, err
}

// ParseSmartctlStats extracts one SMART record from the output of
// `smartctl -A` (the "Vendor Specific SMART Attributes with Thresholds"
// table), the natural way to feed live drives into the Monitor. Lines
// outside the attribute table are ignored; attributes not in the catalogue
// are skipped. hour stamps the record.
//
// The table format is:
//
//	ID# ATTRIBUTE_NAME FLAG VALUE WORST THRESH TYPE UPDATED WHEN_FAILED RAW_VALUE
//
// Corrupt table lines — truncated rows, unparseable or out-of-domain
// values — never abort the parse and never reach the record: each is
// skipped with a line-numbered RowError in the returned ParseStats, and
// the remaining attributes still parse. The error return is reserved for
// unreadable input and for streams with no attribute table at all.
func ParseSmartctlStats(r io.Reader, hour int) (smart.Record, ParseStats, error) {
	var rec smart.Record
	var stats ParseStats
	rec.Hour = hour
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxSmartctlLine)
	inTable := false
	parsed := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "ID#") {
			inTable = true
			continue
		}
		if !inTable {
			continue
		}
		if line == "" {
			inTable = false // a blank line ends the table
			continue
		}
		fields := strings.Fields(line)
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			inTable = false // non-numeric ID: the table ended
			continue
		}
		stats.Rows++
		if len(fields) < 10 {
			// A numeric ID with missing columns is a truncated attribute
			// row, not the end of the table: skip it, keep parsing.
			stats.drop(lineNo, "", fmt.Sprintf("truncated attribute row for id %d (%d of 10 columns)", id, len(fields)))
			continue
		}
		idx, ok := smart.Index(smart.AttrID(id))
		if !ok {
			continue
		}
		norm, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || !smart.ValidNormalized(norm) {
			stats.drop(lineNo, "", fmt.Sprintf("attribute %d: corrupt value %q", id, fields[3]))
			continue
		}
		// Raw values can carry annotations like "31 (Min/Max 22/45)" or
		// "113246208" — take the leading integer.
		rawField := fields[9]
		if cut := strings.IndexAny(rawField, " (h"); cut > 0 {
			rawField = rawField[:cut]
		}
		raw, err := strconv.ParseFloat(rawField, 64)
		if err != nil || !smart.ValidRaw(raw) {
			stats.drop(lineNo, "", fmt.Sprintf("attribute %d: corrupt raw %q", id, fields[9]))
			continue
		}
		rec.Normalized[idx] = norm
		rec.Raw[idx] = raw
		parsed++
	}
	if err := sc.Err(); err != nil {
		return rec, stats, fmt.Errorf("trace: smartctl scan: %w", err)
	}
	if parsed == 0 {
		return rec, stats, fmt.Errorf("trace: no SMART attribute table found")
	}
	return rec, stats, nil
}
