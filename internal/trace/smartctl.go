package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hddcart/internal/smart"
)

// ParseSmartctl extracts one SMART record from the output of
// `smartctl -A` (the "Vendor Specific SMART Attributes with Thresholds"
// table), the natural way to feed live drives into the Monitor. Lines
// outside the attribute table are ignored; attributes not in the catalogue
// are skipped. hour stamps the record.
//
// The table format is:
//
//	ID# ATTRIBUTE_NAME FLAG VALUE WORST THRESH TYPE UPDATED WHEN_FAILED RAW_VALUE
func ParseSmartctl(r io.Reader, hour int) (smart.Record, error) {
	var rec smart.Record
	rec.Hour = hour
	sc := bufio.NewScanner(r)
	inTable := false
	parsed := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "ID#") {
			inTable = true
			continue
		}
		if !inTable || line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 10 {
			inTable = false // table ended
			continue
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			inTable = false
			continue
		}
		idx, ok := smart.Index(smart.AttrID(id))
		if !ok {
			continue
		}
		norm, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return rec, fmt.Errorf("trace: smartctl attribute %d: bad value %q", id, fields[3])
		}
		// Raw values can carry annotations like "31 (Min/Max 22/45)" or
		// "113246208" — take the leading integer.
		rawField := fields[9]
		if cut := strings.IndexAny(rawField, " (h"); cut > 0 {
			rawField = rawField[:cut]
		}
		raw, err := strconv.ParseFloat(rawField, 64)
		if err != nil {
			return rec, fmt.Errorf("trace: smartctl attribute %d: bad raw %q", id, fields[9])
		}
		rec.Normalized[idx] = norm
		rec.Raw[idx] = raw
		parsed++
	}
	if err := sc.Err(); err != nil {
		return rec, fmt.Errorf("trace: smartctl scan: %w", err)
	}
	if parsed == 0 {
		return rec, fmt.Errorf("trace: no SMART attribute table found")
	}
	return rec, nil
}
