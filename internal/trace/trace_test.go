package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"hddcart/internal/simulate"
	"hddcart/internal/smart"
)

func sampleTrace(serial string, failed bool, hours ...int) DriveTrace {
	dt := DriveTrace{Meta: DriveMeta{Serial: serial, Family: "W", Failed: failed, FailHour: -1}}
	if failed {
		dt.Meta.FailHour = hours[len(hours)-1] + 1
	}
	for _, h := range hours {
		var r smart.Record
		r.Hour = h
		for i := range r.Normalized {
			r.Normalized[i] = float64(100 - i)
			r.Raw[i] = float64(i) * 1.5
		}
		dt.Records = append(dt.Records, r)
	}
	return dt
}

func TestRoundTrip(t *testing.T) {
	drives := []DriveTrace{
		sampleTrace("W-000001", false, 0, 1, 2, 5),
		sampleTrace("W-000002", true, 10, 11, 12),
		sampleTrace("Q-000001", false, 3),
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, d := range drives {
		if err := w.WriteDrive(d.Meta, d.Records); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(drives) {
		t.Fatalf("read %d drives, want %d", len(got), len(drives))
	}
	for i, want := range drives {
		if got[i].Meta != want.Meta {
			t.Errorf("drive %d meta = %+v, want %+v", i, got[i].Meta, want.Meta)
		}
		if len(got[i].Records) != len(want.Records) {
			t.Fatalf("drive %d: %d records, want %d", i, len(got[i].Records), len(want.Records))
		}
		for j := range want.Records {
			if got[i].Records[j] != want.Records[j] {
				t.Errorf("drive %d record %d differs", i, j)
			}
		}
	}
}

func TestRoundTripSimulatedTrace(t *testing.T) {
	// Simulator output must survive the CSV round trip bit-exactly
	// enough for modeling (float formatting uses 8 significant digits).
	w := simulate.FamilyW()
	w.GoodCount, w.FailedCount = 2, 1
	fleet, err := simulate.New(simulate.Config{Seed: 5, Families: []simulate.FamilyParams{w}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	d := fleet.Drives()[2] // the failed drive
	recs := fleet.Trace(d.Index)
	meta := DriveMeta{Serial: d.Serial, Family: d.Family, Failed: d.Failed, FailHour: d.FailHour}
	if err := tw.WriteDrive(meta, recs); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != meta {
		t.Errorf("meta = %+v, want %+v", got.Meta, meta)
	}
	if len(got.Records) != len(recs) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(recs))
	}
	for j := range recs {
		for k := range recs[j].Normalized {
			rel := recs[j].Normalized[k] - got.Records[j].Normalized[k]
			if rel > 1e-5 || rel < -1e-5 {
				t.Fatalf("record %d attr %d: %v vs %v", j, k, recs[j].Normalized[k], got.Records[j].Normalized[k])
			}
		}
	}
}

func TestNextStreamsDriveByDrive(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	a := sampleTrace("A", false, 0, 1)
	b := sampleTrace("B", false, 7)
	_ = w.WriteDrive(a.Meta, a.Records)
	_ = w.WriteDrive(b.Meta, b.Records)
	_ = w.Flush()

	r, _ := NewReader(&buf)
	first, err := r.Next()
	if err != nil || first.Meta.Serial != "A" || len(first.Records) != 2 {
		t.Fatalf("first = %+v, %v", first.Meta, err)
	}
	second, err := r.Next()
	if err != nil || second.Meta.Serial != "B" || len(second.Records) != 1 {
		t.Fatalf("second = %+v, %v", second.Meta, err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("nope,header\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Error("empty file accepted")
	}
}

func TestReaderRejectsBadRows(t *testing.T) {
	header := strings.Join(Header(), ",")
	pad := strings.Repeat(",1", 2*smart.NumAttrs)
	cases := []string{
		header + "\n" + "s,W,notabool,-1,0" + pad + "\n",
		header + "\n" + "s,W,false,x,0" + pad + "\n",
		header + "\n" + "s,W,false,-1,zz" + pad + "\n",
		header + "\n" + "s,W,false,-1,0" + strings.Repeat(",x", 2*smart.NumAttrs) + "\n",
	}
	for i, raw := range cases {
		r, err := NewReader(strings.NewReader(raw))
		if err != nil {
			t.Fatalf("case %d: header rejected: %v", i, err)
		}
		if _, err := r.Next(); err == nil {
			t.Errorf("case %d: bad row accepted", i)
		}
	}
}

func TestReaderRejectsNonChronological(t *testing.T) {
	header := strings.Join(Header(), ",")
	pad := strings.Repeat(",1", 2*smart.NumAttrs)
	raw := header + "\n" +
		"s,W,false,-1,5" + pad + "\n" +
		"s,W,false,-1,3" + pad + "\n"
	r, err := NewReader(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("non-chronological rows accepted")
	}
}

func TestGoodDriveFailHourNormalized(t *testing.T) {
	// Good drives always serialize fail_hour = -1 regardless of input.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	meta := DriveMeta{Serial: "g", Family: "W", Failed: false, FailHour: 999}
	dt := sampleTrace("g", false, 0)
	if err := w.WriteDrive(meta, dt.Records); err != nil {
		t.Fatal(err)
	}
	_ = w.Flush()
	r, _ := NewReader(&buf)
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.FailHour != -1 {
		t.Errorf("good drive fail_hour = %d, want -1", got.Meta.FailHour)
	}
}
