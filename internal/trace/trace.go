// Package trace serializes SMART drive traces as CSV, the interchange
// format between cmd/gendata (dataset generation) and cmd/hddpred
// (training/evaluation), and the natural import path for real SMART dumps.
//
// The format is one row per (drive, hour) sample:
//
//	serial,family,failed,fail_hour,hour,n<ID>...,r<ID>...
//
// with one n<ID> (normalized) and one r<ID> (raw) column per catalogued
// SMART attribute. Rows of one drive must be contiguous and chronological,
// which lets the reader stream drive by drive without loading the file.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"hddcart/internal/smart"
)

// DriveMeta identifies a drive within a trace file.
type DriveMeta struct {
	// Serial is the drive's unique identifier.
	Serial string
	// Family is the drive family/model label.
	Family string
	// Failed reports whether the drive fails.
	Failed bool
	// FailHour is the failure instant (−1 for good drives).
	FailHour int
}

// DriveTrace is one drive's metadata plus its chronological records.
type DriveTrace struct {
	Meta    DriveMeta
	Records []smart.Record
}

// Header returns the CSV header row.
func Header() []string {
	h := []string{"serial", "family", "failed", "fail_hour", "hour"}
	for _, a := range smart.Catalogue {
		h = append(h, fmt.Sprintf("n%d", int(a.ID)))
	}
	for _, a := range smart.Catalogue {
		h = append(h, fmt.Sprintf("r%d", int(a.ID)))
	}
	return h
}

// Writer streams drive traces to CSV.
type Writer struct {
	cw          *csv.Writer
	wroteHeader bool
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{cw: csv.NewWriter(w)}
}

// WriteDrive appends one drive's records.
func (w *Writer) WriteDrive(meta DriveMeta, recs []smart.Record) error {
	if !w.wroteHeader {
		if err := w.cw.Write(Header()); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
		w.wroteHeader = true
	}
	failHour := meta.FailHour
	if !meta.Failed {
		failHour = -1
	}
	row := make([]string, 0, 5+2*smart.NumAttrs)
	for i := range recs {
		rec := &recs[i]
		row = row[:0]
		row = append(row,
			meta.Serial,
			meta.Family,
			strconv.FormatBool(meta.Failed),
			strconv.Itoa(failHour),
			strconv.Itoa(rec.Hour),
		)
		for _, v := range rec.Normalized {
			row = append(row, formatValue(v))
		}
		for _, v := range rec.Raw {
			row = append(row, formatValue(v))
		}
		if err := w.cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	return nil
}

// formatValue renders a float compactly (integers without decimals).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 8, 64)
}

// Flush flushes buffered rows and reports any write error.
func (w *Writer) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}

// Reader streams drive traces from CSV. Rows of one drive must be
// contiguous. The native format is machine-generated, so the reader is
// strict — any malformed row is an error — but every error it returns is a
// RowError pinned to the offending input line.
type Reader struct {
	cr          *csv.Reader
	pending     []string // first row of the next drive
	pendingLine int      // input line of the pending row
	eof         bool
}

// NewReader returns a Reader consuming r. It validates the header.
func NewReader(r io.Reader) (*Reader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(Header())
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	want := Header()
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], want[i])
		}
	}
	return &Reader{cr: cr}, nil
}

// Next returns the next drive's trace; io.EOF when the file is exhausted.
func (r *Reader) Next() (DriveTrace, error) {
	var dt DriveTrace
	row, line := r.pending, r.pendingLine
	r.pending = nil
	if row == nil {
		if r.eof {
			return dt, io.EOF
		}
		var err error
		row, err = r.cr.Read()
		if errors.Is(err, io.EOF) {
			return dt, io.EOF
		}
		if err != nil {
			return dt, fmt.Errorf("trace: read row: %w", err)
		}
		line, _ = r.cr.FieldPos(0)
	}
	meta, rec, err := parseRow(row, line)
	if err != nil {
		return dt, err
	}
	dt.Meta = meta
	dt.Records = append(dt.Records, rec)
	for {
		row, err := r.cr.Read()
		if errors.Is(err, io.EOF) {
			r.eof = true
			return dt, nil
		}
		if err != nil {
			return dt, fmt.Errorf("trace: read row: %w", err)
		}
		line, _ = r.cr.FieldPos(0)
		if row[0] != dt.Meta.Serial {
			r.pending, r.pendingLine = row, line
			return dt, nil
		}
		_, rec, err := parseRow(row, line)
		if err != nil {
			return dt, err
		}
		if n := len(dt.Records); n > 0 && rec.Hour <= dt.Records[n-1].Hour {
			return dt, RowError{Line: line, Serial: dt.Meta.Serial,
				Reason: fmt.Sprintf("rows not chronological at hour %d", rec.Hour)}
		}
		dt.Records = append(dt.Records, rec)
	}
}

// ReadAll consumes every drive in the stream.
func (r *Reader) ReadAll() ([]DriveTrace, error) {
	var out []DriveTrace
	for {
		dt, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, dt)
	}
}

// ParseRow parses one data row of the native CSV layout into the drive's
// metadata and its record, reporting failures as line-pinned RowErrors.
// It exists for streaming consumers (the serve ingest endpoint) that
// route rows one at a time and must keep going past a malformed row with
// per-line accounting, where Reader's whole-drive strictness would abort
// the batch. The row must already have len(Header()) fields.
func ParseRow(row []string, line int) (DriveMeta, smart.Record, error) {
	return parseRow(row, line)
}

func parseRow(row []string, line int) (DriveMeta, smart.Record, error) {
	var meta DriveMeta
	var rec smart.Record
	meta.Serial = row[0]
	meta.Family = row[1]
	rowErr := func(format string, args ...any) error {
		return RowError{Line: line, Serial: meta.Serial, Reason: fmt.Sprintf(format, args...)}
	}
	failed, err := strconv.ParseBool(row[2])
	if err != nil {
		return meta, rec, rowErr("bad failed flag %q: %v", row[2], err)
	}
	meta.Failed = failed
	meta.FailHour, err = strconv.Atoi(row[3])
	if err != nil {
		return meta, rec, rowErr("bad fail_hour %q: %v", row[3], err)
	}
	rec.Hour, err = strconv.Atoi(row[4])
	if err != nil {
		return meta, rec, rowErr("bad hour %q: %v", row[4], err)
	}
	for i := 0; i < smart.NumAttrs; i++ {
		rec.Normalized[i], err = strconv.ParseFloat(row[5+i], 64)
		if err != nil {
			return meta, rec, rowErr("bad normalized value %q: %v", row[5+i], err)
		}
		rec.Raw[i], err = strconv.ParseFloat(row[5+smart.NumAttrs+i], 64)
		if err != nil {
			return meta, rec, rowErr("bad raw value %q: %v", row[5+smart.NumAttrs+i], err)
		}
	}
	return meta, rec, nil
}
