package trace

import "fmt"

// maxRowErrors caps how many detailed RowErrors a ParseStats retains.
// Counters keep accumulating past the cap (Truncated records the excess),
// so a pathological input cannot balloon memory while every row is still
// accounted for.
const maxRowErrors = 64

// RowError pins one rejected or repaired input row to its physical
// location, so operators can go from an import report straight to the
// offending line of a multi-gigabyte dump.
type RowError struct {
	// Line is the 1-based physical line of the input (0 when the source
	// has no line structure, e.g. a mid-stream accounting entry).
	Line int
	// Serial is the drive the row belongs to, when known.
	Serial string
	// Reason describes what was wrong with the row.
	Reason string
}

// Error implements error.
func (e RowError) Error() string {
	switch {
	case e.Line > 0 && e.Serial != "":
		return fmt.Sprintf("trace: line %d (drive %s): %s", e.Line, e.Serial, e.Reason)
	case e.Line > 0:
		return fmt.Sprintf("trace: line %d: %s", e.Line, e.Reason)
	case e.Serial != "":
		return fmt.Sprintf("trace: drive %s: %s", e.Serial, e.Reason)
	default:
		return "trace: " + e.Reason
	}
}

// ParseStats accounts for every row an importer consumed: how many were
// used, dropped, or kept after discarding corrupt values. Importers never
// skip silently — each drop or repair increments a counter and (up to
// maxRowErrors) leaves a line-numbered RowError behind.
type ParseStats struct {
	// Rows is the number of data rows consumed (excluding the header).
	Rows int
	// Drives is the number of drives emitted.
	Drives int
	// Dropped counts rows rejected entirely.
	Dropped int
	// Repaired counts rows kept after discarding one or more corrupt
	// values (treated as missing).
	Repaired int
	// Errors holds the first maxRowErrors detailed row errors.
	Errors []RowError
	// Truncated counts row errors beyond the Errors cap.
	Truncated int
}

// note records a detailed row error, respecting the cap.
func (s *ParseStats) note(line int, serial, reason string) {
	if len(s.Errors) >= maxRowErrors {
		s.Truncated++
		return
	}
	s.Errors = append(s.Errors, RowError{Line: line, Serial: serial, Reason: reason})
}

// drop accounts one fully rejected row.
func (s *ParseStats) drop(line int, serial, reason string) {
	s.Dropped++
	s.note(line, serial, reason)
}

// repair accounts one row kept with values discarded.
func (s *ParseStats) repair(line int, serial, reason string) {
	s.Repaired++
	s.note(line, serial, reason)
}

// String summarizes the accounting for logs.
func (s *ParseStats) String() string {
	return fmt.Sprintf("rows=%d drives=%d dropped=%d repaired=%d (%d detailed errors, %d truncated)",
		s.Rows, s.Drives, s.Dropped, s.Repaired, len(s.Errors), s.Truncated)
}
