package trace

import (
	"bytes"
	"strings"
	"testing"

	"hddcart/internal/smart"
)

// The parser fuzz targets enforce the two ingest invariants the chaos
// suite builds on: no input can panic a parser, and whatever a parser
// accepts is clean — chronological hours, finite in-domain values, and
// row-accurate accounting for everything it rejected.

func FuzzBackblazeCSV(f *testing.F) {
	f.Add([]byte(backblazeSample))
	f.Add([]byte("date,serial_number,model,failure,smart_1_normalized,smart_1_raw\n" +
		"2024-01-01,X,M,0,100,1\n"))
	// Duplicated snapshot, NaN/Inf/out-of-range values, missing serial.
	f.Add([]byte("date,serial_number,model,failure,smart_5_normalized,smart_5_raw\n" +
		"2024-01-01,X,M,0,NaN,1e999\n" +
		"2024-01-01,X,M,1,100,2\n" +
		"2024-01-02,,M,0,100,3\n" +
		"2024-01-03,X,M2,0,-5,1e300\n"))
	// Truncated rows and stray quotes.
	f.Add([]byte("date,serial_number,model,failure,smart_9_raw\n" +
		"2024-01-01,X\n" +
		"2024-\"01,X,M,0,7\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		drives, stats, err := ReadBackblazeStats(bytes.NewReader(data), BackblazeOptions{})
		if err != nil {
			return // stream-level rejection is fine; panics are not
		}
		if stats.Drives != len(drives) {
			t.Fatalf("stats.Drives = %d, drives = %d", stats.Drives, len(drives))
		}
		for _, dt := range drives {
			if dt.Meta.Serial == "" {
				t.Fatal("accepted drive without a serial")
			}
			if len(dt.Records) == 0 {
				t.Fatalf("drive %s has no records", dt.Meta.Serial)
			}
			for i := range dt.Records {
				rec := &dt.Records[i]
				if i > 0 && rec.Hour <= dt.Records[i-1].Hour {
					t.Fatalf("drive %s hours not chronological at %d", dt.Meta.Serial, rec.Hour)
				}
				if n := rec.CorruptValues(); n != 0 {
					t.Fatalf("drive %s record %d carries %d corrupt values", dt.Meta.Serial, i, n)
				}
			}
			if dt.Meta.Failed == (dt.Meta.FailHour < 0) {
				t.Fatalf("drive %s failed=%v but FailHour=%d", dt.Meta.Serial, dt.Meta.Failed, dt.Meta.FailHour)
			}
		}
		if len(stats.Errors) > maxRowErrors {
			t.Fatalf("detailed errors %d exceed the cap", len(stats.Errors))
		}
		for _, re := range stats.Errors {
			if re.Reason == "" {
				t.Fatal("row error without a reason")
			}
		}
	})
}

func FuzzSmartctlParse(f *testing.F) {
	f.Add([]byte(smartctlSample), 42)
	f.Add([]byte("ID# ATTRIBUTE_NAME FLAG VALUE WORST THRESH TYPE UPDATED WHEN_FAILED RAW_VALUE\n"+
		"  5 Reallocated_Sector_Ct 0x0033 100 100 010 Pre-fail Always - 24\n"), 0)
	// Truncated row, NaN value, huge raw.
	f.Add([]byte("ID# ...\n"+
		"  5 Reallocated_Sector_Ct 0x0033 100\n"+
		"  1 Raw_Read_Error_Rate 0x000f NaN 099 006 Pre-fail Always - 170\n"+
		"194 Temperature_Celsius 0x0022 062 045 000 Old_age Always - 1e30\n"), 7)
	f.Fuzz(func(t *testing.T, data []byte, hour int) {
		rec, stats, err := ParseSmartctlStats(bytes.NewReader(data), hour)
		if err != nil {
			return
		}
		if rec.Hour != hour {
			t.Fatalf("hour = %d, want %d", rec.Hour, hour)
		}
		if n := rec.CorruptValues(); n != 0 {
			t.Fatalf("accepted record carries %d corrupt values", n)
		}
		for _, re := range stats.Errors {
			if re.Line <= 0 {
				t.Fatalf("row error without a line number: %v", re)
			}
		}
	})
}

// FuzzTraceReader feeds arbitrary bytes through the strict native reader:
// it must never panic and every rejection must carry a usable message.
func FuzzTraceReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var rec smart.Record
	rec.Hour = 1
	if err := w.WriteDrive(DriveMeta{Serial: "d0", Family: "W", FailHour: -1}, []smart.Record{rec}); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(strings.Join(Header(), ",") + "\n")
	f.Fuzz(func(t *testing.T, data string) {
		r, err := NewReader(strings.NewReader(data))
		if err != nil {
			return
		}
		drives, err := r.ReadAll()
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		for _, dt := range drives {
			for i := 1; i < len(dt.Records); i++ {
				if dt.Records[i].Hour <= dt.Records[i-1].Hour {
					t.Fatalf("drive %s accepted non-chronological rows", dt.Meta.Serial)
				}
			}
		}
	})
}
