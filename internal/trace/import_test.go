package trace

import (
	"errors"
	"strings"
	"testing"

	"hddcart/internal/smart"
)

const backblazeSample = `date,serial_number,model,capacity_bytes,failure,smart_1_normalized,smart_1_raw,smart_5_normalized,smart_5_raw,smart_9_normalized,smart_9_raw,smart_194_normalized,smart_194_raw,smart_255_normalized,smart_255_raw
2024-01-01,ZA001,ST4000DM000,4000787030016,0,118,170589480,100,0,92,7000,62,38,1,1
2024-01-02,ZA001,ST4000DM000,4000787030016,0,117,171589480,100,0,92,7024,61,39,1,1
2024-01-03,ZA001,ST4000DM000,4000787030016,1,80,991589480,95,24,92,7048,55,45,1,1
2024-01-01,ZB002,WDC-WD60,6000000000000,0,200,0,100,0,80,17000,65,35,1,1
2024-01-02,ZB002,WDC-WD60,6000000000000,0,200,0,100,0,80,17024,64,36,1,1
`

func TestReadBackblaze(t *testing.T) {
	drives, err := ReadBackblaze(strings.NewReader(backblazeSample), BackblazeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(drives) != 2 {
		t.Fatalf("drives = %d, want 2", len(drives))
	}
	// Sorted by serial: ZA001 first.
	za := drives[0]
	if za.Meta.Serial != "ZA001" || za.Meta.Family != "ST4000DM000" {
		t.Fatalf("meta = %+v", za.Meta)
	}
	if !za.Meta.Failed || za.Meta.FailHour != 3*24 {
		t.Errorf("ZA001 failed/failHour = %v/%d, want true/72", za.Meta.Failed, za.Meta.FailHour)
	}
	if len(za.Records) != 3 {
		t.Fatalf("ZA001 records = %d", len(za.Records))
	}
	if za.Records[1].Hour != 24 {
		t.Errorf("second row hour = %d, want 24", za.Records[1].Hour)
	}
	if got := za.Records[0].NormalizedOf(smart.RawReadErrorRate); got != 118 {
		t.Errorf("smart_1_normalized = %v, want 118", got)
	}
	if got := za.Records[2].RawOf(smart.ReallocatedSectors); got != 24 {
		t.Errorf("smart_5_raw (day 3) = %v, want 24", got)
	}
	if got := za.Records[0].RawOf(smart.TemperatureCelsius); got != 38 {
		t.Errorf("smart_194_raw = %v, want 38", got)
	}

	zb := drives[1]
	if zb.Meta.Failed || zb.Meta.FailHour != -1 {
		t.Errorf("ZB002 should be good: %+v", zb.Meta)
	}
}

func TestReadBackblazeModelFilter(t *testing.T) {
	drives, err := ReadBackblaze(strings.NewReader(backblazeSample),
		BackblazeOptions{ModelFilter: "ST4000DM000"})
	if err != nil {
		t.Fatal(err)
	}
	if len(drives) != 1 || drives[0].Meta.Serial != "ZA001" {
		t.Errorf("filter kept %d drives", len(drives))
	}
}

func TestReadBackblazeUnsortedRows(t *testing.T) {
	// Rows arrive date-shuffled; the importer must sort them.
	shuffled := `date,serial_number,model,failure,smart_1_normalized,smart_1_raw
2024-01-03,X,M,0,90,3
2024-01-01,X,M,0,100,1
2024-01-02,X,M,0,95,2
`
	drives, err := ReadBackblaze(strings.NewReader(shuffled), BackblazeOptions{HoursPerRow: 24})
	if err != nil {
		t.Fatal(err)
	}
	recs := drives[0].Records
	if recs[0].RawOf(smart.RawReadErrorRate) != 1 || recs[2].RawOf(smart.RawReadErrorRate) != 3 {
		t.Errorf("rows not chronologically sorted: %v %v",
			recs[0].RawOf(smart.RawReadErrorRate), recs[2].RawOf(smart.RawReadErrorRate))
	}
}

func TestReadBackblazeErrors(t *testing.T) {
	if _, err := ReadBackblaze(strings.NewReader(""), BackblazeOptions{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadBackblaze(strings.NewReader("a,b,c\n1,2,3\n"), BackblazeOptions{}); err == nil {
		t.Error("missing required columns accepted")
	}
	noSmart := "date,serial_number,model,failure\n2024-01-01,X,M,0\n"
	if _, err := ReadBackblaze(strings.NewReader(noSmart), BackblazeOptions{}); err == nil {
		t.Error("CSV without smart_* columns accepted")
	}
}

const smartctlSample = `smartctl 7.2 2020-12-30 r5155 [x86_64-linux-5.10.0] (local build)
=== START OF READ SMART DATA SECTION ===
SMART Attributes Data Structure revision number: 10
Vendor Specific SMART Attributes with Thresholds:
ID# ATTRIBUTE_NAME          FLAG     VALUE WORST THRESH TYPE      UPDATED  WHEN_FAILED RAW_VALUE
  1 Raw_Read_Error_Rate     0x000f   118   099   006    Pre-fail  Always       -       170589480
  3 Spin_Up_Time            0x0003   096   096   000    Pre-fail  Always       -       0
  5 Reallocated_Sector_Ct   0x0033   100   100   010    Pre-fail  Always       -       24
  9 Power_On_Hours          0x0032   092   092   000    Old_age   Always       -       7000
194 Temperature_Celsius     0x0022   062   045   000    Old_age   Always       -       38 (Min/Max 22/45)
240 Head_Flying_Hours       0x0000   100   253   000    Old_age   Offline      -       6805h+57m+22.310s

SMART Error Log Version: 1
No Errors Logged
`

func TestParseSmartctl(t *testing.T) {
	rec, err := ParseSmartctl(strings.NewReader(smartctlSample), 42)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Hour != 42 {
		t.Errorf("hour = %d", rec.Hour)
	}
	if got := rec.NormalizedOf(smart.RawReadErrorRate); got != 118 {
		t.Errorf("RRER norm = %v, want 118", got)
	}
	if got := rec.RawOf(smart.RawReadErrorRate); got != 170589480 {
		t.Errorf("RRER raw = %v", got)
	}
	if got := rec.RawOf(smart.ReallocatedSectors); got != 24 {
		t.Errorf("RSC raw = %v, want 24", got)
	}
	// Annotated raw value parses to the leading integer.
	if got := rec.RawOf(smart.TemperatureCelsius); got != 38 {
		t.Errorf("temp raw = %v, want 38", got)
	}
	if got := rec.NormalizedOf(smart.SpinUpTime); got != 96 {
		t.Errorf("SUT norm = %v, want 96", got)
	}
}

func TestParseSmartctlNoTable(t *testing.T) {
	if _, err := ParseSmartctl(strings.NewReader("smartctl version\nno table here\n"), 0); err == nil {
		t.Error("input without attribute table accepted")
	}
}

func TestReadBackblazeStatsAccounting(t *testing.T) {
	// Line 2: clean. Line 3: NaN normalized (repaired). Line 4: duplicate
	// snapshot of line 2's date carrying the failure marker (dropped, but
	// the marker survives). Line 5: missing serial (dropped). Line 6: out
	// of range raw (repaired).
	in := `date,serial_number,model,failure,smart_5_normalized,smart_5_raw
2024-01-01,X,M,0,100,1
2024-01-02,X,M,0,NaN,2
2024-01-01,X,M,1,90,9
2024-01-03,,M,0,100,3
2024-01-04,X,M,0,100,1e18
`
	drives, stats, err := ReadBackblazeStats(strings.NewReader(in), BackblazeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(drives) != 1 {
		t.Fatalf("drives = %d, want 1", len(drives))
	}
	x := drives[0]
	if !x.Meta.Failed {
		t.Error("failure marker on a duplicate row was lost")
	}
	if len(x.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(x.Records))
	}
	// The NaN normalized and out-of-range raw values were discarded.
	if got := x.Records[1].NormalizedOf(smart.ReallocatedSectors); got != 0 {
		t.Errorf("NaN value imported as %v", got)
	}
	if got := x.Records[2].RawOf(smart.ReallocatedSectors); got != 0 {
		t.Errorf("out-of-range raw imported as %v", got)
	}
	if stats.Rows != 5 || stats.Dropped != 2 || stats.Repaired != 2 {
		t.Errorf("stats = %+v, want rows=5 dropped=2 repaired=2", stats)
	}
	if len(stats.Errors) != 4 {
		t.Fatalf("detailed errors = %d, want 4", len(stats.Errors))
	}
	// Every accounting entry is pinned to its input line.
	wantLines := map[int]bool{3: true, 4: true, 5: true, 6: true}
	for _, re := range stats.Errors {
		if !wantLines[re.Line] {
			t.Errorf("unexpected row error line %d: %v", re.Line, re)
		}
		delete(wantLines, re.Line)
	}
	if len(wantLines) != 0 {
		t.Errorf("unaccounted lines: %v (errors: %v)", wantLines, stats.Errors)
	}
}

func TestReadBackblazeConflictingModel(t *testing.T) {
	in := `date,serial_number,model,failure,smart_5_raw
2024-01-01,X,M1,0,1
2024-01-02,X,M2,0,2
`
	drives, stats, err := ReadBackblazeStats(strings.NewReader(in), BackblazeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if drives[0].Meta.Family != "M1" {
		t.Errorf("family = %q, want first-seen M1", drives[0].Meta.Family)
	}
	if stats.Repaired != 1 || len(stats.Errors) != 1 {
		t.Errorf("conflicting model unaccounted: %+v", stats)
	}
	if !strings.Contains(stats.Errors[0].Reason, "conflicting model") {
		t.Errorf("reason = %q", stats.Errors[0].Reason)
	}
}

func TestReadBackblazeErrorCap(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("date,serial_number,model,failure,smart_5_raw\n")
	for i := 0; i < maxRowErrors+20; i++ {
		sb.WriteString("2024-01-01,,M,0,1\n") // missing serial, dropped
	}
	_, stats, err := ReadBackblazeStats(strings.NewReader(sb.String()), BackblazeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != maxRowErrors+20 {
		t.Errorf("dropped = %d, want %d", stats.Dropped, maxRowErrors+20)
	}
	if len(stats.Errors) != maxRowErrors || stats.Truncated != 20 {
		t.Errorf("errors = %d truncated = %d", len(stats.Errors), stats.Truncated)
	}
}

func TestParseSmartctlStatsSkipsCorruptRows(t *testing.T) {
	in := `ID# ATTRIBUTE_NAME FLAG VALUE WORST THRESH TYPE UPDATED WHEN_FAILED RAW_VALUE
  1 Raw_Read_Error_Rate 0x000f NaN 099 006 Pre-fail Always - 170589480
  5 Reallocated_Sector_Ct 0x0033 100
194 Temperature_Celsius 0x0022 062 045 000 Old_age Always - 1e30
  9 Power_On_Hours 0x0032 092 092 000 Old_age Always - 7000
`
	rec, stats, err := ParseSmartctlStats(strings.NewReader(in), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Only Power_On_Hours survives: NaN value, truncated row and
	// out-of-domain raw are all skipped without aborting the parse.
	if got := rec.RawOf(smart.PowerOnHours); got != 7000 {
		t.Errorf("POH raw = %v, want 7000", got)
	}
	if got := rec.NormalizedOf(smart.RawReadErrorRate); got != 0 {
		t.Errorf("NaN attribute imported as %v", got)
	}
	if stats.Dropped != 3 || len(stats.Errors) != 3 {
		t.Fatalf("stats = %+v, want 3 dropped", stats)
	}
	for i, wantLine := range []int{2, 3, 4} {
		if stats.Errors[i].Line != wantLine {
			t.Errorf("error %d at line %d, want %d (%v)", i, stats.Errors[i].Line, wantLine, stats.Errors[i])
		}
	}
}

func TestTraceReaderLineNumberedErrors(t *testing.T) {
	var buf strings.Builder
	w := NewWriter(&buf)
	mkRec := func(hour int) smart.Record {
		var r smart.Record
		r.Hour = hour
		return r
	}
	err := w.WriteDrive(DriveMeta{Serial: "d0", Family: "W", FailHour: -1},
		[]smart.Record{mkRec(3), mkRec(3)}) // duplicate hour
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	var re RowError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want RowError", err, err)
	}
	// Header is line 1, first record line 2, the offender line 3.
	if re.Line != 3 || re.Serial != "d0" {
		t.Errorf("RowError = %+v, want line 3 drive d0", re)
	}
}
