package sweep

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hddcart/internal/cart"
	"hddcart/internal/dataset"
	"hddcart/internal/detect"
)

// benchFleet is the 1M-drive synthetic sweep workload: short quantized
// series (8–16 samples, ~12 on average — a fleet monitored over a few
// days) over a 13-feature classifier, the feature width of the paper's
// SMART set. Code rows alias the quantized training matrix, so the fleet
// costs row headers, not row copies; PrepareBinned packs real bytes into
// the tiled matrices either way.
type benchFleet struct {
	bt        *cart.BinnedTree
	series    []detect.BinnedSeries
	failHours []int
	samples   int
}

const benchDrives = 1_000_000

func buildBenchFleet(b *testing.B) *benchFleet {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const n, nf = 2000, 13
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, nf)
		for f := range row {
			row[f] = math.Floor(rng.Float64()*64) / 64
		}
		x[i] = row
		y[i] = 1
		if row[0]-row[1] > 0.2 || row[5] > 0.9 {
			y[i] = -1
		}
		if rng.Float64() < 0.05 {
			y[i] = -y[i]
		}
	}
	tree, err := cart.TrainClassifier(x, y, nil, cart.Params{LossFA: 10, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	bm, err := dataset.BinMatrix(x, dataset.MaxBinsLimit)
	if err != nil {
		b.Fatal(err)
	}
	bt, err := tree.Compile().CompileBinned(bm)
	if err != nil {
		b.Fatal(err)
	}
	codes, err := bm.Quantize(x)
	if err != nil {
		b.Fatal(err)
	}
	const maxSamples = 16
	hours := make([]int, maxSamples)
	for i := range hours {
		hours[i] = i * 8
	}
	f := &benchFleet{
		bt:        bt,
		series:    make([]detect.BinnedSeries, benchDrives),
		failHours: make([]int, benchDrives),
	}
	for d := range f.series {
		m := 8 + rng.Intn(maxSamples-8+1)
		rows := make([][]uint8, m)
		for i := range rows {
			rows[i] = codes[rng.Intn(n)]
		}
		f.series[d] = detect.BinnedSeries{Codes: rows, Hours: hours[:m]}
		f.failHours[d] = -1
		if d%64 == 0 {
			f.failHours[d] = hours[m-1]
		}
		f.samples += m
	}
	return f
}

// BenchmarkFleetSweep measures the 1M-drive sweep. flat/workers=1 is the
// per-drive binned scan (detect.ScanBatchBinnedDirect — the path the
// sweep engine replaced for fleet-scale scans); tiled/workers=W is the
// sharded engine over a prepared fleet, so the timed region is pure scan:
// partition kernels plus alarm replay, quantization and tiling already
// paid. prepare prices that one-time packing. Msamples/s is fleet-scan
// throughput; outcomes are byte-identical across every variant.
func BenchmarkFleetSweep(b *testing.B) {
	f := buildBenchFleet(b)
	throughput := func(b *testing.B) {
		b.ReportMetric(float64(f.samples)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msamples/s")
	}
	det := &detect.VotingBinned{Model: f.bt, Voters: 3}
	b.Run("flat/workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			detect.ScanBatchBinnedDirect(det, f.series, f.failHours, 1)
		}
		throughput(b)
	})
	b.Run("prepare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PrepareBinned(f.series, 0); err != nil {
				b.Fatal(err)
			}
		}
		throughput(b)
	})
	fleet, err := PrepareBinned(f.series, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("tiled/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(f.bt, fleet, f.failHours, Config{Voters: 3, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			throughput(b)
		})
	}
}
