package sweep

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hddcart/internal/cart"
	"hddcart/internal/dataset"
	"hddcart/internal/detect"
)

// sweepFixture trains a small exact-compiled classifier and builds a
// fleet of series (with fail hours and dropped-record counts) on its
// feature space, mirroring the detect package's binned fixture. Drive
// lengths are drawn in [0, maxSamples], so small maxima also exercise
// empty drives.
func sweepFixture(t testing.TB, seed int64, drives, maxSamples int) (*cart.BinnedTree, *dataset.BinnedMatrix, []detect.Series, []detect.BinnedSeries, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n, nf = 800, 4
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, nf)
		for f := range row {
			row[f] = math.Floor(rng.Float64()*32) / 32
		}
		x[i] = row
		y[i] = 1
		if row[0]-row[1] > 0.2 {
			y[i] = -1
		}
		if rng.Float64() < 0.08 {
			y[i] = -y[i]
		}
	}
	tree, err := cart.TrainClassifier(x, y, nil, cart.Params{LossFA: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := dataset.BinMatrix(x, 32)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := tree.Compile().CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	series := make([]detect.Series, drives)
	failHours := make([]int, drives)
	binned := make([]detect.BinnedSeries, drives)
	for d := range series {
		m := rng.Intn(maxSamples + 1)
		s := detect.Series{X: make([][]float64, m), Hours: make([]int, m)}
		for i := range s.X {
			s.X[i] = x[rng.Intn(len(x))]
			s.Hours[i] = i * 8
		}
		if rng.Float64() < 0.3 {
			s.Dropped = 1 + rng.Intn(4)
		}
		series[d] = s
		failHours[d] = -1
		if m > 0 && rng.Float64() < 0.25 {
			failHours[d] = (m - 1) * 8
		}
		bs, err := detect.QuantizeSeries(bm, s)
		if err != nil {
			t.Fatal(err)
		}
		binned[d] = bs
	}
	return bt, bm, series, binned, failHours
}

// TestSweepMatchesDirectScan is the engine's correctness anchor: for
// both detector families and either preparation path, sweep outcomes
// must equal the per-drive direct scan's, drive for drive.
func TestSweepMatchesDirectScan(t *testing.T) {
	bt, bm, series, binned, failHours := sweepFixture(t, 7, 60, 900)
	for _, voters := range []int{1, 3, 7} {
		vd := &detect.VotingBinned{Model: bt, Voters: voters}
		want := detect.ScanBatchBinnedDirect(vd, binned, failHours, 1)
		res, err := SweepFleetBinned(bt, binned, failHours, Config{Voters: voters, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Outcomes, want) {
			t.Fatalf("voters=%d: voting sweep diverged from direct scan", voters)
		}

		md := &detect.MeanThresholdBinned{Model: bt, Voters: voters, Threshold: -0.1}
		wantM := detect.ScanBatchBinnedDirect(md, binned, failHours, 1)
		resM, err := SweepFleetBinned(bt, binned, failHours,
			Config{Voters: voters, Threshold: -0.1, Mean: true, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resM.Outcomes, wantM) {
			t.Fatalf("voters=%d: mean sweep diverged from direct scan", voters)
		}
	}
	// The float path (Prepare quantizes inside the engine) must land on
	// the same codes, hence the same outcomes.
	fleet, err := Prepare(bm, series, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(bt, fleet, failHours, Config{Voters: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := detect.ScanBatchBinnedDirect(&detect.VotingBinned{Model: bt, Voters: 3}, binned, failHours, 1)
	if !reflect.DeepEqual(res.Outcomes, want) {
		t.Fatal("float-prepared sweep diverged from direct scan")
	}
}

// TestSweepDeterminismMatrix pins the collection contract: outcomes and
// merged stats (Steals aside) are byte-identical for every worker count
// and, outcomes-wise, every shard count; per-shard stats are identical
// for every worker count at a fixed shard count.
func TestSweepDeterminismMatrix(t *testing.T) {
	bt, _, _, binned, failHours := sweepFixture(t, 11, 80, 700)
	var refOut []detect.Outcome
	var refTotal Stats
	for _, shards := range []int{1, 4, 16} {
		fleet, err := PrepareBinned(binned, shards)
		if err != nil {
			t.Fatal(err)
		}
		var refShards []Stats
		for _, workers := range []int{1, 2, 4, 8} {
			res, err := Run(bt, fleet, failHours, Config{Voters: 3, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Shards) != shards {
				t.Fatalf("shards=%d: got %d stat groups", shards, len(res.Shards))
			}
			if refOut == nil {
				refOut = res.Outcomes
				refTotal = res.Total.Canon()
			}
			if !reflect.DeepEqual(res.Outcomes, refOut) {
				t.Fatalf("shards=%d workers=%d: outcomes diverged from reference", shards, workers)
			}
			if res.Total.Canon() != refTotal {
				t.Fatalf("shards=%d workers=%d: total stats %+v, want %+v",
					shards, workers, res.Total.Canon(), refTotal)
			}
			snap := make([]Stats, len(res.Shards))
			for i, s := range res.Shards {
				snap[i] = s.Canon()
			}
			if refShards == nil {
				refShards = snap
			} else if !reflect.DeepEqual(snap, refShards) {
				t.Fatalf("shards=%d workers=%d: per-shard stats moved across worker counts", shards, workers)
			}
		}
	}
}

// TestSweepStats checks the merged counters against ground truth the
// test can compute independently. The fixture model never scores NaN, so
// NaNExcluded must equal the sum of upstream dropped-record counts.
func TestSweepStats(t *testing.T) {
	bt, _, _, binned, failHours := sweepFixture(t, 13, 50, 600)
	res, err := SweepFleetBinned(bt, binned, failHours, Config{Voters: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var samples, dropped, alarms int64
	for i := range binned {
		samples += int64(len(binned[i].Codes))
		dropped += int64(binned[i].Dropped)
	}
	for _, o := range res.Outcomes {
		if o.Alarmed {
			alarms++
		}
	}
	if res.Total.Drives != int64(len(binned)) {
		t.Fatalf("Drives = %d, want %d", res.Total.Drives, len(binned))
	}
	if res.Total.Samples != samples {
		t.Fatalf("Samples = %d, want %d", res.Total.Samples, samples)
	}
	if res.Total.NaNExcluded != dropped {
		t.Fatalf("NaNExcluded = %d, want %d", res.Total.NaNExcluded, dropped)
	}
	if res.Total.Alarms != alarms {
		t.Fatalf("Alarms = %d, want %d (from outcomes)", res.Total.Alarms, alarms)
	}
	if alarms == 0 {
		t.Fatal("fixture produced no alarms; stats check is vacuous")
	}
	// One worker on one shard never leaves home.
	one, err := SweepFleetBinned(bt, binned, failHours, Config{Voters: 3, Shards: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Total.Steals != 0 {
		t.Fatalf("1 worker × 1 shard recorded %d steals", one.Total.Steals)
	}
}

// TestScanDelegate covers the detect-facing adapter directly: it must
// accept both binned detector families, reproduce the direct scan, and
// decline models without a tiled path.
func TestScanDelegate(t *testing.T) {
	bt, _, _, binned, failHours := sweepFixture(t, 17, 40, 300)
	vd := &detect.VotingBinned{Model: bt, Voters: 3}
	out, ok := scanDelegate(vd, binned, failHours, 2)
	if !ok {
		t.Fatal("delegate declined a VotingBinned over a tiled-capable model")
	}
	if want := detect.ScanBatchBinnedDirect(vd, binned, failHours, 1); !reflect.DeepEqual(out, want) {
		t.Fatal("delegated voting scan diverged from direct scan")
	}
	md := &detect.MeanThresholdBinned{Model: bt, Voters: 5, Threshold: -0.1}
	out, ok = scanDelegate(md, binned, failHours, 2)
	if !ok {
		t.Fatal("delegate declined a MeanThresholdBinned over a tiled-capable model")
	}
	if want := detect.ScanBatchBinnedDirect(md, binned, failHours, 1); !reflect.DeepEqual(out, want) {
		t.Fatal("delegated mean scan diverged from direct scan")
	}
	if _, ok := scanDelegate(noTileDetector{}, binned, failHours, 1); ok {
		t.Fatal("delegate accepted an unknown detector type")
	}
}

// noTileDetector is a BinnedDetector the delegate has no tiled path for.
type noTileDetector struct{}

func (noTileDetector) Detect([][]uint8) int { return -1 }

// TestSweepDelegationEndToEnd drives a fleet past SweepDelegateMin
// through detect.ScanBatchBinned, so the init-registered sweeper takes
// the scan, and checks it equals the per-drive direct path.
func TestSweepDelegationEndToEnd(t *testing.T) {
	bt, _, _, binned, _ := sweepFixture(t, 19, 30, 40)
	big := make([]detect.BinnedSeries, detect.SweepDelegateMin+5)
	failHours := make([]int, len(big))
	for i := range big {
		big[i] = binned[i%len(binned)]
		failHours[i] = -1
		if i%7 == 0 && len(big[i].Hours) > 0 {
			failHours[i] = big[i].Hours[len(big[i].Hours)-1]
		}
	}
	vd := &detect.VotingBinned{Model: bt, Voters: 3}
	want := detect.ScanBatchBinnedDirect(vd, big, failHours, 1)
	got := detect.ScanBatchBinned(vd, big, failHours, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("delegated ScanBatchBinned diverged from the direct path")
	}
}

// TestSweepEdgeCases: empty fleets, all-empty drives, and a single
// drive must all produce well-formed results.
func TestSweepEdgeCases(t *testing.T) {
	bt, _, _, binned, failHours := sweepFixture(t, 23, 8, 120)
	res, err := SweepFleetBinned(bt, nil, nil, Config{Voters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 0 || res.Total != (Stats{}) {
		t.Fatalf("empty fleet: %d outcomes, total %+v", len(res.Outcomes), res.Total)
	}
	empty := make([]detect.BinnedSeries, 5)
	res, err = SweepFleetBinned(bt, empty, nil, Config{Voters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 5 || res.Total.Drives != 5 || res.Total.Samples != 0 {
		t.Fatalf("all-empty drives: %d outcomes, total %+v", len(res.Outcomes), res.Total)
	}
	for i, o := range res.Outcomes {
		if o.Alarmed {
			t.Fatalf("empty drive %d alarmed", i)
		}
	}
	one, err := SweepFleetBinned(bt, binned[:1], failHours[:1], Config{Voters: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := detect.ScanBatchBinnedDirect(&detect.VotingBinned{Model: bt, Voters: 3}, binned[:1], failHours[:1], 1)
	if !reflect.DeepEqual(one.Outcomes, want) {
		t.Fatal("single-drive sweep diverged from direct scan")
	}
}

// TestFleetReuse: a prepared Fleet serves repeated Runs — different
// configs in between must not leak state into a repeat of the first.
func TestFleetReuse(t *testing.T) {
	bt, _, _, binned, failHours := sweepFixture(t, 29, 40, 500)
	fleet, err := PrepareBinned(binned, 4)
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	for i := range binned {
		rows += len(binned[i].Codes)
	}
	if fleet.NumDrives() != len(binned) || fleet.NumRows() != rows || fleet.NumShards() != 4 {
		t.Fatalf("fleet accessors: drives=%d rows=%d shards=%d",
			fleet.NumDrives(), fleet.NumRows(), fleet.NumShards())
	}
	first, err := Run(bt, fleet, failHours, Config{Voters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(bt, fleet, failHours, Config{Voters: 9, Threshold: -0.1, Mean: true}); err != nil {
		t.Fatal(err)
	}
	again, err := Run(bt, fleet, failHours, Config{Voters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Outcomes, first.Outcomes) || again.Total.Canon() != first.Total.Canon() {
		t.Fatal("repeat Run on a reused Fleet diverged from the first")
	}
}

// TestSweepErrors walks the validation surface of Prepare/PrepareBinned
// and Run.
func TestSweepErrors(t *testing.T) {
	bt, bm, series, binned, failHours := sweepFixture(t, 31, 6, 50)
	if _, err := Prepare(nil, series, 0); err == nil {
		t.Error("Prepare accepted a nil matrix")
	}
	short := []detect.Series{{X: [][]float64{{1}}}}
	if _, err := Prepare(bm, short, 0); err == nil {
		t.Error("Prepare accepted a short feature row")
	}
	if _, err := Prepare(bm, series, -1); err == nil {
		t.Error("Prepare accepted a negative shard count")
	}
	ragged := []detect.BinnedSeries{{Codes: [][]uint8{{1, 2}, {3}}}}
	if _, err := PrepareBinned(ragged, 0); err == nil {
		t.Error("PrepareBinned accepted ragged code rows")
	}
	fleet, err := PrepareBinned(binned, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nil, fleet, failHours, Config{}); err == nil {
		t.Error("Run accepted a nil model")
	}
	if _, err := Run(bt, nil, failHours, Config{}); err == nil {
		t.Error("Run accepted a nil fleet")
	}
	if _, err := Run(bt, fleet, failHours[:3], Config{}); err == nil {
		t.Error("Run accepted a mis-sized failHours")
	}
	if _, err := Run(bt, fleet, failHours, Config{Threshold: math.NaN()}); err == nil {
		t.Error("Run accepted a NaN threshold")
	}
	if _, err := Run(bt, fleet, failHours, Config{Threshold: 1.5}); err == nil {
		t.Error("Run accepted a threshold outside [-1, 1]")
	}
	if _, err := Run(bt, fleet, failHours, Config{Workers: -2}); err == nil {
		t.Error("Run accepted negative workers")
	}
}
