package sweep

import "hddcart/internal/detect"

// Importing this package (directly, or through the root facade or
// hddpred) turns on fleet-sweep delegation: detect.ScanBatchBinned hands
// fleets of detect.SweepDelegateMin drives and more to the sharded tiled
// engine whenever the detector is one this engine can replay exactly.
func init() {
	detect.RegisterFleetSweeper(scanDelegate)
}

// scanDelegate adapts a ScanBatchBinned call onto Run. It accepts only
// the detectors whose window sweeps this engine replays bit-identically
// (VotingBinned, MeanThresholdBinned) over models that expose the tiled
// kernels; anything else declines and the caller takes the direct
// per-drive path. Preparation or run errors also decline — delegation
// must never fail a scan the direct path could serve.
func scanDelegate(d detect.BinnedDetector, series []detect.BinnedSeries,
	failHours []int, workers int) ([]detect.Outcome, bool) {
	var model TiledPredictor
	var cfg Config
	switch det := d.(type) {
	case *detect.VotingBinned:
		tp, ok := det.Model.(TiledPredictor)
		if !ok {
			return nil, false
		}
		model = tp
		cfg = Config{Voters: det.Voters, Threshold: det.Threshold}
	case *detect.MeanThresholdBinned:
		tp, ok := det.Model.(TiledPredictor)
		if !ok {
			return nil, false
		}
		model = tp
		cfg = Config{Voters: det.Voters, Threshold: det.Threshold, Mean: true}
	default:
		return nil, false
	}
	cfg.Workers = max(1, workers)
	fleet, err := PrepareBinned(series, 0)
	if err != nil {
		return nil, false
	}
	res, err := Run(model, fleet, failHours, cfg)
	if err != nil {
		return nil, false
	}
	return res.Outcomes, true
}
