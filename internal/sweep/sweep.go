// Package sweep is the fleet-sweep engine: it takes a compiled binned
// model plus the whole fleet's quantized series and drives a sharded,
// cache-conscious scan to completion. Three layers stack up:
//
//  1. Layout — every shard's rows are packed into one feature-major
//     dataset.TiledMatrix, so the tree kernels read each split feature
//     as a straight byte run (cart.BinnedTree.PredictTiledRange).
//  2. Scheduling — drives are serial-hashed into P shards; each shard
//     owns a bounded queue of tile-granular work items (whole-drive
//     ranges of ~itemTiles tiles) drained by an atomic cursor. Workers
//     start on their home shard and steal from the others once it runs
//     dry, with per-worker pooled scratch so the steady state is
//     allocation-free.
//  3. Collection — outcomes land at drive-owned indexes and per-shard
//     stats are commutative sums merged in shard order, so the result is
//     byte-identical for every worker count and, outcomes-wise, every
//     shard count. The internal/equiv matrices and the determinism
//     matrix test pin this.
//
// Unlike the per-drive scan (detect.ScanBatchBinned's direct path), a
// sweep scores every sample of every drive — there is no early-exit on
// alarm — and then replays the shared NaN-excluding window sweeps
// (detect.VoteAlarm / detect.MeanAlarm) over each drive's score segment,
// which yields exactly the same alarm indexes. Fleets are overwhelmingly
// healthy, so the work lost to scoring past an alarm is tiny next to the
// locality won by never leaving a tile.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"hddcart/internal/cpu"
	"hddcart/internal/dataset"
	"hddcart/internal/detect"
)

// TiledPredictor scores rows [lo, hi) of a feature-major tiled code
// matrix into dst[:hi-lo]. cart.BinnedTree, forest.Binned and
// boost.Binned implement it, each bit-identical to its PredictBatch on
// the same rows — the contract that makes sweep outcomes equal the
// per-drive scan's.
type TiledPredictor interface {
	PredictTiledRange(tm *dataset.TiledMatrix, lo, hi int, dst []float64)
}

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 16

// itemTiles sets work-item granularity: an item spans whole drives
// totalling about this many tiles of rows. Big enough to amortize the
// claim (one atomic bump per ~itemTiles·TileRows samples), small enough
// that stealing keeps every worker busy to the end of the sweep.
const itemTiles = 4

// Config parameterizes one sweep.
type Config struct {
	// Voters is N, the detection window (values < 1 behave as 1, as the
	// detectors do).
	Voters int
	// Threshold is the per-sample vote cut (voting) or the alarm cut on
	// the window mean (Mean). Must lie in [-1, 1], as the detectors
	// require.
	Threshold float64
	// Mean selects the health-degree (mean-threshold) sweep instead of
	// the voting sweep.
	Mean bool
	// Shards is P, the shard count (0 = DefaultShards). Outcomes are
	// identical for every value; only the per-shard stats grouping moves.
	Shards int
	// Workers caps the scan goroutines (0 = GOMAXPROCS). Results are
	// identical for every value.
	Workers int
}

// Stats counts one shard's (or the whole sweep's) work. All fields
// except Steals are deterministic: a drive's contribution always lands
// in its serial-hashed shard, whatever worker scanned it. Steals counts
// work items claimed by non-home workers and depends on goroutine
// timing — it is a load-balance diagnostic, excluded from the
// determinism guarantee.
type Stats struct {
	// Drives is the number of drives scanned.
	Drives int64
	// Alarms is the number of drives whose outcome alarmed.
	Alarms int64
	// Samples is the number of samples scored (a sweep scores whole
	// series; there is no early exit).
	Samples int64
	// NaNExcluded counts samples excluded from window arithmetic: rows
	// dropped upstream of the series (BinnedSeries.Dropped) plus NaN
	// scores the window sweeps skipped.
	NaNExcluded int64
	// Steals counts work items executed by workers away from their home
	// shard. Nondeterministic; see the type comment.
	Steals int64
}

// add folds o into s.
func (s *Stats) add(o Stats) {
	s.Drives += o.Drives
	s.Alarms += o.Alarms
	s.Samples += o.Samples
	s.NaNExcluded += o.NaNExcluded
	s.Steals += o.Steals
}

// Canon returns the stats with the nondeterministic Steals counter
// zeroed — the canonical form covered by the determinism guarantee.
// Comparisons of sweep results across worker counts, shard layouts, or
// snapshot/restore cycles should compare Canon() values; comparing raw
// Stats asserts goroutine scheduling, which no API promises.
func (s Stats) Canon() Stats {
	s.Steals = 0
	return s
}

// Result is one sweep's output.
type Result struct {
	// Outcomes holds each drive's outcome at its own index — identical
	// for every worker and shard count.
	Outcomes []detect.Outcome
	// Shards holds per-shard stats in shard order.
	Shards []Stats
	// Total is the fold of Shards in shard order.
	Total Stats
	// Kernel names the partition-kernel tier the sweep's scoring ran on
	// ("scalar", "swar" or "avx2") — diagnostic only; every tier is
	// bit-identical, so Outcomes and the deterministic stats never vary
	// with it.
	Kernel string
}

// driveRef locates one drive inside its shard.
type driveRef struct {
	// index is the drive's fleet-wide index (its Outcomes slot).
	index int32
	// rowLo, rowHi is the drive's row range in the shard's tiled matrix.
	rowLo, rowHi int32
	// dropped carries the source series' dropped-record count.
	dropped int32
	// hours are the drive's sample hours.
	hours []int
}

// workItem is one claimable unit: a whole-drive range of a shard.
type workItem struct {
	driveLo, driveHi int32
	rowLo, rowHi     int32
}

// shardStats is the concurrently-bumped form of Stats.
type shardStats struct {
	drives, alarms, samples, nan, steals atomic.Int64
}

func (s *shardStats) snapshot() Stats {
	return Stats{
		Drives:      s.drives.Load(),
		Alarms:      s.alarms.Load(),
		Samples:     s.samples.Load(),
		NaNExcluded: s.nan.Load(),
		Steals:      s.steals.Load(),
	}
}

func (s *shardStats) reset() {
	s.drives.Store(0)
	s.alarms.Store(0)
	s.samples.Store(0)
	s.nan.Store(0)
	s.steals.Store(0)
}

// shard owns one partition of the fleet: its tiled code matrix, its
// drives in fleet order, and its bounded work queue (a fixed item array
// drained by the atomic cursor).
type shard struct {
	tiles  *dataset.TiledMatrix
	drives []driveRef
	items  []workItem
	next   atomic.Int64
	stats  shardStats
}

// Fleet is a prepared (sharded, tiled) fleet, reusable across Run calls
// — prepare once, sweep per model or per threshold.
type Fleet struct {
	shards      []*shard
	numDrives   int
	numFeatures int
	numRows     int
}

// NumDrives returns the fleet size.
func (f *Fleet) NumDrives() int { return f.numDrives }

// NumRows returns the total sample count across the fleet.
func (f *Fleet) NumRows() int { return f.numRows }

// NumShards returns P.
func (f *Fleet) NumShards() int { return len(f.shards) }

// shardOf serial-hashes a drive index onto one of p shards (splitmix64
// finalizer), so shard membership is a pure function of the index —
// stable across runs, independent of worker scheduling.
func shardOf(drive, p int) int {
	z := uint64(drive) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(p))
}

// resolveShards validates and defaults a Config shard count.
func resolveShards(shards int) (int, error) {
	if shards < 0 {
		return 0, fmt.Errorf("sweep: shard count must be non-negative, got %d", shards)
	}
	if shards == 0 {
		return DefaultShards, nil
	}
	return shards, nil
}

// Prepare quantizes every drive's series onto bm's code space and packs
// the fleet into per-shard feature-major tiled matrices — the sweep's
// "quantize" phase, paid once per Fleet rather than once per drive per
// scan. shards is P (0 = DefaultShards).
func Prepare(bm *dataset.BinnedMatrix, series []detect.Series, shards int) (*Fleet, error) {
	if bm == nil {
		return nil, errors.New("sweep: Prepare needs a binned matrix")
	}
	if bm.NumFeatures < 1 {
		return nil, errors.New("sweep: Prepare needs a matrix with at least one feature")
	}
	p, err := resolveShards(shards)
	if err != nil {
		return nil, err
	}
	nf := bm.NumFeatures
	for di := range series {
		for ri, row := range series[di].X {
			if len(row) < nf {
				return nil, fmt.Errorf("sweep: drive %d row %d has %d of %d features",
					di, ri, len(row), nf)
			}
		}
	}
	var fleet *Fleet
	pprof.Do(context.Background(), pprof.Labels("sweep_phase", "quantize"), func(context.Context) {
		fleet, err = assemble(p, nf, len(series),
			func(i int) int { return len(series[i].X) },
			func(i int) (hours []int, dropped int) { return series[i].Hours, series[i].Dropped },
			func(i int, tm *dataset.TiledMatrix, rowAt int, scratch []uint8) {
				for _, x := range series[i].X {
					bm.QuantizeRow(x, scratch)
					tm.SetRow(rowAt, scratch)
					rowAt++
				}
			})
	})
	return fleet, err
}

// PrepareBinned packs an already-quantized fleet (detect.QuantizeSeries
// or detect.QuantizeFleet output) into per-shard tiled matrices. Every
// code row must have the same width.
func PrepareBinned(series []detect.BinnedSeries, shards int) (*Fleet, error) {
	p, err := resolveShards(shards)
	if err != nil {
		return nil, err
	}
	nf := 0
	for di := range series {
		if len(series[di].Codes) > 0 {
			nf = len(series[di].Codes[0])
			break
		}
	}
	if nf < 1 {
		nf = 1 // no rows anywhere: width is arbitrary, tiles stay empty
	}
	for di := range series {
		for ri, row := range series[di].Codes {
			if len(row) != nf {
				return nil, fmt.Errorf("sweep: drive %d row %d has %d codes, want %d",
					di, ri, len(row), nf)
			}
		}
	}
	var fleet *Fleet
	pprof.Do(context.Background(), pprof.Labels("sweep_phase", "quantize"), func(context.Context) {
		fleet, err = assemble(p, nf, len(series),
			func(i int) int { return len(series[i].Codes) },
			func(i int) (hours []int, dropped int) { return series[i].Hours, series[i].Dropped },
			func(i int, tm *dataset.TiledMatrix, rowAt int, _ []uint8) {
				for _, row := range series[i].Codes {
					tm.SetRow(rowAt, row)
					rowAt++
				}
			})
	})
	return fleet, err
}

// assemble builds the sharded fleet: shard membership by serial hash,
// rows packed in fleet order within each shard, work items cut at drive
// boundaries every ~itemTiles tiles. Deterministic: a pure function of
// the fleet and P.
func assemble(p, nf, n int,
	rowsOf func(i int) int,
	meta func(i int) (hours []int, dropped int),
	fill func(i int, tm *dataset.TiledMatrix, rowAt int, scratch []uint8),
) (*Fleet, error) {
	f := &Fleet{shards: make([]*shard, p), numDrives: n, numFeatures: nf}
	rows := make([]int, p)
	drives := make([]int, p)
	for i := 0; i < n; i++ {
		s := shardOf(i, p)
		rows[s] += rowsOf(i)
		drives[s]++
		f.numRows += rowsOf(i)
	}
	for s := 0; s < p; s++ {
		tm, err := dataset.NewTiledMatrix(rows[s], nf)
		if err != nil {
			return nil, err
		}
		f.shards[s] = &shard{tiles: tm, drives: make([]driveRef, 0, drives[s])}
	}
	scratch := make([]uint8, nf)
	cursor := make([]int, p)
	for i := 0; i < n; i++ {
		si := shardOf(i, p)
		s := f.shards[si]
		nr := rowsOf(i)
		lo := cursor[si]
		fill(i, s.tiles, lo, scratch)
		cursor[si] = lo + nr
		hours, dropped := meta(i)
		s.drives = append(s.drives, driveRef{
			index: int32(i), rowLo: int32(lo), rowHi: int32(lo + nr),
			dropped: int32(dropped), hours: hours,
		})
	}
	target := itemTiles * dataset.TileRows
	for _, s := range f.shards {
		dlo := 0
		for dlo < len(s.drives) {
			dhi := dlo
			rlo := s.drives[dlo].rowLo
			for dhi < len(s.drives) && int(s.drives[dhi].rowHi-rlo) < target {
				dhi++
			}
			if dhi < len(s.drives) {
				dhi++ // the drive that crossed the target closes the item
			}
			s.items = append(s.items, workItem{
				driveLo: int32(dlo), driveHi: int32(dhi),
				rowLo: rlo, rowHi: s.drives[dhi-1].rowHi,
			})
			dlo = dhi
		}
	}
	return f, nil
}

// scratch is one worker's reusable score buffer.
type scratch struct {
	scores []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Run sweeps a prepared fleet with the given model and returns outcomes
// plus per-shard stats. failHours[i] is drive i's failure instant (-1 or
// a nil slice for good drives). The same Fleet can be Run concurrently
// or repeatedly; per-run state lives in the Result and in the shard
// cursors, which Run resets up front.
//
// Run must not be invoked concurrently on one Fleet (the cursors are
// shared); sweeps of different Fleets are independent.
func Run(model TiledPredictor, fleet *Fleet, failHours []int, cfg Config) (*Result, error) {
	if model == nil {
		return nil, errors.New("sweep: Run needs a model")
	}
	if fleet == nil {
		return nil, errors.New("sweep: Run needs a prepared fleet")
	}
	if failHours != nil && len(failHours) != fleet.numDrives {
		return nil, fmt.Errorf("sweep: %d failHours for %d drives", len(failHours), fleet.numDrives)
	}
	if math.IsNaN(cfg.Threshold) || cfg.Threshold < -1 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("sweep: threshold %v outside [-1, 1]", cfg.Threshold)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("sweep: workers must be non-negative, got %d", cfg.Workers)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	voters := cfg.Voters
	if voters < 1 {
		voters = 1
	}
	for _, s := range fleet.shards {
		s.next.Store(0)
		s.stats.reset()
	}
	out := make([]detect.Outcome, fleet.numDrives)
	// The kernel label distinguishes profiles of the same phase taken
	// under different dispatch tiers (HDDPRED_KERNELS sets the tier).
	kern := cpu.Active().String()
	var wg sync.WaitGroup
	pprof.Do(context.Background(), pprof.Labels("sweep_phase", "partition", "kernel", kern), func(context.Context) {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(home int) {
				defer wg.Done()
				runWorker(fleet, home, model, out, failHours, voters, cfg.Threshold, cfg.Mean)
			}(w)
		}
		wg.Wait()
	})
	res := &Result{Outcomes: out, Shards: make([]Stats, len(fleet.shards)), Kernel: kern}
	pprof.Do(context.Background(), pprof.Labels("sweep_phase", "alarm-merge", "kernel", kern), func(context.Context) {
		for i, s := range fleet.shards {
			res.Shards[i] = s.stats.snapshot()
			res.Total.add(res.Shards[i])
		}
	})
	return res, nil
}

// runWorker drains the worker's home shard, then steals from the other
// shards in rotation until no items remain anywhere.
func runWorker(f *Fleet, w int, model TiledPredictor, out []detect.Outcome,
	failHours []int, voters int, threshold float64, mean bool) {
	sc := scratchPool.Get().(*scratch)
	p := len(f.shards)
	home := w % p
	for k := 0; k < p; k++ {
		s := f.shards[(home+k)%p]
		for {
			i := int(s.next.Add(1)) - 1
			if i >= len(s.items) {
				break
			}
			if k > 0 {
				s.stats.steals.Add(1)
			}
			runItem(model, s, &s.items[i], sc, out, failHours, voters, threshold, mean)
		}
	}
	scratchPool.Put(sc)
}

// runItem scores one work item's row range through the tiled kernels,
// then replays the shared window sweep over each drive's score segment
// and writes the outcome at the drive's own index. Stats accumulate
// locally and land on the item's (deterministic) shard in one batch of
// atomic adds.
//
//hddlint:noalloc
func runItem(model TiledPredictor, s *shard, it *workItem, sc *scratch,
	out []detect.Outcome, failHours []int, voters int, threshold float64, mean bool) {
	n := int(it.rowHi - it.rowLo)
	if cap(sc.scores) < n {
		//hddlint:ignore hotalloc cold path: pooled worker scratch grows to the largest item once, then every item reuses it
		sc.scores = make([]float64, n)
	}
	scores := sc.scores[:n]
	if n > 0 {
		model.PredictTiledRange(s.tiles, int(it.rowLo), int(it.rowHi), scores)
	}
	var drives, alarms, samples, nan int64
	for di := it.driveLo; di < it.driveHi; di++ {
		d := &s.drives[di]
		seg := scores[d.rowLo-it.rowLo : d.rowHi-it.rowLo]
		var idx, excl int
		if mean {
			idx, excl = detect.MeanAlarm(seg, voters, threshold)
		} else {
			idx, excl = detect.VoteAlarm(seg, voters, threshold)
		}
		fh := -1
		if failHours != nil {
			fh = failHours[d.index]
		}
		o := detect.AlarmOutcome(d.hours, idx, fh)
		out[d.index] = o
		drives++
		samples += int64(len(seg))
		nan += int64(excl) + int64(d.dropped)
		if o.Alarmed {
			alarms++
		}
	}
	s.stats.drives.Add(drives)
	s.stats.alarms.Add(alarms)
	s.stats.samples.Add(samples)
	s.stats.nan.Add(nan)
}

// SweepFleet prepares and runs a sweep over float series in one call:
// quantize once (Prepare), then scan. Use Prepare + Run directly to
// amortize preparation across several sweeps of the same fleet.
func SweepFleet(model TiledPredictor, bm *dataset.BinnedMatrix, series []detect.Series,
	failHours []int, cfg Config) (*Result, error) {
	fleet, err := Prepare(bm, series, cfg.Shards)
	if err != nil {
		return nil, err
	}
	return Run(model, fleet, failHours, cfg)
}

// SweepFleetBinned is SweepFleet over already-quantized series.
func SweepFleetBinned(model TiledPredictor, series []detect.BinnedSeries,
	failHours []int, cfg Config) (*Result, error) {
	fleet, err := PrepareBinned(series, cfg.Shards)
	if err != nil {
		return nil, err
	}
	return Run(model, fleet, failHours, cfg)
}
