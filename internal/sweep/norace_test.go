//go:build !race

package sweep

// raceEnabled mirrors race_test.go for regular builds.
const raceEnabled = false
