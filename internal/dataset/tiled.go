package dataset

import "fmt"

// TileRows is T, the fixed tile height of a TiledMatrix. One feature's
// codes within a tile occupy TileRows consecutive bytes — 256 bytes =
// four cache lines — so a partition kernel visiting a node reads a short
// straight byte run instead of striding NumFeatures bytes apart across
// the whole block. 256 also keeps a tile's per-sample index buffers
// (int32) inside the compiled engine's existing 1024-sample scratch.
const TileRows = 256

// TiledMatrix is the feature-major tiled layout of a quantized code
// matrix: rows are grouped into tiles of TileRows consecutive rows, and
// within a tile each feature's codes sit contiguously. The code of row i,
// feature f lives at
//
//	Data[(i/TileRows)*TileRows*NumFeatures + f*TileRows + i%TileRows]
//
// Row-major layouts (BinnedMatrix.Quantize) make one *row* contiguous —
// right for scoring a sample through all features. The tiled layout makes
// one *feature column* contiguous per tile — right for the partitioned
// batch traversal, whose per-node kernel reads a single feature for every
// sample in the block — and, being a straight byte run, is exactly the
// shape the SIMD compare-and-compress partition tiers (SWAR 8-wide,
// AVX2 16-wide; see cart's partition_*.go) consume with full-width
// loads. The tail tile is allocated in full and zero-padded; kernels
// only ever address rows below NumRows.
//
// A TiledMatrix is plain data: safe for concurrent readers once filled.
type TiledMatrix struct {
	// NumRows and NumFeatures give the logical matrix shape.
	NumRows, NumFeatures int
	// Data is the tiled backing, Tiles()*TileRows*NumFeatures bytes.
	Data []uint8
}

// NewTiledMatrix allocates a zeroed tiled matrix for the given shape.
func NewTiledMatrix(rows, features int) (*TiledMatrix, error) {
	if rows < 0 || features < 1 {
		return nil, fmt.Errorf("dataset: tiled matrix shape %d×%d invalid", rows, features)
	}
	tiles := (rows + TileRows - 1) / TileRows
	return &TiledMatrix{
		NumRows:     rows,
		NumFeatures: features,
		Data:        make([]uint8, tiles*TileRows*features),
	}, nil
}

// TileCodes builds a tiled matrix from row-major code rows (as produced
// by BinnedMatrix.Quantize). Every row must carry at least features
// codes; surplus trailing codes are ignored.
func TileCodes(rows [][]uint8, features int) (*TiledMatrix, error) {
	tm, err := NewTiledMatrix(len(rows), features)
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		if len(row) < features {
			return nil, fmt.Errorf("dataset: tiled row %d has %d of %d features", i, len(row), features)
		}
		tm.SetRow(i, row)
	}
	return tm, nil
}

// Tiles returns the tile count (including the padded tail tile).
func (tm *TiledMatrix) Tiles() int {
	return (tm.NumRows + TileRows - 1) / TileRows
}

// SetRow scatters one row's codes into the tiled layout. codes must hold
// at least NumFeatures entries and i must be below NumRows.
//
//hddlint:noalloc
func (tm *TiledMatrix) SetRow(i int, codes []uint8) {
	base := (i/TileRows)*TileRows*tm.NumFeatures + i%TileRows
	for f := 0; f < tm.NumFeatures; f++ {
		tm.Data[base+f*TileRows] = codes[f]
	}
}

// Code returns the code of row i, feature f.
func (tm *TiledMatrix) Code(i, f int) uint8 {
	return tm.Data[(i/TileRows)*TileRows*tm.NumFeatures+f*TileRows+i%TileRows]
}

// Row gathers row i back into row-major order, reusing dst when it is
// large enough — the inverse of SetRow, for tests and diagnostics.
func (tm *TiledMatrix) Row(i int, dst []uint8) []uint8 {
	if cap(dst) < tm.NumFeatures {
		dst = make([]uint8, tm.NumFeatures)
	}
	dst = dst[:tm.NumFeatures]
	base := (i/TileRows)*TileRows*tm.NumFeatures + i%TileRows
	for f := range dst {
		dst[f] = tm.Data[base+f*TileRows]
	}
	return dst
}
