// Package dataset assembles model-ready training samples and evaluation
// drives from raw SMART traces, following the paper's experimental setup
// (§V-A1): good drives contribute a few randomly chosen samples from the
// earlier 70% of a one-week observation window (and their later 30% as test
// data); failed drives are split 7:3 by drive, with the samples of the last
// n hours before failure used as failed training samples.
//
// The package is independent of how traces are produced: callers feed it
// per-drive record sequences (from the simulator, from CSV, or from a live
// collector).
package dataset

import (
	"errors"
	"fmt"
	"math/rand"

	"hddcart/internal/smart"
)

// Sample is one model input row.
type Sample struct {
	// Drive is the drive identifier the sample came from.
	Drive int
	// Hour is the absolute sample hour.
	Hour int
	// X is the feature vector (layout defined by the dataset's FeatureSet).
	X []float64
	// Failed is the ground-truth class of the originating drive.
	Failed bool
	// HoursToFail is the lead time before the drive's failure (0 = the
	// failure hour); -1 for good drives.
	HoursToFail int
	// Target is the training target: +1 for good and -1 for failed in
	// classification, or a health degree in [-1, +1] for regression.
	Target float64
	// Weight is the sample's training weight.
	Weight float64
}

// Dataset is a materialized training set.
type Dataset struct {
	// Features documents the layout of every sample's X.
	Features smart.FeatureSet
	// Samples holds the rows.
	Samples []Sample
}

// Counts returns the number of good and failed samples.
func (d *Dataset) Counts() (good, failed int) {
	for i := range d.Samples {
		if d.Samples[i].Failed {
			failed++
		} else {
			good++
		}
	}
	return good, failed
}

// Config controls training-set assembly.
type Config struct {
	// Features is the model input layout.
	Features smart.FeatureSet
	// PeriodStart/PeriodEnd bound (half-open, in hours) the good-sample
	// observation window — one week in most of the paper's experiments.
	PeriodStart, PeriodEnd int
	// GoodTrainFrac is the time fraction of the window used for
	// training (earlier part); the rest is test. Default 0.7.
	GoodTrainFrac float64
	// SamplesPerGoodDrive is the number of random training samples per
	// good drive. Default 3.
	SamplesPerGoodDrive int
	// FailedWindowHours is the failed-sample time window: samples within
	// the last n hours before failure become failed training samples.
	// Default 168 (the paper's best, Table IV).
	FailedWindowHours int
	// FailedSamplesPerDrive caps failed samples per drive, chosen evenly
	// across the window (the RT experiment uses 12); 0 means all.
	FailedSamplesPerDrive int
	// FailedTrainFrac is the by-drive train split of failed drives.
	// Default 0.7.
	FailedTrainFrac float64
	// FailedShare rebalances class weights so failed samples carry this
	// share of the total training weight (the paper boosts failed
	// samples to 20%). 0 disables reweighting (all weights 1).
	FailedShare float64
	// Seed drives the random sample picks and the failed-drive split.
	Seed int64
}

// withDefaults fills zero fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.GoodTrainFrac == 0 {
		c.GoodTrainFrac = 0.7
	}
	if c.SamplesPerGoodDrive == 0 {
		c.SamplesPerGoodDrive = 3
	}
	if c.FailedWindowHours == 0 {
		c.FailedWindowHours = 168
	}
	if c.FailedTrainFrac == 0 {
		c.FailedTrainFrac = 0.7
	}
	return c
}

// IsTrainFailedDrive reports whether the failed drive with the given ID
// belongs to the training split. The assignment is a deterministic hash of
// (seed, id), so streaming callers get a consistent split without
// coordinating drive lists.
func IsTrainFailedDrive(seed int64, id int, frac float64) bool {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(id)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return float64(h%10000) < frac*10000
}

// Builder incrementally assembles a training set from per-drive traces.
// Feed every drive once via AddGoodDrive / AddFailedDrive, then call
// Finalize.
type Builder struct {
	cfg  Config
	rng  *rand.Rand
	ds   Dataset
	done bool
}

// NewBuilder returns a Builder for the given configuration.
func NewBuilder(cfg Config) (*Builder, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Features) == 0 {
		return nil, errors.New("dataset: empty feature set")
	}
	if cfg.PeriodEnd <= cfg.PeriodStart {
		return nil, fmt.Errorf("dataset: bad period [%d,%d)", cfg.PeriodStart, cfg.PeriodEnd)
	}
	if cfg.GoodTrainFrac <= 0 || cfg.GoodTrainFrac > 1 {
		return nil, fmt.Errorf("dataset: bad GoodTrainFrac %v", cfg.GoodTrainFrac)
	}
	if cfg.FailedShare < 0 || cfg.FailedShare >= 1 {
		return nil, fmt.Errorf("dataset: bad FailedShare %v", cfg.FailedShare)
	}
	return &Builder{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		ds:  Dataset{Features: cfg.Features},
	}, nil
}

// TrainCutoff returns the hour splitting the observation window into
// training (before) and test (at or after) for good drives.
func (b *Builder) TrainCutoff() int {
	return TrainCutoff(b.cfg.PeriodStart, b.cfg.PeriodEnd, b.cfg.GoodTrainFrac)
}

// TrainCutoff returns the boundary hour of a [start,end) window split at
// the given time fraction.
func TrainCutoff(start, end int, frac float64) int {
	return start + int(float64(end-start)*frac)
}

// AddGoodDrive contributes SamplesPerGoodDrive random training samples from
// the training portion of the drive's records within the observation
// window. Records too early for the feature set's change-rate lookback are
// skipped. It returns the number of samples added.
func (b *Builder) AddGoodDrive(id int, trace []smart.Record) int {
	cutoff := b.TrainCutoff()
	// Candidate indices: records inside [PeriodStart, cutoff) that have
	// enough history for change rates.
	var candidates []int
	for i := range trace {
		h := trace[i].Hour
		if h < b.cfg.PeriodStart || h >= cutoff {
			continue
		}
		candidates = append(candidates, i)
	}
	if len(candidates) == 0 {
		return 0
	}
	// Paper: "randomly choose 3 samples per good drive ... to eliminate
	// the bias of a single drive's sample in a particular hour".
	b.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	added := 0
	for _, idx := range candidates {
		if added >= b.cfg.SamplesPerGoodDrive {
			break
		}
		x := make([]float64, len(b.cfg.Features))
		if !b.cfg.Features.Extract(trace, idx, x) {
			continue
		}
		b.ds.Samples = append(b.ds.Samples, Sample{
			Drive: id, Hour: trace[idx].Hour, X: x,
			Failed: false, HoursToFail: -1, Target: +1, Weight: 1,
		})
		added++
	}
	return added
}

// AddFailedDrive contributes the drive's failed training samples (those
// within FailedWindowHours of the failure instant) if the drive hashes into
// the training split; otherwise it contributes nothing. failHour is the
// failure instant. It returns the number of samples added.
func (b *Builder) AddFailedDrive(id, failHour int, trace []smart.Record) int {
	if !IsTrainFailedDrive(b.cfg.Seed, id, b.cfg.FailedTrainFrac) {
		return 0
	}
	return b.AddFailedTrainingDrive(id, failHour, trace)
}

// AddFailedTrainingDrive contributes a failed drive's window samples
// unconditionally (callers that manage their own split).
func (b *Builder) AddFailedTrainingDrive(id, failHour int, trace []smart.Record) int {
	return b.AddFailedDriveWindow(id, failHour, b.cfg.FailedWindowHours, trace)
}

// AddFailedDriveWindow is AddFailedTrainingDrive with an explicit per-drive
// window, used by the regression-tree pipeline whose deterioration windows
// are personalized (§III-B).
func (b *Builder) AddFailedDriveWindow(id, failHour, windowHours int, trace []smart.Record) int {
	var idxs []int
	for i := range trace {
		lead := failHour - trace[i].Hour
		if lead < 0 || lead > windowHours {
			continue
		}
		idxs = append(idxs, i)
	}
	if limit := b.cfg.FailedSamplesPerDrive; limit > 0 && len(idxs) > limit {
		idxs = pickEvenly(idxs, limit)
	}
	added := 0
	for _, idx := range idxs {
		x := make([]float64, len(b.cfg.Features))
		if !b.cfg.Features.Extract(trace, idx, x) {
			continue
		}
		b.ds.Samples = append(b.ds.Samples, Sample{
			Drive: id, Hour: trace[idx].Hour, X: x,
			Failed: true, HoursToFail: failHour - trace[idx].Hour,
			Target: -1, Weight: 1,
		})
		added++
	}
	return added
}

// pickEvenly selects k indices evenly spread across idxs.
func pickEvenly(idxs []int, k int) []int {
	if k >= len(idxs) {
		return idxs
	}
	out := make([]int, 0, k)
	step := float64(len(idxs)-1) / float64(k-1)
	prev := -1
	for i := 0; i < k; i++ {
		j := int(float64(i)*step + 0.5)
		if j == prev {
			continue
		}
		out = append(out, idxs[j])
		prev = j
	}
	return out
}

// Finalize applies class reweighting and returns the dataset. The builder
// must not be reused afterwards.
func (b *Builder) Finalize() (*Dataset, error) {
	if b.done {
		return nil, errors.New("dataset: Finalize called twice")
	}
	b.done = true
	if b.cfg.FailedShare > 0 {
		good, failed := b.ds.Counts()
		if failed > 0 && good > 0 {
			// Total good weight is `good`; give each failed sample
			// weight so that failed carries FailedShare of the total:
			// wf·failed = share/(1−share)·good.
			share := b.cfg.FailedShare
			wf := share / (1 - share) * float64(good) / float64(failed)
			for i := range b.ds.Samples {
				if b.ds.Samples[i].Failed {
					b.ds.Samples[i].Weight = wf
				}
			}
		}
	}
	return &b.ds, nil
}

// SetClassificationTargets resets every sample's target to the CT
// convention (+1 good, −1 failed).
func (d *Dataset) SetClassificationTargets() {
	for i := range d.Samples {
		if d.Samples[i].Failed {
			d.Samples[i].Target = -1
		} else {
			d.Samples[i].Target = +1
		}
	}
}

// SetHealthTargets sets regression targets per §III-B: good samples stay at
// +1; a failed sample i hours before failure gets h(i) = −1 + i/w, where w
// is the drive's personalized deterioration window from windows, falling
// back to defaultWindow for drives without one (the paper uses 24 h for
// drives the CT model missed). Targets are clipped to +1.
func (d *Dataset) SetHealthTargets(windows map[int]int, defaultWindow int) error {
	if defaultWindow <= 0 {
		return fmt.Errorf("dataset: bad default window %d", defaultWindow)
	}
	for i := range d.Samples {
		s := &d.Samples[i]
		if !s.Failed {
			s.Target = +1
			continue
		}
		w := defaultWindow
		if pw, ok := windows[s.Drive]; ok && pw > 0 {
			w = pw
		}
		h := -1 + float64(s.HoursToFail)/float64(w)
		if h > 1 {
			h = 1
		}
		s.Target = h
	}
	return nil
}

// XMatrix returns the samples' feature vectors, targets and weights as
// parallel slices, the layout the tree and ANN trainers consume. The
// returned slices alias the dataset's storage.
func (d *Dataset) XMatrix() (x [][]float64, y, w []float64) {
	x = make([][]float64, len(d.Samples))
	y = make([]float64, len(d.Samples))
	w = make([]float64, len(d.Samples))
	for i := range d.Samples {
		x[i] = d.Samples[i].X
		y[i] = d.Samples[i].Target
		w[i] = d.Samples[i].Weight
	}
	return x, y, w
}

// Subsample returns a new dataset containing every sample whose drive is in
// keep. It shares sample storage with d.
func (d *Dataset) Subsample(keep func(drive int) bool) *Dataset {
	out := &Dataset{Features: d.Features}
	for i := range d.Samples {
		if keep(d.Samples[i].Drive) {
			out.Samples = append(out.Samples, d.Samples[i])
		}
	}
	return out
}

// TestStart returns the index of the first record of trace that falls in
// the test portion (at or after the cutoff hour) of the [start,end) window,
// and the index one past the last. ok is false when the trace has no test
// records in the window.
func TestStart(trace []smart.Record, start, end int, frac float64) (from, to int, ok bool) {
	cutoff := TrainCutoff(start, end, frac)
	from, to = -1, len(trace)
	for i := range trace {
		h := trace[i].Hour
		if h >= end {
			to = i
			break
		}
		if from == -1 && h >= cutoff {
			from = i
		}
	}
	if from == -1 || from >= to {
		return 0, 0, false
	}
	return from, to, true
}
