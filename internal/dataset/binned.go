package dataset

import (
	"fmt"
	"math"
	"sort"
)

// MaxBinsLimit is the largest usable finite-bin count per feature: bin
// codes are uint8 and one code above the finite bins is reserved for
// NaN/missing values, so at most 255 finite bins plus the reserved bin
// fit the code space.
const MaxBinsLimit = 255

// BinnedColumn is one feature's quantized view: every sample's raw value
// replaced by a small bin code, plus the per-bin value bounds the
// histogram trainer needs to turn a bin boundary back into a split
// threshold.
//
// Finite values (including ±Inf, which order normally) occupy bins
// 0..NumBins-1 in increasing value order; NaN/missing values all carry
// the reserved code NumBins. Bin b covers the closed raw-value interval
// [Lower[b], Upper[b]], intervals are disjoint and increasing, and equal
// raw values always share a bin — a tie can never straddle a boundary.
type BinnedColumn struct {
	// Codes holds one bin code per sample, in sample order. Codes[i] is
	// in [0, NumBins], where NumBins is the reserved missing code.
	Codes []uint8
	// Lower and Upper bound the raw values mapped into each finite bin
	// (Lower[b] = Upper[b] for singleton bins).
	Lower, Upper []float64
	// NumBins is the finite-bin count (≤ the maxBins the column was
	// built with); it doubles as the reserved missing code.
	NumBins int
	// Missing reports whether any sample carried the reserved code.
	Missing bool
}

// MissingCode returns the reserved bin code for NaN/missing values.
func (c *BinnedColumn) MissingCode() uint8 { return uint8(c.NumBins) }

// EdgeBetween returns the split threshold separating finite bins a < b:
// the midpoint of the gap between a's largest and b's smallest raw value,
// computed exactly as the presorted exact path computes the midpoint
// between two consecutive distinct values. Samples with values ≤ Upper[a]
// compare < threshold (they go left); samples ≥ Lower[b] do not.
//
// Infinite bounds need care: the naive midpoint of −Inf and a finite (or
// +Inf) bound is NaN, and a NaN threshold mis-routes at inference (x < NaN
// is false for every x, sending the whole left bin right). When bin a is
// the −Inf bin the threshold is b's lower bound itself (−Inf < t holds,
// v ≥ Lower[b] < t does not); when both bounds are infinite any finite
// value separates and 0 is used. A +Inf right bound needs no special case:
// the midpoint is +Inf, and x < +Inf routes every finite value left.
func (c *BinnedColumn) EdgeBetween(a, b int) float64 {
	u, l := c.Upper[a], c.Lower[b]
	switch {
	case math.IsInf(u, -1) && math.IsInf(l, 1):
		return 0
	case math.IsInf(u, -1):
		return l
	}
	return u + (l-u)/2
}

// BinnedMatrix is the columnar quantized view of a feature matrix:
// one BinnedColumn per feature, all built over the same sample order.
// It is immutable after construction and safe for concurrent readers,
// which is what lets histogram training share one matrix across worker
// goroutines and across every node of a tree.
type BinnedMatrix struct {
	// NumSamples and NumFeatures record the source matrix shape.
	NumSamples, NumFeatures int
	// MaxBins is the finite-bin budget every column was built with.
	MaxBins int
	// Cols holds one quantized column per feature.
	Cols []BinnedColumn
}

// BinMatrix quantizes every column of x to at most maxBins finite bins
// (see BinColumn for the rule). The matrix must be non-empty and
// rectangular; maxBins must lie in [1, MaxBinsLimit].
func BinMatrix(x [][]float64, maxBins int) (*BinnedMatrix, error) {
	if maxBins < 1 || maxBins > MaxBinsLimit {
		return nil, fmt.Errorf("dataset: maxBins %d outside [1,%d]", maxBins, MaxBinsLimit)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("dataset: empty matrix")
	}
	nf := len(x[0])
	for i := range x {
		if len(x[i]) != nf {
			return nil, fmt.Errorf("dataset: ragged matrix at row %d", i)
		}
	}
	bm := &BinnedMatrix{NumSamples: len(x), NumFeatures: nf, MaxBins: maxBins, Cols: make([]BinnedColumn, nf)}
	for f := 0; f < nf; f++ {
		bm.Cols[f] = BinColumn(x, f, maxBins)
	}
	return bm, nil
}

// BinColumn quantizes feature f of x into at most maxBins finite bins
// plus the reserved missing bin. The rule is deterministic quantile
// binning: when the column has at most maxBins distinct finite values,
// every distinct value becomes its own singleton bin (so binned split
// search sees exactly the boundaries the exact path sees); otherwise bins
// absorb runs of equal values greedily until each holds roughly an equal
// share of the remaining samples, never splitting a run of ties across
// two bins. The result depends only on the column's multiset of values —
// never on sample order, worker count, or map iteration.
//
// Callers that parallelize across features may invoke BinColumn
// concurrently for different f; it only reads x.
func BinColumn(x [][]float64, f, maxBins int) BinnedColumn {
	n := len(x)
	col := BinnedColumn{Codes: make([]uint8, n)}
	// Sort the finite values (±Inf included: they order normally; only
	// NaN is unordered and goes to the reserved bin).
	vals := make([]float64, 0, n)
	for i := range x {
		if v := x[i][f]; !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	sort.Float64s(vals)

	if len(vals) > 0 {
		col.Lower, col.Upper = binBounds(vals, maxBins)
		col.NumBins = len(col.Upper)
	}
	missing := uint8(col.NumBins)
	for i := range x {
		v := x[i][f]
		if math.IsNaN(v) {
			col.Codes[i] = missing
			col.Missing = true
			continue
		}
		// The smallest bin whose upper bound covers v.
		col.Codes[i] = uint8(sort.SearchFloat64s(col.Upper, v))
	}
	return col
}

// binBounds derives the per-bin [lower, upper] value bounds from a sorted
// finite-value slice. When the slice holds at most maxBins distinct
// values every distinct value gets a singleton bin — the exactness fast
// path. Otherwise each bin's target share is recomputed as the ceiling of
// remaining-samples over remaining-bins, so early wide runs of ties
// cannot starve the later bins.
func binBounds(vals []float64, maxBins int) (lower, upper []float64) {
	n := len(vals)
	runs := 1
	for i := 1; i < n && runs <= maxBins; i++ {
		if distinct(vals[i-1], vals[i]) {
			runs++
		}
	}
	if runs <= maxBins {
		// Singleton bins: the binned split search sees exactly the
		// distinct-value boundaries the exact path sees.
		for i := 0; i < n; i++ {
			if i == 0 || distinct(vals[i-1], vals[i]) {
				lower = append(lower, vals[i])
				upper = append(upper, vals[i])
			}
		}
		return lower, upper
	}
	i := 0
	for b := 0; i < n && b < maxBins; b++ {
		binsLeft := maxBins - b
		target := ((n - i) + binsLeft - 1) / binsLeft
		lo := vals[i]
		end := i + target
		if binsLeft == 1 || end > n {
			end = n
		}
		// Never split a run of equal values: extend to the end of the
		// run the target landed in.
		for end < n && !distinct(vals[end-1], vals[end]) {
			end++
		}
		lower = append(lower, lo)
		upper = append(upper, vals[end-1])
		i = end
	}
	return lower, upper
}

// distinct reports whether two sorted neighbours are different values —
// the same boundary test the exact split search applies between
// consecutive sorted samples.
//
//hddlint:floatcmp operands are copies of stored feature values from a sorted column, so this tests value identity, not the result of arithmetic
func distinct(a, b float64) bool { return a != b }

// CodeOf quantizes one raw value with the column's binning rule: the
// smallest bin whose upper bound covers v, exactly as BinColumn assigns
// codes at construction. NaN takes the reserved missing code. A finite
// value above the top bin's upper bound also takes the reserved code —
// it routes right at every split, which is exact for any threshold that
// lies at or below the corpus's largest value (every threshold a trained
// tree produces).
func (c *BinnedColumn) CodeOf(v float64) uint8 {
	if math.IsNaN(v) {
		return uint8(c.NumBins)
	}
	return uint8(sort.SearchFloat64s(c.Upper, v))
}

// CutFor remaps a split threshold onto the column's code space: the cut
// is the code the threshold itself would quantize to, so a sample routes
// left under the binned comparison code < cut exactly when a
// bin-representative value routes left under v < t. exact reports
// whether the remapping is lossless for every value the column's bins
// can represent: it is false only when t falls strictly inside some
// bin's [Lower, Upper] value range, where corpus values on both sides of
// t share a code and no cut can reproduce the float comparison.
func (c *BinnedColumn) CutFor(t float64) (cut uint8, exact bool) {
	i := sort.SearchFloat64s(c.Upper, t)
	return uint8(i), i == c.NumBins || t <= c.Lower[i]
}

// QuantizeRow writes x's per-feature bin codes into dst using each
// column's CodeOf rule. Both slices must hold at least NumFeatures
// entries; the codes land at the feature's own index. It is
// allocation-free, so inference paths can reuse one scratch row.
//
//hddlint:noalloc
func (bm *BinnedMatrix) QuantizeRow(x []float64, dst []uint8) {
	for f := range bm.Cols {
		dst[f] = bm.Cols[f].CodeOf(x[f])
	}
}

// Quantize maps whole rows onto the matrix's code space: one uint8 row
// per input row, all backed by a single allocation so a quantized fleet
// block stays contiguous in memory (the working set is NumFeatures bytes
// per sample instead of 8·NumFeatures). Rows must carry at least
// NumFeatures values. The result feeds the binned inference engine
// (cart.CompileBinned and the detect binned scans).
func (bm *BinnedMatrix) Quantize(xs [][]float64) ([][]uint8, error) {
	for i := range xs {
		if len(xs[i]) < bm.NumFeatures {
			return nil, fmt.Errorf("dataset: quantize row %d has %d of %d features",
				i, len(xs[i]), bm.NumFeatures)
		}
	}
	flat := make([]uint8, len(xs)*bm.NumFeatures)
	out := make([][]uint8, len(xs))
	for i, row := range xs {
		dst := flat[i*bm.NumFeatures : (i+1)*bm.NumFeatures : (i+1)*bm.NumFeatures]
		bm.QuantizeRow(row, dst)
		out[i] = dst
	}
	return out, nil
}
