package dataset

import (
	"math/rand"
	"testing"
)

// TestTiledMatrixRoundTrip checks the layout invariant both ways: codes
// written row-major come back identical through Code and Row, at sizes
// that leave the tail tile empty, exactly full, and partially full.
func TestTiledMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, rows := range []int{0, 1, TileRows - 1, TileRows, TileRows + 1, 3*TileRows + 17} {
		for _, nf := range []int{1, 3, 13} {
			src := make([][]uint8, rows)
			for i := range src {
				src[i] = make([]uint8, nf)
				for f := range src[i] {
					src[i][f] = uint8(rng.Intn(256))
				}
			}
			tm, err := TileCodes(src, nf)
			if err != nil {
				t.Fatalf("rows=%d nf=%d: %v", rows, nf, err)
			}
			if tm.NumRows != rows || tm.NumFeatures != nf {
				t.Fatalf("rows=%d nf=%d: shape %d×%d", rows, nf, tm.NumRows, tm.NumFeatures)
			}
			wantTiles := (rows + TileRows - 1) / TileRows
			if tm.Tiles() != wantTiles || len(tm.Data) != wantTiles*TileRows*nf {
				t.Fatalf("rows=%d nf=%d: %d tiles, %d bytes", rows, nf, tm.Tiles(), len(tm.Data))
			}
			var buf []uint8
			for i := range src {
				buf = tm.Row(i, buf)
				for f := range src[i] {
					if tm.Code(i, f) != src[i][f] {
						t.Fatalf("rows=%d nf=%d: Code(%d,%d) = %d, want %d",
							rows, nf, i, f, tm.Code(i, f), src[i][f])
					}
					if buf[f] != src[i][f] {
						t.Fatalf("rows=%d nf=%d: Row(%d)[%d] = %d, want %d",
							rows, nf, i, f, buf[f], src[i][f])
					}
				}
			}
		}
	}
}

// TestTiledMatrixLayout pins the exact address formula: feature columns
// are contiguous within a tile.
func TestTiledMatrixLayout(t *testing.T) {
	const nf = 4
	tm, err := NewTiledMatrix(2*TileRows+5, nf)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]uint8, nf)
	for i := 0; i < tm.NumRows; i++ {
		for f := range row {
			row[f] = uint8((i + f*7) % 251)
		}
		tm.SetRow(i, row)
	}
	for i := 0; i < tm.NumRows; i++ {
		for f := 0; f < nf; f++ {
			at := (i/TileRows)*TileRows*nf + f*TileRows + i%TileRows
			if want := uint8((i + f*7) % 251); tm.Data[at] != want {
				t.Fatalf("Data[%d] = %d, want %d (row %d feature %d)", at, tm.Data[at], want, i, f)
			}
		}
	}
	// The tail tile's padding beyond NumRows stays zero.
	last := tm.Tiles() - 1
	for f := 0; f < nf; f++ {
		for r := tm.NumRows % TileRows; r < TileRows; r++ {
			if at := last*TileRows*nf + f*TileRows + r; tm.Data[at] != 0 {
				t.Fatalf("padding Data[%d] = %d, want 0", at, tm.Data[at])
			}
		}
	}
}

func TestTiledMatrixErrors(t *testing.T) {
	if _, err := NewTiledMatrix(-1, 2); err == nil {
		t.Error("negative rows accepted")
	}
	if _, err := NewTiledMatrix(2, 0); err == nil {
		t.Error("zero features accepted")
	}
	if _, err := TileCodes([][]uint8{{1, 2}, {3}}, 2); err == nil {
		t.Error("short row accepted")
	}
	// Surplus trailing codes are allowed and ignored.
	tm, err := TileCodes([][]uint8{{1, 2, 9}, {3, 4, 9}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Code(1, 1) != 4 {
		t.Fatalf("Code(1,1) = %d, want 4", tm.Code(1, 1))
	}
}
