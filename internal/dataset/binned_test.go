package dataset

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// column wraps scalar values into the row-major matrix BinColumn reads.
func column(vals ...float64) [][]float64 {
	x := make([][]float64, len(vals))
	for i, v := range vals {
		x[i] = []float64{v}
	}
	return x
}

// checkColumnInvariants asserts every structural property a quantized
// column must satisfy, for any input whatsoever. It is shared by the unit
// tests and the fuzz target.
func checkColumnInvariants(t testing.TB, x [][]float64, f, maxBins int, col BinnedColumn) {
	t.Helper()
	if col.NumBins > maxBins {
		t.Fatalf("NumBins %d exceeds maxBins %d", col.NumBins, maxBins)
	}
	if len(col.Lower) != col.NumBins || len(col.Upper) != col.NumBins {
		t.Fatalf("bounds length %d/%d, want NumBins %d", len(col.Lower), len(col.Upper), col.NumBins)
	}
	for b := 0; b < col.NumBins; b++ {
		if col.Lower[b] > col.Upper[b] {
			t.Fatalf("bin %d inverted: [%v, %v]", b, col.Lower[b], col.Upper[b])
		}
		if b > 0 && !(col.Upper[b-1] < col.Lower[b]) {
			t.Fatalf("bins %d,%d not strictly increasing: upper %v, next lower %v",
				b-1, b, col.Upper[b-1], col.Lower[b])
		}
	}
	sawMissing := false
	codeOf := map[float64]uint8{}
	for i := range x {
		v := x[i][f]
		c := col.Codes[i]
		if math.IsNaN(v) {
			sawMissing = true
			if int(c) != col.NumBins {
				t.Fatalf("NaN at row %d got code %d, want reserved %d", i, c, col.NumBins)
			}
			continue
		}
		if int(c) >= col.NumBins {
			t.Fatalf("finite %v at row %d got out-of-range code %d (NumBins %d)", v, i, c, col.NumBins)
		}
		if v < col.Lower[c] || v > col.Upper[c] {
			t.Fatalf("value %v coded into bin %d [%v, %v]", v, c, col.Lower[c], col.Upper[c])
		}
		if prev, ok := codeOf[v]; ok && prev != c {
			t.Fatalf("equal values %v straddle bins %d and %d", v, prev, c)
		}
		codeOf[v] = c
	}
	if sawMissing != col.Missing {
		t.Fatalf("Missing = %v but saw-missing = %v", col.Missing, sawMissing)
	}
	if len(codeOf) <= maxBins {
		// The exactness fast path: with ≤ maxBins distinct finite values
		// every bin must be a singleton, or binned/exact tree equivalence
		// breaks.
		for b := 0; b < col.NumBins; b++ {
			if distinct(col.Lower[b], col.Upper[b]) {
				t.Fatalf("%d distinct values ≤ maxBins %d but bin %d spans [%v, %v]",
					len(codeOf), maxBins, b, col.Lower[b], col.Upper[b])
			}
		}
	}
}

func TestBinColumnSingletonFastPath(t *testing.T) {
	x := column(0.5, 0.25, 0.5, 0.75, 0.25, 0.75, 0.5)
	col := BinColumn(x, 0, 255)
	checkColumnInvariants(t, x, 0, 255, col)
	if col.NumBins != 3 {
		t.Fatalf("NumBins = %d, want 3 singleton bins", col.NumBins)
	}
	if col.Missing {
		t.Fatal("Missing set with no NaN present")
	}
	// Midpoint between singleton bins matches the exact-path formula.
	if got, want := col.EdgeBetween(0, 1), 0.25+(0.5-0.25)/2; got != want {
		t.Fatalf("EdgeBetween(0,1) = %v, want %v", got, want)
	}
}

func TestBinColumnQuantile(t *testing.T) {
	// 1000 distinct values into 10 bins: expect near-equal occupancy.
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	x := column(vals...)
	col := BinColumn(x, 0, 10)
	checkColumnInvariants(t, x, 0, 10, col)
	if col.NumBins != 10 {
		t.Fatalf("NumBins = %d, want 10", col.NumBins)
	}
	counts := make([]int, col.NumBins)
	for _, c := range col.Codes {
		counts[c]++
	}
	for b, n := range counts {
		if n < 50 || n > 200 {
			t.Errorf("bin %d holds %d of 1000 samples; quantile binning should stay near 100", b, n)
		}
	}
}

func TestBinColumnHeavyTies(t *testing.T) {
	// One value occupies 90% of the column; ties must never straddle a
	// boundary and the later bins must still materialize.
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 7
	}
	for i := 0; i < 20; i++ {
		vals[i] = float64(i)
	}
	x := column(vals...)
	col := BinColumn(x, 0, 4)
	checkColumnInvariants(t, x, 0, 4, col)
	if col.NumBins < 2 {
		t.Fatalf("NumBins = %d; the tie run swallowed every bin", col.NumBins)
	}
}

func TestBinColumnNaNAndInf(t *testing.T) {
	x := column(math.NaN(), math.Inf(1), 0, math.Inf(-1), 1, math.NaN(), 0)
	col := BinColumn(x, 0, 255)
	checkColumnInvariants(t, x, 0, 255, col)
	if !col.Missing {
		t.Fatal("Missing not set despite NaNs")
	}
	if col.NumBins != 4 { // -Inf, 0, 1, +Inf
		t.Fatalf("NumBins = %d, want 4", col.NumBins)
	}
	if col.MissingCode() != 4 {
		t.Fatalf("MissingCode = %d, want 4", col.MissingCode())
	}
}

func TestBinColumnAllMissing(t *testing.T) {
	x := column(math.NaN(), math.NaN())
	col := BinColumn(x, 0, 8)
	checkColumnInvariants(t, x, 0, 8, col)
	if col.NumBins != 0 {
		t.Fatalf("NumBins = %d for an all-NaN column, want 0", col.NumBins)
	}
}

func TestBinColumnSampleOrderIndependent(t *testing.T) {
	// Binning is a pure function of the value multiset: shuffling the
	// rows must yield identical bin bounds and per-value codes.
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = math.Floor(rng.Float64()*50) / 50
	}
	x := column(vals...)
	ref := BinColumn(x, 0, 16)
	perm := rng.Perm(len(vals))
	shuffled := make([]float64, len(vals))
	for i, p := range perm {
		shuffled[i] = vals[p]
	}
	sx := column(shuffled...)
	got := BinColumn(sx, 0, 16)
	if got.NumBins != ref.NumBins {
		t.Fatalf("NumBins %d after shuffle, want %d", got.NumBins, ref.NumBins)
	}
	for b := 0; b < ref.NumBins; b++ {
		if got.Lower[b] != ref.Lower[b] || got.Upper[b] != ref.Upper[b] {
			t.Fatalf("bin %d bounds changed under shuffle", b)
		}
	}
	for i, p := range perm {
		if got.Codes[i] != ref.Codes[p] {
			t.Fatalf("row %d code %d after shuffle, want %d", i, got.Codes[i], ref.Codes[p])
		}
	}
}

func TestBinMatrixValidation(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	if _, err := BinMatrix(x, 0); err == nil {
		t.Error("maxBins 0 accepted")
	}
	if _, err := BinMatrix(x, MaxBinsLimit+1); err == nil {
		t.Error("maxBins beyond the uint8 ceiling accepted")
	}
	if _, err := BinMatrix(nil, 8); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := BinMatrix([][]float64{{1, 2}, {3}}, 8); err == nil {
		t.Error("ragged matrix accepted")
	}
	bm, err := BinMatrix(x, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bm.NumSamples != 2 || bm.NumFeatures != 2 || len(bm.Cols) != 2 {
		t.Fatalf("BinMatrix shape = %d×%d with %d cols", bm.NumSamples, bm.NumFeatures, len(bm.Cols))
	}
}

// FuzzBinColumn hammers the binning rule with adversarial value patterns —
// ties, ±Inf, NaN, denormals, values differing in one ulp — and asserts
// the full invariant set on every input. The raw bytes decode to float64s
// so the fuzzer can reach any bit pattern, and the first byte picks
// maxBins.
func FuzzBinColumn(f *testing.F) {
	add := func(maxBins byte, vals ...float64) {
		data := []byte{maxBins}
		for _, v := range vals {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			data = append(data, buf[:]...)
		}
		f.Add(data)
	}
	add(4, 1, 1, 1, 2, 2, 3)
	add(2, math.Inf(-1), math.Inf(1), math.NaN(), 0)
	add(8, 0, math.Copysign(0, -1), math.SmallestNonzeroFloat64)
	add(3, 1, math.Nextafter(1, 2), math.Nextafter(1, 0), 1)
	add(255, 0.5, 0.25, 0.75)
	add(1, 5, 4, 3, 2, 1, 0)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			t.Skip()
		}
		maxBins := int(data[0])%MaxBinsLimit + 1
		body := data[1:]
		n := len(body) / 8
		if n == 0 {
			t.Skip()
		}
		if n > 512 {
			n = 512
		}
		x := make([][]float64, n)
		for i := 0; i < n; i++ {
			x[i] = []float64{math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))}
		}
		col := BinColumn(x, 0, maxBins)
		checkColumnInvariants(t, x, 0, maxBins, col)
	})
}

// TestCodeOfMatchesConstruction: quantizing a corpus value after the fact
// must reproduce the code BinColumn assigned at construction — the
// binned inference engine depends on Quantize being a pure re-derivation.
func TestCodeOfMatchesConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 0, 600)
	for i := 0; i < 500; i++ {
		vals = append(vals, math.Round(rng.NormFloat64()*8)/4)
	}
	vals = append(vals, math.Inf(1), math.Inf(-1), math.NaN(), 0, math.Copysign(0, -1),
		math.SmallestNonzeroFloat64)
	x := column(vals...)
	for _, maxBins := range []int{1, 7, 32, 255} {
		col := BinColumn(x, 0, maxBins)
		for i := range x {
			if got := col.CodeOf(x[i][0]); got != col.Codes[i] {
				t.Fatalf("maxBins %d: CodeOf(%v) = %d, construction code %d",
					maxBins, x[i][0], got, col.Codes[i])
			}
		}
	}
}

// TestCodeOfAboveTopBin: finite values above the corpus maximum take the
// reserved always-right code.
func TestCodeOfAboveTopBin(t *testing.T) {
	col := BinColumn(column(1, 2, 3), 0, 255)
	if got := col.CodeOf(4); int(got) != col.NumBins {
		t.Fatalf("CodeOf(4) = %d, want reserved %d", got, col.NumBins)
	}
}

// TestCutFor covers the remapping rule: thresholds in the gaps between
// bins (where trained trees place them) are exact; thresholds strictly
// inside a bin's value range are not.
func TestCutFor(t *testing.T) {
	col := BinColumn(column(1, 1, 2, 2, 5, 5, 9), 0, 4)
	if col.NumBins != 4 {
		t.Fatalf("fixture drifted: NumBins = %d, want 4", col.NumBins)
	}
	cases := []struct {
		t     float64
		cut   uint8
		exact bool
	}{
		{1.5, 1, true},          // gap between bins 0 and 1
		{2, 1, true},            // exactly a bin's lower bound: that bin routes right
		{3.5, 2, true},          // gap between bins 1 and 2
		{100, 4, true},          // above everything: all finite bins left
		{math.Inf(-1), 0, true}, // nothing below -Inf
		{0.5, 0, true},          // below everything: all bins right
	}
	for _, c := range cases {
		cut, exact := col.CutFor(c.t)
		if cut != c.cut || exact != c.exact {
			t.Errorf("CutFor(%v) = (%d, %v), want (%d, %v)", c.t, cut, exact, c.cut, c.exact)
		}
	}
	// A multi-value bin straddled by a threshold cannot be remapped.
	wide := BinColumn(column(1, 2, 3, 4, 5, 6, 7, 8), 0, 2)
	if wide.NumBins != 2 {
		t.Fatalf("fixture drifted: NumBins = %d, want 2", wide.NumBins)
	}
	if _, exact := wide.CutFor(wide.Lower[0] + 0.5); exact {
		t.Fatalf("threshold inside bin 0 [%v, %v] reported exact", wide.Lower[0], wide.Upper[0])
	}
}

// TestQuantizeRoundTrip: Quantize over the corpus itself reproduces the
// columnar construction codes row for row, and rejects short rows.
func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := make([][]float64, 200)
	for i := range x {
		row := make([]float64, 4)
		for f := range row {
			row[f] = math.Round(rng.NormFloat64() * 4)
			if rng.Intn(17) == 0 {
				row[f] = math.NaN()
			}
		}
		x[i] = row
	}
	bm, err := BinMatrix(x, 16)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := bm.Quantize(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range codes {
		for f, c := range row {
			if want := bm.Cols[f].Codes[i]; c != want {
				t.Fatalf("row %d feature %d: Quantize code %d, construction code %d", i, f, c, want)
			}
		}
	}
	if _, err := bm.Quantize([][]float64{{1, 2}}); err == nil {
		t.Fatal("short row accepted")
	}
}

// TestEdgeBetweenInfiniteBounds pins the threshold rule at infinite bin
// bounds: the naive midpoint of a −Inf upper bound is NaN, which would
// mis-route the whole left bin at inference (x < NaN is always false).
// Found by the cross-path equivalence harness: the tree trained over a
// corpus with −Inf values failed to seal on its NaN threshold.
func TestEdgeBetweenInfiniteBounds(t *testing.T) {
	col := BinColumn([][]float64{
		{math.Inf(-1)}, {math.Inf(-1)}, {-3}, {-3}, {7}, {7}, {math.Inf(1)}, {math.Inf(1)},
	}, 0, 8)
	if col.NumBins != 4 {
		t.Fatalf("NumBins = %d, want 4 singleton bins", col.NumBins)
	}
	// −Inf bin to finite bin: threshold is the right bin's lower bound.
	if got := col.EdgeBetween(0, 1); got != -3 {
		t.Fatalf("EdgeBetween(-Inf bin, -3 bin) = %v, want -3", got)
	}
	// Finite bin to +Inf bin: the midpoint +Inf routes all finite left.
	if got := col.EdgeBetween(2, 3); !math.IsInf(got, 1) {
		t.Fatalf("EdgeBetween(7 bin, +Inf bin) = %v, want +Inf", got)
	}
	for a := 0; a < col.NumBins; a++ {
		for b := a + 1; b < col.NumBins; b++ {
			tr := col.EdgeBetween(a, b)
			if math.IsNaN(tr) {
				t.Fatalf("EdgeBetween(%d,%d) is NaN", a, b)
			}
			// The threshold must actually separate the bins under the
			// inference rule x < t.
			if !(col.Upper[a] < tr) {
				t.Fatalf("EdgeBetween(%d,%d) = %v does not route Upper[%d]=%v left", a, b, tr, a, col.Upper[a])
			}
			if col.Lower[b] < tr {
				t.Fatalf("EdgeBetween(%d,%d) = %v routes Lower[%d]=%v left", a, b, tr, b, col.Lower[b])
			}
		}
	}
}

// TestEdgeBetweenBothInfinite covers the degenerate two-bin column
// {−Inf}, {+Inf}: any finite threshold separates, and 0 is used.
func TestEdgeBetweenBothInfinite(t *testing.T) {
	col := BinColumn([][]float64{{math.Inf(-1)}, {math.Inf(1)}}, 0, 8)
	if col.NumBins != 2 {
		t.Fatalf("NumBins = %d, want 2", col.NumBins)
	}
	if got := col.EdgeBetween(0, 1); got != 0 {
		t.Fatalf("EdgeBetween(-Inf bin, +Inf bin) = %v, want 0", got)
	}
}
