package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"hddcart/internal/smart"
)

// flatTrace builds a trace over [start,end) hours with constant values.
func flatTrace(start, end int) []smart.Record {
	trace := make([]smart.Record, 0, end-start)
	for h := start; h < end; h++ {
		var r smart.Record
		r.Hour = h
		for i := range r.Normalized {
			r.Normalized[i] = 100
		}
		trace = append(trace, r)
	}
	return trace
}

func testConfig() Config {
	return Config{
		Features:    smart.BasicFeatures(),
		PeriodStart: 0,
		PeriodEnd:   168,
		Seed:        7,
	}
}

func TestNewBuilderValidation(t *testing.T) {
	bad := []Config{
		{},                                // empty features
		{Features: smart.BasicFeatures()}, // empty period
		{Features: smart.BasicFeatures(), PeriodEnd: 10, GoodTrainFrac: 1.5},
		{Features: smart.BasicFeatures(), PeriodEnd: 10, FailedShare: 1},
		{Features: smart.BasicFeatures(), PeriodEnd: 10, FailedShare: -0.1},
	}
	for i, cfg := range bad {
		if _, err := NewBuilder(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := NewBuilder(testConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestTrainCutoff(t *testing.T) {
	if got := TrainCutoff(0, 168, 0.7); got != 117 {
		t.Errorf("TrainCutoff = %d, want 117", got)
	}
	if got := TrainCutoff(168, 336, 0.5); got != 252 {
		t.Errorf("TrainCutoff = %d, want 252", got)
	}
}

func TestAddGoodDrivePicksFromTrainPortion(t *testing.T) {
	b, err := NewBuilder(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	trace := flatTrace(0, 168)
	n := b.AddGoodDrive(1, trace)
	if n != 3 {
		t.Fatalf("added %d good samples, want 3", n)
	}
	ds, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	cutoff := TrainCutoff(0, 168, 0.7)
	for _, s := range ds.Samples {
		if s.Hour >= cutoff {
			t.Errorf("good training sample at hour %d ≥ cutoff %d", s.Hour, cutoff)
		}
		if s.Failed || s.Target != 1 || s.HoursToFail != -1 {
			t.Errorf("bad good sample: %+v", s)
		}
		if len(s.X) != len(smart.BasicFeatures()) {
			t.Errorf("feature vector length %d", len(s.X))
		}
	}
}

func TestAddGoodDriveOutsidePeriod(t *testing.T) {
	b, _ := NewBuilder(testConfig())
	if n := b.AddGoodDrive(1, flatTrace(500, 600)); n != 0 {
		t.Errorf("added %d samples from outside the period", n)
	}
}

func TestAddGoodDriveChangeRateLookback(t *testing.T) {
	cfg := testConfig()
	cfg.Features = smart.CriticalFeatures() // has 6-hour change rates
	cfg.SamplesPerGoodDrive = 1000          // take everything available
	b, _ := NewBuilder(cfg)
	// Trace of 10 records: the first 6 h of history cannot produce
	// change rates, so at most 4 samples are extractable.
	n := b.AddGoodDrive(1, flatTrace(0, 10))
	if n != 4 {
		t.Errorf("added %d, want 4 (6h lookback excludes first 6 records)", n)
	}
}

func TestAddFailedDriveWindow(t *testing.T) {
	cfg := testConfig()
	cfg.FailedWindowHours = 24
	b, _ := NewBuilder(cfg)
	failHour := 480
	trace := flatTrace(0, failHour)
	n := b.AddFailedTrainingDrive(9, failHour, trace)
	if n != 24 { // hours 456..479 (lead 1..24); lead 0 has no record
		t.Fatalf("added %d failed samples, want 24", n)
	}
	ds, _ := b.Finalize()
	for _, s := range ds.Samples {
		if !s.Failed || s.Target != -1 {
			t.Errorf("bad failed sample: %+v", s)
		}
		if s.HoursToFail < 0 || s.HoursToFail > 24 {
			t.Errorf("HoursToFail = %d outside window", s.HoursToFail)
		}
	}
}

func TestAddFailedDriveRespectsSplit(t *testing.T) {
	cfg := testConfig()
	b, _ := NewBuilder(cfg)
	// Find one train-split and one test-split drive ID.
	trainID, testID := -1, -1
	for id := 0; id < 1000 && (trainID == -1 || testID == -1); id++ {
		if IsTrainFailedDrive(cfg.Seed, id, 0.7) {
			if trainID == -1 {
				trainID = id
			}
		} else if testID == -1 {
			testID = id
		}
	}
	trace := flatTrace(312, 480)
	if n := b.AddFailedDrive(trainID, 480, trace); n == 0 {
		t.Error("train-split drive contributed nothing")
	}
	if n := b.AddFailedDrive(testID, 480, trace); n != 0 {
		t.Error("test-split drive contributed samples")
	}
}

func TestIsTrainFailedDriveFraction(t *testing.T) {
	n := 20000
	in := 0
	for id := 0; id < n; id++ {
		if IsTrainFailedDrive(3, id, 0.7) {
			in++
		}
	}
	frac := float64(in) / float64(n)
	if math.Abs(frac-0.7) > 0.02 {
		t.Errorf("train fraction = %.3f, want ≈ 0.7", frac)
	}
}

func TestIsTrainFailedDriveDeterministic(t *testing.T) {
	err := quick.Check(func(seed int64, id uint16) bool {
		a := IsTrainFailedDrive(seed, int(id), 0.7)
		b := IsTrainFailedDrive(seed, int(id), 0.7)
		return a == b
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFailedSamplesPerDriveCap(t *testing.T) {
	cfg := testConfig()
	cfg.FailedWindowHours = 168
	cfg.FailedSamplesPerDrive = 12
	b, _ := NewBuilder(cfg)
	n := b.AddFailedTrainingDrive(1, 480, flatTrace(0, 480))
	if n != 12 {
		t.Errorf("capped failed samples = %d, want 12", n)
	}
	ds, _ := b.Finalize()
	// Evenly spread: leads should span nearly the whole window.
	minLead, maxLead := math.MaxInt, 0
	for _, s := range ds.Samples {
		if s.HoursToFail < minLead {
			minLead = s.HoursToFail
		}
		if s.HoursToFail > maxLead {
			maxLead = s.HoursToFail
		}
	}
	if maxLead-minLead < 150 {
		t.Errorf("even spread covers only %d..%d", minLead, maxLead)
	}
}

func TestPickEvenly(t *testing.T) {
	idxs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := pickEvenly(idxs, 3)
	if len(got) != 3 || got[0] != 0 || got[2] != 9 {
		t.Errorf("pickEvenly = %v", got)
	}
	if got := pickEvenly(idxs, 20); len(got) != 10 {
		t.Errorf("over-asking should return all, got %d", len(got))
	}
}

func TestFinalizeWeighting(t *testing.T) {
	cfg := testConfig()
	cfg.FailedShare = 0.2
	cfg.FailedWindowHours = 24
	b, _ := NewBuilder(cfg)
	for id := 0; id < 32; id++ {
		b.AddGoodDrive(id, flatTrace(0, 168))
	}
	b.AddFailedTrainingDrive(100, 480, flatTrace(312, 480))
	ds, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	var goodW, failW float64
	for _, s := range ds.Samples {
		if s.Failed {
			failW += s.Weight
		} else {
			goodW += s.Weight
		}
	}
	share := failW / (failW + goodW)
	if math.Abs(share-0.2) > 1e-9 {
		t.Errorf("failed weight share = %v, want 0.2", share)
	}
}

func TestFinalizeTwice(t *testing.T) {
	b, _ := NewBuilder(testConfig())
	if _, err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finalize(); err == nil {
		t.Error("second Finalize should fail")
	}
}

func TestSetHealthTargets(t *testing.T) {
	ds := &Dataset{Samples: []Sample{
		{Drive: 1, Failed: false, Target: 99},
		{Drive: 2, Failed: true, HoursToFail: 0},
		{Drive: 2, Failed: true, HoursToFail: 100},
		{Drive: 3, Failed: true, HoursToFail: 12},
	}}
	windows := map[int]int{2: 200}
	if err := ds.SetHealthTargets(windows, 24); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -1, -0.5, -0.5}
	for i, w := range want {
		if got := ds.Samples[i].Target; math.Abs(got-w) > 1e-12 {
			t.Errorf("sample %d target = %v, want %v", i, got, w)
		}
	}
	if err := ds.SetHealthTargets(nil, 0); err == nil {
		t.Error("zero default window should be rejected")
	}
}

func TestSetHealthTargetsClip(t *testing.T) {
	ds := &Dataset{Samples: []Sample{{Drive: 1, Failed: true, HoursToFail: 1000}}}
	if err := ds.SetHealthTargets(map[int]int{1: 100}, 24); err != nil {
		t.Fatal(err)
	}
	if ds.Samples[0].Target != 1 {
		t.Errorf("target = %v, want clipped to 1", ds.Samples[0].Target)
	}
}

func TestSetClassificationTargets(t *testing.T) {
	ds := &Dataset{Samples: []Sample{
		{Failed: false, Target: 0.3},
		{Failed: true, Target: 0.3},
	}}
	ds.SetClassificationTargets()
	if ds.Samples[0].Target != 1 || ds.Samples[1].Target != -1 {
		t.Errorf("targets = %v, %v", ds.Samples[0].Target, ds.Samples[1].Target)
	}
}

func TestXMatrix(t *testing.T) {
	ds := &Dataset{Samples: []Sample{
		{X: []float64{1, 2}, Target: 1, Weight: 1},
		{X: []float64{3, 4}, Target: -1, Weight: 2.5},
	}}
	x, y, w := ds.XMatrix()
	if len(x) != 2 || x[1][0] != 3 || y[1] != -1 || w[1] != 2.5 {
		t.Errorf("XMatrix = %v %v %v", x, y, w)
	}
}

func TestSubsample(t *testing.T) {
	ds := &Dataset{Samples: []Sample{
		{Drive: 1}, {Drive: 2}, {Drive: 1}, {Drive: 3},
	}}
	sub := ds.Subsample(func(d int) bool { return d == 1 })
	if len(sub.Samples) != 2 {
		t.Errorf("subsample size = %d, want 2", len(sub.Samples))
	}
}

func TestCounts(t *testing.T) {
	ds := &Dataset{Samples: []Sample{
		{Failed: true}, {Failed: false}, {Failed: false},
	}}
	g, f := ds.Counts()
	if g != 2 || f != 1 {
		t.Errorf("Counts = %d, %d", g, f)
	}
}

func TestTestStart(t *testing.T) {
	trace := flatTrace(0, 168)
	from, to, ok := TestStart(trace, 0, 168, 0.7)
	if !ok {
		t.Fatal("TestStart failed")
	}
	if trace[from].Hour != 117 {
		t.Errorf("first test hour = %d, want 117", trace[from].Hour)
	}
	if to != len(trace) {
		t.Errorf("to = %d, want %d", to, len(trace))
	}

	// Second week of a longer trace.
	long := flatTrace(0, 400)
	from, to, ok = TestStart(long, 168, 336, 0.7)
	if !ok {
		t.Fatal("TestStart failed on window")
	}
	if long[from].Hour != TrainCutoff(168, 336, 0.7) {
		t.Errorf("first test hour = %d", long[from].Hour)
	}
	if long[to-1].Hour != 335 {
		t.Errorf("last test hour = %d, want 335", long[to-1].Hour)
	}

	// No test data.
	if _, _, ok := TestStart(flatTrace(0, 50), 0, 168, 0.7); ok {
		t.Error("TestStart should fail when trace ends before cutoff")
	}
}
