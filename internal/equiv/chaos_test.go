package equiv

import (
	"math/rand"
	"testing"

	"hddcart/internal/cart"
	"hddcart/internal/cpu"
	"hddcart/internal/dataset"
	"hddcart/internal/detect"
	"hddcart/internal/faultinject"
	"hddcart/internal/simulate"
	"hddcart/internal/smart"
)

// chaosCorpus rebuilds the PR 4 chaos-suite corpora: SMART telemetry from
// the synthetic fleet, both pristine and corrupted by every record-level
// injector, pushed through the production sanitize → extract pipeline.
// The returned matrix is what a real retraining over dirty telemetry
// would see — duplicated samples, reordered windows, out-of-range values,
// gap-riddled timestamps.
func chaosCorpus(t *testing.T) (x [][]float64, y []float64) {
	t.Helper()
	const chaosSeed = 4242
	fleet, err := simulate.New(simulate.Config{Seed: chaosSeed, GoodScale: 0.001, FailedScale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	features := smart.CriticalFeatures()
	label := func(d simulate.Drive, hour int) float64 {
		if d.Failed && hour >= d.FailHour-d.Window {
			return -1
		}
		return 1
	}
	add := func(d simulate.Drive, s detect.Series, stride int) {
		for i := range s.X {
			l := label(d, s.Hours[i])
			if l > 0 && i%stride != 0 {
				continue // subsample healthy hours, as the chaos suite does
			}
			x = append(x, s.X[i])
			y = append(y, l)
		}
	}
	injectors := faultinject.RecordInjectors()
	for _, d := range fleet.Drives() {
		recs := fleet.Trace(d.Index)
		add(d, detect.ExtractSeries(features, recs, 0, len(recs)), 24)
		// Every injector corrupts every drive's trace; the corrupted copy
		// rides through the same sanitize → extract pipeline as production
		// ingest, so whatever survives sanitization lands in the corpus.
		for _, inj := range injectors {
			rng := rand.New(rand.NewSource(faultinject.SeedFor(chaosSeed, inj.Name, d.Serial)))
			dirty, _ := smart.SanitizeTrace(inj.Apply(rng, recs, 0.3))
			add(d, detect.ExtractSeries(features, dirty, 0, len(dirty)), 48)
		}
	}
	if len(x) < 500 {
		t.Fatalf("chaos corpus too small: %d rows", len(x))
	}
	return x, y
}

// TestChaosCorpusBinnedEquivalence is the dirty-telemetry property test:
// train over the chaos corpora with a bin budget, bin the same corpora
// with the same budget, and Quantize → CompileBinned → score must equal
// the float-path score bit for bit on every row — including the rows the
// injectors mangled. This exercises the corpus half of the equivalence
// contract on realistic (not generated) data.
func TestChaosCorpusBinnedEquivalence(t *testing.T) {
	x, y := chaosCorpus(t)
	const maxBins = 64
	tree, err := cart.TrainClassifier(x, y, nil, cart.Params{
		MinSplit: 20, MinBucket: 7, CP: 1e-4, LossFA: 5, MaxBins: maxBins, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := dataset.BinMatrix(x, maxBins)
	if err != nil {
		t.Fatal(err)
	}
	ct := tree.Compile()
	bt, err := ct.CompileBinned(bm)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := bm.Quantize(x)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dataset.TileCodes(codes, bm.NumFeatures)
	if err != nil {
		t.Fatal(err)
	}
	c := &Case{X: x, Y: y, Bins: bm, Codes: codes, Tree: tree, Compiled: ct, Binned: bt, Tiled: tm}
	if err := CheckAll(c, verdictPaths()...); err != nil {
		t.Fatal(err)
	}
	if err := CheckAll(c, PointerProb(), CompiledProb(), BinnedProb(), TiledProb()); err != nil {
		t.Fatal(err)
	}
	// The chaos corpus also replays through every dispatch tier: fault
	// injection produces the missing-code pile-ups and duplicated rows
	// that stress the vector kernels' seam handling.
	for _, p := range []Path{BinnedBatch(0), TiledRange(0), TiledWorkers(4)} {
		forced := make([]Path, 0, 3)
		for _, k := range cpu.Kernels() {
			forced = append(forced, ForceKernel(k, p))
		}
		if err := CheckAll(c, forced...); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("chaos corpus: %d rows, %d injectors, tree %d nodes, exact=%v, kernels=%v",
		len(x), len(faultinject.RecordInjectors()), len(bt.Feature), bt.Exact, cpu.Kernels())
}
