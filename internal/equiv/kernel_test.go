package equiv

import (
	"strings"
	"testing"

	"hddcart/internal/cart"
	"hddcart/internal/cpu"
)

// kernelPaths is the dispatch-sensitive path battery: every scoring
// path whose inner loops route through the cart partition kernels, with
// block sizes and worker counts bracketing the vector widths (8-code
// words, 16-element blind-store windows) and the 256-row tile seam.
func kernelPaths() []Path {
	return []Path{
		BinnedBatch(0),
		BinnedBatch(17),
		BinnedBatchScattered(1024),
		TiledRange(0),
		TiledRange(255),
		TiledRange(256),
		TiledRange(257),
		TiledWorkers(4),
		BinnedWorkers(4),
	}
}

// TestKernelDispatchMatrix is the kernel-equivalence contract: for
// every adversarial Spec, every dispatch-sensitive path scores
// bit-identically under every kernel tier this build supports. The
// scalar tier anchors each comparison, so a SWAR or AVX2 divergence is
// reported against the reference semantics rather than against another
// vector tier that might share the same bug. CI stress-runs this test
// with -race -count=3 on every kernel-matrix leg.
func TestKernelDispatchMatrix(t *testing.T) {
	kernels := cpu.Kernels()
	if len(kernels) < 2 {
		t.Fatalf("cpu.Kernels() = %v: even noasm builds must support scalar and swar", kernels)
	}
	for _, tc := range specMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Generate(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range kernelPaths() {
				paths := make([]Path, 0, len(kernels))
				for _, k := range kernels {
					paths = append(paths, ForceKernel(k, p))
				}
				if err := CheckAll(c, paths...); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestForceKernelRestores pins the wrapper's cleanup: after a forced
// scoring pass the ambient dispatch tier is back to what it was.
func TestForceKernelRestores(t *testing.T) {
	c, err := Generate(Spec{Rows: 64, Features: 3, MaxBins: 8, Seed: 9, DistinctValues: 12})
	if err != nil {
		t.Fatal(err)
	}
	before := cpu.Active()
	dst := make([]float64, 64)
	for _, k := range cpu.Kernels() {
		ForceKernel(k, TiledRange(0)).Score(c, dst)
		if got := cpu.Active(); got != before {
			t.Fatalf("kernel %s left active tier %s, want %s", k, got, before)
		}
	}
}

// TestAsmKernelsCoveredByHarness walks the asm-backed kernel registry
// and proves each row's equiv path family names paths this harness
// actually builds — the registry's claim that "the dispatch matrix pins
// this kernel" must not rot into pointing at a renamed path.
func TestAsmKernelsCoveredByHarness(t *testing.T) {
	names := make([]string, 0, len(kernelPaths()))
	for _, p := range kernelPaths() {
		names = append(names, p.Name)
	}
	for _, k := range cart.AsmKernels() {
		if k.Name == "" || k.Fallback == "" {
			t.Fatalf("registry row %+v: unresolvable function names", k)
		}
		if k.EquivPath == "" {
			t.Fatalf("asm kernel %s registered without an equiv path family", k.Name)
		}
		found := false
		for _, n := range names {
			if n == k.EquivPath || strings.HasPrefix(n, k.EquivPath+"/") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("asm kernel %s: equiv path family %q matches no kernel-matrix path (have %v)",
				k.Name, k.EquivPath, names)
		}
	}
}
