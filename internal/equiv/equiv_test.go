package equiv

import (
	"errors"
	"math"
	"testing"
)

// specMatrix is the adversarial case catalogue. Every regime the binned
// remapping has to survive gets a named entry; CI stress-runs this file
// with -count=5 -race, so each Spec must be deterministic.
func specMatrix() []struct {
	name string
	spec Spec
} {
	return []struct {
		name string
		spec Spec
	}{
		{"ties-on-boundaries", Spec{Rows: 400, Features: 5, MaxBins: 8, Seed: 101, DistinctValues: 40}},
		{"singleton-bins", Spec{Rows: 300, Features: 4, MaxBins: 255, Seed: 102, DistinctValues: 20}},
		{"nan-and-inf", Spec{Rows: 400, Features: 5, MaxBins: 16, Seed: 103, DistinctValues: 30, NaNFrac: 0.15, InfFrac: 0.08}},
		{"denormals", Spec{Rows: 300, Features: 3, MaxBins: 8, Seed: 104, DistinctValues: 25, DenormalFrac: 0.3}},
		{"single-bin-feature", Spec{Rows: 200, Features: 4, MaxBins: 8, Seed: 105, DistinctValues: 16, SingleBinFeature: true}},
		{"one-bin-budget", Spec{Rows: 150, Features: 3, MaxBins: 1, Seed: 106, DistinctValues: 10, NaNFrac: 0.1}},
		{"regression", Spec{Rows: 400, Features: 5, MaxBins: 8, Seed: 107, DistinctValues: 40, Regression: true, NaNFrac: 0.1}},
		{"regression-wide", Spec{Rows: 350, Features: 6, MaxBins: 64, Seed: 108, Regression: true, InfFrac: 0.05}},
	}
}

// verdictPaths is the full scoring-path battery: every engine, block
// sizes bracketing the internal partition thresholds, and sharded
// workers.
func verdictPaths() []Path {
	return []Path{
		Pointer(),
		CompiledScalar(),
		CompiledBatch(0),
		CompiledBatch(1),
		CompiledBatch(17),
		CompiledBatch(1024),
		CompiledBatch(1025),
		CompiledWorkers(4),
		BinnedScalar(),
		BinnedBatch(0),
		BinnedBatch(1),
		BinnedBatch(17),
		BinnedBatch(1024),
		BinnedBatch(1025),
		BinnedBatchScattered(0),
		BinnedBatchScattered(1024),
		BinnedWorkers(4),
		TiledRange(0),
		TiledRange(1),
		TiledRange(255),
		TiledRange(256),
		TiledRange(257),
		TiledWorkers(4),
	}
}

// TestEquivalenceMatrices is the tentpole assertion: over every
// adversarial Spec, all twenty-three scoring paths are bit-identical on
// the corpus — including the scattered-row paths that force the binned
// engine off its flat-matrix kernels and the feature-major tiled paths
// the fleet-sweep engine runs on. CI additionally stress-runs this test
// with -count=5 -race.
func TestEquivalenceMatrices(t *testing.T) {
	for _, tc := range specMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Generate(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckAll(c, verdictPaths()...); err != nil {
				t.Fatal(err)
			}
			if !tc.spec.Regression {
				if err := CheckAll(c, PointerProb(), CompiledProb(), BinnedProb(), TiledProb()); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestHarnessDetectsDivergence tests the tester: a deliberately broken
// path must produce a Mismatch naming the right row and paths. A harness
// that cannot fail proves nothing.
func TestHarnessDetectsDivergence(t *testing.T) {
	c, err := Generate(Spec{Rows: 64, Features: 3, MaxBins: 8, Seed: 9, DistinctValues: 12})
	if err != nil {
		t.Fatal(err)
	}
	broken := Path{Name: "broken", Score: func(c *Case, dst []float64) {
		for i, row := range c.X {
			dst[i] = c.Tree.Predict(row)
		}
		dst[3] += 1
	}}
	err = Check(c, Pointer(), broken)
	var m *Mismatch
	if !errors.As(err, &m) {
		t.Fatalf("broken path not caught: %v", err)
	}
	if m.Row != 3 || m.PathA != "pointer" || m.PathB != "broken" {
		t.Fatalf("mismatch misattributed: %+v", m)
	}
	// NaN == NaN: a path returning NaN where the reference returns NaN is
	// not a divergence.
	if !sameBits(math.NaN(), math.NaN()) {
		t.Fatal("NaN must equal NaN in harness semantics")
	}
	if sameBits(math.Copysign(0, -1), 0) {
		t.Fatal("-0 and +0 must be distinct in harness semantics")
	}
}

// TestWithinBinMetamorphic pins the metamorphic property: perturbing
// every value anywhere within its own bin leaves the codes — and
// therefore every binned verdict — unchanged.
func TestWithinBinMetamorphic(t *testing.T) {
	for _, tc := range specMatrix()[:4] {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Generate(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			before := make([]float64, len(c.X))
			BinnedBatch(0).Score(c, before)
			for trial := int64(0); trial < 3; trial++ {
				perturbed := c.PerturbWithinBin(1000 + trial)
				codes, err := c.Bins.Quantize(perturbed)
				if err != nil {
					t.Fatal(err)
				}
				for i := range codes {
					for f := range codes[i] {
						if codes[i][f] != c.Codes[i][f] {
							t.Fatalf("trial %d row %d feature %d: code %d → %d after within-bin perturbation (%v → %v)",
								trial, i, f, c.Codes[i][f], codes[i][f], c.X[i][f], perturbed[i][f])
						}
					}
				}
				after := make([]float64, len(codes))
				c.Binned.PredictBatch(codes, after)
				for i := range after {
					if !sameBits(before[i], after[i]) {
						t.Fatalf("trial %d row %d: binned verdict changed under within-bin perturbation: %v → %v",
							trial, i, before[i], after[i])
					}
				}
			}
		})
	}
}

// TestCheckDetect runs the detect-level half of the harness: float vs
// binned detectors across window sizes and worker counts.
func TestCheckDetect(t *testing.T) {
	for _, tc := range specMatrix()[:3] {
		t.Run(tc.name, func(t *testing.T) {
			if tc.spec.Regression {
				t.Skip("detectors are classification-only")
			}
			c, err := Generate(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckDetect(c, []int{1, 3, 8}, []int{0, 1, 4}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGenerateRejectsBadSpecs pins the generator's input validation.
func TestGenerateRejectsBadSpecs(t *testing.T) {
	for _, spec := range []Spec{
		{Rows: 4, Features: 3, MaxBins: 8},
		{Rows: 100, Features: 0, MaxBins: 8},
		{Rows: 100, Features: 3, MaxBins: 0},
		{Rows: 100, Features: 3, MaxBins: 300},
	} {
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}
