// Package equiv is a differential test harness for the model scoring
// paths: it generates adversarial feature matrices (ties on bin
// boundaries, ±Inf, NaN, denormals, single-bin features), trains a model
// over them, compiles every inference form — pointer tree, flat-array
// compiled tree, binned-code tree — and asserts that any two paths score
// bit-identically, whatever batch block size or worker count each uses.
//
// The contract it enforces is the one the inference engines document:
//
//   - pointer vs compiled: bit-identical on every input, always;
//   - float vs binned: bit-identical on every row of the corpus the
//     binning was built from when the model was trained with the same
//     bin budget (straddled thresholds are never evaluated by rows that
//     reach them), and on every bin-representative input when the
//     remapping is Exact;
//   - batch vs scalar, any block size, any worker count: bit-identical
//     by construction — each sample's score lands at its own index.
//
// The harness generalizes the PR 2 compiled-equivalence suite: instead
// of a fixed pair of engines it takes any two Paths (a name plus a
// scoring function), so new inference forms plug in as one constructor.
package equiv

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"hddcart/internal/cart"
	"hddcart/internal/cpu"
	"hddcart/internal/dataset"
	"hddcart/internal/detect"
)

// Spec parameterizes one generated equivalence case. The zero value is
// not runnable; Rows, Features and MaxBins must be positive.
type Spec struct {
	// Rows and Features shape the corpus matrix.
	Rows, Features int
	// MaxBins is the bin budget for both training and the binned matrix
	// (1..255). Budgets below the distinct-value count force multi-value
	// bins, the regime where thresholds can straddle bins.
	MaxBins int
	// Seed drives every random choice; a Spec is fully deterministic.
	Seed int64
	// Regression selects a regression tree (health degrees) instead of a
	// classifier.
	Regression bool
	// DistinctValues bounds each feature's value pool. Small pools
	// produce heavy ties — runs of equal values sitting exactly on bin
	// boundaries. 0 means unbounded (every value drawn fresh).
	DistinctValues int
	// NaNFrac is the probability a cell is NaN (routed via the reserved
	// missing bin). InfFrac is the probability a cell is ±Inf (ordered
	// normally by the binning). DenormalFrac is the probability a cell
	// is a subnormal float.
	NaNFrac, InfFrac, DenormalFrac float64
	// SingleBinFeature makes feature 0 constant: one bin, no valid cut
	// strictly inside it, splits on it impossible — the degenerate
	// column every quantizer must survive.
	SingleBinFeature bool
}

// Case is one generated equivalence case: the corpus, its binning, the
// model in every inference form, and the quantized corpus rows.
type Case struct {
	Spec  Spec
	X     [][]float64
	Y     []float64
	Bins  *dataset.BinnedMatrix
	Codes [][]uint8

	Tree     *cart.Tree
	Compiled *cart.CompiledTree
	Binned   *cart.BinnedTree
	// Tiled is the corpus codes repacked feature-major
	// (dataset.TileCodes), the layout the fleet-sweep kernels read.
	Tiled *dataset.TiledMatrix
}

// Generate builds a Case from a Spec: draw the matrix, synthesize
// labels, train with the Spec's bin budget, bin the corpus with the same
// budget, and compile every scoring form. The generated corpus is the
// domain on which float and binned scoring must agree bit for bit.
func Generate(spec Spec) (*Case, error) {
	if spec.Rows < 8 || spec.Features < 1 {
		return nil, fmt.Errorf("equiv: spec needs ≥ 8 rows and ≥ 1 feature, got %d×%d", spec.Rows, spec.Features)
	}
	if spec.MaxBins < 1 || spec.MaxBins > dataset.MaxBinsLimit {
		return nil, fmt.Errorf("equiv: MaxBins %d outside [1,%d]", spec.MaxBins, dataset.MaxBinsLimit)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Per-feature value pools: bounded pools make runs of exact ties that
	// land on bin boundaries; special values go through the same pool so
	// ties can be ±Inf or denormal too.
	pools := make([][]float64, spec.Features)
	for f := range pools {
		n := spec.DistinctValues
		if n <= 0 {
			n = spec.Rows
		}
		pool := make([]float64, n)
		for i := range pool {
			pool[i] = drawValue(rng, spec)
		}
		pools[f] = pool
	}

	x := make([][]float64, spec.Rows)
	y := make([]float64, spec.Rows)
	for i := range x {
		row := make([]float64, spec.Features)
		for f := range row {
			switch {
			case spec.SingleBinFeature && f == 0:
				row[f] = 42.5
			case rng.Float64() < spec.NaNFrac:
				row[f] = math.NaN()
			default:
				row[f] = pools[f][rng.Intn(len(pools[f]))]
			}
		}
		x[i] = row
		if spec.Regression {
			y[i] = rng.Float64()*2 - 1
		} else {
			y[i] = float64(rng.Intn(2)*2 - 1)
		}
	}

	// Noise labels grow deep trees at a tiny CP: splits everywhere the
	// partitioner can find them, which is exactly the kernel coverage an
	// equivalence case wants.
	params := cart.Params{MinSplit: 4, MinBucket: 2, CP: 1e-9, MaxBins: spec.MaxBins, Workers: 1}
	var (
		tree *cart.Tree
		err  error
	)
	if spec.Regression {
		tree, err = cart.TrainRegressor(x, y, nil, params)
	} else {
		params.LossFA = 2
		tree, err = cart.TrainClassifier(x, y, nil, params)
	}
	if err != nil {
		return nil, fmt.Errorf("equiv: train: %w", err)
	}

	bm, err := dataset.BinMatrix(x, spec.MaxBins)
	if err != nil {
		return nil, fmt.Errorf("equiv: bin: %w", err)
	}
	ct := tree.Compile()
	bt, err := ct.CompileBinned(bm)
	if err != nil {
		return nil, fmt.Errorf("equiv: compile binned: %w", err)
	}
	codes, err := bm.Quantize(x)
	if err != nil {
		return nil, fmt.Errorf("equiv: quantize: %w", err)
	}
	tm, err := dataset.TileCodes(codes, bm.NumFeatures)
	if err != nil {
		return nil, fmt.Errorf("equiv: tile: %w", err)
	}
	return &Case{Spec: spec, X: x, Y: y, Bins: bm, Codes: codes,
		Tree: tree, Compiled: ct, Binned: bt, Tiled: tm}, nil
}

// drawValue produces one finite-or-Inf corpus value with the Spec's
// special-value mix.
func drawValue(rng *rand.Rand, spec Spec) float64 {
	r := rng.Float64()
	switch {
	case r < spec.InfFrac:
		return math.Inf(2*rng.Intn(2) - 1)
	case r < spec.InfFrac+spec.DenormalFrac:
		// Subnormals: tiny positive/negative values below 2^-1022.
		v := float64(rng.Intn(1<<20)+1) * 5e-324
		if rng.Intn(2) == 0 {
			v = -v
		}
		return v
	case rng.Intn(4) == 0:
		return float64(rng.Intn(64)-32) / 8 // coarse grid: extra cross-feature ties
	default:
		return rng.NormFloat64() * 100
	}
}

// Path is one way of scoring a Case: a name for diagnostics and a
// function filling dst[i] with the score of row i.
type Path struct {
	Name  string
	Score func(c *Case, dst []float64)
}

// Mismatch reports the first row where two paths diverge.
type Mismatch struct {
	PathA, PathB string
	Row          int
	A, B         float64
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("equiv: %s and %s diverge at row %d: %v vs %v (bits %#x vs %#x)",
		m.PathA, m.PathB, m.Row, m.A, m.B, math.Float64bits(m.A), math.Float64bits(m.B))
}

// Check scores the case through both paths and returns the first
// mismatch, or nil when they are bit-identical (NaN equals NaN; +0 and
// −0 are distinct).
func Check(c *Case, a, b Path) error {
	da := make([]float64, len(c.X))
	db := make([]float64, len(c.X))
	a.Score(c, da)
	b.Score(c, db)
	for i := range da {
		if !sameBits(da[i], db[i]) {
			return &Mismatch{PathA: a.Name, PathB: b.Name, Row: i, A: da[i], B: db[i]}
		}
	}
	return nil
}

// CheckAll checks every path against the first, returning the first
// mismatch found.
func CheckAll(c *Case, paths ...Path) error {
	for _, p := range paths[1:] {
		if err := Check(c, paths[0], p); err != nil {
			return err
		}
	}
	return nil
}

// sameBits is bit-level equality with all NaN payloads identified: the
// scoring paths produce NaN only via the same math, so any NaN matches
// any NaN, while +0/−0 and every finite value must match exactly.
func sameBits(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// Pointer scores through the pointer tree, sample by sample.
func Pointer() Path {
	return Path{Name: "pointer", Score: func(c *Case, dst []float64) {
		for i, row := range c.X {
			dst[i] = c.Tree.Predict(row)
		}
	}}
}

// CompiledScalar scores through the compiled tree's per-sample walk.
func CompiledScalar() Path {
	return Path{Name: "compiled", Score: func(c *Case, dst []float64) {
		for i, row := range c.X {
			dst[i] = c.Compiled.Predict(row)
		}
	}}
}

// CompiledBatch scores through the compiled batch engine in blocks of
// the given size (0 = one call for the whole case). Block sizes around
// the engine's internal partition thresholds exercise every kernel.
func CompiledBatch(block int) Path {
	return Path{Name: fmt.Sprintf("compiled-batch/%d", block), Score: func(c *Case, dst []float64) {
		forEachBlock(len(c.X), block, func(lo, hi int) {
			c.Compiled.PredictBatch(c.X[lo:hi], dst[lo:hi])
		})
	}}
}

// BinnedScalar scores the quantized rows through the binned per-sample
// walk.
func BinnedScalar() Path {
	return Path{Name: "binned", Score: func(c *Case, dst []float64) {
		for i, codes := range c.Codes {
			dst[i] = c.Binned.Predict(codes)
		}
	}}
}

// BinnedBatch scores the quantized rows through the binned batch engine
// in blocks of the given size (0 = one call).
func BinnedBatch(block int) Path {
	return Path{Name: fmt.Sprintf("binned-batch/%d", block), Score: func(c *Case, dst []float64) {
		forEachBlock(len(c.Codes), block, func(lo, hi int) {
			c.Binned.PredictBatch(c.Codes[lo:hi], dst[lo:hi])
		})
	}}
}

// BinnedBatchScattered copies every quantized row into its own
// allocation before scoring, defeating the batch engine's flat-matrix
// layout detection: the rows out of Quantize share one contiguous
// backing array and take the stride-arithmetic kernels, so this path
// pins the gathered-pointer kernels against them.
func BinnedBatchScattered(block int) Path {
	return Path{Name: fmt.Sprintf("binned-scattered/%d", block), Score: func(c *Case, dst []float64) {
		scattered := make([][]uint8, len(c.Codes))
		for i, codes := range c.Codes {
			scattered[i] = append([]uint8(nil), codes...)
		}
		forEachBlock(len(scattered), block, func(lo, hi int) {
			c.Binned.PredictBatch(scattered[lo:hi], dst[lo:hi])
		})
	}}
}

// TiledRange scores the feature-major tiled matrix through the sweep
// kernels in row ranges of the given size (0 = one call). Range sizes
// around dataset.TileRows exercise the tile-seam addressing.
func TiledRange(block int) Path {
	return Path{Name: fmt.Sprintf("tiled-range/%d", block), Score: func(c *Case, dst []float64) {
		forEachBlock(len(c.Codes), block, func(lo, hi int) {
			c.Binned.PredictTiledRange(c.Tiled, lo, hi, dst[lo:hi])
		})
	}}
}

// TiledWorkers shards tiled row ranges across goroutines — the sweep
// engine's claim that outcomes are worker-count-invariant reduces to
// this: every score lands at its own index whatever goroutine computed
// it.
func TiledWorkers(workers int) Path {
	return Path{Name: fmt.Sprintf("tiled-workers/%d", workers), Score: func(c *Case, dst []float64) {
		forEachShard(len(c.Codes), workers, func(lo, hi int) {
			c.Binned.PredictTiledRange(c.Tiled, lo, hi, dst[lo:hi])
		})
	}}
}

// CompiledWorkers scores through the compiled batch engine with the rows
// sharded across the given number of goroutines — every score lands at
// its own index, so the result must be identical to any serial path.
func CompiledWorkers(workers int) Path {
	return Path{Name: fmt.Sprintf("compiled-workers/%d", workers), Score: func(c *Case, dst []float64) {
		forEachShard(len(c.X), workers, func(lo, hi int) {
			c.Compiled.PredictBatch(c.X[lo:hi], dst[lo:hi])
		})
	}}
}

// BinnedWorkers is CompiledWorkers for the binned engine.
func BinnedWorkers(workers int) Path {
	return Path{Name: fmt.Sprintf("binned-workers/%d", workers), Score: func(c *Case, dst []float64) {
		forEachShard(len(c.Codes), workers, func(lo, hi int) {
			c.Binned.PredictBatch(c.Codes[lo:hi], dst[lo:hi])
		})
	}}
}

// PointerProb, CompiledProb and BinnedProb are the failed-probability
// surfaces of the classification paths (NaN for regression trees on
// every path alike).
func PointerProb() Path {
	return Path{Name: "pointer-prob", Score: func(c *Case, dst []float64) {
		for i, row := range c.X {
			dst[i] = c.Tree.ProbFailed(row)
		}
	}}
}

// CompiledProb is the compiled failed-probability batch surface.
func CompiledProb() Path {
	return Path{Name: "compiled-prob", Score: func(c *Case, dst []float64) {
		c.Compiled.ProbFailedBatch(c.X, dst)
	}}
}

// BinnedProb is the binned failed-probability batch surface.
func BinnedProb() Path {
	return Path{Name: "binned-prob", Score: func(c *Case, dst []float64) {
		c.Binned.ProbFailedBatch(c.Codes, dst)
	}}
}

// TiledProb is the tiled failed-probability surface.
func TiledProb() Path {
	return Path{Name: "tiled-prob", Score: func(c *Case, dst []float64) {
		c.Binned.ProbFailedTiledRange(c.Tiled, 0, len(c.Codes), dst)
	}}
}

// ForceKernel pins a path to one dispatch tier: the wrapped path scores
// with the given kernel active and the previous tier restored after.
// This is how the kernel-equivalence contract is enforced — the same
// path, run under every tier the build links, must emit identical bytes,
// because the partition kernels are order-defining (the order they emit
// becomes the next tree level's input order, so tiers that merely
// "count the same" would still diverge downstream). The kernel must be
// supported on this build (cpu.Kernels lists the supported set); scoring
// panics otherwise rather than silently testing the wrong tier.
func ForceKernel(k cpu.Kernel, p Path) Path {
	return Path{
		Name: fmt.Sprintf("kernel-%s/%s", k, p.Name),
		Score: func(c *Case, dst []float64) {
			prev, ok := cpu.SetActive(k)
			if !ok {
				panic(fmt.Sprintf("equiv: kernel %s not supported on this build", k))
			}
			defer cpu.SetActive(prev)
			p.Score(c, dst)
		},
	}
}

// forEachBlock invokes fn over consecutive [lo,hi) blocks.
func forEachBlock(n, block int, fn func(lo, hi int)) {
	if block <= 0 {
		block = n
	}
	for lo := 0; lo < n; lo += block {
		fn(lo, min(lo+block, n))
	}
}

// forEachShard splits [0,n) into up to workers contiguous shards and
// runs them concurrently.
func forEachShard(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n < 2 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	size := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := min(lo+size, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// PerturbWithinBin returns a copy of the corpus with every finite value
// re-drawn uniformly inside its own bin's [Lower, Upper] value range
// (NaN cells and infinite bin bounds are left untouched). Every
// perturbed row quantizes to the same codes, so the binned verdicts must
// not change — the metamorphic property of binned inference.
func (c *Case) PerturbWithinBin(seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, len(c.X))
	for i, row := range c.X {
		p := make([]float64, len(row))
		copy(p, row)
		for f, v := range p {
			if math.IsNaN(v) {
				continue
			}
			col := &c.Bins.Cols[f]
			b := int(col.CodeOf(v))
			if b >= col.NumBins {
				continue // above the top bin: no range to move within
			}
			lo, hi := col.Lower[b], col.Upper[b]
			if lo == hi || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
				continue
			}
			nv := lo + rng.Float64()*(hi-lo)
			if nv > hi {
				nv = hi
			}
			if nv < lo {
				nv = lo
			}
			p[f] = nv
		}
		out[i] = p
	}
	return out
}

// CheckDetect runs the float and binned detectors over the corpus as
// drive series — Voting vs VotingBinned, MeanThreshold vs
// MeanThresholdBinned, MultiVoting vs MultiVotingBinned at every worker
// count, and ScanBatch vs ScanBatchBinned — requiring identical alarm
// indexes and outcomes everywhere. The corpus is split into several
// series so the fleet paths see more than one drive.
func CheckDetect(c *Case, voters []int, workers []int) error {
	series, binned := c.splitSeries(4)
	for _, n := range voters {
		fv := &detect.Voting{Model: c.Compiled, Voters: n}
		bv := &detect.VotingBinned{Model: c.Binned, Voters: n}
		fm := &detect.MeanThreshold{Model: c.Compiled, Voters: n, Threshold: -0.1}
		bmn := &detect.MeanThresholdBinned{Model: c.Binned, Voters: n, Threshold: -0.1}
		for d := range series {
			if want, got := fv.Detect(series[d].X), bv.Detect(binned[d].Codes); want != got {
				return fmt.Errorf("equiv: voting N=%d series %d: float alarm %d, binned %d", n, d, want, got)
			}
			if want, got := fm.Detect(series[d].X), bmn.Detect(binned[d].Codes); want != got {
				return fmt.Errorf("equiv: mean N=%d series %d: float alarm %d, binned %d", n, d, want, got)
			}
		}
		for _, w := range workers {
			fOut := detect.ScanBatch(fv, series, nil, w)
			bOut := detect.ScanBatchBinned(bv, binned, nil, w)
			for d := range fOut {
				if fOut[d] != bOut[d] {
					return fmt.Errorf("equiv: scan-batch N=%d workers=%d series %d: float %+v, binned %+v",
						n, w, d, fOut[d], bOut[d])
				}
			}
		}
	}
	for _, w := range workers {
		ref := (&detect.MultiVoting{Model: c.Compiled, Voters: voters, Workers: 1}).DetectAll(series[0].X)
		got := (&detect.MultiVotingBinned{Model: c.Binned, Voters: voters, Workers: w}).DetectAll(binned[0].Codes)
		for k := range ref {
			if ref[k] != got[k] {
				return fmt.Errorf("equiv: multi-voting workers=%d window %d: float alarm %d, binned %d",
					w, voters[k], ref[k], got[k])
			}
		}
	}
	return nil
}

// splitSeries slices the corpus into k drive series (float and binned
// views of the same rows).
func (c *Case) splitSeries(k int) ([]detect.Series, []detect.BinnedSeries) {
	if k > len(c.X) {
		k = len(c.X)
	}
	size := (len(c.X) + k - 1) / k
	var fs []detect.Series
	var bs []detect.BinnedSeries
	for lo := 0; lo < len(c.X); lo += size {
		hi := min(lo+size, len(c.X))
		hours := make([]int, hi-lo)
		for i := range hours {
			hours[i] = i * 8
		}
		fs = append(fs, detect.Series{X: c.X[lo:hi], Hours: hours})
		bs = append(bs, detect.BinnedSeries{Codes: c.Codes[lo:hi], Hours: hours})
	}
	return fs, bs
}
