package equiv

import (
	"testing"

	"hddcart/internal/cpu"
)

// FuzzBinnedInferenceEquivalence drives the whole harness from fuzzed
// corpus shapes: whatever matrix the fuzzer conjures, every scoring path
// must stay bit-identical on the corpus. Spec fields are clamped into
// their valid ranges so every input is a meaningful case rather than a
// validation rejection.
func FuzzBinnedInferenceEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(8), uint8(16), false, uint16(40), uint16(1500), uint16(500))
	f.Add(int64(77), uint8(2), uint8(1), uint8(0), true, uint16(0), uint16(0), uint16(0))
	f.Add(int64(3), uint8(6), uint8(255), uint8(12), false, uint16(600), uint16(300), uint16(300))
	f.Add(int64(9), uint8(1), uint8(2), uint8(3), true, uint16(2000), uint16(0), uint16(4000))
	// Tile-seam seed: rows derive from nanPM, and 2500‰ lands the corpus
	// at 346 rows — past dataset.TileRows, so the tiled paths cross a
	// tile boundary.
	f.Add(int64(12), uint8(5), uint8(32), uint8(24), false, uint16(2500), uint16(150), uint16(80))
	f.Fuzz(func(t *testing.T, seed int64, features, maxBins, distinct uint8,
		regression bool, nanPM, infPM, denPM uint16) {
		spec := Spec{
			Rows:             96 + int(nanPM%4001)/10, // 96..496: spans the 256-row tile seam
			Features:         1 + int(features)%8,
			MaxBins:          1 + int(maxBins)%255,
			Seed:             seed,
			Regression:       regression,
			DistinctValues:   int(distinct) % 48,
			NaNFrac:          float64(nanPM%4001) / 10000, // ≤ 0.4
			InfFrac:          float64(infPM%2001) / 10000, // ≤ 0.2
			DenormalFrac:     float64(denPM%4001) / 10000, // ≤ 0.4
			SingleBinFeature: seed%3 == 0,
		}
		c, err := Generate(spec)
		if err != nil {
			t.Fatalf("generate %+v: %v", spec, err)
		}
		if err := CheckAll(c,
			Pointer(), CompiledScalar(), CompiledBatch(0), CompiledBatch(33),
			BinnedScalar(), BinnedBatch(0), BinnedBatch(33),
			TiledRange(0), TiledRange(33),
		); err != nil {
			t.Fatal(err)
		}
		// The dispatch-sensitive paths must also hold under every kernel
		// tier this build supports — the fuzzer hunts for corpus shapes
		// where a vector tier's seam handling diverges from scalar.
		for _, p := range []Path{BinnedBatch(0), TiledRange(0), TiledRange(33)} {
			forced := make([]Path, 0, 3)
			for _, k := range cpu.Kernels() {
				forced = append(forced, ForceKernel(k, p))
			}
			if err := CheckAll(c, forced...); err != nil {
				t.Fatal(err)
			}
		}
		if !spec.Regression {
			if err := CheckAll(c, PointerProb(), CompiledProb(), BinnedProb(), TiledProb()); err != nil {
				t.Fatal(err)
			}
		}
	})
}
