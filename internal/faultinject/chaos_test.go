// Chaos suite: drives the full ingest→monitor→detect pipeline through
// every fault injector at increasing severities and asserts the pipeline's
// three robustness invariants (DESIGN.md §10):
//
//  1. no input corruption panics any stage;
//  2. severity 0 is bit-identical to the clean pipeline — the hardening
//     layers are pure pass-throughs on clean telemetry;
//  3. degradation is graceful: detection verdicts drift from the clean
//     baseline by a bounded, severity-monotone amount, and every ingest
//     decision is visible in the accounting counters.
//
// The external test package (faultinject_test) lets the suite import the
// root hddcart API and exercise exactly what library users call.
package faultinject_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"hddcart"
	"hddcart/internal/cart"
	"hddcart/internal/detect"
	"hddcart/internal/faultinject"
	"hddcart/internal/simulate"
	"hddcart/internal/smart"
	"hddcart/internal/trace"
)

const chaosSeed = 4242

// severities returns the chaos severity ladder; -short (the CI chaos-smoke
// job) keeps the identity and light-corruption points.
func severities(t *testing.T) []float64 {
	if testing.Short() {
		return []float64{0, 0.01}
	}
	return []float64{0, 0.01, 0.1, 0.5}
}

// chaosEnv is the shared fixture: a small deterministic fleet and a tree
// trained on its clean traces.
type chaosEnv struct {
	features smart.FeatureSet
	model    hddcart.Predictor
	serials  []string // deterministic drive order
	traces   map[string][]smart.Record
	failHour map[string]int // -1 for good drives
}

var (
	envOnce sync.Once
	env     *chaosEnv
)

func chaosFixture(t *testing.T) *chaosEnv {
	t.Helper()
	envOnce.Do(func() {
		fleet, err := simulate.New(simulate.Config{Seed: chaosSeed, GoodScale: 0.001, FailedScale: 0.03})
		if err != nil {
			panic(err)
		}
		e := &chaosEnv{
			features: smart.CriticalFeatures(),
			traces:   make(map[string][]smart.Record),
			failHour: make(map[string]int),
		}
		var x [][]float64
		var y []float64
		for _, d := range fleet.Drives() {
			recs := fleet.Trace(d.Index)
			e.serials = append(e.serials, d.Serial)
			e.traces[d.Serial] = recs
			fh := -1
			if d.Failed {
				fh = d.FailHour
			}
			e.failHour[d.Serial] = fh
			s := detect.ExtractSeries(e.features, recs, 0, len(recs))
			for i, vec := range s.X {
				deteriorating := d.Failed && s.Hours[i] >= d.FailHour-d.Window
				switch {
				case deteriorating:
					x = append(x, vec)
					y = append(y, -1)
				case i%24 == 0: // subsample the healthy bulk
					x = append(x, vec)
					y = append(y, 1)
				}
			}
		}
		sort.Strings(e.serials)
		tree, err := cart.TrainClassifier(x, y, nil, cart.Params{MinSplit: 20, MinBucket: 7, CP: 0.001})
		if err != nil {
			panic(err)
		}
		e.model = hddcart.CompileModel(tree)
		env = e
	})
	return env
}

// inject corrupts every drive's trace with one injector at one severity,
// each drive on its own derived seed.
func inject(e *chaosEnv, inj faultinject.Injector, severity float64) map[string][]smart.Record {
	out := make(map[string][]smart.Record, len(e.traces))
	for serial, recs := range e.traces {
		rng := rand.New(rand.NewSource(faultinject.SeedFor(chaosSeed, inj.Name, serial)))
		out[serial] = inj.Apply(rng, recs, severity)
	}
	return out
}

// offlineOutcome is one drive's verdict under both offline detectors.
type offlineOutcome struct {
	votingAlarmed bool
	votingHour    int
	meanAlarmed   bool
	meanHour      int
}

// runOffline runs the hardened offline pipeline — sanitize → extract
// (non-finite vectors dropped) → detect (NaN-excluding voting and
// mean-threshold) — over every drive.
func runOffline(e *chaosEnv, traces map[string][]smart.Record) map[string]offlineOutcome {
	voting := &hddcart.VotingDetector{Model: e.model, Voters: 5}
	mean := &hddcart.MeanThresholdDetector{Model: e.model, Voters: 5, Threshold: -0.2}
	out := make(map[string]offlineOutcome, len(traces))
	for _, serial := range e.serials {
		recs, _ := smart.SanitizeTrace(traces[serial])
		s := detect.ExtractSeries(e.features, recs, 0, len(recs))
		v := detect.Scan(voting, s, e.failHour[serial])
		m := detect.Scan(mean, s, e.failHour[serial])
		out[serial] = offlineOutcome{
			votingAlarmed: v.Alarmed, votingHour: v.AlarmHour,
			meanAlarmed: m.Alarmed, meanHour: m.AlarmHour,
		}
	}
	return out
}

// monitorRun is the online pipeline's observable result: which drives
// warned plus the full ingest accounting.
type monitorRun struct {
	warned map[string]bool
	stats  hddcart.MonitorStats
	fed    int
}

func runMonitor(t *testing.T, e *chaosEnv, traces map[string][]smart.Record) monitorRun {
	t.Helper()
	m, err := hddcart.NewMonitor(hddcart.MonitorConfig{
		Features:        e.features,
		Model:           e.model,
		Voters:          5,
		StaleAfterHours: 72,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := monitorRun{warned: make(map[string]bool)}
	for _, serial := range e.serials {
		for _, rec := range traces[serial] {
			run.fed++
			if _, ok := m.Observe(serial, rec); ok {
				run.warned[serial] = true
			}
		}
	}
	run.stats = m.Stats()
	return run
}

// verdictDisagreement is the fraction of drives whose alarmed-verdict
// differs between two runs.
func verdictDisagreement(base, got map[string]bool, serials []string) float64 {
	diff := 0
	for _, s := range serials {
		if base[s] != got[s] {
			diff++
		}
	}
	return float64(diff) / float64(len(serials))
}

// degradationBound is the allowed verdict-disagreement fraction at a
// severity: small corruption may only move a small slice of the fleet.
func degradationBound(severity float64) float64 {
	return math.Min(1, 6*severity+0.15)
}

func TestChaosOfflineDetection(t *testing.T) {
	e := chaosFixture(t)
	baseline := runOffline(e, e.traces)
	for _, inj := range faultinject.RecordInjectors() {
		inj := inj
		t.Run(inj.Name, func(t *testing.T) {
			prev := -1.0
			for _, sev := range severities(t) {
				got := runOffline(e, inject(e, inj, sev))
				if sev == 0 {
					if !maps2Equal(baseline, got) {
						t.Fatalf("severity 0 not bit-identical to the clean pipeline")
					}
				}
				baseV := make(map[string]bool)
				gotV := make(map[string]bool)
				for s, o := range baseline {
					baseV[s] = o.votingAlarmed
				}
				for s, o := range got {
					gotV[s] = o.votingAlarmed
				}
				d := verdictDisagreement(baseV, gotV, e.serials)
				t.Logf("severity %.2f: voting disagreement %.3f", sev, d)
				if d > degradationBound(sev) {
					t.Errorf("severity %.2f: disagreement %.3f exceeds bound %.3f",
						sev, d, degradationBound(sev))
				}
				if d+0.2 < prev {
					t.Errorf("severity %.2f: disagreement %.3f fell far below the previous severity's %.3f",
						sev, d, prev)
				}
				prev = math.Max(prev, d)
			}
		})
	}
}

func maps2Equal(a, b map[string]offlineOutcome) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

func TestChaosMonitor(t *testing.T) {
	e := chaosFixture(t)
	baseline := runMonitor(t, e, e.traces)
	for _, inj := range faultinject.RecordInjectors() {
		inj := inj
		t.Run(inj.Name, func(t *testing.T) {
			for _, sev := range severities(t) {
				got := runMonitor(t, e, inject(e, inj, sev))
				st := got.stats
				if st.Observed != got.fed {
					t.Fatalf("severity %.2f: Observed %d != fed %d", sev, st.Observed, got.fed)
				}
				accounted := st.Scored + st.DroppedOutOfOrder + st.DroppedDuplicate +
					st.DroppedInvalid + st.DroppedQuarantined
				if accounted > st.Observed {
					t.Fatalf("severity %.2f: accounting %d exceeds Observed %d (%+v)",
						sev, accounted, st.Observed, st)
				}
				if sev == 0 {
					if !mapsBoolEqual(baseline.warned, got.warned) || baseline.stats != got.stats {
						t.Fatalf("severity 0 not bit-identical: stats %+v vs %+v", baseline.stats, got.stats)
					}
					continue
				}
				d := verdictDisagreement(baseline.warned, got.warned, e.serials)
				t.Logf("severity %.2f: warned disagreement %.3f, stats %+v", sev, d, st)
				if d > degradationBound(sev) {
					t.Errorf("severity %.2f: disagreement %.3f exceeds bound %.3f",
						sev, d, degradationBound(sev))
				}
				// The degradation policy must actually be exercising its
				// counters: heavy corruption cannot be invisible.
				if sev >= 0.1 {
					dropsOrRepairs := st.DroppedOutOfOrder + st.DroppedDuplicate +
						st.DroppedInvalid + st.DroppedQuarantined + st.Repaired + st.StaleResets
					if inj.Name != "drop-samples" && dropsOrRepairs == 0 {
						t.Errorf("severity %.2f: %s left no trace in the degradation counters", sev, inj.Name)
					}
				}
			}
		})
	}
}

func mapsBoolEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestChaosConflictingSerials(t *testing.T) {
	e := chaosFixture(t)
	var drives []trace.DriveTrace
	for _, serial := range e.serials {
		drives = append(drives, trace.DriveTrace{
			Meta:    trace.DriveMeta{Serial: serial, Failed: e.failHour[serial] >= 0, FailHour: e.failHour[serial]},
			Records: e.traces[serial],
		})
	}
	feed := func(ds []trace.DriveTrace) monitorRun {
		traces := make(map[string][]smart.Record)
		for _, d := range ds {
			traces[d.Meta.Serial] = append(traces[d.Meta.Serial], d.Records...)
		}
		merged := &chaosEnv{
			features: e.features, model: e.model,
			traces: traces, failHour: e.failHour,
		}
		for s := range traces {
			merged.serials = append(merged.serials, s)
		}
		sort.Strings(merged.serials)
		return runMonitor(t, merged, traces)
	}
	baseline := feed(drives)
	for _, sev := range severities(t) {
		rng := rand.New(rand.NewSource(faultinject.SeedFor(chaosSeed, "conflict-serials")))
		got := feed(faultinject.ConflictSerials(rng, drives, sev))
		if sev == 0 {
			if !mapsBoolEqual(baseline.warned, got.warned) || baseline.stats != got.stats {
				t.Fatalf("severity 0 not bit-identical")
			}
			continue
		}
		st := got.stats
		if st.Observed != got.fed {
			t.Fatalf("severity %.2f: Observed %d != fed %d", sev, st.Observed, got.fed)
		}
		t.Logf("severity %.2f: stats %+v", sev, st)
		if sev >= 0.1 && st.DroppedOutOfOrder+st.DroppedDuplicate == 0 {
			t.Errorf("severity %.2f: conflicting serials produced no collision drops", sev)
		}
	}
}

// renderBackblaze serializes traces as a daily Backblaze drive-stats CSV.
func renderBackblaze(e *chaosEnv) string {
	var b strings.Builder
	b.WriteString("date,serial_number,model,failure")
	for _, a := range smart.Catalogue {
		fmt.Fprintf(&b, ",smart_%d_normalized,smart_%d_raw", int(a.ID), int(a.ID))
	}
	b.WriteByte('\n')
	epoch := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, serial := range e.serials {
		recs := e.traces[serial]
		fh := e.failHour[serial]
		lastDaily := -1
		for i := range recs {
			if recs[i].Hour%24 == 0 {
				lastDaily = i
			}
		}
		for i := range recs {
			rec := &recs[i]
			if rec.Hour%24 != 0 {
				continue
			}
			failure := "0"
			if fh >= 0 && i == lastDaily {
				failure = "1"
			}
			date := epoch.AddDate(0, 0, rec.Hour/24).Format("2006-01-02")
			fmt.Fprintf(&b, "%s,%s,F,%s", date, serial, failure)
			for j := 0; j < smart.NumAttrs; j++ {
				fmt.Fprintf(&b, ",%g,%g", rec.Normalized[j], rec.Raw[j])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func TestChaosBackblazeIngest(t *testing.T) {
	e := chaosFixture(t)
	doc := renderBackblaze(e)
	parse := func(d string) ([]trace.DriveTrace, trace.ParseStats) {
		drives, stats, err := trace.ReadBackblazeStats(strings.NewReader(d), trace.BackblazeOptions{})
		if err != nil {
			t.Fatalf("ingest failed outright: %v", err)
		}
		return drives, stats
	}
	baseDrives, baseStats := parse(doc)
	if len(baseDrives) != len(e.serials) {
		t.Fatalf("clean parse found %d drives, want %d", len(baseDrives), len(e.serials))
	}
	if baseStats.Dropped != 0 || baseStats.Repaired != 0 {
		t.Fatalf("clean parse reported corruption: %+v", baseStats)
	}
	for _, sev := range severities(t) {
		rng := rand.New(rand.NewSource(faultinject.SeedFor(chaosSeed, "truncate-csv")))
		mangled := faultinject.TruncateCSVRows(rng, doc, sev)
		if sev == 0 && mangled != doc {
			t.Fatal("severity 0 changed the CSV")
		}
		drives, stats := parse(mangled)
		if sev == 0 && (len(drives) != len(baseDrives) || stats.String() != baseStats.String()) {
			t.Fatalf("severity 0 parse differs from clean parse")
		}
		t.Logf("severity %.2f: %d drives, %s", sev, len(drives), stats.String())
		if len(drives) < len(baseDrives)/2 {
			t.Errorf("severity %.2f: ingest lost most of the fleet (%d of %d drives)",
				sev, len(drives), len(baseDrives))
		}
		// Whatever survived ingest must be clean: chronological hours,
		// in-domain values, serials intact.
		for _, dt := range drives {
			if dt.Meta.Serial == "" {
				t.Fatal("accepted a drive without a serial")
			}
			for i := range dt.Records {
				if i > 0 && dt.Records[i].Hour <= dt.Records[i-1].Hour {
					t.Fatalf("severity %.2f: drive %s hours not chronological", sev, dt.Meta.Serial)
				}
				if n := dt.Records[i].CorruptValues(); n != 0 {
					t.Fatalf("severity %.2f: drive %s carries %d corrupt values", sev, dt.Meta.Serial, n)
				}
			}
		}
	}
}
