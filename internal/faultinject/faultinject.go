// Package faultinject deterministically corrupts SMART telemetry so tests
// can drive the ingest→monitor→detect pipeline through the fault classes
// real collectors produce: lost and re-delivered samples, clock trouble
// (out-of-order rows, long gaps), value corruption (NaN, ±Inf,
// out-of-domain numbers), truncated CSV rows and serial-number conflicts.
//
// Every injector draws from a caller-seeded *rand.Rand and flips an
// independent Bernoulli(severity) coin per row, so
//
//   - severity 0 is the identity (the output equals the input bit for bit),
//   - a fixed (seed, severity) pair always yields the same corruption, and
//   - expected damage scales linearly with severity.
//
// That determinism is what lets the chaos suite assert exact behaviour at
// severity 0 and reproducible, bounded degradation above it.
package faultinject

import (
	"math"
	"math/rand"
	"strings"

	"hddcart/internal/smart"
	"hddcart/internal/trace"
)

// SeedFor derives a stable sub-seed from a base seed and string labels
// (injector name, drive serial, ...) so each (injector, drive) pair gets an
// independent deterministic stream: corrupting one drive harder never
// shifts the randomness applied to another.
func SeedFor(base int64, labels ...string) int64 {
	h := uint64(base) ^ 1469598103934665603
	for _, s := range labels {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff // separator so ("ab","c") != ("a","bc")
		h *= 1099511628211
	}
	return int64(h & math.MaxInt64)
}

// Injector is one named, record-level fault class.
type Injector struct {
	// Name labels the injector in test output.
	Name string
	// apply corrupts a private copy of the records.
	apply func(rng *rand.Rand, recs []smart.Record, severity float64)
}

// Apply returns a corrupted copy of recs. The input is never mutated, and
// severity (clamped to [0,1]) is the per-row corruption probability;
// severity 0 returns an exact copy.
func (inj Injector) Apply(rng *rand.Rand, recs []smart.Record, severity float64) []smart.Record {
	if severity < 0 {
		severity = 0
	}
	if severity > 1 {
		severity = 1
	}
	out := make([]smart.Record, len(recs))
	copy(out, recs)
	if severity == 0 {
		return out
	}
	inj.apply(rng, out, severity)
	n := 0
	for i := range out {
		if out[i].Hour != droppedHour {
			out[n] = out[i]
			n++
		}
	}
	return out[:n]
}

// DropSamples loses each sample independently (collector outages, storage
// errors — the paper's §IV-A dropout, dialled up).
func DropSamples() Injector {
	return Injector{Name: "drop-samples", apply: func(rng *rand.Rand, recs []smart.Record, severity float64) {
		// Mark dropped rows; Apply compacts them out of the returned slice.
		for i := range recs {
			if rng.Float64() < severity {
				recs[i].Hour = droppedHour
			}
		}
	}}
}

// droppedHour marks a record DropSamples removed; Apply compacts them out.
const droppedHour = math.MinInt32

// DuplicateSamples re-delivers a sample for an hour already seen (retrying
// collectors, at-least-once transports). The duplicate replaces its right
// neighbour so the trace length is unchanged and the fault is purely
// "same hour twice".
func DuplicateSamples() Injector {
	return Injector{Name: "duplicate-samples", apply: func(rng *rand.Rand, recs []smart.Record, severity float64) {
		for i := 0; i+1 < len(recs); i++ {
			if rng.Float64() < severity {
				recs[i+1] = recs[i]
			}
		}
	}}
}

// ReorderSamples swaps adjacent samples (clock skew between collector
// shards, queue re-ordering), producing locally non-chronological streams.
func ReorderSamples() Injector {
	return Injector{Name: "reorder-samples", apply: func(rng *rand.Rand, recs []smart.Record, severity float64) {
		for i := 1; i < len(recs); i++ {
			if rng.Float64() < severity {
				recs[i-1], recs[i] = recs[i], recs[i-1]
			}
		}
	}}
}

// GapTimestamps opens a telemetry blackout before a sample: its hour and
// every later hour shift forward by one to fourteen days.
func GapTimestamps() Injector {
	return Injector{Name: "gap-timestamps", apply: func(rng *rand.Rand, recs []smart.Record, severity float64) {
		offset := 0
		for i := range recs {
			if rng.Float64() < severity {
				offset += 24 + rng.Intn(13*24+1)
			}
			recs[i].Hour += offset
		}
	}}
}

// CorruptNaN overwrites one normalized and one raw value per hit row with
// NaN (failed attribute reads serialized as garbage).
func CorruptNaN() Injector {
	return corruptValues("corrupt-nan",
		func(*rand.Rand) float64 { return math.NaN() },
		func(*rand.Rand) float64 { return math.NaN() })
}

// CorruptInf overwrites values with ±Inf (overflowed counters, broken
// float formatting).
func CorruptInf() Injector {
	inf := func(rng *rand.Rand) float64 {
		if rng.Float64() < 0.5 {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	return corruptValues("corrupt-inf", inf, inf)
}

// CorruptOutOfRange overwrites values with finite numbers outside the SMART
// domains: normalized beyond [0,255], raw negative or beyond 48-bit range.
func CorruptOutOfRange() Injector {
	return corruptValues("corrupt-out-of-range",
		func(rng *rand.Rand) float64 {
			if rng.Float64() < 0.5 {
				return -1 - rng.Float64()*1000
			}
			return smart.MaxNormalized + 1 + rng.Float64()*1e6
		},
		func(rng *rand.Rand) float64 {
			if rng.Float64() < 0.5 {
				return -1 - rng.Float64()*1e6
			}
			return smart.MaxRaw * (2 + rng.Float64())
		})
}

// corruptValues builds a value-corruption injector: per hit row it poisons
// one random normalized and one random raw attribute.
func corruptValues(name string, norm, raw func(*rand.Rand) float64) Injector {
	return Injector{Name: name, apply: func(rng *rand.Rand, recs []smart.Record, severity float64) {
		for i := range recs {
			if rng.Float64() < severity {
				recs[i].Normalized[rng.Intn(smart.NumAttrs)] = norm(rng)
				recs[i].Raw[rng.Intn(smart.NumAttrs)] = raw(rng)
			}
		}
	}}
}

// RecordInjectors returns every record-level injector, one per fault class.
func RecordInjectors() []Injector {
	return []Injector{
		DropSamples(),
		DuplicateSamples(),
		ReorderSamples(),
		GapTimestamps(),
		CorruptNaN(),
		CorruptInf(),
		CorruptOutOfRange(),
	}
}

// TruncateCSVRows cuts each data line of a CSV document short at a random
// byte with probability severity (partial writes, mid-row crashes). The
// header line is never touched, and severity 0 returns the input unchanged.
func TruncateCSVRows(rng *rand.Rand, doc string, severity float64) string {
	if severity <= 0 {
		return doc
	}
	lines := strings.Split(doc, "\n")
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) > 0 && rng.Float64() < severity {
			lines[i] = lines[i][:rng.Intn(len(lines[i]))]
		}
	}
	return strings.Join(lines, "\n")
}

// ConflictSerials rewrites each drive's serial, with probability severity,
// to another randomly chosen drive's serial (cloned labels, asset-database
// mix-ups), so one serial carries two interleaved histories. The input
// slice is not mutated; severity 0 returns an exact copy.
func ConflictSerials(rng *rand.Rand, drives []trace.DriveTrace, severity float64) []trace.DriveTrace {
	out := make([]trace.DriveTrace, len(drives))
	copy(out, drives)
	if severity <= 0 || len(drives) < 2 {
		return out
	}
	for i := range out {
		if rng.Float64() < severity {
			out[i].Meta.Serial = drives[rng.Intn(len(drives))].Meta.Serial
		}
	}
	return out
}
