package faultinject

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hddcart/internal/smart"
	"hddcart/internal/trace"
)

// cleanTrace builds n chronological, fully in-domain records.
func cleanTrace(n int) []smart.Record {
	recs := make([]smart.Record, n)
	for i := range recs {
		recs[i].Hour = i
		for j := 0; j < smart.NumAttrs; j++ {
			recs[i].Normalized[j] = float64(90 + (i+j)%20)
			recs[i].Raw[j] = float64(i * (j + 1))
		}
	}
	return recs
}

func TestSeedForIndependence(t *testing.T) {
	if SeedFor(1, "a", "bc") == SeedFor(1, "ab", "c") {
		t.Error("label boundaries not separated")
	}
	if SeedFor(1, "x") == SeedFor(2, "x") {
		t.Error("base seed ignored")
	}
	if SeedFor(7, "drop", "d1") != SeedFor(7, "drop", "d1") {
		t.Error("seed not stable")
	}
	if SeedFor(7, "x") < 0 {
		t.Error("seed must be non-negative")
	}
}

func TestSeverityZeroIsIdentity(t *testing.T) {
	recs := cleanTrace(50)
	for _, inj := range RecordInjectors() {
		rng := rand.New(rand.NewSource(SeedFor(3, inj.Name)))
		out := inj.Apply(rng, recs, 0)
		if !reflect.DeepEqual(out, recs) {
			t.Errorf("%s: severity 0 is not the identity", inj.Name)
		}
		if len(out) > 0 && &out[0] == &recs[0] {
			t.Errorf("%s: returned the input slice instead of a copy", inj.Name)
		}
	}
}

// recsEqual compares record slices bit for bit (NaN equals NaN).
func recsEqual(a, b []smart.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Hour != b[i].Hour {
			return false
		}
		for j := 0; j < smart.NumAttrs; j++ {
			if math.Float64bits(a[i].Normalized[j]) != math.Float64bits(b[i].Normalized[j]) ||
				math.Float64bits(a[i].Raw[j]) != math.Float64bits(b[i].Raw[j]) {
				return false
			}
		}
	}
	return true
}

func TestApplyIsDeterministic(t *testing.T) {
	recs := cleanTrace(200)
	for _, inj := range RecordInjectors() {
		a := inj.Apply(rand.New(rand.NewSource(SeedFor(9, inj.Name))), recs, 0.3)
		b := inj.Apply(rand.New(rand.NewSource(SeedFor(9, inj.Name))), recs, 0.3)
		if !recsEqual(a, b) {
			t.Errorf("%s: same seed produced different corruption", inj.Name)
		}
	}
}

func TestApplyNeverMutatesInput(t *testing.T) {
	recs := cleanTrace(100)
	want := cleanTrace(100)
	for _, inj := range RecordInjectors() {
		inj.Apply(rand.New(rand.NewSource(1)), recs, 1)
		if !reflect.DeepEqual(recs, want) {
			t.Fatalf("%s: mutated the input records", inj.Name)
		}
	}
}

// TestInjectorsProduceTheirFaultClass corrupts hard (severity 1) and checks
// each injector manufactures the fault it is named for.
func TestInjectorsProduceTheirFaultClass(t *testing.T) {
	recs := cleanTrace(100)
	rngFor := func(name string) *rand.Rand {
		return rand.New(rand.NewSource(SeedFor(11, name)))
	}

	if out := DropSamples().Apply(rngFor("drop"), recs, 1); len(out) != 0 {
		t.Errorf("drop at severity 1 kept %d records", len(out))
	}
	if out := DropSamples().Apply(rngFor("drop"), recs, 0.5); len(out) == 0 || len(out) == len(recs) {
		t.Errorf("drop at severity 0.5 kept %d of %d records", len(out), len(recs))
	}

	out := DuplicateSamples().Apply(rngFor("dup"), recs, 1)
	if len(out) != len(recs) {
		t.Fatalf("duplicate changed the trace length to %d", len(out))
	}
	dups := 0
	for i := 1; i < len(out); i++ {
		if out[i].Hour == out[i-1].Hour {
			dups++
		}
	}
	if dups == 0 {
		t.Error("duplicate produced no repeated hours")
	}

	out = ReorderSamples().Apply(rngFor("reorder"), recs, 0.5)
	ooo := 0
	for i := 1; i < len(out); i++ {
		if out[i].Hour < out[i-1].Hour {
			ooo++
		}
	}
	if ooo == 0 {
		t.Error("reorder produced no out-of-order pairs")
	}

	out = GapTimestamps().Apply(rngFor("gap"), recs, 0.1)
	gaps := 0
	for i := 1; i < len(out); i++ {
		if d := out[i].Hour - out[i-1].Hour; d >= 24 {
			gaps++
		} else if d != 1 {
			t.Fatalf("gap injector produced a non-gap stride %d", d)
		}
	}
	if gaps == 0 {
		t.Error("gap injector opened no gaps")
	}

	for _, inj := range []Injector{CorruptNaN(), CorruptInf(), CorruptOutOfRange()} {
		out := inj.Apply(rngFor(inj.Name), recs, 0.3)
		corrupt := 0
		for i := range out {
			corrupt += out[i].CorruptValues()
		}
		if corrupt == 0 {
			t.Errorf("%s produced no corrupt values", inj.Name)
		}
	}
}

func TestTruncateCSVRows(t *testing.T) {
	doc := "h1,h2,h3\na,b,c\nd,e,f\ng,h,i\n"
	if got := TruncateCSVRows(rand.New(rand.NewSource(1)), doc, 0); got != doc {
		t.Error("severity 0 changed the document")
	}
	got := TruncateCSVRows(rand.New(rand.NewSource(1)), doc, 1)
	lines := strings.Split(got, "\n")
	if lines[0] != "h1,h2,h3" {
		t.Error("header was truncated")
	}
	shorter := 0
	for _, ln := range lines[1:] {
		if len(ln) > 0 && len(ln) < len("a,b,c") {
			shorter++
		}
	}
	if shorter == 0 && got == doc {
		t.Error("severity 1 truncated nothing")
	}
	a := TruncateCSVRows(rand.New(rand.NewSource(5)), doc, 0.7)
	b := TruncateCSVRows(rand.New(rand.NewSource(5)), doc, 0.7)
	if a != b {
		t.Error("truncation not deterministic")
	}
}

func TestConflictSerials(t *testing.T) {
	mk := func() []trace.DriveTrace {
		var ds []trace.DriveTrace
		for _, s := range []string{"a", "b", "c", "d"} {
			ds = append(ds, trace.DriveTrace{Meta: trace.DriveMeta{Serial: s, FailHour: -1}})
		}
		return ds
	}
	drives := mk()
	out := ConflictSerials(rand.New(rand.NewSource(1)), drives, 0)
	if !reflect.DeepEqual(out, drives) {
		t.Error("severity 0 changed the fleet")
	}
	out = ConflictSerials(rand.New(rand.NewSource(1)), drives, 1)
	if !reflect.DeepEqual(drives, mk()) {
		t.Error("input fleet was mutated")
	}
	seen := map[string]int{}
	for _, d := range out {
		seen[d.Meta.Serial]++
	}
	conflict := false
	for _, n := range seen {
		if n > 1 {
			conflict = true
		}
	}
	if !conflict {
		t.Error("severity 1 produced no serial conflicts")
	}
}
