// Package featsel implements the paper's statistical feature selection
// (§IV-B): candidate SMART features (attribute values and change rates)
// are scored with three non-parametric methods — the Wilcoxon rank-sum
// test between failed and good sample values, the reverse-arrangements
// trend test over failed drives' deterioration series, and Welch z-scores —
// and the strongest features are selected for model building.
package featsel

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hddcart/internal/smart"
	"hddcart/internal/stats"
)

// Data is the input to feature evaluation. All matrices are sample-major
// with columns laid out by Features.
type Data struct {
	// Features lists the candidate features (column layout).
	Features smart.FeatureSet
	// Good holds feature vectors of good samples.
	Good [][]float64
	// Failed holds feature vectors of failed samples (inside the failure
	// window).
	Failed [][]float64
	// FailedSeries holds, per failed drive, the chronological feature
	// vectors of its deterioration window — the input to the trend test.
	FailedSeries [][][]float64
}

// Score is one candidate feature's evaluation.
type Score struct {
	// Feature is the scored candidate.
	Feature smart.Feature
	// RankSumZ is |z| of the rank-sum test between failed and good
	// sample values: large values mean the distributions differ.
	RankSumZ float64
	// TrendZ is the mean |z| of the reverse-arrangements test over
	// failed drives' series: large values mean the feature trends during
	// deterioration.
	TrendZ float64
	// WelchZ is |z| of the Welch two-sample test.
	WelchZ float64
	// Rank is the combined rank (1 = best) across the three criteria.
	Rank float64
}

// String renders the score for reports.
func (s Score) String() string {
	return fmt.Sprintf("%-42s rank %5.1f  |ranksum z| %7.2f  |trend z| %6.2f  |welch z| %7.2f",
		s.Feature.String(), s.Rank, s.RankSumZ, s.TrendZ, s.WelchZ)
}

// Evaluate scores every candidate feature. The result is sorted best
// (lowest combined rank) first.
func Evaluate(d Data) ([]Score, error) {
	nf := len(d.Features)
	if nf == 0 {
		return nil, errors.New("featsel: no candidate features")
	}
	if len(d.Good) == 0 || len(d.Failed) == 0 {
		return nil, errors.New("featsel: need both good and failed samples")
	}
	for _, rows := range [][][]float64{d.Good, d.Failed} {
		for i, r := range rows {
			if len(r) != nf {
				return nil, fmt.Errorf("featsel: row %d has %d columns, want %d", i, len(r), nf)
			}
		}
	}

	scores := make([]Score, nf)
	goodCol := make([]float64, len(d.Good))
	failCol := make([]float64, len(d.Failed))
	for f := 0; f < nf; f++ {
		for i, r := range d.Good {
			goodCol[i] = r[f]
		}
		for i, r := range d.Failed {
			failCol[i] = r[f]
		}
		scores[f].Feature = d.Features[f]
		scores[f].RankSumZ = math.Abs(stats.RankSum(failCol, goodCol).Z)
		scores[f].WelchZ = math.Abs(stats.ZScore(failCol, goodCol))

		var trendSum float64
		var trendN int
		for _, series := range d.FailedSeries {
			col := make([]float64, 0, len(series))
			for _, row := range series {
				if len(row) != nf {
					return nil, errors.New("featsel: ragged failed series")
				}
				col = append(col, row[f])
			}
			if len(col) < 3 {
				continue
			}
			trendSum += math.Abs(stats.ReverseArrangements(col).Z)
			trendN++
		}
		if trendN > 0 {
			scores[f].TrendZ = trendSum / float64(trendN)
		}
	}

	// Combined rank: average of the per-criterion ranks (1 = strongest).
	combine(scores)
	sort.SliceStable(scores, func(a, b int) bool {
		if scores[a].Rank != scores[b].Rank {
			return scores[a].Rank < scores[b].Rank
		}
		return scores[a].RankSumZ > scores[b].RankSumZ
	})
	return scores, nil
}

// combine fills the Rank field with the mean rank across criteria.
func combine(scores []Score) {
	n := len(scores)
	criteria := []func(Score) float64{
		func(s Score) float64 { return s.RankSumZ },
		func(s Score) float64 { return s.TrendZ },
		func(s Score) float64 { return s.WelchZ },
	}
	total := make([]float64, n)
	for _, crit := range criteria {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return crit(scores[order[a]]) > crit(scores[order[b]])
		})
		for rank, idx := range order {
			total[idx] += float64(rank + 1)
		}
	}
	for i := range scores {
		scores[i].Rank = total[i] / float64(len(criteria))
	}
}

// SelectTop returns the k best-ranked features as a FeatureSet (scores must
// come from Evaluate, i.e. already sorted).
func SelectTop(scores []Score, k int) smart.FeatureSet {
	if k > len(scores) {
		k = len(scores)
	}
	out := make(smart.FeatureSet, 0, k)
	for _, s := range scores[:k] {
		out = append(out, s.Feature)
	}
	return out
}

// SelectSignificant returns every feature whose rank-sum |z| exceeds minZ —
// a threshold selection for callers that prefer significance to a fixed
// count.
func SelectSignificant(scores []Score, minZ float64) smart.FeatureSet {
	var out smart.FeatureSet
	for _, s := range scores {
		if s.RankSumZ >= minZ {
			out = append(out, s.Feature)
		}
	}
	return out
}

// CandidateFeatures returns the §IV-B candidate pool: every catalogued
// attribute's normalized value, the raw values of the counter attributes
// the paper inspects, and change rates of the error-signal attributes at
// the given intervals (the paper tests several intervals and keeps 6 h).
func CandidateFeatures(intervals ...int) smart.FeatureSet {
	if len(intervals) == 0 {
		intervals = []int{6}
	}
	var out smart.FeatureSet
	for _, a := range smart.Catalogue {
		out = append(out, smart.Feature{Attr: a.ID, Kind: smart.Normalized})
	}
	for _, id := range []smart.AttrID{smart.ReallocatedSectors, smart.CurrentPendingSectors} {
		out = append(out, smart.Feature{Attr: id, Kind: smart.Raw})
	}
	rateAttrs := []struct {
		id  smart.AttrID
		raw bool
	}{
		{smart.RawReadErrorRate, false},
		{smart.HardwareECCRecovered, false},
		{smart.SeekErrorRate, false},
		{smart.ReallocatedSectors, true},
		{smart.CurrentPendingSectors, true},
	}
	for _, iv := range intervals {
		for _, ra := range rateAttrs {
			out = append(out, smart.Feature{
				Attr: ra.id, Kind: smart.ChangeRate,
				IntervalHours: iv, RateOfRaw: ra.raw,
			})
		}
	}
	return out
}
