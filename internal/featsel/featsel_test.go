package featsel

import (
	"math/rand"
	"strings"
	"testing"

	"hddcart/internal/smart"
)

// synthData builds a 3-feature dataset where feature 0 separates the
// classes and trends in failed drives, feature 1 is pure noise, and
// feature 2 separates weakly.
func synthData(t *testing.T) Data {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	features := smart.FeatureSet{
		{Attr: smart.ReportedUncorrectable, Kind: smart.Normalized},
		{Attr: smart.ThroughputPerformance, Kind: smart.Normalized},
		{Attr: smart.TemperatureCelsius, Kind: smart.Normalized},
	}
	d := Data{Features: features}
	for i := 0; i < 300; i++ {
		d.Good = append(d.Good, []float64{
			100 + rng.NormFloat64(),
			50 + rng.NormFloat64()*5,
			60 + rng.NormFloat64()*2,
		})
	}
	for i := 0; i < 100; i++ {
		d.Failed = append(d.Failed, []float64{
			70 + rng.NormFloat64()*5,
			50 + rng.NormFloat64()*5,
			57 + rng.NormFloat64()*2,
		})
	}
	for drive := 0; drive < 10; drive++ {
		var series [][]float64
		for h := 0; h < 48; h++ {
			series = append(series, []float64{
				100 - float64(h) + rng.NormFloat64(), // strong trend
				50 + rng.NormFloat64()*5,             // none
				60 - float64(h)*0.05 + rng.NormFloat64()*2,
			})
		}
		d.FailedSeries = append(d.FailedSeries, series)
	}
	return d
}

func TestEvaluateRanksInformativeFirst(t *testing.T) {
	scores, err := Evaluate(synthData(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %d", len(scores))
	}
	if scores[0].Feature.Attr != smart.ReportedUncorrectable {
		t.Errorf("best feature = %v, want Reported Uncorrectable", scores[0].Feature)
	}
	if scores[len(scores)-1].Feature.Attr != smart.ThroughputPerformance {
		t.Errorf("worst feature = %v, want Throughput Performance (noise)", scores[2].Feature)
	}
	if scores[0].RankSumZ < 5 {
		t.Errorf("informative rank-sum z = %v, want large", scores[0].RankSumZ)
	}
	if scores[0].TrendZ < 3 {
		t.Errorf("informative trend z = %v, want large", scores[0].TrendZ)
	}
}

func TestEvaluateValidation(t *testing.T) {
	good := [][]float64{{1}}
	failed := [][]float64{{2}}
	cases := []Data{
		{},
		{Features: smart.FeatureSet{{Attr: 1, Kind: smart.Normalized}}, Good: good},
		{Features: smart.FeatureSet{{Attr: 1, Kind: smart.Normalized}}, Failed: failed},
		{Features: smart.FeatureSet{{Attr: 1, Kind: smart.Normalized}, {Attr: 2, Kind: smart.Normalized}},
			Good: good, Failed: failed}, // ragged
	}
	for i, d := range cases {
		if _, err := Evaluate(d); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEvaluateRaggedSeries(t *testing.T) {
	d := Data{
		Features:     smart.FeatureSet{{Attr: 1, Kind: smart.Normalized}},
		Good:         [][]float64{{1}, {2}},
		Failed:       [][]float64{{3}, {4}},
		FailedSeries: [][][]float64{{{1, 2}, {1, 2}, {1, 2}}},
	}
	if _, err := Evaluate(d); err == nil {
		t.Error("ragged series should error")
	}
}

func TestSelectTop(t *testing.T) {
	scores, err := Evaluate(synthData(t))
	if err != nil {
		t.Fatal(err)
	}
	top := SelectTop(scores, 2)
	if len(top) != 2 {
		t.Fatalf("SelectTop = %d features", len(top))
	}
	if top[0].Attr != smart.ReportedUncorrectable {
		t.Error("top selection should start with the informative feature")
	}
	if got := SelectTop(scores, 99); len(got) != 3 {
		t.Errorf("over-asking should return all, got %d", len(got))
	}
}

func TestSelectSignificant(t *testing.T) {
	scores, err := Evaluate(synthData(t))
	if err != nil {
		t.Fatal(err)
	}
	sel := SelectSignificant(scores, 5)
	for _, f := range sel {
		if f.Attr == smart.ThroughputPerformance {
			t.Error("noise feature passed the significance threshold")
		}
	}
	if len(sel) == 0 {
		t.Error("no features passed a moderate threshold")
	}
}

func TestCandidatePool(t *testing.T) {
	pool := CandidateFeatures()
	// 23 normalized + 2 raw + 5 change rates at one interval.
	if len(pool) != 30 {
		t.Errorf("default pool = %d features, want 30", len(pool))
	}
	pool = CandidateFeatures(6, 12, 24)
	if len(pool) != 23+2+15 {
		t.Errorf("3-interval pool = %d features, want 40", len(pool))
	}
	// Every catalogued attribute appears.
	seen := make(map[smart.AttrID]bool)
	for _, f := range pool {
		if f.Kind == smart.Normalized {
			seen[f.Attr] = true
		}
	}
	if len(seen) != smart.NumAttrs {
		t.Errorf("pool covers %d attributes, want %d", len(seen), smart.NumAttrs)
	}
}

func TestScoreString(t *testing.T) {
	s := Score{Feature: smart.Feature{Attr: smart.PowerOnHours, Kind: smart.Normalized},
		RankSumZ: 12.3, TrendZ: 4.5, WelchZ: 10, Rank: 1}
	if got := s.String(); !strings.Contains(got, "Power On Hours") {
		t.Errorf("String = %q", got)
	}
}
