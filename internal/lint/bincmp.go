package lint

import (
	"go/ast"
	"go/token"
)

// BinCmp guards the binned inference kernels' core invariant: routing
// decisions are made by comparing uint8 bin codes, never by comparing
// floats. The whole point of CompileBinned is that every float threshold
// was remapped to a cut code at compile time; a float comparison inside a
// kernel marked //hddlint:binned means someone reintroduced the float
// path (typically by "fixing" a kernel with a threshold compare), which
// silently forfeits both the byte-compare speedup and the bit-for-bit
// equivalence contract the harness enforces.
//
// Every comparison operator counts (<, <=, >, >=, ==, !=): ordered
// comparisons are exactly the split predicates the remapping eliminates,
// and equality tests on floats are floateq's territory anyway. Float
// arithmetic is allowed — leaf payload accumulation sums float64 values;
// only comparisons route.
var BinCmp = &Analyzer{
	Name:      "bincmp",
	Doc:       "flags float comparisons inside //hddlint:binned kernels",
	AppliesTo: inDeterminismCriticalPackage,
	Run:       runBinCmp,
}

// hasBinnedDirective reports whether a function's doc comment marks it
// as a binned-code kernel.
func hasBinnedDirective(doc *ast.CommentGroup) bool {
	return directiveSet(doc)[binnedDirective]
}

// comparisonOps are the routing operators: any of these on a float
// operand inside a binned kernel is a reintroduced threshold compare.
var comparisonOps = map[token.Token]bool{
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func runBinCmp(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasBinnedDirective(fd.Doc) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || !comparisonOps[be.Op] {
					return true
				}
				if !isFloatType(p.TypeOf(be.X)) && !isFloatType(p.TypeOf(be.Y)) {
					return true
				}
				p.Reportf(be.Pos(), "float comparison (%s) in a //hddlint:binned kernel; binned routing compares uint8 cut codes — remap the threshold at compile time instead", be.Op)
				return true
			})
		}
	}
}
