package lint

import "strings"

// All returns every analyzer of the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{AsmFallback, AtomicMix, BinCmp, FloatEq, HotAlloc, MapOrder, NakedGo, SeededRand, ShardMerge}
}

// determinismCritical lists the packages whose outputs must be
// bit-identical across runs and worker counts: the trainers, the
// ensembles and their merges, model serialization, the detectors whose
// scans feed evaluation, the experiment harness behind the paper's
// tables, and the model-updating logic that compares retrains. The
// maporder and floateq analyzers are scoped to these; packages like
// plot or storagesim may iterate maps and compare floats however they
// like.
var determinismCritical = map[string]bool{
	"hddcart":                      true, // public API + Monitor serialization paths
	"hddcart/internal/cart":        true,
	"hddcart/internal/forest":      true,
	"hddcart/internal/boost":       true,
	"hddcart/internal/detect":      true,
	"hddcart/internal/eval":        true,
	"hddcart/internal/experiments": true,
	"hddcart/internal/update":      true,
}

func inDeterminismCriticalPackage(path string) bool {
	return determinismCritical[path]
}

// seededRandPackages is where the per-node/per-tree seeded stream
// discipline applies (the ISSUE's list): every source of randomness and
// time must come in through a Params/Config seed.
var seededRandPackages = map[string]bool{
	"hddcart/internal/cart":        true,
	"hddcart/internal/forest":      true,
	"hddcart/internal/boost":       true,
	"hddcart/internal/experiments": true,
}

func inSeededRandPackage(path string) bool {
	// Subpackages (none today) inherit the restriction.
	for p := range seededRandPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// shardMergePackages is where the deterministic shard-merge discipline
// applies: the fleet-sweep engine, the detectors' parallel scan paths,
// and the fleet-monitoring service's shard/feed merges — everywhere
// results must be byte-identical for every worker or shard count.
var shardMergePackages = map[string]bool{
	"hddcart/internal/sweep":  true,
	"hddcart/internal/detect": true,
	"hddcart/internal/serve":  true,
}

func inShardMergePackage(path string) bool {
	for p := range shardMergePackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
