package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand forbids the global math/rand state and wall-clock reads in
// the packages where every source of randomness must flow through
// per-node-seeded streams (cart's nodeSeed-derived rand.Rand values,
// the forest's per-tree seeds, the experiments' Config.Seed). A stray
// rand.Intn or rand.Seed call shares mutable global state across
// goroutines and changes results run to run; a time.Now() feeding any
// model input destroys the retrain-to-retrain comparability the
// paper's model-updating experiments (fixed/accumulation/replacing)
// rely on. Constructing seeded streams (rand.New, rand.NewSource) and
// calling methods on a *rand.Rand remain allowed.
var SeededRand = &Analyzer{
	Name:      "seededrand",
	Doc:       "forbids global math/rand state and time.Now in seeded-randomness packages",
	AppliesTo: inSeededRandPackage,
	Run:       runSeededRand,
}

// seededRandAllowed are math/rand package-level names that construct
// explicitly seeded streams instead of touching the global one.
var seededRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runSeededRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[x].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				// Type references (rand.Rand, rand.Source) and the seeded
				// constructors are fine; package-level funcs/vars hit the
				// shared global generator.
				if _, isType := p.Info.Uses[sel.Sel].(*types.TypeName); isType {
					return true
				}
				if seededRandAllowed[sel.Sel.Name] {
					return true
				}
				if sel.Sel.Name == "Seed" {
					p.Reportf(sel.Pos(), "rand.Seed mutates the shared global generator; derive a *rand.Rand via rand.New(rand.NewSource(seed)) instead")
					return true
				}
				p.Reportf(sel.Pos(), "global math/rand state (rand.%s) is shared and unseeded; all randomness here must flow through an explicitly seeded *rand.Rand", sel.Sel.Name)
			case "time":
				if sel.Sel.Name == "Now" {
					p.Reportf(sel.Pos(), "time.Now makes results differ run to run; thread time through a seed or configuration instead")
				}
			}
			return true
		})
	}
}
