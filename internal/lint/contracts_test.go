package lint

import (
	"path/filepath"
	"testing"
)

// TestContractsOf covers the directive-parsing edge cases: two markers
// sharing one comment line, nobc on methods (plain and generic
// receivers), noalloc on generic functions, and directives riding var
// declarations that bind closures — standalone and inside a grouped
// declaration.
func TestContractsOf(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "contracts", "a"), "contracts/a")
	if err != nil {
		t.Fatal(err)
	}
	got := contractsOf(pkg)
	type flags struct{ noalloc, nobc bool }
	want := map[string]flags{
		"both":               {noalloc: true, nobc: true},
		"(*walker).sumRange": {nobc: true},
		"sumGeneric":         {noalloc: true},
		"(box).first":        {nobc: true},
		"var closure":        {nobc: true},
		"var grouped":        {noalloc: true},
	}
	byName := map[string]contract{}
	for _, c := range got {
		byName[c.name] = c
	}
	if len(got) != len(want) {
		t.Errorf("contractsOf returned %d contracts, want %d: %+v", len(got), len(want), got)
	}
	for name, w := range want {
		c, ok := byName[name]
		if !ok {
			t.Errorf("missing contract %q", name)
			continue
		}
		if c.noalloc != w.noalloc || c.nobc != w.nobc {
			t.Errorf("%s: noalloc=%v nobc=%v, want noalloc=%v nobc=%v", name, c.noalloc, c.nobc, w.noalloc, w.nobc)
		}
		if c.startLine <= 0 || c.endLine < c.startLine {
			t.Errorf("%s: degenerate line range [%d, %d]", name, c.startLine, c.endLine)
		}
		if filepath.Base(c.file) != "a.go" {
			t.Errorf("%s: file = %s, want a.go", name, c.file)
		}
	}
	for _, absent := range []string{"plain", "var unmarked"} {
		if _, ok := byName[absent]; ok {
			t.Errorf("%s has no directives but produced a contract", absent)
		}
	}
}
