package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map inside the determinism-critical
// packages (training, serialization, merge paths). Go randomizes map
// iteration order per run, so a float accumulation, an append of
// results, or a serialized field written inside such a loop silently
// breaks the bit-identical-output guarantee the parallel trainer and
// the model-updating experiments depend on.
//
// The one sanctioned idiom is exempt: a loop whose body only performs
// order-insensitive accumulation — appending keys/values to a slice
// (which the caller then sorts, as sortedKeys does) or bumping integer
// counters, both of which yield identical results in any order.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Doc:       "flags map iteration on determinism-critical paths unless the body is order-insensitive",
	AppliesTo: inDeterminismCriticalPackage,
	Run:       runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBody(p, rs.Body) {
				return true
			}
			p.Reportf(rs.Pos(), "map iteration order is nondeterministic and this loop body is order-sensitive; collect and sort the keys first (see sortedKeys), or restrict the body to appends/integer counters")
			return true
		})
	}
}

// orderInsensitiveBody reports whether every statement in a range body
// is order-insensitive: `s = append(s, ...)` or an integer counter
// update (x++, x--, x += k). Anything else — float accumulation, calls,
// channel sends, nested control flow — is treated as order-sensitive.
func orderInsensitiveBody(p *Pass, body *ast.BlockStmt) bool {
	for _, st := range body.List {
		switch s := st.(type) {
		case *ast.IncDecStmt:
			if !isIntegerType(p.TypeOf(s.X)) {
				return false
			}
		case *ast.AssignStmt:
			if !orderInsensitiveAssign(p, s) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func orderInsensitiveAssign(p *Pass, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	switch s.Tok.String() {
	case "=":
		// Only `s = append(s, ...)` qualifies.
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || !isBuiltin(p, fn) {
			return false
		}
		lhs, ok := s.Lhs[0].(*ast.Ident)
		if !ok || len(call.Args) == 0 {
			return false
		}
		first, ok := call.Args[0].(*ast.Ident)
		return ok && first.Name == lhs.Name
	case "+=", "-=", "|=", "&=", "^=":
		return isIntegerType(p.TypeOf(s.Lhs[0]))
	}
	return false
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(p *Pass, id *ast.Ident) bool {
	_, ok := p.Info.Uses[id].(*types.Builtin)
	return ok
}
