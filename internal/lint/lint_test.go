package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestAsmFallbackFixture(t *testing.T) {
	runFixture(t, AsmFallback, filepath.Join("asmfallback", "a"))
}
func TestMapOrderFixture(t *testing.T)   { runFixture(t, MapOrder, filepath.Join("maporder", "a")) }
func TestSeededRandFixture(t *testing.T) { runFixture(t, SeededRand, filepath.Join("seededrand", "a")) }
func TestHotAllocFixture(t *testing.T)   { runFixture(t, HotAlloc, filepath.Join("hotalloc", "a")) }
func TestFloatEqFixture(t *testing.T)    { runFixture(t, FloatEq, filepath.Join("floateq", "a")) }
func TestBinCmpFixture(t *testing.T)     { runFixture(t, BinCmp, filepath.Join("bincmp", "a")) }
func TestNakedGoFixture(t *testing.T)    { runFixture(t, NakedGo, filepath.Join("nakedgo", "a")) }
func TestShardMergeFixture(t *testing.T) { runFixture(t, ShardMerge, filepath.Join("shardmerge", "a")) }
func TestAtomicMixFixture(t *testing.T)  { runFixture(t, AtomicMix, filepath.Join("atomicmix", "a")) }

// TestMalformedIgnoreDirectives checks that an ignore without an
// analyzer name or without a justification is itself reported.
func TestMalformedIgnoreDirectives(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "directive", "a"), "directive/a")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAll([]*Package{pkg}, nil)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (one per malformed directive): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "directive" {
			t.Errorf("diagnostic analyzer = %q, want %q", d.Analyzer, "directive")
		}
		if !strings.Contains(d.Message, "needs an analyzer name and a justification") {
			t.Errorf("unexpected message: %s", d.Message)
		}
	}
}

// TestAllAnalyzers pins the suite roster: the analyzers the CI lint job
// and the docs promise (the compiler tier and the drift check are
// pseudo-analyzers driven separately, not listed here).
func TestAllAnalyzers(t *testing.T) {
	want := []string{"asmfallback", "atomicmix", "bincmp", "floateq", "hotalloc", "maporder", "nakedgo", "seededrand", "shardmerge"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

// TestPackageScoping checks the analyzer package filters: determinism
// rules bind the training/serialization/merge packages, not plotting or
// simulation helpers.
func TestPackageScoping(t *testing.T) {
	for _, p := range []string{
		"hddcart",
		"hddcart/internal/cart",
		"hddcart/internal/experiments",
		"hddcart/internal/update",
	} {
		if !inDeterminismCriticalPackage(p) {
			t.Errorf("%s should be determinism-critical", p)
		}
	}
	for _, p := range []string{
		"hddcart/internal/plot",
		"hddcart/internal/storagesim",
		"hddcart/cmd/hddpred",
	} {
		if inDeterminismCriticalPackage(p) {
			t.Errorf("%s should not be determinism-critical", p)
		}
	}
	if !inSeededRandPackage("hddcart/internal/forest") {
		t.Error("forest should be seeded-rand scoped")
	}
	if inSeededRandPackage("hddcart/internal/simulate") {
		t.Error("simulate owns its seeded rng config; it is not in the restricted set")
	}
	for _, p := range []string{"hddcart/internal/sweep", "hddcart/internal/detect", "hddcart/internal/serve", "hddcart/internal/sweep/sub"} {
		if !inShardMergePackage(p) {
			t.Errorf("%s should be shard-merge scoped", p)
		}
	}
	if inShardMergePackage("hddcart/internal/plot") {
		t.Error("plot merges nothing concurrent; it is not shard-merge scoped")
	}
}

// TestIgnoreDrift checks the drift pseudo-analyzer: an ignore that
// suppressed a live finding survives, one that suppressed nothing is
// itself reported at the directive's position.
func TestIgnoreDrift(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "ignoredrift", "a"), "ignoredrift/a")
	if err != nil {
		t.Fatal(err)
	}
	unscoped := &Analyzer{Name: MapOrder.Name, Doc: MapOrder.Doc, Run: MapOrder.Run}
	pkgs := []*Package{pkg}
	diags := Finish(pkgs, Collect(pkgs, []*Analyzer{unscoped}), true)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (the stale directive): %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != IgnoreDriftName {
		t.Errorf("analyzer = %q, want %q", d.Analyzer, IgnoreDriftName)
	}
	if d.Pos.Line != 20 {
		t.Errorf("position = line %d, want line 20 (the stale directive)", d.Pos.Line)
	}
	if !strings.Contains(d.Message, "suppresses no maporder diagnostic") {
		t.Errorf("unexpected message: %s", d.Message)
	}

	// Without the drift check (partial runs, fixtures) the stale
	// directive goes unreported.
	if diags := RunAll(pkgs, []*Analyzer{unscoped}); len(diags) != 0 {
		t.Errorf("drift-off run reported %v, want nothing", diags)
	}
}

// TestRepoIsLintClean runs the full two-tier suite over the real module
// — the acceptance criterion `go run ./cmd/hddlint ./...` exits 0, as a
// test: every analyzer, the compiler-contract tier, and the drift check.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module and shells out to go build; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadModule found only %d packages; the walker is missing the tree", len(pkgs))
	}
	diags := Collect(pkgs, All())
	compiler, err := RunCompilerChecks(root, pkgs, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Finish(pkgs, append(diags, compiler...), true) {
		t.Errorf("%s", d)
	}
}
