package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc enforces the //hddlint:noalloc contract: a function carrying
// the directive is a steady-state allocation-free kernel (the compiled
// PredictBatch/AccumulateBatch paths, the partition kernels, the detect
// chunk scorers), and its body must not contain the constructs that
// allocate on every call — make/new, growing append, closures,
// interface boxing of non-pointer-shaped values, string concatenation,
// or fmt calls. Deliberate cold-path allocations (lazy scratch growth
// behind a capacity check, amortized by a sync.Pool) stay legal via a
// site-level //hddlint:ignore hotalloc <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocating constructs inside //hddlint:noalloc functions",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDirective(fd.Doc) {
				continue
			}
			checkNoalloc(p, fd)
		}
	}
}

func checkNoalloc(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			p.Reportf(e.Pos(), "%s is //hddlint:noalloc but builds a closure, which heap-allocates its captures", name)
			return true
		case *ast.CallExpr:
			checkNoallocCall(p, name, e)
		case *ast.BinaryExpr:
			if e.Op.String() == "+" && isStringType(p.TypeOf(e.X)) {
				p.Reportf(e.Pos(), "%s is //hddlint:noalloc but concatenates strings, which allocates", name)
			}
		case *ast.AssignStmt:
			if e.Tok.String() == "+=" && len(e.Lhs) == 1 && isStringType(p.TypeOf(e.Lhs[0])) {
				p.Reportf(e.Pos(), "%s is //hddlint:noalloc but concatenates strings, which allocates", name)
			}
		}
		return true
	})
}

func checkNoallocCall(p *Pass, name string, call *ast.CallExpr) {
	// Builtins that allocate.
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(p, id) {
		switch id.Name {
		case "make", "new":
			p.Reportf(call.Pos(), "%s is //hddlint:noalloc but calls %s; allocate scratch up front or pool it", name, id.Name)
		case "append":
			p.Reportf(call.Pos(), "%s is //hddlint:noalloc but calls append, which allocates when it grows; write into a pre-sized buffer", name)
		}
		return
	}
	// fmt calls format through reflection and allocate.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				p.Reportf(call.Pos(), "%s is //hddlint:noalloc but calls fmt.%s, which allocates", name, sel.Sel.Name)
				return
			}
		}
	}
	// Interface boxing: a non-pointer-shaped concrete argument passed to
	// an interface parameter escapes to the heap.
	sigT := p.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if ok && sig.Params() != nil {
		np := sig.Params().Len()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= np-1:
				pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
			case i < np:
				pt = sig.Params().At(i).Type()
			}
			if pt == nil || !types.IsInterface(pt) {
				continue
			}
			at := p.TypeOf(arg)
			if at == nil || types.IsInterface(at) || pointerShaped(at) {
				continue
			}
			p.Reportf(arg.Pos(), "%s is //hddlint:noalloc but boxes a %s into an interface argument, which allocates", name, at.String())
		}
	}
	// Explicit conversions to an interface type: T(x) where T is an
	// interface and x is a concrete non-pointer-shaped value.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && types.IsInterface(tv.Type) && len(call.Args) == 1 {
		at := p.TypeOf(call.Args[0])
		if at != nil && !types.IsInterface(at) && !pointerShaped(at) {
			p.Reportf(call.Pos(), "%s is //hddlint:noalloc but boxes a %s into an interface, which allocates", name, at.String())
		}
	}
}

// pointerShaped reports whether values of t fit in an interface word
// without heap allocation: pointers, channels, maps, funcs and
// unsafe.Pointer. Slices, strings, structs and numbers all escape when
// boxed.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
