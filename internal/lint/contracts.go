package lint

import (
	"go/ast"
	"go/token"
)

// A contract is one function the compiler tier must prove something
// about: noalloc functions must have no heap escapes in their body,
// nobc functions no retained bounds checks. Contracts are located by
// file and line range because the compiler's diagnostics are position-
// tagged text, not AST nodes.
type contract struct {
	// name is the function's display name ("(*BinnedTree).scoreTiledRange",
	// "partitionSegBinnedTiled", "var tiledWalk").
	name string
	// file is the absolute-or-loader-relative filename as the package's
	// FileSet reports it.
	file string
	// startLine, endLine bound the function body, inclusive. Nested
	// closures inside an annotated function inherit its contracts by
	// construction — their bodies lie inside the range.
	startLine, endLine int
	noalloc, nobc      bool
}

// contractsOf returns every annotated function of a package, in file
// order. Both declaration shapes carry directives:
//
//   - a FuncDecl (plain function, method, or generic function) with the
//     marker in its doc comment;
//   - a `var f = func(...) {...}` binding with the marker on the var
//     declaration's doc comment (covering the ValueSpec doc for grouped
//     declarations), since FuncLits have no doc of their own.
func contractsOf(pkg *Package) []contract {
	var out []contract
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				set := directiveSet(d.Doc)
				if c, ok := contractFrom(pkg, set, funcDisplayName(d), d.Pos(), d.Body); ok {
					out = append(out, c)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					set := directiveSet(d.Doc)
					for k, v := range directiveSet(vs.Doc) {
						if v {
							if set == nil {
								set = map[string]bool{}
							}
							set[k] = true
						}
					}
					for i, val := range vs.Values {
						fl, ok := val.(*ast.FuncLit)
						if !ok || i >= len(vs.Names) {
							continue
						}
						if c, ok := contractFrom(pkg, set, "var "+vs.Names[i].Name, fl.Pos(), fl.Body); ok {
							out = append(out, c)
						}
					}
				}
			}
		}
	}
	return out
}

func contractFrom(pkg *Package, set map[string]bool, name string, declPos token.Pos, body *ast.BlockStmt) (contract, bool) {
	noalloc := set[noallocDirective]
	nobc := set[nobcDirective]
	if !noalloc && !nobc {
		return contract{}, false
	}
	// The range opens at the declaration, not the body brace, so
	// parameter diagnostics on a multi-line signature ("moved to heap:
	// x") still land inside it.
	start := pkg.Fset.Position(declPos)
	end := pkg.Fset.Position(body.End())
	return contract{
		name:      name,
		file:      start.Filename,
		startLine: start.Line,
		endLine:   end.Line,
		noalloc:   noalloc,
		nobc:      nobc,
	}, true
}

// funcDisplayName renders a FuncDecl the way diagnostics name it:
// methods gain their receiver type, generic parameters are elided.
func funcDisplayName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return "(" + recvTypeString(d.Recv.List[0].Type) + ")." + d.Name.Name
}

func recvTypeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return "*" + recvTypeString(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver: T[P]
		return recvTypeString(t.X)
	case *ast.IndexListExpr: // generic receiver: T[P1, P2]
		return recvTypeString(t.X)
	}
	return "?"
}
