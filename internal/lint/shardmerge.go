package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShardMerge guards the fleet-scan engines' merge discipline: per-shard
// stats and per-drive outcomes must be combined in an order that is a
// pure function of the fleet, never of goroutine scheduling. The sweep
// engine earns its byte-identical-for-every-worker-count guarantee by
// landing outcomes at drive-owned indexes and folding shard stats in
// shard order; the two shapes that silently break that are iterating a
// map (per-run randomized order feeding a float fold or an append) and
// collecting worker results through a channel (arrival order is
// scheduling order). ShardMerge flags both at the source:
//
//   - range over a map whose body is order-sensitive (anything beyond
//     the sanctioned append/integer-counter idiom maporder also exempts);
//   - range over a channel (every iteration order is an arrival order);
//   - a channel receive whose value is used, inside any function that
//     also merges (so `<-done` joins and semaphores stay legal, while
//     `res := <-results; total.add(res)` is flagged).
//
// The fix is always the same shape: give every producer an owned index
// (outcomes), or make the merged quantity commutative and fold it in a
// deterministic order keyed by shard/drive index, as internal/sweep's
// Result assembly does.
var ShardMerge = &Analyzer{
	Name:      "shardmerge",
	Doc:       "flags scheduling-ordered merges (map ranges, channel receives) on the shard/fleet scan paths",
	AppliesTo: inShardMergePackage,
	Run:       runShardMerge,
}

func runShardMerge(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkShardMerge(p, fd)
		}
	}
}

func checkShardMerge(p *Pass, fd *ast.FuncDecl) {
	merges := functionMerges(p, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.RangeStmt:
			t := p.TypeOf(e.X)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				if !orderInsensitiveBody(p, e.Body) {
					p.Reportf(e.Pos(), "map iteration order is per-run random and this body is order-sensitive; "+
						"a shard/outcome merge fed from it differs across runs — fold in shard order or index by drive instead")
				}
			case *types.Chan:
				p.Reportf(e.Pos(), "ranging over a channel merges results in arrival order, which is goroutine scheduling order; "+
					"land each producer's result at an owned index and fold in index order instead")
			}
		case *ast.UnaryExpr:
			if e.Op.String() != "<-" {
				return true
			}
			if !merges {
				return true
			}
			if receiveValueDiscarded(fd.Body, e) {
				return true
			}
			p.Reportf(e.Pos(), "channel receive feeds a merge in this function; receive order is goroutine scheduling order — "+
				"have producers write to owned indexes and fold deterministically instead")
		}
		return true
	})
}

// functionMerges reports whether the function body contains a merge
// shape: a float compound accumulation, an append, or a call to an
// add/merge-named function or method. Receives in functions that only
// join or synchronize are not merge-fed.
func functionMerges(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.AssignStmt:
			switch e.Tok.String() {
			case "+=", "-=":
				if len(e.Lhs) == 1 && isFloatType(p.TypeOf(e.Lhs[0])) {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fn := e.Fun.(type) {
			case *ast.Ident:
				if fn.Name == "append" && isBuiltin(p, fn) {
					found = true
				} else if mergeName(fn.Name) {
					found = true
				}
			case *ast.SelectorExpr:
				if mergeName(fn.Sel.Name) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func mergeName(name string) bool {
	switch strings.ToLower(name) {
	case "add", "merge", "fold", "combine", "accumulate":
		return true
	}
	return false
}

// receiveValueDiscarded reports whether a receive expression's value is
// thrown away: the receive is its own statement (`<-done`), or the sole
// right-hand side assigned entirely to blanks (`_ = <-ch`). Those are
// joins and semaphores, not merges.
func receiveValueDiscarded(body *ast.BlockStmt, recv *ast.UnaryExpr) bool {
	discarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if s.X == recv {
				discarded = true
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 || s.Rhs[0] != recv {
				return true
			}
			allBlank := true
			for _, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" {
					allBlank = false
					break
				}
			}
			if allBlank {
				discarded = true
			}
		}
		return true
	})
	return discarded
}
