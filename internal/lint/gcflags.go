package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Tier A of the suite: instead of approximating the optimizer with
// syntax rules, escapecheck and bcecheck ask the optimizer itself. One
// `go build -gcflags='-m=2 -d=ssa/check_bce'` run per annotated package
// makes the compiler print every escape-analysis decision and every
// retained bounds check with file:line:col positions; the checker
// parses that stream and fails the lint run when a diagnostic lands
// inside a contracted function:
//
//   - escapecheck: a //hddlint:noalloc function contains a construct the
//     compiler proved heap-allocating ("escapes to heap", "moved to
//     heap"). This catches what the hotalloc analyzer cannot see —
//     allocations introduced by inlining, interface boxing the type
//     checker misses, fmt internals, implicit conversions.
//   - bcecheck: a //hddlint:nobc function retains an IsInBounds or
//     IsSliceInBounds check after the prove pass. The unsafe partition
//     kernels and hand-elided walks owe double-digit percentages of
//     their throughput to dead bounds checks (the PR 6 leaf-walk fix was
//     ~12%); bcecheck turns each hand elision into a machine-checked
//     contract instead of a comment.
//
// Runs are cached on a content hash of the package and its module-
// internal dependency closure (escape analysis is cross-package via
// inlining, so a dependency edit can change a kernel's verdict), plus
// the toolchain version and flag string. The Go build cache replays
// compiler output on unchanged rebuilds, so even cache misses after a
// no-op touch are cheap; the hddlint cache saves the subprocess spawn
// and the parse entirely.

// Pseudo-analyzer names for the compiler-contract tier and the
// directive-hygiene check; they appear in diagnostics and are valid
// //hddlint:ignore targets.
const (
	EscapeCheckName = "escapecheck"
	BCECheckName    = "bcecheck"
	IgnoreDriftName = "ignoredrift"
)

// compilerGcflags is the exact flag string handed to the compiler. It is
// part of the cache key: changing the diagnostics changes the parse.
const compilerGcflags = "-m=2 -d=ssa/check_bce"

// compilerDiag is one parsed, kept compiler diagnostic (cache JSON form).
type compilerDiag struct {
	// File is the path as the compiler printed it, relative to the module
	// root the build ran in.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// BCE marks a retained bounds check; otherwise the diagnostic is a
	// heap escape.
	BCE bool   `json:"bce,omitempty"`
	Msg string `json:"msg"`
}

// RunCompilerChecks runs the compiler-contract tier over every package
// that declares at least one //hddlint:noalloc or //hddlint:nobc
// function and returns the raw escapecheck/bcecheck findings, unfiltered
// (feed them to Finish alongside the analyzer diagnostics so site
// ignores and the drift check apply uniformly). root is the directory
// holding the module's go.mod; cacheDir caches parsed compiler output
// keyed on package content ("" disables caching).
func RunCompilerChecks(root string, pkgs []*Package, cacheDir string) ([]Diagnostic, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, pkg := range pkgs {
		byPath[pkg.Path] = pkg
	}
	if cacheDir != "" {
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("lint: creating diagnostics cache: %w", err)
		}
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		contracts := contractsOf(pkg)
		if len(contracts) == 0 {
			continue
		}
		diags, err := compilerDiagsFor(absRoot, pkg, byPath, cacheDir)
		if err != nil {
			return nil, err
		}
		out = append(out, matchContracts(absRoot, contracts, diags)...)
	}
	return out, nil
}

// compilerDiagsFor returns the package's kept compiler diagnostics,
// from cache when the content hash matches, else from a fresh build.
func compilerDiagsFor(absRoot string, pkg *Package, byPath map[string]*Package, cacheDir string) ([]compilerDiag, error) {
	key, err := packageHash(absRoot, pkg, byPath)
	if err != nil {
		return nil, err
	}
	var cacheFile string
	if cacheDir != "" {
		cacheFile = filepath.Join(cacheDir, key+".json")
		if data, err := os.ReadFile(cacheFile); err == nil {
			var diags []compilerDiag
			if json.Unmarshal(data, &diags) == nil {
				return diags, nil
			}
			// Corrupt cache entry: fall through to a fresh build.
		}
	}
	diags, err := buildAndParse(absRoot, pkg)
	if err != nil {
		return nil, err
	}
	if cacheFile != "" {
		if data, err := json.Marshal(diags); err == nil {
			// Best-effort: a failed write only costs the next run a rebuild.
			tmp := cacheFile + ".tmp"
			if os.WriteFile(tmp, data, 0o644) == nil {
				os.Rename(tmp, cacheFile)
			}
		}
	}
	return diags, nil
}

// buildAndParse runs the diagnostic build for one package and parses the
// compiler's stderr into kept diagnostics.
func buildAndParse(absRoot string, pkg *Package) ([]compilerDiag, error) {
	rel, err := filepath.Rel(absRoot, pkg.Dir)
	if err != nil {
		abs, aerr := filepath.Abs(pkg.Dir)
		if aerr != nil {
			return nil, aerr
		}
		if rel, err = filepath.Rel(absRoot, abs); err != nil {
			return nil, err
		}
	}
	pattern := "./" + filepath.ToSlash(rel)
	cmd := exec.Command("go", "build", "-gcflags="+compilerGcflags, pattern)
	cmd.Dir = absRoot
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	outBytes, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: diagnostic build of %s failed: %v\n%s", pkg.Path, err, outBytes)
	}
	return parseCompilerOutput(string(outBytes)), nil
}

// parseCompilerOutput keeps the escape and bounds-check lines of a
// `-m=2 -d=ssa/check_bce` build, deduplicated (escape analysis prints
// each decision twice, once with the flow explanation).
func parseCompilerOutput(out string) []compilerDiag {
	var diags []compilerDiag
	seen := map[compilerDiag]bool{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, ok := parseDiagLine(line)
		if !ok || seen[d] {
			continue
		}
		seen[d] = true
		diags = append(diags, d)
	}
	return diags
}

// parseDiagLine splits one "file.go:line:col: message" line and keeps it
// if the message is an escape or bounds-check diagnostic.
func parseDiagLine(line string) (compilerDiag, bool) {
	rest := line
	file, rest, ok := strings.Cut(rest, ":")
	if !ok || !strings.HasSuffix(file, ".go") {
		return compilerDiag{}, false
	}
	lineStr, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return compilerDiag{}, false
	}
	colStr, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return compilerDiag{}, false
	}
	ln, err := strconv.Atoi(lineStr)
	if err != nil {
		return compilerDiag{}, false
	}
	col, err := strconv.Atoi(colStr)
	if err != nil {
		return compilerDiag{}, false
	}
	msg := strings.TrimPrefix(rest, " ")
	if strings.HasPrefix(msg, " ") {
		// Indented flow-explanation continuation ("  flow: ...", "  from
		// ..."): detail for a decision already kept above.
		return compilerDiag{}, false
	}
	d := compilerDiag{File: file, Line: ln, Col: col}
	switch {
	case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
		d.BCE = true
		d.Msg = msg
	case strings.HasSuffix(msg, "escapes to heap") || strings.HasSuffix(msg, "escapes to heap:"):
		d.Msg = strings.TrimSuffix(msg, ":")
	case strings.HasPrefix(msg, "moved to heap:"):
		d.Msg = msg
	default:
		return compilerDiag{}, false
	}
	return d, true
}

// matchContracts intersects compiler diagnostics with the annotated
// function ranges and renders the violations.
func matchContracts(absRoot string, contracts []contract, diags []compilerDiag) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		file := d.File
		if !filepath.IsAbs(file) {
			file = filepath.Join(absRoot, file)
		}
		for _, c := range contracts {
			cfile := c.file
			if !filepath.IsAbs(cfile) {
				// The loader may have been rooted at a relative path; anchor
				// the comparison at the same module root the build used.
				if abs, err := filepath.Abs(cfile); err == nil {
					cfile = abs
				}
			}
			if cfile != file || d.Line < c.startLine || d.Line > c.endLine {
				continue
			}
			pos := diagPosition(file, d.Line, d.Col)
			if d.BCE {
				if !c.nobc {
					continue
				}
				out = append(out, Diagnostic{
					Pos:      pos,
					Analyzer: BCECheckName,
					Message: fmt.Sprintf("%s is //hddlint:nobc but the compiler retains a bounds check here (%s); "+
						"restructure the index so the prove pass can kill it, or justify the site with //hddlint:ignore bcecheck <reason>",
						c.name, strings.TrimPrefix(d.Msg, "Found ")),
				})
			} else {
				if !c.noalloc {
					continue
				}
				out = append(out, Diagnostic{
					Pos:      pos,
					Analyzer: EscapeCheckName,
					Message: fmt.Sprintf("%s is //hddlint:noalloc but escape analysis proves a heap allocation here (%s); "+
						"hoist it to setup, pool it, or justify the site with //hddlint:ignore hotalloc <reason>",
						c.name, d.Msg),
				})
			}
		}
	}
	return out
}

// diagPosition builds a token.Position directly (compiler diagnostics
// arrive as text, not through a FileSet).
func diagPosition(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}

// packageHash keys one package's cached diagnostics: toolchain version,
// flag string, and the content of every source file of the package and
// its module-internal dependency closure (cross-package inlining means a
// dependency edit can change this package's escape verdicts).
func packageHash(absRoot string, pkg *Package, byPath map[string]*Package) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n", runtime.Version(), compilerGcflags, pkg.Path)
	closure := map[string]*Package{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if closure[p.Path] != nil {
			return
		}
		closure[p.Path] = p
		for _, imp := range p.Types.Imports() {
			if dep := byPath[imp.Path()]; dep != nil {
				visit(dep)
			}
		}
	}
	visit(pkg)
	paths := make([]string, 0, len(closure))
	for p := range closure {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		dir := closure[p].Dir
		ents, err := os.ReadDir(dir)
		if err != nil {
			return "", err
		}
		for _, e := range ents {
			if !isSourceFile(e.Name()) {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return "", err
			}
			fmt.Fprintf(h, "%s/%s %d\n", p, e.Name(), len(data))
			h.Write(data)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
