// Package a is the floateq fixture: naked float equality next to the
// exempt NaN self-test and annotated-helper idioms.
package a

func equal(a, b float64) bool {
	return a == b // want `exact float comparison \(==\)`
}

func notEqual(a, b float64) bool {
	return a != b // want `exact float comparison \(!=\)`
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want `exact float comparison`
}

func thirtyTwo(a, b float32) bool {
	return a == b // want `exact float comparison`
}

// isNaN uses the self-comparison idiom the compiled kernels rely on;
// structurally identical operands are exempt.
func isNaN(x float64) bool {
	return x != x
}

// sameLabel is an annotated comparison helper: exact equality is the
// semantics, documented at the one auditable site.
//
//hddlint:floatcmp fixture: labels are exact by construction
func sameLabel(a, b float64) bool { return a == b }

func viaHelper(a, b float64) bool { return sameLabel(a, b) }

// Integer and ordered comparisons are fine.
func ints(a, b int) bool { return a == b }

func ordered(a, b float64) bool { return a < b }
