// Package a is the atomicmix fixture: variables reached both through
// sync/atomic and plainly, next to the legal all-atomic and init-time
// shapes.
package a

import "sync/atomic"

// counter's address feeds atomic calls, so every access must go through
// the atomic API.
var counter int64

func bump() {
	atomic.AddInt64(&counter, 1)
}

func read() int64 {
	return counter // want `counter is accessed via sync/atomic elsewhere but plainly here`
}

func init() {
	counter = 0 // init runs before any goroutine; plain seeding is legal
}

type cursor struct {
	next int64
	hits atomic.Int64
}

func (c *cursor) claim() int64 {
	return atomic.AddInt64(&c.next, 1) - 1
}

func (c *cursor) reset() {
	c.next = 0 // want `c.next is accessed via sync/atomic elsewhere but plainly here`
}

func (c *cursor) copyHits(o *cursor) {
	c.hits = o.hits // want `assigning a sync/atomic.Int64 as a value bypasses its atomicity`
}

func (c *cursor) load() int64 {
	return c.hits.Load() // typed atomics' method calls are the sanctioned access
}

// plain is never touched atomically; plain access stays legal.
var plain int64

func bumpPlain() {
	plain++
}
