// Package a is the nakedgo fixture: fire-and-forget goroutines next to
// the sanctioned bounded worker-pool pattern.
package a

import "sync"

func naked(f func()) {
	go f() // want `go statement without a sync\.WaitGroup`
}

// pooled is the detect.ScanBatch shape: Add before spawn, Wait before
// return.
func pooled(fs []func()) {
	var wg sync.WaitGroup
	for _, f := range fs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	wg.Wait()
}

// A closure that spawns must wait itself; the outer function's Wait
// does not cover it.
func nestedNaked(f func()) func() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); f() }()
	wg.Wait()
	return func() {
		go f() // want `go statement without a sync\.WaitGroup`
	}
}

func nestedWaits(f func()) func() {
	return func() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); f() }()
		wg.Wait()
	}
}
