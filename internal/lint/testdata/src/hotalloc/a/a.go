// Package a is the hotalloc fixture: allocating constructs inside
// //hddlint:noalloc functions, next to clean kernels and the sanctioned
// cold-path-growth idiom.
package a

import "fmt"

//hddlint:noalloc
func makesScratch(dst, src []float64) {
	buf := make([]float64, len(src)) // want `calls make`
	copy(buf, src)
	copy(dst, buf)
}

//hddlint:noalloc
func grows(dst []float64, v float64) []float64 {
	return append(dst, v) // want `calls append`
}

//hddlint:noalloc
func captures(dst []float64) func() {
	return func() { dst[0] = 1 } // want `builds a closure`
}

//hddlint:noalloc
func concats(a, b string) string {
	return a + b // want `concatenates strings`
}

//hddlint:noalloc
func formats(x float64) {
	fmt.Println(x) // want `calls fmt\.Println`
}

func sink(v any) { _ = v }

//hddlint:noalloc
func boxes(x int) {
	sink(x) // want `boxes a int into an interface argument`
}

//hddlint:noalloc
func converts(x float64) any {
	return any(x) // want `boxes a float64 into an interface`
}

// Pointer-shaped values fit the interface word without allocating.
//
//hddlint:noalloc
func pointerOK(p *int) {
	sink(p)
}

// Unannotated functions may allocate freely.
func cold(n int) []float64 {
	return make([]float64, n)
}

// A real kernel shape: arithmetic into a caller-provided buffer.
//
//hddlint:noalloc
func clean(dst, src []float64) {
	for i, v := range src {
		dst[i] = v * v
	}
}

// Cold-path scratch growth is legal with a justified site ignore.
//
//hddlint:noalloc
func coldGrowth(sc []float64, n int) []float64 {
	if cap(sc) < n {
		//hddlint:ignore hotalloc fixture: cold path grows pooled scratch once
		sc = make([]float64, n)
	}
	return sc[:n]
}
