// Package a is the directive fixture: malformed //hddlint:ignore
// directives are findings, not silent suppressions.
package a

//hddlint:ignore
var missingEverything = 1

//hddlint:ignore maporder
var missingReason = 2

//hddlint:ignore maporder a perfectly good reason
var wellFormed = 3
