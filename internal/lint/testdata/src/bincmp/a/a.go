// Package a is the bincmp fixture: float comparisons inside and outside
// //hddlint:binned kernels.
package a

// walkCodes is a well-behaved binned kernel: routing compares codes,
// floats only accumulate.
//
//hddlint:binned
func walkCodes(codes []uint8, cuts []uint8, payload []float64) float64 {
	var sum float64
	for i, c := range codes {
		if c < cuts[i] {
			sum += payload[i]
		}
	}
	return sum
}

// walkFloats reintroduces threshold compares under the binned marker;
// every routing operator is flagged.
//
//hddlint:binned
func walkFloats(x []float64, thresholds []float64) int {
	i := 0
	for f, t := range thresholds {
		if x[f] < t { // want `float comparison \(<\) in a //hddlint:binned kernel`
			i++
		}
		if x[f] >= t { // want `float comparison \(>=\)`
			i--
		}
		if x[f] == t { // want `float comparison \(==\)`
			i++
		}
	}
	return i
}

// mixedCompare catches the one-float-operand case (an int widened into a
// float comparison is still a float comparison).
//
//hddlint:binned
func mixedCompare(code uint8, t float64) bool {
	return float64(code) > t // want `float comparison \(>\)`
}

// floatPath is NOT a binned kernel: float thresholds are its job, and
// bincmp leaves it alone (floateq owns ==/!= here).
func floatPath(x, t float64) bool {
	return x < t
}

// ignored shows the audited escape hatch: a justified //hddlint:ignore
// suppresses the finding.
//
//hddlint:binned
func ignored(x, t float64) bool {
	//hddlint:ignore bincmp fixture: documented exception
	return x <= t
}
