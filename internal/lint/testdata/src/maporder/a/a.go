// Package a is the maporder fixture: flagged map ranges next to the
// sanctioned sorted-keys and counter idioms.
package a

import "sort"

// sumValues feeds a float accumulation from a map range — the classic
// way bit-identical determinism dies.
func sumValues(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

// writeInOrder serializes fields in map order: the write call makes the
// body order-sensitive even though nothing is accumulated.
func writeInOrder(m map[string]float64, write func(string)) {
	for k := range m { // want `map iteration order is nondeterministic`
		write(k)
	}
}

// sortedKeys is the sanctioned idiom: the collection loop only appends,
// which is order-insensitive; ordering happens in sort.Strings.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedSum ranges over the sorted slice, not the map.
func sortedSum(m map[string]float64) float64 {
	total := 0.0
	for _, k := range sortedKeys(m) {
		total += m[k]
	}
	return total
}

// countValues only bumps integer counters — order-insensitive.
func countValues(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// suppressed demonstrates the ignore directive with a justification.
func suppressed(m map[string]float64) float64 {
	total := 0.0
	//hddlint:ignore maporder fixture demonstrates a justified suppression
	for _, v := range m {
		total += v
	}
	return total
}

// slices are ordered; ranging them is always fine.
func sliceSum(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}
