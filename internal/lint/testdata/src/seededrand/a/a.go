// Package a is the seededrand fixture: global math/rand state and
// wall-clock reads next to the sanctioned seeded-stream idiom.
package a

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want `global math/rand state \(rand\.Intn\)`
}

func globalFloat() float64 {
	return rand.Float64() // want `global math/rand state`
}

func reseed() {
	rand.Seed(42) // want `rand\.Seed mutates the shared global generator`
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now makes results differ run to run`
}

// seeded builds the sanctioned per-seed stream; constructors are
// allowed, as are *rand.Rand type references and method calls.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func draw(rng *rand.Rand) float64 {
	return rng.Float64()
}

// Other time package uses (types, constants, arithmetic) are fine.
func timeout(d time.Duration) time.Duration {
	return d + time.Second
}
