// Package a is the shardmerge fixture: scheduling-ordered merge shapes
// (map ranges, channel folds, merge-fed receives) next to the sanctioned
// owned-index idiom.
package a

type stats struct {
	sum float64
	n   int
}

func (s *stats) add(o stats) {
	s.sum += o.sum
	s.n += o.n
}

// mergeFromMap folds shard stats in map order: per-run random.
func mergeFromMap(byShard map[int]stats) stats {
	var total stats
	for _, s := range byShard { // want `map iteration order is per-run random`
		total.add(s)
	}
	return total
}

// mergeFromChannel folds in arrival order: scheduling order.
func mergeFromChannel(ch chan stats) stats {
	var total stats
	for s := range ch { // want `ranging over a channel merges results in arrival order`
		total.add(s)
	}
	return total
}

// receiveAndMerge receives per-worker results and folds each one.
func receiveAndMerge(ch chan stats, workers int) stats {
	var total stats
	for i := 0; i < workers; i++ {
		s := <-ch // want `channel receive feeds a merge in this function`
		total.add(s)
	}
	return total
}

// join only waits; the received value is discarded, so this is a join,
// not a merge.
func join(done chan struct{}, workers int) {
	for i := 0; i < workers; i++ {
		<-done
	}
}

// drainBlank assigns the receive entirely to blanks — a semaphore.
func drainBlank(ch chan int) {
	_ = <-ch
}

// receiveNoMerge passes a received value through without merging, as a
// single-producer handoff does.
func receiveNoMerge(ch chan int) int {
	return <-ch
}

// collectKeys ranges a map but only appends; ordering happens later, so
// the body is order-insensitive and legal.
func collectKeys(byShard map[int]stats) []int {
	keys := make([]int, 0, len(byShard))
	for k := range byShard {
		keys = append(keys, k)
	}
	return keys
}

// indexedMerge is the sanctioned shape: every producer owns an index and
// the fold walks indexes in order.
func indexedMerge(results []stats) stats {
	var total stats
	for i := range results {
		total.add(results[i])
	}
	return total
}
