// Package a is the asmfallback fixture: body-less (assembly-backed)
// declarations with and without asmKernelRegistry rows, plus malformed
// rows.
package a

type asmKernel struct {
	asm       any
	fallback  any
	equivPath string
}

// goodAVX2 is properly registered: bodied fallback, matching signature,
// non-empty equiv path.
func goodAVX2(p *byte, n int) int

// orphanAVX2 has no registry row at all.
func orphanAVX2(p *byte, n int) int // want `assembly-backed function orphanAVX2 has no asmKernelRegistry row`

// chainAVX2's registered fallback is itself body-less: nothing links on
// a non-asm build.
func chainAVX2(p *byte, n int) int

// mismatchAVX2's fallback is bodied but takes different parameters.
func mismatchAVX2(p *byte, n int) int

// noPathAVX2's row leaves equivPath empty, so no harness family pins it.
func noPathAVX2(p *byte, n int) int

// probe mimics a cpuid-style feature probe: no fallback is meaningful,
// and the audited ignore suppresses the finding.
//
//hddlint:ignore asmfallback fixture: feature probe with no data-kernel fallback
func probe() uint32

// goodSWAR is the pure-Go tier shared by several rows.
func goodSWAR(p *byte, n int) int { return n }

// wideSWAR is bodied but its signature differs from mismatchAVX2's.
func wideSWAR(p *byte, n, k int) int { return n + k }

var asmKernelRegistry = []asmKernel{
	{asm: goodAVX2, fallback: goodSWAR, equivPath: "tiled-range"},
	{asm: chainAVX2, fallback: orphanAVX2, equivPath: "tiled-range"},  // want `fallback must name a bodied function in this package`
	{asm: mismatchAVX2, fallback: wideSWAR, equivPath: "tiled-range"}, // want `fallback wideSWAR has signature .* signatures must match`
	{asm: noPathAVX2, fallback: goodSWAR, equivPath: ""},              // want `equivPath must be a non-empty string literal`
	{asm: goodSWAR, fallback: goodSWAR, equivPath: "tiled-range"},     // want `goodSWAR has a Go body, so it is not an assembly kernel`
}
