// Package a is the contract-parsing fixture: every declaration shape a
// //hddlint:noalloc or //hddlint:nobc marker can attach to.
package a

// both carries two directives on one comment line.
//
//hddlint:noalloc //hddlint:nobc
func both(xs []int) int {
	t := 0
	for i := range xs {
		t += xs[i]
	}
	return t
}

type walker struct{ data []float64 }

// sumRange is a method contract; the display name gains the receiver.
//
//hddlint:nobc
func (w *walker) sumRange() float64 {
	t := 0.0
	for i := range w.data {
		t += w.data[i]
	}
	return t
}

// sumGeneric is a generic function contract.
//
//hddlint:noalloc
func sumGeneric[T ~int | ~int64](xs []T) T {
	var t T
	for i := range xs {
		t += xs[i]
	}
	return t
}

// genericMethod hangs off a generic receiver.
//
//hddlint:nobc
func (b box[T]) first() T {
	return b.items[0]
}

type box[T any] struct{ items []T }

// closure is a var-bound FuncLit; the directive rides the var's doc.
//
//hddlint:nobc
var closure = func(xs []int) int {
	t := 0
	for i := range xs {
		t += xs[i]
	}
	return t
}

var (
	// grouped shows a ValueSpec doc inside a grouped declaration.
	//
	//hddlint:noalloc
	grouped = func(x int) int { return x * 2 }

	// unmarked has no directive and no contract.
	unmarked = func() {}
)

// plain has no directives and must not produce a contract.
func plain() {}
