// Package a is the ignoredrift fixture: one ignore that suppresses a
// live maporder finding, one that suppresses nothing.
package a

// sum carries a live suppression: the directive below absorbs the
// maporder diagnostic on the range line.
func sum(m map[string]float64) float64 {
	t := 0.0
	//hddlint:ignore maporder fixture keeps this suppression live
	for _, v := range m {
		t += v
	}
	return t
}

// sliceSum ranges a slice; maporder never fires here, so the ignore
// below has rotted.
func sliceSum(xs []float64) float64 {
	t := 0.0
	//hddlint:ignore maporder this range never triggered the analyzer
	for _, v := range xs {
		t += v
	}
	return t
}
