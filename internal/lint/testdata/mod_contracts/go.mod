module contractfixture

go 1.22
