// Package kernels is the compiler-contract fixture: annotated functions
// that deliberately violate (and deliberately honor) the noalloc and
// nobc contracts, so the escapecheck/bcecheck tier can be exercised
// end-to-end against a real `go build` run.
package kernels

// leak violates noalloc: returning the address of a local forces it to
// the heap ("moved to heap: x").
//
//hddlint:noalloc
func leak() *int {
	x := 42
	return &x
}

// get violates nobc: nothing bounds i, so the prove pass must retain an
// IsInBounds check.
//
//hddlint:nobc
func get(xs []int, i int) int {
	return xs[i]
}

// sum honors both contracts: range indexing needs no checks and nothing
// escapes.
//
//hddlint:noalloc //hddlint:nobc
func sum(xs []float64) float64 {
	t := 0.0
	for i := range xs {
		t += xs[i]
	}
	return t
}

// pick retains a bounds check on purpose; the site ignore justifies it.
//
//hddlint:nobc
func pick(xs []int, i int) int {
	//hddlint:ignore bcecheck fixture keeps a guarded load on purpose
	return xs[i]
}

// box escapes its argument through interface boxing; the hotalloc-named
// site ignore must also cover the escapecheck finding.
//
//hddlint:noalloc
func box(v int) any {
	//hddlint:ignore hotalloc fixture boxes on the cold path on purpose
	return v
}
