package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCompilerContractTier exercises escapecheck/bcecheck end-to-end
// against the deliberately-violating fixture module: a real `go build
// -gcflags='-m=2 -d=ssa/check_bce'` run, parsed and intersected with the
// annotated functions.
//
//   - leak (noalloc) returns &local    → escapecheck at its body
//   - get (nobc) keeps an IsInBounds   → bcecheck, position-accurate
//   - sum (noalloc+nobc) is clean      → silent
//   - pick's retained check            → justified by //hddlint:ignore bcecheck
//   - box's interface boxing           → justified by the hotalloc-named ignore
//     (escapecheck honors hotalloc site ignores)
func TestCompilerContractTier(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("testdata", "mod_contracts"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	cache := t.TempDir()
	raw, err := RunCompilerChecks(root, pkgs, cache)
	if err != nil {
		t.Fatal(err)
	}
	diags := Finish(pkgs, raw, true)

	var escapeLines, bceLines []int
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) != "kernels.go" {
			t.Errorf("diagnostic outside the fixture: %s", d)
			continue
		}
		switch d.Analyzer {
		case EscapeCheckName:
			escapeLines = append(escapeLines, d.Pos.Line)
			if !strings.Contains(d.Message, "leak is //hddlint:noalloc") {
				t.Errorf("escapecheck message does not name the contract: %s", d.Message)
			}
		case BCECheckName:
			bceLines = append(bceLines, d.Pos.Line)
			if !strings.Contains(d.Message, "get is //hddlint:nobc") {
				t.Errorf("bcecheck message does not name the contract: %s", d.Message)
			}
		case IgnoreDriftName:
			t.Errorf("both fixture ignores suppress live findings; drift reported %s", d)
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	// leak's body: `x := 42` at line 12 draws both "x escapes to heap"
	// and "moved to heap: x".
	for _, ln := range escapeLines {
		if ln != 12 {
			t.Errorf("escapecheck at line %d, want only line 12 (leak's body)", ln)
		}
	}
	if len(escapeLines) == 0 {
		t.Error("no escapecheck finding for leak")
	}
	// get's unguarded load is at line 21; pick's line-41 check is
	// suppressed by its ignore.
	if want := []int{21}; !reflect.DeepEqual(bceLines, want) {
		t.Errorf("bcecheck lines = %v, want %v", bceLines, want)
	}

	// The run populated the diagnostics cache, and a second run served
	// from it reproduces the findings exactly.
	ents, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") {
			cached++
		}
	}
	if cached == 0 {
		t.Error("compiler run cached nothing")
	}
	again, err := RunCompilerChecks(root, pkgs, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(raw, again) {
		t.Errorf("cached rerun diverged:\nfirst: %v\nsecond: %v", raw, again)
	}
}

// TestParseCompilerOutput pins the parser against the exact shapes the
// compiler emits: kept escape and bounds-check lines, stripped flow
// continuations (same position prefix, indented message), ignored
// headers and non-diagnostic chatter.
func TestParseCompilerOutput(t *testing.T) {
	out := strings.Join([]string{
		"# contractfixture/kernels",
		"kernels/kernels.go:12:2: x escapes to heap:",
		"kernels/kernels.go:12:2:   flow: ~r0 = &x:",
		"kernels/kernels.go:12:2:     from &x (address-of) at kernels/kernels.go:13:9",
		"kernels/kernels.go:12:2: moved to heap: x",
		"kernels/kernels.go:20:10: xs does not escape",
		"kernels/kernels.go:50:9: v escapes to heap:",
		"kernels/kernels.go:50:9: v escapes to heap",
		"kernels/kernels.go:21:11: Found IsInBounds",
		"kernels/kernels.go:30:7: Found IsSliceInBounds",
		"kernels/kernels.go:11:6: can inline leak with cost 12",
		"",
	}, "\n")
	got := parseCompilerOutput(out)
	want := []compilerDiag{
		{File: "kernels/kernels.go", Line: 12, Col: 2, Msg: "x escapes to heap"},
		{File: "kernels/kernels.go", Line: 12, Col: 2, Msg: "moved to heap: x"},
		{File: "kernels/kernels.go", Line: 50, Col: 9, Msg: "v escapes to heap"},
		{File: "kernels/kernels.go", Line: 21, Col: 11, BCE: true, Msg: "Found IsInBounds"},
		{File: "kernels/kernels.go", Line: 30, Col: 7, BCE: true, Msg: "Found IsSliceInBounds"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseCompilerOutput:\ngot  %+v\nwant %+v", got, want)
	}
}
