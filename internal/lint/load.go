package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under lint.
type Package struct {
	// Path is the import path ("hddcart/internal/cart").
	Path string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// modulePath is the import-path prefix the loader resolves itself;
// everything else (the standard library) is delegated to the
// source-based importer shipped with the toolchain, so linting needs no
// pre-compiled export data and no third-party loader.
const modulePath = "hddcart"

// LoadModule type-checks every non-test package under root (the
// directory holding go.mod) and returns them sorted by import path.
// Test files are excluded on purpose: the invariants the analyzers
// enforce are properties of production code, and tests legitimately use
// wall clocks, ad-hoc goroutines and exact float comparisons.
func LoadModule(root string) ([]*Package, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, dirs)
	paths := make([]string, 0, len(dirs))
	for p := range dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir type-checks a single directory as a standalone package with
// the given import path. Imports are restricted to the standard
// library; the analyzer test fixtures use this.
func LoadDir(dir, path string) (*Package, error) {
	l := newLoader("", map[string]string{path: dir})
	return l.load(path)
}

// packageDirs maps each import path of the module to its directory.
// testdata trees, hidden directories and directories without buildable
// non-test Go files are skipped.
func packageDirs(root string) (map[string]string, error) {
	dirs := map[string]string{}
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if matchSource(p, e.Name()) {
				rel, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				ip := modulePath
				if rel != "." {
					ip = modulePath + "/" + filepath.ToSlash(rel)
				}
				dirs[ip] = p
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// buildCtx is the build context the loader resolves file sets under: the
// host's default GOOS/GOARCH with no extra tags. Packages that pair a
// tag-gated asm wrapper with a portable fallback (partition_avx2_amd64.go
// vs partition_noasm.go) declare the same symbols in both files, so
// parsing every .go file in the directory would double-declare them; the
// loader must pick exactly the variant the compiler would.
var buildCtx = build.Default

// matchSource reports whether name is a non-test Go source that belongs
// to the package under the default build context (file-name suffixes like
// _amd64.go and //go:build lines both respected).
func matchSource(dir, name string) bool {
	if !isSourceFile(name) {
		return false
	}
	ok, err := buildCtx.MatchFile(dir, name)
	return err == nil && ok
}

// loader type-checks module packages on demand, caching results so each
// package is checked once no matter how many importers reach it.
type loader struct {
	fset  *token.FileSet
	dirs  map[string]string // import path → directory
	cache map[string]*Package
	std   types.ImporterFrom
}

func newLoader(root string, dirs map[string]string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		dirs: dirs,
		// "source" resolves standard-library imports by type-checking
		// their sources under GOROOT, so no compiled export data is
		// needed. It shares our FileSet, keeping positions coherent.
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache: map[string]*Package{},
	}
}

// Import implements types.Importer by splitting the import space:
// module-internal paths are loaded from the repo, everything else is
// assumed to be standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: unknown module package %q", path)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !matchSource(dir, e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	tinfo := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, tinfo)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: tinfo}
	l.cache[path] = pkg
	return pkg, nil
}
