// Package lint is hddcart's static-analysis suite: a set of analyzers
// that turn the repo's determinism and zero-allocation invariants —
// promised by the parallel trainer and the compiled inference engine,
// but otherwise enforced only probabilistically by -race runs and
// AllocsPerRun assertions — into compile-time properties checked on
// every build.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, want-comment fixtures) so the analyzers
// can be ported to a real multichecker wholesale if the dependency ever
// becomes available; it is self-contained on the standard library's
// go/ast + go/types because this module carries no third-party
// dependencies.
//
// Two tiers run over the module. Tier B is the AST/type analyzers in
// this package (maporder, seededrand, hotalloc, floateq, nakedgo,
// bincmp, shardmerge, atomicmix, asmfallback). Sources are selected
// under the host's default build context, exactly as the compiler would
// — packages that pair a tag-gated assembly wrapper with a portable
// fallback declare the same symbols in both variants, and only one may
// parse. Tier A — escapecheck and bcecheck in
// gcflags.go — shells out to the compiler itself (`go build -gcflags
// '-m=2 -d=ssa/check_bce'`) and turns its position-tagged escape and
// bounds-check diagnostics into findings against the annotated kernels,
// so the zero-alloc and bounds-check-elided contracts are proven by the
// same optimizer that compiles the release binary, not approximated by
// syntax.
//
// Comment directives configure the suite (several may share one comment
// line, e.g. `//hddlint:noalloc //hddlint:nobc`):
//
//	//hddlint:noalloc
//	    on a function's doc comment marks it as a steady-state
//	    allocation-free kernel; the hotalloc analyzer flags every
//	    allocating construct in its body, and the escapecheck tier
//	    fails the lint run if the compiler's escape analysis proves a
//	    heap allocation inside it.
//
//	//hddlint:nobc
//	    on a function's doc comment marks it as a bounds-check-free
//	    kernel: the bcecheck tier fails the lint run if the compiler
//	    retains any IsInBounds/IsSliceInBounds check in its body. Use it
//	    on the unsafe partition kernels and hand-elided walks whose
//	    throughput depends on checks staying dead.
//
//	//hddlint:binned
//	    on a function's doc comment marks it as a binned-code inference
//	    kernel; the bincmp analyzer then flags every float comparison in
//	    its body (routing must compare uint8 cut codes).
//
//	//hddlint:ignore <analyzer> <reason>
//	    on (or immediately above) a flagged line suppresses that
//	    analyzer's diagnostics for the line. The reason is mandatory:
//	    an ignore without one is itself reported. An ignore that
//	    suppresses zero diagnostics in a full-suite run is reported by
//	    the ignoredrift pseudo-analyzer, so stale justifications cannot
//	    rot in place. Ignores named hotalloc also cover escapecheck
//	    findings on the same line: a justified cold-path allocation is
//	    equally justified as the heap escape it implies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors analysis.Analyzer closely
// enough that porting to golang.org/x/tools/go/analysis is mechanical.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// AppliesTo restricts the analyzer to packages for which it returns
	// true; nil means every package. Fixture tests bypass the filter and
	// exercise Run directly.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned in the linted source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Collect applies every analyzer to every package (honoring the package
// filters) and returns the raw findings, unfiltered and unsorted. Pair
// it with Finish; RunAll does both for callers without compiler-tier
// diagnostics to merge in.
func Collect(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.Path,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	return diags
}

// Finish filters raw diagnostics (from Collect, RunCompilerChecks, or
// both appended together) through every //hddlint:ignore directive of
// the packages and returns the survivors sorted by position. Malformed
// directives (missing analyzer name or reason) are reported as findings
// of the pseudo-analyzer "directive".
//
// With driftCheck set, every well-formed ignore directive that
// suppressed zero diagnostics is reported by the pseudo-analyzer
// "ignoredrift": an ignore earns its place by suppressing a live
// finding, and one that no longer does is a stale justification hiding
// whatever the next real finding on that line will be. Only enable the
// check on full-suite runs (all analyzers plus the compiler tier);
// partial runs would miscount directives aimed at the tiers not run.
func Finish(pkgs []*Package, diags []Diagnostic, driftCheck bool) []Diagnostic {
	ig := ignoreIndex{}
	for _, pkg := range pkgs {
		bad := ig.collect(pkg)
		diags = append(diags, bad...)
	}
	// Filter into a fresh slice: callers keep their raw findings (the
	// driver reuses them for -json output and tests compare reruns).
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if !ig.suppresses(d) {
			out = append(out, d)
		}
	}
	if driftCheck {
		out = append(out, ig.drift()...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// RunAll is the analyzer-only driver entry point: Collect then Finish,
// without the drift check (fixtures and partial runs use it). The full
// driver — cmd/hddlint and the repo-clean test — appends the compiler
// tier's findings and enables the drift check via Finish directly.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return Finish(pkgs, Collect(pkgs, analyzers), false)
}

// ignoreKey addresses one suppressed (file, line, analyzer) triple.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignoreDirective is one parsed //hddlint:ignore comment; used records
// whether it suppressed at least one diagnostic this run.
type ignoreDirective struct {
	pos  token.Position
	name string
	used bool
}

// ignoreIndex maps each (file, line, analyzer) an ignore covers to the
// directive that established it, so suppression can be traced back for
// the drift check.
type ignoreIndex map[ignoreKey]*ignoreDirective

// suppresses reports whether a directive covers the diagnostic's line,
// marking the directive used. escapecheck findings are additionally
// covered by hotalloc-named ignores on the same line: the site-level
// cold-path justification the hotalloc analyzer honors describes the
// very allocation the compiler's escape analysis reports.
func (ig ignoreIndex) suppresses(d Diagnostic) bool {
	if dir := ig[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; dir != nil {
		dir.used = true
		return true
	}
	if d.Analyzer == EscapeCheckName {
		if dir := ig[ignoreKey{d.Pos.Filename, d.Pos.Line, HotAlloc.Name}]; dir != nil {
			dir.used = true
			return true
		}
	}
	return false
}

// drift returns one ignoredrift diagnostic per directive that suppressed
// nothing.
func (ig ignoreIndex) drift() []Diagnostic {
	seen := map[*ignoreDirective]bool{}
	var out []Diagnostic
	for _, dir := range ig {
		if dir.used || seen[dir] {
			continue
		}
		seen[dir] = true
		out = append(out, Diagnostic{
			Pos:      dir.pos,
			Analyzer: IgnoreDriftName,
			Message: fmt.Sprintf("//hddlint:ignore %s suppresses no %s diagnostic; "+
				"the justification has rotted — delete the directive or re-anchor it to a live finding",
				dir.name, dir.name),
		})
	}
	return out
}

const ignorePrefix = "//hddlint:ignore"

// collect indexes every //hddlint:ignore directive of a package. A
// directive suppresses its own source line and, when it is the whole
// comment line, the line directly below it (the usual "comment above
// the statement" placement). Directives missing an analyzer name or a
// justification are returned as diagnostics instead of being honored.
func (ig ignoreIndex) collect(pkg *Package) []Diagnostic {
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				if name == "" || strings.TrimSpace(reason) == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "hddlint:ignore needs an analyzer name and a justification: //hddlint:ignore <analyzer> <reason>",
					})
					continue
				}
				dir := &ignoreDirective{pos: pos, name: name}
				ig[ignoreKey{pos.Filename, pos.Line, name}] = dir
				ig[ignoreKey{pos.Filename, pos.Line + 1, name}] = dir
			}
		}
	}
	return bad
}

// Directive names recognized on function doc comments. A single comment
// line may carry several, space-separated: `//hddlint:noalloc //hddlint:nobc`.
const (
	noallocDirective = "//hddlint:noalloc"
	nobcDirective    = "//hddlint:nobc"
	binnedDirective  = "//hddlint:binned"
)

// directiveSet returns every //hddlint:<name> marker in a doc comment,
// keyed by the full marker text ("//hddlint:noalloc"). Markers may share
// a line; ignore directives are not collected here (they are positional,
// not declarative, and carry arguments).
func directiveSet(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var set map[string]bool
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, "//hddlint:") || strings.HasPrefix(c.Text, ignorePrefix) {
			continue
		}
		for _, tok := range strings.Fields(c.Text) {
			if !strings.HasPrefix(tok, "//hddlint:") && !strings.HasPrefix(tok, "hddlint:") {
				continue
			}
			tok = strings.TrimPrefix(tok, "//")
			if set == nil {
				set = map[string]bool{}
			}
			set["//"+tok] = true
		}
	}
	return set
}

// hasNoallocDirective reports whether a function's doc comment carries
// the //hddlint:noalloc marker.
func hasNoallocDirective(doc *ast.CommentGroup) bool {
	return directiveSet(doc)[noallocDirective]
}

// hasNobcDirective reports whether a function's doc comment carries the
// //hddlint:nobc marker.
func hasNobcDirective(doc *ast.CommentGroup) bool {
	return directiveSet(doc)[nobcDirective]
}
