// Package lint is hddcart's static-analysis suite: a set of analyzers
// that turn the repo's determinism and zero-allocation invariants —
// promised by the parallel trainer and the compiled inference engine,
// but otherwise enforced only probabilistically by -race runs and
// AllocsPerRun assertions — into compile-time properties checked on
// every build.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, want-comment fixtures) so the analyzers
// can be ported to a real multichecker wholesale if the dependency ever
// becomes available; it is self-contained on the standard library's
// go/ast + go/types because this module carries no third-party
// dependencies.
//
// Three comment directives configure the suite:
//
//	//hddlint:noalloc
//	    on a function's doc comment marks it as a steady-state
//	    allocation-free kernel; the hotalloc analyzer then flags every
//	    allocating construct in its body.
//
//	//hddlint:binned
//	    on a function's doc comment marks it as a binned-code inference
//	    kernel; the bincmp analyzer then flags every float comparison in
//	    its body (routing must compare uint8 cut codes).
//
//	//hddlint:ignore <analyzer> <reason>
//	    on (or immediately above) a flagged line suppresses that
//	    analyzer's diagnostics for the line. The reason is mandatory:
//	    an ignore without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors analysis.Analyzer closely
// enough that porting to golang.org/x/tools/go/analysis is mechanical.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// AppliesTo restricts the analyzer to packages for which it returns
	// true; nil means every package. Fixture tests bypass the filter and
	// exercise Run directly.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned in the linted source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// RunAll is the driver entry point: it applies every analyzer to every
// package (honoring the package filters), filters the results through
// each file's //hddlint:ignore directives, and returns the surviving
// diagnostics sorted by position. Malformed ignore directives (missing
// analyzer name or reason) are reported as findings of the pseudo
// analyzer "directive".
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.Path,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	ig := ignoreIndex{}
	for _, pkg := range pkgs {
		pkgIg, bad := collectIgnores(pkg)
		diags = append(diags, bad...)
		for k, v := range pkgIg {
			ig[k] = v
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if !ig.suppresses(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreKey addresses one suppressed (file, line, analyzer) triple.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type ignoreIndex map[ignoreKey]bool

// suppresses reports whether a directive covers the diagnostic's line.
func (ig ignoreIndex) suppresses(d Diagnostic) bool {
	return ig[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
}

const ignorePrefix = "//hddlint:ignore"

// collectIgnores indexes every //hddlint:ignore directive of a package.
// A directive suppresses its own source line and, when it is the whole
// comment line, the line directly below it (the usual "comment above
// the statement" placement). Directives missing an analyzer name or a
// justification are returned as diagnostics instead of being honored.
func collectIgnores(pkg *Package) (ignoreIndex, []Diagnostic) {
	ig := ignoreIndex{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				if name == "" || strings.TrimSpace(reason) == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "hddlint:ignore needs an analyzer name and a justification: //hddlint:ignore <analyzer> <reason>",
					})
					continue
				}
				ig[ignoreKey{pos.Filename, pos.Line, name}] = true
				ig[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return ig, bad
}

const noallocDirective = "//hddlint:noalloc"

// hasNoallocDirective reports whether a function's doc comment carries
// the //hddlint:noalloc marker.
func hasNoallocDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == noallocDirective || strings.HasPrefix(c.Text, noallocDirective+" ") {
			return true
		}
	}
	return false
}
