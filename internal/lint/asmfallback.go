package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// AsmFallback enforces the assembly-fallback contract introduced with the
// SIMD partition kernels: every assembly-backed function (a body-less
// FuncDecl whose implementation lives in a .s file) must be registered in
// its package's asmKernelRegistry with a pure-Go fallback and an equiv
// harness path family. The registry is what lets noasm and non-amd64
// builds link (the dispatcher swaps in the fallback) and what the equiv
// dispatch-matrix test walks to prove the two tiers bit-identical — an
// unregistered kernel is assembly that nothing pins to its portable twin.
//
// Per registry row, the analyzer checks that:
//
//   - asm names a body-less package-level function (a bodied one is not
//     assembly and the row is dead weight),
//   - fallback names a bodied package-level function with the identical
//     signature (so the dispatcher can substitute it blindly), and
//   - equivPath is a non-empty string literal naming the harness family.
//
// Body-less declarations that are deliberately unregistered — runtime
// feature probes like cpuid, which have no meaningful pure-Go fallback —
// carry //hddlint:ignore asmfallback <reason> on the declaration.
var AsmFallback = &Analyzer{
	Name: "asmfallback",
	Doc:  "checks that assembly-backed kernels register a pure-Go fallback and equiv path in asmKernelRegistry",
	Run:  runAsmFallback,
}

const asmRegistryName = "asmKernelRegistry"

func runAsmFallback(p *Pass) {
	// Pass 1: index every package-level function by whether it has a body.
	bodied := map[string]bool{}
	bodyless := map[string]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if fd.Body != nil {
				bodied[fd.Name.Name] = true
			} else {
				bodyless[fd.Name.Name] = fd
			}
		}
	}
	if len(bodyless) == 0 {
		return
	}

	// Pass 2: find the registry literal and validate its rows.
	registered := map[string]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != asmRegistryName || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue // declared empty (noasm variant)
					}
					for _, elt := range lit.Elts {
						row, ok := elt.(*ast.CompositeLit)
						if !ok {
							continue
						}
						checkAsmRow(p, row, bodied, bodyless, registered)
					}
				}
			}
		}
	}

	// Pass 3: every body-less declaration must have been registered.
	for name, fd := range bodyless {
		if registered[name] {
			continue
		}
		p.Reportf(fd.Pos(), "assembly-backed function %s has no %s row; register a pure-Go fallback and equiv path family so non-asm builds and the dispatch matrix cover it", name, asmRegistryName)
	}
}

// checkAsmRow validates one asmKernel literal, recording the asm kernel
// name it registers.
func checkAsmRow(p *Pass, row *ast.CompositeLit, bodied map[string]bool, bodyless map[string]*ast.FuncDecl, registered map[string]bool) {
	fields := asmRowFields(row)
	asmID, _ := fields["asm"].(*ast.Ident)
	if asmID == nil {
		p.Reportf(row.Pos(), "%s row: asm must be a package-level function identifier", asmRegistryName)
	} else if _, ok := bodyless[asmID.Name]; !ok {
		p.Reportf(asmID.Pos(), "%s row: %s has a Go body, so it is not an assembly kernel; drop the row or point it at the body-less declaration", asmRegistryName, asmID.Name)
	} else {
		registered[asmID.Name] = true
	}

	fbID, _ := fields["fallback"].(*ast.Ident)
	if fbID == nil || !bodied[fbID.Name] {
		pos := row.Pos()
		if fbID != nil {
			pos = fbID.Pos()
		}
		p.Reportf(pos, "%s row: fallback must name a bodied function in this package; it replaces the assembly on non-asm builds", asmRegistryName)
	} else if asmID != nil {
		at, ft := p.TypeOf(asmID), p.TypeOf(fbID)
		if at != nil && ft != nil && !types.Identical(at, ft) {
			p.Reportf(fbID.Pos(), "%s row: fallback %s has signature %s, but %s has %s; the dispatcher substitutes them blindly, so signatures must match", asmRegistryName, fbID.Name, ft, asmID.Name, at)
		}
	}

	path, _ := fields["equivPath"].(*ast.BasicLit)
	empty := path == nil
	if path != nil {
		if s, err := strconv.Unquote(path.Value); err == nil && s == "" {
			empty = true
		}
	}
	if empty {
		pos := row.Pos()
		if path != nil {
			pos = path.Pos()
		}
		p.Reportf(pos, "%s row: equivPath must be a non-empty string literal naming the equiv harness path family that pins the kernel bit-identical", asmRegistryName)
	}
}

// asmRowFields maps an asmKernel literal's field names to value
// expressions, handling both keyed and positional forms (positional
// follows the struct's declaration order: asm, fallback, equivPath).
func asmRowFields(row *ast.CompositeLit) map[string]ast.Expr {
	order := []string{"asm", "fallback", "equivPath"}
	out := map[string]ast.Expr{}
	for i, elt := range row.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				out[key.Name] = kv.Value
			}
			continue
		}
		if i < len(order) {
			out[order[i]] = elt
		}
	}
	return out
}
