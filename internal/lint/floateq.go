package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FloatEq flags == and != between floating-point operands on the
// determinism-critical paths. Exact float equality is almost always a
// latent bug — two mathematically equal accumulations can differ in
// the last ulp — and where it IS correct (comparing stored class
// labels, NaN sentinels, exact-zero guards) the comparison belongs in
// a named helper that documents why, marked //hddlint:floatcmp, so
// every exact comparison in the tree is auditable in one grep.
//
// Two idioms are exempt without annotation: self-comparison (x != x,
// the NaN test the compiled kernels use) and comparisons inside a
// function whose doc comment carries //hddlint:floatcmp <reason>.
var FloatEq = &Analyzer{
	Name:      "floateq",
	Doc:       "flags ==/!= on floats outside annotated comparison helpers",
	AppliesTo: inDeterminismCriticalPackage,
	Run:       runFloatEq,
}

const floatcmpDirective = "//hddlint:floatcmp"

func hasFloatcmpDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == floatcmpDirective || strings.HasPrefix(c.Text, floatcmpDirective+" ") {
			return true
		}
	}
	return false
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasFloatcmpDirective(fd.Doc) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				op := be.Op.String()
				if op != "==" && op != "!=" {
					return true
				}
				if !isFloatType(p.TypeOf(be.X)) && !isFloatType(p.TypeOf(be.Y)) {
					return true
				}
				// x != x / x == x is the NaN test; structurally identical
				// operands cannot disagree for any other reason.
				if types.ExprString(be.X) == types.ExprString(be.Y) {
					return true
				}
				p.Reportf(be.Pos(), "exact float comparison (%s) can differ in the last ulp; move it into a //hddlint:floatcmp helper documenting why exact equality is correct", op)
				return true
			})
		}
	}
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
