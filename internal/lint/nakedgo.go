package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NakedGo enforces the bounded-worker-pool discipline from
// detect.ScanBatch: every `go` statement must live in a function that
// also waits for its goroutines through a sync.WaitGroup (or an
// errgroup.Group, should one appear). A goroutine spawned without a
// Wait in the same function outlives its spawner, which is how result
// buffers get written after they were read and how "deterministic"
// merges end up racing their consumers.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "flags go statements whose spawning function never Waits on a WaitGroup/errgroup",
	Run:  runNakedGo,
}

func runNakedGo(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(p, fd.Body)
		}
	}
}

// checkGoStmts scans one function body. Function literals start their
// own scope: a `go` inside a closure must be justified by a Wait inside
// that same closure.
func checkGoStmts(p *Pass, body *ast.BlockStmt) {
	waits := waitsForGoroutines(p, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			checkGoStmts(p, e.Body)
			return false
		case *ast.GoStmt:
			if !waits {
				p.Reportf(e.Pos(), "go statement without a sync.WaitGroup/errgroup Wait in the same function; use the bounded worker-pool pattern (wg.Add / go / wg.Wait)")
			}
		}
		return true
	})
}

// waitsForGoroutines reports whether the body (excluding nested
// function literals) calls Wait on a sync.WaitGroup or errgroup.Group.
func waitsForGoroutines(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if isWaitableType(p.TypeOf(sel.X)) {
			found = true
		}
		return true
	})
	return found
}

// isWaitableType matches sync.WaitGroup and errgroup.Group receivers
// (plain or pointer).
func isWaitableType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "sync" && name == "WaitGroup") ||
		(strings.HasSuffix(pkg, "errgroup") && name == "Group")
}
