package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture loads testdata/src/<fixture> as a standalone package, runs
// the analyzer on it (package scoping bypassed — fixtures exercise the
// detection logic directly), and checks the diagnostics against the
// fixture's `// want "regexp"` comments, golang.org/x/tools
// analysistest style: every diagnostic must be wanted by a comment on
// its line, and every want comment must be matched by a diagnostic.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := LoadDir(dir, fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	unscoped := &Analyzer{Name: a.Name, Doc: a.Doc, Run: a.Run}
	diags := RunAll([]*Package{pkg}, []*Analyzer{unscoped})

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		matched := false
		rest := wants[key][:0]
		for _, w := range wants[key] {
			if !matched && w.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			t.Errorf("no diagnostic at %s matching %q", key, w)
		}
	}
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"` + "|`([^`]*)`")

// collectWants indexes every `// want "p1" "p2"` comment by
// "file.go:line".
func collectWants(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s: malformed want comment %q", key, c.Text)
				}
				for _, a := range args {
					pat := a[1]
					if pat == "" {
						pat = a[2]
					} else {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}
