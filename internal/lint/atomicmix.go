package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix guards the discipline the sweep engine's cursors rely on: a
// variable or struct field that is ever accessed through sync/atomic
// must be accessed through sync/atomic everywhere outside init-time
// setup. A plain read racing an atomic.AddInt64 is not "slightly stale"
// — it is undefined under the memory model, invisible to -race unless
// the schedule cooperates, and the classic way a work-stealing cursor
// or a shared stats counter goes wrong long after the code was written.
//
// Two access classes are tracked:
//
//   - function-style: any object whose address is passed to a
//     sync/atomic function (atomic.AddInt64(&s.n, 1), atomic.LoadInt64,
//     CompareAndSwap...). Every other mention of that object — plain
//     read, plain write, address-taken alias — is flagged unless it
//     occurs inside a func init().
//   - typed: a value of type sync/atomic.Int64 & friends assigned or
//     copied as a value (s.next = other.next). Method calls (.Load,
//     .Add) are the sanctioned access; go vet's copylocks catches whole-
//     struct copies, AtomicMix catches direct field re-assignment.
//
// Init-time setup (func init) is exempt: before any goroutine exists,
// plain stores are the normal way to seed a counter.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags plain accesses to variables also accessed via sync/atomic (outside init)",
	Run:  runAtomicMix,
}

func runAtomicMix(p *Pass) {
	// Pass 1: collect every object whose address feeds a sync/atomic
	// call, remembering one call position for the report.
	atomicObjs := map[types.Object]bool{}
	atomicArgs := map[ast.Expr]bool{} // the &obj expressions inside atomic calls (legal uses)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(p, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if obj := objectOf(p, un.X); obj != nil {
					atomicObjs[obj] = true
					atomicArgs[un.X] = true
				}
			}
			return true
		})
	}
	// Pass 2: flag every other use of those objects outside init, and
	// value-assignments of typed atomics.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inInit := fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.Ident, *ast.SelectorExpr:
					expr := n.(ast.Expr)
					if atomicArgs[expr] {
						// The sanctioned &obj argument of an atomic call; do not
						// descend into its field ident.
						return false
					}
					obj := objectOf(p, expr)
					if obj == nil || !atomicObjs[obj] {
						return true
					}
					// A SelectorExpr's X ident resolves to the struct, not the
					// field; only the selector itself matches the field object,
					// so nested traversal will not double-report.
					if inInit {
						return false
					}
					p.Reportf(expr.Pos(), "%s is accessed via sync/atomic elsewhere but plainly here; "+
						"mixed access is a data race the memory model leaves undefined — use the atomic API everywhere outside init", exprString(expr))
					return false
				case *ast.AssignStmt:
					if inInit {
						return true
					}
					for _, lhs := range e.Lhs {
						if !isTypedAtomic(p.TypeOf(lhs)) {
							continue
						}
						p.Reportf(lhs.Pos(), "assigning a %s as a value bypasses its atomicity; "+
							"use its Store/Load methods (plain assignment races every concurrent method call)",
							p.TypeOf(lhs).String())
					}
				}
				return true
			})
		}
	}
}

// isAtomicFuncCall reports whether call invokes a function from
// sync/atomic (AddInt64, LoadUint32, CompareAndSwapPointer, ...).
func isAtomicFuncCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[x].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// isTypedAtomic reports whether t is one of sync/atomic's value types
// (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...).
func isTypedAtomic(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		if alias, ok := t.(*types.Alias); ok {
			return isTypedAtomic(types.Unalias(alias))
		}
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// objectOf resolves an ident or selector to its variable/field object.
func objectOf(p *Pass, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		if obj, ok := p.Info.Uses[x]; ok {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
		if obj, ok := p.Info.Defs[x]; ok {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok {
			if _, isVar := sel.Obj().(*types.Var); isVar {
				return sel.Obj()
			}
		}
		// Package-qualified var (pkg.Var) resolves through Uses on Sel.
		if obj, ok := p.Info.Uses[x.Sel]; ok {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
	}
	return nil
}

// exprString renders a flagged expression compactly for the message.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		var b strings.Builder
		if id, ok := x.X.(*ast.Ident); ok {
			b.WriteString(id.Name)
			b.WriteString(".")
		}
		b.WriteString(x.Sel.Name)
		return b.String()
	}
	return "value"
}
