package eval

import (
	"math"
	"strings"
	"sync"
	"testing"

	"hddcart/internal/detect"
)

func TestRates(t *testing.T) {
	r := Result{GoodTotal: 1000, GoodAlarmed: 3, FailedTotal: 40, FailedDetected: 38}
	if got := r.FAR(); math.Abs(got-0.003) > 1e-12 {
		t.Errorf("FAR = %v", got)
	}
	if got := r.FDR(); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("FDR = %v", got)
	}
	empty := Result{}
	if empty.FAR() != 0 || empty.FDR() != 0 || empty.MeanTIA() != 0 {
		t.Error("empty result rates should be 0")
	}
}

func TestMeanTIA(t *testing.T) {
	r := Result{TIAs: []int{100, 200, 300}}
	if got := r.MeanTIA(); got != 200 {
		t.Errorf("MeanTIA = %v", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.AddGood(false)
	c.AddGood(true)
	c.AddFailed(detect.Outcome{Alarmed: true, LeadHours: 50})
	c.AddFailed(detect.Outcome{Alarmed: false, LeadHours: -1})
	r := c.Result()
	if r.GoodTotal != 2 || r.GoodAlarmed != 1 {
		t.Errorf("good counts = %d/%d", r.GoodAlarmed, r.GoodTotal)
	}
	if r.FailedTotal != 2 || r.FailedDetected != 1 {
		t.Errorf("failed counts = %d/%d", r.FailedDetected, r.FailedTotal)
	}
	if len(r.TIAs) != 1 || r.TIAs[0] != 50 {
		t.Errorf("TIAs = %v", r.TIAs)
	}
}

func TestCounterSnapshotIsolation(t *testing.T) {
	var c Counter
	c.AddFailed(detect.Outcome{Alarmed: true, LeadHours: 10})
	r := c.Result()
	r.TIAs[0] = 999
	if got := c.Result().TIAs[0]; got != 10 {
		t.Error("Result must return an isolated copy of TIAs")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(alarm bool) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.AddGood(alarm)
				c.AddFailed(detect.Outcome{Alarmed: true, LeadHours: j})
			}
		}(i%2 == 0)
	}
	wg.Wait()
	r := c.Result()
	if r.GoodTotal != 5000 || r.FailedTotal != 5000 || len(r.TIAs) != 5000 {
		t.Errorf("concurrent totals = %d/%d/%d", r.GoodTotal, r.FailedTotal, len(r.TIAs))
	}
}

func TestMerge(t *testing.T) {
	var a, b Counter
	a.AddGood(true)
	b.AddGood(false)
	b.AddFailed(detect.Outcome{Alarmed: true, LeadHours: 7})
	a.Merge(&b)
	r := a.Result()
	if r.GoodTotal != 2 || r.GoodAlarmed != 1 || r.FailedDetected != 1 || len(r.TIAs) != 1 {
		t.Errorf("merged = %+v", r)
	}
}

func TestTIAHistogram(t *testing.T) {
	tias := []int{0, 24, 25, 72, 100, 336, 337, 450, 500}
	got := TIAHistogram(tias)
	want := []int{2, 2, 1, 1, 3} // 500 lands in the last bucket
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", got, want)
		}
	}
	if len(TIABucketLabels) != len(TIABucketBounds) {
		t.Error("labels/bounds mismatch")
	}
}

func TestCurveString(t *testing.T) {
	c := Curve{
		{Param: 1, Result: Result{GoodTotal: 100, GoodAlarmed: 1, FailedTotal: 10, FailedDetected: 9}},
	}
	s := c.String()
	if !strings.Contains(s, "FAR") || !strings.Contains(s, "90.00") {
		t.Errorf("curve table:\n%s", s)
	}
}

func TestCurveSortAndAUC(t *testing.T) {
	mk := func(far, fdr float64) Result {
		return Result{
			GoodTotal: 10000, GoodAlarmed: int(far * 10000),
			FailedTotal: 100, FailedDetected: int(fdr * 100),
		}
	}
	c := Curve{
		{Param: 3, Result: mk(0.10, 0.95)},
		{Param: 1, Result: mk(0.00, 0.50)},
		{Param: 2, Result: mk(0.05, 0.90)},
	}
	c.SortByFAR()
	if c[0].Param != 1 || c[2].Param != 3 {
		t.Errorf("sort order wrong: %+v", c)
	}
	auc := c.AUC()
	// Trapezoids (FDR as fractions): [0,0.05]: (0.5+0.9)/2=0.7,
	// [0.05,0.10]: (0.9+0.95)/2=0.925 → weighted mean = 0.8125.
	if math.Abs(auc-0.8125) > 1e-9 {
		t.Errorf("AUC = %v, want 0.8125", auc)
	}
	if (Curve{}).AUC() != 0 {
		t.Error("empty curve AUC should be 0")
	}
}

func TestResultString(t *testing.T) {
	r := Result{GoodTotal: 100, GoodAlarmed: 1, FailedTotal: 10, FailedDetected: 9, TIAs: []int{100}}
	s := r.String()
	for _, want := range []string{"FAR 1.00%", "FDR 90.00%", "100.0 h"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String() = %q missing %q", s, want)
		}
	}
}

func TestWilsonInterval(t *testing.T) {
	// Known value: 8/10 at z=1.96 → approximately (0.490, 0.943).
	lo, hi := WilsonInterval(8, 10, 1.96)
	if math.Abs(lo-0.490) > 0.01 || math.Abs(hi-0.943) > 0.01 {
		t.Errorf("Wilson(8,10) = (%.3f, %.3f), want ≈ (0.490, 0.943)", lo, hi)
	}
	// Zero successes still give a non-degenerate upper bound.
	lo, hi = WilsonInterval(0, 1000, 1.96)
	if lo != 0 || hi <= 0 || hi > 0.01 {
		t.Errorf("Wilson(0,1000) = (%v, %v)", lo, hi)
	}
	// Degenerate n.
	lo, hi = WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("Wilson(0,0) = (%v, %v)", lo, hi)
	}
	// Bounds stay within [0,1].
	lo, hi = WilsonInterval(10, 10, 1.96)
	if lo < 0 || hi > 1 {
		t.Errorf("Wilson(10,10) = (%v, %v)", lo, hi)
	}
}

func TestResultIntervals(t *testing.T) {
	r := Result{GoodTotal: 1000, GoodAlarmed: 1, FailedTotal: 50, FailedDetected: 47}
	lo, hi := r.FARInterval()
	if !(lo <= r.FAR() && r.FAR() <= hi) {
		t.Errorf("FAR %v outside its interval (%v,%v)", r.FAR(), lo, hi)
	}
	lo, hi = r.FDRInterval()
	if !(lo <= r.FDR() && r.FDR() <= hi) {
		t.Errorf("FDR %v outside its interval (%v,%v)", r.FDR(), lo, hi)
	}
}
