package eval

// exactZero reports whether v is exactly zero — the guard against
// dividing by a zero span/total. Naked float equality is banned here by
// hddlint's floateq analyzer; see cart/floatcmp.go for the rationale.
//
//hddlint:floatcmp zero guards division (0-width FAR span means "no curve"); a near-zero span is a legitimate tiny denominator, only exact zero is invalid
func exactZero(v float64) bool { return v == 0 }
