// Package eval accumulates drive-level detection outcomes into the paper's
// metrics: the failure detection rate (FDR — fraction of failed drives
// correctly flagged), the false alarm rate (FAR — fraction of good drives
// incorrectly flagged) and the time in advance (TIA — lead time of correct
// warnings), plus ROC curves and the TIA histograms of Figures 3–4.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"hddcart/internal/detect"
)

// Result summarizes one evaluation run.
type Result struct {
	// GoodTotal and GoodAlarmed count good test drives and false alarms.
	GoodTotal, GoodAlarmed int
	// FailedTotal and FailedDetected count failed test drives and
	// correct detections.
	FailedTotal, FailedDetected int
	// TIAs holds the lead hours of every correct detection.
	TIAs []int
}

// FAR returns the false alarm rate in [0,1].
func (r Result) FAR() float64 {
	if r.GoodTotal == 0 {
		return 0
	}
	return float64(r.GoodAlarmed) / float64(r.GoodTotal)
}

// FDR returns the failure detection rate in [0,1].
func (r Result) FDR() float64 {
	if r.FailedTotal == 0 {
		return 0
	}
	return float64(r.FailedDetected) / float64(r.FailedTotal)
}

// MeanTIA returns the mean lead time in hours (0 when nothing was
// detected).
func (r Result) MeanTIA() float64 {
	if len(r.TIAs) == 0 {
		return 0
	}
	sum := 0
	for _, t := range r.TIAs {
		sum += t
	}
	return float64(sum) / float64(len(r.TIAs))
}

// String formats the result like the paper's table rows.
func (r Result) String() string {
	return fmt.Sprintf("FAR %.2f%%  FDR %.2f%%  TIA %.1f h (good %d/%d, failed %d/%d)",
		r.FAR()*100, r.FDR()*100, r.MeanTIA(),
		r.GoodAlarmed, r.GoodTotal, r.FailedDetected, r.FailedTotal)
}

// Counter accumulates outcomes; it is safe for concurrent use so drive
// scans can run on a worker pool.
type Counter struct {
	mu  sync.Mutex
	res Result
}

// AddGood records a good test drive and whether it raised a false alarm.
func (c *Counter) AddGood(alarmed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.res.GoodTotal++
	if alarmed {
		c.res.GoodAlarmed++
	}
}

// AddFailed records a failed test drive's outcome.
func (c *Counter) AddFailed(out detect.Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.res.FailedTotal++
	if out.Alarmed {
		c.res.FailedDetected++
		if out.LeadHours >= 0 {
			c.res.TIAs = append(c.res.TIAs, out.LeadHours)
		}
	}
}

// Merge folds another counter's totals into c.
func (c *Counter) Merge(other *Counter) {
	o := other.Result()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.res.GoodTotal += o.GoodTotal
	c.res.GoodAlarmed += o.GoodAlarmed
	c.res.FailedTotal += o.FailedTotal
	c.res.FailedDetected += o.FailedDetected
	c.res.TIAs = append(c.res.TIAs, o.TIAs...)
}

// Result returns a snapshot of the accumulated metrics.
func (c *Counter) Result() Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.res
	out.TIAs = append([]int(nil), c.res.TIAs...)
	return out
}

// TIABucketBounds are the upper bounds (hours, inclusive) of the TIA
// histogram buckets in the paper's Figures 3 and 4; leads above the last
// bound are counted in the final bucket.
var TIABucketBounds = []int{24, 72, 168, 336, 450}

// TIABucketLabels are the printable bucket ranges.
var TIABucketLabels = []string{"0-24", "25-72", "73-168", "169-336", "337-450"}

// TIAHistogram buckets lead times per the paper's figures.
func TIAHistogram(tias []int) []int {
	counts := make([]int, len(TIABucketBounds))
	for _, t := range tias {
		placed := false
		for i, ub := range TIABucketBounds {
			if t <= ub {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(counts)-1]++
		}
	}
	return counts
}

// Point is one operating point of an ROC curve.
type Point struct {
	// Param is the swept parameter (voter count N or RT threshold).
	Param float64
	// Result holds the metrics at this point.
	Result Result
}

// Curve is an ROC curve: the FDR/FAR trade-off across a parameter sweep.
type Curve []Point

// String renders the curve as a table.
func (c Curve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %10s %10s\n", "param", "FAR(%)", "FDR(%)", "TIA(h)")
	for _, p := range c {
		fmt.Fprintf(&b, "%10.3g %10.4f %10.2f %10.1f\n",
			p.Param, p.Result.FAR()*100, p.Result.FDR()*100, p.Result.MeanTIA())
	}
	return b.String()
}

// SortByFAR orders the curve by increasing false alarm rate.
func (c Curve) SortByFAR() {
	sort.Slice(c, func(i, j int) bool { return c[i].Result.FAR() < c[j].Result.FAR() })
}

// AUC returns the area under the (FAR, FDR) curve via the trapezoid rule
// over the observed FAR span, normalized by that span; it returns 0 for
// curves with fewer than two distinct FAR values. It is a coarse summary
// for comparing models on the same sweep.
func (c Curve) AUC() float64 {
	pts := append(Curve(nil), c...)
	pts.SortByFAR()
	var area, span float64
	for i := 1; i < len(pts); i++ {
		dx := pts[i].Result.FAR() - pts[i-1].Result.FAR()
		area += dx * (pts[i].Result.FDR() + pts[i-1].Result.FDR()) / 2
		span += dx
	}
	if exactZero(span) {
		return 0
	}
	return area / span
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion of k successes in n trials at the given z (1.96 ≈ 95%). It is
// well-behaved at the extreme proportions drive-level FAR estimates live
// at (k = 0 or tiny k over thousands of drives), where the normal
// approximation fails.
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	fn := float64(n)
	denom := 1 + z*z/fn
	center := (p + z*z/(2*fn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/fn+z*z/(4*fn*fn))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// FARInterval returns the 95% Wilson interval of the false alarm rate.
func (r Result) FARInterval() (lo, hi float64) {
	return WilsonInterval(r.GoodAlarmed, r.GoodTotal, 1.96)
}

// FDRInterval returns the 95% Wilson interval of the detection rate.
func (r Result) FDRInterval() (lo, hi float64) {
	return WilsonInterval(r.FailedDetected, r.FailedTotal, 1.96)
}
