package simulate

import (
	"math"
	"math/rand"

	"hddcart/internal/smart"
)

// modeAmp holds the degradation amplitudes of one failure mode: how far
// each signal attribute is driven by the end of the deterioration window
// (at severity 1). Normalized-value amplitudes are in SMART points; raw
// amplitudes are total counter increments; tempC is degrees Celsius.
type modeAmp struct {
	rrer, hec, ser, sut float64 // normalized-point wear at p=1
	tempC               float64 // °C rise at p=1
	rueRaw              float64 // total Reported Uncorrectable count
	rscRaw              float64 // total Reallocated Sectors count
	hfwRaw              float64 // total High Fly Writes count
	pendBurst           float64 // pending-sector burst multiplier
}

// modeAmps indexes amplitude sets by FailureMode.
var modeAmps = [numModes]modeAmp{
	ModeUncorrectable: {rrer: 6, hec: 8, ser: 3, sut: 1, tempC: 1.5, rueRaw: 60, rscRaw: 40, hfwRaw: 3, pendBurst: 2},
	ModeMedia:         {rrer: 28, hec: 24, ser: 5, sut: 1, tempC: 1.5, rueRaw: 15, rscRaw: 80, hfwRaw: 4, pendBurst: 3},
	ModeRealloc:       {rrer: 5, hec: 6, ser: 3, sut: 1, tempC: 1.5, rueRaw: 8, rscRaw: 420, hfwRaw: 2, pendBurst: 5},
	ModeThermal:       {rrer: 3, hec: 3, ser: 3, sut: 2, tempC: 12, rueRaw: 5, rscRaw: 30, hfwRaw: 1, pendBurst: 1.5},
	ModeSeek:          {rrer: 5, hec: 4, ser: 28, sut: 2, tempC: 1.5, rueRaw: 6, rscRaw: 25, hfwRaw: 2, pendBurst: 1.5},
	ModeSpinUp:        {rrer: 3, hec: 3, ser: 4, sut: 26, tempC: 2, rueRaw: 5, rscRaw: 20, hfwRaw: 1, pendBurst: 1},
	ModeAbrupt:        {rrer: 15, hec: 12, ser: 8, sut: 5, tempC: 3, rueRaw: 12, rscRaw: 30, hfwRaw: 3, pendBurst: 4},
	ModeSilent:        {rrer: 0.5, hec: 0.5, ser: 0.3, sut: 0.2, tempC: 0.3, rueRaw: 0, rscRaw: 1, hfwRaw: 0, pendBurst: 0.2},
}

// personality holds the per-drive random baseline offsets drawn once at
// trace start.
type personality struct {
	offRRER, offHEC, offSER, offSUT float64
	offThroughput, offSeekTime      float64
	offTemp                         float64
	ageHours                        float64 // power-on age at period start
	severity                        float64 // degradation-speed multiplier
	errorProne                      bool    // chronically elevated benign errors
}

// driveSim generates one drive's trace hour by hour.
type driveSim struct {
	rng *rand.Rand
	d   *Drive
	fam *FamilyParams
	per personality

	// counters (raw values)
	rscRaw, rueRaw, hfwRaw, crcRaw   float64
	offlineRaw, timeoutRaw           float64
	pending                          float64 // current pending sectors
	startStop, powerCycle, loadCycle float64
	porc, downshift, endToEnd        float64
	spinRetry                        float64

	// benign episode state
	episodeLeft  int
	episodeDepth float64
}

func newDriveSim(d *Drive, fam *FamilyParams) *driveSim {
	s := &driveSim{
		rng: rand.New(rand.NewSource(d.seed)),
		d:   d,
		fam: fam,
	}
	s.initPersonality()
	return s
}

func (s *driveSim) initPersonality() {
	rng, fam := s.rng, s.fam
	os := fam.OffsetScale
	p := &s.per
	p.offRRER = rng.NormFloat64() * 1.6 * os
	p.offHEC = rng.NormFloat64() * 1.8 * os
	p.offSER = rng.NormFloat64() * 2.2 * os
	p.offSUT = rng.NormFloat64() * 1.0 * os
	p.offThroughput = rng.NormFloat64() * 2.0 * os
	p.offSeekTime = rng.NormFloat64() * 2.0 * os
	p.offTemp = rng.NormFloat64() * 1.2 * os
	p.severity = math.Exp(rng.NormFloat64() * 0.5)
	if p.severity < 0.6 {
		p.severity = 0.6
	}
	if p.severity > 2.5 {
		p.severity = 2.5
	}
	p.errorProne = rng.Float64() < fam.ErrorProneFrac

	mean := fam.AgeMeanGood
	if s.d.Failed {
		mean = fam.AgeMeanFailed
	}
	// Power-on age: log-normal-ish, clipped to a realistic range.
	p.ageHours = mean * math.Exp(rng.NormFloat64()*0.55)
	if p.ageHours > 45000 {
		p.ageHours = 45000
	}
	if p.ageHours < 200 {
		p.ageHours = 200
	}

	// Accumulated benign wear from the drive's life before the
	// observation period: initialize the event counters so traces do not
	// all start from pristine zeros. Error-prone drives carry a mildly
	// (2×) elevated history — their chronic behaviour shows mostly in
	// runtime event rates, not in a give-away starting level.
	preExposure := math.Min(p.ageHours, 20000) * 0.2
	proneInit := 1.0
	if p.errorProne {
		proneInit = 2
	}
	s.rscRaw = float64(s.poisson(preExposure * 0.0005 * proneInit))
	s.rueRaw = float64(s.poisson(preExposure * 2e-5 * proneInit))
	s.hfwRaw = float64(s.poisson(preExposure * 3e-4))
	s.crcRaw = float64(s.poisson(preExposure * 2e-4))
	s.offlineRaw = math.Round(s.rscRaw * 0.4)
	s.startStop = math.Round(p.ageHours / 200)
	s.powerCycle = math.Round(p.ageHours / 250)
	s.loadCycle = math.Round(p.ageHours / 30)
	s.porc = math.Round(p.ageHours / 300)
}

// benignRSCRate is the per-hour benign reallocation hazard at absolute hour
// h, including fleet-aging drift and the error-prone multiplier.
func (s *driveSim) benignRSCRate(h int) float64 {
	rate := 0.0005 * (1 + s.fam.DriftEventFactor*driftFrac(h))
	if s.per.errorProne {
		rate *= 8
	}
	return rate
}

// benignRUERate is the analogous hazard for uncorrectable errors.
func (s *driveSim) benignRUERate(h int) float64 {
	rate := 2e-5 * (1 + s.fam.DriftEventFactor*driftFrac(h))
	if s.per.errorProne {
		rate *= 10
	}
	return rate
}

// progress returns the degradation progress p ∈ [0,1] at absolute hour h:
// 0 before the deterioration window opens, 1 at the failure instant.
func (s *driveSim) progress(h int) float64 {
	if !s.d.Failed {
		return 0
	}
	start := s.d.FailHour - s.d.Window
	if h < start {
		return 0
	}
	p := float64(h-start) / float64(s.d.Window)
	if p > 1 {
		p = 1
	}
	return p
}

// wear maps progress to the concave wear curve p^0.55: degradation becomes
// visible early in the window and keeps growing, which is what gives the
// models their long time-in-advance (paper Figs. 3–4).
func wear(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return math.Pow(p, 0.55)
}

// run generates the records of hours [start, end), applying sampling
// dropout. The final record of a failed drive's trace is always kept.
func (s *driveSim) run(start, end int) []smart.Record {
	out := make([]smart.Record, 0, end-start)
	for h := start; h < end; h++ {
		rec := s.step(h)
		last := s.d.Failed && h == end-1
		if !last && s.rng.Float64() < s.fam.DropoutRate {
			continue // lost sample
		}
		out = append(out, rec)
	}
	return out
}

// step advances the simulation one hour and produces that hour's record.
func (s *driveSim) step(h int) smart.Record {
	rng, fam, per := s.rng, s.fam, &s.per
	ns := fam.NoiseScale
	drift := fam.DriftNorm * driftFrac(h)

	// Benign episode lifecycle.
	if s.episodeLeft > 0 {
		s.episodeLeft--
	} else {
		rate := fam.EpisodeRate * (1 + fam.DriftEventFactor*driftFrac(h))
		if per.errorProne {
			rate *= 5
		}
		if rng.Float64() < rate {
			s.episodeLeft = 1 + int(rng.ExpFloat64()*(fam.EpisodeMeanHours-1))
			s.episodeDepth = math.Abs(rng.NormFloat64())*fam.EpisodeDepthSd + 1.5
		}
	}
	ep := 0.0
	if s.episodeLeft > 0 {
		ep = s.episodeDepth
	}

	// Degradation.
	p := s.progress(h)
	w := wear(p) * per.severity
	amp := modeAmps[0]
	var degRate float64 // d(wear)/dh, used for counter growth
	if s.d.Failed {
		amp = modeAmps[s.d.Mode]
		if p > 0 {
			// d/dh of p^1.7 — counters accumulate with a convex
			// profile so raw growth accelerates toward failure.
			degRate = 1.7 * math.Pow(p, 0.7) / float64(s.d.Window) * per.severity
		}
	}

	// Counter updates (benign + episode + degradation contributions).
	rscLambda := s.benignRSCRate(h)
	rueLambda := s.benignRUERate(h)
	hfwLambda := 3e-4 * (1 + fam.DriftEventFactor*driftFrac(h))
	// Pending sectors churn constantly in healthy drives (they appear
	// and resolve), which is what makes Current Pending Sector Count a
	// weak predictor that the paper's statistical selection discards.
	pendLambda := 0.035
	if ep > 0 {
		rscLambda += 0.06
		rueLambda += 0.004
		hfwLambda += 0.01
		pendLambda += 0.3
	}
	if s.d.Failed && p > 0 {
		rscLambda += amp.rscRaw * degRate
		rueLambda += amp.rueRaw * degRate
		hfwLambda += amp.hfwRaw * degRate
		pendLambda += amp.pendBurst * 0.01 * w
	}
	rscInc := float64(s.poisson(rscLambda))
	s.rscRaw += rscInc
	s.rueRaw += float64(s.poisson(rueLambda))
	s.hfwRaw += float64(s.poisson(hfwLambda))
	s.crcRaw += float64(s.poisson(2e-4))
	s.timeoutRaw += float64(s.poisson(5e-5 + 0.002*w))
	s.offlineRaw += float64(s.poisson(0.4 * rscLambda))
	if s.d.Failed && s.d.Mode == ModeSpinUp {
		s.spinRetry += float64(s.poisson(3 * degRate))
	}
	// Pending sectors appear and mostly resolve (into reallocations or
	// recoveries), so Current Pending Sector Count is a deliberately
	// noisy, weakly informative attribute — the statistical feature
	// selection excludes it, as in the paper.
	s.pending = s.pending*0.96 + float64(s.poisson(pendLambda))
	s.startStop += float64(s.poisson(1.0 / 200))
	s.powerCycle += float64(s.poisson(1.0 / 250))
	s.loadCycle += float64(s.poisson(1.0 / 30))
	s.porc += float64(s.poisson(1.0 / 300))
	s.downshift += float64(s.poisson(1e-5))
	s.endToEnd += float64(s.poisson(5e-6))

	// Temperature (diurnal cycle + fleet drift + thermal degradation).
	tempC := fam.TempBase + per.offTemp +
		1.2*math.Sin(2*math.Pi*float64(h)/24) +
		fam.TempDrift*driftFrac(h) +
		amp.tempC*w +
		rng.NormFloat64()*0.6*ns
	if ep > 0 {
		tempC += 0.15 * ep
	}

	age := per.ageHours + float64(h)

	var rec smart.Record
	rec.Hour = h
	set := func(id smart.AttrID, norm, raw float64) {
		i, ok := smart.Index(id)
		if !ok {
			return
		}
		rec.Normalized[i] = clampNorm(norm)
		rec.Raw[i] = raw
	}

	set(smart.RawReadErrorRate,
		100+per.offRRER-0.35*drift-0.55*ep-amp.rrer*w+rng.NormFloat64()*0.8*ns,
		s.rueRaw*3+s.rscRaw*0.5) // vendor-specific raw; loosely error-linked
	set(smart.ThroughputPerformance, 100+per.offThroughput+rng.NormFloat64()*1.5*ns, 0)
	set(smart.SpinUpTime,
		97+per.offSUT-0.05*drift-0.1*ep-amp.sut*w+rng.NormFloat64()*0.5*ns,
		420+10*amp.sut*w+rng.NormFloat64()*4)
	set(smart.StartStopCount, clampNorm(100-s.startStop/50), s.startStop)
	set(smart.ReallocatedSectors, 100-0.06*s.rscRaw, s.rscRaw)
	set(smart.SeekErrorRate,
		fam.SeekBase+per.offSER-0.25*drift-0.4*ep-amp.ser*w+rng.NormFloat64()*1.0*ns,
		s.rscRaw*2+s.hfwRaw)
	set(smart.SeekTimePerformance, 100+per.offSeekTime+rng.NormFloat64()*1.2*ns, 0)
	set(smart.PowerOnHours, 100-age/600, age)
	set(smart.SpinRetryCount, 100-10*s.spinRetry, s.spinRetry)
	set(smart.PowerCycleCount, clampNorm(100-s.powerCycle/40), s.powerCycle)
	set(smart.SATADownshiftErrors, 100-s.downshift, s.downshift)
	set(smart.EndToEndError, 100-s.endToEnd, s.endToEnd)
	set(smart.ReportedUncorrectable, 100-2.5*s.rueRaw, s.rueRaw)
	set(smart.CommandTimeout, 100-0.5*s.timeoutRaw, s.timeoutRaw)
	set(smart.HighFlyWrites, 100-1.0*s.hfwRaw, s.hfwRaw)
	set(smart.AirflowTemperature, 100-(tempC-3), tempC-3+rng.NormFloat64()*0.3)
	set(smart.PowerOffRetractCount, clampNorm(100-s.porc/20), s.porc)
	set(smart.LoadCycleCount, clampNorm(100-s.loadCycle/600), s.loadCycle)
	set(smart.TemperatureCelsius, 100-tempC, tempC)
	set(smart.HardwareECCRecovered,
		95+per.offHEC-0.4*drift-0.7*ep-amp.hec*w+rng.NormFloat64()*1.0*ns,
		s.rueRaw*20+float64(h%97)) // rolling vendor counter, uninformative raw
	set(smart.CurrentPendingSectors, 100-0.8*s.pending, math.Round(s.pending))
	set(smart.OfflineUncorrectable, 100-0.8*s.offlineRaw, s.offlineRaw)
	set(smart.UDMACRCErrorCount, 100-0.5*s.crcRaw, s.crcRaw)

	return rec
}

// clampNorm clamps a normalized SMART value to its legal 1..253 range.
func clampNorm(v float64) float64 {
	if v < 1 {
		return 1
	}
	if v > 253 {
		return 253
	}
	return v
}

// poisson draws a Poisson count. Knuth's method for small lambda, a normal
// approximation above 30.
func (s *driveSim) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*s.rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
