package simulate

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"hddcart/internal/smart"
)

// tinyConfig is a small fleet for fast tests.
func tinyConfig() Config {
	w := FamilyW()
	w.GoodCount = 60
	w.FailedCount = 25
	q := FamilyQ()
	q.GoodCount = 30
	q.FailedCount = 12
	return Config{Seed: 42, Families: []FamilyParams{w, q}}
}

func TestNewCounts(t *testing.T) {
	f, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var goodW, failW, goodQ, failQ int
	for _, d := range f.Drives() {
		switch {
		case d.Family == "W" && d.Failed:
			failW++
		case d.Family == "W":
			goodW++
		case d.Family == "Q" && d.Failed:
			failQ++
		default:
			goodQ++
		}
	}
	if goodW != 60 || failW != 25 || goodQ != 30 || failQ != 12 {
		t.Errorf("counts = W %d/%d, Q %d/%d; want 60/25, 30/12", goodW, failW, goodQ, failQ)
	}
}

func TestScaling(t *testing.T) {
	cfg := tinyConfig()
	cfg.GoodScale = 0.5
	cfg.FailedScale = 0.2
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := f.DrivesOf("W")
	var good, failed int
	for _, d := range w {
		if d.Failed {
			failed++
		} else {
			good++
		}
	}
	if good != 30 {
		t.Errorf("scaled good = %d, want 30", good)
	}
	if failed != 5 {
		t.Errorf("scaled failed = %d, want 5", failed)
	}
}

func TestScalingFloor(t *testing.T) {
	cfg := tinyConfig()
	cfg.GoodScale = 1e-9
	cfg.FailedScale = 1e-9
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"W", "Q"} {
		var good, failed int
		for _, d := range f.DrivesOf(fam) {
			if d.Failed {
				failed++
			} else {
				good++
			}
		}
		if good < 1 || failed < 1 {
			t.Errorf("family %s scaled to %d good/%d failed; floor is 1", fam, good, failed)
		}
	}
}

func TestNegativeScaleRejected(t *testing.T) {
	cfg := tinyConfig()
	cfg.GoodScale = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative scale should be rejected")
	}
}

func TestBadModeWeightsRejected(t *testing.T) {
	cfg := tinyConfig()
	cfg.Families[0].ModeWeights = []float64{1, 2}
	if _, err := New(cfg); err == nil {
		t.Error("wrong-length mode weights should be rejected")
	}
}

func TestDefaultFamilies(t *testing.T) {
	f, err := New(Config{Seed: 1, GoodScale: 0.001, FailedScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Family("W"); !ok {
		t.Error("default fleet missing family W")
	}
	if _, ok := f.Family("Q"); !ok {
		t.Error("default fleet missing family Q")
	}
	if _, ok := f.Family("Z"); ok {
		t.Error("unexpected family Z")
	}
}

func TestDeterminism(t *testing.T) {
	f1, _ := New(tinyConfig())
	f2, _ := New(tinyConfig())
	for _, i := range []int{0, 5, 61, 80} {
		a := f1.Trace(i)
		b := f2.Trace(i)
		if len(a) != len(b) {
			t.Fatalf("drive %d: trace lengths differ (%d vs %d)", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("drive %d: records at %d differ", i, j)
			}
		}
	}
}

func TestSeedChangesTraces(t *testing.T) {
	cfg := tinyConfig()
	f1, _ := New(cfg)
	cfg.Seed = 43
	f2, _ := New(cfg)
	a, b := f1.Trace(0), f2.Trace(0)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	same := true
	for j := 0; j < n; j++ {
		if a[j] != b[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestTraceSpans(t *testing.T) {
	f, _ := New(tinyConfig())
	for _, d := range f.Drives() {
		start, end := d.Span()
		if !d.Failed {
			if start != 0 || end != TotalHours {
				t.Fatalf("good drive span = [%d,%d), want [0,%d)", start, end, TotalHours)
			}
		} else {
			if d.FailHour < FailedHours || d.FailHour > TotalHours {
				t.Fatalf("FailHour %d outside [%d,%d]", d.FailHour, FailedHours, TotalHours)
			}
			if end != d.FailHour || end-start != FailedHours {
				t.Fatalf("failed span = [%d,%d) with FailHour %d", start, end, d.FailHour)
			}
		}
		trace := f.Trace(d.Index)
		if len(trace) == 0 {
			t.Fatalf("drive %d has empty trace", d.Index)
		}
		if trace[0].Hour < start || trace[len(trace)-1].Hour >= end {
			t.Fatalf("drive %d trace hours [%d,%d] outside span [%d,%d)",
				d.Index, trace[0].Hour, trace[len(trace)-1].Hour, start, end)
		}
		if d.Failed && trace[len(trace)-1].Hour != end-1 {
			t.Errorf("failed drive %d must keep its final record", d.Index)
		}
		for j := 1; j < len(trace); j++ {
			if trace[j].Hour <= trace[j-1].Hour {
				t.Fatalf("drive %d trace not strictly increasing at %d", d.Index, j)
			}
		}
	}
}

func TestDropout(t *testing.T) {
	f, _ := New(tinyConfig())
	var total, kept int
	for _, d := range f.DrivesOf("W") {
		if d.Failed {
			continue
		}
		total += TotalHours
		kept += len(f.Trace(d.Index))
	}
	lossRate := 1 - float64(kept)/float64(total)
	if lossRate <= 0 || lossRate > 0.05 {
		t.Errorf("dropout rate = %.4f, want in (0, 0.05]", lossRate)
	}
}

func TestNormalizedValuesInRange(t *testing.T) {
	f, _ := New(tinyConfig())
	for _, i := range []int{0, 30, 61, 85} {
		for _, rec := range f.Trace(i) {
			for k, v := range rec.Normalized {
				if v < 1 || v > 253 {
					t.Fatalf("drive %d attr %d normalized = %v out of range", i, k, v)
				}
			}
		}
	}
}

func TestCountersMonotone(t *testing.T) {
	f, _ := New(tinyConfig())
	counters := []smart.AttrID{
		smart.ReallocatedSectors, smart.ReportedUncorrectable,
		smart.HighFlyWrites, smart.UDMACRCErrorCount, smart.PowerOnHours,
	}
	for _, d := range f.Drives()[:40] {
		trace := f.Trace(d.Index)
		for _, id := range counters {
			prev := -math.MaxFloat64
			for _, rec := range trace {
				v := rec.RawOf(id)
				if v < prev {
					t.Fatalf("drive %d: raw %s decreased (%v -> %v)", d.Index, smart.Name(id), prev, v)
				}
				prev = v
			}
		}
	}
}

// meanNormWindow averages one attribute's normalized value over a slice of
// a drive's records.
func meanNormWindow(recs []smart.Record, id smart.AttrID) float64 {
	if len(recs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range recs {
		sum += recs[i].NormalizedOf(id)
	}
	return sum / float64(len(recs))
}

func TestFailedDrivesDegrade(t *testing.T) {
	f, _ := New(tinyConfig())
	// Averaged over all failed drives, health-signal attributes must be
	// clearly lower in the last 24 h than in the first 24 h of the trace.
	signals := []smart.AttrID{
		smart.RawReadErrorRate, smart.HardwareECCRecovered,
		smart.ReportedUncorrectable, smart.ReallocatedSectors,
	}
	for _, id := range signals {
		var early, late float64
		var n int
		for _, d := range f.Drives() {
			if !d.Failed || d.Mode == ModeAbrupt || d.Mode == ModeSilent {
				continue
			}
			trace := f.Trace(d.Index)
			if len(trace) < 48 {
				continue
			}
			early += meanNormWindow(trace[:24], id)
			late += meanNormWindow(trace[len(trace)-24:], id)
			n++
		}
		if n == 0 {
			t.Fatal("no failed drives in tiny fleet")
		}
		drop := (early - late) / float64(n)
		if drop < 1 {
			t.Errorf("%s: mean degradation drop = %.2f points, want ≥ 1", smart.Name(id), drop)
		}
	}
}

func TestGoodDrivesStable(t *testing.T) {
	f, _ := New(tinyConfig())
	// A good drive's mean Reported Uncorrectable normalized value must
	// stay near 100 through the whole period (events are rare).
	var sum float64
	var n int
	for _, d := range f.DrivesOf("W") {
		if d.Failed {
			continue
		}
		trace := f.Trace(d.Index)
		sum += meanNormWindow(trace, smart.ReportedUncorrectable)
		n++
	}
	if mean := sum / float64(n); mean < 95 {
		t.Errorf("good-drive mean RUE normalized = %.2f, want ≥ 95", mean)
	}
}

func TestPopulationDrift(t *testing.T) {
	// The healthy population's drifting attributes must move downward
	// from week 1 to week 8 — the mechanism behind model aging.
	f, _ := New(tinyConfig())
	for _, id := range []smart.AttrID{smart.HardwareECCRecovered, smart.RawReadErrorRate} {
		var week1, week8 float64
		var n1, n8 int
		for _, d := range f.DrivesOf("W") {
			if d.Failed {
				continue
			}
			for _, rec := range f.Trace(d.Index) {
				switch {
				case rec.Hour < HoursPerWeek:
					week1 += rec.NormalizedOf(id)
					n1++
				case rec.Hour >= 7*HoursPerWeek:
					week8 += rec.NormalizedOf(id)
					n8++
				}
			}
		}
		w1, w8 := week1/float64(n1), week8/float64(n8)
		if w8 >= w1-0.5 {
			t.Errorf("%s: week1 mean %.2f, week8 mean %.2f; want ≥ 0.5 point drop",
				smart.Name(id), w1, w8)
		}
	}
}

func TestDriftRampShape(t *testing.T) {
	// Drift must accelerate: the last-quarter increase exceeds the
	// first-quarter increase (paper: "after the sixth week the up trend
	// becomes very steep").
	q1 := driftFrac(TotalHours / 4)
	q4 := 1 - driftFrac(3*TotalHours/4)
	if q4 <= q1 {
		t.Errorf("drift ramp not accelerating: first quarter %.3f, last quarter %.3f", q1, q4)
	}
	if driftFrac(0) != 0 {
		t.Error("driftFrac(0) != 0")
	}
	if got := driftFrac(TotalHours); math.Abs(got-1) > 1e-12 {
		t.Errorf("driftFrac(TotalHours) = %v, want 1", got)
	}
}

func TestDriftFracMonotone(t *testing.T) {
	err := quick.Check(func(a, b uint16) bool {
		ha := int(a) % (TotalHours + 1)
		hb := int(b) % (TotalHours + 1)
		if ha > hb {
			ha, hb = hb, ha
		}
		return driftFrac(ha) <= driftFrac(hb)+1e-12
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestClampNormProperty(t *testing.T) {
	err := quick.Check(func(v float64) bool {
		c := clampNorm(v)
		return c >= 1 && c <= 253
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestModeDistribution(t *testing.T) {
	w := FamilyW()
	w.GoodCount = 1
	w.FailedCount = 3000
	f, err := New(Config{Seed: 7, Families: []FamilyParams{w}})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, numModes)
	total := 0
	for _, d := range f.Drives() {
		if d.Failed {
			counts[d.Mode]++
			total++
		}
	}
	weightSum := 0.0
	for _, x := range w.ModeWeights {
		weightSum += x
	}
	for m, c := range counts {
		want := w.ModeWeights[m] / weightSum
		got := float64(c) / float64(total)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("mode %v frequency = %.3f, want ≈ %.3f", FailureMode(m), got, want)
		}
	}
}

func TestAbruptWindowsShort(t *testing.T) {
	f, _ := New(tinyConfig())
	for _, d := range f.Drives() {
		if !d.Failed {
			continue
		}
		if d.Mode == ModeAbrupt || d.Mode == ModeSilent {
			if d.Window < 3 || d.Window > 12 {
				t.Errorf("abrupt/silent window = %d, want 3..12", d.Window)
			}
		} else {
			fam, _ := f.Family(d.Family)
			if d.Window < fam.WindowMinHours || d.Window > fam.WindowMaxHours {
				t.Errorf("%v window = %d, want %d..%d", d.Mode, d.Window,
					fam.WindowMinHours, fam.WindowMaxHours)
			}
		}
	}
}

func TestFamiliesDiffer(t *testing.T) {
	f, _ := New(tinyConfig())
	// Seek Error Rate baselines differ between W and Q.
	meanFor := func(fam string) float64 {
		var sum float64
		var n int
		for _, d := range f.DrivesOf(fam) {
			if d.Failed {
				continue
			}
			trace := f.Trace(d.Index)
			sum += meanNormWindow(trace[:100], smart.SeekErrorRate)
			n++
		}
		return sum / float64(n)
	}
	w, q := meanFor("W"), meanFor("Q")
	if math.Abs(w-q) < 3 {
		t.Errorf("family SER baselines too close: W %.2f vs Q %.2f", w, q)
	}
}

func TestFailureModeString(t *testing.T) {
	seen := make(map[string]bool)
	for m := FailureMode(0); int(m) < numModes; m++ {
		s := m.String()
		if s == "" || seen[s] {
			t.Errorf("mode %d has empty or duplicate name %q", m, s)
		}
		seen[s] = true
	}
	if FailureMode(99).String() != "FailureMode(99)" {
		t.Error("unknown mode should format numerically")
	}
}

func TestPoissonMean(t *testing.T) {
	d := Drive{seed: 99}
	fam := FamilyW()
	s := newDriveSim(&d, &fam)
	for _, lambda := range []float64{0.01, 0.5, 3, 50} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		tol := 4 * math.Sqrt(lambda/float64(n)) // ~4 sigma
		if math.Abs(mean-lambda) > tol+0.01 {
			t.Errorf("poisson(%v) mean = %v, want within %v", lambda, mean, tol)
		}
	}
	if s.poisson(0) != 0 || s.poisson(-1) != 0 {
		t.Error("poisson of non-positive lambda must be 0")
	}
}

func TestWearCurve(t *testing.T) {
	if wear(0) != 0 || wear(-1) != 0 {
		t.Error("wear must be 0 at or before window start")
	}
	if math.Abs(wear(1)-1) > 1e-12 {
		t.Error("wear(1) != 1")
	}
	// Concavity: wear rises faster early in the window.
	if wear(0.25) <= 0.25 {
		t.Error("wear curve should be concave (fast early onset)")
	}
}

func TestFamilyParamsJSONRoundTrip(t *testing.T) {
	// cmd/gendata lets operators persist and edit family parameters as
	// JSON; every tunable must survive the round trip.
	orig := FamilyW()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back FamilyParams
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("round trip changed params:\n%+v\n%+v", orig, back)
	}
}

func TestCustomFamilyFleet(t *testing.T) {
	fam := FamilyW()
	fam.Name = "X"
	fam.GoodCount, fam.FailedCount = 8, 3
	f, err := New(Config{Seed: 4, Families: []FamilyParams{fam}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.DrivesOf("X")); got != 11 {
		t.Errorf("custom family drives = %d, want 11", got)
	}
	if _, ok := f.Family("W"); ok {
		t.Error("default families should be replaced by custom ones")
	}
}
