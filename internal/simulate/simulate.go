// Package simulate generates synthetic SMART traces for a fleet of hard
// drives. It stands in for the proprietary real-world dataset of the DSN'14
// CART paper (25,792 drives from a production datacenter, families "W" and
// "Q"), reproducing the four properties every experiment in the paper
// depends on:
//
//  1. failed drives deteriorate gradually: per-drive failure modes drive
//     SMART attributes away from their healthy baselines inside a per-drive
//     deterioration window before the failure instant;
//  2. heavy class imbalance: tens of thousands of good drives against a few
//     hundred failed ones, sampled hourly (good drives over 56 days, failed
//     drives over the 20 days preceding failure);
//  3. family-to-family differences: "W" and "Q" use different baselines,
//     noise scales and failure-mode mixes (the paper observes different
//     dominant failure causes per family);
//  4. slow temporal drift of the healthy population: baselines and benign
//     error rates drift as the fleet ages, which is what makes a
//     never-updated prediction model decay (paper §V-B3).
//
// Traces are deterministic functions of (fleet seed, drive index), so a
// fleet of any size streams drive-by-drive without materializing tens of
// millions of samples.
package simulate

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hddcart/internal/smart"
)

// Observation-period constants matching the paper's data collection (§IV-A).
const (
	// HoursPerDay is the sampling rate: one SMART record per hour.
	HoursPerDay = 24
	// GoodDays is the observation period of good drives.
	GoodDays = 56
	// FailedDays is the recorded period before each failure.
	FailedDays = 20
	// TotalHours is the length of the whole observation period.
	TotalHours = GoodDays * HoursPerDay // 1344
	// FailedHours is the per-drive recorded period before failure.
	FailedHours = FailedDays * HoursPerDay // 480
	// HoursPerWeek partitions the period into the 8 weeks used by the
	// model-updating experiments.
	HoursPerWeek = 7 * HoursPerDay // 168
)

// FailureMode identifies the dominant degradation signature of a failed
// drive. Modes map onto the failure causes the paper extracts from its
// trees: reported uncorrectable errors, media/head wear (read error rate and
// ECC activity), sector reallocation growth, overheating, seek degradation
// and spin-up degradation — plus an abrupt mode with almost no warning.
type FailureMode int

const (
	// ModeUncorrectable grows Reported Uncorrectable Errors (the dominant
	// "W" family cause in the paper).
	ModeUncorrectable FailureMode = iota
	// ModeMedia degrades Raw Read Error Rate and Hardware ECC Recovered.
	ModeMedia
	// ModeRealloc grows the Reallocated Sectors counter.
	ModeRealloc
	// ModeThermal raises the operating temperature.
	ModeThermal
	// ModeSeek degrades the Seek Error Rate (the dominant "Q" cause).
	ModeSeek
	// ModeSpinUp degrades Spin Up Time.
	ModeSpinUp
	// ModeAbrupt fails with a very short window (hours) — caught only by
	// per-sample detection, lost once voting windows grow.
	ModeAbrupt
	// ModeSilent fails with essentially no SMART signature (electronics
	// failures); no model can predict these, which is what keeps the
	// paper's detection rate below 100%.
	ModeSilent

	numModes = int(ModeSilent) + 1
)

// String implements fmt.Stringer.
func (m FailureMode) String() string {
	switch m {
	case ModeUncorrectable:
		return "uncorrectable-errors"
	case ModeMedia:
		return "media-wear"
	case ModeRealloc:
		return "sector-reallocation"
	case ModeThermal:
		return "thermal"
	case ModeSeek:
		return "seek-degradation"
	case ModeSpinUp:
		return "spin-up"
	case ModeAbrupt:
		return "abrupt"
	case ModeSilent:
		return "silent"
	default:
		return fmt.Sprintf("FailureMode(%d)", int(m))
	}
}

// FamilyParams holds every tunable of one drive family's synthetic
// behaviour. The exported fields let experiments and tests construct small
// or perturbed families; FamilyW and FamilyQ return the calibrated defaults.
type FamilyParams struct {
	// Name labels the family ("W", "Q").
	Name string
	// GoodCount and FailedCount are the population sizes before scaling.
	GoodCount, FailedCount int

	// NoiseScale multiplies every per-hour noise standard deviation.
	NoiseScale float64
	// OffsetScale multiplies every per-drive personality offset sd.
	OffsetScale float64

	// DriftNorm is the total downward shift (in normalized-value points)
	// of the drifting attributes' population mean over the 8-week period.
	// The drift ramps as 0.4·x² + 0.6·x⁴ of normalized time x, so it is
	// gentle early and steep in the last weeks (paper Figs. 6–9).
	DriftNorm float64
	// DriftEventFactor scales how much benign error-event rates grow by
	// the end of the period (1 = doubled).
	DriftEventFactor float64

	// EpisodeRate is the per-hour hazard of a benign degradation episode
	// in a healthy drive (transient error bursts that recover).
	EpisodeRate float64
	// EpisodeMeanHours is the mean episode duration.
	EpisodeMeanHours float64
	// EpisodeDepthSd scales episode depth (normalized points).
	EpisodeDepthSd float64

	// ErrorProneFrac is the fraction of good drives with chronically
	// elevated benign error activity — the hard negatives that keep the
	// false-alarm rate of any classifier above zero.
	ErrorProneFrac float64

	// ModeWeights is the failure-mode mix (length numModes, need not be
	// normalized).
	ModeWeights []float64

	// WindowMinHours/WindowMaxHours bound the deterioration window of
	// non-abrupt failures; abrupt failures use 6–48 h.
	WindowMinHours, WindowMaxHours int

	// TempBase is the healthy operating temperature (°C).
	TempBase float64
	// TempDrift is the fleet-wide temperature rise (°C) by period end.
	TempDrift float64

	// AgeMeanGood/AgeMeanFailed are the mean power-on ages (hours) of
	// good and failed drives at the start of the period; failed drives
	// skew older, which is why Power On Hours carries signal.
	AgeMeanGood, AgeMeanFailed float64

	// SeekBase is the healthy Seek Error Rate normalized baseline, which
	// differs between vendors/families.
	SeekBase float64

	// DropoutRate is the probability that any single hourly sample is
	// lost (sampling/storage errors, §IV-A).
	DropoutRate float64
}

// FamilyW returns the calibrated parameters of the large "W" family
// (22,790 good and 434 failed drives in the paper's Table I).
func FamilyW() FamilyParams {
	return FamilyParams{
		Name:             "W",
		GoodCount:        22790,
		FailedCount:      434,
		NoiseScale:       1.0,
		OffsetScale:      1.0,
		DriftNorm:        9.0,
		DriftEventFactor: 2.5,
		EpisodeRate:      1.0 / 2800,
		EpisodeMeanHours: 4,
		EpisodeDepthSd:   3.5,
		ErrorProneFrac:   0.005,
		ModeWeights:      []float64{0.33, 0.16, 0.18, 0.12, 0.06, 0.08, 0.025, 0.045},
		WindowMinHours:   280,
		WindowMaxHours:   480,
		TempBase:         38,
		TempDrift:        1.5,
		AgeMeanGood:      9000,
		AgeMeanFailed:    13000,
		SeekBase:         88,
		DropoutRate:      0.01,
	}
}

// FamilyQ returns the calibrated parameters of the small, noisier "Q"
// family (2,441 good and 127 failed drives; seek-error-dominated failures).
func FamilyQ() FamilyParams {
	return FamilyParams{
		Name:             "Q",
		GoodCount:        2441,
		FailedCount:      127,
		NoiseScale:       1.35,
		OffsetScale:      1.25,
		DriftNorm:        7.5,
		DriftEventFactor: 2.2,
		EpisodeRate:      1.0 / 2000,
		EpisodeMeanHours: 5,
		EpisodeDepthSd:   4.5,
		ErrorProneFrac:   0.012,
		ModeWeights:      []float64{0.13, 0.14, 0.12, 0.12, 0.31, 0.06, 0.05, 0.07},
		WindowMinHours:   260,
		WindowMaxHours:   460,
		TempBase:         41,
		TempDrift:        1.2,
		AgeMeanGood:      12000,
		AgeMeanFailed:    16000,
		SeekBase:         80,
		DropoutRate:      0.012,
	}
}

// Config configures a synthetic fleet.
type Config struct {
	// Seed determines every trace in the fleet.
	Seed int64
	// GoodScale and FailedScale scale the per-family population counts;
	// 0 means 1.0 (full paper scale).
	GoodScale, FailedScale float64
	// Families lists the drive families; nil means {FamilyW(), FamilyQ()}.
	Families []FamilyParams
}

// Drive describes one drive of the fleet. The ground truth (Failed,
// FailHour, Window, Mode) is available to evaluation code; models only ever
// see the SMART records.
type Drive struct {
	// Index is the drive's position in Fleet.Drives.
	Index int
	// Serial is a stable synthetic serial number.
	Serial string
	// Family is the family name.
	Family string
	// Failed reports whether this drive fails during the period.
	Failed bool
	// FailHour is the failure instant (hours since period start); only
	// meaningful when Failed.
	FailHour int
	// Window is the deterioration-window length in hours (ground truth
	// w_d of §III-B); only meaningful when Failed.
	Window int
	// Mode is the failure mode; only meaningful when Failed.
	Mode FailureMode

	seed int64
	fam  int // index into fleet families
}

// Fleet is a reproducible synthetic drive population.
type Fleet struct {
	cfg      Config
	families []FamilyParams
	drives   []Drive
}

// New builds a fleet. Population counts are scaled by GoodScale/FailedScale
// (with a floor of 1 drive per non-empty class).
func New(cfg Config) (*Fleet, error) {
	if cfg.GoodScale == 0 {
		cfg.GoodScale = 1
	}
	if cfg.FailedScale == 0 {
		cfg.FailedScale = 1
	}
	if cfg.GoodScale < 0 || cfg.FailedScale < 0 {
		return nil, errors.New("simulate: negative scale")
	}
	fams := cfg.Families
	if fams == nil {
		fams = []FamilyParams{FamilyW(), FamilyQ()}
	}
	f := &Fleet{cfg: cfg, families: fams}
	rng := rand.New(rand.NewSource(mix(cfg.Seed, 0x5eed)))
	for fi := range fams {
		fam := &fams[fi]
		if len(fam.ModeWeights) != numModes {
			return nil, fmt.Errorf("simulate: family %q has %d mode weights, want %d",
				fam.Name, len(fam.ModeWeights), numModes)
		}
		good := scaleCount(fam.GoodCount, cfg.GoodScale)
		failed := scaleCount(fam.FailedCount, cfg.FailedScale)
		for i := 0; i < good+failed; i++ {
			d := Drive{
				Index:  len(f.drives),
				Serial: fmt.Sprintf("%s-%06d", fam.Name, i),
				Family: fam.Name,
				Failed: i >= good,
				fam:    fi,
				seed:   mix(cfg.Seed, int64(fi)<<32|int64(i)),
			}
			if d.Failed {
				// Failures land anywhere in the period late enough
				// that the 20-day recording precedes them; the paper
				// notes failed drives have no recorded chronological
				// order, so a uniform placement is faithful.
				d.FailHour = FailedHours + rng.Intn(TotalHours-FailedHours+1)
				d.Mode = pickMode(rng, fam.ModeWeights)
				if d.Mode == ModeAbrupt || d.Mode == ModeSilent {
					d.Window = 3 + rng.Intn(10)
				} else {
					d.Window = fam.WindowMinHours +
						rng.Intn(fam.WindowMaxHours-fam.WindowMinHours+1)
				}
			}
			f.drives = append(f.drives, d)
		}
	}
	return f, nil
}

// scaleCount scales a population count, keeping at least one drive when the
// unscaled count was positive.
func scaleCount(n int, scale float64) int {
	if n == 0 {
		return 0
	}
	s := int(math.Round(float64(n) * scale))
	if s < 1 {
		s = 1
	}
	return s
}

// pickMode samples a failure mode from the (unnormalized) weights.
func pickMode(rng *rand.Rand, weights []float64) FailureMode {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for m, w := range weights {
		x -= w
		if x < 0 {
			return FailureMode(m)
		}
	}
	return FailureMode(len(weights) - 1)
}

// Drives returns the fleet's drive descriptors (shared slice; callers must
// not modify it).
func (f *Fleet) Drives() []Drive { return f.drives }

// Family returns the parameters of the named family.
func (f *Fleet) Family(name string) (FamilyParams, bool) {
	for _, fam := range f.families {
		if fam.Name == name {
			return fam, true
		}
	}
	return FamilyParams{}, false
}

// DrivesOf returns the descriptors of one family's drives.
func (f *Fleet) DrivesOf(family string) []Drive {
	var out []Drive
	for _, d := range f.drives {
		if d.Family == family {
			out = append(out, d)
		}
	}
	return out
}

// Trace generates drive i's complete SMART trace: hourly records over the
// whole 56-day period for good drives, or over the 20 days (480 h) before
// failure for failed drives. A small fraction of records is missing
// (sampling dropout). Traces are deterministic in (fleet seed, i).
func (f *Fleet) Trace(i int) []smart.Record {
	d := f.drives[i]
	start, end := d.Span()
	sim := newDriveSim(&d, &f.families[d.fam])
	return sim.run(start, end)
}

// Span returns the half-open hour range [start, end) covered by the drive's
// trace.
func (d *Drive) Span() (start, end int) {
	if !d.Failed {
		return 0, TotalHours
	}
	start = d.FailHour - FailedHours
	if start < 0 {
		start = 0
	}
	return start, d.FailHour
}

// mix is a splitmix64-style seed mixer so per-drive streams are independent.
func mix(a, b int64) int64 {
	z := uint64(a)*0x9e3779b97f4a7c15 + uint64(b) + 0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// driftFrac is the normalized drift ramp: gentle early, steep late.
func driftFrac(hour int) float64 {
	x := float64(hour) / float64(TotalHours)
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return 0.4*x*x + 0.6*x*x*x*x
}
