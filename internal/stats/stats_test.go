package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	if s := StdDev(xs); !almost(s, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of singleton should be NaN")
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 3}, []float64{1, 3}); !almost(got, 2.5, 1e-12) {
		t.Errorf("WeightedMean = %v, want 2.5", got)
	}
	if !math.IsNaN(WeightedMean([]float64{1}, []float64{0})) {
		t.Error("zero total weight should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.125, 1.5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almost(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}

func TestNormalCDF(t *testing.T) {
	tests := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.99865},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.z); !almost(got, tt.want, 1e-4) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tt.z, got, tt.want)
		}
	}
}

func TestRanksSimple(t *testing.T) {
	got := Ranks([]float64{10, 20, 30})
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksSumInvariant(t *testing.T) {
	// Σranks must always be n(n+1)/2 regardless of ties.
	err := quick.Check(func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v % 4) // force many ties
		}
		sum := 0.0
		for _, r := range Ranks(xs) {
			sum += r
		}
		n := float64(len(xs))
		return almost(sum, n*(n+1)/2, 1e-9)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRankSumKnown(t *testing.T) {
	// Textbook example: clearly separated samples.
	x := []float64{1, 2, 3}
	y := []float64{10, 11, 12, 13}
	res := RankSum(x, y)
	if res.W != 6 { // ranks 1+2+3
		t.Errorf("W = %v, want 6", res.W)
	}
	if res.Z >= 0 {
		t.Errorf("Z = %v, want negative (x smaller)", res.Z)
	}
	if res.P > 0.05 {
		t.Errorf("P = %v, want < 0.05", res.P)
	}
}

func TestRankSumSymmetry(t *testing.T) {
	x := []float64{1, 5, 7, 3}
	y := []float64{2, 8, 4, 9, 6}
	a, b := RankSum(x, y), RankSum(y, x)
	if !almost(a.Z, -b.Z, 1e-12) {
		t.Errorf("Z not antisymmetric: %v vs %v", a.Z, b.Z)
	}
	if !almost(a.P, b.P, 1e-12) {
		t.Errorf("P not symmetric: %v vs %v", a.P, b.P)
	}
}

func TestRankSumIdenticalSamples(t *testing.T) {
	x := []float64{5, 5, 5}
	res := RankSum(x, x)
	if res.Z != 0 {
		t.Errorf("all-tied Z = %v, want 0", res.Z)
	}
}

func TestRankSumNull(t *testing.T) {
	// Under the null, |Z| should rarely be large.
	rng := rand.New(rand.NewSource(1))
	big := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		x := make([]float64, 30)
		y := make([]float64, 40)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		for j := range y {
			y[j] = rng.NormFloat64()
		}
		if math.Abs(RankSum(x, y).Z) > 2.57 { // ~1% two-sided
			big++
		}
	}
	if big > 10 {
		t.Errorf("null rejections = %d/%d, far above nominal 1%%", big, trials)
	}
}

func TestRankSumEmpty(t *testing.T) {
	if res := RankSum(nil, []float64{1}); res.Z != 0 || res.W != 0 {
		t.Error("empty input should give zero result")
	}
}

func TestReverseArrangementsCount(t *testing.T) {
	tests := []struct {
		xs   []float64
		want int
	}{
		{[]float64{1, 2, 3, 4}, 0},
		{[]float64{4, 3, 2, 1}, 6},
		{[]float64{2, 1, 3}, 1},
		{[]float64{1, 1, 1}, 0}, // ties are not reversals
		{[]float64{3, 1, 2}, 2},
	}
	for _, tt := range tests {
		if got := ReverseArrangements(tt.xs).A; got != tt.want {
			t.Errorf("A(%v) = %d, want %d", tt.xs, got, tt.want)
		}
	}
}

func TestCountReversePairsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(10)) // ties likely
		}
		brute := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if xs[i] > xs[j] {
					brute++
				}
			}
		}
		if got := countReversePairs(xs); got != brute {
			t.Fatalf("countReversePairs(%v) = %d, want %d", xs, got, brute)
		}
	}
}

func TestReverseArrangementsTrend(t *testing.T) {
	// A strongly decreasing noisy series must give a large positive Z.
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 100 - float64(i) + rng.NormFloat64()*2
	}
	res := ReverseArrangements(xs)
	if res.Z < 3 {
		t.Errorf("decreasing trend Z = %v, want > 3", res.Z)
	}
	// Increasing series: strongly negative.
	for i := range xs {
		xs[i] = float64(i) + rng.NormFloat64()*2
	}
	if res := ReverseArrangements(xs); res.Z > -3 {
		t.Errorf("increasing trend Z = %v, want < -3", res.Z)
	}
}

func TestReverseArrangementsNull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	big := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		xs := make([]float64, 50)
		for j := range xs {
			xs[j] = rng.NormFloat64()
		}
		if math.Abs(ReverseArrangements(xs).Z) > 2.57 {
			big++
		}
	}
	if big > 10 {
		t.Errorf("null rejections = %d/%d", big, trials)
	}
}

func TestReverseArrangementsShort(t *testing.T) {
	if res := ReverseArrangements([]float64{1, 2}); res.Z != 0 || res.A != 0 {
		t.Error("short series should give zero result")
	}
}

func TestZScore(t *testing.T) {
	x := []float64{10, 11, 9, 10, 10}
	y := []float64{0, 1, -1, 0, 0}
	if z := ZScore(x, y); z < 10 {
		t.Errorf("separated samples z = %v, want large positive", z)
	}
	if z := ZScore(y, x); z > -10 {
		t.Errorf("reversed z = %v, want large negative", z)
	}
	if z := ZScore([]float64{1}, y); z != 0 {
		t.Errorf("degenerate z = %v, want 0", z)
	}
	if z := ZScore([]float64{5, 5, 5}, []float64{5, 5, 5}); z != 0 {
		t.Errorf("zero-variance z = %v, want 0", z)
	}
}

func TestQuantileSortedInvariance(t *testing.T) {
	// Quantile must not depend on input order and must not modify input.
	xs := []float64{9, 1, 5, 3, 7}
	orig := append([]float64(nil), xs...)
	q1 := Quantile(xs, 0.5)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatal("Quantile modified its input")
		}
	}
	sort.Float64s(xs)
	if q2 := Quantile(xs, 0.5); q1 != q2 {
		t.Errorf("order dependence: %v vs %v", q1, q2)
	}
}
