// Package stats implements the non-parametric statistical methods the
// paper uses for feature selection (§IV-B): the Wilcoxon rank-sum test,
// the reverse-arrangements test and z-scores, plus the small descriptive
// helpers shared across the library.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (NaN for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN when len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// WeightedMean returns the weighted mean of xs (NaN when weights sum to 0).
func WeightedMean(xs, ws []float64) float64 {
	var sum, wsum float64
	for i, x := range xs {
		sum += x * ws[i]
		wsum += ws[i]
	}
	if wsum == 0 {
		return math.NaN()
	}
	return sum / wsum
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// NormalCDF returns P(Z ≤ z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// TwoSidedP converts a z statistic to a two-sided normal p-value.
func TwoSidedP(z float64) float64 {
	return math.Erfc(math.Abs(z) / math.Sqrt2)
}

// Ranks assigns 1-based ranks to xs, averaging ranks across ties (the
// mid-rank convention required by the rank-sum test).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Tied block [i..j] gets the average of ranks i+1..j+1.
		avg := float64(i+j+2) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// RankSumResult is the outcome of a Wilcoxon rank-sum (Mann-Whitney) test.
type RankSumResult struct {
	// W is the rank sum of the first sample.
	W float64
	// Z is the normal-approximation statistic with tie correction;
	// positive Z means the first sample tends to be larger.
	Z float64
	// P is the two-sided p-value.
	P float64
}

// RankSum runs the Wilcoxon rank-sum test on samples x and y using the
// normal approximation with tie correction. The paper applies it to failed
// versus good sample values of each candidate SMART feature, following
// Hughes et al. Empty inputs yield a zero result.
func RankSum(x, y []float64) RankSumResult {
	nx, ny := len(x), len(y)
	if nx == 0 || ny == 0 {
		return RankSumResult{}
	}
	all := make([]float64, 0, nx+ny)
	all = append(all, x...)
	all = append(all, y...)
	ranks := Ranks(all)

	w := 0.0
	for i := 0; i < nx; i++ {
		w += ranks[i]
	}
	n := float64(nx + ny)
	mean := float64(nx) * (n + 1) / 2

	// Tie correction: subtract Σ(t³−t)/(n(n−1)) from the variance term.
	sorted := append([]float64(nil), all...)
	sort.Float64s(sorted)
	tieSum := 0.0
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] {
			j++
		}
		t := float64(j - i + 1)
		tieSum += t*t*t - t
		i = j + 1
	}
	variance := float64(nx) * float64(ny) / 12 * ((n + 1) - tieSum/(n*(n-1)))
	if variance <= 0 {
		// All values tied: no evidence either way.
		return RankSumResult{W: w}
	}
	z := (w - mean) / math.Sqrt(variance)
	return RankSumResult{W: w, Z: z, P: TwoSidedP(z)}
}

// ReverseArrangementsResult is the outcome of a reverse-arrangements trend
// test on a time series.
type ReverseArrangementsResult struct {
	// A is the number of reverse arrangements: pairs i < j with
	// x[i] > x[j].
	A int
	// Z is the normal-approximation statistic; negative Z indicates an
	// increasing trend (fewer reversals than chance), positive Z a
	// decreasing trend.
	Z float64
	// P is the two-sided p-value.
	P float64
}

// ReverseArrangements tests a series for monotonic trend. Under the null
// (exchangeable series) A has mean n(n−1)/4 and variance n(n−1)(2n+5)/72.
// The paper applies it to each attribute's time series in failed drives: a
// deteriorating attribute shows a strong trend. Series shorter than 3
// yield a zero result.
func ReverseArrangements(xs []float64) ReverseArrangementsResult {
	n := len(xs)
	if n < 3 {
		return ReverseArrangementsResult{}
	}
	a := countReversePairs(xs)
	fn := float64(n)
	mean := fn * (fn - 1) / 4
	variance := fn * (fn - 1) * (2*fn + 5) / 72
	z := (float64(a) - mean) / math.Sqrt(variance)
	return ReverseArrangementsResult{A: a, Z: z, P: TwoSidedP(z)}
}

// countReversePairs counts pairs i<j with xs[i] > xs[j] in O(n log n) via
// merge sort (ties are not reversals).
func countReversePairs(xs []float64) int {
	buf := append([]float64(nil), xs...)
	tmp := make([]float64, len(xs))
	return mergeCount(buf, tmp)
}

func mergeCount(a, tmp []float64) int {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	count := mergeCount(a[:mid], tmp[:mid]) + mergeCount(a[mid:], tmp[mid:])
	// Merge, counting left elements strictly greater than right elements.
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] > a[j] {
			count += mid - i
			tmp[k] = a[j]
			j++
		} else {
			tmp[k] = a[i]
			i++
		}
		k++
	}
	for i < mid {
		tmp[k] = a[i]
		i++
		k++
	}
	for j < n {
		tmp[k] = a[j]
		j++
		k++
	}
	copy(a, tmp[:n])
	return count
}

// ZScore returns the Welch two-sample z statistic comparing the means of x
// and y: (mean(x) − mean(y)) / sqrt(var(x)/nx + var(y)/ny). Murray et al.
// use it as a cheap per-feature discriminability score. Degenerate inputs
// (fewer than 2 points, or zero pooled variance) yield 0.
func ZScore(x, y []float64) float64 {
	if len(x) < 2 || len(y) < 2 {
		return 0
	}
	vx, vy := Variance(x), Variance(y)
	denom := math.Sqrt(vx/float64(len(x)) + vy/float64(len(y)))
	if denom == 0 || math.IsNaN(denom) {
		return 0
	}
	return (Mean(x) - Mean(y)) / denom
}
