package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hddcart/internal/dataset"
	"hddcart/internal/detect"
	"hddcart/internal/eval"
	"hddcart/internal/plot"
	"hddcart/internal/simulate"
	"hddcart/internal/smart"
	"hddcart/internal/update"
)

// weekRange is a 1-based inclusive range of training weeks.
type weekRange struct{ start, end int }

// hourSpan converts the week range to hours.
func (wr weekRange) hourSpan() (int, int) {
	return (wr.start - 1) * simulate.HoursPerWeek, wr.end * simulate.HoursPerWeek
}

const lastWeek = 8

// updatingRanges enumerates the distinct training ranges needed by the five
// plans over prediction weeks 2..8.
func updatingRanges() ([]weekRange, error) {
	seen := make(map[weekRange]bool)
	var out []weekRange
	for _, plan := range update.Plans() {
		for w := 2; w <= lastWeek; w++ {
			s, e, _, err := plan.TrainWeeks(w)
			if err != nil {
				return nil, err
			}
			wr := weekRange{s, e}
			if !seen[wr] {
				seen[wr] = true
				out = append(out, wr)
			}
		}
	}
	return out, nil
}

// updatingModelSet holds the per-range trained models of one family.
type updatingModelSet struct {
	ct  map[weekRange]detect.Predictor
	net map[weekRange]detect.Predictor
}

// updatingModels trains (memoized) one CT and one BP ANN model per distinct
// training range for a family. CT uses the 168 h failed window, ANN 12 h,
// as everywhere else in the paper.
func (e *Env) updatingModels(family string) (*updatingModelSet, error) {
	v, err := e.memoize("updatingModels/"+family, func() (any, error) {
		ranges, err := updatingRanges()
		if err != nil {
			return nil, err
		}
		features := smart.CriticalFeatures()

		// One fleet pass feeds every builder.
		type rangeBuilders struct {
			ct, net *dataset.Builder
		}
		builders := make(map[weekRange]rangeBuilders, len(ranges))
		for _, wr := range ranges {
			start, end := wr.hourSpan()
			mk := func(window int) (*dataset.Builder, error) {
				return dataset.NewBuilder(dataset.Config{
					Features:            features,
					PeriodStart:         start,
					PeriodEnd:           end,
					GoodTrainFrac:       0.7,
					SamplesPerGoodDrive: e.goodSamplesPerDrive(),
					FailedWindowHours:   window,
					FailedShare:         0.2,
					Seed:                e.cfg.Seed,
				})
			}
			ctB, err := mk(168)
			if err != nil {
				return nil, err
			}
			netB, err := mk(12)
			if err != nil {
				return nil, err
			}
			builders[wr] = rangeBuilders{ctB, netB}
		}
		e.forEachTrace(e.fleet.DrivesOf(family), func(d simulate.Drive, trace []smart.Record) {
			// Deterministic builder order: iterate the ranges slice, not
			// the map.
			for _, wr := range ranges {
				b := builders[wr]
				if d.Failed {
					b.ct.AddFailedDrive(d.Index, d.FailHour, trace)
					b.net.AddFailedDrive(d.Index, d.FailHour, trace)
				} else {
					b.ct.AddGoodDrive(d.Index, trace)
					b.net.AddGoodDrive(d.Index, trace)
				}
			}
		})

		set := &updatingModelSet{
			ct:  make(map[weekRange]detect.Predictor, len(ranges)),
			net: make(map[weekRange]detect.Predictor, len(ranges)),
		}
		for _, wr := range ranges {
			b := builders[wr]
			ctDS, err := b.ct.Finalize()
			if err != nil {
				return nil, err
			}
			tree, err := e.trainCT(ctDS)
			if err != nil {
				return nil, fmt.Errorf("updating CT weeks %d-%d: %w", wr.start, wr.end, err)
			}
			// Scans only score the model, so store the compiled form.
			set.ct[wr] = tree.Compile()
			netDS, err := b.net.Finalize()
			if err != nil {
				return nil, err
			}
			net, err := e.trainANN(netDS)
			if err != nil {
				return nil, fmt.Errorf("updating ANN weeks %d-%d: %w", wr.start, wr.end, err)
			}
			set.net[wr] = net
		}
		return set, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*updatingModelSet), nil
}

// updatingResults holds FAR-per-week for each plan and the FDR summary per
// model kind.
type updatingResults struct {
	// far[kind][plan][week] with kind "CT"/"BP ANN", week 2..8.
	far map[string]map[update.Plan]map[int]eval.Result
	// fdr[kind][range] is the failed-drive detection rate of each
	// trained model instance.
	fdr map[string]map[weekRange]eval.Result
}

// runUpdating evaluates (memoized) the five updating plans for both model
// kinds on one family over weeks 2..8 with 11-voter detection.
func (e *Env) runUpdating(family string) (*updatingResults, error) {
	v, err := e.memoize("updatingResults/"+family, func() (any, error) {
		models, err := e.updatingModels(family)
		if err != nil {
			return nil, err
		}
		features := smart.CriticalFeatures()
		plans := update.Plans()
		// Fixed kind order keeps the evaluation schedule (and any future
		// order-sensitive fold) deterministic; maps iterate randomly.
		kindNames := []string{"CT", "BP ANN"}
		kinds := map[string]map[weekRange]detect.Predictor{"CT": models.ct, "BP ANN": models.net}

		res := &updatingResults{
			far: make(map[string]map[update.Plan]map[int]eval.Result),
			fdr: make(map[string]map[weekRange]eval.Result),
		}
		counters := make(map[string]map[update.Plan]map[int]*eval.Counter)
		for _, kind := range kindNames {
			counters[kind] = make(map[update.Plan]map[int]*eval.Counter)
			for _, p := range plans {
				counters[kind][p] = make(map[int]*eval.Counter)
				for w := 2; w <= lastWeek; w++ {
					counters[kind][p][w] = &eval.Counter{}
				}
			}
		}

		// FAR: one parallel pass over good drives, scanning each week's
		// test samples with every (kind, plan) model for that week. Each
		// drive's verdicts land at its own index; the fold into the
		// counters runs serially in drive order.
		var good []simulate.Drive
		for _, d := range e.fleet.DrivesOf(family) {
			if !d.Failed {
				good = append(good, d)
			}
		}
		type verdict struct {
			kind    string
			plan    update.Plan
			week    int
			alarmed bool
		}
		verdicts := make([][]verdict, len(good))
		workers := e.cfg.Workers
		if workers > len(good) {
			workers = len(good)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					di := int(next.Add(1)) - 1
					if di >= len(good) {
						return
					}
					trace := e.fleet.Trace(good[di].Index)
					var vs []verdict
					for w := 2; w <= lastWeek; w++ {
						start := (w - 1) * simulate.HoursPerWeek
						end := w * simulate.HoursPerWeek
						from, to, ok := dataset.TestStart(trace, start, end, 0.7)
						if !ok {
							continue
						}
						series := detect.ExtractSeries(features, trace, from, to)
						for _, kind := range kindNames {
							byRange := kinds[kind]
							for _, p := range plans {
								s, en, _, err := p.TrainWeeks(w)
								if err != nil {
									continue
								}
								det := &detect.Voting{Model: byRange[weekRange{s, en}], Voters: 11}
								out := detect.Scan(det, series, -1)
								vs = append(vs, verdict{kind, p, w, out.Alarmed})
							}
						}
					}
					verdicts[di] = vs
				}
			}()
		}
		wg.Wait()
		for _, vs := range verdicts {
			for _, v := range vs {
				counters[v.kind][v.plan][v.week].AddGood(v.alarmed)
			}
		}

		for _, kind := range kindNames {
			res.far[kind] = make(map[update.Plan]map[int]eval.Result)
			for _, p := range plans {
				res.far[kind][p] = make(map[int]eval.Result)
				for w := 2; w <= lastWeek; w++ {
					res.far[kind][p][w] = counters[kind][p][w].Result()
				}
			}
		}

		// FDR: scan failed test drives once per trained model instance.
		ranges, err := updatingRanges()
		if err != nil {
			return nil, err
		}
		for _, kind := range kindNames {
			byRange := kinds[kind]
			res.fdr[kind] = make(map[weekRange]eval.Result)
			for _, wr := range ranges {
				var c eval.Counter
				det := &detect.Voting{Model: byRange[wr], Voters: 11}
				e.scanFailedOnly(family, features, det, &c)
				res.fdr[kind][wr] = c.Result()
			}
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*updatingResults), nil
}

// scanFailedOnly scans only the failed test drives of a family. Drives are
// scanned in parallel; outcomes fold into the counter serially in drive
// order, so its time-in-advance samples are identically ordered for every
// worker count.
func (e *Env) scanFailedOnly(family string, features smart.FeatureSet, det detect.Detector, c *eval.Counter) {
	var failed []simulate.Drive
	for _, d := range e.fleet.DrivesOf(family) {
		if d.Failed && !dataset.IsTrainFailedDrive(e.cfg.Seed, d.Index, 0.7) {
			failed = append(failed, d)
		}
	}
	outs := make([]detect.Outcome, len(failed))
	workers := e.cfg.Workers
	if workers > len(failed) {
		workers = len(failed)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				di := int(next.Add(1)) - 1
				if di >= len(failed) {
					return
				}
				d := failed[di]
				trace := e.fleet.Trace(d.Index)
				s := detect.ExtractSeries(features, trace, 0, len(trace))
				outs[di] = detect.Scan(det, s, d.FailHour)
			}
		}()
	}
	wg.Wait()
	for _, out := range outs {
		c.AddFailed(out)
	}
}

// updatingReport renders one of Figs. 6–9.
func (e *Env) updatingReport(id, kind, family string) (*Report, error) {
	r := &Report{
		ID:    id,
		Title: fmt.Sprintf("False alarm rate of %s with model updating on family %s (paper %s)", kind, family, figName(id)),
	}
	res, err := e.runUpdating(family)
	if err != nil {
		return nil, err
	}
	plans := update.Plans()
	header := fmt.Sprintf("%-20s", "strategy \\ week")
	for w := 2; w <= lastWeek; w++ {
		header += fmt.Sprintf(" %8d", w)
	}
	r.addf("%s", header)
	chart := plot.Chart{
		Title:  r.Title,
		XLabel: "week",
		YLabel: "false alarm rate (%)",
	}
	for _, p := range plans {
		line := fmt.Sprintf("%-20s", p.String())
		s := plot.Series{Name: p.String()}
		for w := 2; w <= lastWeek; w++ {
			far := res.far[kind][p][w].FAR() * 100
			line += fmt.Sprintf(" %8.3f", far)
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, far)
		}
		r.addf("%s", line)
		chart.Series = append(chart.Series, s)
	}
	r.Charts = append(r.Charts, chart)
	// FDR summary across model instances (the paper reports CT holding
	// >90% FDR under every strategy while ANN fluctuates).
	minFDR, maxFDR := 1.0, 0.0
	//hddlint:ignore maporder min/max over exact stored values is order-insensitive, so iteration order cannot change the reported range
	for _, v := range res.fdr[kind] {
		if f := v.FDR(); f < minFDR {
			minFDR = f
		}
		if f := v.FDR(); f > maxFDR {
			maxFDR = f
		}
	}
	r.addf("FDR across retrained models: %.2f%% .. %.2f%%", minFDR*100, maxFDR*100)
	return r, nil
}

func figName(id string) string {
	switch id {
	case "figure6":
		return "Fig. 6"
	case "figure7":
		return "Fig. 7"
	case "figure8":
		return "Fig. 8"
	case "figure9":
		return "Fig. 9"
	default:
		return id
	}
}

// Figure6 reproduces Fig. 6: FAR of CT with the updating strategies on "W".
func (e *Env) Figure6() (*Report, error) { return e.updatingReport("figure6", "CT", "W") }

// Figure7 reproduces Fig. 7: FAR of BP ANN with updating on "W".
func (e *Env) Figure7() (*Report, error) { return e.updatingReport("figure7", "BP ANN", "W") }

// Figure8 reproduces Fig. 8: FAR of CT with updating on "Q".
func (e *Env) Figure8() (*Report, error) { return e.updatingReport("figure8", "CT", "Q") }

// Figure9 reproduces Fig. 9: FAR of BP ANN with updating on "Q".
func (e *Env) Figure9() (*Report, error) { return e.updatingReport("figure9", "BP ANN", "Q") }
