package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hddcart/internal/simulate"
	"hddcart/internal/smart"
)

// Table1 reproduces Table I (dataset details): per family and class, the
// number of drives, the recorded period and the total sample count of the
// synthetic fleet at the configured scale.
func (e *Env) Table1() (*Report, error) {
	r := &Report{ID: "table1", Title: "Dataset details (paper Table I)"}
	r.addf("%-8s %-7s %9s %10s %14s", "Family", "Class", "Drives", "Period", "Samples")

	type key struct {
		family string
		failed bool
	}
	counts := make(map[key]int)
	samples := make(map[key]*int64)
	for _, fam := range []string{"W", "Q"} {
		for _, failed := range []bool{false, true} {
			samples[key{fam, failed}] = new(int64)
		}
	}
	var wg sync.WaitGroup
	work := make(chan simulate.Drive)
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range work {
				n := int64(len(e.fleet.Trace(d.Index)))
				atomic.AddInt64(samples[key{d.Family, d.Failed}], n)
			}
		}()
	}
	for _, d := range e.fleet.Drives() {
		counts[key{d.Family, d.Failed}]++
		work <- d
	}
	close(work)
	wg.Wait()

	for _, fam := range []string{"W", "Q"} {
		for _, failed := range []bool{false, true} {
			k := key{fam, failed}
			class, period := "Good", fmt.Sprintf("%d days", simulate.GoodDays)
			if failed {
				class, period = "Failed", fmt.Sprintf("%d days", simulate.FailedDays)
			}
			r.addf("%-8s %-7s %9d %10s %14d", fam, class, counts[k], period, *samples[k])
		}
	}
	r.addf("scale: good ×%.3g, failed ×%.3g of the paper's 25,792-drive dataset",
		e.cfg.GoodScale, e.cfg.FailedScale)
	return r, nil
}

// Table2 reproduces Table II: the preliminarily selected SMART attributes
// (basic features).
func (e *Env) Table2() (*Report, error) {
	r := &Report{ID: "table2", Title: "Preliminarily selected SMART attributes (paper Table II)"}
	r.addf("%-4s %s", "#", "Attribute")
	for i, f := range smart.BasicFeatures() {
		r.addf("%-4d %s", i+1, f.String())
	}
	return r, nil
}

// FeatureSelection demonstrates the §IV-B statistical pipeline on the
// synthetic data: it scores the full candidate pool with the rank-sum,
// reverse-arrangements and z-score tests and prints the ranking. (The
// numbered experiments use the paper's published 13-feature outcome,
// smart.CriticalFeatures, so they are insensitive to selection noise.)
func (e *Env) FeatureSelection() (*Report, error) {
	r := &Report{ID: "featsel", Title: "Statistical feature selection (paper §IV-B)"}
	scores, err := e.featureScores()
	if err != nil {
		return nil, err
	}
	for _, s := range scores {
		r.addf("%s", s.String())
	}
	return r, nil
}
