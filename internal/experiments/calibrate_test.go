package experiments

import (
	"testing"

	"hddcart/internal/detect"
	"hddcart/internal/eval"
	"hddcart/internal/simulate"
	"hddcart/internal/smart"
)

// TestCalibrationCT trains the paper's standard CT pipeline on a scaled
// fleet and checks the headline behaviours hold: high FDR, low FAR, FAR
// falling with voter count, long TIA. It doubles as the calibration probe
// for the simulator parameters (run with -v to see the numbers).
func TestCalibrationCT(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs a mid-sized fleet")
	}
	if raceDetectorEnabled {
		// Pure numeric calibration on a mid-sized fleet; the concurrent
		// paths it would exercise are covered by the race-mode sweep in
		// TestRunAllExperimentsSmall at a fraction of the cost.
		t.Skip("calibration sweep is too slow under the race detector")
	}
	env, err := NewEnv(Config{Seed: 1, GoodScale: 0.2, FailedScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	features := smart.CriticalFeatures()
	ds, err := env.trainingSet("W", features, 0, simulate.HoursPerWeek, 168)
	if err != nil {
		t.Fatal(err)
	}
	good, failed := ds.Counts()
	t.Logf("training samples: %d good, %d failed", good, failed)
	tree, err := env.trainCT(ds)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tree: %d nodes, depth %d", tree.NumNodes(), tree.Depth())
	t.Logf("\n%s", tree.String())

	for _, n := range []int{1, 11, 27} {
		var c eval.Counter
		det := &detect.Voting{Model: tree, Voters: n}
		env.scanDrives(env.Fleet().DrivesOf("W"), features, det,
			0, simulate.HoursPerWeek, 0.7, env.Config().Seed, &c)
		res := c.Result()
		t.Logf("N=%2d: %s", n, res.String())
		if n == 1 {
			if res.FDR() < 0.80 {
				t.Errorf("N=1 FDR = %.2f%%, want ≥ 80%%", res.FDR()*100)
			}
			if res.FAR() > 0.05 {
				t.Errorf("N=1 FAR = %.2f%%, want ≤ 5%%", res.FAR()*100)
			}
		}
		if n == 11 {
			if res.FDR() < 0.85 {
				t.Errorf("N=11 FDR = %.2f%%, want ≥ 85%%", res.FDR()*100)
			}
			if res.FAR() > 0.01 {
				t.Errorf("N=11 FAR = %.2f%%, want ≤ 1%%", res.FAR()*100)
			}
			if res.MeanTIA() < 200 {
				t.Errorf("N=11 TIA = %.0f h, want ≥ 200", res.MeanTIA())
			}
		}
	}
}
