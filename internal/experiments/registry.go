package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// runner is one experiment entry point.
type runner struct {
	id  string
	run func(*Env) (*Report, error)
}

// registry maps experiment IDs to runners, in paper order.
var registry = []runner{
	{"table1", (*Env).Table1},
	{"table2", (*Env).Table2},
	{"featsel", (*Env).FeatureSelection},
	{"table3", (*Env).Table3},
	{"table4", (*Env).Table4},
	{"figure2", (*Env).Figure2},
	{"figure3", (*Env).Figure3},
	{"figure4", (*Env).Figure4},
	{"figure5", (*Env).Figure5},
	{"table5", (*Env).Table5},
	{"figure6", (*Env).Figure6},
	{"figure7", (*Env).Figure7},
	{"figure8", (*Env).Figure8},
	{"figure9", (*Env).Figure9},
	{"figure10", (*Env).Figure10},
	{"table6", (*Env).Table6},
	{"figure12", (*Env).Figure12},
	// Extensions beyond the paper's evaluation (its §VII future work).
	{"baselines", (*Env).Baselines},
	{"forest", (*Env).Forest},
	{"boost", (*Env).Boost},
	{"storagesim", (*Env).StorageSim},
}

// IDs returns every experiment ID in paper order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.id
	}
	return out
}

// Run executes the selected experiments (all when ids is empty) against a
// fresh environment, writing each report to w as it completes.
func Run(cfg Config, ids []string, w io.Writer) error {
	env, err := NewEnv(cfg)
	if err != nil {
		return err
	}
	return env.Run(ids, w)
}

// RunWithCharts executes the selected experiments and additionally writes
// each report's charts as SVG files into dir (created if needed).
func (e *Env) RunWithCharts(ids []string, w io.Writer, dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("experiments: create chart dir: %w", err)
		}
	}
	e.chartDir = dir
	defer func() { e.chartDir = "" }()
	return e.Run(ids, w)
}

// writeCharts renders a report's charts to the environment's chart dir.
func (e *Env) writeCharts(rep *Report) error {
	for i, chart := range rep.Charts {
		name := rep.ID + ".svg"
		if len(rep.Charts) > 1 {
			name = fmt.Sprintf("%s_%d.svg", rep.ID, i+1)
		}
		f, err := os.Create(filepath.Join(e.chartDir, name))
		if err != nil {
			return err
		}
		err = chart.SVG(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("experiments: write %s: %w", name, err)
		}
	}
	return nil
}

// Run executes the selected experiments (all when ids is empty) on this
// environment.
func (e *Env) Run(ids []string, w io.Writer) error {
	selected := make(map[string]bool, len(ids))
	for _, id := range ids {
		id = strings.ToLower(strings.TrimSpace(id))
		if id == "" {
			continue
		}
		found := false
		for _, r := range registry {
			if r.id == id {
				found = true
				break
			}
		}
		if !found {
			known := IDs()
			sort.Strings(known)
			return fmt.Errorf("experiments: unknown experiment %q (known: %s)",
				id, strings.Join(known, ", "))
		}
		selected[id] = true
	}
	for _, r := range registry {
		if len(selected) > 0 && !selected[r.id] {
			continue
		}
		//hddlint:ignore seededrand wall-clock duration feeds only the per-experiment timing line in the report
		start := time.Now()
		rep, err := r.run(e)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", r.id, err)
		}
		if _, err := fmt.Fprintf(w, "%s(%.1fs)\n\n", rep.String(), time.Since(start).Seconds()); err != nil {
			return err
		}
		if e.chartDir != "" {
			if err := e.writeCharts(rep); err != nil {
				return err
			}
		}
	}
	return nil
}
